#!/usr/bin/env sh
# Documentation gate: formatting, vet, and link integrity for the Markdown
# docs. Every relative link target referenced from README.md and docs/*.md
# must exist in the repository, so the package map and the architecture
# notes cannot silently rot as files move.
#
# Usage: scripts/docs_check.sh
set -eu

fail=0

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "docs_check: gofmt -l reports unformatted files:" >&2
    echo "$unformatted" >&2
    fail=1
fi

go vet ./... || fail=1

for doc in README.md docs/*.md; do
    [ -f "$doc" ] || { echo "docs_check: $doc missing" >&2; fail=1; continue; }
    dir="$(dirname "$doc")"
    # Extract relative markdown link targets: [text](target), skipping
    # absolute URLs and in-page anchors, dropping any #fragment suffix.
    targets="$(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//; s/#.*$//' |
        grep -v '^$' | grep -v '^[a-z][a-z0-9+.-]*:' | sort -u || true)"
    for t in $targets; do
        if [ ! -e "$dir/$t" ] && [ ! -e "$t" ]; then
            echo "docs_check: $doc links to missing target '$t'" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "docs_check: FAILED" >&2
    exit 1
fi
echo "docs_check: OK"
