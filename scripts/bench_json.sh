#!/usr/bin/env sh
# Runs the repository benchmarks once and dumps the metrics to a JSON file
# (default BENCH_PR1.json) so CI can archive the perf trajectory per PR.
#
# Usage: scripts/bench_json.sh [output.json]
set -eu

out="${1:-BENCH_PR1.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# -benchtime=1x keeps the smoke pass cheap; the table benches are dominated
# by the 64-worker phantom rows, not by arithmetic. No pipe here: a plain
# redirect keeps `set -e` sensitive to a benchmark failure.
go test -run '^$' -bench . -benchtime 1x . ./internal/tensor/ > "$tmp"
cat "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    nsop = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") nsop = $(i - 1)
    }
    extra = ""
    for (i = 2; i <= NF; i++) {
        unit = $(i)
        if (unit ~ /^(MB\/s|GFLOPS|sim-fwd-s|sim-bwd-s|final-loss|cannon-vs-tesseract|tess-221-elems|d4-fwd-s)$/) {
            gsub(/[^A-Za-z0-9]/, "_", unit)
            extra = extra sprintf(", \"%s\": %s", unit, $(i - 1))
        }
    }
    if (nsop != "") {
        line = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s%s}", name, nsop, extra)
        lines[n++] = line
    }
}
END {
    printf "{\n\"generated\": \"%s\",\n\"benchmarks\": [\n", date
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    printf "]\n}\n"
}' "$tmp" > "$out"

echo "wrote $out"
