#!/usr/bin/env sh
# Runs the repository benchmarks once and dumps the metrics to a JSON file
# (default BENCH_PR10.json) so CI can archive the perf trajectory per PR.
#
# Usage: scripts/bench_json.sh [output.json]
set -eu

out="${1:-BENCH_PR10.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# -benchtime=1x keeps the smoke pass cheap; the table benches are dominated
# by the 64-worker phantom rows, not by arithmetic. -benchmem reports
# allocations everywhere. No pipe here: a plain redirect keeps `set -e`
# sensitive to a benchmark failure.
go test -run '^$' -bench . -benchtime 1x -benchmem . ./internal/tensor/ > "$tmp"

# BenchmarkTesseractStep carries the PR 2 allocation metric and the PR 3
# overlap + latency metrics, and BenchmarkFamilyStep/{tesseract,optimus,
# megatron} carries the PR 5 family-interface comparison: re-run them at 50
# steps so allocs/step, ns/step and overlap_frac (comm seconds hidden
# behind compute / total comm seconds) are steady-state numbers, not a
# single cold iteration. BenchmarkReshard (PR 7) rides along: its
# reshard_cost_ratio — simulated (collect + restore) seconds over plain-step
# seconds — prices a full elastic re-shard in training steps.
# BenchmarkStraggler's straggler_* metrics (PR 8) come from simulated
# clocks, so the 1x smoke row above is already exact. BenchmarkServeStep
# (PR 9) rides along: 50 saturated serving batches through the continuous
# batcher in one cluster run, reporting allocs/batch plus the simulated
# serve_p50_s/serve_p99_s/serve_thru_rps of the trace. The awk below
# keeps one row per benchmark with the last line winning, so this pass
# overrides the smoke rows.
# PR 10 rows ride the same steady-state pass: BenchmarkFamilyStep/seqpar
# (allocs/step for the fourth family), BenchmarkSeqparMemory
# (seqpar_mem_ratio — peak per-rank live workspace bytes, seqpar over
# megatron), and the pooled AllReduce8/ReduceScatter8 collectives with
# their GB/s throughput.
go test -run '^$' -bench 'TesseractStep|FamilyStep|Reshard|ServeStep|SeqparMemory|AllReduce8|ReduceScatter8' -benchtime 50x -benchmem . >> "$tmp"

# The packed-kernel GFLOPS rows (PR 6): one cold iteration says nothing
# about arithmetic throughput, so re-run the NN/NT/TN kernel benches long
# enough for the timer to amortise warm-up. These rows override the smoke
# rows the same way the step rows above do.
go test -run '^$' -bench 'GEMMKernels' -benchtime 0.5s ./internal/tensor/ >> "$tmp"
cat "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    nsop = ""
    allocs = ""
    bytes = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") nsop = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
        if ($(i) == "B/op") bytes = $(i - 1)
    }
    extra = ""
    for (i = 2; i <= NF; i++) {
        unit = $(i)
        if (unit ~ /^(MB\/s|GFLOPS|sim-fwd-s|sim-bwd-s|final-loss|cannon-vs-tesseract|tess-221-elems|d4-fwd-s|overlap-frac|planner-top3-err|reshard_cost_ratio|straggler_[a-z0-9_]+|serve_[a-z0-9_]+|seqpar_mem_ratio|GB\/s)$/) {
            gsub(/[^A-Za-z0-9]/, "_", unit)
            extra = extra sprintf(", \"%s\": %s", unit, $(i - 1))
        }
    }
    if (allocs != "") extra = extra sprintf(", \"allocs_per_op\": %s", allocs)
    if (bytes != "") extra = extra sprintf(", \"bytes_per_op\": %s", bytes)
    if (nsop != "") {
        line = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s%s}", name, nsop, extra)
        if (!(name in idx)) {
            idx[name] = n
            n++
        }
        lines[idx[name]] = line
    }
}
END {
    printf "{\n\"generated\": \"%s\",\n\"benchmarks\": [\n", date
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    printf "]\n}\n"
}' "$tmp" > "$out"

echo "wrote $out"
