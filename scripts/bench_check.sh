#!/usr/bin/env sh
# Regression gate for the training-step hot path: compares
# BenchmarkTesseractStep ns/op between a freshly generated bench JSON and a
# committed baseline, failing when the new number regresses by more than
# the allowed fraction (default 10%). Wall-clock benchmarks on shared CI
# runners are noisy, so the tolerance is deliberately generous — the gate
# exists to catch step-function regressions (a lost overlap path, an
# accidental allocation storm), not single-digit jitter.
#
# Usage: scripts/bench_check.sh NEW.json BASELINE.json [max_regression_frac]
set -eu

new="$1"
base="$2"
frac="${3:-0.10}"

ns_of() {
    awk -v name="BenchmarkTesseractStep" '
        $0 ~ "\"name\": \"" name "\"" {
            if (match($0, /"ns_per_op": [0-9.eE+-]+/)) {
                v = substr($0, RSTART, RLENGTH)
                sub(/.*: /, "", v)
                print v
                exit
            }
        }' "$1"
}

new_ns="$(ns_of "$new")"
base_ns="$(ns_of "$base")"
if [ -z "$new_ns" ] || [ -z "$base_ns" ]; then
    echo "bench_check: BenchmarkTesseractStep missing from $new or $base" >&2
    exit 1
fi

awk -v new="$new_ns" -v base="$base_ns" -v frac="$frac" 'BEGIN {
    limit = base * (1 + frac)
    printf "BenchmarkTesseractStep: %.0f ns/op vs baseline %.0f ns/op (limit %.0f)\n", new, base, limit
    if (new > limit) {
        printf "bench_check: step time regressed by %.1f%% (> %.0f%% allowed)\n", (new/base - 1) * 100, frac * 100
        exit 1
    }
    printf "bench_check: OK (%+.1f%% vs baseline)\n", (new/base - 1) * 100
}'
