package optimus

import (
	"repro/internal/plan"
	"repro/internal/tesseract"
)

// PlanAlgo describes Optimus to the auto-parallelism planner. Optimus is
// the depth-1 special case of Tesseract — this package instantiates the
// shared SUMMA layers on a [q, q, 1] mesh — so its cost and memory closures
// delegate to the Tesseract descriptor pinned at d = 1; only the family
// name and the 2-D grid enumeration differ, exactly like the runtime
// implementation.
func PlanAlgo() plan.Algo {
	inner := tesseract.PlanAlgo()
	return plan.Algo{
		Family: "optimus",
		Grids: func(w plan.Workload, budget int) []plan.Grid {
			var out []plan.Grid
			for _, g := range inner.Grids(w, budget) {
				if g.D == 1 {
					out = append(out, g)
				}
			}
			return out
		},
		Cost:   inner.Cost,
		Memory: inner.Memory,
	}
}
