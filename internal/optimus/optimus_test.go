package optimus

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func TestMatMulABMatchesSerial(t *testing.T) {
	for _, q := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("q%d", q), func(t *testing.T) {
			rng := tensor.NewRNG(uint64(q))
			ga := tensor.RandomMatrix(4*q, 3*q, rng)
			gb := tensor.RandomMatrix(3*q, 2*q, rng)
			want := tensor.MatMul(ga, gb)
			results := testutil.NewCollector()
			testutil.Run(t, q*q, func(w *dist.Worker) error {
				p := NewProc(w, q)
				lc := p.MatMulAB(p.DistributeA(ga), p.DistributeB(gb))
				results.Put(w.Rank(), p.CollectA(lc))
				return nil
			})
			testutil.CheckClose(t, "C", results.Get(0), want, 1e-9)
		})
	}
}

func TestBlockMatchesSerial(t *testing.T) {
	const h, heads, seqLen, rows = 8, 2, 2, 8
	for _, q := range []int{1, 2} {
		t.Run(fmt.Sprintf("q%d", q), func(t *testing.T) {
			dataRng := tensor.NewRNG(6)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewBlock(h, heads, seqLen, tensor.NewRNG(31))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			testutil.Run(t, q*q, func(w *dist.Worker) error {
				p := NewProc(w, q)
				b := NewBlock(p, h, heads, seqLen, tensor.NewRNG(31))
				y := b.Forward(p, p.DistributeA(x))
				dx := b.Backward(p, p.DistributeA(dy))
				ys.Put(w.Rank(), p.CollectA(y))
				dxs.Put(w.Rank(), p.CollectA(dx))
				return nil
			})
			testutil.CheckClose(t, "y", ys.Get(0), wantY, 1e-8)
			testutil.CheckClose(t, "dx", dxs.Get(0), wantDx, 1e-8)
		})
	}
}

func TestCoordsExposed(t *testing.T) {
	testutil.Run(t, 4, func(w *dist.Worker) error {
		p := NewProc(w, 2)
		if p.Q() != 2 {
			t.Errorf("Q() = %d", p.Q())
		}
		wantRow, wantCol := w.Rank()/2, w.Rank()%2
		if p.Row() != wantRow || p.Col() != wantCol {
			t.Errorf("rank %d coords (%d,%d), want (%d,%d)", w.Rank(), p.Row(), p.Col(), wantRow, wantCol)
		}
		if p.Tesseract().Shape.D != 1 {
			t.Error("Optimus must be a depth-1 mesh")
		}
		return nil
	})
}

func TestMLPMatchesSerial(t *testing.T) {
	const h, rows = 8, 8
	dataRng := tensor.NewRNG(7)
	x := tensor.RandomMatrix(rows, h, dataRng)
	dy := tensor.RandomMatrix(rows, h, dataRng)
	ref := nn.NewMLP(h, tensor.NewRNG(37))
	wantY := ref.Forward(x)
	wantDx := ref.Backward(dy)
	ys := testutil.NewCollector()
	dxs := testutil.NewCollector()
	testutil.Run(t, 4, func(w *dist.Worker) error {
		p := NewProc(w, 2)
		m := NewMLP(p, h, tensor.NewRNG(37))
		y := m.Forward(p, p.DistributeA(x))
		dx := m.Backward(p, p.DistributeA(dy))
		ys.Put(w.Rank(), p.CollectA(y))
		dxs.Put(w.Rank(), p.CollectA(dx))
		return nil
	})
	testutil.CheckClose(t, "y", ys.Get(0), wantY, 1e-9)
	testutil.CheckClose(t, "dx", dxs.Get(0), wantDx, 1e-9)
}

func TestOptimusIsTesseractDepthOne(t *testing.T) {
	// The paper's Tables 1-2 show Optimus [q,q] ≈ Tesseract [q,q,1]; in our
	// unified implementation the simulated clocks are identical by
	// construction. Verify it.
	const h, heads, seqLen, rows = 8, 2, 2, 8
	run := func(optimus bool) float64 {
		c := dist.New(dist.Config{WorldSize: 4})
		if err := c.Run(func(w *dist.Worker) error {
			if optimus {
				p := NewProc(w, 2)
				b := NewBlockPhantom(p, h, heads, seqLen)
				x := tensor.NewPhantom(rows/2, h/2)
				y := b.Forward(p, x)
				b.Backward(p, y)
				return nil
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	if run(true) <= 0 {
		t.Fatal("expected nonzero clock")
	}
}
