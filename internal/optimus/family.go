package optimus

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/parallel"
	"repro/internal/tesseract"
)

func init() {
	parallel.RegisterCheck("optimus", func(l parallel.Layout) error {
		if l.Q < 1 {
			return fmt.Errorf("optimus: layout %s needs a mesh dimension q", l)
		}
		if l.D > 1 {
			return fmt.Errorf("optimus: 2-D family cannot take depth %d", l.D)
		}
		return nil
	})
	parallel.Register("optimus", func(w *dist.Worker, l parallel.Layout) (parallel.Family, error) {
		return newFamily(w, l), nil
	})
}

// Family is Optimus' implementation of the family-agnostic model layer.
// Optimus is exactly the d = 1 special case of Tesseract, so the family
// embeds a depth-1 Tesseract family and differs only in its name and
// layout — the same first-class delegation the planner descriptor uses,
// now shared by models, trainers and the experiment harness.
type Family struct {
	*tesseract.Family
	layout parallel.Layout
}

// NewFamily attaches the calling worker to a q×q mesh based at rank 0 and
// returns the family view.
func NewFamily(w *dist.Worker, q int) *Family {
	return newFamily(w, parallel.Layout{Family: "optimus", Q: q, D: 1, Ranks: q * q})
}

func newFamily(w *dist.Worker, l parallel.Layout) *Family {
	inner := tesseract.NewFamilyAt(w, mesh.Shape{Q: l.Q, D: 1, Base: l.Base})
	return &Family{Family: inner, layout: l}
}

// Name returns "optimus".
func (f *Family) Name() string { return "optimus" }

// Layout returns the 2-D mesh layout.
func (f *Family) Layout() parallel.Layout { return f.layout }
