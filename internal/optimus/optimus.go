// Package optimus implements the 2-D tensor parallelism of Optimus (Xu et
// al., §2.2 of the paper), the paper's second baseline. Optimus distributes
// both activations and parameters over a q×q SUMMA mesh; structurally it is
// exactly the d = 1 special case of Tesseract — the paper itself notes that
// "d = 1 makes Tesseract a 2-D algorithm like SUMMA", and its Table 1/2
// shapes [2,2] vs [2,2,1] confirm near-identical behaviour. This package
// therefore instantiates the shared SUMMA-based layer implementations on a
// depth-1 mesh while exposing Optimus' own 2-D API (no depth coordinate);
// keeping one implementation guarantees the baseline and the contribution
// differ only in the dimension under study.
package optimus

import (
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/tesseract"
)

// Proc is one processor's view of the q×q Optimus mesh.
type Proc struct {
	inner *tesseract.Proc
}

// NewProc attaches the calling worker to a q×q mesh based at rank 0.
func NewProc(w *dist.Worker, q int) *Proc {
	return &Proc{inner: tesseract.NewProc(w, q, 1)}
}

// Q returns the mesh dimension.
func (p *Proc) Q() int { return p.inner.Shape.Q }

// Row returns this processor's grid row index.
func (p *Proc) Row() int { return p.inner.I }

// Col returns this processor's grid column index.
func (p *Proc) Col() int { return p.inner.J }

// Tesseract exposes the underlying depth-1 Tesseract view for interop with
// shared helpers and tests.
func (p *Proc) Tesseract() *tesseract.Proc { return p.inner }

// MatMulAB computes the SUMMA product C = A·B (Algorithm 2).
func (p *Proc) MatMulAB(a, b *tensor.Matrix) *tensor.Matrix { return p.inner.MatMulAB(a, b) }

// MatMulABT computes C = A·Bᵀ (Eq. 3 activation gradient).
func (p *Proc) MatMulABT(a, b *tensor.Matrix) *tensor.Matrix { return p.inner.MatMulABT(a, b) }

// MatMulATB computes C = Aᵀ·B (Eq. 3 parameter gradient; the depth
// all-reduce is a no-op at d = 1).
func (p *Proc) MatMulATB(a, b *tensor.Matrix) *tensor.Matrix { return p.inner.MatMulATB(a, b) }

// DistributeA slices a replicated global activation into the [a/q, b/q]
// local block.
func (p *Proc) DistributeA(global *tensor.Matrix) *tensor.Matrix { return p.inner.DistributeA(global) }

// DistributeB slices a replicated global parameter into the [b/q, c/q]
// local block.
func (p *Proc) DistributeB(global *tensor.Matrix) *tensor.Matrix { return p.inner.DistributeB(global) }

// CollectA reassembles an activation matrix on every processor.
func (p *Proc) CollectA(local *tensor.Matrix) *tensor.Matrix { return p.inner.CollectA(local) }

// Block is one Optimus-parallel Transformer layer.
type Block struct {
	inner *tesseract.Block
}

// NewBlock draws parameters from rng in the serial order.
func NewBlock(p *Proc, h, heads, seqLen int, rng *tensor.RNG) *Block {
	return &Block{inner: tesseract.NewBlock(p.inner, h, heads, seqLen, rng)}
}

// NewBlockPhantom builds the shape-only variant for paper-scale timing.
func NewBlockPhantom(p *Proc, h, heads, seqLen int) *Block {
	return &Block{inner: tesseract.NewBlockPhantom(p.inner, h, heads, seqLen)}
}

// Params returns the local shards.
func (b *Block) Params() []*nn.Param { return b.inner.Params() }

// Forward computes the local output block.
func (b *Block) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	return b.inner.Forward(p.inner, x)
}

// Backward propagates through the layer.
func (b *Block) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	return b.inner.Backward(p.inner, dy)
}

// MLP is the Optimus feed-forward module.
type MLP struct{ inner *tesseract.MLP }

// NewMLP draws Fc1, Fc2 from rng in the serial order.
func NewMLP(p *Proc, h int, rng *tensor.RNG) *MLP {
	return &MLP{inner: tesseract.NewMLP(p.inner, h, rng)}
}

// Params returns the local shards.
func (m *MLP) Params() []*nn.Param { return m.inner.Params() }

// Forward applies both projections.
func (m *MLP) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	return m.inner.Forward(p.inner, x)
}

// Backward propagates through both projections.
func (m *MLP) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	return m.inner.Backward(p.inner, dy)
}
