package claims

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g", name, got, want)
	}
}

func TestTransferCountsAt64(t *testing.T) {
	// §1: "with a total amount of 64 processors, the communication needed
	// for Cannon's Algorithm is 31.5 times the communication needed for
	// Tesseract, and the communication needed for the 2.5D algorithm is
	// 3.75 times".
	approx(t, "Cannon(64)", CannonTransfers(64), 1008, 1e-9)
	approx(t, "2.5D(64)", Solomonik25DTransfers(64), 120, 1e-9)
	approx(t, "Tesseract(64)", TesseractTransfers(64), 32, 1e-9)
	c, s := TransferRatios(64)
	approx(t, "Cannon ratio", c, 31.5, 1e-9)
	approx(t, "2.5D ratio", s, 3.75, 1e-9)
}

func TestCrossovers(t *testing.T) {
	// §3.1: "Tesseract requires less transmission with q > 2 compared to
	// Cannon's Algorithm, q > 4 compared to the 2.5D algorithm" — where the
	// symbol counts GPUs (the same paragraph concludes "it usually requires
	// more than four GPUs").
	if CrossoverVsCannon(2) {
		t.Fatal("p=2 should not beat Cannon")
	}
	for p := 3; p <= 128; p++ {
		if !CrossoverVsCannon(p) {
			t.Fatalf("p=%d should beat Cannon", p)
		}
	}
	for p := 2; p <= 4; p++ {
		if CrossoverVs25D(p) {
			t.Fatalf("p=%d should not beat 2.5D", p)
		}
	}
	for p := 5; p <= 128; p++ {
		if !CrossoverVs25D(p) {
			t.Fatalf("p=%d should beat 2.5D", p)
		}
	}
}

func TestMemoryComparison(t *testing.T) {
	// Eq. 7-10 discussion: Megatron needs p times more memory for the
	// input matrix; Tesseract's extra B replication (factor d) is small
	// because p = d·q².
	a, b, c := 4096.0, 4096.0, 4096.0
	for _, cfg := range []struct{ q, d float64 }{{2, 1}, {4, 2}, {4, 4}, {8, 1}} {
		p := cfg.d * cfg.q * cfg.q
		mt := MemoryTesseract(a, b, c, cfg.q, cfg.d)
		mm := MemoryMegatron(a, b, c, p)
		if mt >= mm {
			t.Fatalf("q=%g d=%g: Tesseract memory %g should beat Megatron %g", cfg.q, cfg.d, mt, mm)
		}
		// The A-matrix term alone differs by exactly p.
		if math.Abs((a*b)/(a*b/p)-p) > 1e-9 {
			t.Fatal("A-term ratio must be p")
		}
	}
}

func TestMemoryFormulaValues(t *testing.T) {
	// Hand check Eq. 8 at q=2, d=2 (p=8), a=b=c=8:
	// ab/p + bcd/p + ac/p = 8 + 16 + 8 = 32.
	approx(t, "MemoryTesseract", MemoryTesseract(8, 8, 8, 2, 2), 32, 1e-12)
	// Eq. 10 at p=8: 64 + 8 + 8 = 80.
	approx(t, "MemoryMegatron", MemoryMegatron(8, 8, 8, 8), 80, 1e-12)
}

func TestLowerBoundSpecialCases(t *testing.T) {
	// §2.3: d = 1 degenerates to Cannon's bound; d = p^{1/3} gives
	// W = Ω(n²/p^{2/3}) and S = Ω(1).
	n, p := 1024.0, 64.0
	approx(t, "d=1 bandwidth", Solomonik25DBandwidthLowerBound(n, p, 1), CannonBandwidthLowerBound(n, p), 1e-9)
	d := math.Cbrt(p)
	approx(t, "3D bandwidth", Solomonik25DBandwidthLowerBound(n, p, d), n*n/math.Pow(p, 2.0/3), 1e-6)
	approx(t, "3D latency", Solomonik25DLatencyLowerBound(p, d), 1, 1e-9)
}

func TestLatencyFallsWithDepth(t *testing.T) {
	// §3.1: "with the same amount of processors, greater d could lead to
	// less communication and lower latency."
	p := 64.0
	prevW, prevS := math.Inf(1), math.Inf(1)
	for _, d := range []float64{1, 2, 4} {
		w := Solomonik25DBandwidthLowerBound(4096, p, d)
		s := Solomonik25DLatencyLowerBound(p, d)
		if w >= prevW || s >= prevS {
			t.Fatalf("bounds must fall with depth: d=%g w=%g s=%g", d, w, s)
		}
		prevW, prevS = w, s
	}
}

func TestIsoefficiencyOrdering(t *testing.T) {
	// Megatron's isoefficiency W ~ p³ grows faster than Optimus'
	// (√p·log p)³ for large p, i.e. Megatron scales worse.
	for _, p := range []float64{64, 256, 1024} {
		if IsoefficiencyMegatron(p) <= IsoefficiencyOptimus(p) {
			t.Fatalf("p=%g: Megatron isoefficiency should exceed Optimus", p)
		}
	}
}

func TestCommVolumeModels(t *testing.T) {
	// Megatron's per-layer volume saturates at 2·b·s·h as p grows, while
	// Optimus' (with q = √p) decays like log p/√p, so their ratio must
	// shrink monotonically and eventually cross below 1 — the asymptotic
	// scaling behind §3.1's isoefficiency comparison.
	b, s, h := 12.0, 512.0, 3072.0
	prev := math.Inf(1)
	for _, p := range []float64{16, 64, 256, 1024, 4096} {
		q := math.Sqrt(p)
		ratio := OptimusCommVolume(p, q, b, s, h) / MegatronCommVolume(p, b, s, h)
		if ratio >= prev {
			t.Fatalf("Optimus/Megatron volume ratio must fall with p: p=%g ratio=%g prev=%g", p, ratio, prev)
		}
		prev = ratio
	}
	if prev >= 1 {
		t.Fatalf("Optimus volume should undercut Megatron at p=4096, ratio=%g", prev)
	}
	// Megatron's volume saturates: doubling p barely changes it.
	if MegatronCommVolume(4096, b, s, h)/MegatronCommVolume(2048, b, s, h) > 1.001 {
		t.Fatal("Megatron volume should saturate with p")
	}
}
