// Package claims encodes the closed-form quantitative statements of the
// paper's Sections 1-3 — transmission counts, per-GPU memory (Eqs. 7-10),
// communication volumes and the isoefficiency/lower-bound expressions
// (Eqs. 1, 2, 4, 5) — so the experiment harness and the tests can check the
// implementations against exactly the numbers the paper prints (31.5×,
// 3.75×, crossovers at q > 2 and q > 4, and so on).
package claims

import "math"

// CannonTransfers is the paper's §3.1 count of inter-GPU block transfers for
// one Cannon multiplication on p processors: 2p^{3/2} − 2p^{1/2}.
func CannonTransfers(p float64) float64 {
	return 2*math.Pow(p, 1.5) - 2*math.Sqrt(p)
}

// Solomonik25DTransfers is the §3.1 count for the 2.5-D algorithm:
// 2p − 2p^{1/3}.
func Solomonik25DTransfers(p float64) float64 {
	return 2*p - 2*math.Cbrt(p)
}

// TesseractTransfers is the §3.1 count for Tesseract at d = q: 2p^{2/3}.
func TesseractTransfers(p float64) float64 {
	c := math.Cbrt(p)
	return 2 * c * c
}

// TesseractTransfersGrid generalises the §3.1 count to an arbitrary
// [q, q, d] arrangement: one SUMMA pass issues q broadcasts along grid rows
// and q down grid columns (q−1 block transfers each), and the backward
// weight gradient adds one depth all-reduce (2(d−1) transfers):
// 2q(q−1) + 2(d−1). At d = q (so p = q³) the total is 2q² − 2, the
// paper's 2p^{2/3} up to the constant −2, and the count is what makes
// deeper meshes attractive — d enters only through the rare all-reduce
// while the q² broadcast term shrinks. The auto-parallelism planner's
// layout ranking follows this trend (see internal/plan).
func TesseractTransfersGrid(q, d float64) float64 {
	return 2*q*(q-1) + 2*(d-1)
}

// TransferRatios returns (Cannon/Tesseract, 2.5D/Tesseract) at p processors.
// At p = 64 the paper reports 31.5 and 3.75.
func TransferRatios(p float64) (cannon, solomonik float64) {
	t := TesseractTransfers(p)
	return CannonTransfers(p) / t, Solomonik25DTransfers(p) / t
}

// CrossoverVsCannon reports whether Tesseract (d = q) needs fewer transfers
// than Cannon's algorithm at p GPUs. §3.1 states the crossover as "q > 2",
// where the surrounding sentence ("it usually requires more than four GPUs")
// shows the symbol denotes the GPU count: 2p^{2/3} < 2p^{3/2} − 2p^{1/2}
// holds exactly for p > 2.
func CrossoverVsCannon(p int) bool {
	f := float64(p)
	return TesseractTransfers(f) < CannonTransfers(f)
}

// CrossoverVs25D reports whether Tesseract beats the 2.5-D algorithm at p
// GPUs; 2p^{2/3} < 2p − 2p^{1/3} holds exactly for p > 4, the paper's
// "q > 4".
func CrossoverVs25D(p int) bool {
	f := float64(p)
	return TesseractTransfers(f) < Solomonik25DTransfers(f)
}

// MemoryTesseract is Eq. 8: per-GPU elements for one [a,b]·[b,c] matmul on
// p = d·q² processors: ab/p + bcd/p + ac/p.
func MemoryTesseract(a, b, c, q, d float64) float64 {
	p := d * q * q
	return a*b/p + b*c*d/p + a*c/p
}

// MemoryMegatron is Eq. 10: a fully replicated input plus 1/p of the
// parameters and output: ab + bc/p + ac/p.
func MemoryMegatron(a, b, c, p float64) float64 {
	return a*b + b*c/p + a*c/p
}

// MegatronCommVolume is §3.1's per-layer Megatron communication time model,
// 2β(p−1)·b·s·h/p, returned in scalar units (multiply by β and the per-pass
// all-reduce count externally).
func MegatronCommVolume(p, batch, seq, hidden float64) float64 {
	return 2 * (p - 1) * batch * seq * hidden / p
}

// OptimusCommVolume is §3.1's Optimus model, 2·b·s·h·2q·log(p)/p.
func OptimusCommVolume(p, q, batch, seq, hidden float64) float64 {
	return 2 * batch * seq * hidden * 2 * q * math.Log2(p) / p
}

// CannonBandwidthLowerBound is Eq. 1: W = Ω(n²/√p) for an n×n multiply.
func CannonBandwidthLowerBound(n, p float64) float64 {
	return n * n / math.Sqrt(p)
}

// CannonLatencyLowerBound is Eq. 2: S = Ω(√p).
func CannonLatencyLowerBound(p float64) float64 {
	return math.Sqrt(p)
}

// Solomonik25DBandwidthLowerBound is Eq. 4: W = Ω(n²/√(dp)).
func Solomonik25DBandwidthLowerBound(n, p, d float64) float64 {
	return n * n / math.Sqrt(d*p)
}

// Solomonik25DLatencyLowerBound is Eq. 5: S = Ω(p^{1/2}/d^{3/2}).
func Solomonik25DLatencyLowerBound(p, d float64) float64 {
	return math.Sqrt(p) / math.Pow(d, 1.5)
}

// IsoefficiencyMegatron is §3.1: W ~ p³.
func IsoefficiencyMegatron(p float64) float64 { return p * p * p }

// IsoefficiencyOptimus is §3.1: W ~ (√p · log p)³.
func IsoefficiencyOptimus(p float64) float64 {
	v := math.Sqrt(p) * math.Log2(p)
	return v * v * v
}
