package serve

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/vit"
)

// Server runs a distributed ViT in inference mode on one persistent
// simulated cluster: requests index the dataset's test split (round-robin),
// the batcher coalesces them, and every forward slices a padded batch
// through the same vit.DistModel path the trainer evaluates with —
// workspace-pooled, so steady-state serving stays out of the allocator
// exactly like steady-state training.
type Server struct {
	cfg  Config
	l    parallel.Layout
	ds   *vit.Dataset
	mcfg vit.ModelConfig
	tc   vit.TrainConfig

	c      *dist.Cluster
	fams   []parallel.Family
	models []*vit.DistModel
	opts   []*nn.Adam

	s, unit   int
	steps     int              // training steps taken so far (step indices)
	xbuf      []*tensor.Matrix // per-rank [maxPadded·s, patchDim] batch assembly buffer
	views     [][]*tensor.Matrix
	clk, clks []*tensor.Matrix // per-rank 1×1 clock block and [world,1] gather
	world     []*dist.Group    // per-rank cached world group (Group() allocates its key)
}

// NewServer validates the layout against the model, builds the cluster and
// the per-rank models (drawn from ModelConfig.Seed, so every rank and every
// independently built reference shard the same weights), and preallocates
// the serving buffers. tc configures TrainSteps; its batch size must divide
// by the layout's row shards.
func NewServer(l parallel.Layout, ds *vit.Dataset, mcfg vit.ModelConfig, tc vit.TrainConfig, cfg Config) (*Server, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	l, err = parallel.Validate(l)
	if err != nil {
		return nil, err
	}
	if len(ds.Test) == 0 {
		return nil, fmt.Errorf("serve: dataset has no test samples to serve")
	}
	unit := l.RowShards()
	if err := vit.TrainableErr(l, unit, mcfg); err != nil {
		return nil, fmt.Errorf("serve: %s cannot run this model: %w", l, err)
	}
	world := l.Ranks
	s := &Server{
		cfg: cfg, l: l, ds: ds, mcfg: mcfg, tc: tc,
		c:      dist.New(dist.Config{WorldSize: world}),
		fams:   make([]parallel.Family, world),
		models: make([]*vit.DistModel, world),
		opts:   make([]*nn.Adam, world),
		s:      mcfg.SeqLen,
		unit:   unit,
		xbuf:   make([]*tensor.Matrix, world),
		views:  make([][]*tensor.Matrix, world),
		clk:    make([]*tensor.Matrix, world),
		clks:   make([]*tensor.Matrix, world),
		world:  make([]*dist.Group, world),
	}
	maxPadded := (cfg.MaxBatch + unit - 1) / unit * unit
	err = s.c.Run(func(w *dist.Worker) error {
		r := w.Rank()
		f, err := parallel.New(w, l)
		if err != nil {
			return err
		}
		s.fams[r] = f
		s.models[r] = vit.NewDistModel(f, mcfg)
		s.opts[r] = nn.NewAdam(tc.LR, tc.WeightDecay)
		s.xbuf[r] = tensor.New(maxPadded*s.s, mcfg.PatchDim)
		for k := 1; k <= maxPadded/unit; k++ {
			rows := k * unit * s.s
			s.views[r] = append(s.views[r], tensor.FromSlice(rows, mcfg.PatchDim, s.xbuf[r].Data[:rows*mcfg.PatchDim]))
		}
		s.clk[r] = tensor.New(1, 1)
		s.clks[r] = tensor.New(world, 1)
		s.world[r] = w.Cluster().WorldGroup()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Layout returns the layout the server runs.
func (s *Server) Layout() parallel.Layout { return s.l }

// TrainSteps advances the model n steps down the trainer's exact step path
// (epoch-shuffled batches, step-indexed), so a served model is bitwise the
// model an equally trained trainer holds.
func (s *Server) TrainSteps(n int) error {
	if n <= 0 {
		return nil
	}
	if s.tc.BatchSize > 0 && s.tc.BatchSize%s.unit != 0 {
		return fmt.Errorf("serve: train batch %d not divisible by %s's %d row shards", s.tc.BatchSize, s.l, s.unit)
	}
	start := s.steps
	err := s.c.Run(func(w *dist.Worker) error {
		r := w.Rank()
		for step := start; step < start+n; step++ {
			vit.TrainStep(w, s.fams[r], s.models[r], s.opts[r], s.ds, s.tc, s.s, step)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.steps += n
	return nil
}

// syncClock agrees on the current instant across the cluster: every rank
// contributes its simulated clock as data and takes the max locally, so all
// ranks compute the identical value. The gather itself is the batch's
// completion barrier and is charged to the clock like any collective.
func (s *Server) syncClock(w *dist.Worker) float64 {
	r := w.Rank()
	if s.l.Ranks == 1 {
		return w.Clock()
	}
	s.clk[r].Data[0] = w.Clock()
	s.world[r].AllGatherInto(w, s.clk[r], s.clks[r])
	var m float64
	for _, v := range s.clks[r].Data {
		if v > m {
			m = v
		}
	}
	return m
}

// Serve drains one arrival trace through the queue, the batcher and the
// model, and returns the full latency report. Request i is served the test
// sample i mod len(Test); ragged batches are padded up to the family's row
// divisibility unit by repeating the batch's first sample — exactly the
// trainer's eval-tail treatment — and padding rows are discarded.
func (s *Server) Serve(a ArrivalConfig) (*Report, error) {
	arrivals, err := a.Times()
	if err != nil {
		return nil, err
	}
	classes := make([]int, len(arrivals))
	var logits *tensor.Matrix
	if s.cfg.KeepLogits {
		logits = tensor.New(len(arrivals), s.mcfg.Classes)
	}
	var rep *Report
	// Fresh timing window: durations are differences of synced clocks, and
	// starting every trace at t=0 keeps them bit-identical across repeated
	// Serve calls (a large clock base would perturb the low-order bits).
	s.c.ResetClocks()
	err = s.c.Run(func(w *dist.Worker) error {
		r := w.Rank()
		f, model := s.fams[r], s.models[r]
		prev := s.syncClock(w)
		tr := runTrace(s.cfg, arrivals, func(ids []int) (int, float64) {
			padded := (len(ids) + s.unit - 1) / s.unit * s.unit
			x := s.views[r][padded/s.unit-1]
			for j := 0; j < padded; j++ {
				id := ids[0] // padding repeats the batch head's sample
				if j < len(ids) {
					id = ids[j]
				}
				x.SetSubMatrix(j*s.s, 0, s.ds.Test[id%len(s.ds.Test)].Patches)
			}
			out := model.Forward(vit.DistributeBatch(f, x, s.s))
			if r == 0 {
				for j, id := range ids {
					classes[id] = argmax(out.Row(j))
					if logits != nil {
						copy(logits.Row(id), out.Row(j))
					}
				}
			}
			f.EndStep()
			t := s.syncClock(w)
			dur := t - prev
			prev = t
			return padded, dur
		})
		if r == 0 {
			rep = tr.report()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rep.Requests {
		if !rep.Requests[i].Rejected {
			rep.Requests[i].Class = classes[i]
		}
	}
	rep.Logits = logits
	return rep, nil
}

func argmax(row []float64) int {
	best := 0
	for j, v := range row {
		if v > row[best] {
			best = j
		}
	}
	return best
}
