package serve

// The continuous micro-batcher. One trace instance runs per rank, inside
// one cluster Run, and every rank executes the identical pure event loop:
// the only inputs are the arrival times (shared data) and each batch's
// service duration, which the caller's exec closure derives from an
// all-gather of the per-rank simulated clocks — also shared data. Nothing
// here reads goroutine-scheduling-dependent state, which is what makes
// batch formation deterministic and identical on every rank.
//
// Time semantics: `now` is the server's logical clock on the arrival time
// base. It advances to arrival instants while idle, to batch-close instants
// when sealing, and by the measured service duration across each forward.
// Queue slots free at batch close; at a single instant, arrivals are
// admitted (or rejected) before the close frees slots, so admission counts
// are exact at the QueueDepth bound.
type trace struct {
	cfg  Config
	arr  []float64
	req  []Request
	stat []BatchStat

	pending []int // admitted request ids, FIFO
	batch   []int // the batch being handed to exec (reused)
	next    int   // first arrival not yet admitted or rejected
	now     float64
}

func newTrace(cfg Config, arrivals []float64) *trace {
	return &trace{
		cfg:     cfg,
		arr:     arrivals,
		req:     make([]Request, len(arrivals)),
		pending: make([]int, 0, cfg.QueueDepth),
		batch:   make([]int, 0, cfg.MaxBatch),
	}
}

// admit processes every arrival at or before t, in arrival order: each
// either takes a queue slot or is rejected on the spot.
func (t *trace) admit(tm float64) {
	for t.next < len(t.arr) && t.arr[t.next] <= tm {
		i := t.next
		t.next++
		t.req[i] = Request{ID: i, Arrive: t.arr[i], Class: -1}
		if len(t.pending) >= t.cfg.QueueDepth {
			t.req[i].Rejected = true
			continue
		}
		t.pending = append(t.pending, i)
	}
}

// nextBatch forms and seals the next batch, advancing `now` to its close
// instant, or returns nil when every arrival has been drained. A batch
// closes at the earlier of (a) the oldest member's arrival plus the latency
// budget and (b) the instant it fills to MaxBatch — but never before `now`:
// after a busy window the backlog closes immediately.
func (t *trace) nextBatch() []int {
	t.admit(t.now)
	if len(t.pending) == 0 {
		if t.next >= len(t.arr) {
			return nil
		}
		t.now = t.arr[t.next] // idle: jump to the next arrival
		t.admit(t.now)
	}
	deadline := t.req[t.pending[0]].Arrive + t.cfg.LatencyBudget
	if deadline < t.now {
		deadline = t.now
	}
	// Let arrivals inside the wait window join (or bounce off) the queue.
	for len(t.pending) < t.cfg.MaxBatch && t.next < len(t.arr) && t.arr[t.next] <= deadline {
		t.admit(t.arr[t.next])
	}
	k := len(t.pending)
	closeAt := deadline
	if k >= t.cfg.MaxBatch {
		k = t.cfg.MaxBatch
		// Full before the deadline: seal when the filling request arrived
		// (or right now, if the backlog was already there).
		if at := t.req[t.pending[k-1]].Arrive; at > t.now {
			closeAt = at
		} else {
			closeAt = t.now
		}
	}
	t.batch = append(t.batch[:0], t.pending[:k]...)
	n := copy(t.pending, t.pending[k:])
	t.pending = t.pending[:n]
	t.now = closeAt
	for _, id := range t.batch {
		t.req[id].BatchClose = closeAt
	}
	return t.batch
}

// complete records the sealed batch's measured service duration: replies
// are stamped, `now` crosses the forward, and arrivals that landed during
// it are admitted against the freed queue.
func (t *trace) complete(padded int, dur float64) {
	t.now += dur
	for _, id := range t.batch {
		t.req[id].Reply = t.now
	}
	t.stat = append(t.stat, BatchStat{
		Size: len(t.batch), Padded: padded,
		Close: t.req[t.batch[0]].BatchClose, Done: t.now,
	})
	t.admit(t.now)
}

// report folds the drained trace into a Report.
func (t *trace) report() *Report {
	r := &Report{Requests: t.req, Batches: t.stat, SimSeconds: t.now}
	for _, q := range t.req {
		if q.Rejected {
			r.Rejected++
		} else {
			r.Admitted++
			r.Completed++
		}
	}
	if len(t.stat) == 0 {
		r.SimSeconds = 0
	}
	return r
}

// runTrace drives the event loop to exhaustion. exec runs one sealed batch
// (request ids, in order) and returns its service duration in simulated
// seconds; padded reports the row count the forward actually ran for the
// batch statistics. Every rank of a cluster must call runTrace with
// identical cfg and arrivals and an exec whose returned duration is
// identical on every rank (derive it from all-gathered clocks).
func runTrace(cfg Config, arrivals []float64, exec func(ids []int) (padded int, dur float64)) *trace {
	t := newTrace(cfg, arrivals)
	for {
		b := t.nextBatch()
		if b == nil {
			return t
		}
		padded, dur := exec(b)
		t.complete(padded, dur)
	}
}
