package serve

import (
	"math"
	"testing"
)

func TestParseDuration(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"2ms", 2e-3},
		{"250us", 250e-6},
		{"250µs", 250e-6},
		{"100ns", 100e-9},
		{"0.5s", 0.5},
		{"1e3us", 1e-3},
		{"0.001", 1e-3}, // bare number = seconds
		{"0", 0},
		{"0ms", 0},
		{" 2 ms ", 2e-3},
		{"2MS", 2e-3},
	} {
		got, err := ParseDuration(tc.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", tc.in, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-18 {
			t.Errorf("ParseDuration(%q) = %g, want %g", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "ms", "-3ms", "2mss", "nan", "inf", "+inf", "1e400", "2 m s", "--2ms"} {
		if v, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) = %g, want error", bad, v)
		}
	}
}

func TestParseRate(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"12/s", 12},
		{"0.5/ms", 500},
		{"200hz", 200},
		{"200Hz", 200},
		{"1500", 1500}, // bare number = per second
		{"inf", math.Inf(1)},
		{"INF", math.Inf(1)},
		{"+inf", math.Inf(1)},
		{"burst", math.Inf(1)},
		{"Burst", math.Inf(1)},
		{" 12/s ", 12},
	} {
		got, err := ParseRate(tc.in)
		if err != nil {
			t.Errorf("ParseRate(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want && math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ParseRate(%q) = %g, want %g", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "/s", "hz", "0/s", "-5/s", "nan", "1e400", "12/m", "burst/s"} {
		if v, err := ParseRate(bad); err == nil {
			t.Errorf("ParseRate(%q) = %g, want error", bad, v)
		}
	}
}
