package serve

import (
	"strings"
	"testing"

	"repro/internal/parallel"
	"repro/internal/vit"

	// Serving is family-agnostic; register all three for the parity tests.
	_ "repro/internal/megatron"
	_ "repro/internal/optimus"
	_ "repro/internal/tesseract"
)

// fixture is the tiny real-data ViT the serving tests run — small enough
// that every family layout serves in milliseconds.
func fixture() (*vit.Dataset, vit.ModelConfig, vit.TrainConfig) {
	dcfg := vit.DataConfig{Classes: 4, ImageSize: 8, Channels: 3, PatchSize: 4, Train: 8, Test: 4, Seed: 11}
	ds := vit.NewDataset(dcfg)
	mcfg := vit.ModelConfig{
		PatchDim: dcfg.PatchDim(), SeqLen: dcfg.Patches(),
		Hidden: 16, Heads: 4, Layers: 2, Classes: dcfg.Classes, Seed: 3,
	}
	tc := vit.TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 5}
	return ds, mcfg, tc
}

// familyLayouts are the default representative of each registered family —
// the set every serving property is checked against.
func familyLayouts() []parallel.Layout {
	return []parallel.Layout{
		{Family: "megatron", Ranks: 4},
		{Family: "optimus", Q: 2},
		{Family: "tesseract", Q: 2, D: 2},
	}
}

// TestServeDeterministicAcrossRuns: batch formation and every latency stamp
// are a pure function of the arrival trace — rebuilding the cluster and
// re-running (fresh goroutines, different scheduling, -race -count=3 in CI)
// reproduces the report bit for bit.
func TestServeDeterministicAcrossRuns(t *testing.T) {
	ds, mcfg, tc := fixture()
	for _, l := range familyLayouts() {
		a := ArrivalConfig{N: 24, Rate: 30000, Seed: 17}
		run := func() *Report {
			srv, err := NewServer(l, ds, mcfg, tc, Config{MaxBatch: 4, LatencyBudget: 1e-4, QueueDepth: 8, KeepLogits: true})
			if err != nil {
				t.Fatalf("%s: %v", l, err)
			}
			if err := srv.TrainSteps(2); err != nil {
				t.Fatalf("%s: %v", l, err)
			}
			rep, err := srv.Serve(a)
			if err != nil {
				t.Fatalf("%s: %v", l, err)
			}
			return rep
		}
		x, y := run(), run()
		if len(x.Requests) != len(y.Requests) || len(x.Batches) != len(y.Batches) {
			t.Fatalf("%s: run shape differs: %d/%d requests, %d/%d batches",
				l, len(x.Requests), len(y.Requests), len(x.Batches), len(y.Batches))
		}
		for i := range x.Requests {
			if x.Requests[i] != y.Requests[i] {
				t.Fatalf("%s: request %d differs across runs:\n%+v\n%+v", l, i, x.Requests[i], y.Requests[i])
			}
		}
		for i := range x.Batches {
			if x.Batches[i] != y.Batches[i] {
				t.Fatalf("%s: batch %d differs across runs:\n%+v\n%+v", l, i, x.Batches[i], y.Batches[i])
			}
		}
		if !x.Logits.Equal(y.Logits) {
			t.Fatalf("%s: logits differ across runs", l)
		}
	}
}

// TestServeRepeatOnLiveCluster: serving the same trace twice on one live
// cluster (accumulated simulated clocks, warm pools) yields the identical
// report — durations are differences of synced clocks, not absolutes.
func TestServeRepeatOnLiveCluster(t *testing.T) {
	ds, mcfg, tc := fixture()
	srv, err := NewServer(parallel.Layout{Family: "tesseract", Q: 2, D: 2}, ds, mcfg, tc,
		Config{MaxBatch: 4, LatencyBudget: 1e-4, QueueDepth: 8, KeepLogits: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.TrainSteps(2); err != nil {
		t.Fatal(err)
	}
	a := ArrivalConfig{N: 24, Rate: 30000, Seed: 17}
	x, err := srv.Serve(a)
	if err != nil {
		t.Fatal(err)
	}
	y, err := srv.Serve(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Requests {
		if x.Requests[i] != y.Requests[i] {
			t.Fatalf("request %d differs on repeat: %+v vs %+v", i, x.Requests[i], y.Requests[i])
		}
	}
	if !x.Logits.Equal(y.Logits) {
		t.Fatal("logits differ on repeat serve")
	}
}

// TestInferenceMatchesTrainingForward: for every family layout, a model
// trained through the serving runtime holds bitwise the trainer's weights,
// and a served batch — including the ragged tail batch that needs padding —
// produces bitwise the logits of the trainer's eval forward on the same
// rows. This pins the serving forward to the training forward exactly, the
// eval-tail bug class included.
func TestInferenceMatchesTrainingForward(t *testing.T) {
	ds, mcfg, tc := fixture()
	for _, l := range familyLayouts() {
		// Burst of 7 at MaxBatch 4: batches [0..3] (full) and [4,5,6] — the
		// ragged tail, padded up to the family's row-shard unit (4 for
		// tesseract [2,2,2] and optimus [2,2]) by repeating the batch head's
		// sample.
		srv, err := NewServer(l, ds, mcfg, tc, Config{MaxBatch: 4, QueueDepth: 8, KeepLogits: true})
		if err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		if err := srv.TrainSteps(2); err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		rep, err := srv.Serve(Saturated(7))
		if err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		if len(rep.Batches) != 2 || rep.Batches[0].Size != 4 || rep.Batches[1].Size != 3 {
			t.Fatalf("%s: want batches of 4 and 3, got %+v", l, rep.Batches)
		}
		if unit := l.RowShards(); rep.Batches[1].Padded != ((3+unit-1)/unit)*unit {
			t.Fatalf("%s: tail batch padded to %d, want multiple of unit %d", l, rep.Batches[1].Padded, unit)
		}

		// The trainer-path reference: same layout, same seeds, same number
		// of steps down the trainer's exact step path.
		sb, err := vit.NewStepBencher(l, ds, mcfg, tc, 0)
		if err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		if err := sb.TrainSteps(2); err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		for _, batch := range [][]int{{0, 1, 2, 3}, {4, 5, 6}} {
			want, err := sb.EvalLogits(batch)
			if err != nil {
				t.Fatalf("%s: %v", l, err)
			}
			for j, id := range batch {
				got := rep.Logits.Row(id)
				ref := want.Row(j)
				for k := range ref {
					if got[k] != ref[k] {
						t.Fatalf("%s: request %d logit %d: served %g, trainer eval %g — serving forward diverged bitwise",
							l, id, k, got[k], ref[k])
					}
				}
			}
		}
	}
}

// TestServerRejectsUntrainableLayout: an indivisible layout is one
// actionable error naming the offending dimension, not a panic.
func TestServerRejectsUntrainableLayout(t *testing.T) {
	ds, mcfg, tc := fixture()
	_, err := NewServer(parallel.Layout{Family: "megatron", Ranks: 3}, ds, mcfg, tc, Config{})
	if err == nil || !strings.Contains(err.Error(), "not divisible") {
		t.Fatalf("want a divisibility error, got %v", err)
	}
	_, err = NewServer(parallel.Layout{Family: "nosuch", Ranks: 4}, ds, mcfg, tc, Config{})
	if err == nil || !strings.Contains(err.Error(), "unknown family") {
		t.Fatalf("want an unknown-family error, got %v", err)
	}
}
