package serve

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// measureBatches is how many batches each measurement trace averages over.
// Simulated clocks have no warm-up, so a short trace is exact.
const measureBatches = 3

// MeasureLayout replays one serving candidate for real: it builds the
// candidate's layout on a fresh simulated cluster, stacks the workload's
// Transformer blocks in phantom mode — exactly the execution the planner's
// Cost closures price — and drives two saturated traces through the real
// batcher event loop with clock-synced completions: one at the workload's
// full batch (full-batch latency and saturated throughput) and one at the
// grid's row-shard minimum (interactive latency). It is plan.Validate's
// serving twin; wrap it with Measurer to get a plan.ServingMeasurer.
func MeasureLayout(p plan.ServingPlan, w plan.Workload, t plan.Topology) (plan.ServingMeasurement, error) {
	w, err := w.WithDefaults()
	if err != nil {
		return plan.ServingMeasurement{}, err
	}
	t, err = t.WithDefaults()
	if err != nil {
		return plan.ServingMeasurement{}, err
	}
	l, err := p.Layout().Normalize()
	if err != nil {
		return plan.ServingMeasurement{}, err
	}
	unit := l.RowShards()
	if unit > w.Batch {
		return plan.ServingMeasurement{}, fmt.Errorf("serve: layout %s needs %d sequences per forward, workload batches %d", l, unit, w.Batch)
	}
	full, err := measureTrace(l, w, t, w.Batch)
	if err != nil {
		return plan.ServingMeasurement{}, err
	}
	min := full
	if unit != w.Batch {
		min, err = measureTrace(l, w, t, unit)
		if err != nil {
			return plan.ServingMeasurement{}, err
		}
	}
	out := plan.ServingMeasurement{MinLatency: min.meanService(), FullLatency: full.meanService()}
	if full.report.SimSeconds > 0 {
		out.Throughput = full.report.Throughput()
	}
	return out, nil
}

// Measurer binds a workload and topology into the plan.ServingMeasurer
// closure ValidateServingTop replays candidates through.
func Measurer(w plan.Workload, t plan.Topology) plan.ServingMeasurer {
	return func(p plan.ServingPlan) (plan.ServingMeasurement, error) {
		return MeasureLayout(p, w, t)
	}
}

// measured is one saturated trace's outcome.
type measured struct {
	report *Report
}

// meanService averages the batch service durations.
func (m measured) meanService() float64 {
	if len(m.report.Batches) == 0 {
		return 0
	}
	var sum float64
	for _, b := range m.report.Batches {
		sum += b.Done - b.Close
	}
	return sum / float64(len(m.report.Batches))
}

// measureTrace runs measureBatches saturated batches of `batch` requests
// (one sequence each) through the phantom layer stack on a fresh cluster.
// Every rank runs the identical event loop; service durations come from the
// all-gathered clock maximum, exactly as in Server.Serve.
func measureTrace(l parallel.Layout, w plan.Workload, t plan.Topology, batch int) (measured, error) {
	// Saturated probe: zero budget seals batches as soon as the server is
	// free, and the queue holds the whole burst so nothing is rejected.
	cfg := Config{MaxBatch: batch, LatencyBudget: 0, QueueDepth: measureBatches * batch}
	arrivals, err := Saturated(measureBatches * batch).Times()
	if err != nil {
		return measured{}, err
	}
	c := dist.New(dist.Config{WorldSize: l.Ranks, GPUsPerNode: t.GPUsPerNode, Cost: t.Cost})
	unit := l.RowShards()
	var rep *Report
	err = c.Run(func(wk *dist.Worker) error {
		f, err := parallel.New(wk, l)
		if err != nil {
			return err
		}
		blocks := make([]parallel.Layer, w.Layers)
		for i := range blocks {
			blocks[i] = f.NewBlockPhantom(w.Hidden, w.Heads, w.SeqLen)
		}
		clk, clks := tensor.New(1, 1), tensor.New(l.Ranks, 1)
		world := wk.Cluster().WorldGroup()
		sync := func() float64 {
			if l.Ranks == 1 {
				return wk.Clock()
			}
			clk.Data[0] = wk.Clock()
			world.AllGatherInto(wk, clk, clks)
			var m float64
			for _, v := range clks.Data {
				if v > m {
					m = v
				}
			}
			return m
		}
		prev := sync()
		tr := runTrace(cfg, arrivals, func(ids []int) (int, float64) {
			padded := (len(ids) + unit - 1) / unit * unit
			sl := f.Slice(padded*w.SeqLen, w.Hidden)
			x := tensor.NewPhantom(sl.Rows, sl.Cols)
			for _, b := range blocks {
				x = b.Forward(x)
			}
			f.EndStep()
			now := sync()
			dur := now - prev
			prev = now
			return padded, dur
		})
		if wk.Rank() == 0 {
			rep = tr.report()
		}
		return nil
	})
	if err != nil {
		return measured{}, err
	}
	return measured{report: rep}, nil
}
