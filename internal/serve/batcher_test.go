package serve

import (
	"math"
	"testing"
)

// fixedExec is a scheduling-free stand-in for a model forward: every batch
// takes the same simulated service time.
func fixedExec(unit int, dur float64) func(ids []int) (int, float64) {
	return func(ids []int) (int, float64) {
		padded := (len(ids) + unit - 1) / unit * unit
		return padded, dur
	}
}

// TestAdmissionExactAtBound: a burst of N arrivals against a depth-Q queue
// admits exactly min(N, Q) and rejects exactly max(0, N-Q) — the admission
// bound is exact, not approximate, because arrivals at an instant are
// processed before any batch close frees slots.
func TestAdmissionExactAtBound(t *testing.T) {
	for _, tc := range []struct{ n, depth, wantRej int }{
		{n: 5, depth: 8, wantRej: 0},
		{n: 8, depth: 8, wantRej: 0},
		{n: 9, depth: 8, wantRej: 1},
		{n: 40, depth: 8, wantRej: 32},
		{n: 1, depth: 1, wantRej: 0},
		{n: 3, depth: 1, wantRej: 2},
	} {
		cfg := Config{MaxBatch: 4, LatencyBudget: 0, QueueDepth: tc.depth}
		arrivals, err := Saturated(tc.n).Times()
		if err != nil {
			t.Fatal(err)
		}
		tr := runTrace(cfg, arrivals, fixedExec(1, 1e-3))
		rep := tr.report()
		if rep.Rejected != tc.wantRej || rep.Admitted != tc.n-tc.wantRej {
			t.Errorf("burst %d depth %d: admitted %d rejected %d, want %d/%d",
				tc.n, tc.depth, rep.Admitted, rep.Rejected, tc.n-tc.wantRej, tc.wantRej)
		}
		if rep.Completed != rep.Admitted {
			t.Errorf("burst %d depth %d: %d admitted but %d completed — trace did not drain",
				tc.n, tc.depth, rep.Admitted, rep.Completed)
		}
		// Rejections must be the tail of the burst: admission is in arrival
		// order.
		for i, q := range rep.Requests {
			if got, want := q.Rejected, i >= tc.depth; got != want {
				t.Errorf("burst %d depth %d: request %d rejected=%v, want %v", tc.n, tc.depth, i, got, want)
			}
		}
	}
}

// TestRejectedSlotsFreeOnClose: once a batch closes, freed slots admit later
// arrivals again — rejection is a property of the instant, not the request.
func TestRejectedSlotsFreeOnClose(t *testing.T) {
	cfg := Config{MaxBatch: 2, LatencyBudget: 0, QueueDepth: 2}
	// Two arrivals fill the queue at t=0; the third at t=0 bounces; the
	// fourth lands after the first batch (dur 1ms) closed and freed slots.
	arrivals := []float64{0, 0, 0, 2e-3}
	tr := runTrace(cfg, arrivals, fixedExec(1, 1e-3))
	rep := tr.report()
	if rep.Rejected != 1 || rep.Requests[2].Rejected != true {
		t.Fatalf("want exactly request 2 rejected, got report %+v", rep.Requests)
	}
	if rep.Requests[3].Rejected {
		t.Fatalf("request 3 arrived after slots freed and must be admitted")
	}
}

// TestWaitBoundUnlessBusy: no request waits in the open batch past the
// latency budget unless the server was continuously busy — in which case its
// batch closed exactly at a previous batch's completion instant.
func TestWaitBoundUnlessBusy(t *testing.T) {
	const budget = 1e-3
	cfg := Config{MaxBatch: 4, LatencyBudget: budget, QueueDepth: 64}
	// A paced trace slow enough that batches close on the budget, dense
	// enough that busy windows form (service 3ms > mean inter-arrival 1ms).
	arrivals, err := ArrivalConfig{N: 200, Rate: 1000, Seed: 7}.Times()
	if err != nil {
		t.Fatal(err)
	}
	tr := runTrace(cfg, arrivals, fixedExec(1, 3e-3))
	rep := tr.report()
	done := map[float64]bool{}
	for _, b := range rep.Batches {
		done[b.Done] = true
	}
	const eps = 1e-12
	exceeded := 0
	for _, q := range rep.Requests {
		if q.Rejected {
			continue
		}
		if q.Wait() <= budget+eps {
			continue
		}
		exceeded++
		if !done[q.BatchClose] {
			t.Errorf("request %d waited %.6g > budget %.6g but its batch closed at %.6g, not at a batch completion — the server was idle",
				q.ID, q.Wait(), budget, q.BatchClose)
		}
	}
	if exceeded == 0 {
		t.Fatalf("trace never exceeded the budget — the busy invariant was not exercised")
	}
}

// TestWaitBoundIdle: with the server never busy (instant service), no
// admitted request ever waits past the budget.
func TestWaitBoundIdle(t *testing.T) {
	const budget = 1e-3
	cfg := Config{MaxBatch: 4, LatencyBudget: budget, QueueDepth: 64}
	arrivals, err := ArrivalConfig{N: 300, Rate: 5000, Seed: 3}.Times()
	if err != nil {
		t.Fatal(err)
	}
	tr := runTrace(cfg, arrivals, fixedExec(1, 0))
	for _, q := range tr.report().Requests {
		if q.Rejected {
			t.Fatalf("request %d rejected under instant service", q.ID)
		}
		if q.Wait() > budget+1e-12 {
			t.Errorf("request %d waited %.6g > budget %.6g with an idle server", q.ID, q.Wait(), budget)
		}
	}
}

// TestBatchSealsEarlyWhenFull: a burst larger than MaxBatch seals full
// batches immediately (close at t=0 for the first), never waiting out the
// budget.
func TestBatchSealsEarlyWhenFull(t *testing.T) {
	cfg := Config{MaxBatch: 4, LatencyBudget: 1.0, QueueDepth: 64}
	arrivals, err := Saturated(10).Times()
	if err != nil {
		t.Fatal(err)
	}
	tr := runTrace(cfg, arrivals, fixedExec(1, 1e-3))
	rep := tr.report()
	if len(rep.Batches) != 3 {
		t.Fatalf("10 requests at MaxBatch 4: want 3 batches, got %d", len(rep.Batches))
	}
	if got := rep.Batches[0]; got.Size != 4 || got.Close != 0 {
		t.Errorf("first batch must seal full at t=0, got size %d close %.6g", got.Size, got.Close)
	}
	// The ragged tail: 2 requests, padded is exec's business (unit 1 here).
	if got := rep.Batches[2]; got.Size != 2 {
		t.Errorf("tail batch size %d, want 2", got.Size)
	}
}

// TestBatcherDeterministicReplay: the event loop is a pure function of
// (config, arrivals, durations) — replaying the identical inputs yields
// identical stamps, batch for batch, bit for bit.
func TestBatcherDeterministicReplay(t *testing.T) {
	cfg := Config{MaxBatch: 3, LatencyBudget: 5e-4, QueueDepth: 6}
	arrivals, err := ArrivalConfig{N: 150, Rate: 2500, Seed: 11}.Times()
	if err != nil {
		t.Fatal(err)
	}
	run := func() *trace {
		// Durations vary per batch but deterministically, like a real model
		// whose service time depends on the padded size.
		return runTrace(cfg, arrivals, func(ids []int) (int, float64) {
			return len(ids), 1e-4 * float64(len(ids))
		})
	}
	a, b := run(), run()
	if len(a.req) != len(b.req) || len(a.stat) != len(b.stat) {
		t.Fatalf("replay changed shape: %d/%d requests, %d/%d batches", len(a.req), len(b.req), len(a.stat), len(b.stat))
	}
	for i := range a.req {
		if a.req[i] != b.req[i] {
			t.Fatalf("request %d differs across replays: %+v vs %+v", i, a.req[i], b.req[i])
		}
	}
	for i := range a.stat {
		if a.stat[i] != b.stat[i] {
			t.Fatalf("batch %d differs across replays: %+v vs %+v", i, a.stat[i], b.stat[i])
		}
	}
}

// TestArrivalTimes: the Poisson process is seeded, nondecreasing, and
// errors on nonsense.
func TestArrivalTimes(t *testing.T) {
	a, err := ArrivalConfig{N: 50, Rate: 100, Seed: 9}.Times()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ArrivalConfig{N: 50, Rate: 100, Seed: 9}.Times()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different arrivals at %d: %g vs %g", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals must be nondecreasing, %g after %g", a[i], a[i-1])
		}
	}
	c, err := ArrivalConfig{N: 50, Rate: 100, Seed: 10}.Times()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrivals")
	}
	if ts, err := Saturated(4).Times(); err != nil || len(ts) != 4 || ts[3] != 0 {
		t.Fatalf("burst: got %v, %v", ts, err)
	}
	for _, bad := range []ArrivalConfig{
		{N: -1, Rate: 1},
		{N: 1, Rate: 0},
		{N: 1, Rate: -2},
		{N: 1, Rate: math.NaN()},
		{N: 1, Rate: math.Inf(-1)},
	} {
		if _, err := bad.Times(); err == nil {
			t.Errorf("ArrivalConfig %+v must error", bad)
		}
	}
}

// TestConfigDefaults: zero fields fill in, invalid ones error.
func TestConfigDefaults(t *testing.T) {
	c, err := Config{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxBatch != 8 || c.QueueDepth != 32 || c.LatencyBudget != 2e-3 {
		t.Fatalf("unexpected defaults %+v", c)
	}
	for _, bad := range []Config{
		{MaxBatch: -1},
		{QueueDepth: -3},
		{LatencyBudget: -1e-3},
		{LatencyBudget: math.Inf(1)},
		{LatencyBudget: math.NaN()},
	} {
		if _, err := bad.WithDefaults(); err == nil {
			t.Errorf("Config %+v must error", bad)
		}
	}
}
