// Package serve is the inference serving runtime: it runs a trained
// parallel.Family model forward-only (no backward, no gradient sync, no
// optimiser state) against the simulated cluster clock, behind a bounded
// request queue and a continuous micro-batcher.
//
// The moving parts are deliberately small:
//
//   - ArrivalConfig generates a seeded synthetic arrival process (Poisson,
//     or an instantaneous burst at rate +Inf).
//   - Config bounds the queue (admission control rejects arrivals past
//     QueueDepth) and the batcher (at most MaxBatch requests per forward,
//     no request co-batched past its LatencyBudget).
//   - The batcher event loop (batcher.go) is pure sequential code every
//     rank executes identically; the only cross-rank quantity — when a
//     batch's forward finished — is agreed on by all-gathering the
//     per-rank simulated clocks and taking the max locally, so batch
//     formation is deterministic and invariant to goroutine scheduling.
//   - Server (server.go) drives a real vit.DistModel; MeasureLayout
//     (measure.go) drives a phantom block stack for the planner's
//     predicted-vs-measured loop.
//
// Per-request latency is accounted on the simulated clock through the whole
// pipeline: enqueue (Arrive) → admit → batch close (BatchClose) → forward →
// reply (Reply), aggregated into p50/p95/p99 and throughput by Report.
package serve

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Config bounds the request queue and the micro-batcher.
type Config struct {
	// MaxBatch is the most requests one forward pass may carry (default 8).
	MaxBatch int
	// LatencyBudget is the longest a request may wait in the open batch for
	// co-batching, in simulated seconds (default 2ms). A batch closes when
	// its oldest request has waited this long, or earlier when it fills.
	// Zero means batches close as soon as the server is free.
	LatencyBudget float64
	// QueueDepth bounds the pending queue; arrivals that find it full are
	// rejected (default 32). Slots free when a batch closes.
	QueueDepth int
	// KeepLogits retains every admitted request's logits row in
	// Report.Logits (Server only; the measurement path has no real data).
	KeepLogits bool
}

// WithDefaults fills the zero fields and validates the rest.
func (c Config) WithDefaults() (Config, error) {
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.LatencyBudget == 0 {
		c.LatencyBudget = 2e-3
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 32
	}
	if c.MaxBatch < 1 || c.QueueDepth < 1 || c.LatencyBudget < 0 ||
		math.IsNaN(c.LatencyBudget) || math.IsInf(c.LatencyBudget, 0) {
		return c, fmt.Errorf("serve: config needs MaxBatch ≥ 1, QueueDepth ≥ 1 and a finite LatencyBudget ≥ 0, got %+v", c)
	}
	return c, nil
}

// ArrivalConfig is the seeded synthetic arrival process feeding the queue.
type ArrivalConfig struct {
	// N is the number of requests.
	N int
	// Rate is the mean arrival rate in requests per simulated second.
	// +Inf means an instantaneous burst: every request arrives at t=0.
	Rate float64
	// Seed seeds the exponential inter-arrival draws (default 1; unused
	// for a burst).
	Seed uint64
}

// Times renders the process into nondecreasing arrival instants. Draws are
// exponential with mean 1/Rate from a SplitMix64 stream, so the process is
// Poisson and fully determined by (N, Rate, Seed).
func (a ArrivalConfig) Times() ([]float64, error) {
	if a.N < 0 {
		return nil, fmt.Errorf("serve: negative request count %d", a.N)
	}
	if math.IsNaN(a.Rate) || a.Rate <= 0 {
		return nil, fmt.Errorf("serve: arrival rate must be positive or +Inf, got %v", a.Rate)
	}
	seed := a.Seed
	if seed == 0 {
		seed = 1
	}
	out := make([]float64, a.N)
	if math.IsInf(a.Rate, 1) {
		return out, nil // burst: all zeros
	}
	rng := tensor.NewRNG(seed)
	t := 0.0
	for i := range out {
		t += -math.Log(1-rng.Float64()) / a.Rate
		out[i] = t
	}
	return out, nil
}

// Saturated is the burst process: n requests all at t=0 — the offered load
// that measures pure service throughput.
func Saturated(n int) ArrivalConfig {
	return ArrivalConfig{N: n, Rate: math.Inf(1)}
}

// Request is one served request's full latency record, every stamp in
// simulated seconds on a shared time base.
type Request struct {
	// ID is the arrival index.
	ID int
	// Arrive is the enqueue instant.
	Arrive float64
	// Rejected marks an arrival the admission control bounced (its
	// BatchClose/Reply stay zero).
	Rejected bool
	// BatchClose is when the micro-batcher sealed this request's batch.
	BatchClose float64
	// Reply is when the batch's forward pass finished.
	Reply float64
	// Class is the predicted label (Server only; -1 where no real
	// inference ran).
	Class int
}

// Wait is the co-batching delay: batch close minus arrival.
func (r Request) Wait() float64 { return r.BatchClose - r.Arrive }

// Latency is the full enqueue→reply time.
func (r Request) Latency() float64 { return r.Reply - r.Arrive }

// BatchStat is one executed batch: how many real requests it carried, the
// padded row count the forward actually ran, and its close/done stamps.
type BatchStat struct {
	Size, Padded int
	Close, Done  float64
}

// Report aggregates one serving trace.
type Report struct {
	// Requests holds every arrival in order, rejected ones included.
	Requests []Request
	// Batches lists every executed forward batch in order.
	Batches []BatchStat
	// Logits is the [N, classes] per-request logits matrix when
	// Config.KeepLogits was set (rejected requests keep zero rows).
	Logits *tensor.Matrix

	// Admitted, Rejected and Completed count requests; SimSeconds is the
	// last reply instant — the trace's simulated makespan.
	Admitted, Rejected, Completed int
	SimSeconds                    float64

	latencies []float64 // completed-request latencies, sorted lazily
}

// Throughput is completed requests per simulated second.
func (r *Report) Throughput() float64 {
	if r.SimSeconds == 0 {
		return 0
	}
	return float64(r.Completed) / r.SimSeconds
}

// MeanBatch is the average real batch size the forwards ran at.
func (r *Report) MeanBatch() float64 {
	if len(r.Batches) == 0 {
		return 0
	}
	return float64(r.Completed) / float64(len(r.Batches))
}

// Percentile returns the p-quantile (0 < p ≤ 1) of completed-request
// latency, by the nearest-rank rule; 0 when nothing completed.
func (r *Report) Percentile(p float64) float64 {
	if r.latencies == nil {
		r.latencies = make([]float64, 0, r.Completed)
		for _, q := range r.Requests {
			if !q.Rejected { // the trace drains fully: every admitted request replied
				r.latencies = append(r.latencies, q.Latency())
			}
		}
		sort.Float64s(r.latencies)
	}
	n := len(r.latencies)
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(p*float64(n))) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return r.latencies[k]
}

// P50, P95 and P99 are the tail-latency headline numbers.
func (r *Report) P50() float64 { return r.Percentile(0.50) }

// P95 is the 95th percentile of completed-request latency.
func (r *Report) P95() float64 { return r.Percentile(0.95) }

// P99 is the 99th percentile of completed-request latency.
func (r *Report) P99() float64 { return r.Percentile(0.99) }

// MaxWait is the longest co-batching delay any completed request saw.
func (r *Report) MaxWait() float64 {
	var out float64
	for _, q := range r.Requests {
		if !q.Rejected && q.Wait() > out {
			out = q.Wait()
		}
	}
	return out
}
