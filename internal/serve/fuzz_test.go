package serve

import (
	"math"
	"testing"
)

// FuzzParseDuration: never panic; on success the value is a finite,
// non-negative number of seconds.
func FuzzParseDuration(f *testing.F) {
	for _, s := range []string{
		"2ms", "250us", "250µs", "100ns", "0.5s", "1e3us", "0.001", "0",
		"", "ms", "-3ms", "nan", "inf", "1e400", " 2 ms ", "2MS", "--2ms", "2mss",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseDuration(s)
		if err != nil {
			return
		}
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("ParseDuration(%q) accepted %v — must be finite and non-negative", s, v)
		}
	})
}

// FuzzParseRate: never panic; on success the value is positive — finite, or
// exactly +Inf (the burst process).
func FuzzParseRate(f *testing.F) {
	for _, s := range []string{
		"12/s", "0.5/ms", "200hz", "1500", "inf", "+inf", "burst", "Burst",
		"", "/s", "hz", "0/s", "-5/s", "nan", "1e400", "12/m", "burst/s", " 12/s ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseRate(s)
		if err != nil {
			return
		}
		if !(v > 0) {
			t.Fatalf("ParseRate(%q) accepted %v — must be positive", s, v)
		}
		if math.IsNaN(v) {
			t.Fatalf("ParseRate(%q) accepted NaN", s)
		}
		// +Inf is the burst rate and must round-trip through Times without
		// error or panic.
		if _, err := (ArrivalConfig{N: 3, Rate: v, Seed: 1}).Times(); err != nil {
			t.Fatalf("ParseRate(%q) = %v but ArrivalConfig rejects it: %v", s, v, err)
		}
	})
}
