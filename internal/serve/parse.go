package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseDuration reads a human latency budget into simulated seconds: a
// number with an optional unit suffix s/ms/us/µs/ns ("2ms", "250us",
// "0.5s"); a bare number means seconds. Negative, NaN and infinite budgets
// are rejected.
func ParseDuration(s string) (float64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	mult := 1.0
	for _, u := range []struct {
		suffix string
		mult   float64
	}{
		{"ms", 1e-3}, {"us", 1e-6}, {"µs", 1e-6}, {"ns", 1e-9}, {"s", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSuffix(t, u.suffix)
			mult = u.mult
			break
		}
	}
	t = strings.TrimSpace(t)
	if t == "" {
		return 0, fmt.Errorf("serve: cannot parse duration %q", s)
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("serve: cannot parse duration %q", s)
	}
	return v * mult, nil
}

// ParseRate reads an arrival rate into requests per simulated second: a
// number with an optional per-time suffix "/s", "/ms" or "hz" ("120/s",
// "0.5/ms", "200hz"); a bare number means per second. "inf" or "burst"
// (any case, optional leading +) means an instantaneous backlog — every
// request at t=0. The rate must be positive.
func ParseRate(s string) (float64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	switch strings.TrimPrefix(t, "+") {
	case "inf", "burst":
		return math.Inf(1), nil
	}
	mult := 1.0
	for _, u := range []struct {
		suffix string
		mult   float64
	}{
		{"/ms", 1e3}, {"/s", 1}, {"hz", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSuffix(t, u.suffix)
			mult = u.mult
			break
		}
	}
	t = strings.TrimSpace(t)
	if t == "" {
		return 0, fmt.Errorf("serve: cannot parse rate %q", s)
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("serve: cannot parse rate %q", s)
	}
	return v * mult, nil
}
