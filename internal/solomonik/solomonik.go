// Package solomonik implements the 2.5-D matrix multiplication algorithm of
// Solomonik & Demmel (Euro-Par 2011), the second baseline the paper compares
// Tesseract against (§2.3, §3.1). The algorithm replicates the 2-D block
// distribution across d depth layers, lets layer k execute q/d of Cannon's
// q multiply-shift rounds starting from a k-dependent skew, and reduces the
// partial products across the depth fibres.
//
// d = 1 degenerates to Cannon's algorithm; d = q (with q/d = 1 round and no
// intermediate shifts) is the 3-D algorithm — exactly the special cases
// named in §2.3.
package solomonik

import (
	"fmt"
	"math"

	"repro/internal/cannon"
	"repro/internal/compute"
	"repro/internal/mesh"
	"repro/internal/tensor"
)

// MulAB multiplies 2-D block-distributed matrices with the 2.5-D algorithm
// on a [q, q, d] mesh where d divides q. The caller at (i, j, 0) passes its
// blocks A[i,j], B[i,j] of the q×q front-layer distribution; callers on
// deeper layers pass nil and receive the operands via the initial depth
// broadcast. Every caller returns the complete local block C[i,j] (the depth
// reduction is an all-reduce so the front layer and the replicas agree).
func MulAB(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	q, d := p.Shape.Q, p.Shape.D
	if q%d != 0 {
		panic(fmt.Sprintf("solomonik: depth %d must divide dimension %d", d, q))
	}
	if p.K == 0 {
		if a == nil || b == nil {
			panic("solomonik: front layer must provide blocks")
		}
		if a.Cols != b.Rows {
			panic(fmt.Sprintf("solomonik: local blocks %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
		}
	}
	// Step 1: replicate the front layer's blocks across the depth fibre.
	front := p.DepthRank(0)
	a = p.Depth.Broadcast(p.W, front, a)
	b = p.Depth.Broadcast(p.W, front, b)

	var c *tensor.Matrix
	if a.Phantom() || b.Phantom() {
		c = tensor.NewPhantom(a.Rows, b.Cols)
	} else {
		c = tensor.New(a.Rows, b.Cols)
	}

	// Step 2: layer k performs rounds [k·q/d, (k+1)·q/d) of the Cannon
	// schedule. The skew places A(i, i+j+k·q/d) and B(i+j+k·q/d, j) on
	// processor (i, j, k) so the inner indices line up.
	rounds := q / d
	offset := p.K * rounds
	a = cannon.ShiftLeft(p, a, p.I+offset)
	b = cannon.ShiftUp(p, b, p.J+offset)
	for t := 0; t < rounds; t++ {
		compute.MatMulInto(p.W, c, a, b)
		if t < rounds-1 {
			a = cannon.ShiftLeft(p, a, 1)
			b = cannon.ShiftUp(p, b, 1)
		}
	}

	// Step 3: sum the partial products across the depth fibre.
	return p.Depth.AllReduce(p.W, c)
}

// Transfers returns the paper's closed-form transfer count for the 2.5-D
// algorithm on p processors: 2p − 2p^{1/3} (§3.1).
func Transfers(p int) float64 {
	return 2*float64(p) - 2*math.Cbrt(float64(p))
}
