package solomonik

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cannon"
	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func TestMulABMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ q, d int }{
		{2, 1}, {2, 2}, {3, 3}, {4, 2}, {4, 4},
	} {
		t.Run(fmt.Sprintf("q%dd%d", tc.q, tc.d), func(t *testing.T) {
			s := mesh.Shape{Q: tc.q, D: tc.d}
			rng := tensor.NewRNG(uint64(tc.q*10 + tc.d))
			ga := tensor.RandomMatrix(4*tc.q, 3*tc.q, rng)
			gb := tensor.RandomMatrix(3*tc.q, 2*tc.q, rng)
			want := tensor.MatMul(ga, gb)
			testutil.Run(t, s.Size(), func(w *dist.Worker) error {
				p := mesh.NewProc(w, s)
				var la, lb *tensor.Matrix
				if p.K == 0 {
					la = ga.SubMatrix(p.I*4, p.J*3, 4, 3)
					lb = gb.SubMatrix(p.I*3, p.J*2, 3, 2)
				}
				lc := MulAB(p, la, lb)
				wantBlock := want.SubMatrix(p.I*4, p.J*2, 4, 2)
				if !lc.AllClose(wantBlock, 1e-9) {
					t.Errorf("proc (%d,%d,%d): diff %g", p.I, p.J, p.K, lc.MaxAbsDiff(wantBlock))
				}
				return nil
			})
		})
	}
}

func TestDepthOneReducesToCannonSchedule(t *testing.T) {
	// With d = 1 the 2.5-D algorithm is Cannon's algorithm plus a size-1
	// broadcast/all-reduce (both free); the point-to-point message count
	// must match Cannon's exactly.
	q := 3
	s := mesh.Shape{Q: q, D: 1}
	c := dist.New(dist.Config{WorldSize: s.Size()})
	if err := c.Run(func(w *dist.Worker) error {
		p := mesh.NewProc(w, s)
		MulAB(p, tensor.NewPhantom(2, 2), tensor.NewPhantom(2, 2))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got := c.Stats().PerOp["send"].Messages
	if got != int64(cannon.Transfers(q)) {
		t.Fatalf("d=1 sends %d messages, Cannon sends %d", got, cannon.Transfers(q))
	}
}

func TestDepthReducesShiftTraffic(t *testing.T) {
	// Increasing d replaces shift rounds with (cheaper, rarer) depth
	// collectives: point-to-point shift messages must strictly decrease.
	counts := map[int]int64{}
	for _, d := range []int{1, 2, 4} {
		s := mesh.Shape{Q: 4, D: d}
		c := dist.New(dist.Config{WorldSize: s.Size()})
		if err := c.Run(func(w *dist.Worker) error {
			p := mesh.NewProc(w, s)
			var la, lb *tensor.Matrix
			if p.K == 0 {
				la, lb = tensor.NewPhantom(2, 2), tensor.NewPhantom(2, 2)
			}
			MulAB(p, la, lb)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		counts[d] = c.Stats().PerOp["send"].Messages
	}
	if !(counts[4] < counts[2] && counts[2] < counts[1]) {
		t.Fatalf("shift messages should fall with depth: %v", counts)
	}
}

func TestTransfersFormula(t *testing.T) {
	// p = 64: 2·64 − 2·4 = 120, which is 3.75× Tesseract's 32 (§1).
	if got := Transfers(64); math.Abs(got-120) > 1e-9 {
		t.Fatalf("Transfers(64) = %g, want 120", got)
	}
}

func TestDepthMustDivideQ(t *testing.T) {
	s := mesh.Shape{Q: 4, D: 3}
	if err := s.Validate(); err != nil {
		t.Skip("shape invalid at mesh level already")
	}
	c := dist.New(dist.Config{WorldSize: s.Size()})
	err := c.Run(func(w *dist.Worker) error {
		p := mesh.NewProc(w, s)
		defer func() { recover() }()
		var la, lb *tensor.Matrix
		if p.K == 0 {
			la, lb = tensor.New(2, 2), tensor.New(2, 2)
		}
		MulAB(p, la, lb)
		t.Errorf("rank %d: expected panic for d∤q", w.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
