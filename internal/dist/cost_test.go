package dist

import (
	"math"
	"testing"
)

func TestCostModelPartialOverrideGetsPerFieldDefaults(t *testing.T) {
	// Regression: withDefaults used to check only FLOPS == 0, so a caller
	// overriding a single communication field ended up with a model whose
	// other fields were zero — Inf/NaN compute times or free links.
	def := MeluxinaModel()
	m := CostModel{Alpha: 5e-6}.withDefaults()
	if m.Alpha != 5e-6 {
		t.Fatalf("explicit Alpha %g was overwritten to %g", 5e-6, m.Alpha)
	}
	if m.FLOPS != def.FLOPS || m.BetaIntra != def.BetaIntra || m.BetaInter != def.BetaInter {
		t.Fatalf("unset fields must take the Meluxina preset, got %+v", m)
	}
	if t1 := 1e12 / m.FLOPS; math.IsInf(t1, 0) || math.IsNaN(t1) || t1 <= 0 {
		t.Fatalf("compute time %g must be finite and positive", t1)
	}

	m = CostModel{FLOPS: 1e12}.withDefaults()
	if m.FLOPS != 1e12 {
		t.Fatalf("explicit FLOPS overwritten: %+v", m)
	}
	if m.Alpha != def.Alpha || m.BetaIntra != def.BetaIntra || m.BetaInter != def.BetaInter {
		t.Fatalf("communication fields must default, got %+v", m)
	}

	if m := (CostModel{}).withDefaults(); m != def {
		t.Fatalf("zero model must equal the full preset, got %+v", m)
	}
}

func TestCostModelNegativeFieldPanics(t *testing.T) {
	for _, bad := range []CostModel{
		{FLOPS: -1},
		{Alpha: -1e-6},
		{BetaIntra: -1},
		{BetaInter: -1},
		{FLOPS: math.NaN()},
		{Alpha: math.Inf(1)},
		{FLOPS: math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("model %+v must panic", bad)
				}
			}()
			bad.withDefaults()
		}()
	}
}

func TestClusterWithPartialCostModelHasFiniteClocks(t *testing.T) {
	c := New(Config{WorldSize: 2, Cost: CostModel{Alpha: 1e-6}})
	if err := c.Run(func(w *Worker) error {
		w.Compute(1e9)
		w.Cluster().WorldGroup().Barrier(w)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if mc := c.MaxClock(); math.IsInf(mc, 0) || math.IsNaN(mc) || mc <= 0 {
		t.Fatalf("simulated clock %g must be finite and positive", mc)
	}
}

func TestOverlapEstimates(t *testing.T) {
	if got := OverlapTime(3, 5); got != 5 {
		t.Fatalf("OverlapTime(3,5) = %g, want max = 5", got)
	}
	if got := HiddenFraction(4, 2); got != 0.5 {
		t.Fatalf("HiddenFraction(4,2) = %g, want 0.5 (compute hides half the comm)", got)
	}
	if got := HiddenFraction(2, 4); got != 1 {
		t.Fatalf("HiddenFraction(2,4) = %g, want 1 (comm fully hidden)", got)
	}
	if got := HiddenFraction(0, 4); got != 1 {
		t.Fatalf("HiddenFraction(0,4) = %g, want the trivial 1", got)
	}
	m := MeluxinaModel()
	// Blocking SUMMA pays q·(comm+compute); the pipelined estimate pays the
	// fill plus q·max — strictly cheaper whenever both terms are nonzero.
	q, comm, comp := 4, 3.0, 2.0
	blocking := float64(q) * (comm + comp)
	pipelined := m.PipelinedSummaTime(q, comm, comp)
	if want := comm + float64(q)*comm; pipelined != want {
		t.Fatalf("PipelinedSummaTime = %g, want fill + q·max = %g", pipelined, want)
	}
	if pipelined >= blocking {
		t.Fatalf("pipelined estimate %g should undercut blocking %g", pipelined, blocking)
	}
	if m.PipelinedSummaTime(0, comm, comp) != 0 {
		t.Fatal("zero iterations must cost nothing")
	}
	// Exported pricing helpers agree with the internal charge functions.
	if got, want := m.BroadcastSeconds(4, 1024, false), m.broadcastTime(4, 1024, m.BetaIntra); got != want {
		t.Fatalf("BroadcastSeconds intra = %g, want %g", got, want)
	}
	if got, want := m.BroadcastSeconds(4, 1024, true), m.broadcastTime(4, 1024, m.BetaInter); got != want {
		t.Fatalf("BroadcastSeconds inter = %g, want %g", got, want)
	}
	if got := m.GEMMSeconds(10, 20, 30); got != 2*10*20*30/m.FLOPS {
		t.Fatalf("GEMMSeconds = %g", got)
	}
}
