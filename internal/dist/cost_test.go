package dist

import (
	"math"
	"testing"
)

func TestCostModelPartialOverrideGetsPerFieldDefaults(t *testing.T) {
	// Regression: withDefaults used to check only FLOPS == 0, so a caller
	// overriding a single communication field ended up with a model whose
	// other fields were zero — Inf/NaN compute times or free links.
	def := MeluxinaModel()
	m := CostModel{Alpha: 5e-6}.withDefaults()
	if m.Alpha != 5e-6 {
		t.Fatalf("explicit Alpha %g was overwritten to %g", 5e-6, m.Alpha)
	}
	if m.FLOPS != def.FLOPS || m.BetaIntra != def.BetaIntra || m.BetaInter != def.BetaInter {
		t.Fatalf("unset fields must take the Meluxina preset, got %+v", m)
	}
	if t1 := 1e12 / m.FLOPS; math.IsInf(t1, 0) || math.IsNaN(t1) || t1 <= 0 {
		t.Fatalf("compute time %g must be finite and positive", t1)
	}

	m = CostModel{FLOPS: 1e12}.withDefaults()
	if m.FLOPS != 1e12 {
		t.Fatalf("explicit FLOPS overwritten: %+v", m)
	}
	if m.Alpha != def.Alpha || m.BetaIntra != def.BetaIntra || m.BetaInter != def.BetaInter {
		t.Fatalf("communication fields must default, got %+v", m)
	}

	if m := (CostModel{}).withDefaults(); m != def {
		t.Fatalf("zero model must equal the full preset, got %+v", m)
	}
}

func TestCostModelNegativeFieldPanics(t *testing.T) {
	for _, bad := range []CostModel{
		{FLOPS: -1},
		{Alpha: -1e-6},
		{BetaIntra: -1},
		{BetaInter: -1},
		{FLOPS: math.NaN()},
		{Alpha: math.Inf(1)},
		{FLOPS: math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("model %+v must panic", bad)
				}
			}()
			bad.withDefaults()
		}()
	}
}

func TestClusterWithPartialCostModelHasFiniteClocks(t *testing.T) {
	c := New(Config{WorldSize: 2, Cost: CostModel{Alpha: 1e-6}})
	if err := c.Run(func(w *Worker) error {
		w.Compute(1e9)
		w.Cluster().WorldGroup().Barrier(w)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if mc := c.MaxClock(); math.IsInf(mc, 0) || math.IsNaN(mc) || mc <= 0 {
		t.Fatalf("simulated clock %g must be finite and positive", mc)
	}
}

func TestOverlapEstimates(t *testing.T) {
	if got := OverlapTime(3, 5); got != 5 {
		t.Fatalf("OverlapTime(3,5) = %g, want max = 5", got)
	}
	if got := HiddenFraction(4, 2); got != 0.5 {
		t.Fatalf("HiddenFraction(4,2) = %g, want 0.5 (compute hides half the comm)", got)
	}
	if got := HiddenFraction(2, 4); got != 1 {
		t.Fatalf("HiddenFraction(2,4) = %g, want 1 (comm fully hidden)", got)
	}
	if got := HiddenFraction(0, 4); got != 1 {
		t.Fatalf("HiddenFraction(0,4) = %g, want the trivial 1", got)
	}
	m := MeluxinaModel()
	// Blocking SUMMA pays q·(comm+compute); the pipelined estimate pays the
	// fill plus q·max — strictly cheaper whenever both terms are nonzero.
	q, comm, comp := 4, 3.0, 2.0
	blocking := float64(q) * (comm + comp)
	pipelined := m.PipelinedSummaTime(q, comm, comp)
	if want := comm + float64(q)*comm; pipelined != want {
		t.Fatalf("PipelinedSummaTime = %g, want fill + q·max = %g", pipelined, want)
	}
	if pipelined >= blocking {
		t.Fatalf("pipelined estimate %g should undercut blocking %g", pipelined, blocking)
	}
	if m.PipelinedSummaTime(0, comm, comp) != 0 {
		t.Fatal("zero iterations must cost nothing")
	}
	// Exported pricing helpers agree with the internal charge functions.
	if got, want := m.BroadcastSeconds(4, 1024, false), m.broadcastTime(4, 1024, m.BetaIntra); got != want {
		t.Fatalf("BroadcastSeconds intra = %g, want %g", got, want)
	}
	if got, want := m.BroadcastSeconds(4, 1024, true), m.broadcastTime(4, 1024, m.BetaInter); got != want {
		t.Fatalf("BroadcastSeconds inter = %g, want %g", got, want)
	}
	if got := m.GEMMSeconds(10, 20, 30); got != 2*10*20*30/m.FLOPS {
		t.Fatalf("GEMMSeconds = %g", got)
	}
}

// TestTreeStepsAndSingletonGroups pins the tree-depth helper at the edges
// the planner leans on: a singleton group communicates for free, and
// non-power-of-two groups round the tree depth up.
func TestTreeStepsAndSingletonGroups(t *testing.T) {
	for n, want := range map[int]float64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 7: 3, 8: 3, 9: 4, 64: 6} {
		if got := treeSteps(n); got != want {
			t.Errorf("treeSteps(%d) = %g, want %g", n, got, want)
		}
	}
	m := MeluxinaModel()
	const b = int64(1 << 20)
	for _, inter := range []bool{false, true} {
		if got := m.BroadcastSeconds(1, b, inter); got != 0 {
			t.Errorf("broadcast over a singleton must be free, got %g", got)
		}
		if got := m.ReduceSeconds(1, b, inter); got != 0 {
			t.Errorf("reduce over a singleton must be free, got %g", got)
		}
		if got := m.AllReduceSeconds(1, b, inter); got != 0 {
			t.Errorf("all-reduce over a singleton must be free, got %g", got)
		}
		if got := m.AllGatherSeconds(1, b, inter); got != 0 {
			t.Errorf("all-gather over a singleton must be free, got %g", got)
		}
	}
	if got := m.barrierTime(1); got != 0 {
		t.Errorf("barrier over a singleton must be free, got %g", got)
	}
}

// TestNonPowerOfTwoGroupPricing spells out the charges for group sizes
// that are not powers of two — the shapes a [3,3,d] or 5-rank Megatron
// layout produces.
func TestNonPowerOfTwoGroupPricing(t *testing.T) {
	m := MeluxinaModel()
	const b = int64(4096)
	bf := float64(b)
	if got, want := m.BroadcastSeconds(3, b, false), 2*(m.Alpha+bf*m.BetaIntra); got != want {
		t.Errorf("broadcast over 3 = %g, want two tree steps %g", got, want)
	}
	if got, want := m.AllReduceSeconds(3, b, true), 2*2*(m.Alpha+bf/3*m.BetaInter); got != want {
		t.Errorf("all-reduce over 3 = %g, want 2(n−1) ring steps %g", got, want)
	}
	if got, want := m.AllGatherSeconds(5, b, false), 4*(m.Alpha+bf*m.BetaIntra); got != want {
		t.Errorf("all-gather over 5 = %g, want n−1 ring steps %g", got, want)
	}
	if got, want := m.ReduceSeconds(6, b, true), m.BroadcastSeconds(6, b, true); got != want {
		t.Errorf("reduce %g must price like broadcast %g (reversed tree)", got, want)
	}
}

// TestPipelinedSummaTimeMonotonicInQ: more SUMMA iterations can never be
// predicted cheaper — the planner's ranking depends on this.
func TestPipelinedSummaTimeMonotonicInQ(t *testing.T) {
	m := MeluxinaModel()
	for _, tc := range []struct{ comm, comp float64 }{
		{1e-3, 2e-3}, // compute-bound
		{2e-3, 1e-3}, // comm-bound
		{1e-3, 1e-3}, // balanced
		{0, 1e-3},    // free links
		{1e-3, 0},    // free compute
	} {
		prev := m.PipelinedSummaTime(1, tc.comm, tc.comp)
		for q := 2; q <= 16; q++ {
			cur := m.PipelinedSummaTime(q, tc.comm, tc.comp)
			if cur <= prev && (tc.comm > 0 || tc.comp > 0) {
				t.Errorf("PipelinedSummaTime(comm=%g, comp=%g) not increasing at q=%d: %g then %g",
					tc.comm, tc.comp, q, prev, cur)
			}
			prev = cur
		}
	}
}
