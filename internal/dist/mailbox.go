package dist

import (
	"sync"

	"repro/internal/tensor"
)

// packet is one in-flight message: the payload pointer and, for
// point-to-point sends, the sender's clock at arrival time (group tree
// edges leave it zero — collective time is charged at the rendezvous).
type packet struct {
	m     *tensor.Matrix
	clock float64
}

// mailbox is an unbounded FIFO between one (sender, receiver) pair. Sends
// never block; receives block abort-aware. Unboundedness means schedules
// like Cannon's "everybody sends, then everybody receives" can never
// deadlock on channel capacity. The queue drains via a head index and
// rewinds to the front whenever it empties, so the backing array is reused
// forever: a steady-state exchange enqueues without allocating.
type mailbox struct {
	mu     sync.Mutex
	queue  []packet
	head   int
	notify chan struct{} // capacity 1: wake-up token for the single receiver
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}, 1)}
}

// put enqueues a packet and wakes the receiver if it is parked.
func (b *mailbox) put(p packet) {
	b.mu.Lock()
	b.queue = append(b.queue, p)
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// take dequeues the next packet, blocking until one arrives or the cluster
// aborts; ok is false on abort.
func (b *mailbox) take(abort <-chan struct{}) (p packet, ok bool) {
	for {
		b.mu.Lock()
		if b.head < len(b.queue) {
			p = b.queue[b.head]
			b.queue[b.head] = packet{}
			b.head++
			if b.head == len(b.queue) {
				b.queue = b.queue[:0]
				b.head = 0
			}
			b.mu.Unlock()
			return p, true
		}
		b.mu.Unlock()
		select {
		case <-b.notify:
		case <-abort:
			return packet{}, false
		}
	}
}

// mailboxSet lazily allocates pair mailboxes keyed by (from, to).
type mailboxSet struct {
	mu sync.Mutex
	m  map[[2]int]*mailbox
}

func newMailboxSet() *mailboxSet {
	return &mailboxSet{m: make(map[[2]int]*mailbox)}
}

func (s *mailboxSet) box(from, to int) *mailbox {
	key := [2]int{from, to}
	s.mu.Lock()
	b := s.m[key]
	if b == nil {
		b = newMailbox()
		s.m[key] = b
	}
	s.mu.Unlock()
	return b
}
