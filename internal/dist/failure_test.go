package dist

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestFailureCauseStructured checks that an aborting run surfaces a typed
// *Failure naming the rank, carrying the simulated clock at death, and
// wrapping the worker's own error.
func TestFailureCauseStructured(t *testing.T) {
	sentinel := errors.New("link down")
	c := New(Config{WorldSize: 4})
	err := c.Run(func(w *Worker) error {
		if w.Rank() == 2 {
			w.Compute(1e9) // move the clock so the failure time is non-zero
			return sentinel
		}
		w.Cluster().WorldGroup().Barrier(w)
		return nil
	})
	var f *Failure
	if !errors.As(err, &f) {
		t.Fatalf("run error is not a *Failure: %v", err)
	}
	if f.Rank != 2 || f.Panicked {
		t.Fatalf("failure = %+v, want rank 2, not panicked", f)
	}
	if f.Clock <= 0 {
		t.Fatalf("failure clock %g must reflect the compute before death", f.Clock)
	}
	if !errors.Is(f, sentinel) {
		t.Fatalf("failure must wrap the worker's error, got %v", f)
	}
	if got := c.Failure(); got != f {
		t.Fatalf("Cluster.Failure() = %+v, want the recorded %+v", got, f)
	}
}

// TestFailureCapturesPanics checks the panic path produces the same
// structured cause, marked as a panic.
func TestFailureCapturesPanics(t *testing.T) {
	c := New(Config{WorldSize: 2})
	err := c.Run(func(w *Worker) error {
		if w.Rank() == 1 {
			panic("cosmic ray")
		}
		w.Cluster().WorldGroup().Barrier(w)
		return nil
	})
	var f *Failure
	if !errors.As(err, &f) {
		t.Fatalf("panic did not surface as *Failure: %v", err)
	}
	if f.Rank != 1 || !f.Panicked || !strings.Contains(f.Error(), "cosmic ray") {
		t.Fatalf("failure = %+v", f)
	}
}

// TestPostAbortRunReportsOriginalCause is the satellite regression: a Run on
// a poisoned cluster must still report the original structured cause — who
// died and why — not only a generic poisoned-cluster message.
func TestPostAbortRunReportsOriginalCause(t *testing.T) {
	sentinel := errors.New("node 1 lost")
	c := New(Config{WorldSize: 4})
	if err := c.Run(func(w *Worker) error {
		if w.Rank() == 1 {
			return sentinel
		}
		w.Cluster().WorldGroup().Barrier(w)
		return nil
	}); err == nil {
		t.Fatal("injected failure did not abort")
	}
	err := c.Run(func(w *Worker) error { return nil })
	if err == nil {
		t.Fatal("poisoned cluster must refuse further runs")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("post-abort error lost the original cause: %v", err)
	}
	var f *Failure
	if !errors.As(err, &f) || f.Rank != 1 {
		t.Fatalf("post-abort error lost the failed-rank identity: %v", err)
	}
	if !strings.Contains(err.Error(), "worker 1") {
		t.Fatalf("post-abort message does not name the dead worker: %v", err)
	}
}

// TestSurvivorsAndRecover checks the elastic primitives: survivors exclude
// exactly the failed ranks, and Recover builds a working fresh cluster over
// the surviving budget while the old one stays poisoned.
func TestSurvivorsAndRecover(t *testing.T) {
	c := New(Config{WorldSize: 4, GPUsPerNode: 2})
	_ = c.Run(func(w *Worker) error {
		if w.Rank() == 1 {
			return errors.New("gone")
		}
		w.Cluster().WorldGroup().Barrier(w)
		return nil
	})
	got := c.Survivors()
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("survivors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("survivors = %v, want %v", got, want)
		}
	}
	c2, err := c.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if c2.WorldSize() != 3 {
		t.Fatalf("recovered world size %d, want 3", c2.WorldSize())
	}
	// The fresh cluster must actually run collectives.
	if err := c2.Run(func(w *Worker) error {
		m := tensor.New(1, 1)
		m.Set(0, 0, 1)
		s := c2.WorldGroup().AllReduce(w, m)
		if s.At(0, 0) != 3 {
			t.Errorf("rank %d: all-reduce = %g, want 3", w.Rank(), s.At(0, 0))
		}
		return nil
	}); err != nil {
		t.Fatalf("recovered cluster run: %v", err)
	}
	// The old cluster stays poisoned.
	if err := c.Run(func(w *Worker) error { return nil }); err == nil {
		t.Fatal("original cluster must stay poisoned after recovery")
	}
	// Recover keeps the machine description.
	if c2.node(2) != 1 {
		t.Fatalf("recovered cluster lost GPUsPerNode: node(2) = %d", c2.node(2))
	}
}

// TestRecoverHealthyClusterErrors: recovery is only defined after a failure.
func TestRecoverHealthyClusterErrors(t *testing.T) {
	c := New(Config{WorldSize: 2})
	if _, err := c.Recover(); err == nil {
		t.Fatal("recovering a healthy cluster must error")
	}
}

// TestFailuresSortedMultiple records two concurrent failures and checks the
// report lists both, sorted by rank, with Failure() picking the lowest.
func TestFailuresSortedMultiple(t *testing.T) {
	c := New(Config{WorldSize: 4})
	_ = c.Run(func(w *Worker) error {
		if w.Rank() == 3 || w.Rank() == 1 {
			return errors.New("dead")
		}
		w.Cluster().WorldGroup().Barrier(w)
		return nil
	})
	fs := c.Failures()
	if len(fs) == 0 {
		t.Fatal("no failures recorded")
	}
	for i := 1; i < len(fs); i++ {
		if fs[i-1].Rank >= fs[i].Rank {
			t.Fatalf("failures not sorted by rank: %v then %v", fs[i-1].Rank, fs[i].Rank)
		}
	}
	if got := c.Failure(); got.Rank != fs[0].Rank {
		t.Fatalf("Failure() = rank %d, want the lowest recorded %d", got.Rank, fs[0].Rank)
	}
	surv := c.Survivors()
	for _, r := range surv {
		for _, f := range fs {
			if r == f.Rank {
				t.Fatalf("rank %d both survived and failed", r)
			}
		}
	}
}
