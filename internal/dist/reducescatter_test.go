package dist

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestReduceScatterIntoMatchesReduceThenScatter pins the defining property:
// member i's block is bit-identical to reducing the full partials onto the
// group's first member (ReduceInto's binomial-tree association) and slicing
// row block i out of the sum. Group sizes cover the degenerate, the
// power-of-two and the ragged tree shapes.
func TestReduceScatterIntoMatchesReduceThenScatter(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		const br, cols = 2, 3
		rows := n * br
		got := make([]*tensor.Matrix, n)
		var full *tensor.Matrix
		runWorld(t, n, func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			r := w.Rank()
			dst := tensor.New(br, cols)
			if out := g.ReduceScatterInto(w, fillRank(r, rows, cols), dst); out != dst {
				t.Errorf("n=%d rank %d: ReduceScatterInto must return dst", n, r)
			}
			got[r] = dst

			var rdst *tensor.Matrix
			if r == 0 {
				rdst = tensor.New(rows, cols)
			}
			g.ReduceInto(w, 0, fillRank(r, rows, cols), rdst)
			if r == 0 {
				full = rdst
			}
			return nil
		})
		for r := 0; r < n; r++ {
			want := full.SubMatrix(r*br, 0, br, cols)
			if !got[r].Equal(want) {
				t.Fatalf("n=%d rank %d: reduce-scatter block differs bitwise from reduce+scatter", n, r)
			}
		}
	}
}

// TestIReduceScatterIntoMatchesBlockingBitwise drives the nonblocking form
// next to its blocking twin on the same inputs, mirroring the PR 3
// I-collective parity suite.
func TestIReduceScatterIntoMatchesBlockingBitwise(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		const br, cols = 3, 4
		rows := n * br
		got := make([]*tensor.Matrix, n)
		want := make([]*tensor.Matrix, n)
		runWorld(t, n, func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			r := w.Rank()
			dst := tensor.New(br, cols)
			h := g.IReduceScatterInto(w, fillRank(r, rows, cols), dst)
			h.Wait()
			got[r] = dst
			dst2 := tensor.New(br, cols)
			g.ReduceScatterInto(w, fillRank(r, rows, cols), dst2)
			want[r] = dst2
			return nil
		})
		for r := 0; r < n; r++ {
			if !got[r].Equal(want[r]) {
				t.Fatalf("n=%d rank %d: IReduceScatterInto differs from ReduceScatterInto", n, r)
			}
		}
	}
}

// TestReduceScatterIntoPropagatesPhantoms: phantom partials scatter into
// phantom blocks without arithmetic, through both API flavours.
func TestReduceScatterIntoPropagatesPhantoms(t *testing.T) {
	runWorld(t, 4, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		if out := g.ReduceScatterInto(w, tensor.NewPhantom(8, 3), tensor.NewPhantom(2, 3)); !out.Phantom() {
			return errRankf(w, "phantom reduce-scatter-into lost phantomness")
		}
		dst := tensor.NewPhantom(2, 3)
		h := g.IReduceScatterInto(w, tensor.NewPhantom(8, 3), dst)
		h.Wait()
		if !dst.Phantom() {
			return errRankf(w, "phantom IReduceScatterInto lost phantomness")
		}
		return nil
	})
}

// TestReduceScatterIntoRejectsBadShapes: indivisible payload rows and
// mis-sized destinations must fail loudly at issue time.
func TestReduceScatterIntoRejectsBadShapes(t *testing.T) {
	expectPanic := func(name string, world, rows, dr, dc int) {
		c := New(Config{WorldSize: world})
		err := c.Run(func(w *Worker) error {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			g := w.Cluster().WorldGroup()
			g.ReduceScatterInto(w, tensor.New(rows, 3), tensor.New(dr, dc))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	expectPanic("rows not divisible", 2, 5, 2, 3)
	expectPanic("dst rows wrong", 2, 6, 2, 3)
	expectPanic("dst cols wrong", 2, 6, 3, 2)
}

// TestReduceScatterChargesHalfRingAllReduce pins the pricing: the simulated
// clock advances by ReduceScatterSeconds — the first half of the ring
// all-reduce of the same payload — and the traffic lands under its own
// stats kind with the all-gather message convention.
func TestReduceScatterChargesHalfRingAllReduce(t *testing.T) {
	const n, rows, cols = 4, 8, 16
	c := New(Config{WorldSize: n})
	if err := c.Run(func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		g.ReduceScatterInto(w, fillRank(w.Rank(), rows, cols), tensor.New(rows/n, cols))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	bytes := int64(rows * cols * 8)
	want := MeluxinaModel().ReduceScatterSeconds(n, bytes, false)
	if relDiffF(c.MaxClock(), want) > 1e-12 {
		t.Fatalf("reduce-scatter clock %g, want %g", c.MaxClock(), want)
	}
	if half := MeluxinaModel().AllReduceSeconds(n, bytes, false) / 2; relDiffF(want, half) > 1e-12 {
		t.Fatalf("ReduceScatterSeconds %g, want half the ring all-reduce %g", want, half)
	}
	st := c.Stats().PerOp["reducescatter"]
	if st.Calls != 1 || st.Messages != int64(n)*int64(n-1) || st.Bytes != int64(n-1)*bytes {
		t.Fatalf("reduce-scatter stats %+v, want 1 call, %d messages, %d bytes", st, n*(n-1), int64(n-1)*bytes)
	}
}

// TestReduceScatterSteadyStateAllocationFree: with workspace-pooled payload
// and destination buffers, repeated rounds must stop touching the allocator
// after warm-up — the clean baseline BenchmarkReduceScatter8 measures.
func TestReduceScatterSteadyStateAllocationFree(t *testing.T) {
	const n, rounds = 8, 5
	runWorld(t, n, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		ws := w.Workspace()
		m := ws.Get(n*4, 4)
		dst := ws.Get(4, 4)
		var warm tensor.WorkspaceStats
		for round := 0; round < rounds; round++ {
			g.ReduceScatterInto(w, m, dst)
			h := g.IReduceScatterInto(w, m, dst)
			h.Wait()
			s := ws.Stats()
			if round == 0 {
				warm = s
				continue
			}
			if s.Allocs != warm.Allocs {
				return errRankf(w, "round %d allocated: %d pool misses vs %d after warm-up", round, s.Allocs, warm.Allocs)
			}
		}
		ws.Put(m)
		ws.Put(dst)
		return nil
	})
}

// TestIReduceScatterOverlapChargesMaxNotSum: compute issued between the
// reduce-scatter's issue and Wait hides the collective, so the post-Wait
// clock is max(comm, compute), not their sum.
func TestIReduceScatterOverlapChargesMaxNotSum(t *testing.T) {
	const flops = 1e9
	elapsed := func(compute bool, async bool) float64 {
		c := New(Config{WorldSize: 4})
		if err := c.Run(func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			m := tensor.New(64, 64)
			dst := tensor.New(16, 64)
			if async {
				h := g.IReduceScatterInto(w, m, dst)
				if compute {
					w.Compute(flops)
				}
				h.Wait()
			} else {
				if compute {
					w.Compute(flops)
				}
				g.ReduceScatterInto(w, m, dst)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	commOnly := elapsed(false, false)
	compOnly := flops / MeluxinaModel().FLOPS
	wantMax := commOnly
	if compOnly > wantMax {
		wantMax = compOnly
	}
	if overlapped := elapsed(true, true); relDiffF(overlapped, wantMax) > 1e-12 {
		t.Fatalf("overlapped run %g, want max(comm %g, compute %g)", overlapped, commOnly, compOnly)
	}
}

// TestIReduceScatterSerialisesPerGroup: two in-flight reduce-scatters on one
// group share its pipeline channel and serialise in simulated time.
func TestIReduceScatterSerialisesPerGroup(t *testing.T) {
	run := func(ops int) float64 {
		c := New(Config{WorldSize: 2})
		if err := c.Run(func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			hs := make([]Handle, ops)
			for i := range hs {
				hs[i] = g.IReduceScatterInto(w, tensor.New(64, 64), tensor.New(32, 64))
			}
			for i := range hs {
				hs[i].Wait()
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	one, two := run(1), run(2)
	if relDiffF(two, 2*one) > 1e-12 {
		t.Fatalf("two reduce-scatters on one group took %g, want serialised 2×%g", two, one)
	}
}

// TestIReduceScatterHandleMisusePanics mirrors the PR 3 handle-contract
// suite for the new collective: double Wait, Put of a borrowed buffer, and
// ReleaseAll across an in-flight handle are programming errors.
func TestIReduceScatterHandleMisusePanics(t *testing.T) {
	expectPanic := func(name, want string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: expected panic", name)
			}
			if msg, ok := r.(string); ok && want != "" && !strings.Contains(msg, want) {
				t.Fatalf("%s: panic %q missing %q", name, msg, want)
			}
		}()
		fn()
	}

	c := New(Config{WorldSize: 1})
	if err := c.Run(func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		ws := w.Workspace()

		m := ws.Get(2, 2)
		dst := ws.Get(2, 2)
		h := g.IReduceScatterInto(w, m, dst)
		h.Wait()
		expectPanic("double wait", "twice", func() { h.Wait() })

		h2 := g.IReduceScatterInto(w, m, dst)
		expectPanic("put payload before wait", "borrowed", func() { ws.Put(m) })
		expectPanic("put dst before wait", "borrowed", func() { ws.Put(dst) })
		expectPanic("release all before wait", "borrowed", func() { ws.ReleaseAll() })

		h2.Wait()
		ws.Put(m) // borrows released: recycling is legal again
		ws.Put(dst)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
