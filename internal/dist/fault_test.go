package dist

import (
	"reflect"
	"testing"

	"repro/internal/tensor"
)

// faultCost is a small deterministic machine model for fault tests: round
// numbers so perturbed clocks can be checked exactly.
func faultCost() CostModel {
	return CostModel{FLOPS: 1e9, Alpha: 1e-6, BetaIntra: 1e-9, BetaInter: 1e-9}
}

func TestFaultPlanCheck(t *testing.T) {
	bad := []FaultPlan{
		{Ranks: []RankFault{{Rank: 4, From: 0, To: 1, Factor: 2}}},
		{Ranks: []RankFault{{Rank: 0, From: 3, To: 1, Factor: 2}}},
		{Ranks: []RankFault{{Rank: 0, From: 0, To: 1, Factor: 0.5}}},
		{Links: []LinkFault{{Rank: 1, From: 0, To: 1, BetaFactor: 0.9}}},
		{Links: []LinkFault{{Rank: 1, From: 0, To: 1, BetaFactor: 2, ExtraAlpha: -1}}},
		{Collectives: []CollectiveFault{{Rank: 0, From: 0, To: 1, Retries: -1}}},
	}
	for i, p := range bad {
		p := p
		if err := p.Check(4); err == nil {
			t.Errorf("plan %d: Check accepted an invalid plan", i)
		}
	}
	good := FaultPlan{
		Ranks:       []RankFault{{Rank: 3, From: 2, To: Forever, Factor: 4}},
		Links:       []LinkFault{{Rank: 1, From: 0, To: 9, BetaFactor: 2, ExtraAlpha: 1e-6}},
		Collectives: []CollectiveFault{{Rank: 0, From: 5, To: 6, Retries: 3, Backoff: 1e-5}},
	}
	if err := good.Check(4); err != nil {
		t.Fatalf("Check rejected a valid plan: %v", err)
	}
	if (&FaultPlan{}).Empty() != true || good.Empty() {
		t.Fatal("Empty misclassified a plan")
	}
}

func TestComputeFaultStretchesClock(t *testing.T) {
	c := New(Config{WorldSize: 2, Cost: faultCost(), Faults: &FaultPlan{
		Ranks: []RankFault{{Rank: 1, From: 2, To: 3, Factor: 4}},
	}})
	var clocks [4][2]float64
	err := c.Run(func(w *Worker) error {
		for step := 0; step < 4; step++ {
			w.BeginStep(step)
			w.Compute(1e9) // 1 second healthy
			w.EndStep()
			clocks[step][w.Rank()] = w.clock
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 is healthy throughout: 1s per step. Rank 1 pays 4s on steps 2
	// and 3 only — the window is inclusive on both ends.
	want := [4][2]float64{{1, 1}, {2, 2}, {3, 6}, {4, 10}}
	if clocks != want {
		t.Fatalf("clocks = %v, want %v", clocks, want)
	}
}

func TestLinkFaultPerturbsCollectivesAndSends(t *testing.T) {
	run := func(faults *FaultPlan) (collective, send float64) {
		c := New(Config{WorldSize: 2, GPUsPerNode: 2, Cost: faultCost(), Faults: faults})
		g := c.Group(0, 1)
		if err := c.Run(func(w *Worker) error {
			w.BeginStep(0)
			m := tensor.New(1, 128) // 1024 bytes
			g.AllReduceInto(w, m, m)
			w.EndStep()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		collective = c.MaxClock()
		c.ResetClocks()
		if err := c.Run(func(w *Worker) error {
			w.BeginStep(0)
			if w.Rank() == 0 {
				w.Send(1, tensor.New(1, 128))
			} else {
				w.Recv(0)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return collective, c.MaxClock()
	}
	baseColl, baseSend := run(nil)
	const bf, ea = 3.0, 5e-6
	pertColl, pertSend := run(&FaultPlan{Links: []LinkFault{{Rank: 1, From: 0, To: 0, BetaFactor: bf, ExtraAlpha: ea}}})
	if want := baseColl*bf + ea; pertColl != want {
		t.Errorf("perturbed collective clock = %g, want %g (base %g)", pertColl, want, baseColl)
	}
	if want := baseSend*bf + ea; pertSend != want {
		t.Errorf("perturbed send clock = %g, want %g (base %g)", pertSend, want, baseSend)
	}
	// A past-window fault perturbs nothing.
	oldColl, oldSend := run(&FaultPlan{Links: []LinkFault{{Rank: 1, From: 5, To: 9, BetaFactor: bf, ExtraAlpha: ea}}})
	if oldColl != baseColl || oldSend != baseSend {
		t.Errorf("past-window fault changed clocks: %g/%g vs %g/%g", oldColl, oldSend, baseColl, baseSend)
	}
}

func TestCollectiveFaultBackoff(t *testing.T) {
	run := func(faults *FaultPlan) float64 {
		c := New(Config{WorldSize: 2, Cost: faultCost(), Faults: faults})
		g := c.Group(0, 1)
		if err := c.Run(func(w *Worker) error {
			w.BeginStep(0)
			g.Barrier(w)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	base := run(nil)
	const backoff = 1e-4
	// 3 retries at exponential backoff stall backoff·(2³−1) = 7·backoff.
	got := run(&FaultPlan{Collectives: []CollectiveFault{{Rank: 0, From: 0, To: 0, Retries: 3, Backoff: backoff}}})
	if want := base + 7*backoff; got != want {
		t.Fatalf("backoff clock = %g, want %g (base %g)", got, want, base)
	}
}

// TestEmptyFaultPlanBitwiseIdentity pins the core invariant at the dist
// level: a cluster with an empty plan — and one whose plan only covers
// steps that never run — produces bitwise-identical results, clocks and
// traffic stats to a bare cluster. (The three-family training-level
// identity test lives in internal/vit.)
func TestEmptyFaultPlanBitwiseIdentity(t *testing.T) {
	run := func(faults *FaultPlan) ([]float64, float64, Stats) {
		c := New(Config{WorldSize: 4, Cost: faultCost(), Faults: faults})
		g := c.WorldGroup()
		out := make([]float64, 4)
		if err := c.Run(func(w *Worker) error {
			for step := 0; step < 3; step++ {
				w.BeginStep(step)
				m := tensor.New(2, 3)
				for i := range m.Data {
					m.Data[i] = float64(w.Rank()*100+i) * 1.7e-3
				}
				w.Compute(3.7e8)
				g.AllReduceInto(w, m, m)
				if w.Rank() == 0 {
					w.Send(1, m.Clone())
				} else if w.Rank() == 1 {
					w.Recv(0)
				}
				g.Barrier(w)
				w.EndStep()
				out[w.Rank()] = m.Data[0]
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out, c.MaxClock(), c.Stats()
	}
	baseOut, baseClock, baseStats := run(nil)
	for name, p := range map[string]*FaultPlan{
		"empty": {},
		"past-window": {
			Ranks:       []RankFault{{Rank: 1, From: 100, To: 200, Factor: 8}},
			Links:       []LinkFault{{Rank: 0, From: 100, To: 200, BetaFactor: 4, ExtraAlpha: 1e-6}},
			Collectives: []CollectiveFault{{Rank: 2, From: 100, To: 200, Retries: 2, Backoff: 1e-5}},
		},
	} {
		out, clock, stats := run(p)
		if !reflect.DeepEqual(out, baseOut) {
			t.Errorf("%s plan: results %v differ from bare %v", name, out, baseOut)
		}
		if clock != baseClock {
			t.Errorf("%s plan: clock %g differs from bare %g", name, clock, baseClock)
		}
		if !reflect.DeepEqual(stats, baseStats) {
			t.Errorf("%s plan: stats %+v differ from bare %+v", name, stats, baseStats)
		}
	}
}

func TestFaultPlanRemap(t *testing.T) {
	p := &FaultPlan{
		Seed:        7,
		Ranks:       []RankFault{{Rank: 0, From: 0, To: 1, Factor: 2}, {Rank: 3, From: 0, To: 1, Factor: 4}},
		Links:       []LinkFault{{Rank: 2, From: 0, To: 1, BetaFactor: 2}},
		Collectives: []CollectiveFault{{Rank: 3, From: 0, To: 1, Retries: 1, Backoff: 1e-5}},
	}
	// Drop rank 3 (the straggler); survivors 0,1,2 keep their ids here.
	q := p.Remap([]int{0, 1, 2})
	if len(q.Ranks) != 1 || q.Ranks[0].Rank != 0 || len(q.Links) != 1 || q.Links[0].Rank != 2 || len(q.Collectives) != 0 {
		t.Fatalf("Remap([0 1 2]) = %+v", q)
	}
	// Drop rank 0: everyone shifts down one.
	q = p.Remap([]int{1, 2, 3})
	if len(q.Ranks) != 1 || q.Ranks[0].Rank != 2 || q.Links[0].Rank != 1 || q.Collectives[0].Rank != 2 {
		t.Fatalf("Remap([1 2 3]) = %+v", q)
	}
	if q.Seed != 7 {
		t.Fatalf("Remap dropped the seed")
	}
}

func TestChaosPlanDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		a := NewChaosPlan(seed, 8, 40)
		b := NewChaosPlan(seed, 8, 40)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ: %+v vs %+v", seed, a, b)
		}
		if err := a.Check(8); err != nil {
			t.Fatalf("seed %d: generated plan invalid: %v", seed, err)
		}
		if len(a.Ranks) != 1 {
			t.Fatalf("seed %d: want exactly one straggler, got %+v", seed, a.Ranks)
		}
		if a.Ranks[0].From < 40/4 {
			t.Fatalf("seed %d: straggler strikes at step %d, before the clean lead-in", seed, a.Ranks[0].From)
		}
	}
	if reflect.DeepEqual(NewChaosPlan(1, 8, 40), NewChaosPlan(2, 8, 40)) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestMonitorStragglerDetection(t *testing.T) {
	m := newMonitor(MonitorConfig{Window: 8, K: 2, W: 3}, 4)
	// Cold window: no verdicts.
	if s := m.Suspects(); s != nil {
		t.Fatalf("cold monitor flagged %v", s)
	}
	// Healthy steps: everyone busy ~1s of a 1.5s step.
	step := 0
	healthy := func(n int) {
		for ; n > 0; n-- {
			for r := 0; r < 4; r++ {
				m.record(r, step, 1.5, 1.0+0.01*float64(r))
			}
			step++
		}
	}
	slow := func(n int, rank int, factor float64) {
		for ; n > 0; n-- {
			for r := 0; r < 4; r++ {
				busy := 1.0 + 0.01*float64(r)
				if r == rank {
					busy *= factor
				}
				m.record(r, step, busy+0.5, busy)
			}
			step++
		}
	}
	healthy(4)
	if s := m.Suspects(); s != nil {
		t.Fatalf("healthy window flagged %v", s)
	}
	m.MarkBaseline()
	// Two slow steps: hysteresis (W=3) must hold fire.
	slow(2, 2, 4)
	if s := m.Suspects(); s != nil {
		t.Fatalf("flagged %v after only 2 slow steps (W=3)", s)
	}
	slow(1, 2, 4)
	if s := m.Suspects(); len(s) != 1 || s[0] != 2 {
		t.Fatalf("Suspects = %v, want [2]", s)
	}
	if sd := m.Slowdown(2); sd < 2 {
		t.Fatalf("Slowdown(2) = %g, want ≥ 2", sd)
	}
	if sd := m.Slowdown(0); sd > 1.1 {
		t.Fatalf("Slowdown(0) = %g for a healthy rank", sd)
	}
}

func TestMonitorEffectiveCost(t *testing.T) {
	base := faultCost()
	m := newMonitor(MonitorConfig{}, 4)
	step := 0
	feed := func(n int, busyScale, waitScale float64) {
		for ; n > 0; n-- {
			for r := 0; r < 4; r++ {
				busy := busyScale * (1.0 + 0.001*float64(r))
				wait := waitScale * 0.25
				m.record(r, step, busy+wait, busy)
			}
			step++
		}
	}
	feed(8, 1, 1)
	m.MarkBaseline()
	// No degradation: the model comes back unchanged.
	if got := m.EffectiveCost(base, []int{0, 1, 2, 3}); got != base.WithDefaults() {
		t.Fatalf("healthy EffectiveCost changed the model: %+v", got)
	}
	// Uniform 2× compute inflation and 3× wait inflation.
	feed(8, 2, 3)
	got := m.EffectiveCost(base, []int{0, 1, 2, 3})
	if ratio := base.FLOPS / got.FLOPS; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("FLOPS deflation = %g, want ~2", ratio)
	}
	if ratio := got.BetaInter / base.BetaInter; ratio < 2.9 || ratio > 3.1 {
		t.Errorf("beta inflation = %g, want ~3", ratio)
	}
}

func TestMonitorRecordingDoesNotPerturbClocks(t *testing.T) {
	run := func(attach bool) float64 {
		c := New(Config{WorldSize: 4, Cost: faultCost()})
		if attach {
			c.AttachMonitor(MonitorConfig{})
		}
		g := c.WorldGroup()
		if err := c.Run(func(w *Worker) error {
			for step := 0; step < 5; step++ {
				w.BeginStep(step)
				w.Compute(1e8)
				m := tensor.New(4, 4)
				g.AllReduceInto(w, m, m)
				w.EndStep()
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	if bare, monitored := run(false), run(true); bare != monitored {
		t.Fatalf("attaching a monitor moved the clock: %g vs %g", monitored, bare)
	}
}
