package dist

import (
	"fmt"

	"repro/internal/tensor"
)

// Worker is one simulated rank. All methods must be called from the
// goroutine Run started for this rank; the clock is private to it except at
// collective rendezvous points.
type Worker struct {
	c     *Cluster
	rank  int
	clock float64 // simulated seconds since the last ResetClocks
	ws    *tensor.Workspace

	// Overlap accounting, maintained by the collective wait path: commTotal
	// is the simulated comm time of every collective this worker took part
	// in, commHidden the part of it that elapsed while the worker was off
	// computing (nonblocking issue → Wait). Both reset with ResetClocks.
	commTotal  float64
	commHidden float64
}

// Rank returns the cluster rank.
func (w *Worker) Rank() int { return w.rank }

// Cluster returns the owning cluster.
func (w *Worker) Cluster() *Cluster { return w.c }

// Workspace returns this worker's buffer pool, creating it on first use. It
// persists across cluster runs, so steady-state training steps recycle every
// panel, partial and activation instead of allocating. Like every Worker
// method it must be called from the worker's own goroutine; see
// tensor.Workspace for the ownership and lifetime rules.
func (w *Worker) Workspace() *tensor.Workspace {
	if w.ws == nil {
		w.ws = tensor.NewWorkspace()
	}
	return w.ws
}

// Compute advances the simulated clock by flops at the model's FLOPS rate.
func (w *Worker) Compute(flops float64) {
	w.clock += flops / w.c.cost.FLOPS
}

// ChargeGEMM charges the 2·m·n·k flops of an m×k by k×n multiply.
func (w *Worker) ChargeGEMM(m, n, k float64) {
	w.clock += 2 * m * n * k / w.c.cost.FLOPS
}

// matrixBytes prices a matrix by shape (phantoms cost the same as real
// data — that is the whole point of phantom mode).
func matrixBytes(m *tensor.Matrix) int64 {
	if m == nil {
		return 0
	}
	return 8 * int64(m.Rows) * int64(m.Cols)
}

// Send delivers m to rank dst. It never blocks (mailboxes are unbounded);
// the matrix is handed over by pointer, so the sender must not use it
// afterwards. The sender's clock pays the full α + Bβ transfer.
func (w *Worker) Send(dst int, m *tensor.Matrix) {
	if dst < 0 || dst >= len(w.c.workers) {
		panic(fmt.Sprintf("dist: send to rank %d outside world of %d", dst, len(w.c.workers)))
	}
	w.c.checkAbort()
	beta := w.c.cost.BetaIntra
	if w.c.node(w.rank) != w.c.node(dst) {
		beta = w.c.cost.BetaInter
	}
	bytes := matrixBytes(m)
	w.clock += w.c.cost.sendTime(bytes, beta)
	w.c.stats.record(w.rank, statSend, 1, bytes)
	w.c.mail.box(w.rank, dst).put(packet{m: m, clock: w.clock})
}

// Recv blocks until a matrix from rank src arrives and returns it. The
// receiver's clock advances to the message's arrival time (it cannot see
// data before the sender finished pushing it).
func (w *Worker) Recv(src int) *tensor.Matrix {
	if src < 0 || src >= len(w.c.workers) {
		panic(fmt.Sprintf("dist: recv from rank %d outside world of %d", src, len(w.c.workers)))
	}
	p, ok := w.c.mail.box(src, w.rank).take(w.c.abort)
	if !ok {
		panic(abortSignal{})
	}
	if p.clock > w.clock {
		w.clock = p.clock
	}
	return p.m
}
