package dist

import (
	"fmt"

	"repro/internal/tensor"
)

// Worker is one simulated rank. All methods must be called from the
// goroutine Run started for this rank; the clock is private to it except at
// collective rendezvous points.
type Worker struct {
	c     *Cluster
	rank  int
	clock float64 // simulated seconds since the last ResetClocks
	ws    *tensor.Workspace

	// Overlap accounting, maintained by the collective wait path: commTotal
	// is the simulated comm time of every collective this worker took part
	// in, commHidden the part of it that elapsed while the worker was off
	// computing (nonblocking issue → Wait). Both reset with ResetClocks.
	commTotal  float64
	commHidden float64

	// Step telemetry and fault state. step is the index the driving loop
	// last passed to BeginStep (0 for loops that never call it); slow is the
	// fault plan's compute-time factor for that step (always 1 without a
	// plan); busy accumulates the seconds this rank spent on its own work —
	// compute plus issued sends — since BeginStep. Total − busy is wait:
	// time parked on collectives or inbound messages. busy matters because
	// synchronized collectives drag every member's clock to the straggler's
	// pace, so per-rank step totals equalise and cannot identify the
	// straggler; busy time can.
	step      int
	slow      float64
	busy      float64
	stepStart float64
}

// BeginStep opens a telemetry window for one training step: it records the
// step index (which also drives the fault plan's activation windows),
// resolves this rank's compute slowdown for the step, and snapshots the
// clock. Loops that never call it run at step 0 with no telemetry.
func (w *Worker) BeginStep(step int) {
	w.step = step
	if w.c.fault != nil {
		w.slow = w.c.fault.computeFactor(w.rank, step)
	}
	w.stepStart = w.clock
	w.busy = 0
}

// EndStep closes the window opened by BeginStep and, when the cluster has a
// monitor attached, reports the step's (total, busy) wall-clock split.
func (w *Worker) EndStep() {
	if w.c.monitor != nil {
		w.c.monitor.record(w.rank, w.step, w.clock-w.stepStart, w.busy)
	}
}

// Rank returns the cluster rank.
func (w *Worker) Rank() int { return w.rank }

// Clock returns this worker's simulated seconds since the last ResetClocks.
// Like every Worker method it must be called from the worker's own
// goroutine. Ranks that need to agree on a time exactly must exchange it as
// data (all-gather the per-rank clocks and reduce locally) rather than read
// each other's clocks — that is how the serving runtime stamps batch
// completions identically on every rank.
func (w *Worker) Clock() float64 { return w.clock }

// Cluster returns the owning cluster.
func (w *Worker) Cluster() *Cluster { return w.c }

// Workspace returns this worker's buffer pool, creating it on first use. It
// persists across cluster runs, so steady-state training steps recycle every
// panel, partial and activation instead of allocating. Like every Worker
// method it must be called from the worker's own goroutine; see
// tensor.Workspace for the ownership and lifetime rules.
func (w *Worker) Workspace() *tensor.Workspace {
	if w.ws == nil {
		w.ws = tensor.NewWorkspace()
	}
	return w.ws
}

// Compute advances the simulated clock by flops at the model's FLOPS rate,
// stretched by any active compute fault on this rank.
func (w *Worker) Compute(flops float64) {
	t := flops / w.c.cost.FLOPS
	if w.slow != 1 {
		t *= w.slow
	}
	w.clock += t
	w.busy += t
}

// ChargeGEMM charges the 2·m·n·k flops of an m×k by k×n multiply.
func (w *Worker) ChargeGEMM(m, n, k float64) {
	t := 2 * m * n * k / w.c.cost.FLOPS
	if w.slow != 1 {
		t *= w.slow
	}
	w.clock += t
	w.busy += t
}

// matrixBytes prices a matrix by shape (phantoms cost the same as real
// data — that is the whole point of phantom mode).
func matrixBytes(m *tensor.Matrix) int64 {
	if m == nil {
		return 0
	}
	return 8 * int64(m.Rows) * int64(m.Cols)
}

// Send delivers m to rank dst. It never blocks (mailboxes are unbounded);
// the matrix is handed over by pointer, so the sender must not use it
// afterwards. The sender's clock pays the full α + Bβ transfer.
func (w *Worker) Send(dst int, m *tensor.Matrix) {
	if dst < 0 || dst >= len(w.c.workers) {
		panic(fmt.Sprintf("dist: send to rank %d outside world of %d", dst, len(w.c.workers)))
	}
	w.c.checkAbort()
	beta := w.c.cost.BetaIntra
	if w.c.node(w.rank) != w.c.node(dst) {
		beta = w.c.cost.BetaInter
	}
	bytes := matrixBytes(m)
	t := w.c.cost.sendTime(bytes, beta)
	if w.c.fault != nil {
		if bf, ea := w.c.fault.linkPerturbPair(w.rank, dst, w.step); bf != 1 || ea != 0 {
			t = t*bf + ea
		}
	}
	w.clock += t
	w.busy += t
	w.c.stats.record(w.rank, statSend, 1, bytes)
	w.c.mail.box(w.rank, dst).put(packet{m: m, clock: w.clock})
}

// Recv blocks until a matrix from rank src arrives and returns it. The
// receiver's clock advances to the message's arrival time (it cannot see
// data before the sender finished pushing it).
func (w *Worker) Recv(src int) *tensor.Matrix {
	if src < 0 || src >= len(w.c.workers) {
		panic(fmt.Sprintf("dist: recv from rank %d outside world of %d", src, len(w.c.workers)))
	}
	p, ok := w.c.mail.box(src, w.rank).take(w.c.abort)
	if !ok {
		panic(abortSignal{})
	}
	if p.clock > w.clock {
		w.clock = p.clock
	}
	return p.m
}
