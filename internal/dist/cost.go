package dist

import (
	"fmt"
	"math"
)

// CostModel is the α–β machine model the simulated clocks run on. All times
// are seconds, all sizes bytes.
type CostModel struct {
	// FLOPS is the per-GPU dense floating-point throughput (flop/s) that
	// Worker.Compute and Worker.ChargeGEMM divide by.
	FLOPS float64
	// Alpha is the fixed per-message launch latency.
	Alpha float64
	// BetaIntra is the per-byte transfer cost between GPUs on one node
	// (NVLink-class links).
	BetaIntra float64
	// BetaInter is the per-byte transfer cost between GPUs on different
	// nodes (InfiniBand-class links, shared by the node's GPUs).
	BetaInter float64
}

// MeluxinaModel returns the preset for the paper's testbed: Meluxina
// (EuroHPC) nodes with four A100s each. FLOPS is the A100 tensor-core
// half-precision peak derated to a realistic GEMM efficiency; the intra
// rate is NVLink3, the inter rate is the node's HDR InfiniBand divided
// across its four GPUs.
func MeluxinaModel() CostModel {
	return CostModel{
		FLOPS:     312e12 * 0.8, // A100 fp16 peak × sustained efficiency
		Alpha:     2e-6,         // collective launch latency
		BetaIntra: 1.0 / 250e9,  // NVLink3 effective per direction
		BetaInter: 1.0 / 6.25e9, // 200 Gb/s HDR shared by 4 GPUs
	}
}

// WithDefaults validates the model and substitutes the Meluxina preset per
// field — the exported form of the normalisation dist.New applies to
// Config.Cost, so out-of-cluster consumers (the auto-parallelism planner,
// analytic studies) price operations with exactly the model a cluster built
// from the same config would charge. A zero field selects the preset;
// negative or non-finite fields panic.
func (m CostModel) WithDefaults() CostModel { return m.withDefaults() }

// withDefaults validates the model and substitutes the Meluxina preset per
// field, so dist.New(dist.Config{WorldSize: n}) charges sane times out of
// the box and a caller who overrides only some fields (say, Alpha for a
// latency study) still gets a finite FLOPS rate instead of Inf/NaN compute
// times. A zero field always and uniformly means "use the preset" — a
// study that wants genuinely free links must pass an epsilon instead —
// and non-finite or negative fields are nonsensical and panic.
func (m CostModel) withDefaults() CostModel {
	for _, v := range [...]float64{m.FLOPS, m.Alpha, m.BetaIntra, m.BetaInter} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("dist: invalid cost model %+v (fields must be finite and non-negative; zero selects the Meluxina default)", m))
		}
	}
	def := MeluxinaModel()
	if m.FLOPS == 0 {
		m.FLOPS = def.FLOPS
	}
	if m.Alpha == 0 {
		m.Alpha = def.Alpha
	}
	if m.BetaIntra == 0 {
		m.BetaIntra = def.BetaIntra
	}
	if m.BetaInter == 0 {
		m.BetaInter = def.BetaInter
	}
	return m
}

// OverlapTime is the overlap-aware cost of one pipelined stage: comm that
// runs concurrently with compute costs max(comm, compute) instead of their
// sum. It is the per-iteration term of PipelinedSummaTime, exposed so
// callers can price other overlapped schedules (gradient sync behind a
// backward pass, a pipeline handoff behind a reduce).
func OverlapTime(comm, compute float64) float64 {
	return math.Max(comm, compute)
}

// HiddenFraction predicts the fraction of comm time a perfectly pipelined
// schedule hides behind compute: min(comm, compute)/comm — all of it when
// compute dominates, compute/comm of it when comm dominates. Zero comm
// hides trivially (returns 1). Compare against Cluster.Overlap's measured
// fraction.
func HiddenFraction(comm, compute float64) float64 {
	if comm <= 0 {
		return 1
	}
	return math.Min(comm, compute) / comm
}

// PipelinedSummaTime predicts one double-buffered SUMMA pass of q
// iterations with per-iteration communication commPerIter and GEMM time
// computePerIter: the first panel transfer cannot hide (pipeline fill),
// after which every iteration costs max(comm, compute) instead of the
// blocking schedule's comm + compute.
func (m CostModel) PipelinedSummaTime(q int, commPerIter, computePerIter float64) float64 {
	if q <= 0 {
		return 0
	}
	return commPerIter + float64(q)*OverlapTime(commPerIter, computePerIter)
}

// linkBeta selects the per-byte rate the exported pricing helpers charge:
// the inter-node link when the group spans nodes, the intra-node link
// otherwise.
func (m CostModel) linkBeta(interNode bool) float64 {
	if interNode {
		return m.BetaInter
	}
	return m.BetaIntra
}

// BroadcastSeconds prices a binomial-tree broadcast of b bytes among n
// ranks (inter-node links when interNode is set) — the per-iteration comm
// term analytic studies feed into PipelinedSummaTime and HiddenFraction.
func (m CostModel) BroadcastSeconds(n int, b int64, interNode bool) float64 {
	return m.broadcastTime(n, b, m.linkBeta(interNode))
}

// ReduceSeconds prices a binomial-tree reduce of b bytes among n ranks —
// identical to a broadcast of the same payload (the tree runs in reverse),
// which is exactly how the simulated Group charges it.
func (m CostModel) ReduceSeconds(n int, b int64, interNode bool) float64 {
	return m.BroadcastSeconds(n, b, interNode)
}

// AllReduceSeconds prices a bandwidth-optimal ring all-reduce of b bytes
// among n ranks: 2(n−1) steps each moving b/n bytes (reduce-scatter then
// all-gather), matching the charge the simulated Group applies.
func (m CostModel) AllReduceSeconds(n int, b int64, interNode bool) float64 {
	return m.allReduceTime(n, b, m.linkBeta(interNode))
}

// AllGatherSeconds prices a ring all-gather among n ranks where every member
// contributes b bytes: n−1 steps each forwarding one member block.
func (m CostModel) AllGatherSeconds(n int, b int64, interNode bool) float64 {
	return m.allGatherTime(n, b, m.linkBeta(interNode))
}

// ReduceScatterSeconds prices a ring reduce-scatter of b payload bytes among
// n ranks: n−1 steps each moving b/n bytes — exactly the first half of the
// bandwidth-optimal ring all-reduce, matching the charge the simulated Group
// applies to ReduceScatterInto.
func (m CostModel) ReduceScatterSeconds(n int, b int64, interNode bool) float64 {
	return m.reduceScatterTime(n, b, m.linkBeta(interNode))
}

// GEMMSeconds prices the 2·m·n·k flops of an [mm×kk]·[kk×nn] multiply at
// the model's sustained rate.
func (m CostModel) GEMMSeconds(mm, nn, kk float64) float64 {
	return 2 * mm * nn * kk / m.FLOPS
}

// treeSteps is ⌈log₂ n⌉, the depth of a binomial tree over n ranks.
func treeSteps(n int) float64 {
	steps := 0
	for span := 1; span < n; span <<= 1 {
		steps++
	}
	return float64(steps)
}

// broadcastTime prices a binomial-tree broadcast (or reduce) of b bytes.
func (m CostModel) broadcastTime(n int, b int64, beta float64) float64 {
	if n <= 1 {
		return 0
	}
	return treeSteps(n) * (m.Alpha + float64(b)*beta)
}

// allReduceTime prices a bandwidth-optimal ring all-reduce of b bytes:
// 2(n−1) steps each moving B/n bytes (reduce-scatter + all-gather).
func (m CostModel) allReduceTime(n int, b int64, beta float64) float64 {
	if n <= 1 {
		return 0
	}
	nf := float64(n)
	return 2 * (nf - 1) * (m.Alpha + float64(b)/nf*beta)
}

// allGatherTime prices a ring all-gather where every member contributes b
// bytes: n−1 steps each forwarding one member block.
func (m CostModel) allGatherTime(n int, b int64, beta float64) float64 {
	if n <= 1 {
		return 0
	}
	return (float64(n) - 1) * (m.Alpha + float64(b)*beta)
}

// reduceScatterTime prices a ring reduce-scatter of b payload bytes: n−1
// steps each moving b/n bytes — half of allReduceTime's ring.
func (m CostModel) reduceScatterTime(n int, b int64, beta float64) float64 {
	if n <= 1 {
		return 0
	}
	nf := float64(n)
	return (nf - 1) * (m.Alpha + float64(b)/nf*beta)
}

// barrierTime prices a tree barrier (latency only).
func (m CostModel) barrierTime(n int) float64 {
	if n <= 1 {
		return 0
	}
	return treeSteps(n) * m.Alpha
}

// sendTime prices one point-to-point transfer of b bytes.
func (m CostModel) sendTime(b int64, beta float64) float64 {
	return m.Alpha + float64(b)*beta
}

// maxClock returns the largest clock in a contribution slice.
func maxClock(clocks []float64) float64 {
	out := math.Inf(-1)
	for _, c := range clocks {
		if c > out {
			out = c
		}
	}
	return out
}
