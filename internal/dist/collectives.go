package dist

import (
	"fmt"

	"repro/internal/tensor"
)

// Broadcast distributes the root's payload to every member and returns it.
// root is a cluster rank that must belong to the group; non-root callers
// pass payload == nil. The root snapshots the payload once; every member
// then shares that immutable snapshot zero-copy, so the root is free to
// mutate its original (an optimiser step on a broadcast weight) while slow
// peers are still reading. Results are read-only by convention.
func (g *Group) Broadcast(w *Worker, root int, payload *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, "broadcast")
	ridx := g.Index(root)
	if ridx < 0 {
		panic(fmt.Sprintf("dist: broadcast root %d outside group %v", root, g.ranks))
	}
	if payload != nil && len(g.ranks) > 1 {
		payload = payload.Clone()
	}
	r := g.rendezvous(w, "broadcast", root, idx, payload, func(r *round) {
		m := r.slots[ridx]
		if m == nil {
			panic(fmt.Sprintf("dist: broadcast root %d passed a nil payload", root))
		}
		n := len(g.ranks)
		bytes := matrixBytes(m)
		r.result = m
		r.newClock = maxClock(r.clocks) + g.c.cost.broadcastTime(n, bytes, g.beta)
		g.c.stats.record("broadcast", int64(n-1), int64(n-1)*bytes)
	})
	return r.result
}

// Reduce sums every member's matrix onto the root: the root receives an
// owned buffer it may mutate, every other member receives nil. The
// summation runs over a binomial tree, so the partial additions execute on
// the member goroutines in a fixed, schedule-independent association.
func (g *Group) Reduce(w *Worker, root int, m *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, "reduce")
	ridx := g.Index(root)
	if ridx < 0 {
		panic(fmt.Sprintf("dist: reduce root %d outside group %v", root, g.ranks))
	}
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to reduce", w.rank))
	}
	sum := g.treeReduce(w, idx, ridx, m)
	g.rendezvous(w, "reduce", root, idx, m, func(r *round) {
		n := len(g.ranks)
		bytes := matrixBytes(r.slots[ridx])
		r.newClock = maxClock(r.clocks) + g.c.cost.broadcastTime(n, bytes, g.beta)
		g.c.stats.record("reduce", int64(n-1), int64(n-1)*bytes)
	})
	return sum
}

// AllReduce sums every member's matrix and hands each member its own owned
// copy of the result (callers may mutate it; the replicas are bit-identical
// because one sum is computed once, then cloned). Time is charged as a
// bandwidth-optimal ring; the data path is a reduce tree followed by a
// broadcast tree over the same edges.
func (g *Group) AllReduce(w *Worker, m *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, "allreduce")
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to allreduce", w.rank))
	}
	out := g.treeReduce(w, idx, 0, m)
	if shared := g.treeBcast(w, idx, 0, out); out == nil {
		out = shared.Clone()
	}
	g.rendezvous(w, "allreduce", -1, idx, m, func(r *round) {
		n := len(g.ranks)
		bytes := matrixBytes(r.slots[idx])
		r.newClock = maxClock(r.clocks) + g.c.cost.allReduceTime(n, bytes, g.beta)
		g.c.stats.record("allreduce", 2*int64(n-1), 2*int64(n-1)*bytes)
	})
	return out
}

// AllGather returns every member's matrix in the group's canonical order.
// Each member snapshots its own block once at entry; the n members then
// share the n immutable snapshots (read-only by convention) instead of
// paying n−1 copies each. The returned slice itself is private.
func (g *Group) AllGather(w *Worker, m *tensor.Matrix) []*tensor.Matrix {
	idx := g.mustIndex(w, "allgather")
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to allgather", w.rank))
	}
	if len(g.ranks) > 1 {
		m = m.Clone()
	}
	r := g.rendezvous(w, "allgather", -1, idx, m, func(r *round) {
		n := len(g.ranks)
		var sum, max int64
		for _, s := range r.slots {
			b := matrixBytes(s)
			sum += b
			if b > max {
				max = b
			}
		}
		r.newClock = maxClock(r.clocks) + g.c.cost.allGatherTime(n, max, g.beta)
		g.c.stats.record("allgather", int64(n)*int64(n-1), int64(n-1)*sum)
	})
	out := make([]*tensor.Matrix, len(r.slots))
	copy(out, r.slots)
	return out
}

// Barrier blocks until every member arrives, then advances all clocks to
// the common post-barrier time. It moves no payload.
func (g *Group) Barrier(w *Worker) {
	idx := g.mustIndex(w, "barrier")
	g.rendezvous(w, "barrier", -1, idx, nil, func(r *round) {
		r.newClock = maxClock(r.clocks) + g.c.cost.barrierTime(len(g.ranks))
		g.c.stats.record("barrier", 0, 0)
	})
}
