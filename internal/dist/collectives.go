package dist

import (
	"fmt"

	"repro/internal/tensor"
)

// Handle is one in-flight nonblocking collective, returned by the
// I-variants (IBroadcastInto, IReduceInto, IAllReduceInto). The issuing
// call never blocks; Wait blocks until the operation completes, advances
// the caller's simulated clock to max(own compute, collective finish) —
// communication overlapped with compute costs max, not sum — and returns
// ownership of the borrowed buffers.
//
// Contract: every matrix handed to an I-collective (payload and
// destination) is borrowed until Wait returns — it must not be read,
// written, Put, or released in between; the workspace enforces the Put and
// ReleaseAll half of that rule by panicking. Wait must be called exactly
// once, from the issuing worker's goroutine; a second Wait panics, even
// through a copy of the Handle (the operation tracks which members have
// waited, and a generation stamp catches copies that outlive the
// operation). Handles are plain values: keep them on the stack, no
// allocation involved.
//
// Ordering: a worker's operations on one group — blocking or nonblocking —
// pair up with its peers' in per-worker issue order, so all members must
// issue the same sequence of collectives on a group, exactly as with the
// blocking API. Operations on one group serialise in simulated time (one
// pipeline channel per communicator); operations on different groups
// overlap freely.
type Handle struct {
	g        *Group
	w        *Worker
	r        *round
	gen      uint32
	idx      int
	finisher bool
	payload  *tensor.Matrix
	dst      *tensor.Matrix
	waited   bool
	valid    bool
}

// Wait blocks until the collective completes, releases the borrowed
// buffers, and advances the caller's clock. It panics if called twice or on
// a zero Handle, and unwinds with the cluster abort if the cluster dies.
func (h *Handle) Wait() {
	if !h.valid {
		panic("dist: Wait on a zero or already-consumed Handle")
	}
	if h.waited || h.r.gen.Load() != h.gen || h.r.waited[h.idx] {
		panic("dist: Handle.Wait called twice (possibly through a copy of the Handle)")
	}
	h.waited = true
	h.r.waited[h.idx] = true
	h.g.waitRound(h.w, h.r, h.finisher)
	ws := h.w.Workspace()
	ws.Release(h.payload)
	ws.Release(h.dst)
	h.g.retire(h.r)
}

// issueAsync files a nonblocking arrival and borrows the buffers it lends
// to the collective until Wait.
func (g *Group) issueAsync(w *Worker, kind opKind, root, idx int, payload, dst *tensor.Matrix) Handle {
	ws := w.Workspace()
	ws.Borrow(payload)
	ws.Borrow(dst)
	r, finisher := g.join(w, kind, root, idx, payload, dst)
	// r cannot be recycled before this member retires (which happens only
	// in Wait), so the generation read here is stable.
	return Handle{g: g, w: w, r: r, gen: r.gen.Load(), idx: idx, finisher: finisher, payload: payload, dst: dst, valid: true}
}

// runBlocking is the shared blocking path: join, park until the round
// completes, return it for result extraction. The caller must retire the
// round after reading what it needs.
func (g *Group) runBlocking(w *Worker, kind opKind, root, idx int, slot, dst *tensor.Matrix) *round {
	r, finisher := g.join(w, kind, root, idx, slot, dst)
	g.waitRound(w, r, finisher)
	return r
}

// mustRootIdx validates that root is a member and returns its slot.
func (g *Group) mustRootIdx(root int, kind opKind) int {
	ridx := g.Index(root)
	if ridx < 0 {
		panic(fmt.Sprintf("dist: %s root %d outside group %v", kind, root, g.ranks))
	}
	return ridx
}

// Broadcast distributes the root's payload to every member and returns it.
// root is a cluster rank that must belong to the group; non-root callers
// pass payload == nil. The root snapshots the payload once; every member
// then shares that immutable snapshot zero-copy, so the root is free to
// mutate its original (an optimiser step on a broadcast weight) while slow
// peers are still reading. Results are read-only by convention. Callers on
// a hot path that would immediately copy or discard the snapshot should use
// BroadcastInto instead.
func (g *Group) Broadcast(w *Worker, root int, payload *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, opBroadcast)
	ridx := g.mustRootIdx(root, opBroadcast)
	if payload != nil && len(g.ranks) > 1 {
		payload = payload.Clone()
	}
	r := g.runBlocking(w, opBroadcast, ridx, idx, payload, nil)
	out := r.result
	g.retire(r)
	return out
}

// BroadcastInto distributes the root's payload into caller-supplied
// destinations without the snapshot clone: the member completing the
// operation copies the payload into every member's dst while the operation
// is still in flight, so the root's buffer is never aliased once the call
// returns and the root may mutate it immediately. Every member must pass a
// dst of the payload's shape; the root may pass its payload as dst to skip
// the self-copy. Time and statistics are charged exactly like Broadcast.
// Returns dst.
func (g *Group) BroadcastInto(w *Worker, root int, payload, dst *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, opBroadcastInto)
	ridx := g.mustRootIdx(root, opBroadcastInto)
	if dst == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil dst to broadcast-into", w.rank))
	}
	g.retire(g.runBlocking(w, opBroadcastInto, ridx, idx, payload, dst))
	return dst
}

// IBroadcastInto is the nonblocking BroadcastInto: it files the arrival and
// returns immediately; the copy into dst happens while the handle is in
// flight and is visible once Wait returns. Payload and dst are borrowed
// until Wait (see Handle).
func (g *Group) IBroadcastInto(w *Worker, root int, payload, dst *tensor.Matrix) Handle {
	idx := g.mustIndex(w, opBroadcastInto)
	ridx := g.mustRootIdx(root, opBroadcastInto)
	if dst == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil dst to broadcast-into", w.rank))
	}
	return g.issueAsync(w, opBroadcastInto, ridx, idx, payload, dst)
}

// Reduce sums every member's matrix onto the root: the root receives an
// owned buffer it may mutate, every other member receives nil. The partial
// sums combine in the fixed association of a binomial tree over the group's
// virtual positions, so the result is schedule-independent down to the bit.
func (g *Group) Reduce(w *Worker, root int, m *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, opReduce)
	ridx := g.mustRootIdx(root, opReduce)
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to reduce", w.rank))
	}
	r := g.runBlocking(w, opReduce, ridx, idx, m, nil)
	var out *tensor.Matrix
	if idx == ridx {
		out = r.result
	}
	g.retire(r)
	return out
}

// ReduceInto is Reduce with a root-supplied accumulator: the sum lands in
// the root's dst (which may alias its m) instead of a freshly allocated
// buffer, in the same binomial-tree association — bit-identical to Reduce.
// Non-root members pass dst == nil and receive nil. Every member's m is
// fully consumed before the collective returns, so callers may overwrite
// their partials immediately — the contract that lets SUMMA reuse its
// partial buffers across iterations.
func (g *Group) ReduceInto(w *Worker, root int, m, dst *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, opReduceInto)
	ridx := g.mustRootIdx(root, opReduceInto)
	checkReduceInto(w, idx, ridx, m, dst)
	g.retire(g.runBlocking(w, opReduceInto, ridx, idx, m, dst))
	return dst
}

// IReduceInto is the nonblocking ReduceInto. The member's m is borrowed
// until Wait — only then may the caller overwrite its partial — and the
// root's dst holds the finished sum once the root's Wait returns.
func (g *Group) IReduceInto(w *Worker, root int, m, dst *tensor.Matrix) Handle {
	idx := g.mustIndex(w, opReduceInto)
	ridx := g.mustRootIdx(root, opReduceInto)
	checkReduceInto(w, idx, ridx, m, dst)
	return g.issueAsync(w, opReduceInto, ridx, idx, m, dst)
}

func checkReduceInto(w *Worker, idx, ridx int, m, dst *tensor.Matrix) {
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to reduce-into", w.rank))
	}
	if (idx == ridx) != (dst != nil) {
		panic(fmt.Sprintf("dist: reduce-into rank %d root=%v dst=%v — exactly the root must supply dst", w.rank, idx == ridx, dst != nil))
	}
}

// AllReduce sums every member's matrix and hands each member its own owned
// copy of the result (callers may mutate it; the replicas are bit-identical
// because one sum is computed once, then cloned). Time is charged as a
// bandwidth-optimal ring.
func (g *Group) AllReduce(w *Worker, m *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, opAllReduce)
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to allreduce", w.rank))
	}
	r := g.runBlocking(w, opAllReduce, -1, idx, m, nil)
	out := r.results[idx]
	g.retire(r)
	return out
}

// AllReduceInto sums every member's matrix into each member's own dst —
// bit-identical to AllReduce but with no retained allocation. dst may alias
// m, giving an in-place all-reduce. Every member's buffers are exclusively
// owned again the moment the call returns. Returns dst.
func (g *Group) AllReduceInto(w *Worker, m, dst *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, opAllReduceInto)
	checkAllReduceInto(w, m, dst)
	g.retire(g.runBlocking(w, opAllReduceInto, -1, idx, m, dst))
	return dst
}

// IAllReduceInto is the nonblocking AllReduceInto — the building block of
// the DDP-style gradient sync: issue the reduction the moment a gradient is
// ready, keep computing, Wait at optimiser time. m and dst (which may alias
// m) are borrowed until Wait.
func (g *Group) IAllReduceInto(w *Worker, m, dst *tensor.Matrix) Handle {
	idx := g.mustIndex(w, opAllReduceInto)
	checkAllReduceInto(w, m, dst)
	return g.issueAsync(w, opAllReduceInto, -1, idx, m, dst)
}

func checkAllReduceInto(w *Worker, m, dst *tensor.Matrix) {
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to allreduce-into", w.rank))
	}
	if dst == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil dst to allreduce-into", w.rank))
	}
}

// AllGather returns every member's matrix in the group's canonical order.
// Each member snapshots its own block once at entry; the n members then
// share the n immutable snapshots (read-only by convention) instead of
// paying n−1 copies each. The returned slice itself is private.
func (g *Group) AllGather(w *Worker, m *tensor.Matrix) []*tensor.Matrix {
	idx := g.mustIndex(w, opAllGather)
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to allgather", w.rank))
	}
	if len(g.ranks) > 1 {
		m = m.Clone()
	}
	r := g.runBlocking(w, opAllGather, -1, idx, m, nil)
	out := make([]*tensor.Matrix, len(r.slots))
	copy(out, r.slots)
	g.retire(r)
	return out
}

// AllGatherInto gathers every member's equal-shaped block into each
// member's own dst, concatenated in canonical order — the allocation-free
// AllGather for callers that would immediately pack the blocks into one
// matrix. The orientation follows dst's shape: [n·rows, cols] stacks the
// blocks vertically, [rows, n·cols] side by side. Every member's m is fully
// read before the call returns (no snapshot, no aliasing), and time and
// statistics are charged exactly like AllGather. Returns dst.
func (g *Group) AllGatherInto(w *Worker, m, dst *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, opAllGatherInto)
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to allgather-into", w.rank))
	}
	if dst == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil dst to allgather-into", w.rank))
	}
	n := len(g.ranks)
	vcat := dst.Rows == n*m.Rows && dst.Cols == m.Cols
	hcat := dst.Rows == m.Rows && dst.Cols == n*m.Cols
	if !vcat && !hcat {
		panic(fmt.Sprintf("dist: allgather-into dst %dx%d fits neither %dx%d nor %dx%d for %d blocks of %dx%d",
			dst.Rows, dst.Cols, n*m.Rows, m.Cols, m.Rows, n*m.Cols, n, m.Rows, m.Cols))
	}
	g.retire(g.runBlocking(w, opAllGatherInto, -1, idx, m, dst))
	return dst
}

// ReduceScatterInto sums every member's equal full-size partial m and
// scatters the sum by row blocks: member i's dst receives rows
// [i·m.Rows/n, (i+1)·m.Rows/n) of the total. The partials combine in
// ReduceInto's binomial-tree association rooted at the group's first member,
// so the outcome is bit-identical to ReduceInto(first member) followed by a
// row scatter — the property the seqpar family's memory saving rides on:
// the activation living after the collective is 1/n the size, without
// changing a single bit relative to the all-reduce schedule. m.Rows must
// divide by the group size; every member's m is fully consumed before the
// call returns. Time is charged as the first half of the bandwidth-optimal
// ring all-reduce. Returns dst.
func (g *Group) ReduceScatterInto(w *Worker, m, dst *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, opReduceScatterInto)
	checkReduceScatterInto(w, g, m, dst)
	g.retire(g.runBlocking(w, opReduceScatterInto, -1, idx, m, dst))
	return dst
}

// IReduceScatterInto is the nonblocking ReduceScatterInto — issue the
// scatter-reduction the moment a partial is ready, keep computing, Wait
// before touching dst. m and dst are borrowed until Wait (see Handle).
func (g *Group) IReduceScatterInto(w *Worker, m, dst *tensor.Matrix) Handle {
	idx := g.mustIndex(w, opReduceScatterInto)
	checkReduceScatterInto(w, g, m, dst)
	return g.issueAsync(w, opReduceScatterInto, -1, idx, m, dst)
}

func checkReduceScatterInto(w *Worker, g *Group, m, dst *tensor.Matrix) {
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to reduce-scatter-into", w.rank))
	}
	if dst == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil dst to reduce-scatter-into", w.rank))
	}
	n := len(g.ranks)
	if m.Rows%n != 0 {
		panic(fmt.Sprintf("dist: reduce-scatter-into payload rows %d not divisible by group size %d", m.Rows, n))
	}
	if dst.Rows*n != m.Rows || dst.Cols != m.Cols {
		panic(fmt.Sprintf("dist: reduce-scatter-into dst %dx%d wants %dx%d for %d-way scatter of %dx%d",
			dst.Rows, dst.Cols, m.Rows/n, m.Cols, n, m.Rows, m.Cols))
	}
}

// Barrier blocks until every member arrives, then advances all clocks to
// the common post-barrier time. It moves no payload.
func (g *Group) Barrier(w *Worker) {
	idx := g.mustIndex(w, opBarrier)
	g.retire(g.runBlocking(w, opBarrier, -1, idx, nil, nil))
}
