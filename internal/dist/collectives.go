package dist

import (
	"fmt"

	"repro/internal/tensor"
)

// Broadcast distributes the root's payload to every member and returns it.
// root is a cluster rank that must belong to the group; non-root callers
// pass payload == nil. The root snapshots the payload once; every member
// then shares that immutable snapshot zero-copy, so the root is free to
// mutate its original (an optimiser step on a broadcast weight) while slow
// peers are still reading. Results are read-only by convention. Callers on
// a hot path that would immediately copy or discard the snapshot should use
// BroadcastInto instead.
func (g *Group) Broadcast(w *Worker, root int, payload *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, "broadcast")
	ridx := g.Index(root)
	if ridx < 0 {
		panic(fmt.Sprintf("dist: broadcast root %d outside group %v", root, g.ranks))
	}
	if payload != nil && len(g.ranks) > 1 {
		payload = payload.Clone()
	}
	r := g.rendezvous(w, "broadcast", root, idx, payload, nil, func(r *round) {
		m := r.slots[ridx]
		if m == nil {
			panic(fmt.Sprintf("dist: broadcast root %d passed a nil payload", root))
		}
		n := len(g.ranks)
		bytes := matrixBytes(m)
		r.result = m
		r.newClock = maxClock(r.clocks) + g.c.cost.broadcastTime(n, bytes, g.beta)
		g.c.stats.record("broadcast", int64(n-1), int64(n-1)*bytes)
	})
	out := r.result
	g.retire(r)
	return out
}

// BroadcastInto distributes the root's payload into caller-supplied
// destinations without the snapshot clone: the last member to arrive copies
// the payload into every member's dst while all members are still parked at
// the rendezvous, so the root's buffer is never aliased once the call
// returns and the root may mutate it immediately. Every member must pass a
// dst of the payload's shape; the root may pass its payload as dst to skip
// the self-copy. Time and statistics are charged exactly like Broadcast.
// Returns dst.
func (g *Group) BroadcastInto(w *Worker, root int, payload, dst *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, "broadcast-into")
	ridx := g.Index(root)
	if ridx < 0 {
		panic(fmt.Sprintf("dist: broadcast root %d outside group %v", root, g.ranks))
	}
	if dst == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil dst to broadcast-into", w.rank))
	}
	r := g.rendezvous(w, "broadcast-into", root, idx, payload, dst, func(r *round) {
		m := r.slots[ridx]
		if m == nil {
			panic(fmt.Sprintf("dist: broadcast root %d passed a nil payload", root))
		}
		for _, d := range r.dsts {
			tensor.CopyInto(d, m)
		}
		n := len(g.ranks)
		bytes := matrixBytes(m)
		r.newClock = maxClock(r.clocks) + g.c.cost.broadcastTime(n, bytes, g.beta)
		g.c.stats.record("broadcast", int64(n-1), int64(n-1)*bytes)
	})
	g.retire(r)
	return dst
}

// Reduce sums every member's matrix onto the root: the root receives an
// owned buffer it may mutate, every other member receives nil. The
// summation runs over a binomial tree, so the partial additions execute on
// the member goroutines in a fixed, schedule-independent association.
func (g *Group) Reduce(w *Worker, root int, m *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, "reduce")
	ridx := g.Index(root)
	if ridx < 0 {
		panic(fmt.Sprintf("dist: reduce root %d outside group %v", root, g.ranks))
	}
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to reduce", w.rank))
	}
	sum, scratch := g.treeReduce(w, idx, ridx, m)
	g.retire(g.rendezvous(w, "reduce", root, idx, m, nil, func(r *round) {
		n := len(g.ranks)
		bytes := matrixBytes(r.slots[ridx])
		r.newClock = maxClock(r.clocks) + g.c.cost.broadcastTime(n, bytes, g.beta)
		g.c.stats.record("reduce", int64(n-1), int64(n-1)*bytes)
	}))
	g.recycleScratch(w, scratch)
	return sum
}

// ReduceInto is Reduce with a root-supplied accumulator: the sum lands in
// the root's dst (which may alias its m) instead of a freshly allocated
// buffer, in the same binomial-tree association — bit-identical to Reduce.
// Non-root members pass dst == nil and receive nil. Every member's m is
// fully consumed before the collective returns, so callers may overwrite
// their partials immediately — the contract that lets SUMMA reuse one
// partial buffer across all its iterations.
func (g *Group) ReduceInto(w *Worker, root int, m, dst *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, "reduce-into")
	ridx := g.Index(root)
	if ridx < 0 {
		panic(fmt.Sprintf("dist: reduce root %d outside group %v", root, g.ranks))
	}
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to reduce-into", w.rank))
	}
	if (idx == ridx) != (dst != nil) {
		panic(fmt.Sprintf("dist: reduce-into rank %d root=%v dst=%v — exactly the root must supply dst", w.rank, idx == ridx, dst != nil))
	}
	sum, scratch := g.treeReduceInto(w, idx, ridx, m, dst)
	g.retire(g.rendezvous(w, "reduce-into", root, idx, m, nil, func(r *round) {
		n := len(g.ranks)
		bytes := matrixBytes(r.slots[ridx])
		r.newClock = maxClock(r.clocks) + g.c.cost.broadcastTime(n, bytes, g.beta)
		g.c.stats.record("reduce", int64(n-1), int64(n-1)*bytes)
	}))
	g.recycleScratch(w, scratch)
	return sum
}

// AllReduce sums every member's matrix and hands each member its own owned
// copy of the result (callers may mutate it; the replicas are bit-identical
// because one sum is computed once, then cloned). Time is charged as a
// bandwidth-optimal ring; the data path is a reduce tree followed by a
// broadcast tree over the same edges.
func (g *Group) AllReduce(w *Worker, m *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, "allreduce")
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to allreduce", w.rank))
	}
	out, scratch := g.treeReduce(w, idx, 0, m)
	if shared := g.treeBcast(w, idx, 0, out); out == nil {
		out = shared.Clone()
	}
	g.retire(g.rendezvous(w, "allreduce", -1, idx, m, nil, func(r *round) {
		n := len(g.ranks)
		bytes := matrixBytes(r.slots[idx])
		r.newClock = maxClock(r.clocks) + g.c.cost.allReduceTime(n, bytes, g.beta)
		g.c.stats.record("allreduce", 2*int64(n-1), 2*int64(n-1)*bytes)
	}))
	g.recycleScratch(w, scratch)
	return out
}

// AllReduceInto sums every member's matrix into each member's own dst —
// bit-identical to AllReduce but with no retained allocation. dst may alias
// m, giving an in-place all-reduce. The tree's root accumulates directly
// into its dst and shares it down the broadcast tree; every other member
// copies the shared sum into its dst before reaching the closing
// rendezvous, so the root's buffer is exclusively owned again the moment
// the call returns. Returns dst.
func (g *Group) AllReduceInto(w *Worker, m, dst *tensor.Matrix) *tensor.Matrix {
	idx := g.mustIndex(w, "allreduce-into")
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to allreduce-into", w.rank))
	}
	if dst == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil dst to allreduce-into", w.rank))
	}
	var rootDst *tensor.Matrix
	if idx == 0 {
		rootDst = dst
	}
	sum, scratch := g.treeReduceInto(w, idx, 0, m, rootDst)
	shared := g.treeBcast(w, idx, 0, sum)
	if idx != 0 {
		tensor.CopyInto(dst, shared)
	}
	g.retire(g.rendezvous(w, "allreduce-into", -1, idx, m, nil, func(r *round) {
		n := len(g.ranks)
		bytes := matrixBytes(r.slots[idx])
		r.newClock = maxClock(r.clocks) + g.c.cost.allReduceTime(n, bytes, g.beta)
		g.c.stats.record("allreduce", 2*int64(n-1), 2*int64(n-1)*bytes)
	}))
	g.recycleScratch(w, scratch)
	return dst
}

// AllGather returns every member's matrix in the group's canonical order.
// Each member snapshots its own block once at entry; the n members then
// share the n immutable snapshots (read-only by convention) instead of
// paying n−1 copies each. The returned slice itself is private.
func (g *Group) AllGather(w *Worker, m *tensor.Matrix) []*tensor.Matrix {
	idx := g.mustIndex(w, "allgather")
	if m == nil {
		panic(fmt.Sprintf("dist: rank %d passed nil to allgather", w.rank))
	}
	if len(g.ranks) > 1 {
		m = m.Clone()
	}
	r := g.rendezvous(w, "allgather", -1, idx, m, nil, func(r *round) {
		n := len(g.ranks)
		var sum, max int64
		for _, s := range r.slots {
			b := matrixBytes(s)
			sum += b
			if b > max {
				max = b
			}
		}
		r.newClock = maxClock(r.clocks) + g.c.cost.allGatherTime(n, max, g.beta)
		g.c.stats.record("allgather", int64(n)*int64(n-1), int64(n-1)*sum)
	})
	out := make([]*tensor.Matrix, len(r.slots))
	copy(out, r.slots)
	g.retire(r)
	return out
}

// recycleScratch returns an interior-node reduce accumulator to its
// worker's pool. It runs after the collective's closing rendezvous, by
// which point the parent that received the buffer has finished its reads —
// it cannot have reached the rendezvous otherwise.
func (g *Group) recycleScratch(w *Worker, scratch *tensor.Matrix) {
	if scratch != nil {
		w.Workspace().Put(scratch)
	}
}

// Barrier blocks until every member arrives, then advances all clocks to
// the common post-barrier time. It moves no payload.
func (g *Group) Barrier(w *Worker) {
	idx := g.mustIndex(w, "barrier")
	g.retire(g.rendezvous(w, "barrier", -1, idx, nil, nil, func(r *round) {
		r.newClock = maxClock(r.clocks) + g.c.cost.barrierTime(len(g.ranks))
		g.c.stats.record("barrier", 0, 0)
	}))
}
