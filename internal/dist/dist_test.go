package dist

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/tensor"
)

func runWorld(t *testing.T, n int, fn func(w *Worker) error) *Cluster {
	t.Helper()
	c := New(Config{WorldSize: n})
	if err := c.Run(fn); err != nil {
		t.Fatalf("cluster run failed: %v", err)
	}
	return c
}

func TestAllReduceSumsAndIsolates(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			want := float64(n*(n-1)) / 2 // Σ ranks
			var mu sync.Mutex
			results := make([]*tensor.Matrix, n)
			runWorld(t, n, func(w *Worker) error {
				m := tensor.New(3, 2)
				m.Fill(float64(w.Rank()))
				sum := w.Cluster().WorldGroup().AllReduce(w, m)
				mu.Lock()
				results[w.Rank()] = sum
				mu.Unlock()
				// The result must be the caller's own mutable buffer:
				// scaling it here must not disturb the peers' copies.
				tensor.ScaleInPlace(sum, float64(w.Rank()+1))
				if m.At(0, 0) != float64(w.Rank()) {
					return fmt.Errorf("allreduce mutated its input")
				}
				return nil
			})
			for r, m := range results {
				if got := m.At(2, 1) / float64(r+1); got != want {
					t.Fatalf("rank %d sum %g, want %g", r, got, want)
				}
			}
		})
	}
}

func TestReduceDeliversToRootOnly(t *testing.T) {
	const n = 6
	runWorld(t, n, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		m := tensor.New(2, 2)
		m.Fill(1)
		out := g.Reduce(w, 2, m)
		if w.Rank() == 2 {
			if out == nil || out.At(0, 0) != n {
				return fmt.Errorf("root sum wrong: %v", out)
			}
		} else if out != nil {
			return fmt.Errorf("non-root received %v", out)
		}
		return nil
	})
}

func TestBroadcastSharesSnapshot(t *testing.T) {
	runWorld(t, 4, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		var payload *tensor.Matrix
		if w.Rank() == 1 {
			payload = tensor.New(2, 3)
			payload.Fill(42)
		}
		got := g.Broadcast(w, 1, payload)
		if got.At(1, 2) != 42 {
			return fmt.Errorf("rank %d got %g", w.Rank(), got.At(1, 2))
		}
		if w.Rank() == 1 {
			// The root's original is free to change afterwards; peers read
			// the snapshot. (The race detector enforces the claim.)
			payload.Fill(-1)
		}
		return nil
	})
}

func TestAllGatherCanonicalOrder(t *testing.T) {
	runWorld(t, 5, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		m := tensor.New(1, 1)
		m.Set(0, 0, float64(10*w.Rank()))
		parts := g.AllGather(w, m)
		if len(parts) != 5 {
			return fmt.Errorf("got %d parts", len(parts))
		}
		for i, p := range parts {
			if p.At(0, 0) != float64(10*i) {
				return fmt.Errorf("slot %d holds %g", i, p.At(0, 0))
			}
		}
		return nil
	})
}

func TestSubgroupCollectivesRunConcurrently(t *testing.T) {
	// Two disjoint groups must progress independently.
	runWorld(t, 6, func(w *Worker) error {
		var g *Group
		if w.Rank() < 3 {
			g = w.Cluster().Group(0, 1, 2)
		} else {
			g = w.Cluster().Group(3, 4, 5)
		}
		m := tensor.New(1, 1)
		m.Set(0, 0, 1)
		for i := 0; i < 10; i++ {
			m = g.AllReduce(w, m)
		}
		if m.At(0, 0) != 59049 { // 3^10
			return fmt.Errorf("rank %d: %g", w.Rank(), m.At(0, 0))
		}
		return nil
	})
}

// TestPhantomPropagation drives every collective with shape-only payloads
// and checks shape, phantomness, clock equality with the real run, and
// identical traffic statistics — the contract phantom mode rests on.
func TestPhantomPropagation(t *testing.T) {
	exercise := func(phantom bool) (*Cluster, error) {
		c := New(Config{WorldSize: 4})
		err := c.Run(func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			mk := func(r, cl int) *tensor.Matrix {
				if phantom {
					return tensor.NewPhantom(r, cl)
				}
				m := tensor.New(r, cl)
				m.Fill(float64(w.Rank() + 1))
				return m
			}
			sum := g.AllReduce(w, mk(3, 5))
			if phantom && !sum.Phantom() {
				return errors.New("allreduce lost phantomness")
			}
			if sum.Rows != 3 || sum.Cols != 5 {
				return fmt.Errorf("allreduce shape %dx%d", sum.Rows, sum.Cols)
			}

			red := g.Reduce(w, 0, mk(2, 2))
			if w.Rank() == 0 {
				if phantom && !red.Phantom() {
					return errors.New("reduce lost phantomness")
				}
				if red.Rows != 2 || red.Cols != 2 {
					return fmt.Errorf("reduce shape %dx%d", red.Rows, red.Cols)
				}
			}

			var payload *tensor.Matrix
			if w.Rank() == 2 {
				payload = mk(4, 1)
			}
			bc := g.Broadcast(w, 2, payload)
			if phantom && !bc.Phantom() {
				return errors.New("broadcast lost phantomness")
			}
			if bc.Rows != 4 || bc.Cols != 1 {
				return fmt.Errorf("broadcast shape %dx%d", bc.Rows, bc.Cols)
			}

			parts := g.AllGather(w, mk(1, 6))
			for _, p := range parts {
				if phantom && !p.Phantom() {
					return errors.New("allgather lost phantomness")
				}
				if p.Rows != 1 || p.Cols != 6 {
					return fmt.Errorf("allgather shape %dx%d", p.Rows, p.Cols)
				}
			}

			g.Barrier(w)

			if w.Rank() == 0 {
				w.Send(1, mk(2, 3))
			}
			if w.Rank() == 1 {
				got := w.Recv(0)
				if phantom && !got.Phantom() {
					return errors.New("send lost phantomness")
				}
				if got.Rows != 2 || got.Cols != 3 {
					return fmt.Errorf("recv shape %dx%d", got.Rows, got.Cols)
				}
			}
			return nil
		})
		return c, err
	}

	real, err := exercise(false)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := exercise(true)
	if err != nil {
		t.Fatal(err)
	}
	if real.MaxClock() <= 0 || real.MaxClock() != ph.MaxClock() {
		t.Fatalf("phantom clock %g != real clock %g", ph.MaxClock(), real.MaxClock())
	}
	rs, ps := real.Stats(), ph.Stats()
	if rs.Messages != ps.Messages || rs.Bytes != ps.Bytes {
		t.Fatalf("phantom stats %+v != real stats %+v", ps, rs)
	}
	for op, re := range rs.PerOp {
		if ps.PerOp[op] != re {
			t.Fatalf("op %s: phantom %+v != real %+v", op, ps.PerOp[op], re)
		}
	}
}

func TestCollectiveClocksAgree(t *testing.T) {
	c := New(Config{WorldSize: 3})
	if err := c.Run(func(w *Worker) error {
		w.Compute(float64(w.Rank()+1) * 1e9) // skew the clocks
		m := tensor.New(8, 8)
		w.Cluster().WorldGroup().AllReduce(w, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// After a collective every participant sits at the same simulated time:
	// max(skews) + op cost, so MaxClock exceeds the largest skew.
	base := 3e9 / MeluxinaModel().FLOPS
	if c.MaxClock() <= base {
		t.Fatalf("clock %g not advanced past the slowest member %g", c.MaxClock(), base)
	}
}

func TestIntraNodeCheaperThanInterNode(t *testing.T) {
	clockFor := func(ranks []int) float64 {
		c := New(Config{WorldSize: 8, GPUsPerNode: 4})
		if err := c.Run(func(w *Worker) error {
			g := w.Cluster().Group(ranks...)
			if g.Index(w.Rank()) < 0 {
				return nil
			}
			var payload *tensor.Matrix
			if w.Rank() == ranks[0] {
				payload = tensor.New(64, 64)
			}
			g.Broadcast(w, ranks[0], payload)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	intra := clockFor([]int{0, 1, 2, 3}) // one node
	inter := clockFor([]int{0, 2, 4, 6}) // spans both nodes
	if !(intra > 0 && intra < inter) {
		t.Fatalf("intra-node broadcast %g should be cheaper than inter-node %g", intra, inter)
	}
}

func TestSendRecvCausality(t *testing.T) {
	c := New(Config{WorldSize: 2})
	if err := c.Run(func(w *Worker) error {
		if w.Rank() == 0 {
			w.Compute(1e12) // sender is far in the simulated future
			m := tensor.New(4, 4)
			w.Send(1, m)
		} else {
			w.Recv(0)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	senderTime := 1e12 / MeluxinaModel().FLOPS
	if c.MaxClock() <= senderTime {
		t.Fatalf("receiver clock %g must trail the sender's send time %g", c.MaxClock(), senderTime)
	}
}

func TestGroupIdentityAndValidation(t *testing.T) {
	c := New(Config{WorldSize: 4})
	if c.Group(0, 2) != c.Group(0, 2) {
		t.Fatal("same rank list must return the cached group")
	}
	if c.Group(0, 2) == c.Group(2, 0) {
		t.Fatal("different canonical orders are different groups")
	}
	g := c.Group(3, 1)
	if g.Size() != 2 || g.Index(3) != 0 || g.Index(1) != 1 || g.Index(0) != -1 {
		t.Fatalf("group bookkeeping wrong: %v", g.Ranks())
	}
	r := g.Ranks()
	r[0] = 99
	if g.Ranks()[0] != 3 {
		t.Fatal("Ranks must return a private copy")
	}
}

func TestRunErrorNamesWorkerAndPoisons(t *testing.T) {
	sentinel := errors.New("boom")
	c := New(Config{WorldSize: 3})
	err := c.Run(func(w *Worker) error {
		if w.Rank() == 1 {
			return sentinel
		}
		w.Cluster().WorldGroup().Barrier(w)
		return nil
	})
	if !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "worker 1") {
		t.Fatalf("bad error: %v", err)
	}
	if err := c.Run(func(w *Worker) error { return nil }); err == nil {
		t.Fatal("poisoned cluster must refuse further runs")
	}
}

func TestDeterministicTreeReduction(t *testing.T) {
	// Floating-point reduction order is fixed by the tree, not by goroutine
	// scheduling: repeated runs must agree bitwise.
	sum := func() float64 {
		var out float64
		var mu sync.Mutex
		runWorld(t, 7, func(w *Worker) error {
			m := tensor.New(1, 1)
			m.Set(0, 0, 0.1*float64(w.Rank()+1))
			s := w.Cluster().WorldGroup().AllReduce(w, m)
			mu.Lock()
			if w.Rank() == 3 {
				out = s.At(0, 0)
			}
			mu.Unlock()
			return nil
		})
		return out
	}
	first := sum()
	for i := 0; i < 20; i++ {
		if got := sum(); got != first {
			t.Fatalf("run %d: %g != %g", i, got, first)
		}
	}
}

func TestReduceShapeMismatchPanics(t *testing.T) {
	// Program divergence (members contributing different shapes to one
	// reduction) must fail loudly, not silently prefix-sum — including on
	// groups larger than two, where the centralized combine does the adds.
	c := New(Config{WorldSize: 3})
	err := c.Run(func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		m := tensor.New(2, 2)
		if w.Rank() == 1 {
			m = tensor.New(4, 4)
		}
		g.AllReduce(w, m)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "contributed") {
		t.Fatalf("expected a descriptive shape-mismatch abort, got %v", err)
	}
}
