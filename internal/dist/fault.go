package dist

import (
	"fmt"
	"math"
)

// FaultPlan is a deterministic, step-indexed perturbation schedule for a
// simulated cluster: gray failures as data. Unlike the fail-stop Failure
// path (a rank dies, the cluster aborts), a fault plan degrades — ranks
// compute slower, links carry fewer bytes per second, collectives stall
// through bounded retry/backoff — and every perturbation is charged to the
// simulated clock, never to the arithmetic. Losses, gradients and traffic
// statistics are bit-identical to an unperturbed run; only time moves.
//
// Entries are active while From ≤ step ≤ To, where the step index is
// whatever the driving loop last passed to Worker.BeginStep (0 for code
// that never calls it). An empty plan — or one whose windows never overlap
// the steps actually run — is bitwise identical to no plan at all: clocks,
// losses and statistics match a bare cluster to the last bit, which is the
// invariant the zero-perturbation identity tests pin.
//
// Plans are immutable once installed (dist.Config.Faults); all activation
// lookups are pure functions of (plan, step, rank), so runs are
// reproducible regardless of goroutine scheduling.
type FaultPlan struct {
	// Seed records the chaos seed the plan was generated from (zero for
	// hand-written plans). It is provenance, not behaviour: the schedule
	// below is the behaviour.
	Seed uint64
	// Ranks are per-rank compute slowdowns.
	Ranks []RankFault
	// Links are per-rank link degradations.
	Links []LinkFault
	// Collectives are transient collective stalls with retry/backoff.
	Collectives []CollectiveFault
}

// RankFault slows one rank's compute: every Worker.Compute/ChargeGEMM
// second costs Factor seconds while the window is active. Factor < 1 is
// rejected by Check — a gray failure never speeds a node up.
type RankFault struct {
	Rank     int
	From, To int
	// Factor multiplies the rank's compute time (2 = half speed). Multiple
	// active windows on one rank compound multiplicatively.
	Factor float64
}

// LinkFault degrades every link touching one rank: collectives over groups
// containing the rank, and point-to-point sends from or to it, run their
// wire time scaled by BetaFactor with ExtraAlpha added once per operation.
// The worst active fault among an operation's member ranks governs (one
// throttled NIC paces the whole communicator).
type LinkFault struct {
	Rank     int
	From, To int
	// BetaFactor scales the operation's transfer time (≥ 1).
	BetaFactor float64
	// ExtraAlpha is added once per operation, in seconds — degraded-link
	// latency (retransmits, congestion queues) independent of payload.
	ExtraAlpha float64
}

// CollectiveFault models transient collective failures on one rank:
// every collective the rank participates in during the window needs
// Retries failed attempts before succeeding, each backed off exponentially
// from Backoff seconds — a total stall of Backoff·(2^Retries − 1) charged
// to the operation's completion time. The retry budget is bounded by
// construction: the operation always completes, it just completes late.
type CollectiveFault struct {
	Rank     int
	From, To int
	Retries  int
	Backoff  float64
}

// Forever is an open-ended window end for fault entries.
const Forever = math.MaxInt32

// active reports whether a [from, to] window covers step.
func active(from, to, step int) bool { return from <= step && step <= to }

// Empty reports whether the plan perturbs nothing. dist.New treats an
// empty plan exactly like a nil one, so the perturbation code paths are
// not even entered.
func (p *FaultPlan) Empty() bool {
	return p == nil || (len(p.Ranks) == 0 && len(p.Links) == 0 && len(p.Collectives) == 0)
}

// Check validates the plan against a world size: ranks in range, factors
// ≥ 1, retries and backoffs non-negative, windows well-formed.
func (p *FaultPlan) Check(world int) error {
	if p == nil {
		return nil
	}
	rank := func(kind string, r, from, to int) error {
		if r < 0 || r >= world {
			return fmt.Errorf("dist: %s fault rank %d outside world of %d", kind, r, world)
		}
		if to < from {
			return fmt.Errorf("dist: %s fault window [%d, %d] ends before it starts", kind, from, to)
		}
		return nil
	}
	for _, f := range p.Ranks {
		if err := rank("compute", f.Rank, f.From, f.To); err != nil {
			return err
		}
		if f.Factor < 1 || math.IsNaN(f.Factor) || math.IsInf(f.Factor, 0) {
			return fmt.Errorf("dist: compute fault factor %g on rank %d (must be ≥ 1 and finite)", f.Factor, f.Rank)
		}
	}
	for _, f := range p.Links {
		if err := rank("link", f.Rank, f.From, f.To); err != nil {
			return err
		}
		if f.BetaFactor < 1 || f.ExtraAlpha < 0 {
			return fmt.Errorf("dist: link fault on rank %d needs BetaFactor ≥ 1 and ExtraAlpha ≥ 0, got %g/%g",
				f.Rank, f.BetaFactor, f.ExtraAlpha)
		}
	}
	for _, f := range p.Collectives {
		if err := rank("collective", f.Rank, f.From, f.To); err != nil {
			return err
		}
		if f.Retries < 0 || f.Backoff < 0 {
			return fmt.Errorf("dist: collective fault on rank %d needs Retries ≥ 0 and Backoff ≥ 0, got %d/%g",
				f.Rank, f.Retries, f.Backoff)
		}
	}
	return nil
}

// computeFactor returns the compute-time multiplier for a rank at a step:
// the product of every active window's factor, 1 when none apply.
func (p *FaultPlan) computeFactor(rank, step int) float64 {
	out := 1.0
	for _, f := range p.Ranks {
		if f.Rank == rank && active(f.From, f.To, step) {
			out *= f.Factor
		}
	}
	return out
}

// linkPerturbPair returns the wire-time multiplier and extra latency for a
// point-to-point transfer between two ranks at a step — the worse of the
// two endpoints' active link faults.
func (p *FaultPlan) linkPerturbPair(a, b, step int) (betaFactor, extraAlpha float64) {
	betaFactor = 1
	for _, f := range p.Links {
		if (f.Rank == a || f.Rank == b) && active(f.From, f.To, step) {
			if f.BetaFactor > betaFactor {
				betaFactor = f.BetaFactor
			}
			if f.ExtraAlpha > extraAlpha {
				extraAlpha = f.ExtraAlpha
			}
		}
	}
	return betaFactor, extraAlpha
}

// linkPerturb returns the wire-time multiplier and extra latency for a
// collective over the given member ranks at a step: the worst active link
// fault among the members governs the whole operation, exactly as one
// throttled NIC paces a real ring or tree.
func (p *FaultPlan) linkPerturb(ranks []int, step int) (betaFactor, extraAlpha float64) {
	betaFactor = 1
	for _, f := range p.Links {
		if !active(f.From, f.To, step) {
			continue
		}
		for _, r := range ranks {
			if f.Rank == r {
				if f.BetaFactor > betaFactor {
					betaFactor = f.BetaFactor
				}
				if f.ExtraAlpha > extraAlpha {
					extraAlpha = f.ExtraAlpha
				}
				break
			}
		}
	}
	return betaFactor, extraAlpha
}

// collectiveDelay returns the retry/backoff stall for a collective over the
// given member ranks at a step: the largest active stall among the members
// (retries on different ranks overlap; the slowest retrier gates the
// round). A fault with Retries attempts at base Backoff stalls
// Backoff·(2^Retries − 1) seconds — the sum of the exponential backoff
// series, bounded because Retries is a constant of the plan.
func (p *FaultPlan) collectiveDelay(ranks []int, step int) float64 {
	var out float64
	for _, f := range p.Collectives {
		if !active(f.From, f.To, step) || f.Retries == 0 {
			continue
		}
		for _, r := range ranks {
			if f.Rank == r {
				d := f.Backoff * (math.Exp2(float64(f.Retries)) - 1)
				if d > out {
					out = d
				}
				break
			}
		}
	}
	return out
}

// Remap rebuilds the plan for a shrunken cluster: survivors lists the old
// ranks that live on, in the order they become the new ranks 0..n−1.
// Entries targeting excluded ranks are dropped; the rest follow their rank
// to its new id. The elastic re-layout path uses this to keep a chaos
// schedule coherent across a proactive re-shard that demoted the straggler.
func (p *FaultPlan) Remap(survivors []int) *FaultPlan {
	if p == nil {
		return nil
	}
	newRank := make(map[int]int, len(survivors))
	for i, r := range survivors {
		newRank[r] = i
	}
	out := &FaultPlan{Seed: p.Seed}
	for _, f := range p.Ranks {
		if nr, ok := newRank[f.Rank]; ok {
			f.Rank = nr
			out.Ranks = append(out.Ranks, f)
		}
	}
	for _, f := range p.Links {
		if nr, ok := newRank[f.Rank]; ok {
			f.Rank = nr
			out.Links = append(out.Links, f)
		}
	}
	for _, f := range p.Collectives {
		if nr, ok := newRank[f.Rank]; ok {
			f.Rank = nr
			out.Collectives = append(out.Collectives, f)
		}
	}
	return out
}

// chaosRNG is a splitmix64 generator: tiny, seedable, and stable across
// platforms, so a chaos seed names one exact fault schedule forever.
type chaosRNG struct{ state uint64 }

func (r *chaosRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *chaosRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// NewChaosPlan synthesises a seeded random fault plan for a world of the
// given size over a run of totalSteps: one compute straggler (factor 2, 4
// or 8) striking after a clean lead-in, plus — with probability ½ each — a
// degraded link and a transient collective stall on independently chosen
// ranks. The same (seed, world, totalSteps) triple always yields the same
// plan; different seeds explore different schedules. This is the generator
// behind `vit-train -chaos -chaos-seed N`.
func NewChaosPlan(seed uint64, world, totalSteps int) *FaultPlan {
	if world < 1 || totalSteps < 1 {
		panic(fmt.Sprintf("dist: chaos plan needs a positive world (%d) and steps (%d)", world, totalSteps))
	}
	rng := &chaosRNG{state: seed}
	p := &FaultPlan{Seed: seed}
	factors := [...]float64{2, 4, 8}
	// The straggler arrives after at least a quarter of the run (the
	// detector needs a healthy baseline window) and stays until the end —
	// gray failures rarely fix themselves.
	from := totalSteps/4 + rng.intn(totalSteps/4+1)
	p.Ranks = append(p.Ranks, RankFault{
		Rank:   rng.intn(world),
		From:   from,
		To:     Forever,
		Factor: factors[rng.intn(len(factors))],
	})
	if rng.next()%2 == 0 {
		p.Links = append(p.Links, LinkFault{
			Rank:       rng.intn(world),
			From:       from + rng.intn(totalSteps/4+1),
			To:         Forever,
			BetaFactor: 2 + float64(rng.intn(3)),
			ExtraAlpha: 1e-6 * float64(1+rng.intn(4)),
		})
	}
	if rng.next()%2 == 0 {
		stall := from + rng.intn(totalSteps/2+1)
		p.Collectives = append(p.Collectives, CollectiveFault{
			Rank:    rng.intn(world),
			From:    stall,
			To:      stall + rng.intn(4),
			Retries: 1 + rng.intn(3),
			Backoff: 1e-5,
		})
	}
	return p
}
