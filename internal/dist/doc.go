// Package dist is the simulated multi-GPU cluster every algorithm in this
// repository runs on: a goroutine-per-rank runtime, MPI-style communicator
// groups with the collectives the paper's schedules need, and an analytic
// α–β cost model that turns each operation into simulated seconds — so a
// 64-GPU Table 1 row executes in milliseconds of wall time while reporting
// the communication cost of the real schedule.
//
// # Runtime
//
// dist.New(dist.Config{WorldSize: n}) builds a Cluster of n Workers; Run
// executes one function per rank, each on its own goroutine, and returns
// once every rank finishes. A worker that returns an error or panics aborts
// the whole cluster: peers blocked inside collectives unwind immediately
// and Run reports an error naming the failed rank. An aborted cluster stays
// aborted (further Runs fail fast); a fresh cluster is the documented
// recovery. Clocks and traffic statistics persist across Runs so a harness
// can build a model in one phase and time the next (ResetClocks starts a
// new timing window).
//
// # Groups and collectives
//
// Workers build communicators with w.Cluster().Group(ranks...); the rank
// list is the group's canonical order (AllGather returns blocks in exactly
// this order, Index maps a cluster rank to its slot). Groups are cached per
// rank list, so the q² processors of a mesh row share one object and its
// channel plumbing.
//
// Collectives move pointers, not bytes: a Broadcast hands the root's matrix
// to every member zero-copy (results are read-only by convention), an
// AllGather shares each contributor's block in place. Reduce and AllReduce
// sum in the fixed association of a binomial tree over the group's virtual
// positions — deterministic regardless of scheduling, which keeps the d
// depth replicas of a Tesseract parameter bit-identical. AllReduce hands
// every member its own freshly-owned copy of the sum (callers may mutate
// the result — the data-parallel gradient average does).
//
// Hot paths that would immediately copy or discard those snapshots use the
// destination-passing variants instead: BroadcastInto copies the root's
// payload into every member's own buffer while the operation is in flight
// (no snapshot clone, and the root may mutate its payload the moment the
// call returns), ReduceInto accumulates the tree-associated sum straight
// into the root's accumulator, AllReduceInto lands each member's copy in a
// caller-supplied destination that may alias its input — an in-place
// all-reduce — and AllGatherInto packs every member's block into each
// member's own concatenated destination (vertically or horizontally,
// chosen by the destination's shape). All are bit-identical to their
// cloning counterparts and charge the same simulated time; their contract
// that every cross-member read completes before any member returns is what
// lets SUMMA reuse its receive panels and partial buffers across
// iterations (see tensor.Workspace for the ownership rules). Each Worker
// carries a tensor.Workspace (Worker.Workspace) so those buffers are pooled
// per rank without locking.
//
// # Nonblocking collectives
//
// IBroadcastInto, IReduceInto and IAllReduceInto issue the same operations
// without blocking and return a Handle; the caller computes, then calls
// Wait. Three rules make the asynchrony safe and deterministic:
//
//   - Ordering. A worker's operations on one group — blocking calls and
//     nonblocking issues alike — pair up with its peers' strictly in
//     per-worker issue order. All members must therefore issue the same
//     sequence of collectives on a group, exactly as with the blocking
//     API; the runtime panics on kind/root mismatches. Several operations
//     of one group may be in flight at once (the double-buffered SUMMA
//     keeps two), and operations on different groups interleave freely.
//
//   - Buffer ownership. Every matrix lent to an in-flight collective
//     (payload and destination) is borrowed from issue until Wait returns:
//     it must not be read, written or recycled in between. The workspace
//     enforces the recycling half — Put of a borrowed buffer and
//     ReleaseAll with any outstanding borrow panic, so a handle that
//     crosses a step boundary is caught, not silently corrupted.
//
//   - Completion. The operation's data movement happens while the handle
//     is in flight, performed by whichever member arrives last; results
//     are a pure function of the inputs (sums in virtual-tree order), so
//     they are bit-identical to the blocking forms no matter which member
//     finishes or when Wait is called. Wait must be called exactly once —
//     a second Wait panics.
//
// Simulated time models the overlap: a nonblocking operation's comm time
// runs concurrently with the issuing worker's compute, so Wait advances the
// clock to max(compute, comm) instead of their sum. Operations on one group
// serialise behind each other (each communicator is one pipeline channel
// over its links); Cluster.Overlap reports how much comm time the workers
// hid behind compute, and CostModel.PipelinedSummaTime/HiddenFraction give
// the matching analytic estimates.
//
// Every collective completes at a rendezvous where the finishing member
// computes the outcome once — results, max(clock) + simulated op time, and
// the statistics record. Rounds and their wake-up channels are recycled per
// group, and handles are plain values, so a steady-state collective —
// blocking or nonblocking — allocates nothing. Because the simulated cost
// depends only on shapes and group topology — never on data or goroutine
// scheduling — phantom-mode runs charge exactly the clock of the real
// execution, and repeated runs are deterministic.
//
// # Cost model
//
// CostModel is an α–β machine model: FLOPS (per-GPU dense throughput),
// Alpha (per-message latency), and separate per-byte costs for intra-node
// (NVLink-class) and inter-node (InfiniBand-class) links. A group is priced
// by the slowest link it spans: Config.GPUsPerNode (default 4) maps ranks
// to nodes, so a Tesseract mesh row (consecutive ranks, one node) is an
// order of magnitude cheaper than a column or depth fibre (node-strided).
// MeluxinaModel is the preset for the paper's testbed. The per-op charges:
//
//	broadcast/reduce  ⌈log₂ n⌉ · (α + Bβ)      binomial tree
//	allreduce         2(n−1) · (α + (B/n)β)    bandwidth-optimal ring
//	allgather         (n−1) · (α + Bβ)         ring, B = per-member block
//	barrier           ⌈log₂ n⌉ · α
//	send/recv         α + Bβ                    sender pays; receiver joins
//
// Message statistics use the finer-grained pairwise convention documented
// in internal/tables: broadcast/reduce over n ranks count n−1 block
// transfers, an all-reduce 2(n−1), an all-gather n(n−1), a send 1.
//
// # Phantom mode
//
// Collectives propagate shape-only (phantom) matrices without touching
// data: the tree still runs, the clocks still advance, the statistics still
// count — which is exactly what lets internal/tables regenerate the paper's
// tables at hidden sizes no laptop could materialise.
package dist
