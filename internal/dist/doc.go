// Package dist is the simulated multi-GPU cluster every algorithm in this
// repository runs on: a goroutine-per-rank runtime, MPI-style communicator
// groups with the collectives the paper's schedules need, and an analytic
// α–β cost model that turns each operation into simulated seconds — so a
// 64-GPU Table 1 row executes in milliseconds of wall time while reporting
// the communication cost of the real schedule. The full design discussion
// lives in docs/architecture.md; this comment is the contract summary.
//
// # Runtime
//
// dist.New(dist.Config{WorldSize: n}) builds a Cluster of n Workers; Run
// executes one function per rank, each on its own goroutine. A worker that
// errors or panics aborts the whole cluster (peers unwind, Run names the
// rank; a fresh cluster is the recovery). Clocks and traffic statistics
// persist across Runs; ResetClocks opens a new timing window.
//
// # Groups and collectives
//
// Workers build communicators with w.Cluster().Group(ranks...); the rank
// list is the group's canonical order, and groups are cached per list.
// Collectives move pointers, not bytes; reductions sum in the fixed
// association of a binomial tree over the group's virtual positions, so
// results are deterministic and replicas stay bit-identical. Every
// operation is a rendezvous round: members file arrivals without blocking
// and the last arriver computes the whole outcome once. The
// destination-passing variants (BroadcastInto, ReduceInto, AllReduceInto,
// AllGatherInto) land results in caller-supplied buffers with the contract
// that every cross-member read completes before any member returns — which
// is what lets SUMMA reuse its panels (see tensor.Workspace for ownership
// rules). Steady-state collectives allocate nothing.
//
// # Nonblocking collectives
//
// IBroadcastInto, IReduceInto and IAllReduceInto issue without blocking
// and return a Handle: issue, compute, Wait (exactly once). Operations on
// one group pair up in per-worker issue order (mismatches panic), buffers
// lent to an in-flight operation are borrowed until Wait (the workspace
// panics on Put or ReleaseAll while a borrow is outstanding), and results
// are bit-identical to the blocking forms. Simulated time models the
// overlap: Wait advances the clock to max(compute, comm) instead of their
// sum, with each group serialising its own operations like one pipeline
// channel. Cluster.Overlap reports the comm time hidden behind compute;
// CostModel.PipelinedSummaTime and HiddenFraction are the analytic
// counterparts.
//
// # Cost model and phantom mode
//
// CostModel is an α–β machine model (FLOPS, per-message Alpha, separate
// per-byte Betas for intra- and inter-node links); a group is priced by
// the slowest link it spans, with Config.GPUsPerNode mapping ranks to
// nodes. MeluxinaModel is the paper's testbed preset. The per-op charges
// (binomial-tree broadcast/reduce, ring all-reduce/all-gather) are tabled
// in docs/architecture.md, and the exported pricing helpers
// (BroadcastSeconds, AllReduceSeconds, …) expose exactly the formulas the
// runtime charges, which is what the auto-parallelism planner
// (internal/plan) builds its predictions from. Costs depend only on shapes
// and topology — never on data or scheduling — so phantom (shape-only)
// runs advance exactly the clocks of the real execution.
package dist
