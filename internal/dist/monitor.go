package dist

import (
	"fmt"
	"sort"
)

// MonitorConfig tunes the gray-failure telemetry and detector.
type MonitorConfig struct {
	// Window is the per-rank ring capacity in steps. Zero means 8.
	Window int
	// K is the straggler threshold: a rank is flagged on a step when its
	// busy time exceeds K × the cross-rank median busy time. Zero means 2.
	K float64
	// W is how many consecutive recent steps must flag a rank before
	// Suspects reports it — the hysteresis that keeps one noisy step from
	// triggering a re-layout. Zero means 3.
	W int
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Window == 0 {
		c.Window = 8
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.W == 0 {
		c.W = 3
	}
	if c.Window < 1 || c.W < 1 || c.W > c.Window || c.K <= 1 {
		panic(fmt.Sprintf("dist: monitor config needs Window ≥ W ≥ 1 and K > 1, got Window=%d W=%d K=%g",
			c.Window, c.W, c.K))
	}
	return c
}

// StepSample is one rank's wall-clock record for one training step. Total
// is end-to-end simulated seconds; Busy is the part the rank spent on its
// own work (compute plus issued sends). Total − Busy is wait: time parked
// on collectives and inbound messages. On a synchronized cluster every
// rank's Total converges to the slowest member's pace, so Busy — not Total
// — is the signal that identifies a straggler.
type StepSample struct {
	Step        int
	Total, Busy float64
}

// Monitor collects per-rank per-step telemetry and runs the median-based
// straggler detector over it. Writes are sharded per rank (each worker
// goroutine records only its own shard, lock-free); every read-side method
// — Suspects, MarkBaseline, EffectiveCost and friends — must be called
// between cluster Runs, exactly like Cluster.Stats and MaxClock.
//
// Recording never touches simulated clocks, so an attached monitor changes
// no run's timing or arithmetic.
type Monitor struct {
	cfg    MonitorConfig
	shards []monitorShard

	// Baseline captured by MarkBaseline during known-healthy steps: the
	// yardstick EffectiveCost and Slowdown measure degradation against.
	baseBusy []float64 // per-rank mean busy seconds per step
	baseWait float64   // mean over steps of min-across-ranks wait
	baseStep float64   // mean over steps of max-across-ranks total
	based    bool
}

// monitorShard is one rank's ring buffer. The trailing pad keeps
// neighbouring shards off one cache line, as in statsBook.
type monitorShard struct {
	ring []StepSample
	n    int // samples ever recorded; ring index is n mod len(ring)
	_    [64]byte
}

func newMonitor(cfg MonitorConfig, world int) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{cfg: cfg, shards: make([]monitorShard, world)}
	for i := range m.shards {
		m.shards[i].ring = make([]StepSample, cfg.Window)
	}
	return m
}

// Config returns the resolved (defaulted) configuration.
func (m *Monitor) Config() MonitorConfig { return m.cfg }

// record files one step sample for a rank. Called by Worker.EndStep on the
// rank's own goroutine; single-writer per shard.
func (m *Monitor) record(rank, step int, total, busy float64) {
	sh := &m.shards[rank]
	sh.ring[sh.n%len(sh.ring)] = StepSample{Step: step, Total: total, Busy: busy}
	sh.n++
}

// count returns how many samples the shard currently holds.
func (sh *monitorShard) count() int {
	if sh.n < len(sh.ring) {
		return sh.n
	}
	return len(sh.ring)
}

// last returns the j-th most recent sample (j = 0 is the newest).
func (sh *monitorShard) last(j int) StepSample {
	return sh.ring[(sh.n-1-j)%len(sh.ring)]
}

// depth returns how many aligned recent steps are available: the smallest
// shard fill, shrunk further if the ranks' step indices disagree at some
// lag (ranks running different loops are not comparable).
func (m *Monitor) depth() int {
	d := m.shards[0].count()
	for i := range m.shards {
		if c := m.shards[i].count(); c < d {
			d = c
		}
	}
	for j := 0; j < d; j++ {
		step := m.shards[0].last(j).Step
		for i := range m.shards {
			if m.shards[i].last(j).Step != step {
				return j
			}
		}
	}
	return d
}

// Samples returns a rank's recorded window in chronological order.
func (m *Monitor) Samples(rank int) []StepSample {
	sh := &m.shards[rank]
	c := sh.count()
	out := make([]StepSample, c)
	for j := 0; j < c; j++ {
		out[c-1-j] = sh.last(j)
	}
	return out
}

// median returns the median of xs, destroying their order. Zero for empty.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	h := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[h]
	}
	return (xs[h-1] + xs[h]) / 2
}

// Suspects returns the ranks whose busy time exceeded K × the cross-rank
// median busy time on each of the W most recent aligned steps, in ascending
// rank order. Nil until every rank has W aligned samples — the detector
// never fires on a cold window. Call between Runs only.
func (m *Monitor) Suspects() []int {
	w := m.cfg.W
	if m.depth() < w {
		return nil
	}
	meds := make([]float64, w)
	scratch := make([]float64, len(m.shards))
	for j := 0; j < w; j++ {
		for i := range m.shards {
			scratch[i] = m.shards[i].last(j).Busy
		}
		meds[j] = median(scratch)
	}
	var out []int
	for i := range m.shards {
		flagged := true
		for j := 0; j < w; j++ {
			if meds[j] <= 0 || m.shards[i].last(j).Busy <= m.cfg.K*meds[j] {
				flagged = false
				break
			}
		}
		if flagged {
			out = append(out, i)
		}
	}
	return out
}

// window walks the aligned recent steps, handing fn the lag j.
func (m *Monitor) window(fn func(j int)) int {
	d := m.depth()
	for j := 0; j < d; j++ {
		fn(j)
	}
	return d
}

// meanBusy returns a rank's mean busy seconds over the aligned window.
func (m *Monitor) meanBusy(rank, depth int) float64 {
	if depth == 0 {
		return 0
	}
	var sum float64
	for j := 0; j < depth; j++ {
		sum += m.shards[rank].last(j).Busy
	}
	return sum / float64(depth)
}

// minWaitMean returns the mean over aligned steps of the minimum wait
// (total − busy) across ranks. The minimum matters: healthy ranks' wait is
// dominated by skew (idling for the straggler), but every rank — including
// the straggler itself — pays at least the wire time of each collective, so
// the cross-rank minimum isolates link health from compute skew.
func (m *Monitor) minWaitMean() float64 {
	var sum float64
	d := m.window(func(j int) {
		min := -1.0
		for i := range m.shards {
			s := m.shards[i].last(j)
			w := s.Total - s.Busy
			if min < 0 || w < min {
				min = w
			}
		}
		if min > 0 {
			sum += min
		}
	})
	if d == 0 {
		return 0
	}
	return sum / float64(d)
}

// stepSecondsMean returns the mean over aligned steps of the slowest rank's
// total — the cluster's effective per-step cost, since synchronized
// training advances at the slowest member's pace.
func (m *Monitor) stepSecondsMean() float64 {
	var sum float64
	d := m.window(func(j int) {
		var max float64
		for i := range m.shards {
			if t := m.shards[i].last(j).Total; t > max {
				max = t
			}
		}
		sum += max
	})
	if d == 0 {
		return 0
	}
	return sum / float64(d)
}

// ClusterStepSeconds returns the current mean per-step seconds at the
// slowest rank's pace over the aligned window. Call between Runs only.
func (m *Monitor) ClusterStepSeconds() float64 { return m.stepSecondsMean() }

// MarkBaseline snapshots the current window as the known-healthy yardstick:
// per-rank mean busy time, the link-health wait floor, and the cluster step
// seconds. Call it between Runs after a window the driver believes is
// clean (typically the first probe window); Slowdown and EffectiveCost
// measure against it.
func (m *Monitor) MarkBaseline() {
	d := m.depth()
	if d == 0 {
		return
	}
	m.baseBusy = make([]float64, len(m.shards))
	for i := range m.shards {
		m.baseBusy[i] = m.meanBusy(i, d)
	}
	m.baseWait = m.minWaitMean()
	m.baseStep = m.stepSecondsMean()
	m.based = true
}

// Baselined reports whether MarkBaseline has captured a yardstick.
func (m *Monitor) Baselined() bool { return m.based }

// BaselineStepSeconds returns the cluster step seconds at MarkBaseline
// (zero before any baseline).
func (m *Monitor) BaselineStepSeconds() float64 { return m.baseStep }

// Slowdown returns a rank's measured busy-time inflation versus the
// baseline (1 = healthy pace, 4 = running at quarter speed). Returns 1
// until a baseline exists. Call between Runs only.
func (m *Monitor) Slowdown(rank int) float64 {
	if !m.based || m.baseBusy[rank] <= 0 {
		return 1
	}
	s := m.meanBusy(rank, m.depth()) / m.baseBusy[rank]
	if s < 1 {
		return 1
	}
	return s
}

// EffectiveCost reprices a cost model as the cluster actually performs,
// from telemetry alone — no access to the fault plan:
//
//   - Compute: the median busy-time inflation of the healthy ranks versus
//     the baseline divides FLOPS. Excluded suspects do not drag the
//     estimate down, so a replan over the healthy subset prices those
//     ranks at their real (usually full) speed.
//   - Links: the inflation of the cross-rank minimum wait — the wire-time
//     floor every rank pays regardless of skew — multiplies Alpha and both
//     betas, lumping bandwidth loss and added latency into one factor.
//
// Inflations below 1 are clamped to 1 (a recovering cluster is priced as
// healthy, never as better-than-spec). Without a baseline the model is
// returned unchanged apart from defaulting. Call between Runs only.
func (m *Monitor) EffectiveCost(base CostModel, healthy []int) CostModel {
	out := base.WithDefaults()
	if !m.based {
		return out
	}
	d := m.depth()
	var infl []float64
	for _, r := range healthy {
		if m.baseBusy[r] > 0 {
			infl = append(infl, m.meanBusy(r, d)/m.baseBusy[r])
		}
	}
	if cf := median(infl); cf > 1 {
		out.FLOPS /= cf
	}
	if m.baseWait > 0 {
		if lf := m.minWaitMean() / m.baseWait; lf > 1 {
			out.Alpha *= lf
			out.BetaIntra *= lf
			out.BetaInter *= lf
		}
	}
	return out
}
