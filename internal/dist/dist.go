package dist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Config describes a simulated cluster.
type Config struct {
	// WorldSize is the number of ranks (required, ≥ 1).
	WorldSize int
	// GPUsPerNode maps ranks to nodes for link pricing: ranks r with equal
	// r/GPUsPerNode share a node. Zero means 4, as on Meluxina.
	GPUsPerNode int
	// Cost is the machine model; the zero value means MeluxinaModel().
	Cost CostModel
	// Faults is an optional gray-failure schedule charged to the simulated
	// clock (see FaultPlan). Nil or empty means a pristine cluster; an empty
	// plan is treated exactly like nil, so unperturbed runs stay bitwise
	// identical. New panics on an invalid plan.
	Faults *FaultPlan
}

// abortSignal is the panic value collectives raise to unwind a worker whose
// cluster has aborted; Run's wrapper swallows it.
type abortSignal struct{}

// Failure is the structured abort cause: which rank failed, at what
// simulated clock, and why. It is the error Run returns when a worker fails
// (errors.As recovers it through any wrapping), the error a poisoned
// cluster keeps reporting, and the starting point for elastic recovery —
// Survivors and Recover are derived from the recorded failures.
type Failure struct {
	// Rank is the cluster rank whose function failed or panicked.
	Rank int
	// Clock is the rank's simulated time at the failure, in seconds.
	Clock float64
	// Panicked distinguishes a panic from a returned error.
	Panicked bool
	// Err is the underlying cause.
	Err error
}

// Error names the worker, the failure clock and the cause.
func (f *Failure) Error() string {
	verb := "failed"
	if f.Panicked {
		verb = "panicked"
	}
	return fmt.Sprintf("dist: worker %d %s at t=%.6gs: %v", f.Rank, verb, f.Clock, f.Err)
}

// Unwrap exposes the cause to errors.Is/errors.As.
func (f *Failure) Unwrap() error { return f.Err }

// Cluster is a set of simulated workers plus their shared plumbing: group
// cache, point-to-point mailboxes, clocks, statistics and abort state.
type Cluster struct {
	cfg     Config
	cost    CostModel
	gpn     int
	workers []*Worker

	groupMu sync.Mutex
	groups  map[string]*Group

	mail  *mailboxSet
	stats *statsBook

	// fault is the installed gray-failure schedule (nil when Config.Faults
	// was nil or empty — the perturbation branches are then never taken).
	// monitor is the optional telemetry sink workers report step samples to;
	// both are set before any Run and immutable afterwards.
	fault   *FaultPlan
	monitor *Monitor

	abort     chan struct{}
	abortOnce sync.Once
	abortErr  error

	failMu   sync.Mutex
	failures []*Failure
}

// New builds a cluster with WorldSize workers. It panics on a non-positive
// world size; a zero cost model defaults to MeluxinaModel.
func New(cfg Config) *Cluster {
	if cfg.WorldSize < 1 {
		panic(fmt.Sprintf("dist: world size %d", cfg.WorldSize))
	}
	gpn := cfg.GPUsPerNode
	if gpn <= 0 {
		gpn = 4
	}
	c := &Cluster{
		cfg:    cfg,
		cost:   cfg.Cost.withDefaults(),
		gpn:    gpn,
		groups: make(map[string]*Group),
		mail:   newMailboxSet(),
		stats:  newStatsBook(cfg.WorldSize),
		abort:  make(chan struct{}),
	}
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Check(cfg.WorldSize); err != nil {
			panic(err.Error())
		}
		c.fault = cfg.Faults
	}
	c.workers = make([]*Worker, cfg.WorldSize)
	for r := range c.workers {
		c.workers[r] = &Worker{c: c, rank: r, slow: 1}
	}
	return c
}

// Faults returns the installed gray-failure schedule, or nil for a pristine
// cluster (including one configured with an empty plan).
func (c *Cluster) Faults() *FaultPlan { return c.fault }

// AttachMonitor wires a telemetry sink sized for this cluster: every
// Worker.EndStep reports its (total, busy) split to it. Call it before the
// first Run; it panics on a second attach or a world-size mismatch. Returns
// the monitor for convenience.
func (c *Cluster) AttachMonitor(cfg MonitorConfig) *Monitor {
	if c.monitor != nil {
		panic("dist: cluster already has a monitor attached")
	}
	c.monitor = newMonitor(cfg, c.cfg.WorldSize)
	return c.monitor
}

// Monitor returns the attached telemetry sink, or nil.
func (c *Cluster) Monitor() *Monitor { return c.monitor }

// WorldSize returns the number of ranks.
func (c *Cluster) WorldSize() int { return c.cfg.WorldSize }

// node returns the node index of a rank.
func (c *Cluster) node(rank int) int { return rank / c.gpn }

// Run executes fn once per rank, each invocation on its own goroutine, and
// waits for all of them. The first worker error or panic (by rank order)
// becomes Run's error, wrapped so errors.Is sees the cause and the message
// names the worker; every other worker is unblocked and unwound. After such
// an abort the cluster is permanently poisoned: subsequent Runs fail fast.
func (c *Cluster) Run(fn func(w *Worker) error) error {
	if err := c.abortedErr(); err != nil {
		return fmt.Errorf("dist: cluster aborted by earlier run: %w", err)
	}
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, quiet := r.(abortSignal); quiet {
						return
					}
					f := &Failure{Rank: w.rank, Clock: w.clock, Panicked: true, Err: fmt.Errorf("%v", r)}
					errs[w.rank] = f
					c.recordFailure(f)
				}
			}()
			if err := fn(w); err != nil {
				f := &Failure{Rank: w.rank, Clock: w.clock, Err: err}
				errs[w.rank] = f
				c.recordFailure(f)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Every worker unwound quietly but the cluster aborted anyway (a
	// failure surfaced outside any worker's own frame): report the poison.
	if err := c.abortedErr(); err != nil {
		return err
	}
	return nil
}

// abortWith poisons the cluster with the first failure and releases every
// blocked worker.
func (c *Cluster) abortWith(err error) {
	c.abortOnce.Do(func() {
		c.abortErr = err
		close(c.abort)
	})
}

// recordFailure registers a worker failure and poisons the cluster with the
// first one.
func (c *Cluster) recordFailure(f *Failure) {
	c.failMu.Lock()
	c.failures = append(c.failures, f)
	c.failMu.Unlock()
	c.abortWith(f)
}

// Failure returns the abort cause — the lowest-rank recorded failure, for
// determinism when several ranks fail in one run — or nil if the cluster
// has not aborted (or aborted without a worker failure on record).
func (c *Cluster) Failure() *Failure {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	var first *Failure
	for _, f := range c.failures {
		if first == nil || f.Rank < first.Rank {
			first = f
		}
	}
	return first
}

// Failures returns every recorded worker failure, sorted by rank.
func (c *Cluster) Failures() []*Failure {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	out := append([]*Failure(nil), c.failures...)
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// Survivors returns the ranks that never failed, in ascending order. On a
// healthy cluster that is every rank.
func (c *Cluster) Survivors() []int {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	dead := make(map[int]bool, len(c.failures))
	for _, f := range c.failures {
		dead[f.Rank] = true
	}
	out := make([]int, 0, len(c.workers)-len(dead))
	for r := range c.workers {
		if !dead[r] {
			out = append(out, r)
		}
	}
	return out
}

// Recover constructs a fresh cluster over the surviving rank budget — same
// cost model and node mapping, world size shrunk to the survivor count —
// so a driver that caught an abort can replan and resume instead of staying
// permanently poisoned. The poisoned cluster itself is left untouched (its
// Failure record keeps reporting the original cause); simulated clocks and
// statistics start from zero on the new cluster.
func (c *Cluster) Recover() (*Cluster, error) {
	if c.abortedErr() == nil {
		return nil, fmt.Errorf("dist: Recover on a healthy cluster")
	}
	n := len(c.Survivors())
	if n == 0 {
		return nil, fmt.Errorf("dist: no surviving ranks to recover onto")
	}
	return New(Config{WorldSize: n, GPUsPerNode: c.cfg.GPUsPerNode, Cost: c.cfg.Cost}), nil
}

// abortedErr returns the poisoning error, if any.
func (c *Cluster) abortedErr() error {
	select {
	case <-c.abort:
		return c.abortErr
	default:
		return nil
	}
}

// checkAbort panics with abortSignal if the cluster has aborted — the
// unwind path for workers parked inside collectives.
func (c *Cluster) checkAbort() {
	select {
	case <-c.abort:
		panic(abortSignal{})
	default:
	}
}

// Group returns the communicator over the given cluster ranks, in exactly
// the given canonical order. Groups are cached: every member calling with
// the same rank list shares one object (and its channel plumbing). It
// panics on an empty list, an out-of-range rank, or a duplicate.
func (c *Cluster) Group(ranks ...int) *Group {
	if len(ranks) == 0 {
		panic("dist: empty group")
	}
	var key strings.Builder
	for i, r := range ranks {
		if r < 0 || r >= len(c.workers) {
			panic(fmt.Sprintf("dist: group rank %d outside world of %d", r, len(c.workers)))
		}
		if i > 0 {
			key.WriteByte(',')
		}
		key.WriteString(strconv.Itoa(r))
	}
	c.groupMu.Lock()
	defer c.groupMu.Unlock()
	if g, ok := c.groups[key.String()]; ok {
		return g
	}
	g := newGroup(c, ranks)
	c.groups[key.String()] = g
	return g
}

// WorldGroup returns the group spanning every rank in order.
func (c *Cluster) WorldGroup() *Group {
	ranks := make([]int, len(c.workers))
	for i := range ranks {
		ranks[i] = i
	}
	return c.Group(ranks...)
}

// MaxClock returns the largest simulated clock across ranks, in seconds.
// Call it between Runs (it does not synchronise with running workers).
func (c *Cluster) MaxClock() float64 {
	var out float64
	for _, w := range c.workers {
		if w.clock > out {
			out = w.clock
		}
	}
	return out
}

// ResetClocks zeroes every worker clock and every group's comm-channel
// state, starting a new timing window while keeping traffic statistics.
// Call it between Runs only.
func (c *Cluster) ResetClocks() {
	for _, w := range c.workers {
		w.clock = 0
		w.commTotal = 0
		w.commHidden = 0
	}
	c.groupMu.Lock()
	for _, g := range c.groups {
		g.mu.Lock()
		g.lastFinish = 0
		g.mu.Unlock()
	}
	c.groupMu.Unlock()
}

// Overlap reports the simulated communication seconds accumulated since the
// last ResetClocks across all workers, and the portion that was hidden
// behind compute by nonblocking collectives (issue → Wait windows the
// workers spent computing). hidden/total is the overlap fraction the
// benchmarks report. Call it between Runs (it does not synchronise with
// running workers).
func (c *Cluster) Overlap() (hidden, total float64) {
	for _, w := range c.workers {
		hidden += w.commHidden
		total += w.commTotal
	}
	return hidden, total
}

// Stats returns a snapshot of the accumulated communication statistics.
// Like MaxClock, call it between Runs: the per-rank shards it sums are
// plain memory written by the worker goroutines, so a snapshot taken while
// a Run is in progress would race.
func (c *Cluster) Stats() Stats { return c.stats.snapshot() }
