package dist

import "sync"

// OpStats aggregates the traffic of one operation kind.
type OpStats struct {
	// Calls counts collective invocations (one per group call, however
	// many ranks participate) or individual sends.
	Calls int64
	// Messages counts pairwise block transfers using the convention of
	// internal/tables: broadcast/reduce over n ranks = n−1, all-reduce =
	// 2(n−1), all-gather = n(n−1), send = 1.
	Messages int64
	// Bytes is the total payload moved by those messages.
	Bytes int64
}

// Stats is a snapshot of a cluster's accumulated communication.
type Stats struct {
	// Messages and Bytes total every operation kind.
	Messages int64
	Bytes    int64
	// PerOp breaks the totals down by operation name: "broadcast",
	// "reduce", "allreduce", "allgather", "barrier", "send".
	PerOp map[string]OpStats
}

// statsBook is the mutable collector behind Cluster.Stats.
type statsBook struct {
	mu    sync.Mutex
	perOp map[string]OpStats
}

func newStatsBook() *statsBook {
	return &statsBook{perOp: make(map[string]OpStats)}
}

// record adds one operation of the named kind.
func (s *statsBook) record(op string, messages, bytes int64) {
	s.mu.Lock()
	e := s.perOp[op]
	e.Calls++
	e.Messages += messages
	e.Bytes += bytes
	s.perOp[op] = e
	s.mu.Unlock()
}

// snapshot returns an independent copy with the totals filled in.
func (s *statsBook) snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{PerOp: make(map[string]OpStats, len(s.perOp))}
	for op, e := range s.perOp {
		out.PerOp[op] = e
		out.Messages += e.Messages
		out.Bytes += e.Bytes
	}
	return out
}
