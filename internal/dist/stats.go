package dist

// OpStats aggregates the traffic of one operation kind.
type OpStats struct {
	// Calls counts collective invocations (one per group call, however
	// many ranks participate) or individual sends.
	Calls int64
	// Messages counts pairwise block transfers using the convention of
	// internal/tables: broadcast/reduce over n ranks = n−1, all-reduce =
	// 2(n−1), all-gather/reduce-scatter = n(n−1), send = 1.
	Messages int64
	// Bytes is the total payload moved by those messages.
	Bytes int64
}

// Stats is a snapshot of a cluster's accumulated communication.
type Stats struct {
	// Messages and Bytes total every operation kind.
	Messages int64
	Bytes    int64
	// PerOp breaks the totals down by operation name: "broadcast",
	// "reduce", "allreduce", "allgather", "reducescatter", "barrier",
	// "send".
	PerOp map[string]OpStats
}

// statOp indexes the fixed set of recorded operation kinds. The Into and
// nonblocking variants record under their base kind, so traffic accounting
// is independent of which API flavour moved the data.
type statOp uint8

const (
	statBroadcast statOp = iota
	statReduce
	statAllReduce
	statAllGather
	statReduceScatter
	statBarrier
	statSend
	nStatOps
)

var statNames = [nStatOps]string{"broadcast", "reduce", "allreduce", "allgather", "reducescatter", "barrier", "send"}

// statsBook is the mutable collector behind Cluster.Stats. It is sharded
// per rank: every record happens on a goroutine acting for exactly one
// worker (its own frame, or the group operation it is finishing), so each
// shard is single-writer plain memory — no locks, no atomics, no contended
// cache line on the collective hot path. snapshot sums the shards; like
// MaxClock it must only run between cluster runs.
type statsBook struct {
	shards []statShard
}

type statShard struct {
	ops [nStatOps]OpStats
	_   [64]byte // keep neighbouring shards off one cache line
}

func newStatsBook(world int) *statsBook {
	return &statsBook{shards: make([]statShard, world)}
}

// record adds one operation of the named kind to the acting worker's shard.
func (s *statsBook) record(rank int, op statOp, messages, bytes int64) {
	e := &s.shards[rank].ops[op]
	e.Calls++
	e.Messages += messages
	e.Bytes += bytes
}

// snapshot returns an independent copy with the totals filled in. Kinds
// never recorded are omitted, matching the sparse per-op map of old.
func (s *statsBook) snapshot() Stats {
	out := Stats{PerOp: make(map[string]OpStats, nStatOps)}
	for op := statOp(0); op < nStatOps; op++ {
		var e OpStats
		for i := range s.shards {
			c := &s.shards[i].ops[op]
			e.Calls += c.Calls
			e.Messages += c.Messages
			e.Bytes += c.Bytes
		}
		if e.Calls == 0 {
			continue
		}
		out.PerOp[statNames[op]] = e
		out.Messages += e.Messages
		out.Bytes += e.Bytes
	}
	return out
}
