package dist

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestAsyncCollectivesMatchBlockingBitwise drives the three nonblocking
// collectives next to their blocking twins on the same inputs and demands
// bitwise identical results — the contract that lets the SUMMA pipelines
// and the gradient sync switch freely between the two forms.
func TestAsyncCollectivesMatchBlockingBitwise(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		const root = 1
		rootIdx := root % n
		bcGot := make([]*tensor.Matrix, n)
		bcWant := make([]*tensor.Matrix, n)
		var redGot, redWant *tensor.Matrix
		arGot := make([]*tensor.Matrix, n)
		arWant := make([]*tensor.Matrix, n)
		runWorld(t, n, func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			r := w.Rank()

			// Broadcast-into.
			var payload *tensor.Matrix
			dst := tensor.New(3, 5)
			if r == rootIdx {
				payload, dst = fillRank(rootIdx, 3, 5), nil
				dst = payload
			}
			h := g.IBroadcastInto(w, rootIdx, payload, dst)
			h.Wait()
			bcGot[r] = dst.Clone()
			dst2 := tensor.New(3, 5)
			if r == rootIdx {
				g.BroadcastInto(w, rootIdx, fillRank(rootIdx, 3, 5), dst2)
			} else {
				g.BroadcastInto(w, rootIdx, nil, dst2)
			}
			bcWant[r] = dst2

			// Reduce-into.
			var rdst *tensor.Matrix
			if r == rootIdx {
				rdst = tensor.New(4, 4)
			}
			h = g.IReduceInto(w, rootIdx, fillRank(r, 4, 4), rdst)
			h.Wait()
			var rdst2 *tensor.Matrix
			if r == rootIdx {
				redGot = rdst
				rdst2 = tensor.New(4, 4)
			}
			g.ReduceInto(w, rootIdx, fillRank(r, 4, 4), rdst2)
			if r == rootIdx {
				redWant = rdst2
			}

			// All-reduce-into, in place.
			m := fillRank(r, 3, 3)
			h = g.IAllReduceInto(w, m, m)
			h.Wait()
			arGot[r] = m
			m2 := fillRank(r, 3, 3)
			g.AllReduceInto(w, m2, m2)
			arWant[r] = m2
			return nil
		})
		for r := 0; r < n; r++ {
			if !bcGot[r].Equal(bcWant[r]) {
				t.Fatalf("n=%d rank %d: IBroadcastInto differs from BroadcastInto", n, r)
			}
			if !arGot[r].Equal(arWant[r]) {
				t.Fatalf("n=%d rank %d: IAllReduceInto differs from AllReduceInto", n, r)
			}
		}
		if !redGot.Equal(redWant) {
			t.Fatalf("n=%d: IReduceInto differs bitwise from ReduceInto", n)
		}
	}
}

// TestAsyncOverlapChargesMaxNotSum pins the simulated-time semantics of the
// nonblocking path: compute performed between issue and Wait overlaps the
// collective, so the post-Wait clock is max(comm finish, compute finish)
// rather than their sum, and the hidden-comm statistics see the overlap.
func TestAsyncOverlapChargesMaxNotSum(t *testing.T) {
	const flops = 1e9
	elapsed := func(compute bool, async bool) (clock, hidden, total float64) {
		c := New(Config{WorldSize: 4})
		if err := c.Run(func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			m := tensor.New(64, 64)
			if async {
				h := g.IAllReduceInto(w, m, m)
				if compute {
					w.Compute(flops)
				}
				h.Wait()
			} else {
				if compute {
					w.Compute(flops)
				}
				g.AllReduceInto(w, m, m)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		h, tot := c.Overlap()
		return c.MaxClock(), h, tot
	}

	commOnly, _, _ := elapsed(false, false)
	compOnly := flops / MeluxinaModel().FLOPS
	serial, hidden, _ := elapsed(true, false)
	if serial <= commOnly || serial <= compOnly {
		t.Fatalf("blocking run %g should pay comm %g plus compute %g", serial, commOnly, compOnly)
	}
	if hidden != 0 {
		t.Fatalf("blocking run hid %g seconds of comm", hidden)
	}
	overlapped, hidden, total := elapsed(true, true)
	wantMax := commOnly
	if compOnly > wantMax {
		wantMax = compOnly
	}
	if relDiffF(overlapped, wantMax) > 1e-12 {
		t.Fatalf("overlapped run %g, want max(comm %g, compute %g)", overlapped, commOnly, compOnly)
	}
	if total <= 0 || hidden <= 0 {
		t.Fatalf("overlap stats hidden=%g total=%g, want both positive", hidden, total)
	}
}

func relDiffF(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d / m
}

// TestGroupChannelSerialisesOperations pins the per-group comm model: two
// back-to-back nonblocking broadcasts on one group serialise (the second
// starts only when the first finishes), while the same two operations on
// disjoint groups overlap in simulated time.
func TestGroupChannelSerialisesOperations(t *testing.T) {
	oneGroup := func() float64 {
		c := New(Config{WorldSize: 2})
		if err := c.Run(func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			m := tensor.New(64, 64)
			d1, d2 := tensor.New(64, 64), tensor.New(64, 64)
			var h1, h2 Handle
			if w.Rank() == 0 {
				h1 = g.IBroadcastInto(w, 0, m, d1)
				h2 = g.IBroadcastInto(w, 0, m.Clone(), d2)
			} else {
				h1 = g.IBroadcastInto(w, 0, nil, d1)
				h2 = g.IBroadcastInto(w, 0, nil, d2)
			}
			h1.Wait()
			h2.Wait()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}()
	single := func() float64 {
		c := New(Config{WorldSize: 2})
		if err := c.Run(func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			d := tensor.New(64, 64)
			if w.Rank() == 0 {
				g.BroadcastInto(w, 0, tensor.New(64, 64), d)
			} else {
				g.BroadcastInto(w, 0, nil, d)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}()
	if relDiffF(oneGroup, 2*single) > 1e-12 {
		t.Fatalf("two ops on one group took %g, want serialised 2×%g", oneGroup, single)
	}

	twoGroups := func() float64 {
		c := New(Config{WorldSize: 4})
		if err := c.Run(func(w *Worker) error {
			var g *Group
			if w.Rank() < 2 {
				g = w.Cluster().Group(0, 1)
			} else {
				g = w.Cluster().Group(2, 3)
			}
			root := g.Ranks()[0]
			d := tensor.New(64, 64)
			var h Handle
			if w.Rank() == root {
				h = g.IBroadcastInto(w, root, tensor.New(64, 64), d)
			} else {
				h = g.IBroadcastInto(w, root, nil, d)
			}
			h.Wait()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}()
	if relDiffF(twoGroups, single) > 1e-12 {
		t.Fatalf("disjoint groups took %g, want overlapped %g", twoGroups, single)
	}
}

// TestHandleMisusePanics covers the borrow discipline: waiting twice,
// Putting a buffer lent to an in-flight collective, and releasing a step
// boundary across an unwaited handle are all programming errors that must
// fail loudly, not corrupt a pool.
func TestHandleMisusePanics(t *testing.T) {
	expectPanic := func(name, want string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: expected panic", name)
			}
			if msg, ok := r.(string); ok && want != "" && !strings.Contains(msg, want) {
				t.Fatalf("%s: panic %q missing %q", name, msg, want)
			}
		}()
		fn()
	}

	c := New(Config{WorldSize: 1})
	if err := c.Run(func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		ws := w.Workspace()

		// Double Wait.
		m := ws.Get(2, 2)
		h := g.IAllReduceInto(w, m, m)
		h.Wait()
		expectPanic("double wait", "twice", func() { h.Wait() })

		// Put before Wait.
		h2 := g.IAllReduceInto(w, m, m)
		expectPanic("put before wait", "borrowed", func() { ws.Put(m) })

		// ReleaseAll with an in-flight handle.
		expectPanic("release all before wait", "borrowed", func() { ws.ReleaseAll() })

		h2.Wait()
		ws.Put(m) // borrow released: recycling is legal again
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestHandleCopyCannotWaitTwice closes the loophole a value-type Handle
// opens: a second Wait through a COPY of an already-waited handle must
// panic like the original would, both while the round is still live and
// after it has been recycled into a later operation.
func TestHandleCopyCannotWaitTwice(t *testing.T) {
	c := New(Config{WorldSize: 1})
	if err := c.Run(func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		m := tensor.New(2, 2)

		h := g.IAllReduceInto(w, m, m)
		cp := h
		h.Wait()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Wait through a copy (live round) should panic")
				}
			}()
			cp.Wait()
		}()

		// Recycle the round through further operations, then try the stale
		// copy again: the generation stamp must reject it.
		h2 := g.IAllReduceInto(w, m, m)
		cp2 := h2
		h2.Wait()
		for i := 0; i < 3; i++ {
			g.Barrier(w)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Wait through a stale copy (recycled round) should panic")
				}
			}()
			cp2.Wait()
		}()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
