package dist

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// Group is a communicator over a fixed, ordered set of cluster ranks. The
// rank list passed to Cluster.Group is the canonical order: AllGather
// returns blocks in it, Index maps a cluster rank to its slot. Members must
// invoke the same sequence of collectives on a group — blocking calls and
// nonblocking issues count alike, in per-member program order; the runtime
// checks that the arrivals pairing into one operation agree on the kind and
// root.
type Group struct {
	c     *Cluster
	ranks []int
	index map[int]int
	beta  float64 // per-byte cost of the slowest link the group spans

	mu    sync.Mutex
	open  []*round // incomplete operations, oldest first
	spare []*round // retired rounds, recycled to keep collectives off the allocator

	// lastFinish is the simulated time the group's previous operation
	// completed. Operations on one group serialise behind it — the group
	// models a single pipeline channel over its links — while operations
	// on different groups (a mesh row versus its columns, say) may overlap
	// freely, which is what the double-buffered SUMMA schedules exploit.
	lastFinish float64

	vdata [][]float64 // finish()-local scratch: slot data in virtual tree order
}

// opKind names the collective an arrival wants to run; arrivals pairing
// into one round must agree on it.
type opKind uint8

const (
	opBroadcast opKind = iota
	opBroadcastInto
	opReduce
	opReduceInto
	opAllReduce
	opAllReduceInto
	opAllGather
	opAllGatherInto
	opReduceScatterInto
	opBarrier
)

var opKindNames = [...]string{
	"broadcast", "broadcast-into", "reduce", "reduce-into",
	"allreduce", "allreduce-into", "allgather", "allgather-into",
	"reduce-scatter-into", "barrier",
}

func (k opKind) String() string { return opKindNames[k] }

// round is one collective operation in flight: every member contributes its
// clock and payload/destination slots, and the last member to arrive
// computes the outcome — data movement, summation, time and statistics —
// exactly once, under the group lock. Because the whole outcome is a pure
// function of the slots (sums combine in virtual binomial-tree order, never
// in arrival order), results are bit-identical across runs and identical to
// the distributed tree schedule this engine replaced.
//
// Arrivals need not block: a nonblocking issue fills its slot and returns a
// Handle, and the member collects the outcome at Wait. Rounds are recycled
// through the spare list once every member has retired.
//
// done is a buffered token channel rather than a closed one so it survives
// recycling: the finisher deposits exactly one token per member registered
// in r.parked (members that committed to blocking before completion), each
// parked member consumes exactly one, and members that observe completion
// first never touch the channel at all — so deposits always equal
// consumptions and the drained channel is ready for the next round without
// reallocation. completed is set after the deposits; parking registration
// and completion serialise under the group lock.
type round struct {
	kind    opKind
	root    int // group index of the root, -1 for rootless ops
	arrived int
	parked  int // members registered on the done channel before completion
	exited  atomic.Int32
	filled  []bool
	waited  []bool // per-member: a nonblocking handle already waited this slot
	clocks  []float64
	steps   []int // per-member step index at arrival, for fault activation
	slots   []*tensor.Matrix
	dsts    []*tensor.Matrix
	results []*tensor.Matrix // per-member owned outputs (classic all-reduce)
	done    chan struct{}

	// gen increments every time the round is recycled, so a stale Handle
	// (kept past its Wait while the round moved on) is detected instead of
	// silently corrupting a live operation.
	gen atomic.Uint32

	completed atomic.Bool

	// commBase is the time the operation actually starts (latest member
	// arrival and the group channel both ready), newClock its completion
	// time. newClock − commBase is the comm time the overlap statistics
	// attribute to the operation.
	commBase float64
	newClock float64

	result *tensor.Matrix
}

func newGroup(c *Cluster, ranks []int) *Group {
	g := &Group{
		c:     c,
		ranks: append([]int(nil), ranks...),
		index: make(map[int]int, len(ranks)),
		beta:  c.cost.BetaIntra,
	}
	for i, r := range g.ranks {
		if _, dup := g.index[r]; dup {
			panic(fmt.Sprintf("dist: duplicate rank %d in group %v", r, g.ranks))
		}
		g.index[r] = i
		if c.node(r) != c.node(g.ranks[0]) {
			g.beta = c.cost.BetaInter
		}
	}
	return g
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns the members in canonical order.
func (g *Group) Ranks() []int { return append([]int(nil), g.ranks...) }

// Index returns the slot of a cluster rank in the canonical order, or −1
// if the rank is not a member.
func (g *Group) Index(rank int) int {
	if i, ok := g.index[rank]; ok {
		return i
	}
	return -1
}

// mustIndex resolves the calling worker's slot, panicking for non-members.
func (g *Group) mustIndex(w *Worker, op opKind) int {
	idx, ok := g.index[w.rank]
	if !ok {
		panic(fmt.Sprintf("dist: rank %d is not a member of group %v (%s)", w.rank, g.ranks, op))
	}
	return idx
}

// join files the caller's arrival for its next operation on this group: the
// oldest open round this member has not joined yet, or a fresh one. It
// never blocks. If the arrival completes the round, the caller runs finish
// inline and wakes the parked members. Returns the round and whether the
// caller was the finisher.
func (g *Group) join(w *Worker, kind opKind, root, idx int, slot, dst *tensor.Matrix) (*round, bool) {
	w.c.checkAbort()
	g.mu.Lock()
	var r *round
	for _, cand := range g.open {
		if !cand.filled[idx] {
			r = cand
			break
		}
	}
	if r == nil {
		r = g.newRound(kind, root)
		g.open = append(g.open, r)
	}
	if r.kind != kind || r.root != root {
		g.mu.Unlock()
		panic(fmt.Sprintf("dist: rank %d joined %s(root %d) while group %v is running %s(root %d)",
			w.rank, kind, rootRank(g, root), g.ranks, r.kind, rootRank(g, r.root)))
	}
	r.filled[idx] = true
	r.clocks[idx] = w.clock
	r.steps[idx] = w.step
	r.slots[idx] = slot
	r.dsts[idx] = dst
	r.arrived++
	last := r.arrived == len(g.ranks)
	if last {
		// Members fill rounds oldest-first, so a complete round is
		// necessarily the oldest open one.
		if g.open[0] != r {
			g.mu.Unlock()
			panic(fmt.Sprintf("dist: group %v completed %s out of order", g.ranks, kind))
		}
		copy(g.open, g.open[1:])
		g.open[len(g.open)-1] = nil
		g.open = g.open[:len(g.open)-1]
		g.finish(w.rank, r)
		for i := 0; i < r.parked; i++ {
			r.done <- struct{}{}
		}
		r.completed.Store(true)
	}
	g.mu.Unlock()
	return r, last
}

func rootRank(g *Group, rootIdx int) int {
	if rootIdx < 0 {
		return -1
	}
	return g.ranks[rootIdx]
}

// waitRound parks the caller until the round completes (the finisher and
// post-completion waiters pass through without blocking), then advances the
// caller's clock to the operation's completion time and accounts how much of
// the operation's comm time the caller's own compute hid.
func (g *Group) waitRound(w *Worker, r *round, finisher bool) {
	if !finisher && !r.completed.Load() {
		// Register as parked under the lock (tokens are deposited only for
		// registered parkers, so a recycled round's channel is always
		// drained), unless completion raced ahead of us.
		g.mu.Lock()
		parking := !r.completed.Load()
		if parking {
			r.parked++
		}
		g.mu.Unlock()
		if parking {
			select {
			case <-r.done:
			case <-w.c.abort:
				panic(abortSignal{})
			}
		}
	}
	if total := r.newClock - r.commBase; total > 0 {
		hidden := w.clock - r.commBase
		if hidden < 0 {
			hidden = 0
		} else if hidden > total {
			hidden = total
		}
		w.commTotal += total
		w.commHidden += hidden
	}
	if r.newClock > w.clock {
		w.clock = r.newClock
	}
}

// newRound recycles a spare round or allocates the group's first few. The
// caller must hold g.mu.
func (g *Group) newRound(kind opKind, root int) *round {
	n := len(g.ranks)
	if s := len(g.spare); s > 0 {
		r := g.spare[s-1]
		g.spare[s-1] = nil
		g.spare = g.spare[:s-1]
		r.kind, r.root = kind, root
		r.arrived, r.parked = 0, 0
		r.exited.Store(0)
		r.gen.Add(1)
		for i := 0; i < n; i++ {
			r.filled[i] = false
			r.waited[i] = false
			r.clocks[i] = 0
			r.steps[i] = 0
			r.slots[i], r.dsts[i], r.results[i] = nil, nil, nil
		}
		r.completed.Store(false)
		r.commBase, r.newClock = 0, 0
		r.result = nil
		return r
	}
	return &round{
		kind:    kind,
		root:    root,
		filled:  make([]bool, n),
		waited:  make([]bool, n),
		clocks:  make([]float64, n),
		steps:   make([]int, n),
		slots:   make([]*tensor.Matrix, n),
		dsts:    make([]*tensor.Matrix, n),
		results: make([]*tensor.Matrix, n),
		done:    make(chan struct{}, n),
	}
}

// retire signals that the caller is done reading r. The last member to
// retire returns the round to the spare list; until then recycling is
// blocked, so other members can still read the outcome safely. A member
// unwound by an abort never retires — that round is simply dropped to the
// garbage collector along with the poisoned cluster.
func (g *Group) retire(r *round) {
	if int(r.exited.Add(1)) != len(g.ranks) {
		return
	}
	// Drop payload references now rather than at reuse: a group that goes
	// quiet must not pin its last collective's matrices.
	for i := range r.slots {
		r.slots[i], r.dsts[i], r.results[i] = nil, nil, nil
	}
	r.result = nil
	g.mu.Lock()
	g.spare = append(g.spare, r)
	g.mu.Unlock()
}

// finish computes a completed round's outcome exactly once, under g.mu:
// data movement and summation, the post-op clock, and the traffic
// statistics. It runs on whichever member arrived last, but everything it
// computes is a pure function of the slots, so the outcome is independent
// of scheduling.
func (g *Group) finish(rank int, r *round) {
	n := len(g.ranks)
	r.commBase = maxClock(r.clocks)
	if g.lastFinish > r.commBase {
		r.commBase = g.lastFinish
	}
	cost := &g.c.cost
	switch r.kind {
	case opBroadcast, opBroadcastInto:
		m := r.slots[r.root]
		if m == nil {
			panic(fmt.Sprintf("dist: broadcast root %d passed a nil payload", rootRank(g, r.root)))
		}
		if r.kind == opBroadcast {
			r.result = m
		} else {
			for _, d := range r.dsts {
				if d == m {
					// The root broadcasting into its own payload (the
					// in-place idiom) needs no copy.
					continue
				}
				tensor.CopyInto(d, m)
			}
		}
		bytes := matrixBytes(m)
		r.newClock = r.commBase + cost.broadcastTime(n, bytes, g.beta)
		g.c.stats.record(rank, statBroadcast, int64(n-1), int64(n-1)*bytes)

	case opReduce:
		m := r.slots[r.root]
		var dst *tensor.Matrix
		if m.Phantom() {
			dst = tensor.NewPhantom(m.Rows, m.Cols)
		} else {
			dst = tensor.New(m.Rows, m.Cols)
		}
		g.combineInto(r, dst)
		r.result = dst
		bytes := matrixBytes(m)
		r.newClock = r.commBase + cost.broadcastTime(n, bytes, g.beta)
		g.c.stats.record(rank, statReduce, int64(n-1), int64(n-1)*bytes)

	case opReduceInto:
		g.combineInto(r, r.dsts[r.root])
		bytes := matrixBytes(r.slots[r.root])
		r.newClock = r.commBase + cost.broadcastTime(n, bytes, g.beta)
		g.c.stats.record(rank, statReduce, int64(n-1), int64(n-1)*bytes)

	case opAllReduce:
		m := r.slots[0]
		var dst *tensor.Matrix
		if m.Phantom() {
			dst = tensor.NewPhantom(m.Rows, m.Cols)
		} else {
			dst = tensor.New(m.Rows, m.Cols)
		}
		g.combineInto(r, dst)
		// Every member owns its copy outright, so the copies must exist
		// before any member can see the outcome and start mutating its own.
		r.results[0] = dst
		for i := 1; i < n; i++ {
			r.results[i] = dst.Clone()
		}
		bytes := matrixBytes(m)
		r.newClock = r.commBase + cost.allReduceTime(n, bytes, g.beta)
		g.c.stats.record(rank, statAllReduce, 2*int64(n-1), 2*int64(n-1)*bytes)

	case opAllReduceInto:
		dst := r.dsts[0]
		g.combineInto(r, dst)
		for i := 1; i < n; i++ {
			tensor.CopyInto(r.dsts[i], dst)
		}
		bytes := matrixBytes(r.slots[0])
		r.newClock = r.commBase + cost.allReduceTime(n, bytes, g.beta)
		g.c.stats.record(rank, statAllReduce, 2*int64(n-1), 2*int64(n-1)*bytes)

	case opAllGather, opAllGatherInto:
		var sum, max int64
		for _, s := range r.slots {
			b := matrixBytes(s)
			sum += b
			if b > max {
				max = b
			}
		}
		if r.kind == opAllGatherInto {
			g.gatherInto(r)
		}
		r.newClock = r.commBase + cost.allGatherTime(n, max, g.beta)
		g.c.stats.record(rank, statAllGather, int64(n)*int64(n-1), int64(n-1)*sum)

	case opReduceScatterInto:
		g.scatterCombineInto(r)
		bytes := matrixBytes(r.slots[0])
		r.newClock = r.commBase + cost.reduceScatterTime(n, bytes, g.beta)
		g.c.stats.record(rank, statReduceScatter, int64(n)*int64(n-1), int64(n-1)*bytes)

	case opBarrier:
		r.newClock = r.commBase + cost.barrierTime(n)
		g.c.stats.record(rank, statBarrier, 0, 0)
	}
	if f := g.c.fault; f != nil {
		// The operation runs at the latest member step (faults activate by
		// the furthest-along participant's window). Degraded links stretch
		// the wire time, transient collective failures add their bounded
		// retry/backoff stall, and the perturbed completion time carries into
		// lastFinish — a sick link backs up the whole group channel.
		step := r.steps[0]
		for _, s := range r.steps[1:] {
			if s > step {
				step = s
			}
		}
		if bf, ea := f.linkPerturb(g.ranks, step); bf != 1 || ea != 0 {
			r.newClock = r.commBase + (r.newClock-r.commBase)*bf + ea
		}
		if d := f.collectiveDelay(g.ranks, step); d != 0 {
			r.newClock += d
		}
	}
	g.lastFinish = r.newClock
}

// combineInto sums every member's slot into dst using the association of a
// binomial reduction tree rooted at the round's root (virtual position 0),
// exactly as the per-edge tree this engine replaced: partial sums pair up
// like a binary counter, every element accumulates with individually
// rounded adds, and the result is bit-identical regardless of which member
// finishes the round. dst may alias the root's slot (in-place reduce): each
// element is written only after being read.
func (g *Group) combineInto(r *round, dst *tensor.Matrix) {
	n := len(g.ranks)
	root := r.root
	if root < 0 {
		root = 0
	}
	ref := r.slots[root]
	for i, s := range r.slots {
		if s == nil {
			panic(fmt.Sprintf("dist: rank %d passed nil to %s", g.ranks[i], r.kind))
		}
		if !s.SameShape(ref) || s.Phantom() != ref.Phantom() {
			panic(fmt.Sprintf("dist: %s on group %v: rank %d contributed %dx%d (phantom=%v), root holds %dx%d (phantom=%v)",
				r.kind, g.ranks, g.ranks[i], s.Rows, s.Cols, s.Phantom(), ref.Rows, ref.Cols, ref.Phantom()))
		}
	}
	if n == 1 {
		tensor.CopyInto(dst, ref)
		return
	}
	if ref.Phantom() {
		return
	}
	if n == 2 {
		tensor.AddTo(dst, ref, r.slots[(root+1)%2])
		return
	}
	vdata := g.vdata[:0]
	for v := 0; v < n; v++ {
		vdata = append(vdata, r.slots[(v+root)%n].Data)
	}
	g.vdata = vdata
	treeSumInto(dst.Data, vdata)
	// Drop the data references now that the sum is done: an idle group must
	// not pin its last reduction's matrices (mirrors retire's slot clearing).
	for i := range g.vdata {
		g.vdata[i] = nil
	}
	g.vdata = g.vdata[:0]
}

// treeSumInto writes dd[e] = Σ_v vdata[v][e] in the association of a
// binomial reduction tree over the virtual order vdata: partial sums pair up
// like a binary counter, every element accumulates with individually rounded
// adds. Because the association is per-element, summing a pre-sliced row
// window is bit-identical to summing the whole matrix and slicing the range
// after — the property that makes reduce-scatter ≡ reduce + scatter down to
// the bit. Callers pass windows of equal length len(dd).
func treeSumInto(dd []float64, vdata [][]float64) {
	n := len(vdata)
	var stack [16]float64 // level l holds a partial of 2^l members; 16 levels cover any practical group
	for e := range dd {
		cnt := 0
		for v := 0; v < n; v++ {
			x := vdata[v][e]
			lvl := 0
			for c := cnt; c&1 == 1; c >>= 1 {
				x = stack[lvl] + x
				lvl++
			}
			stack[lvl] = x
			cnt++
		}
		lvl := 0
		for cnt&(1<<lvl) == 0 {
			lvl++
		}
		t := stack[lvl]
		for lvl++; 1<<lvl <= cnt; lvl++ {
			if cnt&(1<<lvl) != 0 {
				t = stack[lvl] + t
			}
		}
		dd[e] = t
	}
}

// scatterCombineInto computes the reduce-scatter outcome: member i's dst
// receives row block i of the binomial-tree sum (rooted at group index 0,
// exactly ReduceInto's association with the first member as root) of the
// equal full-size payloads. No full-size intermediate exists — each block is
// tree-summed straight into its owner's destination, which is bit-identical
// to reducing the whole matrix and scattering because the tree association
// is per-element.
func (g *Group) scatterCombineInto(r *round) {
	n := len(g.ranks)
	ref := r.slots[0]
	br := ref.Rows / n
	for i, s := range r.slots {
		if s == nil {
			panic(fmt.Sprintf("dist: rank %d passed nil to %s", g.ranks[i], r.kind))
		}
		if !s.SameShape(ref) || s.Phantom() != ref.Phantom() {
			panic(fmt.Sprintf("dist: %s on group %v: rank %d contributed %dx%d (phantom=%v), member 0 holds %dx%d (phantom=%v)",
				r.kind, g.ranks, g.ranks[i], s.Rows, s.Cols, s.Phantom(), ref.Rows, ref.Cols, ref.Phantom()))
		}
		d := r.dsts[i]
		if d.Rows != br || d.Cols != ref.Cols || d.Phantom() != ref.Phantom() {
			panic(fmt.Sprintf("dist: %s on group %v: rank %d dst %dx%d (phantom=%v) wants %dx%d (phantom=%v)",
				r.kind, g.ranks, g.ranks[i], d.Rows, d.Cols, d.Phantom(), br, ref.Cols, ref.Phantom()))
		}
	}
	if ref.Phantom() {
		return
	}
	if n == 1 {
		tensor.CopyInto(r.dsts[0], ref)
		return
	}
	vdata := g.vdata[:0]
	for v := 0; v < n; v++ {
		vdata = append(vdata, nil)
	}
	g.vdata = vdata
	blockLen := br * ref.Cols
	for i := 0; i < n; i++ {
		off := i * blockLen
		for v := 0; v < n; v++ {
			vdata[v] = r.slots[v].Data[off : off+blockLen]
		}
		treeSumInto(r.dsts[i].Data, vdata)
	}
	for i := range g.vdata {
		g.vdata[i] = nil
	}
	g.vdata = g.vdata[:0]
}

// gatherInto copies every member's slot into every member's destination in
// canonical order. The orientation follows the destination shape: a
// [n·rows, cols] destination stacks the blocks vertically, a [rows, n·cols]
// destination side by side (shapes are validated at issue time).
func (g *Group) gatherInto(r *round) {
	n := len(g.ranks)
	block := r.slots[0]
	for _, d := range r.dsts {
		byRows := d.Rows == n*block.Rows && d.Cols == block.Cols
		for v, s := range r.slots {
			if byRows {
				d.SetSubMatrix(v*block.Rows, 0, s)
			} else {
				d.SetSubMatrix(0, v*block.Cols, s)
			}
		}
	}
}
