package dist

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Group is a communicator over a fixed, ordered set of cluster ranks. The
// rank list passed to Cluster.Group is the canonical order: AllGather
// returns blocks in it, Index maps a cluster rank to its slot. Members must
// invoke the same sequence of collectives on a group; the runtime checks
// that concurrent arrivals agree on the operation and root.
type Group struct {
	c     *Cluster
	ranks []int
	index map[int]int
	beta  float64 // per-byte cost of the slowest link the group spans

	mail *mailboxSet // tree edges, keyed by group index pairs

	mu    sync.Mutex
	cur   *round
	spare []*round // retired rounds, recycled to keep collectives off the allocator
}

// round is one in-flight collective: a rendezvous that collects every
// member's clock (and optional payload/destination slots), then lets the
// last arriver compute the outcome exactly once. Rounds are recycled: after
// every member has extracted its outcome and called retire, the round
// returns to the group's spare list and the next collective reuses it.
//
// done is a buffered token channel rather than a closed one so it survives
// recycling: the last arriver deposits exactly one token per parked member,
// each waiter consumes exactly one, and the drained channel is ready for
// the next round without reallocation. (A round abandoned by an abort may
// hold stale tokens, but such a round is never recycled — its members never
// all retire.)
type round struct {
	op      string
	root    int
	arrived int
	exited  int
	clocks  []float64
	slots   []*tensor.Matrix
	dsts    []*tensor.Matrix
	done    chan struct{}

	newClock float64
	result   *tensor.Matrix
}

func newGroup(c *Cluster, ranks []int) *Group {
	g := &Group{
		c:     c,
		ranks: append([]int(nil), ranks...),
		index: make(map[int]int, len(ranks)),
		beta:  c.cost.BetaIntra,
		mail:  newMailboxSet(),
	}
	for i, r := range g.ranks {
		if _, dup := g.index[r]; dup {
			panic(fmt.Sprintf("dist: duplicate rank %d in group %v", r, g.ranks))
		}
		g.index[r] = i
		if c.node(r) != c.node(g.ranks[0]) {
			g.beta = c.cost.BetaInter
		}
	}
	return g
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns the members in canonical order.
func (g *Group) Ranks() []int { return append([]int(nil), g.ranks...) }

// Index returns the slot of a cluster rank in the canonical order, or −1
// if the rank is not a member.
func (g *Group) Index(rank int) int {
	if i, ok := g.index[rank]; ok {
		return i
	}
	return -1
}

// mustIndex resolves the calling worker's slot, panicking for non-members.
func (g *Group) mustIndex(w *Worker, op string) int {
	idx, ok := g.index[w.rank]
	if !ok {
		panic(fmt.Sprintf("dist: rank %d is not a member of group %v (%s)", w.rank, g.ranks, op))
	}
	return idx
}

// rendezvous parks the caller in the current round (creating or recycling
// it on first arrival), runs finish exactly once when the last member
// arrives, and advances the caller's clock to the agreed post-op time. It
// unblocks with an abort unwind if the cluster dies while waiting.
//
// The returned round is only valid until the caller retires it: every
// member must call g.retire(r) after reading what it needs (result, slots),
// at which point the round may be handed to the next collective.
func (g *Group) rendezvous(w *Worker, op string, root int, idx int, slot, dst *tensor.Matrix, finish func(r *round)) *round {
	w.c.checkAbort()
	g.mu.Lock()
	r := g.cur
	if r == nil {
		r = g.newRound(op, root)
		g.cur = r
	}
	if r.op != op || r.root != root {
		g.mu.Unlock()
		panic(fmt.Sprintf("dist: rank %d joined %s(root %d) while group %v is running %s(root %d)",
			w.rank, op, root, g.ranks, r.op, r.root))
	}
	r.clocks[idx] = w.clock
	r.slots[idx] = slot
	r.dsts[idx] = dst
	r.arrived++
	last := r.arrived == len(g.ranks)
	if last {
		g.cur = nil
		finish(r)
		for i := 0; i < len(g.ranks)-1; i++ {
			r.done <- struct{}{}
		}
	}
	g.mu.Unlock()
	if !last {
		select {
		case <-r.done:
		case <-w.c.abort:
			panic(abortSignal{})
		}
	}
	w.clock = r.newClock
	return r
}

// newRound recycles a spare round or allocates the group's first few. The
// caller must hold g.mu.
func (g *Group) newRound(op string, root int) *round {
	n := len(g.ranks)
	if s := len(g.spare); s > 0 {
		r := g.spare[s-1]
		g.spare[s-1] = nil
		g.spare = g.spare[:s-1]
		r.op, r.root = op, root
		r.arrived, r.exited = 0, 0
		for i := 0; i < n; i++ {
			r.clocks[i] = 0
			r.slots[i], r.dsts[i] = nil, nil
		}
		r.newClock, r.result = 0, nil
		return r
	}
	return &round{
		op:     op,
		root:   root,
		clocks: make([]float64, n),
		slots:  make([]*tensor.Matrix, n),
		dsts:   make([]*tensor.Matrix, n),
		done:   make(chan struct{}, n),
	}
}

// retire signals that the caller is done reading r. The last member to
// retire returns the round to the spare list; until then recycling is
// blocked, so parked members can still read the outcome safely. A member
// unwound by an abort never retires — that round is simply dropped to the
// garbage collector along with the poisoned cluster.
func (g *Group) retire(r *round) {
	g.mu.Lock()
	r.exited++
	if r.exited == len(g.ranks) {
		// Drop payload references now rather than at reuse: a group that
		// goes quiet must not pin its last collective's matrices.
		for i := range r.slots {
			r.slots[i], r.dsts[i] = nil, nil
		}
		r.result = nil
		g.spare = append(g.spare, r)
	}
	g.mu.Unlock()
}

// vpos maps a group index to its virtual position in a tree rooted at
// rootIdx (the root sits at virtual position 0).
func (g *Group) vpos(idx, rootIdx int) int {
	n := len(g.ranks)
	return (idx - rootIdx + n) % n
}

// rpos inverts vpos.
func (g *Group) rpos(v, rootIdx int) int {
	n := len(g.ranks)
	return (v + rootIdx) % n
}

// sendEdge / recvEdge move a packet along one tree edge (addressed by group
// indices). Edge traffic carries no clock: collective time is charged once
// at the rendezvous.
func (g *Group) sendEdge(from, to int, p packet) {
	g.mail.box(from, to).put(p)
}

func (g *Group) recvEdge(w *Worker, from, to int) packet {
	p, ok := g.mail.box(from, to).take(w.c.abort)
	if !ok {
		panic(abortSignal{})
	}
	return p
}

// treeReduce runs a binomial reduction toward rootIdx. The caller's matrix
// is never mutated: the first subtree arrival provides this member's
// accumulator, which is then reused in place for every further arrival and
// handed to the parent as the subtree sum. Returns the full sum at the
// root (always an owned, non-pooled buffer — it escapes to the collective's
// caller) and nil elsewhere.
//
// Interior nodes (non-root members with subtree children) draw their
// accumulator from the worker's workspace instead of allocating; it comes
// back as scratch, and the collective recycles it after its closing
// rendezvous — by which point the parent is guaranteed to have consumed it,
// since the parent cannot reach the rendezvous before finishing its adds.
func (g *Group) treeReduce(w *Worker, idx, rootIdx int, m *tensor.Matrix) (sum, scratch *tensor.Matrix) {
	n := len(g.ranks)
	v := g.vpos(idx, rootIdx)
	acc, owned := m, false
	for step := 1; step < n; step <<= 1 {
		if v&step != 0 {
			g.sendEdge(idx, g.rpos(v-step, rootIdx), packet{m: acc})
			return nil, scratch
		}
		if v+step < n {
			p := g.recvEdge(w, g.rpos(v+step, rootIdx), idx)
			if owned {
				tensor.AddInPlace(acc, p.m)
			} else if v != 0 {
				scratch = w.Workspace().GetUninitMatch(m.Rows, m.Cols, m.Phantom() || p.m.Phantom())
				tensor.AddTo(scratch, m, p.m)
				acc, owned = scratch, true
			} else {
				acc, owned = tensor.Add(acc, p.m), true
			}
		}
	}
	if !owned {
		// n == 1: nothing arrived; hand back an owned copy anyway so every
		// caller may mutate the result.
		acc = acc.Clone()
	}
	return acc, scratch
}

// treeReduceInto is treeReduce for a root that supplies its own accumulator:
// the root's subtree arrivals sum into dst (same arrival order, so the
// association — and therefore every bit — matches treeReduce), and dst may
// alias m. Non-root members run the unchanged sending protocol and return a
// nil sum; only the root may pass a non-nil dst. Like treeReduce it hands
// back interior-node scratch for the collective to recycle after its
// rendezvous.
func (g *Group) treeReduceInto(w *Worker, idx, rootIdx int, m, dst *tensor.Matrix) (sum, scratch *tensor.Matrix) {
	if idx != rootIdx {
		return g.treeReduce(w, idx, rootIdx, m)
	}
	n := len(g.ranks)
	first := true
	for step := 1; step < n; step <<= 1 {
		p := g.recvEdge(w, g.rpos(step, rootIdx), idx)
		if first {
			tensor.AddTo(dst, m, p.m)
			first = false
		} else {
			tensor.AddInPlace(dst, p.m)
		}
	}
	if first {
		tensor.CopyInto(dst, m)
	}
	return dst, nil
}

// treeBcast pushes m down a binomial tree from rootIdx. The root passes the
// payload; every other member passes nil, receives the shared pointer from
// its parent and forwards it to its children. Returns the payload.
func (g *Group) treeBcast(w *Worker, idx, rootIdx int, m *tensor.Matrix) *tensor.Matrix {
	n := len(g.ranks)
	if n == 1 {
		return m
	}
	v := g.vpos(idx, rootIdx)
	top := 1
	for top < n {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch v % (2 * step) {
		case 0:
			if v+step < n {
				g.sendEdge(idx, g.rpos(v+step, rootIdx), packet{m: m})
			}
		case step:
			m = g.recvEdge(w, g.rpos(v-step, rootIdx), idx).m
		}
	}
	return m
}
