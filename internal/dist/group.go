package dist

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Group is a communicator over a fixed, ordered set of cluster ranks. The
// rank list passed to Cluster.Group is the canonical order: AllGather
// returns blocks in it, Index maps a cluster rank to its slot. Members must
// invoke the same sequence of collectives on a group; the runtime checks
// that concurrent arrivals agree on the operation and root.
type Group struct {
	c     *Cluster
	ranks []int
	index map[int]int
	beta  float64 // per-byte cost of the slowest link the group spans

	mail *mailboxSet // tree edges, keyed by group index pairs

	mu  sync.Mutex
	cur *round
}

// round is one in-flight collective: a rendezvous that collects every
// member's clock (and optional payload slot), then lets the last arriver
// compute the outcome exactly once.
type round struct {
	op      string
	root    int
	arrived int
	clocks  []float64
	slots   []*tensor.Matrix
	done    chan struct{}

	newClock float64
	result   *tensor.Matrix
}

func newGroup(c *Cluster, ranks []int) *Group {
	g := &Group{
		c:     c,
		ranks: append([]int(nil), ranks...),
		index: make(map[int]int, len(ranks)),
		beta:  c.cost.BetaIntra,
		mail:  newMailboxSet(),
	}
	for i, r := range g.ranks {
		if _, dup := g.index[r]; dup {
			panic(fmt.Sprintf("dist: duplicate rank %d in group %v", r, g.ranks))
		}
		g.index[r] = i
		if c.node(r) != c.node(g.ranks[0]) {
			g.beta = c.cost.BetaInter
		}
	}
	return g
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns the members in canonical order.
func (g *Group) Ranks() []int { return append([]int(nil), g.ranks...) }

// Index returns the slot of a cluster rank in the canonical order, or −1
// if the rank is not a member.
func (g *Group) Index(rank int) int {
	if i, ok := g.index[rank]; ok {
		return i
	}
	return -1
}

// mustIndex resolves the calling worker's slot, panicking for non-members.
func (g *Group) mustIndex(w *Worker, op string) int {
	idx, ok := g.index[w.rank]
	if !ok {
		panic(fmt.Sprintf("dist: rank %d is not a member of group %v (%s)", w.rank, g.ranks, op))
	}
	return idx
}

// rendezvous parks the caller in the current round (creating it on first
// arrival), runs finish exactly once when the last member arrives, and
// advances the caller's clock to the agreed post-op time. It unblocks with
// an abort unwind if the cluster dies while waiting.
func (g *Group) rendezvous(w *Worker, op string, root int, idx int, slot *tensor.Matrix, finish func(r *round)) *round {
	w.c.checkAbort()
	g.mu.Lock()
	r := g.cur
	if r == nil {
		r = &round{
			op:     op,
			root:   root,
			clocks: make([]float64, len(g.ranks)),
			slots:  make([]*tensor.Matrix, len(g.ranks)),
			done:   make(chan struct{}),
		}
		g.cur = r
	}
	if r.op != op || r.root != root {
		g.mu.Unlock()
		panic(fmt.Sprintf("dist: rank %d joined %s(root %d) while group %v is running %s(root %d)",
			w.rank, op, root, g.ranks, r.op, r.root))
	}
	r.clocks[idx] = w.clock
	r.slots[idx] = slot
	r.arrived++
	last := r.arrived == len(g.ranks)
	if last {
		g.cur = nil
		finish(r)
		close(r.done)
	}
	g.mu.Unlock()
	if !last {
		select {
		case <-r.done:
		case <-w.c.abort:
			panic(abortSignal{})
		}
	}
	w.clock = r.newClock
	return r
}

// vpos maps a group index to its virtual position in a tree rooted at
// rootIdx (the root sits at virtual position 0).
func (g *Group) vpos(idx, rootIdx int) int {
	n := len(g.ranks)
	return (idx - rootIdx + n) % n
}

// rpos inverts vpos.
func (g *Group) rpos(v, rootIdx int) int {
	n := len(g.ranks)
	return (v + rootIdx) % n
}

// sendEdge / recvEdge move a packet along one tree edge (addressed by group
// indices). Edge traffic carries no clock: collective time is charged once
// at the rendezvous.
func (g *Group) sendEdge(from, to int, p packet) {
	g.mail.box(from, to).put(p)
}

func (g *Group) recvEdge(w *Worker, from, to int) packet {
	p, ok := g.mail.box(from, to).take(w.c.abort)
	if !ok {
		panic(abortSignal{})
	}
	return p
}

// treeReduce runs a binomial reduction toward rootIdx. The caller's matrix
// is never mutated: the first subtree arrival allocates this member's
// accumulator, which is then reused in place for every further arrival and
// handed to the parent as the subtree sum. Returns the full sum at the
// root (always an owned buffer) and nil elsewhere.
func (g *Group) treeReduce(w *Worker, idx, rootIdx int, m *tensor.Matrix) *tensor.Matrix {
	n := len(g.ranks)
	v := g.vpos(idx, rootIdx)
	acc, owned := m, false
	for step := 1; step < n; step <<= 1 {
		if v&step != 0 {
			g.sendEdge(idx, g.rpos(v-step, rootIdx), packet{m: acc})
			return nil
		}
		if v+step < n {
			p := g.recvEdge(w, g.rpos(v+step, rootIdx), idx)
			if owned {
				tensor.AddInPlace(acc, p.m)
			} else {
				acc, owned = tensor.Add(acc, p.m), true
			}
		}
	}
	if !owned {
		// n == 1: nothing arrived; hand back an owned copy anyway so every
		// caller may mutate the result.
		acc = acc.Clone()
	}
	return acc
}

// treeBcast pushes m down a binomial tree from rootIdx. The root passes the
// payload; every other member passes nil, receives the shared pointer from
// its parent and forwards it to its children. Returns the payload.
func (g *Group) treeBcast(w *Worker, idx, rootIdx int, m *tensor.Matrix) *tensor.Matrix {
	n := len(g.ranks)
	if n == 1 {
		return m
	}
	v := g.vpos(idx, rootIdx)
	top := 1
	for top < n {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch v % (2 * step) {
		case 0:
			if v+step < n {
				g.sendEdge(idx, g.rpos(v+step, rootIdx), packet{m: m})
			}
		case step:
			m = g.recvEdge(w, g.rpos(v-step, rootIdx), idx).m
		}
	}
	return m
}
