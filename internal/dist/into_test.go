package dist

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
)

// errRankf wraps a formatted error with the failing rank so it surfaces
// through the cluster's abort machinery.
func errRankf(w *Worker, format string, args ...any) error {
	return fmt.Errorf("rank %d: %s", w.Rank(), fmt.Sprintf(format, args...))
}

// fillRank gives each rank a distinct deterministic matrix.
func fillRank(rank, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float64(rank*1000+i) * 0.5
	}
	return m
}

func TestBroadcastIntoMatchesBroadcast(t *testing.T) {
	const n, root = 4, 2
	want := make([]*tensor.Matrix, n)
	got := make([]*tensor.Matrix, n)
	runWorld(t, n, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		var payload *tensor.Matrix
		if w.Rank() == root {
			payload = fillRank(root, 3, 5)
		}
		want[w.Rank()] = g.Broadcast(w, root, payload)

		dst := tensor.New(3, 5)
		if w.Rank() == root {
			dst = fillRank(root, 3, 5)
			g.BroadcastInto(w, root, dst, dst)
		} else {
			g.BroadcastInto(w, root, nil, dst)
		}
		got[w.Rank()] = dst
		return nil
	})
	for r := 0; r < n; r++ {
		if !want[r].Equal(got[r]) {
			t.Fatalf("rank %d: BroadcastInto differs from Broadcast", r)
		}
	}
}

func TestBroadcastIntoRootMayMutateImmediately(t *testing.T) {
	// The documented contract: no member aliases the root's payload after
	// return, so the root may overwrite it while peers still hold their
	// copies.
	const n, root = 4, 0
	got := make([]*tensor.Matrix, n)
	runWorld(t, n, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		if w.Rank() == root {
			payload := fillRank(7, 2, 2)
			g.BroadcastInto(w, root, payload, payload)
			payload.Fill(-1) // must not be visible to any peer
			got[w.Rank()] = fillRank(7, 2, 2)
		} else {
			dst := tensor.New(2, 2)
			g.BroadcastInto(w, root, nil, dst)
			got[w.Rank()] = dst
		}
		return nil
	})
	want := fillRank(7, 2, 2)
	for r := 1; r < n; r++ {
		if !got[r].Equal(want) {
			t.Fatalf("rank %d saw the root's post-broadcast mutation", r)
		}
	}
}

func TestReduceIntoMatchesReduceBitwise(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		const root = 0
		var want, got *tensor.Matrix
		runWorld(t, n, func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			m := fillRank(w.Rank(), 4, 4)
			r := g.Reduce(w, root, m)
			var dst *tensor.Matrix
			if w.Rank() == root {
				dst = tensor.New(4, 4)
			}
			r2 := g.ReduceInto(w, root, fillRank(w.Rank(), 4, 4), dst)
			if w.Rank() == root {
				want, got = r, r2
			} else if r2 != nil {
				t.Errorf("n=%d rank %d: non-root ReduceInto must return nil", n, w.Rank())
			}
			return nil
		})
		if !want.Equal(got) {
			t.Fatalf("n=%d: ReduceInto differs bitwise from Reduce", n)
		}
	}
}

func TestAllReduceIntoMatchesAllReduceBitwise(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		want := make([]*tensor.Matrix, n)
		got := make([]*tensor.Matrix, n)
		runWorld(t, n, func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			want[w.Rank()] = g.AllReduce(w, fillRank(w.Rank(), 3, 3))
			// In-place variant: dst aliases m.
			m := fillRank(w.Rank(), 3, 3)
			out := g.AllReduceInto(w, m, m)
			if out != m {
				t.Errorf("AllReduceInto must return dst")
			}
			got[w.Rank()] = out
			return nil
		})
		for r := 0; r < n; r++ {
			if !want[r].Equal(got[r]) {
				t.Fatalf("n=%d rank %d: in-place AllReduceInto differs bitwise from AllReduce", n, r)
			}
		}
	}
}

func TestReduceIntoConsumesPartialBeforeReturn(t *testing.T) {
	// SUMMA's reuse contract: a member may overwrite its partial the moment
	// ReduceInto returns. Run q rounds reusing one buffer per member and
	// check the root sums against fresh-buffer Reduce.
	const n, rounds = 4, 3
	sums := make([]*tensor.Matrix, rounds)
	wants := make([]*tensor.Matrix, rounds)
	runWorld(t, n, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		partial := tensor.New(2, 2)
		var dst *tensor.Matrix
		if w.Rank() == 0 {
			dst = tensor.New(2, 2)
		}
		for round := 0; round < rounds; round++ {
			src := fillRank(w.Rank()+round*10, 2, 2)
			copy(partial.Data, src.Data)
			r := g.ReduceInto(w, 0, partial, dst)
			if w.Rank() == 0 {
				sums[round] = r.Clone()
			}
		}
		for round := 0; round < rounds; round++ {
			r := g.Reduce(w, 0, fillRank(w.Rank()+round*10, 2, 2))
			if w.Rank() == 0 {
				wants[round] = r
			}
		}
		return nil
	})
	for round := 0; round < rounds; round++ {
		if !wants[round].Equal(sums[round]) {
			t.Fatalf("round %d: reused-partial ReduceInto corrupted the sum", round)
		}
	}
}

func TestIntoCollectivesSteadyStateAllocationFree(t *testing.T) {
	// Groups larger than two have interior tree nodes whose accumulators
	// used to be fresh allocations. They now come from the worker's pool,
	// so after a warm-up round the workspace must stop allocating — on an
	// 8-member group, not just the benchmarked pairs.
	const n, rounds = 8, 5
	runWorld(t, n, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		m := fillRank(w.Rank(), 4, 4)
		dst := tensor.New(4, 4)
		var warm tensor.WorkspaceStats
		for round := 0; round < rounds; round++ {
			g.AllReduceInto(w, m, dst)
			var rdst *tensor.Matrix
			if w.Rank() == 0 {
				rdst = dst
			}
			g.ReduceInto(w, 0, m, rdst)
			s := w.Workspace().Stats()
			if round == 0 {
				warm = s
				continue
			}
			if s.Allocs != warm.Allocs {
				return errRankf(w, "round %d allocated: %d pool misses vs %d after warm-up", round, s.Allocs, warm.Allocs)
			}
			if s.Live != 0 {
				return errRankf(w, "round %d leaked %d collective scratch buffers", round, s.Live)
			}
		}
		return nil
	})
}

func TestIntoCollectivesPropagatePhantoms(t *testing.T) {
	runWorld(t, 4, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		ph := tensor.NewPhantom(4, 4)
		dst := tensor.NewPhantom(4, 4)
		if out := g.AllReduceInto(w, ph, dst); !out.Phantom() {
			t.Error("phantom all-reduce-into must stay phantom")
		}
		if w.Rank() == 1 {
			g.BroadcastInto(w, 1, ph, ph)
		} else {
			if out := g.BroadcastInto(w, 1, nil, tensor.NewPhantom(4, 4)); !out.Phantom() {
				t.Error("phantom broadcast-into must stay phantom")
			}
		}
		return nil
	})
}

func TestIntoCollectivesChargeLikeClassic(t *testing.T) {
	// Same payload, same group: the Into variants must advance the
	// simulated clocks exactly as the snapshot/cloning variants do.
	timeOf := func(fn func(w *Worker, g *Group)) float64 {
		c := New(Config{WorldSize: 4})
		if err := c.Run(func(w *Worker) error {
			fn(w, c.WorldGroup())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	classic := timeOf(func(w *Worker, g *Group) {
		var payload *tensor.Matrix
		if w.Rank() == 0 {
			payload = tensor.New(8, 8)
		}
		g.Broadcast(w, 0, payload)
		g.Reduce(w, 0, tensor.New(8, 8))
		g.AllReduce(w, tensor.New(8, 8))
	})
	into := timeOf(func(w *Worker, g *Group) {
		m := tensor.New(8, 8)
		if w.Rank() == 0 {
			g.BroadcastInto(w, 0, m, m)
		} else {
			g.BroadcastInto(w, 0, nil, m)
		}
		var dst *tensor.Matrix
		if w.Rank() == 0 {
			dst = tensor.New(8, 8)
		}
		g.ReduceInto(w, 0, m, dst)
		g.AllReduceInto(w, m, m)
	})
	if classic != into {
		t.Fatalf("simulated time drifted: classic %g vs into %g", classic, into)
	}
}

// TestAllGatherInto covers both orientations, phantom propagation, and the
// accounting equivalence with the snapshotting AllGather.
func TestAllGatherInto(t *testing.T) {
	const n = 4
	rows := make([]*tensor.Matrix, n)
	cols := make([]*tensor.Matrix, n)
	runWorld(t, n, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		m := fillRank(w.Rank(), 2, 3)
		v := g.AllGatherInto(w, m, tensor.New(n*2, 3))
		h := g.AllGatherInto(w, m, tensor.New(2, n*3))
		rows[w.Rank()], cols[w.Rank()] = v, h
		return nil
	})
	for r := 0; r < n; r++ {
		for member := 0; member < n; member++ {
			want := fillRank(member, 2, 3)
			if !rows[r].SubMatrix(member*2, 0, 2, 3).Equal(want) {
				t.Fatalf("rank %d: vertical slot %d corrupted", r, member)
			}
			if !cols[r].SubMatrix(0, member*3, 2, 3).Equal(want) {
				t.Fatalf("rank %d: horizontal slot %d corrupted", r, member)
			}
		}
	}

	// Phantom blocks gather into a phantom destination without arithmetic.
	runWorld(t, n, func(w *Worker) error {
		g := w.Cluster().WorldGroup()
		out := g.AllGatherInto(w, tensor.NewPhantom(2, 3), tensor.NewPhantom(n*2, 3))
		if !out.Phantom() {
			return errRankf(w, "phantom allgather-into lost phantomness")
		}
		return nil
	})

	// Mismatched destination shapes must fail loudly.
	c := New(Config{WorldSize: 1})
	err := c.Run(func(w *Worker) error {
		defer func() {
			if recover() == nil {
				t.Error("bad dst shape should panic")
			}
		}()
		g := w.Cluster().WorldGroup()
		g.AllGatherInto(w, tensor.New(2, 3), tensor.New(5, 5))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Clock and traffic must match AllGather exactly.
	timeAndStats := func(into bool) (float64, Stats) {
		c := New(Config{WorldSize: n})
		if err := c.Run(func(w *Worker) error {
			g := w.Cluster().WorldGroup()
			m := fillRank(w.Rank(), 2, 3)
			if into {
				g.AllGatherInto(w, m, tensor.New(n*2, 3))
			} else {
				g.AllGather(w, m)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock(), c.Stats()
	}
	classicClock, classicStats := timeAndStats(false)
	intoClock, intoStats := timeAndStats(true)
	if classicClock != intoClock {
		t.Fatalf("AllGatherInto clock %g != AllGather clock %g", intoClock, classicClock)
	}
	if classicStats.Messages != intoStats.Messages || classicStats.Bytes != intoStats.Bytes {
		t.Fatalf("AllGatherInto stats %+v != AllGather stats %+v", intoStats, classicStats)
	}
}
