// Package cannon implements Cannon's 2-D matrix multiplication algorithm
// (Algorithm 1 of the paper; Cannon 1969) on a q×q mesh layer. It is one of
// the two historical baselines the paper compares Tesseract against for
// communication volume (§1, §3.1): with p processors a full multiplication
// performs 2p^{3/2} − 2p^{1/2} block transfers, which our implementation
// reproduces exactly (see the package tests).
package cannon

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/mesh"
	"repro/internal/tensor"
)

// MulAB multiplies block-distributed matrices with Cannon's algorithm.
// The caller at grid position (i, j) passes its blocks A[i,j] and B[i,j];
// the result is the local block C[i,j] of C = A·B.
//
// The schedule follows Algorithm 1: skew A left by i and B up by j, then q
// rounds of local multiply-accumulate with single-step shifts in between.
func MulAB(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("cannon: local blocks %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	q := p.Shape.Q
	var c *tensor.Matrix
	if a.Phantom() || b.Phantom() {
		c = tensor.NewPhantom(a.Rows, b.Cols)
	} else {
		c = tensor.New(a.Rows, b.Cols)
	}
	// Initial skew (Figure 1a).
	a = ShiftLeft(p, a, p.I)
	b = ShiftUp(p, b, p.J)
	for t := 0; t < q; t++ {
		compute.MatMulInto(p.W, c, a, b)
		if t < q-1 {
			// Single-step shift (Figure 1b).
			a = ShiftLeft(p, a, 1)
			b = ShiftUp(p, b, 1)
		}
	}
	return c
}

// ShiftLeft circularly moves blocks s positions left along the caller's mesh
// row and returns the block arriving from the right. A zero (mod q) shift is
// free.
func ShiftLeft(p *mesh.Proc, m *tensor.Matrix, s int) *tensor.Matrix {
	q := p.Shape.Q
	s = ((s % q) + q) % q
	if s == 0 {
		return m
	}
	dst := p.RowRank((p.J - s + q) % q)
	src := p.RowRank((p.J + s) % q)
	p.W.Send(dst, m)
	return p.W.Recv(src)
}

// ShiftUp circularly moves blocks s positions up along the caller's mesh
// column and returns the block arriving from below.
func ShiftUp(p *mesh.Proc, m *tensor.Matrix, s int) *tensor.Matrix {
	q := p.Shape.Q
	s = ((s % q) + q) % q
	if s == 0 {
		return m
	}
	dst := p.ColRank((p.I - s + q) % q)
	src := p.ColRank((p.I + s) % q)
	p.W.Send(dst, m)
	return p.W.Recv(src)
}

// Transfers returns the closed-form number of inter-GPU block transfers one
// Cannon multiplication performs on p = q² processors: 2p^{3/2} − 2p^{1/2}
// (§3.1 of the paper). The skew moves 2·q(q−1) blocks and each of the q−1
// shift rounds moves 2q², giving 2q(q²−1) = 2q³ − 2q.
func Transfers(q int) int {
	return 2*q*q*q - 2*q
}
