package cannon

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func TestMulABMatchesSerial(t *testing.T) {
	for _, q := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("q%d", q), func(t *testing.T) {
			s := mesh.Shape{Q: q, D: 1}
			rng := tensor.NewRNG(uint64(q))
			ga := tensor.RandomMatrix(4*q, 3*q, rng)
			gb := tensor.RandomMatrix(3*q, 2*q, rng)
			want := tensor.MatMul(ga, gb)
			results := testutil.NewCollector()
			testutil.Run(t, s.Size(), func(w *dist.Worker) error {
				p := mesh.NewProc(w, s)
				la := ga.SubMatrix(p.I*4, p.J*3, 4, 3)
				lb := gb.SubMatrix(p.I*3, p.J*2, 3, 2)
				lc := MulAB(p, la, lb)
				// Verify the local block directly.
				wantBlock := want.SubMatrix(p.I*4, p.J*2, 4, 2)
				if !lc.AllClose(wantBlock, 1e-9) {
					t.Errorf("proc (%d,%d): block diff %g", p.I, p.J, lc.MaxAbsDiff(wantBlock))
				}
				results.Put(w.Rank(), lc)
				return nil
			})
		})
	}
}

func TestTransferCountMatchesFormula(t *testing.T) {
	// §3.1: Cannon needs 2p^{3/2} − 2p^{1/2} = 2q³ − 2q block transfers.
	for _, q := range []int{2, 3, 4} {
		s := mesh.Shape{Q: q, D: 1}
		c := dist.New(dist.Config{WorldSize: s.Size()})
		err := c.Run(func(w *dist.Worker) error {
			p := mesh.NewProc(w, s)
			la := tensor.NewPhantom(2, 2)
			lb := tensor.NewPhantom(2, 2)
			MulAB(p, la, lb)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got := c.Stats().PerOp["send"].Messages
		want := int64(Transfers(q))
		if got != want {
			t.Fatalf("q=%d: measured %d transfers, formula says %d", q, got, want)
		}
	}
}

func TestTransfersFormulaValues(t *testing.T) {
	// p = 64 -> q = 8 -> 2·8³ − 2·8 = 1008, the number behind the paper's
	// "31.5 times the communication of Tesseract" claim (1008/32).
	if Transfers(8) != 1008 {
		t.Fatalf("Transfers(8) = %d, want 1008", Transfers(8))
	}
}

func TestShiftRoundTrip(t *testing.T) {
	// Shifting left q times returns every block to its owner.
	s := mesh.Shape{Q: 3, D: 1}
	testutil.Run(t, s.Size(), func(w *dist.Worker) error {
		p := mesh.NewProc(w, s)
		m := tensor.New(1, 1)
		m.Set(0, 0, float64(w.Rank()))
		cur := m
		for i := 0; i < 3; i++ {
			cur = ShiftLeft(p, cur, 1)
		}
		if cur.At(0, 0) != float64(w.Rank()) {
			t.Errorf("rank %d: q shifts did not round trip (got %g)", w.Rank(), cur.At(0, 0))
		}
		up := ShiftUp(p, m, 3)
		if up.At(0, 0) != float64(w.Rank()) {
			t.Errorf("rank %d: shift by q must be identity", w.Rank())
		}
		return nil
	})
}

func TestPhantomMatchesRealClock(t *testing.T) {
	clock := func(phantom bool) float64 {
		s := mesh.Shape{Q: 2, D: 1}
		c := dist.New(dist.Config{WorldSize: s.Size()})
		if err := c.Run(func(w *dist.Worker) error {
			p := mesh.NewProc(w, s)
			var la, lb *tensor.Matrix
			if phantom {
				la, lb = tensor.NewPhantom(3, 3), tensor.NewPhantom(3, 3)
			} else {
				rng := tensor.NewRNG(uint64(w.Rank()) + 1)
				la, lb = tensor.RandomMatrix(3, 3, rng), tensor.RandomMatrix(3, 3, rng)
			}
			MulAB(p, la, lb)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	if clock(true) != clock(false) {
		t.Fatal("phantom and real Cannon must cost the same simulated time")
	}
}
