package vit

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"

	// TrainTesseract names the tesseract family, so this package links it;
	// other families register through the caller's imports.
	_ "repro/internal/tesseract"
)

// TrainConfig controls a Figure 7 training run. The paper uses Adam with
// learning rate 0.003 and weight decay 0.3 for 300 epochs on ImageNet-100;
// our synthetic task converges in a handful of epochs, so the defaults are
// scaled down while keeping the optimiser settings.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	WeightDecay float64
	Seed        uint64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.LR == 0 {
		c.LR = 0.003
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// History records one curve of Figure 7.
type History struct {
	Setting  string
	Loss     []float64 // mean training loss per epoch
	TrainAcc []float64
	TestAcc  []float64
}

// epochOrder returns the deterministic sample order for one epoch; serial
// and distributed runs share it so their curves are directly comparable.
func epochOrder(n int, epoch int, seed uint64) []int {
	rng := tensor.NewRNG(seed + uint64(epoch)*1000003)
	return rng.Perm(n)
}

// TrainSerial trains the reference model and returns its curve.
func TrainSerial(ds *Dataset, mcfg ModelConfig, tc TrainConfig) History {
	tc = tc.withDefaults()
	model := NewModel(mcfg)
	opt := nn.NewAdam(tc.LR, tc.WeightDecay)
	params := model.Params()
	hist := History{Setting: "serial"}
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		order := epochOrder(len(ds.Train), epoch, tc.Seed)
		var lossSum float64
		var correct, seen int
		for start := 0; start+tc.BatchSize <= len(order); start += tc.BatchSize {
			x, labels := ds.Batch(ds.Train, order[start:start+tc.BatchSize])
			logits := model.Forward(x)
			loss, dlogits := nn.CrossEntropy(logits, labels)
			lossSum += loss
			correct += nn.CorrectCount(logits, labels)
			seen += len(labels)
			for _, p := range params {
				p.ZeroGrad()
			}
			model.Backward(dlogits)
			opt.Step(params)
		}
		steps := len(order) / tc.BatchSize
		hist.Loss = append(hist.Loss, lossSum/float64(steps))
		hist.TrainAcc = append(hist.TrainAcc, float64(correct)/float64(seen))
		hist.TestAcc = append(hist.TestAcc, evalSerial(model, ds, tc.BatchSize))
	}
	return hist
}

func evalSerial(model *Model, ds *Dataset, batch int) float64 {
	n := len(ds.Test)
	if n == 0 {
		return 0
	}
	correct := 0
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n // final partial batch: evaluate the tail instead of dropping it
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, labels := ds.Batch(ds.Test, idx)
		logits := model.Forward(x)
		correct += nn.CorrectCount(logits, labels)
	}
	return float64(correct) / float64(n)
}

// TrainLayout trains the same model under any registered tensor-parallel
// family and returns its curve. With the same dataset, seeds and optimiser
// the curve must coincide with TrainSerial's up to floating-point reduction
// order — the Figure 7 claim, now checkable for every family.
func TrainLayout(l parallel.Layout, ds *Dataset, mcfg ModelConfig, tc TrainConfig) (History, error) {
	tc = tc.withDefaults()
	l, err := parallel.Validate(l)
	if err != nil {
		return History{}, err
	}
	if tc.BatchSize%l.RowShards() != 0 {
		return History{}, fmt.Errorf("vit: batch %d not divisible by %s's %d row shards", tc.BatchSize, l, l.RowShards())
	}
	c := dist.New(dist.Config{WorldSize: l.Ranks})
	hist := History{Setting: l.String()}
	s := mcfg.SeqLen
	err = c.Run(func(w *dist.Worker) error {
		f, err := parallel.New(w, l)
		if err != nil {
			return err
		}
		model := NewDistModel(f, mcfg)
		opt := nn.NewAdam(tc.LR, tc.WeightDecay)
		params := model.Params()
		for epoch := 0; epoch < tc.Epochs; epoch++ {
			order := epochOrder(len(ds.Train), epoch, tc.Seed)
			var lossSum float64
			var correct, seen int
			for start := 0; start+tc.BatchSize <= len(order); start += tc.BatchSize {
				x, labels := ds.Batch(ds.Train, order[start:start+tc.BatchSize])
				logits := model.Forward(DistributeBatch(f, x, s))
				dlogits := w.Workspace().GetUninitMatch(logits.Rows, logits.Cols, logits.Phantom())
				loss := nn.CrossEntropyInto(dlogits, logits, labels)
				lossSum += loss
				correct += nn.CorrectCount(logits, labels)
				seen += len(labels)
				for _, pa := range params {
					pa.ZeroGrad()
				}
				model.Backward(dlogits)
				opt.Step(params)
				f.EndStep() // step boundary: recycle every activation and scratch buffer
			}
			if w.Rank() == 0 {
				steps := len(order) / tc.BatchSize
				hist.Loss = append(hist.Loss, lossSum/float64(steps))
				hist.TrainAcc = append(hist.TrainAcc, float64(correct)/float64(seen))
			}
			acc := evalDist(f, model, ds, tc.BatchSize, s)
			if w.Rank() == 0 {
				hist.TestAcc = append(hist.TestAcc, acc)
			}
		}
		return nil
	})
	if err != nil {
		return History{}, err
	}
	return hist, nil
}

// TrainTesseract trains under a [q, q, d] Tesseract mesh — the Figure 7
// configuration, kept as a convenience over TrainLayout.
func TrainTesseract(q, d int, ds *Dataset, mcfg ModelConfig, tc TrainConfig) (History, error) {
	return TrainLayout(parallel.Layout{Family: "tesseract", Q: q, D: d}, ds, mcfg, tc)
}

// evalDist computes test accuracy on every rank (the forward pass is
// collective). The final partial batch is padded up to the family's row
// divisibility unit by repeating the first tail sample — per-sample logits
// are independent, so padding rows cannot perturb real rows — and only the
// real labels are counted.
func evalDist(f parallel.Family, model *DistModel, ds *Dataset, batch, s int) float64 {
	n := len(ds.Test)
	if n == 0 {
		return 0
	}
	correct := 0
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		logits := evalForward(f, model, ds, idx, s)
		labels := make([]int, len(idx))
		for i, j := range idx {
			labels[i] = ds.Test[j].Label
		}
		correct += nn.CorrectCount(logits, labels)
		f.EndStep() // eval step boundary: the logits row counts are consumed
	}
	return float64(correct) / float64(n)
}

// evalForward is the trainer's one eval forward: the test rows idx, padded
// up to the family's row divisibility unit by repeating the first sample —
// per-sample logits are independent, so padding rows cannot perturb real
// rows. It returns the replicated logits; rows past len(idx) are padding
// and must be discarded. The caller owns the step boundary (Family.EndStep)
// once it is done with the logits.
func evalForward(f parallel.Family, model *DistModel, ds *Dataset, idx []int, s int) *tensor.Matrix {
	unit := f.RowShards()
	padded := (len(idx) + unit - 1) / unit * unit
	pidx := make([]int, padded)
	copy(pidx, idx)
	for i := len(idx); i < padded; i++ {
		pidx[i] = idx[0] // padding; its predictions are discarded by the caller
	}
	x, _ := ds.Batch(ds.Test, pidx)
	return model.Forward(DistributeBatch(f, x, s))
}
