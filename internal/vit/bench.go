package vit

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/tesseract"
)

// StepBencher drives repeated training steps of the distributed ViT on one
// persistent [q, q, d] cluster, so benchmarks and leak tests can separate
// model construction and warm-up from the steady-state step they measure.
// The same fixed batch is used for every step.
type StepBencher struct {
	c      *dist.Cluster
	procs  []*tesseract.Proc
	models []*DistModel
	opts   []*nn.Adam

	x      *tensor.Matrix
	labels []int
	s      int
}

// NewStepBencher builds the cluster, the per-rank models and optimisers, and
// runs warmup steps so pools, caches and optimiser state reach steady state.
func NewStepBencher(q, d int, ds *Dataset, mcfg ModelConfig, tc TrainConfig, warmup int) (*StepBencher, error) {
	tc = tc.withDefaults()
	if tc.BatchSize%(q*d) != 0 {
		return nil, fmt.Errorf("vit: batch %d not divisible by d*q = %d", tc.BatchSize, q*d)
	}
	world := q * q * d
	sb := &StepBencher{
		c:      dist.New(dist.Config{WorldSize: world}),
		procs:  make([]*tesseract.Proc, world),
		models: make([]*DistModel, world),
		opts:   make([]*nn.Adam, world),
		s:      mcfg.SeqLen,
	}
	idx := make([]int, tc.BatchSize)
	for i := range idx {
		idx[i] = i % len(ds.Train)
	}
	sb.x, sb.labels = ds.Batch(ds.Train, idx)
	err := sb.c.Run(func(w *dist.Worker) error {
		p := tesseract.NewProc(w, q, d)
		sb.procs[w.Rank()] = p
		sb.models[w.Rank()] = NewDistModel(p, mcfg)
		sb.opts[w.Rank()] = nn.NewAdam(tc.LR, tc.WeightDecay)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if warmup > 0 {
		if err := sb.Steps(warmup); err != nil {
			return nil, err
		}
	}
	return sb, nil
}

// Steps runs n full training steps (forward, loss, backward, optimiser
// update, workspace release) on every rank within a single cluster run.
func (sb *StepBencher) Steps(n int) error {
	return sb.c.Run(func(w *dist.Worker) error {
		p := sb.procs[w.Rank()]
		model := sb.models[w.Rank()]
		opt := sb.opts[w.Rank()]
		params := model.Params()
		ws := w.Workspace()
		for i := 0; i < n; i++ {
			logits := model.Forward(p, DistributeBatch(p, sb.x, sb.s))
			_, dl := nn.CrossEntropy(logits, sb.labels)
			for _, pa := range params {
				pa.ZeroGrad()
			}
			model.Backward(p, dl)
			opt.Step(params)
			ws.ReleaseAll()
		}
		return nil
	})
}

// SetPooling toggles workspace recycling on every rank — the switch the
// bitwise property tests use to compare the pooled path against the plain
// allocating path on identical models.
func (sb *StepBencher) SetPooling(enabled bool) error {
	return sb.c.Run(func(w *dist.Worker) error {
		w.Workspace().SetPooling(enabled)
		return nil
	})
}

// WorkspaceStats snapshots every rank's pool counters, indexed by rank.
func (sb *StepBencher) WorkspaceStats() ([]tensor.WorkspaceStats, error) {
	out := make([]tensor.WorkspaceStats, len(sb.models))
	err := sb.c.Run(func(w *dist.Worker) error {
		out[w.Rank()] = w.Workspace().Stats()
		return nil
	})
	return out, err
}

// Model returns rank r's model, letting tests inspect parameter values.
func (sb *StepBencher) Model(r int) *DistModel { return sb.models[r] }

// Overlap reports the cluster's hidden and total simulated communication
// seconds accumulated over the steps run so far — the overlap-frac metric
// the step benchmark publishes (hidden/total).
func (sb *StepBencher) Overlap() (hidden, total float64) { return sb.c.Overlap() }
