package vit

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// StepBencher drives repeated training steps of the distributed ViT on one
// persistent cluster under any registered family, so benchmarks and leak
// tests can separate model construction and warm-up from the steady-state
// step they measure. The same fixed batch is used for every step.
type StepBencher struct {
	c      *dist.Cluster
	fams   []parallel.Family
	models []*DistModel
	opts   []*nn.Adam

	x      *tensor.Matrix
	labels []int
	s      int

	ds    *Dataset
	tc    TrainConfig
	steps int // trainer-path steps taken so far (TrainSteps indices)
}

// NewStepBencher builds the cluster, the per-rank models and optimisers, and
// runs warmup steps so pools, caches and optimiser state reach steady state.
func NewStepBencher(l parallel.Layout, ds *Dataset, mcfg ModelConfig, tc TrainConfig, warmup int) (*StepBencher, error) {
	tc = tc.withDefaults()
	l, err := parallel.Validate(l)
	if err != nil {
		return nil, err
	}
	if tc.BatchSize%l.RowShards() != 0 {
		return nil, fmt.Errorf("vit: batch %d not divisible by %s's %d row shards", tc.BatchSize, l, l.RowShards())
	}
	world := l.Ranks
	sb := &StepBencher{
		c:      dist.New(dist.Config{WorldSize: world}),
		fams:   make([]parallel.Family, world),
		models: make([]*DistModel, world),
		opts:   make([]*nn.Adam, world),
		s:      mcfg.SeqLen,
		ds:     ds,
		tc:     tc,
	}
	idx := make([]int, tc.BatchSize)
	for i := range idx {
		idx[i] = i % len(ds.Train)
	}
	sb.x, sb.labels = ds.Batch(ds.Train, idx)
	err = sb.c.Run(func(w *dist.Worker) error {
		f, err := parallel.New(w, l)
		if err != nil {
			return err
		}
		sb.fams[w.Rank()] = f
		sb.models[w.Rank()] = NewDistModel(f, mcfg)
		sb.opts[w.Rank()] = nn.NewAdam(tc.LR, tc.WeightDecay)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if warmup > 0 {
		if err := sb.Steps(warmup); err != nil {
			return nil, err
		}
	}
	return sb, nil
}

// Cluster exposes the persistent cluster for clock, stats and per-rank
// workspace inspection between step batches.
func (sb *StepBencher) Cluster() *dist.Cluster { return sb.c }

// Steps runs n full training steps (forward, loss, backward, optimiser
// update, workspace release) on every rank within a single cluster run.
func (sb *StepBencher) Steps(n int) error {
	return sb.c.Run(func(w *dist.Worker) error {
		f := sb.fams[w.Rank()]
		model := sb.models[w.Rank()]
		opt := sb.opts[w.Rank()]
		params := model.Params()
		for i := 0; i < n; i++ {
			logits := model.Forward(DistributeBatch(f, sb.x, sb.s))
			dl := w.Workspace().GetUninitMatch(logits.Rows, logits.Cols, logits.Phantom())
			nn.CrossEntropyInto(dl, logits, sb.labels)
			for _, pa := range params {
				pa.ZeroGrad()
			}
			model.Backward(dl)
			opt.Step(params)
			f.EndStep()
		}
		return nil
	})
}

// TrainSteps advances every rank n steps down the trainer's exact step path
// (epoch-shuffled batches, flat step indices continuing across calls) — the
// reference the serving runtime's TrainSteps is compared against bitwise.
func (sb *StepBencher) TrainSteps(n int) error {
	start := sb.steps
	err := sb.c.Run(func(w *dist.Worker) error {
		r := w.Rank()
		for step := start; step < start+n; step++ {
			trainStep(w, sb.fams[r], sb.models[r], sb.opts[r], sb.ds, sb.tc, sb.s, step)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sb.steps += n
	return nil
}

// EvalLogits runs the trainer's eval forward (evalDist's padded per-batch
// body) over the given test rows and returns a copy of the replicated
// logits for the real rows — what the trainer would classify these samples
// as, bit for bit.
func (sb *StepBencher) EvalLogits(idx []int) (*tensor.Matrix, error) {
	var out *tensor.Matrix
	err := sb.c.Run(func(w *dist.Worker) error {
		r := w.Rank()
		logits := evalForward(sb.fams[r], sb.models[r], sb.ds, idx, sb.s)
		if r == 0 {
			out = tensor.New(len(idx), logits.Cols)
			tensor.SubMatrixInto(out, logits, 0, 0)
		}
		sb.fams[r].EndStep()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StepsCheckpointed runs n training steps with a checkpoint collected after
// every one — the elastic steady state the allocation tests and
// BenchmarkReshard measure. cks must have one (possibly nil) slot per rank;
// the checkpoints are built on first use and reused (and returned) so the
// steady state allocates nothing.
func (sb *StepBencher) StepsCheckpointed(n int, cks []*parallel.Checkpoint) error {
	return sb.c.Run(func(w *dist.Worker) error {
		f := sb.fams[w.Rank()]
		model := sb.models[w.Rank()]
		opt := sb.opts[w.Rank()]
		params := model.Params()
		for i := 0; i < n; i++ {
			logits := model.Forward(DistributeBatch(f, sb.x, sb.s))
			dl := w.Workspace().GetUninitMatch(logits.Rows, logits.Cols, logits.Phantom())
			nn.CrossEntropyInto(dl, logits, sb.labels)
			for _, pa := range params {
				pa.ZeroGrad()
			}
			model.Backward(dl)
			opt.Step(params)
			f.EndStep()
			ck, err := parallel.CollectInto(cks[w.Rank()], f, model, opt)
			if err != nil {
				return err
			}
			cks[w.Rank()] = ck
		}
		return nil
	})
}

// Restore re-shards a checkpoint onto every rank's model and optimiser —
// the same-layout restore path, used to measure re-shard cost against step
// cost on one persistent cluster.
func (sb *StepBencher) Restore(ck *parallel.Checkpoint) error {
	return sb.c.Run(func(w *dist.Worker) error {
		return parallel.Restore(sb.fams[w.Rank()], sb.models[w.Rank()], sb.opts[w.Rank()], ck)
	})
}

// MaxClock exposes the cluster's largest simulated clock, and ResetClocks
// starts a fresh timing window — the pair benchmarks use to attribute
// simulated seconds to step, collect and restore phases separately.
func (sb *StepBencher) MaxClock() float64 { return sb.c.MaxClock() }

// ResetClocks zeroes the simulated clocks between phases.
func (sb *StepBencher) ResetClocks() { sb.c.ResetClocks() }

// SetPooling toggles workspace recycling on every rank — the switch the
// bitwise property tests use to compare the pooled path against the plain
// allocating path on identical models.
func (sb *StepBencher) SetPooling(enabled bool) error {
	return sb.c.Run(func(w *dist.Worker) error {
		w.Workspace().SetPooling(enabled)
		return nil
	})
}

// WorkspaceStats snapshots every rank's pool counters, indexed by rank.
func (sb *StepBencher) WorkspaceStats() ([]tensor.WorkspaceStats, error) {
	out := make([]tensor.WorkspaceStats, len(sb.models))
	err := sb.c.Run(func(w *dist.Worker) error {
		out[w.Rank()] = w.Workspace().Stats()
		return nil
	})
	return out, err
}

// Model returns rank r's model, letting tests inspect parameter values.
func (sb *StepBencher) Model(r int) *DistModel { return sb.models[r] }

// Overlap reports the cluster's hidden and total simulated communication
// seconds accumulated over the steps run so far — the overlap-frac metric
// the step benchmark publishes (hidden/total).
func (sb *StepBencher) Overlap() (hidden, total float64) { return sb.c.Overlap() }
