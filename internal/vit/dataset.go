// Package vit implements the Vision Transformer experiment of §4.3 /
// Figure 7: a ViT trained serially and under Tesseract [2,2,1] and [2,2,2],
// demonstrating that the parallelisation changes nothing about convergence.
//
// The paper trains on ImageNet-100; that dataset is not available here, so
// (per the reproduction rules) we substitute a synthetic 100-class image
// dataset: every class has a smooth random prototype image and samples are
// prototype + pixel noise. The task is learnable by a small ViT in a few
// epochs and exercises exactly the code path under study — patch embedding,
// Transformer encoder, classification head, cross-entropy and Adam, all
// distributed with Tesseract. Figure 7's claim is about the *equality of
// curves* across parallelisation settings, which the substitution preserves.
package vit

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// DataConfig describes the synthetic image dataset.
type DataConfig struct {
	Classes   int // number of classes (100 for the Figure 7 scale)
	ImageSize int // square image side in pixels
	Channels  int // colour channels
	PatchSize int // square patch side; must divide ImageSize
	Train     int // training samples per class
	Test      int // test samples per class
	Noise     float64
	Seed      uint64
}

func (c DataConfig) withDefaults() DataConfig {
	if c.Classes == 0 {
		c.Classes = 100
	}
	if c.ImageSize == 0 {
		c.ImageSize = 32
	}
	if c.Channels == 0 {
		c.Channels = 3
	}
	if c.PatchSize == 0 {
		c.PatchSize = 4
	}
	if c.Train == 0 {
		c.Train = 20
	}
	if c.Test == 0 {
		c.Test = 5
	}
	if c.Noise == 0 {
		c.Noise = 0.8
	}
	if c.Seed == 0 {
		c.Seed = 2022
	}
	return c
}

// Patches returns the number of patches per image (the sequence length s).
func (c DataConfig) Patches() int {
	side := c.ImageSize / c.PatchSize
	return side * side
}

// PatchDim returns the flattened patch width (the ViT input width).
func (c DataConfig) PatchDim() int { return c.PatchSize * c.PatchSize * c.Channels }

// Sample is one image, already cut into flattened patches.
type Sample struct {
	// Patches has shape [s, patchDim].
	Patches *tensor.Matrix
	Label   int
}

// Dataset is a fixed, deterministic synthetic image classification set.
type Dataset struct {
	Config      DataConfig
	Train, Test []Sample
}

// NewDataset generates the dataset deterministically from the seed.
func NewDataset(cfg DataConfig) *Dataset {
	cfg = cfg.withDefaults()
	if cfg.ImageSize%cfg.PatchSize != 0 {
		panic(fmt.Sprintf("vit: patch %d does not divide image %d", cfg.PatchSize, cfg.ImageSize))
	}
	rng := tensor.NewRNG(cfg.Seed)
	pixels := cfg.ImageSize * cfg.ImageSize * cfg.Channels

	// Class prototypes: low-frequency random patterns so classes are
	// separable but overlapping under noise.
	protos := make([]*tensor.Matrix, cfg.Classes)
	for c := range protos {
		protos[c] = smoothPattern(cfg, rng)
	}

	ds := &Dataset{Config: cfg}
	gen := func(n int) []Sample {
		out := make([]Sample, 0, n*cfg.Classes)
		for c := 0; c < cfg.Classes; c++ {
			for i := 0; i < n; i++ {
				img := protos[c].Clone()
				for j := 0; j < pixels; j++ {
					img.Data[j] += cfg.Noise * rng.Normal()
				}
				out = append(out, Sample{Patches: toPatches(cfg, img), Label: c})
			}
		}
		return out
	}
	ds.Train = gen(cfg.Train)
	ds.Test = gen(cfg.Test)
	return ds
}

// smoothPattern builds a [1, pixels] low-frequency image.
func smoothPattern(cfg DataConfig, rng *tensor.RNG) *tensor.Matrix {
	n := cfg.ImageSize
	img := tensor.New(1, n*n*cfg.Channels)
	// A few random 2-D cosine modes per channel.
	for ch := 0; ch < cfg.Channels; ch++ {
		fx := 1 + rng.Intn(3)
		fy := 1 + rng.Intn(3)
		px := rng.Float64() * 2 * math.Pi
		py := rng.Float64() * 2 * math.Pi
		amp := 0.5 + rng.Float64()
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := amp * math.Cos(float64(fx)*float64(x)/float64(n)*2*math.Pi+px) *
					math.Cos(float64(fy)*float64(y)/float64(n)*2*math.Pi+py)
				img.Data[(y*n+x)*cfg.Channels+ch] = v
			}
		}
	}
	return img
}

// toPatches cuts a flat image into [s, patchDim] row-major patches.
func toPatches(cfg DataConfig, img *tensor.Matrix) *tensor.Matrix {
	n, ps, ch := cfg.ImageSize, cfg.PatchSize, cfg.Channels
	side := n / ps
	out := tensor.New(side*side, cfg.PatchDim())
	for py := 0; py < side; py++ {
		for px := 0; px < side; px++ {
			row := py*side + px
			idx := 0
			for y := py * ps; y < (py+1)*ps; y++ {
				for x := px * ps; x < (px+1)*ps; x++ {
					for c := 0; c < ch; c++ {
						out.Set(row, idx, img.Data[(y*n+x)*ch+c])
						idx++
					}
				}
			}
		}
	}
	return out
}

// Batch assembles samples idx into a token matrix [len(idx)·s, patchDim]
// plus labels, the layout the ViT forward pass consumes.
func (d *Dataset) Batch(samples []Sample, idx []int) (*tensor.Matrix, []int) {
	s := d.Config.Patches()
	x := tensor.New(len(idx)*s, d.Config.PatchDim())
	labels := make([]int, len(idx))
	for i, j := range idx {
		x.SetSubMatrix(i*s, 0, samples[j].Patches)
		labels[i] = samples[j].Label
	}
	return x, labels
}
