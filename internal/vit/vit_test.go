package vit

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/tesseract"
	"repro/internal/testutil"
)

func tinyData() (*Dataset, ModelConfig) {
	dcfg := DataConfig{
		Classes: 4, ImageSize: 8, Channels: 3, PatchSize: 4,
		Train: 8, Test: 4, Noise: 0.3, Seed: 11,
	}
	ds := NewDataset(dcfg)
	mcfg := ModelConfig{
		PatchDim: dcfg.PatchDim(), // 48
		SeqLen:   dcfg.Patches(),  // 4
		Hidden:   16,
		Heads:    4,
		Layers:   2,
		Classes:  dcfg.Classes,
		Seed:     3,
	}
	return ds, mcfg
}

func TestDatasetShapes(t *testing.T) {
	ds, _ := tinyData()
	if len(ds.Train) != 4*8 || len(ds.Test) != 4*4 {
		t.Fatalf("dataset sizes train=%d test=%d", len(ds.Train), len(ds.Test))
	}
	s := ds.Config.Patches()
	if s != 4 || ds.Config.PatchDim() != 48 {
		t.Fatalf("patches=%d patchdim=%d", s, ds.Config.PatchDim())
	}
	for _, smp := range ds.Train[:3] {
		if smp.Patches.Rows != s || smp.Patches.Cols != 48 {
			t.Fatalf("sample shape %dx%d", smp.Patches.Rows, smp.Patches.Cols)
		}
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a, _ := tinyData()
	b, _ := tinyData()
	if a.Train[5].Label != b.Train[5].Label {
		t.Fatal("labels differ across identical seeds")
	}
	if a.Train[5].Patches.MaxAbsDiff(b.Train[5].Patches) != 0 {
		t.Fatal("pixels differ across identical seeds")
	}
}

func TestDatasetClassesAreSeparable(t *testing.T) {
	// A nearest-prototype classifier on the noiseless class means must
	// beat chance comfortably, otherwise Figure 7 training is meaningless.
	ds, _ := tinyData()
	protos := make([]*tensor.Matrix, ds.Config.Classes)
	counts := make([]int, ds.Config.Classes)
	for _, smp := range ds.Train {
		if protos[smp.Label] == nil {
			protos[smp.Label] = tensor.New(smp.Patches.Rows, smp.Patches.Cols)
		}
		tensor.AddInPlace(protos[smp.Label], smp.Patches)
		counts[smp.Label]++
	}
	for c := range protos {
		tensor.ScaleInPlace(protos[c], 1/float64(counts[c]))
	}
	correct := 0
	for _, smp := range ds.Test {
		best, arg := math.Inf(1), -1
		for c, proto := range protos {
			d := tensor.Frobenius(tensor.Sub(smp.Patches, proto))
			if d < best {
				best, arg = d, c
			}
		}
		if arg == smp.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(len(ds.Test))
	if acc < 0.7 {
		t.Fatalf("prototype classifier accuracy %.2f — dataset not separable", acc)
	}
}

func TestBatchLayout(t *testing.T) {
	ds, _ := tinyData()
	x, labels := ds.Batch(ds.Train, []int{0, 9})
	if x.Rows != 2*ds.Config.Patches() || x.Cols != ds.Config.PatchDim() {
		t.Fatalf("batch shape %dx%d", x.Rows, x.Cols)
	}
	if labels[0] != ds.Train[0].Label || labels[1] != ds.Train[9].Label {
		t.Fatal("batch labels wrong")
	}
	if x.SubMatrix(4, 0, 4, 48).MaxAbsDiff(ds.Train[9].Patches) != 0 {
		t.Fatal("second sequence should be sample 9")
	}
}

func TestSerialForwardShapesAndBackward(t *testing.T) {
	ds, mcfg := tinyData()
	model := NewModel(mcfg)
	x, labels := ds.Batch(ds.Train, []int{0, 1, 2, 3})
	logits := model.Forward(x)
	if logits.Rows != 4 || logits.Cols != mcfg.Classes {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
	loss, dlogits := nn.CrossEntropy(logits, labels)
	if loss <= 0 {
		t.Fatalf("initial loss %g", loss)
	}
	for _, p := range model.Params() {
		p.ZeroGrad()
	}
	model.Backward(dlogits)
	// Every parameter must receive some gradient signal.
	var zero int
	for _, p := range model.Params() {
		if tensor.Frobenius(p.Grad) == 0 {
			zero++
		}
	}
	if zero > 0 {
		t.Fatalf("%d parameters got zero gradient", zero)
	}
}

func TestMeanPoolRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(5)
	h := tensor.RandomMatrix(8, 6, rng) // 2 sequences of 4
	pooled := meanPool(h, 4)
	if pooled.Rows != 2 {
		t.Fatalf("pooled rows %d", pooled.Rows)
	}
	var want float64
	for tk := 0; tk < 4; tk++ {
		want += h.At(tk, 0)
	}
	want /= 4
	if math.Abs(pooled.At(0, 0)-want) > 1e-12 {
		t.Fatalf("pooled value %g want %g", pooled.At(0, 0), want)
	}
	// Backward: d(pooled)/dh is uniform 1/s.
	back := meanPoolBackward(pooled, 4)
	if back.Rows != 8 || math.Abs(back.At(3, 0)-pooled.At(0, 0)/4) > 1e-12 {
		t.Fatal("meanPoolBackward wrong")
	}
}

func TestDistForwardMatchesSerial(t *testing.T) {
	ds, mcfg := tinyData()
	serial := NewModel(mcfg)
	x, _ := ds.Batch(ds.Train, []int{0, 1, 2, 3, 4, 5, 6, 7})
	want := serial.Forward(x)

	for _, shape := range []struct{ q, d int }{{2, 1}, {2, 2}} {
		results := testutil.NewCollector()
		testutil.Run(t, shape.q*shape.q*shape.d, func(w *dist.Worker) error {
			f := tesseract.NewFamily(w, shape.q, shape.d)
			model := NewDistModel(f, mcfg)
			logits := model.Forward(DistributeBatch(f, x, mcfg.SeqLen))
			results.Put(w.Rank(), logits)
			return nil
		})
		world := shape.q * shape.q * shape.d
		for r := 0; r < world; r++ {
			testutil.CheckClose(t, "logits", results.Get(r), want, 1e-8)
		}
	}
}

func TestDistBackwardMatchesSerialGrads(t *testing.T) {
	ds, mcfg := tinyData()
	serial := NewModel(mcfg)
	x, labels := ds.Batch(ds.Train, []int{0, 1, 2, 3, 4, 5, 6, 7})
	logits := serial.Forward(x)
	_, dlogits := nn.CrossEntropy(logits, labels)
	for _, p := range serial.Params() {
		p.ZeroGrad()
	}
	serial.Backward(dlogits)

	headGrads := testutil.NewCollector()
	testutil.Run(t, 8, func(w *dist.Worker) error {
		f := tesseract.NewFamily(w, 2, 2)
		model := NewDistModel(f, mcfg)
		lg := model.Forward(DistributeBatch(f, x, mcfg.SeqLen))
		_, dl := nn.CrossEntropy(lg, labels)
		for _, pa := range model.Params() {
			pa.ZeroGrad()
		}
		model.Backward(dl)
		headGrads.Put(w.Rank(), model.Head.W.Grad)
		return nil
	})
	for r := 0; r < 8; r++ {
		testutil.CheckClose(t, "head dW", headGrads.Get(r), serial.Head.W.Grad, 1e-8)
	}
}

func TestFigure7CurvesCoincide(t *testing.T) {
	// The paper's Figure 7: the serial, [2,2,1] and [2,2,2] training curves
	// are indistinguishable because Tesseract introduces no approximation.
	ds, mcfg := tinyData()
	tc := TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.003, WeightDecay: 0.3, Seed: 5}
	serial := TrainSerial(ds, mcfg, tc)
	for _, shape := range []struct{ q, d int }{{2, 1}, {2, 2}} {
		hist, err := TrainTesseract(shape.q, shape.d, ds, mcfg, tc)
		if err != nil {
			t.Fatal(err)
		}
		for e := range serial.Loss {
			if math.Abs(hist.Loss[e]-serial.Loss[e]) > 1e-6 {
				t.Fatalf("%s epoch %d loss %g vs serial %g", hist.Setting, e, hist.Loss[e], serial.Loss[e])
			}
			if hist.TrainAcc[e] != serial.TrainAcc[e] {
				t.Fatalf("%s epoch %d train acc %g vs serial %g", hist.Setting, e, hist.TrainAcc[e], serial.TrainAcc[e])
			}
			if hist.TestAcc[e] != serial.TestAcc[e] {
				t.Fatalf("%s epoch %d test acc %g vs serial %g", hist.Setting, e, hist.TestAcc[e], serial.TestAcc[e])
			}
		}
	}
}

func TestTrainingLearns(t *testing.T) {
	ds, mcfg := tinyData()
	tc := TrainConfig{Epochs: 6, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 5}
	hist := TrainSerial(ds, mcfg, tc)
	first, last := hist.Loss[0], hist.Loss[len(hist.Loss)-1]
	if last >= first {
		t.Fatalf("loss did not fall: %g -> %g", first, last)
	}
	if hist.TestAcc[len(hist.TestAcc)-1] < 0.5 {
		t.Fatalf("test accuracy %.2f too low after training (chance is 0.25)", hist.TestAcc[len(hist.TestAcc)-1])
	}
}

func TestPositionalEncodingProperties(t *testing.T) {
	cfg := ModelConfig{SeqLen: 8, Hidden: 16}
	pos := cfg.Positional()
	if pos.Rows != 8 || pos.Cols != 16 {
		t.Fatalf("positional shape %dx%d", pos.Rows, pos.Cols)
	}
	// Position 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
	for j := 0; j < 16; j += 2 {
		if pos.At(0, j) != 0 || pos.At(0, j+1) != 1 {
			t.Fatalf("position 0 encoding wrong at dim %d", j)
		}
	}
	// Distinct positions get distinct encodings.
	if pos.SubMatrix(1, 0, 1, 16).MaxAbsDiff(pos.SubMatrix(2, 0, 1, 16)) == 0 {
		t.Fatal("positions 1 and 2 identical")
	}
}
