package vit

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// tess22 is the [2,2,2] layout the workspace tests exercise.
var tess22 = parallel.Layout{Family: "tesseract", Q: 2, D: 2}

// trainSteps drives n steps of the full distributed ViT through a
// StepBencher with pooling on or off and returns rank 0's final parameter
// values, deep-copied.
func trainSteps(t *testing.T, pooling bool, n int) []*tensor.Matrix {
	t.Helper()
	ds, mcfg := tinyData()
	tc := TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 5}
	sb, err := NewStepBencher(tess22, ds, mcfg, tc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.SetPooling(pooling); err != nil {
		t.Fatal(err)
	}
	if err := sb.Steps(n); err != nil {
		t.Fatal(err)
	}
	var out []*tensor.Matrix
	for _, pa := range sb.Model(0).Params() {
		out = append(out, pa.Value.Clone())
	}
	return out
}

// TestPooledTrainingBitwiseEqualsAllocating trains the whole distributed
// ViT — embedding, encoder stack, pooling, head, Adam — for several steps
// with and without workspace recycling and requires bit-identical final
// parameters: the end-to-end version of the block-level property.
func TestPooledTrainingBitwiseEqualsAllocating(t *testing.T) {
	pooled := trainSteps(t, true, 4)
	plain := trainSteps(t, false, 4)
	if len(pooled) != len(plain) {
		t.Fatalf("parameter count mismatch: %d vs %d", len(pooled), len(plain))
	}
	for i := range pooled {
		if !pooled[i].Equal(plain[i]) {
			t.Fatalf("parameter %d diverged bitwise between pooled and allocating training", i)
		}
	}
}

// TestTrainingWorkspaceHighWaterFlat asserts the ViT training step reaches
// an allocation fixed point: across steps 2…5 no worker's pool misses or
// high-water mark move, and nothing stays checked out past the step
// boundary.
func TestTrainingWorkspaceHighWaterFlat(t *testing.T) {
	ds, mcfg := tinyData()
	tc := TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 5}
	sb, err := NewStepBencher(tess22, ds, mcfg, tc, 2)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sb.WorkspaceStats()
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Steps(3); err != nil {
		t.Fatal(err)
	}
	after, err := sb.WorkspaceStats()
	if err != nil {
		t.Fatal(err)
	}
	for r := range warm {
		if after[r].Allocs != warm[r].Allocs {
			t.Fatalf("rank %d: steady-state steps allocated (%d -> %d pool misses)", r, warm[r].Allocs, after[r].Allocs)
		}
		if after[r].HighWater != warm[r].HighWater {
			t.Fatalf("rank %d: high-water mark moved (%d -> %d)", r, warm[r].HighWater, after[r].HighWater)
		}
		if after[r].Live != 0 {
			t.Fatalf("rank %d: %d buffers leaked past the step boundary", r, after[r].Live)
		}
	}
}
