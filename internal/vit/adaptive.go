package vit

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/plan"
)

// FaultyRun is the outcome of a TrainFaulty ride-out: the per-step loss
// curve, the total simulated seconds, and the traffic statistics. Because
// fault plans perturb only the simulated clock, Losses is bit-identical to
// an unperturbed run at the same layout — only Seconds grows.
type FaultyRun struct {
	Losses  []float64
	Seconds float64
	Stats   dist.Stats
}

// TrainFaulty trains at one fixed layout for a flat number of steps on a
// cluster with the given fault plan installed, riding out whatever the plan
// does. It is both the ride-it-out baseline the StragglerStudy prices
// TrainAdaptive against and — with a nil or empty plan — the unperturbed
// reference the zero-perturbation identity tests compare clocks and stats
// to bit-for-bit.
func TrainFaulty(l parallel.Layout, faults *dist.FaultPlan, cost dist.CostModel,
	ds *Dataset, mcfg ModelConfig, tc TrainConfig, total int) (*FaultyRun, error) {
	tc = tc.withDefaults()
	l, err := parallel.Validate(l)
	if err != nil {
		return nil, err
	}
	if tc.BatchSize%l.RowShards() != 0 {
		return nil, fmt.Errorf("vit: batch %d not divisible by %s's %d row shards", tc.BatchSize, l, l.RowShards())
	}
	c := dist.New(dist.Config{WorldSize: l.Ranks, Cost: cost, Faults: faults})
	run := &FaultyRun{Losses: make([]float64, total)}
	s := mcfg.SeqLen
	err = c.Run(func(w *dist.Worker) error {
		f, err := parallel.New(w, l)
		if err != nil {
			return err
		}
		model := NewDistModel(f, mcfg)
		opt := nn.NewAdam(tc.LR, tc.WeightDecay)
		for step := 0; step < total; step++ {
			loss := trainStep(w, f, model, opt, ds, tc, s, step)
			if w.Rank() == 0 {
				run.Losses[step] = loss
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	run.Seconds = c.MaxClock()
	run.Stats = c.Stats()
	return run, nil
}

// AdaptiveConfig controls a TrainAdaptive run: the fault schedule under
// test, the detector tuning, the replanner's candidates and machine, and
// the break-even policy.
type AdaptiveConfig struct {
	// TotalSteps is the run length (≥ 1).
	TotalSteps int
	// Probe is how many steps each watchdog window trains before the
	// monitor is consulted; detection and re-layout happen only at window
	// boundaries, where reading the telemetry is race-free. Zero means the
	// monitor's ring window.
	Probe int
	// Monitor tunes the straggler detector (zero fields take the
	// dist.MonitorConfig defaults: window 8, K 2, W 3).
	Monitor dist.MonitorConfig
	// Faults is the gray-failure schedule installed on the cluster; it
	// follows the healthy ranks through a re-layout via FaultPlan.Remap.
	// Nil runs clean (and the watchdog then never fires).
	Faults *dist.FaultPlan
	// Algos are the planner candidates a re-layout searches over.
	Algos []plan.Algo
	// Topology describes the machine as specced; on detection its cost
	// model is replaced by the monitor's measured EffectiveCost before
	// replanning. RankBudget is overwritten with the healthy count.
	Topology plan.Topology
	// ReshardSteps prices a checkpoint+reshard in healthy training steps —
	// BenchmarkReshard's reshard_cost_ratio is the measured value to pass.
	// A re-layout happens only when the modeled per-step gain over the
	// remaining steps pays this back. Zero means 10.
	ReshardSteps float64
	// MaxRelayouts bounds how many times the run may re-shard. Zero means 1.
	MaxRelayouts int
}

// AdaptiveRun is the outcome of one watchdog training run.
type AdaptiveRun struct {
	// From is the starting layout; To the layout the run finished at (equal
	// to From when it rode the degradation out or never detected one).
	From, To parallel.Layout
	// Losses is the full per-step loss curve: steps before RelayoutStep
	// trained at From, the rest at To.
	Losses []float64

	// DetectedStep is the global step count completed when the detector
	// first flagged a suspect (−1: never). Suspects are the flagged ranks.
	DetectedStep int
	Suspects     []int

	// RelayoutStep is the first step trained at To (−1 if the run never
	// re-laid-out). RodeOut reports that a degradation was detected but the
	// policy chose to stay, for RideOutReason.
	RelayoutStep  int
	RodeOut       bool
	RideOutReason string

	// HealthyStepSeconds is the measured per-step cost of the first
	// (assumed clean) window — the break-even yardstick. On detection,
	// DegradedStepSeconds is the measured per-step cost of the sick
	// cluster, and PredictedStepSeconds the modeled cost at To.
	HealthyStepSeconds   float64
	DegradedStepSeconds  float64
	PredictedStepSeconds float64

	// CollectSeconds and RestoreSeconds price the re-layout itself: the
	// checkpoint all-reduces on the degraded cluster and the re-shard
	// broadcasts on the healthy one. Zero when no re-layout happened.
	CollectSeconds, RestoreSeconds float64

	// TotalSeconds is the end-to-end simulated time: training, checkpoint,
	// re-shard and all — the number the StragglerStudy compares against the
	// ride-it-out baseline.
	TotalSeconds float64
}

// predictStep prices a layout's training step with the matching planner
// algo under a topology — the analytic half of the break-even policy.
func predictStep(algos []plan.Algo, wl plan.Workload, l parallel.Layout, t plan.Topology) (float64, error) {
	t.RankBudget = l.Ranks
	t, err := t.WithDefaults()
	if err != nil {
		return 0, err
	}
	g := plan.Grid{Ranks: l.Ranks, Q: l.Q, D: l.D}
	for _, a := range algos {
		if a.Family == l.Family {
			return a.Cost(wl, g, t).Step(), nil
		}
	}
	return 0, fmt.Errorf("vit: no planner algo prices family %q", l.Family)
}

// TrainAdaptive is the gray-failure watchdog loop: train in probe windows,
// read the monitor between them, and on sustained straggler detection
// checkpoint, replan over the healthy subset priced at the measured
// effective cost model, re-shard, and resume — but only when the modeled
// payback beats the re-shard bill; otherwise ride the degradation out.
//
// Because fault plans never touch arithmetic and checkpoint re-shards are
// bitwise, the returned loss curve matches an uninterrupted healthy run
// (at From before RelayoutStep, at To after) within the usual cross-layout
// 1e-8 reduction-order tolerance, whatever the plan did to the clock.
func TrainAdaptive(from parallel.Layout, cfg AdaptiveConfig, ds *Dataset, mcfg ModelConfig, tc TrainConfig) (*AdaptiveRun, error) {
	tc = tc.withDefaults()
	from, err := parallel.Validate(from)
	if err != nil {
		return nil, err
	}
	if cfg.TotalSteps < 1 {
		return nil, fmt.Errorf("vit: adaptive needs TotalSteps ≥ 1, got %d", cfg.TotalSteps)
	}
	if tc.BatchSize%from.RowShards() != 0 {
		return nil, fmt.Errorf("vit: batch %d not divisible by %s's %d row shards", tc.BatchSize, from, from.RowShards())
	}
	if len(cfg.Algos) == 0 {
		return nil, fmt.Errorf("vit: adaptive replan needs planner algos")
	}
	if cfg.ReshardSteps == 0 {
		cfg.ReshardSteps = 10
	}
	if cfg.MaxRelayouts == 0 {
		cfg.MaxRelayouts = 1
	}
	run := &AdaptiveRun{
		From: from, To: from,
		Losses:       make([]float64, cfg.TotalSteps),
		DetectedStep: -1, RelayoutStep: -1,
	}
	s := mcfg.SeqLen
	wl := plan.Workload{Batch: tc.BatchSize, SeqLen: mcfg.SeqLen, Hidden: mcfg.Hidden, Heads: mcfg.Heads, Layers: mcfg.Layers}

	newCluster := func(world int, faults *dist.FaultPlan) *dist.Cluster {
		return dist.New(dist.Config{
			WorldSize:   world,
			GPUsPerNode: cfg.Topology.GPUsPerNode,
			Cost:        cfg.Topology.Cost,
			Faults:      faults,
		})
	}
	buildFamilies := func(c *dist.Cluster, l parallel.Layout) ([]parallel.Family, []*DistModel, []*nn.Adam, error) {
		fams := make([]parallel.Family, l.Ranks)
		models := make([]*DistModel, l.Ranks)
		opts := make([]*nn.Adam, l.Ranks)
		err := c.Run(func(w *dist.Worker) error {
			r := w.Rank()
			if r >= l.Ranks {
				return nil // healthy but idle: the plan uses fewer ranks
			}
			f, err := parallel.New(w, l)
			if err != nil {
				return err
			}
			fams[r] = f
			models[r] = NewDistModel(f, mcfg)
			opts[r] = nn.NewAdam(tc.LR, tc.WeightDecay)
			return nil
		})
		return fams, models, opts, err
	}

	cur := from
	c := newCluster(from.Ranks, cfg.Faults)
	mon := c.AttachMonitor(cfg.Monitor)
	probe := cfg.Probe
	if probe <= 0 {
		probe = mon.Config().Window
	}
	fams, models, opts, err := buildFamilies(c, cur)
	if err != nil {
		return nil, err
	}

	step, relayouts := 0, 0
	for step < cfg.TotalSteps {
		n := probe
		if step+n > cfg.TotalSteps {
			n = cfg.TotalSteps - step
		}
		base := step
		err := c.Run(func(w *dist.Worker) error {
			r := w.Rank()
			if r >= cur.Ranks {
				return nil
			}
			for i := 0; i < n; i++ {
				loss := trainStep(w, fams[r], models[r], opts[r], ds, tc, s, base+i)
				if r == 0 {
					run.Losses[base+i] = loss
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		step += n

		// The watchdog reads the monitor only here, between cluster runs,
		// where the per-rank telemetry shards are quiescent.
		if !mon.Baselined() {
			mon.MarkBaseline()
			if run.HealthyStepSeconds == 0 {
				run.HealthyStepSeconds = mon.BaselineStepSeconds()
			}
			continue
		}
		if step >= cfg.TotalSteps || relayouts >= cfg.MaxRelayouts || cur.Ranks != c.WorldSize() {
			continue
		}
		suspects := mon.Suspects()
		if len(suspects) == 0 || len(suspects) >= cur.Ranks {
			continue
		}
		if run.DetectedStep < 0 {
			run.DetectedStep = step
			run.Suspects = suspects
		}

		// Demote the suspects: replan over the healthy subset, priced at
		// the cost model the monitor measured, not the one on the spec
		// sheet.
		sick := make(map[int]bool, len(suspects))
		for _, r := range suspects {
			sick[r] = true
		}
		healthy := make([]int, 0, cur.Ranks-len(suspects))
		for r := 0; r < cur.Ranks; r++ {
			if !sick[r] {
				healthy = append(healthy, r)
			}
		}
		topo := cfg.Topology
		topo.Cost = mon.EffectiveCost(cfg.Topology.Cost, healthy)
		best, err := plan.Replan(wl, topo, cfg.Algos, len(healthy), func(p plan.Plan) bool {
			return Trainable(p.Layout(), tc.BatchSize, mcfg)
		})
		if err != nil {
			var nf *plan.NoFeasibleError
			if errors.As(err, &nf) {
				// Nothing the healthy subset can run: ride the straggler
				// out at the current layout.
				run.RodeOut = true
				run.RideOutReason = fmt.Sprintf("no feasible layout on %d healthy ranks: %v", len(healthy), nf.Err)
				continue
			}
			return nil, err
		}
		to, err := parallel.Validate(best.Layout())
		if err != nil {
			return nil, err
		}

		// Break-even: estimate the per-step seconds the new layout would
		// run at by scaling the measured healthy baseline with the analytic
		// cost ratio, and re-layout only if the gain over the remaining
		// steps pays for the re-shard.
		degraded := mon.ClusterStepSeconds()
		run.DegradedStepSeconds = degraded
		// The current layout is priced under the spec-sheet cost (its
		// healthy baseline was measured on a healthy cluster); the candidate
		// under the measured effective cost of the ranks it would run on.
		predFrom, err := predictStep(cfg.Algos, wl, cur, cfg.Topology)
		if err != nil {
			return nil, err
		}
		predTo, err := predictStep(cfg.Algos, wl, to, topo)
		if err != nil {
			return nil, err
		}
		estNew := run.HealthyStepSeconds
		if predFrom > 0 {
			estNew = run.HealthyStepSeconds * predTo / predFrom
		}
		run.PredictedStepSeconds = estNew
		gain := degraded - estNew
		remaining := float64(cfg.TotalSteps - step)
		reshardBill := cfg.ReshardSteps * run.HealthyStepSeconds
		if gain <= 0 {
			run.RodeOut = true
			run.RideOutReason = fmt.Sprintf("%s on %d healthy ranks models %.3gs/step, no better than the degraded %.3gs",
				to, len(healthy), estNew, degraded)
			continue
		}
		if gain*remaining <= reshardBill {
			run.RodeOut = true
			run.RideOutReason = fmt.Sprintf("payback %.3gs over %d remaining steps does not cover the %.3gs re-shard",
				gain*remaining, int(remaining), reshardBill)
			continue
		}

		// Re-layout: checkpoint on the live (degraded) cluster, rebuild
		// over the healthy ranks, re-shard, resume. Every phase is charged
		// to the clock that TotalSeconds accumulates.
		pre := c.MaxClock()
		cks := make([]*parallel.Checkpoint, cur.Ranks)
		err = c.Run(func(w *dist.Worker) error {
			r := w.Rank()
			if r >= cur.Ranks {
				return nil
			}
			ck, err := parallel.Collect(fams[r], models[r], opts[r])
			cks[r] = ck
			return err
		})
		if err != nil {
			return nil, err
		}
		run.CollectSeconds = c.MaxClock() - pre
		run.TotalSeconds += c.MaxClock()

		c2 := newCluster(len(healthy), cfg.Faults.Remap(healthy))
		mon = c2.AttachMonitor(cfg.Monitor)
		fams, models, opts, err = buildFamilies(c2, to)
		if err != nil {
			return nil, err
		}
		pre = c2.MaxClock()
		err = c2.Run(func(w *dist.Worker) error {
			r := w.Rank()
			if r >= to.Ranks {
				return nil
			}
			return parallel.Reshard(fams[r], models[r], opts[r], cks[0])
		})
		if err != nil {
			return nil, err
		}
		run.RestoreSeconds = c2.MaxClock() - pre
		c, cur = c2, to
		run.To = to
		run.RelayoutStep = step
		run.RodeOut, run.RideOutReason = false, ""
		relayouts++
	}
	run.TotalSeconds += c.MaxClock()
	return run, nil
}
