package vit

import (
	"errors"
	"math"
	"testing"

	"repro/internal/parallel"
)

// TestCheckpointCorruptionDetected pins the integrity satellite: flip one
// mantissa bit in a collected checkpoint and the restore path must refuse
// it with ErrCheckpointCorrupt instead of silently training from garbage.
func TestCheckpointCorruptionDetected(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	sb, err := NewStepBencher(parallel.Layout{Family: "tesseract", Q: 2, D: 2}, ds, mcfg, tc, 1)
	if err != nil {
		t.Fatalf("NewStepBencher: %v", err)
	}
	cks := make([]*parallel.Checkpoint, 8)
	if err := sb.StepsCheckpointed(1, cks); err != nil {
		t.Fatalf("StepsCheckpointed: %v", err)
	}
	ck := cks[0]
	if err := ck.Verify(); err != nil {
		t.Fatalf("fresh checkpoint fails verification: %v", err)
	}

	// One flipped low mantissa bit in one weight of one slot.
	slot := len(ck.Slots) / 2
	row := ck.Slots[slot].Value.Row(0)
	orig := row[0]
	row[0] = math.Float64frombits(math.Float64bits(orig) ^ 1)
	if err := ck.Verify(); !errors.Is(err, parallel.ErrCheckpointCorrupt) {
		t.Fatalf("Verify missed the bit flip: %v", err)
	}

	// Repairing the bit clears the verdict (the clean restore round-trip
	// itself is pinned by TestRestoreBitwise).
	row[0] = orig
	if err := ck.Verify(); err != nil {
		t.Fatalf("repaired checkpoint fails verification: %v", err)
	}

	// Moment corruption is caught too, and a hand-built slot (Sum == 0)
	// is exempt from verification.
	mrow := ck.Slots[0].M.Row(0)
	morig := mrow[0]
	mrow[0] = math.Float64frombits(math.Float64bits(morig) ^ 1)
	if err := ck.Verify(); !errors.Is(err, parallel.ErrCheckpointCorrupt) {
		t.Fatalf("Verify missed the moment corruption: %v", err)
	}
	mrow[0] = morig
	ck.Slots[0].Sum = 0
	if err := ck.Verify(); err != nil {
		t.Fatalf("Verify checked a checksum-less slot: %v", err)
	}

	// Restore refuses the corrupt snapshot. Last, because the root's error
	// aborts the simulated cluster like a real node loss would.
	row[0] = math.Float64frombits(math.Float64bits(orig) ^ 1)
	if err := sb.Restore(ck); !errors.Is(err, parallel.ErrCheckpointCorrupt) {
		t.Fatalf("Restore accepted a corrupt checkpoint: %v", err)
	}
}
