package vit

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// ModelConfig describes the Vision Transformer architecture.
type ModelConfig struct {
	PatchDim int // flattened patch width (input)
	SeqLen   int // patches per image
	Hidden   int
	Heads    int
	Layers   int
	Classes  int
	Seed     uint64
}

// Positional returns the fixed sinusoidal positional encoding [SeqLen,
// Hidden]. It is deterministic (not learned), so the serial and distributed
// models share it exactly and it needs no gradient synchronisation.
func (c ModelConfig) Positional() *tensor.Matrix {
	p := tensor.New(c.SeqLen, c.Hidden)
	for pos := 0; pos < c.SeqLen; pos++ {
		for i := 0; i < c.Hidden; i++ {
			angle := float64(pos) / math.Pow(10000, float64(2*(i/2))/float64(c.Hidden))
			if i%2 == 0 {
				p.Set(pos, i, math.Sin(angle))
			} else {
				p.Set(pos, i, math.Cos(angle))
			}
		}
	}
	return p
}

// Model is the serial reference ViT: patch-embedding linear, sinusoidal
// positions, a stack of Transformer blocks, mean pooling over patches and a
// linear classification head.
type Model struct {
	Config ModelConfig

	Embed  *nn.Linear
	Pos    *tensor.Matrix
	Blocks []*nn.Block
	Head   *nn.Linear

	batch  int
	pooled *tensor.Matrix
}

// NewModel draws parameters from a SplitMix64 stream seeded with
// Config.Seed, in the fixed order Embed, Blocks..., Head — the distributed
// constructor consumes the identical stream.
func NewModel(cfg ModelConfig) *Model {
	rng := tensor.NewRNG(cfg.Seed)
	m := &Model{Config: cfg, Pos: cfg.Positional()}
	m.Embed = nn.NewLinear(cfg.PatchDim, cfg.Hidden, nn.ActNone, true, rng)
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks, nn.NewBlock(cfg.Hidden, cfg.Heads, cfg.SeqLen, rng))
	}
	m.Head = nn.NewLinear(cfg.Hidden, cfg.Classes, nn.ActNone, true, rng)
	return m
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	out := m.Embed.Params()
	for _, b := range m.Blocks {
		out = append(out, b.Params()...)
	}
	return append(out, m.Head.Params()...)
}

// Forward maps patch tokens [b·s, patchDim] to logits [b, classes].
func (m *Model) Forward(x *tensor.Matrix) *tensor.Matrix {
	s := m.Config.SeqLen
	m.batch = x.Rows / s
	h := m.Embed.Forward(x)
	h = addPositional(h, m.Pos)
	for _, b := range m.Blocks {
		h = b.Forward(h)
	}
	m.pooled = meanPool(h, s)
	return m.Head.Forward(m.pooled)
}

// Backward takes dLogits [b, classes] and propagates to the parameters.
func (m *Model) Backward(dlogits *tensor.Matrix) {
	dpooled := m.Head.Backward(dlogits)
	dh := meanPoolBackward(dpooled, m.Config.SeqLen)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dh = m.Blocks[i].Backward(dh)
	}
	m.Embed.Backward(dh) // positional encoding is fixed: gradient passes through
}

// addPositional adds pos (s×h) to every sequence of rows.
func addPositional(h, pos *tensor.Matrix) *tensor.Matrix {
	s := pos.Rows
	out := h.Clone()
	for r := 0; r < h.Rows; r++ {
		prow := pos.Row(r % s)
		orow := out.Row(r)
		for j := range orow {
			orow[j] += prow[j]
		}
	}
	return out
}

// meanPool averages each sequence's s token rows into one row.
func meanPool(h *tensor.Matrix, s int) *tensor.Matrix {
	out := tensor.New(h.Rows/s, h.Cols)
	meanPoolInto(out, h, s)
	return out
}

// meanPoolInto averages each sequence's s token rows into one row of out
// (shape [h.Rows/s, h.Cols], overwritten).
func meanPoolInto(out, h *tensor.Matrix, s int) {
	nseq := h.Rows / s
	inv := 1 / float64(s)
	for seq := 0; seq < nseq; seq++ {
		orow := out.Row(seq)
		for j := range orow {
			orow[j] = 0
		}
		for t := 0; t < s; t++ {
			row := h.Row(seq*s + t)
			for j := range orow {
				orow[j] += row[j] * inv
			}
		}
	}
}

// meanPoolBackward spreads each pooled gradient row back over its s tokens.
func meanPoolBackward(dpooled *tensor.Matrix, s int) *tensor.Matrix {
	out := tensor.New(dpooled.Rows*s, dpooled.Cols)
	meanPoolBackwardInto(out, dpooled, s)
	return out
}

// meanPoolBackwardInto spreads each pooled gradient row back over its s
// tokens of out (shape [dpooled.Rows·s, dpooled.Cols], overwritten).
func meanPoolBackwardInto(out, dpooled *tensor.Matrix, s int) {
	inv := 1 / float64(s)
	for seq := 0; seq < dpooled.Rows; seq++ {
		drow := dpooled.Row(seq)
		for t := 0; t < s; t++ {
			orow := out.Row(seq*s + t)
			for j := range orow {
				orow[j] = drow[j] * inv
			}
		}
	}
}
