package vit

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/parallel"
	"repro/internal/plan"
)

// computeBoundCost is a machine model where compute dominates the tiny test
// fixture's step time, so a compute straggler is visible in the step clock
// (at Meluxina FLOPS the 16-wide ViT is α-dominated and a 4× slowdown would
// vanish into the collective latency).
func computeBoundCost() dist.CostModel {
	return dist.CostModel{FLOPS: 1e8, Alpha: 1e-7, BetaIntra: 1.0 / 250e9, BetaInter: 1.0 / 6.25e9}
}

// stragglerPlan slows one rank by factor from step `from` onwards.
func stragglerPlan(rank, from int, factor float64) *dist.FaultPlan {
	return &dist.FaultPlan{Ranks: []dist.RankFault{{Rank: rank, From: from, To: dist.Forever, Factor: factor}}}
}

func adaptiveTopology(mcfg ModelConfig, tc TrainConfig) plan.Topology {
	t := elasticTopology(mcfg, tc)
	t.Cost = computeBoundCost()
	return t
}

// TestZeroPerturbationIdentity pins the tentpole invariant at the training
// level for all three families: an empty fault plan, and one whose windows
// never overlap the steps run, produce bitwise-identical losses, simulated
// clocks and traffic statistics to a bare cluster.
func TestZeroPerturbationIdentity(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	const total = 4
	layouts := []parallel.Layout{
		{Family: "tesseract", Q: 2, D: 2},
		{Family: "optimus", Q: 2},
		{Family: "megatron", Ranks: 4},
	}
	cost := computeBoundCost()
	for _, l := range layouts {
		l := l
		t.Run(l.String(), func(t *testing.T) {
			bare, err := TrainFaulty(l, nil, cost, ds, mcfg, tc, total)
			if err != nil {
				t.Fatalf("bare run: %v", err)
			}
			plans := map[string]*dist.FaultPlan{
				"empty": {},
				"past-window": {
					Ranks:       []dist.RankFault{{Rank: 0, From: total + 10, To: dist.Forever, Factor: 8}},
					Links:       []dist.LinkFault{{Rank: 1, From: total + 10, To: dist.Forever, BetaFactor: 4, ExtraAlpha: 1e-6}},
					Collectives: []dist.CollectiveFault{{Rank: 0, From: total + 10, To: total + 12, Retries: 2, Backoff: 1e-5}},
				},
			}
			for name, fp := range plans {
				got, err := TrainFaulty(l, fp, cost, ds, mcfg, tc, total)
				if err != nil {
					t.Fatalf("%s plan: %v", name, err)
				}
				if !reflect.DeepEqual(got.Losses, bare.Losses) {
					t.Errorf("%s plan: losses differ from bare run:\n%v\n%v", name, got.Losses, bare.Losses)
				}
				if got.Seconds != bare.Seconds {
					t.Errorf("%s plan: clock %g differs from bare %g", name, got.Seconds, bare.Seconds)
				}
				if !reflect.DeepEqual(got.Stats, bare.Stats) {
					t.Errorf("%s plan: traffic stats differ from bare run", name)
				}
			}
		})
	}
}

// TestTrainFaultyStragglerStretchesClock checks the other half of the
// invariant: a straggler changes the clock but not one bit of the losses.
func TestTrainFaultyStragglerStretchesClock(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	const total = 6
	l := parallel.Layout{Family: "tesseract", Q: 2, D: 2}
	cost := computeBoundCost()
	bare, err := TrainFaulty(l, nil, cost, ds, mcfg, tc, total)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := TrainFaulty(l, stragglerPlan(7, 2, 4), cost, ds, mcfg, tc, total)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slow.Losses, bare.Losses) {
		t.Errorf("straggler changed the losses:\n%v\n%v", slow.Losses, bare.Losses)
	}
	if slow.Seconds <= bare.Seconds*1.5 {
		t.Errorf("4× straggler from step 2 of %d barely moved the clock: %g vs %g", total, slow.Seconds, bare.Seconds)
	}
	if !reflect.DeepEqual(slow.Stats, bare.Stats) {
		t.Errorf("straggler changed the traffic statistics")
	}
}

// TestTrainAdaptiveRelayout is the acceptance-criterion scenario: a 4×
// compute straggler strikes after a clean first window; the watchdog must
// detect it, demote it, re-layout onto the healthy ranks, finish with a
// loss curve within 1e-8 of the uninterrupted references, and beat the
// ride-it-out baseline on total simulated seconds.
func TestTrainAdaptiveRelayout(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	const total, probe, failFrom = 24, 6, 6
	from := parallel.Layout{Family: "tesseract", Q: 2, D: 2}
	fp := stragglerPlan(7, failFrom, 4)
	cfg := AdaptiveConfig{
		TotalSteps:   total,
		Probe:        probe,
		Monitor:      dist.MonitorConfig{Window: probe, K: 2, W: 3},
		Faults:       fp,
		Algos:        elasticAlgos(),
		Topology:     adaptiveTopology(mcfg, tc),
		ReshardSteps: 10,
	}
	run, err := TrainAdaptive(from, cfg, ds, mcfg, tc)
	if err != nil {
		t.Fatalf("TrainAdaptive: %v", err)
	}
	if run.DetectedStep < 0 {
		t.Fatal("watchdog never detected the straggler")
	}
	if len(run.Suspects) != 1 || run.Suspects[0] != 7 {
		t.Errorf("Suspects = %v, want [7]", run.Suspects)
	}
	if run.RelayoutStep < 0 || run.RodeOut {
		t.Fatalf("no re-layout: RelayoutStep=%d RodeOut=%v (%s)", run.RelayoutStep, run.RodeOut, run.RideOutReason)
	}
	if run.To.Ranks > 7 {
		t.Errorf("re-layout %s uses %d ranks, only 7 are healthy", run.To, run.To.Ranks)
	}
	if run.DegradedStepSeconds < 2*run.HealthyStepSeconds {
		t.Errorf("degraded step %.3gs not clearly above healthy %.3gs — fixture not compute-bound?",
			run.DegradedStepSeconds, run.HealthyStepSeconds)
	}
	if run.CollectSeconds <= 0 || run.RestoreSeconds <= 0 {
		t.Errorf("re-layout cost accounting not positive: collect=%g restore=%g", run.CollectSeconds, run.RestoreSeconds)
	}

	// Loss curve: before the re-layout it must match an uninterrupted run
	// at From exactly (same layout, same arithmetic — the fault plan may
	// only move clocks); after it, the usual cross-layout 1e-8.
	refFrom, err := TrainLayoutSteps(from, ds, mcfg, tc, run.RelayoutStep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < run.RelayoutStep; i++ {
		if run.Losses[i] != refFrom[i] {
			t.Errorf("step %d (pre-relayout): loss %.17g != uninterrupted %.17g", i, run.Losses[i], refFrom[i])
		}
	}
	refTo, err := TrainLayoutSteps(run.To, ds, mcfg, tc, total)
	if err != nil {
		t.Fatal(err)
	}
	for i := run.RelayoutStep; i < total; i++ {
		if d := math.Abs(run.Losses[i] - refTo[i]); d > 1e-8 {
			t.Errorf("step %d (post-relayout): loss %.12f vs uninterrupted %.12f (|Δ|=%.3g)", i, run.Losses[i], refTo[i], d)
		}
	}

	// And the whole point: adapting must beat riding the straggler out.
	rideOut, err := TrainFaulty(from, fp, computeBoundCost(), ds, mcfg, tc, total)
	if err != nil {
		t.Fatal(err)
	}
	if run.TotalSeconds >= rideOut.Seconds {
		t.Errorf("adaptive run (%.4gs) did not beat ride-out (%.4gs)", run.TotalSeconds, rideOut.Seconds)
	}
	t.Logf("healthy %.3gs/step, degraded %.3gs/step; %s → %s at step %d; adaptive %.4gs vs ride-out %.4gs",
		run.HealthyStepSeconds, run.DegradedStepSeconds, run.From, run.To, run.RelayoutStep,
		run.TotalSeconds, rideOut.Seconds)
}

// TestTrainAdaptiveRideOutOnPayback: when the re-shard bill cannot be paid
// back (here: priced absurdly high), the watchdog detects but stays put —
// and the loss curve is bit-identical to a clean run, because gray faults
// never touch arithmetic.
func TestTrainAdaptiveRideOutOnPayback(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	const total, probe = 18, 6
	from := parallel.Layout{Family: "tesseract", Q: 2, D: 2}
	cfg := AdaptiveConfig{
		TotalSteps:   total,
		Probe:        probe,
		Monitor:      dist.MonitorConfig{Window: probe, K: 2, W: 3},
		Faults:       stragglerPlan(7, probe, 4),
		Algos:        elasticAlgos(),
		Topology:     adaptiveTopology(mcfg, tc),
		ReshardSteps: 1e9,
	}
	run, err := TrainAdaptive(from, cfg, ds, mcfg, tc)
	if err != nil {
		t.Fatalf("TrainAdaptive: %v", err)
	}
	if run.DetectedStep < 0 {
		t.Fatal("watchdog never detected the straggler")
	}
	if !run.RodeOut || run.RelayoutStep >= 0 || run.To != run.From {
		t.Fatalf("expected a ride-out, got RelayoutStep=%d RodeOut=%v To=%s", run.RelayoutStep, run.RodeOut, run.To)
	}
	if !strings.Contains(run.RideOutReason, "re-shard") {
		t.Errorf("ride-out reason %q does not name the payback policy", run.RideOutReason)
	}
	ref, err := TrainLayoutSteps(from, ds, mcfg, tc, total)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run.Losses, ref) {
		t.Errorf("ride-out losses differ from the clean run")
	}
}

// TestTrainAdaptiveNoFeasibleRideOut: when the healthy subset cannot run
// anything (memory budget below every candidate), the watchdog reports the
// structured no-feasible cause as its ride-out reason instead of failing.
func TestTrainAdaptiveNoFeasibleRideOut(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	const total, probe = 18, 6
	from := parallel.Layout{Family: "tesseract", Q: 2, D: 2}
	topo := adaptiveTopology(mcfg, tc)
	topo.MemoryBudget = 1 // nothing fits
	run, err := TrainAdaptive(from, AdaptiveConfig{
		TotalSteps: total,
		Probe:      probe,
		Monitor:    dist.MonitorConfig{Window: probe, K: 2, W: 3},
		Faults:     stragglerPlan(7, probe, 4),
		Algos:      elasticAlgos(),
		Topology:   topo,
	}, ds, mcfg, tc)
	if err != nil {
		t.Fatalf("TrainAdaptive: %v", err)
	}
	if !run.RodeOut || run.RelayoutStep >= 0 {
		t.Fatalf("expected a no-feasible ride-out, got RelayoutStep=%d RodeOut=%v", run.RelayoutStep, run.RodeOut)
	}
	if !strings.Contains(run.RideOutReason, "no feasible layout") {
		t.Errorf("ride-out reason %q does not carry the no-feasible cause", run.RideOutReason)
	}
}

// TestTrainElasticSurfacesNoFeasible pins the satellite contract: when the
// survivors cannot satisfy the memory budget, TrainElastic's error exposes
// the structured *plan.NoFeasibleError to errors.As/Is rather than an
// anonymous message.
func TestTrainElasticSurfacesNoFeasible(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	topo := elasticTopology(mcfg, tc)
	topo.MemoryBudget = 1
	_, err := TrainElastic(parallel.Layout{Family: "tesseract", Q: 2, D: 1}, ElasticConfig{
		FailStep:   1,
		TotalSteps: 3,
		FailRank:   -1,
		Algos:      elasticAlgos(),
		Topology:   topo,
	}, ds, mcfg, tc)
	if err == nil {
		t.Fatal("TrainElastic succeeded with a 1-byte memory budget")
	}
	var nf *plan.NoFeasibleError
	if !errors.As(err, &nf) {
		t.Fatalf("error %v does not expose *plan.NoFeasibleError", err)
	}
	if nf.Surviving != 3 {
		t.Errorf("NoFeasibleError.Surviving = %d, want 3", nf.Surviving)
	}
	if !errors.Is(err, plan.ErrNoFeasible) {
		t.Errorf("error %v does not wrap plan.ErrNoFeasible", err)
	}
}
