package vit

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/tensor"
	"repro/internal/testutil"

	"repro/internal/megatron"
	"repro/internal/optimus"
	"repro/internal/seqpar"
	"repro/internal/tesseract"
)

// familyLayouts are the four schemes on comparable small arrangements.
func familyLayouts() []parallel.Layout {
	return []parallel.Layout{
		{Family: "tesseract", Q: 2, D: 2},
		{Family: "optimus", Q: 2},
		{Family: "megatron", Ranks: 4},
		{Family: "seqpar", Ranks: 4},
	}
}

// trainedParams trains two ViT steps under a layout on the fixed tinyData
// batch and returns rank 0's logits after both steps plus the final loss.
func trainLayoutSteps(t *testing.T, l parallel.Layout, steps int) (logits *tensor.Matrix, loss float64) {
	t.Helper()
	ds, mcfg := tinyData()
	tc := TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 5}
	l, err := l.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	x, labels := ds.Batch(ds.Train, idx)
	testutil.Run(t, l.Ranks, func(w *dist.Worker) error {
		f, err := parallel.New(w, l)
		if err != nil {
			return err
		}
		model := NewDistModel(f, mcfg)
		opt := nn.NewAdam(tc.LR, tc.WeightDecay)
		params := model.Params()
		for s := 0; s < steps; s++ {
			lg := model.Forward(DistributeBatch(f, x, mcfg.SeqLen))
			ls, dl := nn.CrossEntropy(lg, labels)
			if w.Rank() == 0 {
				loss = ls
				logits = lg.Clone()
			}
			for _, pa := range params {
				pa.ZeroGrad()
			}
			model.Backward(dl)
			opt.Step(params)
			f.EndStep()
		}
		return nil
	})
	return logits, loss
}

// TestCrossFamilyEquivalence trains two ViT steps under all four families
// on the same seed and data and requires each to agree with the serial
// reference logits within tolerance — the paper's interchangeability
// claim, end to end through one interface.
func TestCrossFamilyEquivalence(t *testing.T) {
	ds, mcfg := tinyData()
	tc := TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 5}
	const steps = 2

	// Serial reference: the identical two steps.
	model := NewModel(mcfg)
	opt := nn.NewAdam(tc.LR, tc.WeightDecay)
	params := model.Params()
	x, labels := ds.Batch(ds.Train, []int{0, 1, 2, 3, 4, 5, 6, 7})
	var wantLogits *tensor.Matrix
	var wantLoss float64
	for s := 0; s < steps; s++ {
		lg := model.Forward(x)
		wantLoss, _ = nn.CrossEntropy(lg, labels)
		wantLogits = lg
		_, dl := nn.CrossEntropy(lg, labels)
		for _, pa := range params {
			pa.ZeroGrad()
		}
		model.Backward(dl)
		opt.Step(params)
	}

	for _, l := range familyLayouts() {
		logits, loss := trainLayoutSteps(t, l, steps)
		if logits == nil {
			t.Fatalf("%s: no logits collected", l)
		}
		if d := logits.MaxAbsDiff(wantLogits); d > 1e-8 || math.IsNaN(d) {
			t.Errorf("%s: step-%d logits diverged from serial by %g", l, steps, d)
		}
		if d := math.Abs(loss - wantLoss); d > 1e-8 {
			t.Errorf("%s: step-%d loss %g vs serial %g", l, steps, loss, wantLoss)
		}
	}
}

// TestOptimusBitwiseTesseractDepth1 pins the first-class d=1 delegation:
// an Optimus [2,2] training run and a Tesseract [2,2,1] training run are
// the same algorithm, so their logits must agree bitwise.
func TestOptimusBitwiseTesseractDepth1(t *testing.T) {
	opt, _ := trainLayoutSteps(t, parallel.Layout{Family: "optimus", Q: 2}, 2)
	tess, _ := trainLayoutSteps(t, parallel.Layout{Family: "tesseract", Q: 2, D: 1}, 2)
	if opt == nil || tess == nil {
		t.Fatal("missing logits")
	}
	if !opt.Equal(tess) {
		t.Fatalf("optimus [2,2] and tesseract [2,2,1] diverged bitwise: max|Δ| = %g", opt.MaxAbsDiff(tess))
	}
}

// TestSearchInstantiateTrain closes the plan→run gap for every family in
// one test: plan.Search ranks layouts for the tiny ViT workload, the best
// candidate of EACH family is instantiated via Plan.Instantiate on a
// matching cluster, and a ViT training step must run and match the serial
// forward loss.
func TestSearchInstantiateTrain(t *testing.T) {
	ds, mcfg := tinyData()
	tc := TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 5}
	x, labels := ds.Batch(ds.Train, []int{0, 1, 2, 3, 4, 5, 6, 7})

	serial := NewModel(mcfg)
	wantLoss, _ := nn.CrossEntropy(serial.Forward(x), labels)

	w := plan.Workload{Batch: tc.BatchSize, SeqLen: mcfg.SeqLen, Hidden: mcfg.Hidden, Heads: mcfg.Heads, Layers: mcfg.Layers}
	algos := []plan.Algo{tesseract.PlanAlgo(), optimus.PlanAlgo(), megatron.PlanAlgo(), seqpar.PlanAlgo()}
	plans, err := plan.Search(w, plan.Topology{RankBudget: 8}, algos)
	if err != nil {
		t.Fatal(err)
	}

	// The best candidate per family, in rank order.
	best := map[string]plan.Plan{}
	for _, p := range plans {
		if _, seen := best[p.Family]; !seen {
			best[p.Family] = p
		}
	}
	if len(best) != 4 {
		t.Fatalf("search ranked %d families, want 4 (%v)", len(best), plans)
	}

	for fam, p := range best {
		losses := make([]float64, p.Grid.Ranks)
		c := dist.New(dist.Config{WorldSize: p.Grid.Ranks})
		err := c.Run(func(w *dist.Worker) error {
			f, err := p.Instantiate(w)
			if err != nil {
				return err
			}
			if f.Name() != fam {
				t.Errorf("plan %s instantiated family %q", p, f.Name())
			}
			model := NewDistModel(f, mcfg)
			params := model.Params()
			lg := model.Forward(DistributeBatch(f, x, mcfg.SeqLen))
			loss, dl := nn.CrossEntropy(lg, labels)
			losses[w.Rank()] = loss
			for _, pa := range params {
				pa.ZeroGrad()
			}
			model.Backward(dl)
			nn.NewAdam(tc.LR, tc.WeightDecay).Step(params)
			f.EndStep()
			return nil
		})
		if err != nil {
			t.Fatalf("plan %s: %v", p, err)
		}
		for r, loss := range losses {
			if d := math.Abs(loss - wantLoss); d > 1e-8 {
				t.Fatalf("plan %s rank %d: loss %g vs serial %g", p, r, loss, wantLoss)
			}
		}
	}
}

// peakWorkspaceBytes trains two steady-state steps under a layout and
// returns the largest per-rank workspace high-water mark — the peak live
// activation/scratch bytes any rank held.
func peakWorkspaceBytes(t *testing.T, l parallel.Layout) int64 {
	t.Helper()
	ds, mcfg := tinyData()
	tc := TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 5}
	sb, err := NewStepBencher(l, ds, mcfg, tc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Steps(2); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var peak int64
	err = sb.Cluster().Run(func(w *dist.Worker) error {
		hw := w.Workspace().Stats().HighWaterBytes
		mu.Lock()
		if hw > peak {
			peak = hw
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return peak
}

// TestSeqparMemoryGate pins the family's reason to exist: at p = 4 a
// sequence-parallel rank's peak live workspace bytes across a training
// step must be at most half of a Megatron rank's, because the residual
// stream, layer norms and saved activations live on 1/p of the rows while
// gathered full-row buffers stay transient.
func TestSeqparMemoryGate(t *testing.T) {
	seq := peakWorkspaceBytes(t, parallel.Layout{Family: "seqpar", Ranks: 4})
	meg := peakWorkspaceBytes(t, parallel.Layout{Family: "megatron", Ranks: 4})
	if seq <= 0 || meg <= 0 {
		t.Fatalf("expected positive high-water marks, got seqpar=%d megatron=%d", seq, meg)
	}
	if ratio := float64(seq) / float64(meg); ratio > 0.5 {
		t.Fatalf("seqpar peak workspace %d B is %.3f of megatron's %d B, want <= 0.5", seq, ratio, meg)
	}
}

// TestSearchMemoryBudgetPrefersSeqpar pins the planner-level trade: on a
// paper-scale layer with the per-rank memory budget set to exactly what a
// sequence-parallel rank needs, every activation-replicating family is
// infeasible and the search must return seqpar plans alone.
func TestSearchMemoryBudgetPrefersSeqpar(t *testing.T) {
	w := plan.Workload{Batch: 16, SeqLen: 512, Hidden: 1024, Heads: 16, Layers: 2}
	sp := seqpar.PlanAlgo()
	budget := sp.Memory(w, plan.Grid{Ranks: 4})
	algos := []plan.Algo{tesseract.PlanAlgo(), optimus.PlanAlgo(), megatron.PlanAlgo(), sp}
	plans, err := plan.Search(w, plan.Topology{RankBudget: 4, ExactRanks: true, MemoryBudget: budget}, algos)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no feasible plans under the seqpar memory budget")
	}
	for _, p := range plans {
		if p.Family != "seqpar" {
			t.Fatalf("family %s fit the seqpar budget %d: %v", p.Family, budget, p)
		}
	}
	if plans[0].Family != "seqpar" || plans[0].Grid.Ranks != 4 {
		t.Fatalf("top plan %v, want seqpar [4]", plans[0])
	}

	// Sanity: the same search without the budget keeps all four families,
	// and seqpar is never the fastest — its edge is memory, not time.
	unconstrained, err := plan.Search(w, plan.Topology{RankBudget: 4, ExactRanks: true}, algos)
	if err != nil {
		t.Fatal(err)
	}
	if unconstrained[0].Family == "seqpar" {
		t.Fatalf("seqpar won on time without a memory budget: %v", unconstrained[0])
	}
}
