package vit

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/plan"
)

// ErrSimulatedNodeLoss is the cause TrainElastic's injected failure carries;
// the recovery path asserts the abort reports it (not the generic poisoned-
// cluster message) before replanning.
var ErrSimulatedNodeLoss = errors.New("vit: simulated node loss")

// ElasticConfig controls a TrainElastic run: where the failure strikes and
// what the replanner may choose from.
type ElasticConfig struct {
	// FailStep is the training step during which a rank dies (≥ 1); the
	// checkpoint holds the state from just before it, so training resumes
	// at FailStep on the new layout.
	FailStep int
	// TotalSteps is the full run length, > FailStep.
	TotalSteps int
	// FailRank is the rank that dies; -1 (the default zero value is rank 0,
	// so use -1 explicitly for "last") picks the highest rank.
	FailRank int
	// Algos are the planner candidates Replan searches over.
	Algos []plan.Algo
	// Topology describes the machine for the replan; RankBudget is
	// overwritten with the surviving count.
	Topology plan.Topology
}

// ElasticRun is the outcome of one elastic training run: the two layouts,
// the structured failure, the full per-step loss curve (steps before
// FailStep trained at From, the rest at To), and the simulated-clock cost
// accounting the ElasticStudy turns into re-shard-vs-step ratios.
type ElasticRun struct {
	From, To parallel.Layout
	Failure  *dist.Failure

	FailStep int
	Losses   []float64

	// CollectSeconds is the simulated cost of snapshotting the model into
	// the replicated checkpoint at the From layout (per-slot all-reduces).
	CollectSeconds float64
	// RestoreSeconds is the simulated cost of re-sharding the checkpoint
	// onto the To layout (per-slot broadcasts over the new group).
	RestoreSeconds float64
	// StepSeconds is the steady-state training-step cost at the To layout,
	// averaged over the post-reshard steps.
	StepSeconds float64
}

// stepBatch maps a flat global step index onto the epoch-shuffled sample
// window TrainLayout would use, so step-indexed and epoch-indexed runs see
// identical batches.
func stepBatch(ds *Dataset, tc TrainConfig, step int) []int {
	spe := len(ds.Train) / tc.BatchSize
	order := epochOrder(len(ds.Train), step/spe, tc.Seed)
	start := (step % spe) * tc.BatchSize
	return order[start : start+tc.BatchSize]
}

// trainStep runs one full training step for global step index `step` and
// returns its loss (replicated on every rank). The step is bracketed by
// Worker.BeginStep/EndStep, so the step index drives any installed fault
// plan and the (total, busy) split reaches an attached monitor; on a bare
// cluster the bracket is free and changes nothing.
func trainStep(w *dist.Worker, f parallel.Family, model *DistModel, opt *nn.Adam,
	ds *Dataset, tc TrainConfig, s, step int) float64 {
	w.BeginStep(step)
	defer w.EndStep()
	x, labels := ds.Batch(ds.Train, stepBatch(ds, tc, step))
	logits := model.Forward(DistributeBatch(f, x, s))
	dl := w.Workspace().GetUninitMatch(logits.Rows, logits.Cols, logits.Phantom())
	loss := nn.CrossEntropyInto(dl, logits, labels)
	params := model.Params()
	for _, pa := range params {
		pa.ZeroGrad()
	}
	model.Backward(dl)
	opt.Step(params)
	f.EndStep()
	return loss
}

// TrainStep is the exported trainer step: callers that hold their own
// cluster and per-rank models (the serving runtime, the step bencher)
// advance them down the exact path TrainLayoutSteps walks, so equally
// trained models are bitwise identical however they were driven.
func TrainStep(w *dist.Worker, f parallel.Family, model *DistModel, opt *nn.Adam,
	ds *Dataset, tc TrainConfig, s, step int) float64 {
	return trainStep(w, f, model, opt, ds, tc.withDefaults(), s, step)
}

// TrainLayoutSteps trains at one layout for a flat number of steps and
// returns the per-step loss curve — the uninterrupted reference TrainElastic
// runs are compared against.
func TrainLayoutSteps(l parallel.Layout, ds *Dataset, mcfg ModelConfig, tc TrainConfig, total int) ([]float64, error) {
	tc = tc.withDefaults()
	l, err := parallel.Validate(l)
	if err != nil {
		return nil, err
	}
	if tc.BatchSize%l.RowShards() != 0 {
		return nil, fmt.Errorf("vit: batch %d not divisible by %s's %d row shards", tc.BatchSize, l, l.RowShards())
	}
	c := dist.New(dist.Config{WorldSize: l.Ranks})
	losses := make([]float64, total)
	err = c.Run(func(w *dist.Worker) error {
		f, err := parallel.New(w, l)
		if err != nil {
			return err
		}
		model := NewDistModel(f, mcfg)
		opt := nn.NewAdam(tc.LR, tc.WeightDecay)
		for step := 0; step < total; step++ {
			loss := trainStep(w, f, model, opt, ds, tc, mcfg.SeqLen, step)
			if w.Rank() == 0 {
				losses[step] = loss
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return losses, nil
}

// Trainable reports whether the ViT trainer can instantiate and train this
// model at the given layout: whole sequences per rank (batch divisibility)
// and widths that split over the mesh — the filter both the -plan CLI path
// and the elastic replan use to skip layouts the searcher likes but the
// model cannot run.
func Trainable(l parallel.Layout, batch int, mcfg ModelConfig) bool {
	return TrainableErr(l, batch, mcfg) == nil
}

// TrainableErr is Trainable with the reason: nil when the layout can train
// the model, otherwise one actionable error naming the dimension that does
// not divide — what the CLIs print instead of panicking deep inside model
// construction.
func TrainableErr(l parallel.Layout, batch int, mcfg ModelConfig) error {
	l, err := l.Normalize()
	if err != nil {
		return err
	}
	if batch%l.RowShards() != 0 {
		return fmt.Errorf("vit: batch %d not divisible by %s's %d row shards", batch, l, l.RowShards())
	}
	if l.Q > 0 {
		switch {
		case mcfg.PatchDim%l.Q != 0:
			return fmt.Errorf("vit: patch dim %d not divisible by %s's mesh side q=%d", mcfg.PatchDim, l, l.Q)
		case mcfg.Hidden%l.Q != 0:
			return fmt.Errorf("vit: hidden %d not divisible by %s's mesh side q=%d", mcfg.Hidden, l, l.Q)
		case mcfg.Heads%l.Q != 0:
			return fmt.Errorf("vit: %d heads not divisible by %s's mesh side q=%d", mcfg.Heads, l, l.Q)
		}
		return nil
	}
	// 1-D megatron: hidden width and heads split across every rank.
	switch {
	case mcfg.Hidden%l.Ranks != 0:
		return fmt.Errorf("vit: hidden %d not divisible by %s's %d ranks", mcfg.Hidden, l, l.Ranks)
	case mcfg.Heads%l.Ranks != 0:
		return fmt.Errorf("vit: %d heads not divisible by %s's %d ranks", mcfg.Heads, l, l.Ranks)
	}
	return nil
}

// TrainElastic is the full elastic loop on the simulated cluster: train at
// `from` until cfg.FailStep, checkpoint, inject a node loss, read the
// structured abort cause, replan under the surviving rank budget, recover a
// fresh cluster, re-shard the checkpoint onto the chosen layout, and finish
// training there. The returned loss curve matches an uninterrupted run at
// the surviving layout from the re-shard point (≤1e-8 — the family-parity
// property carried across the re-shard).
func TrainElastic(from parallel.Layout, cfg ElasticConfig, ds *Dataset, mcfg ModelConfig, tc TrainConfig) (*ElasticRun, error) {
	tc = tc.withDefaults()
	from, err := parallel.Validate(from)
	if err != nil {
		return nil, err
	}
	if cfg.FailStep < 1 || cfg.TotalSteps <= cfg.FailStep {
		return nil, fmt.Errorf("vit: elastic needs 1 ≤ FailStep (%d) < TotalSteps (%d)", cfg.FailStep, cfg.TotalSteps)
	}
	failRank := cfg.FailRank
	if failRank < 0 {
		failRank = from.Ranks - 1
	}
	if failRank >= from.Ranks {
		return nil, fmt.Errorf("vit: fail rank %d outside the %d-rank layout", failRank, from.Ranks)
	}
	if tc.BatchSize%from.RowShards() != 0 {
		return nil, fmt.Errorf("vit: batch %d not divisible by %s's %d row shards", tc.BatchSize, from, from.RowShards())
	}
	if len(cfg.Algos) == 0 {
		return nil, fmt.Errorf("vit: elastic replan needs planner algos")
	}
	run := &ElasticRun{From: from, FailStep: cfg.FailStep, Losses: make([]float64, cfg.TotalSteps)}
	s := mcfg.SeqLen

	// Phase 1: train at the original layout until the failure step.
	c := dist.New(dist.Config{WorldSize: from.Ranks})
	fams := make([]parallel.Family, from.Ranks)
	models := make([]*DistModel, from.Ranks)
	opts := make([]*nn.Adam, from.Ranks)
	err = c.Run(func(w *dist.Worker) error {
		f, err := parallel.New(w, from)
		if err != nil {
			return err
		}
		fams[w.Rank()] = f
		models[w.Rank()] = NewDistModel(f, mcfg)
		opts[w.Rank()] = nn.NewAdam(tc.LR, tc.WeightDecay)
		for step := 0; step < cfg.FailStep; step++ {
			loss := trainStep(w, f, models[w.Rank()], opts[w.Rank()], ds, tc, s, step)
			if w.Rank() == 0 {
				run.Losses[step] = loss
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: checkpoint every rank (replicated snapshot), costing the
	// per-slot all-reduces on a fresh clock window.
	c.ResetClocks()
	cks := make([]*parallel.Checkpoint, from.Ranks)
	err = c.Run(func(w *dist.Worker) error {
		r := w.Rank()
		ck, err := parallel.Collect(fams[r], models[r], opts[r])
		cks[r] = ck
		return err
	})
	if err != nil {
		return nil, err
	}
	run.CollectSeconds = c.MaxClock()

	// Phase 3: inject the node loss during step FailStep. The failing rank
	// dies; the survivors block in their next collective and are unwound by
	// the abort. The in-flight step's state is discarded — the checkpoint
	// from phase 2 is what survives.
	err = c.Run(func(w *dist.Worker) error {
		if w.Rank() == failRank {
			return fmt.Errorf("step %d: %w", cfg.FailStep, ErrSimulatedNodeLoss)
		}
		trainStep(w, fams[w.Rank()], models[w.Rank()], opts[w.Rank()], ds, tc, s, cfg.FailStep)
		return nil
	})
	if err == nil {
		return nil, fmt.Errorf("vit: injected node loss did not abort the cluster")
	}
	if !errors.Is(err, ErrSimulatedNodeLoss) {
		return nil, fmt.Errorf("vit: abort lost its cause: %w", err)
	}
	run.Failure = c.Failure()
	if run.Failure == nil || run.Failure.Rank != failRank {
		return nil, fmt.Errorf("vit: abort cause names the wrong rank: %+v", run.Failure)
	}

	// Phase 4: replan under the surviving rank budget.
	survivors := c.Survivors()
	w := plan.Workload{Batch: tc.BatchSize, SeqLen: mcfg.SeqLen, Hidden: mcfg.Hidden, Heads: mcfg.Heads, Layers: mcfg.Layers}
	best, err := plan.Replan(w, cfg.Topology, cfg.Algos, len(survivors), func(p plan.Plan) bool {
		return Trainable(p.Layout(), tc.BatchSize, mcfg)
	})
	if err != nil {
		// A *plan.NoFeasibleError passes through the %w wrap intact, so
		// callers can errors.As it and decide the cluster is simply lost
		// rather than treat the miss as a malfunction.
		return nil, fmt.Errorf("vit: elastic replan after losing rank %d: %w", failRank, err)
	}
	to, err := parallel.Validate(best.Layout())
	if err != nil {
		return nil, err
	}
	run.To = to

	// Phase 5: recover a fresh cluster over the survivors and re-shard the
	// checkpoint (held by any surviving rank — the replicas are identical)
	// onto the new layout.
	c2, err := c.Recover()
	if err != nil {
		return nil, err
	}
	ck := cks[survivors[0]]
	fams2 := make([]parallel.Family, to.Ranks)
	models2 := make([]*DistModel, to.Ranks)
	opts2 := make([]*nn.Adam, to.Ranks)
	err = c2.Run(func(w *dist.Worker) error {
		r := w.Rank()
		if r >= to.Ranks {
			return nil // surviving but idle: the plan uses fewer ranks
		}
		f, err := parallel.New(w, to)
		if err != nil {
			return err
		}
		fams2[r] = f
		models2[r] = NewDistModel(f, mcfg)
		opts2[r] = nn.NewAdam(tc.LR, tc.WeightDecay)
		return nil
	})
	if err != nil {
		return nil, err
	}
	c2.ResetClocks() // charge only the re-shard traffic to the restore window
	err = c2.Run(func(w *dist.Worker) error {
		r := w.Rank()
		if r >= to.Ranks {
			return nil
		}
		return parallel.Reshard(fams2[r], models2[r], opts2[r], ck)
	})
	if err != nil {
		return nil, err
	}
	run.RestoreSeconds = c2.MaxClock()

	// Phase 6: finish training at the new layout from the re-shard point.
	c2.ResetClocks()
	err = c2.Run(func(w *dist.Worker) error {
		r := w.Rank()
		if r >= to.Ranks {
			return nil
		}
		for step := cfg.FailStep; step < cfg.TotalSteps; step++ {
			loss := trainStep(w, fams2[r], models2[r], opts2[r], ds, tc, s, step)
			if r == 0 {
				run.Losses[step] = loss
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	run.StepSeconds = c2.MaxClock() / float64(cfg.TotalSteps-cfg.FailStep)
	return run, nil
}
