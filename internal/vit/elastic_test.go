package vit

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/megatron"
	"repro/internal/optimus"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/tesseract"
)

// elasticAlgos mirrors tables.DefaultAlgos; vit tests cannot import tables
// (tables imports vit).
func elasticAlgos() []plan.Algo {
	return []plan.Algo{tesseract.PlanAlgo(), optimus.PlanAlgo(), megatron.PlanAlgo()}
}

func elasticTC() TrainConfig {
	return TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 21}
}

// elasticTopology sets the per-rank memory budget just below what one rank
// would need for the whole model — the usual reason an elastic system cannot
// collapse onto a single survivor, and the knob that makes the replan keep a
// multi-rank layout.
func elasticTopology(mcfg ModelConfig, tc TrainConfig) plan.Topology {
	w := plan.Workload{Batch: tc.BatchSize, SeqLen: mcfg.SeqLen, Hidden: mcfg.Hidden, Heads: mcfg.Heads, Layers: mcfg.Layers}
	oneRank := megatron.PlanAlgo().Memory(w, plan.Grid{Ranks: 1})
	return plan.Topology{MemoryBudget: oneRank - 1}
}

// TestTrainElastic runs the full elastic loop — train, checkpoint, lose the
// last rank mid-step, replan, recover, re-shard, resume — from each default
// family layout, and requires the post-reshard loss curve to match an
// uninterrupted run at the surviving layout bit-for-bit within 1e-8.
func TestTrainElastic(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	const failStep, totalSteps = 2, 4
	froms := []parallel.Layout{
		{Family: "tesseract", Q: 2, D: 2},
		{Family: "optimus", Q: 2},
		{Family: "megatron", Ranks: 4},
	}
	for _, from := range froms {
		from := from
		t.Run(from.String(), func(t *testing.T) {
			run, err := TrainElastic(from, ElasticConfig{
				FailStep:   failStep,
				TotalSteps: totalSteps,
				FailRank:   -1,
				Algos:      elasticAlgos(),
				Topology:   elasticTopology(mcfg, tc),
			}, ds, mcfg, tc)
			if err != nil {
				t.Fatalf("TrainElastic: %v", err)
			}
			if run.Failure == nil {
				t.Fatal("no structured failure recorded")
			}
			wantRank := run.From.Ranks - 1
			if run.Failure.Rank != wantRank {
				t.Errorf("failure names rank %d, injected into %d", run.Failure.Rank, wantRank)
			}
			if !errors.Is(run.Failure, ErrSimulatedNodeLoss) {
				t.Errorf("failure lost its cause: %v", run.Failure)
			}
			if run.To.Ranks > run.From.Ranks-1 {
				t.Errorf("replanned layout %s uses %d ranks, only %d survived",
					run.To, run.To.Ranks, run.From.Ranks-1)
			}
			if run.CollectSeconds <= 0 || run.RestoreSeconds <= 0 || run.StepSeconds <= 0 {
				t.Errorf("cost accounting not positive: collect=%g restore=%g step=%g",
					run.CollectSeconds, run.RestoreSeconds, run.StepSeconds)
			}
			ref, err := TrainLayoutSteps(run.To, ds, mcfg, tc, totalSteps)
			if err != nil {
				t.Fatalf("reference run at %s: %v", run.To, err)
			}
			for s := failStep; s < totalSteps; s++ {
				if d := math.Abs(run.Losses[s] - ref[s]); d > 1e-8 {
					t.Errorf("step %d: elastic loss %.12f vs uninterrupted %.12f (|Δ|=%.3g)",
						s, run.Losses[s], ref[s], d)
				}
			}
			t.Logf("%s → %s: reshard (collect %.3gs + restore %.3gs) ≈ %.2f steps",
				run.From, run.To, run.CollectSeconds, run.RestoreSeconds,
				(run.CollectSeconds+run.RestoreSeconds)/run.StepSeconds)
		})
	}
}

// TestTrainElasticEarlyFailure exercises the boundary where the failure hits
// the very first step after a single warmup step, on the smallest tesseract
// depth — the [2,2,1] Optimus corner of the re-shard matrix.
func TestTrainElasticFirstStep(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	run, err := TrainElastic(parallel.Layout{Family: "tesseract", Q: 2, D: 1}, ElasticConfig{
		FailStep:   1,
		TotalSteps: 3,
		FailRank:   0, // the family base rank dies; restore roots on the new base
		Algos:      elasticAlgos(),
		Topology:   elasticTopology(mcfg, tc),
	}, ds, mcfg, tc)
	if err != nil {
		t.Fatalf("TrainElastic: %v", err)
	}
	if run.Failure.Rank != 0 {
		t.Errorf("failure names rank %d, injected into 0", run.Failure.Rank)
	}
	ref, err := TrainLayoutSteps(run.To, ds, mcfg, tc, 3)
	if err != nil {
		t.Fatalf("reference run at %s: %v", run.To, err)
	}
	for s := 1; s < 3; s++ {
		if d := math.Abs(run.Losses[s] - ref[s]); d > 1e-8 {
			t.Errorf("step %d: elastic loss %.12f vs uninterrupted %.12f", s, run.Losses[s], ref[s])
		}
	}
}

// TestCheckpointAllocsSteadyState pins the satellite requirement that
// checkpointing every step does not regress the steady-state allocation
// budget: after warmup, a step+collect cycle must stay within the same
// 10-allocs/step gate the plain step benchmark enforces.
func TestCheckpointAllocsSteadyState(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	sb, err := NewStepBencher(parallel.Layout{Family: "tesseract", Q: 2, D: 2}, ds, mcfg, tc, 2)
	if err != nil {
		t.Fatalf("NewStepBencher: %v", err)
	}
	cks := make([]*parallel.Checkpoint, 8)
	// Warm the checkpoint buffers and state-walk caches.
	if err := sb.StepsCheckpointed(2, cks); err != nil {
		t.Fatalf("warmup StepsCheckpointed: %v", err)
	}
	const steps = 5
	allocs := testing.AllocsPerRun(3, func() {
		if err := sb.StepsCheckpointed(steps, cks); err != nil {
			t.Fatalf("StepsCheckpointed: %v", err)
		}
	})
	perStep := allocs / steps
	t.Logf("checkpointed step: %.1f allocs/step (all 8 ranks)", perStep)
	// The gate is 10 allocs per rank-step; the bencher runs 8 ranks, plus a
	// fixed per-Run overhead (goroutines, barriers) amortised over 5 steps.
	if perStep > 8*10+40 {
		t.Errorf("checkpointed step allocates %.1f/step across 8 ranks — checkpoint path regressed the steady state", perStep)
	}
}

// TestRestoreMatchesCheckpoint pins the bitwise round-trip on the bencher's
// same-layout path: collect, clobber the live weights, restore, collect
// again — the two checkpoints must be identical in every bit.
func TestRestoreBitwise(t *testing.T) {
	ds, mcfg := tinyData()
	tc := elasticTC()
	l := parallel.Layout{Family: "tesseract", Q: 2, D: 2}
	sb, err := NewStepBencher(l, ds, mcfg, tc, 1)
	if err != nil {
		t.Fatalf("NewStepBencher: %v", err)
	}
	cks := make([]*parallel.Checkpoint, 8)
	if err := sb.StepsCheckpointed(1, cks); err != nil {
		t.Fatalf("StepsCheckpointed: %v", err)
	}
	ck := cks[0]
	// Clobber: run more steps so every weight and moment moves on.
	if err := sb.Steps(2); err != nil {
		t.Fatalf("Steps: %v", err)
	}
	if err := sb.Restore(ck); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	after := make([]*parallel.Checkpoint, 8)
	if err := collectAll(sb, after); err != nil {
		t.Fatalf("collect after restore: %v", err)
	}
	if len(after[0].Slots) != len(ck.Slots) {
		t.Fatalf("slot count changed: %d vs %d", len(after[0].Slots), len(ck.Slots))
	}
	if after[0].Step != ck.Step {
		t.Errorf("step count %d survived restore as %d", ck.Step, after[0].Step)
	}
	for i := range ck.Slots {
		a, b := ck.Slots[i], after[0].Slots[i]
		if d := a.Value.MaxAbsDiff(b.Value); d != 0 {
			t.Errorf("slot %d value differs after round-trip: %g", i, d)
		}
		if d := a.M.MaxAbsDiff(b.M); d != 0 {
			t.Errorf("slot %d first moment differs after round-trip: %g", i, d)
		}
		if d := a.V.MaxAbsDiff(b.V); d != 0 {
			t.Errorf("slot %d second moment differs after round-trip: %g", i, d)
		}
	}
}

// collectAll snapshots every rank of the bencher's live model.
func collectAll(sb *StepBencher, cks []*parallel.Checkpoint) error {
	return sb.c.Run(func(w *dist.Worker) error {
		r := w.Rank()
		ck, err := parallel.CollectInto(cks[r], sb.fams[r], sb.models[r], sb.opts[r])
		cks[r] = ck
		return err
	})
}
