package vit

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// DistModel is the distributed ViT over any tensor-parallel family: the
// patch embedding and the encoder stack are family-distributed (Tesseract
// A-distributed blocks, Megatron replicated activations — the model never
// knows which); the tiny classification head is computed redundantly on
// every processor from the gathered pooled features — the standard
// treatment for heads whose cost is negligible, which keeps the head
// parameters replicated and bit-identical across processors.
type DistModel struct {
	Config ModelConfig
	F      parallel.Family

	Embed  parallel.Layer
	Pos    *tensor.Matrix // full [s, hidden]; sliced locally on use
	Blocks []parallel.Layer
	Head   *parallel.ReplicatedLinear

	batch  int
	pooled *tensor.Matrix // replicated [b, hidden]
}

// NewDistModel draws parameters from the same stream as NewModel, so the
// distributed weights shard (or replicate) the serial model's weights
// exactly, whatever the family.
func NewDistModel(f parallel.Family, cfg ModelConfig) *DistModel {
	rng := tensor.NewRNG(cfg.Seed)
	m := &DistModel{Config: cfg, F: f, Pos: cfg.Positional()}
	m.Embed = f.NewLinear(cfg.PatchDim, cfg.Hidden, nn.ActNone, true, rng)
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks, f.NewBlock(cfg.Hidden, cfg.Heads, cfg.SeqLen, rng))
	}
	// Built through the family so the head carries the family's checkpoint
	// primary; every family's head is the replicated serial linear.
	m.Head = f.NewHead(cfg.Hidden, cfg.Classes, rng).(*parallel.ReplicatedLinear)
	return m
}

// State enumerates the model's canonical checkpoint slots in parameter
// order (embedding, blocks, head) — the family-agnostic walk
// parallel.Collect and parallel.Restore move training state through.
func (m *DistModel) State() []parallel.State {
	out := m.Embed.State()
	for _, b := range m.Blocks {
		out = append(out, b.State()...)
	}
	return append(out, m.Head.State()...)
}

// Params returns this processor's parameter shards plus the replicated head.
func (m *DistModel) Params() []*nn.Param {
	out := m.Embed.Params()
	for _, b := range m.Blocks {
		out = append(out, b.Params()...)
	}
	return append(out, m.Head.Params()...)
}

// Forward maps the local token block to replicated logits [b, classes].
// Intermediates come from the worker's workspace; the trainer releases
// them at each step boundary (Family.EndStep).
func (m *DistModel) Forward(x *tensor.Matrix) *tensor.Matrix {
	w, ws := m.F.Worker(), m.F.Worker().Workspace()
	s := m.Config.SeqLen
	h := m.Embed.Forward(x)
	h = m.addPositionalLocal(h)
	for _, b := range m.Blocks {
		h = b.Forward(h)
	}
	w.Compute(float64(h.Size()))
	pooledLocal := ws.GetUninit(h.Rows/s, h.Cols)
	meanPoolInto(pooledLocal, h, s)
	// The family gathers the pooled features into the full replicated
	// [b, hidden] matrix (ownership of pooledLocal transfers to it); for
	// replicated-activation families this is the identity.
	m.pooled = m.F.GatherPooled(pooledLocal)
	m.batch = m.pooled.Rows
	return m.Head.Forward(m.pooled)
}

// Backward takes the replicated dLogits and propagates to all shards.
func (m *DistModel) Backward(dlogits *tensor.Matrix) {
	ws := m.F.Worker().Workspace()
	dpooled := m.Head.Backward(dlogits) // replicated [b, hidden]

	// Slice this processor's share of the pooled gradient back out.
	s := m.Config.SeqLen
	sl := m.F.Slice(m.batch, m.Config.Hidden)
	local := ws.GetUninit(sl.Rows, sl.Cols)
	tensor.SubMatrixInto(local, dpooled, sl.Row0, sl.Col0)
	dh := ws.GetUninit(sl.Rows*s, sl.Cols)
	meanPoolBackwardInto(dh, local, s)
	ws.Put(local)
	m.F.Worker().Compute(float64(dh.Size()))
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		prev := dh
		dh = m.Blocks[i].Backward(prev)
		ws.Put(prev)
	}
	m.Embed.Backward(dh)
	ws.Put(dh)
	// Complete the gradient synchronisations the layers deferred: after
	// this every parameter gradient is final and the optimiser may step.
	m.F.DrainGradients()
}

// addPositionalLocal adds this processor's slice of the fixed positional
// encoding: the family's Slice reports which rows (whole sequences, so the
// row offset is a multiple of s) and which hidden columns the local block
// holds. The result is a workspace buffer (the embedding output is
// retained by the embedding layer and must not be mutated).
func (m *DistModel) addPositionalLocal(h *tensor.Matrix) *tensor.Matrix {
	s := m.Config.SeqLen
	sl := m.F.Slice(h.Rows*m.F.RowShards(), m.Config.Hidden)
	w := m.F.Worker()
	w.Compute(float64(h.Size()) * compute.FlopsPerAdd)
	out := w.Workspace().GetUninit(h.Rows, h.Cols)
	for r := 0; r < h.Rows; r++ {
		prow := m.Pos.Row((sl.Row0 + r) % s)[sl.Col0 : sl.Col0+h.Cols]
		hrow := h.Row(r)
		orow := out.Row(r)
		for j := range orow {
			orow[j] = hrow[j] + prow[j]
		}
	}
	return out
}

// DistributeBatch slices a global token matrix [b·s, patchDim] into this
// processor's block. Whole sequences land on one processor, which requires
// b to divide by the family's row-shard count (d·q for Tesseract, 1 for
// replicated-activation families).
func DistributeBatch(f parallel.Family, x *tensor.Matrix, s int) *tensor.Matrix {
	b := x.Rows / s
	if b%f.RowShards() != 0 {
		panic(fmt.Sprintf("vit: batch %d not divisible by the %s family's %d row shards",
			b, f.Name(), f.RowShards()))
	}
	return f.Distribute(x)
}
