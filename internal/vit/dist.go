package vit

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/tesseract"
)

// DistModel is the Tesseract-parallel ViT. The patch embedding and the
// encoder stack are fully distributed (A-distributed activations,
// B-distributed weights); the tiny classification head is computed
// redundantly on every processor from the all-gathered pooled features —
// the standard treatment for heads whose cost is negligible, which keeps
// the head parameters replicated and bit-identical across processors.
type DistModel struct {
	Config ModelConfig

	Embed  *tesseract.Linear
	Pos    *tensor.Matrix // full [s, hidden]; sliced locally on use
	Blocks []*tesseract.Block
	Head   *nn.Linear // replicated

	batch  int
	pooled *tensor.Matrix // replicated [b, hidden]
}

// NewDistModel draws parameters from the same stream as NewModel, so the
// distributed weights shard the serial model's weights exactly.
func NewDistModel(p *tesseract.Proc, cfg ModelConfig) *DistModel {
	q := p.Shape.Q
	if cfg.PatchDim%q != 0 || cfg.Hidden%q != 0 || cfg.Heads%q != 0 {
		panic(fmt.Sprintf("vit: config (patchDim=%d hidden=%d heads=%d) not divisible by q=%d",
			cfg.PatchDim, cfg.Hidden, cfg.Heads, q))
	}
	rng := tensor.NewRNG(cfg.Seed)
	m := &DistModel{Config: cfg, Pos: cfg.Positional()}
	m.Embed = tesseract.NewLinear(p, cfg.PatchDim, cfg.Hidden, nn.ActNone, true, rng)
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks, tesseract.NewBlock(p, cfg.Hidden, cfg.Heads, cfg.SeqLen, rng))
	}
	m.Head = nn.NewLinear(cfg.Hidden, cfg.Classes, nn.ActNone, true, rng)
	return m
}

// Params returns this processor's parameter shards plus the replicated head.
func (m *DistModel) Params() []*nn.Param {
	out := m.Embed.Params()
	for _, b := range m.Blocks {
		out = append(out, b.Params()...)
	}
	return append(out, m.Head.Params()...)
}

// Forward maps the local token block [b·s/(dq), patchDim/q] to replicated
// logits [b, classes]. Intermediates come from the worker's workspace; the
// trainer releases them at each step boundary.
func (m *DistModel) Forward(p *tesseract.Proc, x *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	s := m.Config.SeqLen
	h := m.Embed.Forward(p, x)
	h = m.addPositionalLocal(p, h)
	for _, b := range m.Blocks {
		h = b.Forward(p, h)
	}
	p.W.Compute(float64(h.Size()))
	pooledLocal := ws.GetUninit(h.Rows/s, h.Cols)
	meanPoolInto(pooledLocal, h, s)
	// Gather the pooled features straight into packed destinations: hidden
	// columns along the grid row, sequence blocks along the slab —
	// afterwards every processor holds the full [b, hidden] matrix,
	// identically. AllGatherInto reads every member's block before
	// returning (no snapshots, no gathered-slice allocation), so the
	// sources recycle immediately.
	wide := ws.GetUninit(pooledLocal.Rows, p.Row.Size()*pooledLocal.Cols)
	p.Row.AllGatherInto(p.W, pooledLocal, wide)
	ws.Put(pooledLocal)
	m.pooled = ws.GetUninit(p.Slab.Size()*wide.Rows, wide.Cols)
	p.Slab.AllGatherInto(p.W, wide, m.pooled)
	ws.Put(wide)
	m.batch = m.pooled.Rows
	p.W.ChargeGEMM(float64(m.batch), float64(m.Config.Classes), float64(m.Config.Hidden))
	return m.Head.Forward(m.pooled)
}

// Backward takes the replicated dLogits and propagates to all shards.
func (m *DistModel) Backward(p *tesseract.Proc, dlogits *tensor.Matrix) {
	ws := p.W.Workspace()
	p.W.ChargeGEMM(float64(m.batch), float64(m.Config.Classes), float64(m.Config.Hidden))
	p.W.ChargeGEMM(float64(m.batch), float64(m.Config.Hidden), float64(m.Config.Classes))
	dpooled := m.Head.Backward(dlogits) // replicated [b, hidden]

	// Slice this processor's sequences and hidden columns back out.
	s := m.Config.SeqLen
	q, d := p.Shape.Q, p.Shape.D
	nseqLocal := m.batch / (q * d)
	hq := m.Config.Hidden / q
	local := ws.GetUninit(nseqLocal, hq)
	tensor.SubMatrixInto(local, dpooled, p.BlockRow()*nseqLocal, p.J*hq)
	dh := ws.GetUninit(nseqLocal*s, hq)
	meanPoolBackwardInto(dh, local, s)
	ws.Put(local)
	p.W.Compute(float64(dh.Size()))
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		prev := dh
		dh = m.Blocks[i].Backward(p, prev)
		ws.Put(prev)
	}
	dx := m.Embed.Backward(p, dh)
	ws.Put(dh, dx)
	// Complete the depth all-reduces the layers queued: after this every
	// parameter gradient is final and the optimiser may step.
	p.DrainGradients()
}

// addPositionalLocal adds the local slice of the fixed positional encoding:
// local row r is sequence position r mod s; local columns are the J-th
// hidden block. The result is a workspace buffer (the embedding output is
// retained by the embedding layer and must not be mutated).
func (m *DistModel) addPositionalLocal(p *tesseract.Proc, h *tensor.Matrix) *tensor.Matrix {
	s := m.Config.SeqLen
	hq := m.Config.Hidden / p.Shape.Q
	p.W.Compute(float64(h.Size()) * compute.FlopsPerAdd)
	out := p.W.Workspace().GetUninit(h.Rows, h.Cols)
	for r := 0; r < h.Rows; r++ {
		prow := m.Pos.Row(r % s)[p.J*hq : (p.J+1)*hq]
		hrow := h.Row(r)
		orow := out.Row(r)
		for j := range orow {
			orow[j] = hrow[j] + prow[j]
		}
	}
	return out
}

// DistributeBatch slices a global token matrix [b·s, patchDim] into this
// processor's A block. Whole sequences land on one processor, which requires
// b to divide by d·q.
func DistributeBatch(p *tesseract.Proc, x *tensor.Matrix, s int) *tensor.Matrix {
	b := x.Rows / s
	if b%(p.Shape.Q*p.Shape.D) != 0 {
		panic(fmt.Sprintf("vit: batch %d not divisible by d*q = %d", b, p.Shape.Q*p.Shape.D))
	}
	return p.DistributeA(x)
}
