package vit

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tesseract"
)

// raggedData builds a dataset whose test set (12 samples) does not divide
// common batch sizes, exposing the dropped-tail bug.
func raggedData() (*Dataset, ModelConfig) {
	dcfg := DataConfig{
		Classes: 4, ImageSize: 8, Channels: 3, PatchSize: 4,
		Train: 8, Test: 3, Noise: 0.3, Seed: 11,
	}
	ds := NewDataset(dcfg)
	mcfg := ModelConfig{
		PatchDim: dcfg.PatchDim(), SeqLen: dcfg.Patches(),
		// Seed 2 gives the untrained model 7/12 on this test set, so a
		// dropped or padded-in tail visibly shifts the score.
		Hidden: 16, Heads: 4, Layers: 2, Classes: dcfg.Classes, Seed: 2,
	}
	return ds, mcfg
}

// evalReference counts test-set accuracy one sample at a time — trivially
// covering every sample — as the oracle for the batched eval paths.
func evalReference(model *Model, ds *Dataset) float64 {
	correct := 0
	for i := range ds.Test {
		x, labels := ds.Batch(ds.Test, []int{i})
		correct += nn.CorrectCount(model.Forward(x), labels)
	}
	return float64(correct) / float64(len(ds.Test))
}

// TestEvalSerialCoversTail is the dropped-tail regression: with 12 test
// samples and batch 8 the old evalSerial scored only the first 8, and with
// a batch larger than the test set it scored nothing and returned 0.
// Per-sample logits are independent, so every batch size must give the
// reference accuracy exactly.
func TestEvalSerialCoversTail(t *testing.T) {
	ds, mcfg := raggedData()
	model := NewModel(mcfg)
	want := evalReference(model, ds)
	if want == 0 {
		t.Fatal("reference accuracy is 0 — the oracle cannot distinguish the bug")
	}
	for _, batch := range []int{1, 4, 8, 12, 16, 100} {
		if got := evalSerial(model, ds, batch); got != want {
			t.Fatalf("evalSerial(batch=%d) = %g, want %g — test-set tail dropped", batch, got, want)
		}
	}
}

// TestEvalDistCoversTail checks the distributed eval pads the final partial
// batch to mesh divisibility, counts only real rows, and agrees exactly
// with the serial reference on [2,2,1] and [2,2,2] meshes — including a
// batch larger than the whole test set (the old code returned 0).
func TestEvalDistCoversTail(t *testing.T) {
	ds, mcfg := raggedData()
	want := evalReference(NewModel(mcfg), ds)
	for _, sh := range []struct{ q, d int }{{2, 1}, {2, 2}} {
		for _, batch := range []int{4, 8, 16} {
			accs := make([]float64, sh.q*sh.q*sh.d)
			c := dist.New(dist.Config{WorldSize: sh.q * sh.q * sh.d})
			err := c.Run(func(w *dist.Worker) error {
				f := tesseract.NewFamily(w, sh.q, sh.d)
				model := NewDistModel(f, mcfg)
				accs[w.Rank()] = evalDist(f, model, ds, batch, mcfg.SeqLen)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for r, got := range accs {
				if got != want {
					t.Fatalf("[%d,%d,%d] batch=%d rank %d: evalDist = %g, want %g",
						sh.q, sh.q, sh.d, batch, r, got, want)
				}
			}
		}
	}
}

// TestHistoryAccuraciesAreExactCounts replays one serial epoch by hand and
// checks the recorded train accuracy is the exact integer count ratio — the
// truncating int(Accuracy·n) accumulation understated it for counts like 29
// of 100.
func TestHistoryAccuraciesAreExactCounts(t *testing.T) {
	ds, mcfg := tinyData()
	tc := TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 5}
	hist := TrainSerial(ds, mcfg, tc)

	model := NewModel(mcfg)
	opt := nn.NewAdam(tc.LR, tc.WeightDecay)
	params := model.Params()
	order := epochOrder(len(ds.Train), 0, tc.Seed)
	var correct, seen int
	for start := 0; start+tc.BatchSize <= len(order); start += tc.BatchSize {
		x, labels := ds.Batch(ds.Train, order[start:start+tc.BatchSize])
		logits := model.Forward(x)
		correct += nn.CorrectCount(logits, labels)
		seen += len(labels)
		_, dlogits := nn.CrossEntropy(logits, labels)
		for _, p := range params {
			p.ZeroGrad()
		}
		model.Backward(dlogits)
		opt.Step(params)
	}
	if want := float64(correct) / float64(seen); hist.TrainAcc[0] != want {
		t.Fatalf("recorded train accuracy %g is not the exact count ratio %g", hist.TrainAcc[0], want)
	}
	if hist.TestAcc[0] != evalSerial(model, ds, tc.BatchSize) {
		t.Fatal("recorded test accuracy differs from a direct eval of the trained model")
	}
}
