// Package nn is the serial reference implementation of every layer the
// distributed schemes parallelise: linear, layer normalisation, multi-head
// attention, the Transformer MLP and block, plus losses and optimisers.
// All distributed packages (tesseract, megatron, optimus) are tested for
// numerical agreement against this package, and the optimisers here are
// reused by the distributed trainers (they act elementwise on local shards,
// so the same code drives both worlds).
package nn

import (
	"math"

	"repro/internal/tensor"
)

// Param is one trainable tensor together with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam wraps a value matrix with a zeroed gradient of the same shape.
func NewParam(name string, value *tensor.Matrix) *Param {
	var grad *tensor.Matrix
	if value.Phantom() {
		grad = tensor.NewPhantom(value.Rows, value.Cols)
	} else {
		grad = tensor.New(value.Rows, value.Cols)
	}
	return &Param{Name: name, Value: value, Grad: grad}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// AccumGrad adds g into the gradient accumulator.
func (p *Param) AccumGrad(g *tensor.Matrix) { tensor.AddInPlace(p.Grad, g) }

// Optimizer updates a parameter set from its accumulated gradients.
type Optimizer interface {
	// Step applies one update and advances internal state.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step applies v ← v − lr·(g + wd·v) to every parameter.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Value.Phantom() {
			continue
		}
		for i, g := range p.Grad.Data {
			p.Value.Data[i] -= s.LR * (g + s.WeightDecay*p.Value.Data[i])
		}
	}
}

// Adam implements the Adam optimiser with decoupled weight decay (AdamW),
// the configuration the paper's ViT experiment uses (lr 0.003, weight decay
// 0.3). State is keyed by parameter identity in call order, so serial and
// distributed trainers that register parameters in the same order evolve
// identically.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t     int
	m, v  map[*Param]*tensor.Matrix
	ready bool

	// Moment slices aligned with the last params slice seen, so the steady
	// path (trainers pass the identical slice every step) does one pointer
	// compare per parameter instead of two map lookups.
	cachedParams []*Param
	cachedM      []*tensor.Matrix
	cachedV      []*tensor.Matrix
}

// NewAdam returns an Adam optimiser with the usual defaults for unset
// moments (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay}
}

// Step applies one Adam update to every parameter.
func (a *Adam) Step(params []*Param) {
	if !a.ready {
		a.m = make(map[*Param]*tensor.Matrix)
		a.v = make(map[*Param]*tensor.Matrix)
		a.ready = true
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	if !a.cacheMatches(params) {
		a.rebuildCache(params)
	}
	for i, p := range params {
		if p.Value.Phantom() {
			continue
		}
		// The vectorised kernel performs exactly the scalar update sequence
		// per element (see tensor.AdamUpdate) — trajectories are unchanged.
		tensor.AdamUpdate(p.Value, p.Grad, a.cachedM[i], a.cachedV[i], a.LR, a.Beta1, a.Beta2, a.Eps, a.WeightDecay, bc1, bc2)
	}
}

// StepCount returns the number of Adam steps taken so far — the clock the
// bias corrections run on. Checkpoints record it so a restored optimiser
// resumes with the same corrections.
func (a *Adam) StepCount() int { return a.t }

// SetStepCount rewinds or advances the bias-correction clock, as when
// restoring optimiser state from a checkpoint.
func (a *Adam) SetStepCount(t int) {
	a.t = t
	a.cachedParams = nil
}

// Moments returns the first and second moment accumulators for p, or nils
// if p has never been stepped (or is phantom).
func (a *Adam) Moments(p *Param) (m, v *tensor.Matrix) {
	if !a.ready {
		return nil, nil
	}
	return a.m[p], a.v[p]
}

// SetMoments installs moment accumulators for p, replacing any existing
// state. A nil m or v leaves that moment untouched (so the two can be
// installed in separate calls). Used when restoring from a checkpoint; the
// matrices are adopted, not copied.
func (a *Adam) SetMoments(p *Param, m, v *tensor.Matrix) {
	if !a.ready {
		a.m = make(map[*Param]*tensor.Matrix)
		a.v = make(map[*Param]*tensor.Matrix)
		a.ready = true
	}
	if m != nil {
		a.m[p] = m
	}
	if v != nil {
		a.v[p] = v
	}
	a.cachedParams = nil
}

// cacheMatches reports whether the moment cache is aligned with params —
// same parameters, same order.
func (a *Adam) cacheMatches(params []*Param) bool {
	if len(params) != len(a.cachedParams) {
		return false
	}
	for i, p := range params {
		if a.cachedParams[i] != p {
			return false
		}
	}
	return true
}

// rebuildCache realigns the moment slices with params, creating state for
// parameters seen for the first time. The maps stay authoritative, so a
// parameter's moments survive reordering or regrouping across calls.
func (a *Adam) rebuildCache(params []*Param) {
	a.cachedParams = append(a.cachedParams[:0], params...)
	a.cachedM = a.cachedM[:0]
	a.cachedV = a.cachedV[:0]
	for _, p := range params {
		if p.Value.Phantom() {
			a.cachedM = append(a.cachedM, nil)
			a.cachedV = append(a.cachedV, nil)
			continue
		}
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			a.v[p] = v
		}
		a.cachedM = append(a.cachedM, m)
		a.cachedV = append(a.cachedV, v)
	}
}
