// Package nn is the serial reference implementation of every layer the
// distributed schemes parallelise: linear, layer normalisation, multi-head
// attention, the Transformer MLP and block, plus losses and optimisers.
// All distributed packages (tesseract, megatron, optimus) are tested for
// numerical agreement against this package, and the optimisers here are
// reused by the distributed trainers (they act elementwise on local shards,
// so the same code drives both worlds).
package nn

import (
	"math"

	"repro/internal/tensor"
)

// Param is one trainable tensor together with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam wraps a value matrix with a zeroed gradient of the same shape.
func NewParam(name string, value *tensor.Matrix) *Param {
	var grad *tensor.Matrix
	if value.Phantom() {
		grad = tensor.NewPhantom(value.Rows, value.Cols)
	} else {
		grad = tensor.New(value.Rows, value.Cols)
	}
	return &Param{Name: name, Value: value, Grad: grad}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// AccumGrad adds g into the gradient accumulator.
func (p *Param) AccumGrad(g *tensor.Matrix) { tensor.AddInPlace(p.Grad, g) }

// Optimizer updates a parameter set from its accumulated gradients.
type Optimizer interface {
	// Step applies one update and advances internal state.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step applies v ← v − lr·(g + wd·v) to every parameter.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Value.Phantom() {
			continue
		}
		for i, g := range p.Grad.Data {
			p.Value.Data[i] -= s.LR * (g + s.WeightDecay*p.Value.Data[i])
		}
	}
}

// Adam implements the Adam optimiser with decoupled weight decay (AdamW),
// the configuration the paper's ViT experiment uses (lr 0.003, weight decay
// 0.3). State is keyed by parameter identity in call order, so serial and
// distributed trainers that register parameters in the same order evolve
// identically.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t     int
	m, v  map[*Param]*tensor.Matrix
	ready bool
}

// NewAdam returns an Adam optimiser with the usual defaults for unset
// moments (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay}
}

// Step applies one Adam update to every parameter.
func (a *Adam) Step(params []*Param) {
	if !a.ready {
		a.m = make(map[*Param]*tensor.Matrix)
		a.v = make(map[*Param]*tensor.Matrix)
		a.ready = true
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.Value.Phantom() {
			continue
		}
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			a.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / bc1
			vh := v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * (mh/(math.Sqrt(vh)+a.Eps) + a.WeightDecay*p.Value.Data[i])
		}
	}
}
