package nn

import "repro/internal/tensor"

// MLP is the Transformer feed-forward module (§3.2.1): h → 4h with GELU,
// then 4h → h.
type MLP struct {
	H    int
	Fc1  *Linear
	Fc2  *Linear
	Mult int
}

// NewMLP draws the two projection weights from rng in order Fc1, Fc2.
func NewMLP(h int, rng *tensor.RNG) *MLP {
	return &MLP{
		H:    h,
		Mult: 4,
		Fc1:  NewLinear(h, 4*h, ActGELU, true, rng),
		Fc2:  NewLinear(4*h, h, ActNone, true, rng),
	}
}

// Params returns the trainable parameters.
func (m *MLP) Params() []*Param {
	return append(m.Fc1.Params(), m.Fc2.Params()...)
}

// Forward applies the two projections.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	return m.Fc2.Forward(m.Fc1.Forward(x))
}

// Backward propagates through both projections.
func (m *MLP) Backward(dy *tensor.Matrix) *tensor.Matrix {
	return m.Fc1.Backward(m.Fc2.Backward(dy))
}

// Block is one Megatron-style Transformer layer (§2.4): self-attention and
// MLP, each wrapped in a residual connection followed by layer normalisation
// (post-LN, as in the original Transformer the paper builds on).
type Block struct {
	H int

	Attn *MultiHeadAttention
	Ln1  *LayerNorm
	Mlp  *MLP
	Ln2  *LayerNorm
}

// NewBlock draws weights from rng in the order Attn(Wq,Wk,Wv,Wo), MLP(Fc1,Fc2).
func NewBlock(h, heads, seqLen int, rng *tensor.RNG) *Block {
	return &Block{
		H:    h,
		Attn: NewMultiHeadAttention(h, heads, seqLen, rng),
		Ln1:  NewLayerNorm(h),
		Mlp:  NewMLP(h, rng),
		Ln2:  NewLayerNorm(h),
	}
}

// Params returns the trainable parameters of the block.
func (b *Block) Params() []*Param {
	return append(b.Attn.Params(), b.Mlp.Params()...)
}

// Forward computes z = LN₂(y + MLP(y)) with y = LN₁(x + Attn(x)).
func (b *Block) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := b.Ln1.Forward(tensor.Add(x, b.Attn.Forward(x)))
	return b.Ln2.Forward(tensor.Add(y, b.Mlp.Forward(y)))
}

// Backward propagates through the block.
func (b *Block) Backward(dz *tensor.Matrix) *tensor.Matrix {
	dr2 := b.Ln2.Backward(dz)
	dy := tensor.Add(dr2, b.Mlp.Backward(dr2))
	dr1 := b.Ln1.Backward(dy)
	return tensor.Add(dr1, b.Attn.Backward(dr1))
}
