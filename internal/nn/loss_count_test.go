package nn

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

// countLogits builds n single-column-pair logits where exactly `correct`
// rows have argmax equal to their label.
func countLogits(n, correct int) (*tensor.Matrix, []int) {
	logits := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = 1
		if i < correct {
			logits.Set(i, 1, 2) // argmax 1 == label
		} else {
			logits.Set(i, 0, 2) // argmax 0 != label
		}
	}
	return logits, labels
}

// TestCorrectCountAvoidsFloatTruncation pins the trainer bug this fixes:
// int(Accuracy·n) truncates the float64 round-trip and undercounts (29/100
// → 0.29·100 = 28.999… → 28). CorrectCount stays in the integers.
func TestCorrectCountAvoidsFloatTruncation(t *testing.T) {
	logits, labels := countLogits(100, 29)
	if got := CorrectCount(logits, labels); got != 29 {
		t.Fatalf("CorrectCount = %d, want 29", got)
	}
	// The expression the trainers used to evaluate — kept here as the
	// counter-example that motivates CorrectCount.
	if old := int(Accuracy(logits, labels) * float64(len(labels))); old == 29 {
		t.Fatal("the float round-trip no longer truncates — this regression test needs a new counter-example")
	}
	// The truncation is not an isolated fluke: sweep every count at n=100
	// and require CorrectCount exact throughout.
	for c := 0; c <= 100; c++ {
		logits, labels := countLogits(100, c)
		if got := CorrectCount(logits, labels); got != c {
			t.Fatalf("CorrectCount(%d/100) = %d", c, got)
		}
	}
}

func TestCorrectCountIgnoresExtraLogitRows(t *testing.T) {
	// Padded distributed eval: logits may have more rows than labels; only
	// labelled rows count.
	logits, labels := countLogits(8, 8)
	if got := CorrectCount(logits, labels[:5]); got != 5 {
		t.Fatalf("CorrectCount over 5 labels of 8 rows = %d, want 5", got)
	}
}

func TestCorrectCountPanicsOnTooManyLabels(t *testing.T) {
	logits, _ := countLogits(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("CorrectCount with more labels than rows must panic with a clear message")
		}
	}()
	CorrectCount(logits, []int{1, 1, 1, 1})
}

func TestAccuracyHardenedAgainstTooManyLabels(t *testing.T) {
	// Regression: this used to be an opaque index-out-of-range runtime
	// panic from pred[i]; it must now be an explicit shape panic that
	// names the mismatch.
	logits, _ := countLogits(2, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Accuracy with more labels than rows must panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "labels") {
			t.Fatalf("want a clear shape panic naming the label mismatch, got %v", r)
		}
	}()
	Accuracy(logits, []int{1, 1, 1})
}

func TestAccuracyEmptyInputs(t *testing.T) {
	if a := Accuracy(tensor.New(0, 2), nil); a != 0 {
		t.Fatalf("empty logits accuracy = %g", a)
	}
	logits, _ := countLogits(3, 3)
	if a := Accuracy(logits, nil); a != 0 {
		t.Fatalf("no-label accuracy = %g", a)
	}
}
