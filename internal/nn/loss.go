package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// CrossEntropy computes the mean softmax cross-entropy of logits [n, classes]
// against integer labels, returning the scalar loss and dLoss/dLogits.
func CrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	grad := tensor.New(logits.Rows, logits.Cols)
	loss := CrossEntropyInto(grad, logits, labels)
	return loss, grad
}

// CrossEntropyInto is CrossEntropy with a caller-supplied gradient buffer
// (shape [n, classes], fully overwritten), so hot training loops can draw
// dLoss/dLogits from a workspace instead of allocating per step. The rounded
// op sequence — row softmax, subtract 1 at the label, scale by 1/n — is the
// one CrossEntropy has always performed (the clone it used to take between
// softmax and subtraction moved bits, not values), so the two entry points
// are bitwise interchangeable.
func CrossEntropyInto(grad, logits *tensor.Matrix, labels []int) float64 {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: CrossEntropy %d rows vs %d labels", logits.Rows, len(labels)))
	}
	if !grad.SameShape(logits) {
		panic(fmt.Sprintf("nn: CrossEntropyInto grad %dx%d vs logits %dx%d",
			grad.Rows, grad.Cols, logits.Rows, logits.Cols))
	}
	if grad.Phantom() || logits.Phantom() {
		return 0
	}
	tensor.SoftmaxRowsTo(grad, logits)
	n := float64(logits.Rows)
	var loss float64
	for i, lbl := range labels {
		if lbl < 0 || lbl >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range %d", lbl, logits.Cols))
		}
		p := grad.At(i, lbl)
		loss -= math.Log(math.Max(p, 1e-300))
		grad.Set(i, lbl, p-1)
	}
	tensor.ScaleInPlace(grad, 1/n)
	return loss / n
}

// CorrectCount returns the number of rows whose argmax equals the label —
// the primitive trainers must use to accumulate accuracy across batches.
// Counting via int(Accuracy(...)·n) round-trips the count through a float64
// division and truncates downward (29 correct of 100 → 0.29·100 =
// 28.999… → 28), silently under-reporting accuracy; CorrectCount never
// leaves the integers. Extra logits rows beyond len(labels) are ignored,
// which is exactly what a padded distributed eval batch needs; more labels
// than rows is a caller bug and panics.
func CorrectCount(logits *tensor.Matrix, labels []int) int {
	if len(labels) > logits.Rows {
		panic(fmt.Sprintf("nn: CorrectCount got %d labels for %d logit rows", len(labels), logits.Rows))
	}
	pred := tensor.ArgmaxRows(logits)
	correct := 0
	for i, lbl := range labels {
		if pred[i] == lbl {
			correct++
		}
	}
	return correct
}

// Accuracy returns the fraction of rows whose argmax equals the label. Like
// CorrectCount it tolerates extra logits rows and panics, rather than
// indexing out of range, when labels outnumber rows.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if logits.Rows == 0 || len(labels) == 0 {
		return 0
	}
	return float64(CorrectCount(logits, labels)) / float64(len(labels))
}

// MSE computes the mean squared error between pred and target along with the
// gradient with respect to pred.
func MSE(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	if !pred.SameShape(target) {
		panic("nn: MSE shape mismatch")
	}
	diff := tensor.Sub(pred, target)
	n := float64(pred.Size())
	var loss float64
	for _, v := range diff.Data {
		loss += v * v
	}
	return loss / n, tensor.Scale(2/n, diff)
}
