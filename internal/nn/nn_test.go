package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// fdCheck compares an analytic input gradient against central finite
// differences of a scalar loss L = Σ dy ⊙ f(x).
func fdCheck(t *testing.T, name string, x, dy, analytic *tensor.Matrix, forward func(*tensor.Matrix) *tensor.Matrix, tol float64) {
	t.Helper()
	const eps = 1e-6
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			orig := x.At(i, j)
			x.Set(i, j, orig+eps)
			up := forward(x)
			x.Set(i, j, orig-eps)
			dn := forward(x)
			x.Set(i, j, orig)
			var fd float64
			for k := range up.Data {
				fd += dy.Data[k] * (up.Data[k] - dn.Data[k]) / (2 * eps)
			}
			if math.Abs(fd-analytic.At(i, j)) > tol {
				t.Fatalf("%s grad (%d,%d): fd=%g analytic=%g", name, i, j, fd, analytic.At(i, j))
			}
		}
	}
}

func TestLinearForwardShape(t *testing.T) {
	l := NewLinear(4, 6, ActNone, true, tensor.NewRNG(1))
	y := l.Forward(tensor.New(3, 4))
	if y.Rows != 3 || y.Cols != 6 {
		t.Fatalf("shape %dx%d", y.Rows, y.Cols)
	}
}

func TestLinearInputGradFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear(4, 5, ActGELU, true, rng)
	x := tensor.RandomMatrix(3, 4, rng)
	dy := tensor.RandomMatrix(3, 5, rng)
	l.Forward(x)
	dx := l.Backward(dy)
	fdCheck(t, "linear", x, dy, dx, l.Forward, 1e-5)
}

func TestLinearWeightGradFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(3)
	l := NewLinear(3, 4, ActNone, true, rng)
	x := tensor.RandomMatrix(2, 3, rng)
	dy := tensor.RandomMatrix(2, 4, rng)
	l.W.ZeroGrad()
	l.Forward(x)
	l.Backward(dy)
	const eps = 1e-6
	for i := 0; i < l.W.Value.Rows; i++ {
		for j := 0; j < l.W.Value.Cols; j++ {
			orig := l.W.Value.At(i, j)
			l.W.Value.Set(i, j, orig+eps)
			up := l.Forward(x)
			l.W.Value.Set(i, j, orig-eps)
			dn := l.Forward(x)
			l.W.Value.Set(i, j, orig)
			var fd float64
			for k := range up.Data {
				fd += dy.Data[k] * (up.Data[k] - dn.Data[k]) / (2 * eps)
			}
			if math.Abs(fd-l.W.Grad.At(i, j)) > 1e-5 {
				t.Fatalf("dW (%d,%d): fd=%g analytic=%g", i, j, fd, l.W.Grad.At(i, j))
			}
		}
	}
	// Bias gradient: column sums of dy.
	want := tensor.ColSums(dy)
	if l.B.Grad.MaxAbsDiff(want) > 1e-12 {
		t.Fatal("bias gradient must be column sums of dy")
	}
}

func TestLayerNormForwardStatistics(t *testing.T) {
	rng := tensor.NewRNG(4)
	l := NewLayerNorm(16)
	x := tensor.RandomMatrix(5, 16, rng)
	tensor.ScaleInPlace(x, 3)
	y := l.Forward(x)
	for i := 0; i < y.Rows; i++ {
		var sum, sq float64
		for j := 0; j < y.Cols; j++ {
			sum += y.At(i, j)
			sq += y.At(i, j) * y.At(i, j)
		}
		mean := sum / 16
		variance := sq/16 - mean*mean
		if math.Abs(mean) > 1e-12 {
			t.Fatalf("row %d mean %g", i, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("row %d variance %g", i, variance)
		}
	}
}

func TestLayerNormBackwardFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(5)
	l := NewLayerNorm(6)
	x := tensor.RandomMatrix(3, 6, rng)
	dy := tensor.RandomMatrix(3, 6, rng)
	l.Forward(x)
	dx := l.Backward(dy)
	fdCheck(t, "layernorm", x, dy, dx, l.Forward, 1e-4)
}

func TestLayerNormScaleInvariance(t *testing.T) {
	// LayerNorm output is invariant to scaling the input (up to eps).
	rng := tensor.NewRNG(6)
	l := NewLayerNorm(8)
	x := tensor.RandomMatrix(2, 8, rng)
	y1 := l.Forward(x)
	y2 := l.Forward(tensor.Scale(10, x))
	// Exact invariance is broken only by the eps inside 1/sqrt(var+eps).
	if y1.MaxAbsDiff(y2) > 1e-3 {
		t.Fatalf("layernorm not scale invariant: %g", y1.MaxAbsDiff(y2))
	}
}

func TestAttentionBackwardFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(7)
	a := NewMultiHeadAttention(4, 2, 3, rng)
	x := tensor.RandomMatrix(6, 4, rng) // 2 sequences of 3
	dy := tensor.RandomMatrix(6, 4, rng)
	a.Forward(x)
	dx := a.Backward(dy)
	fdCheck(t, "attention", x, dy, dx, a.Forward, 1e-4)
}

func TestMLPBackwardFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(8)
	m := NewMLP(4, rng)
	x := tensor.RandomMatrix(3, 4, rng)
	dy := tensor.RandomMatrix(3, 4, rng)
	m.Forward(x)
	dx := m.Backward(dy)
	fdCheck(t, "mlp", x, dy, dx, m.Forward, 1e-5)
}

func TestBlockBackwardFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(9)
	b := NewBlock(4, 2, 2, rng)
	x := tensor.RandomMatrix(4, 4, rng)
	dy := tensor.RandomMatrix(4, 4, rng)
	b.Forward(x)
	dx := b.Backward(dy)
	fdCheck(t, "block", x, dy, dx, b.Forward, 1e-4)
}

func TestCrossEntropyGradFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(10)
	logits := tensor.RandomMatrix(3, 5, rng)
	labels := []int{1, 4, 0}
	_, grad := CrossEntropy(logits, labels)
	const eps = 1e-6
	for i := 0; i < logits.Rows; i++ {
		for j := 0; j < logits.Cols; j++ {
			orig := logits.At(i, j)
			logits.Set(i, j, orig+eps)
			up, _ := CrossEntropy(logits, labels)
			logits.Set(i, j, orig-eps)
			dn, _ := CrossEntropy(logits, labels)
			logits.Set(i, j, orig)
			fd := (up - dn) / (2 * eps)
			if math.Abs(fd-grad.At(i, j)) > 1e-6 {
				t.Fatalf("CE grad (%d,%d): fd=%g analytic=%g", i, j, fd, grad.At(i, j))
			}
		}
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromRows([][]float64{{100, 0, 0}, {0, 100, 0}})
	loss, _ := CrossEntropy(logits, []int{0, 1})
	if loss > 1e-9 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %g", loss)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromRows([][]float64{{1, 2}, {3, 1}, {0, 5}})
	if got := Accuracy(logits, []int{1, 0, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy %g", got)
	}
}

func TestMSE(t *testing.T) {
	pred := tensor.FromRows([][]float64{{1, 2}})
	target := tensor.FromRows([][]float64{{0, 4}})
	loss, grad := MSE(pred, target)
	if math.Abs(loss-(1+4)/2.0) > 1e-12 {
		t.Fatalf("MSE loss %g", loss)
	}
	if grad.At(0, 0) != 1 || grad.At(0, 1) != -2 {
		t.Fatalf("MSE grad %v", grad)
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("w", tensor.FromRows([][]float64{{1, 2}}))
	p.Grad.Set(0, 0, 0.5)
	p.Grad.Set(0, 1, -0.5)
	opt := &SGD{LR: 0.1}
	opt.Step([]*Param{p})
	if math.Abs(p.Value.At(0, 0)-0.95) > 1e-12 || math.Abs(p.Value.At(0, 1)-2.05) > 1e-12 {
		t.Fatalf("SGD step wrong: %v", p.Value)
	}
}

func TestAdamMatchesReference(t *testing.T) {
	// Hand-computed first Adam step: m̂=g, v̂=g², so Δ = lr·g/(|g|+eps).
	p := NewParam("w", tensor.FromRows([][]float64{{1}}))
	p.Grad.Set(0, 0, 0.5)
	opt := NewAdam(0.1, 0)
	opt.Step([]*Param{p})
	want := 1 - 0.1*0.5/(0.5+1e-8)
	if math.Abs(p.Value.At(0, 0)-want) > 1e-9 {
		t.Fatalf("Adam first step %g, want %g", p.Value.At(0, 0), want)
	}
}

func TestAdamDeterministic(t *testing.T) {
	runOnce := func() float64 {
		p := NewParam("w", tensor.FromRows([][]float64{{1, -1}}))
		opt := NewAdam(0.01, 0.1)
		for i := 0; i < 10; i++ {
			p.Grad.Set(0, 0, float64(i)*0.1)
			p.Grad.Set(0, 1, -float64(i)*0.1)
			opt.Step([]*Param{p})
		}
		return p.Value.At(0, 0) + p.Value.At(0, 1)
	}
	if runOnce() != runOnce() {
		t.Fatal("Adam must be deterministic")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := NewParam("w", tensor.FromRows([][]float64{{5}}))
	opt := NewAdam(0.1, 0)
	for i := 0; i < 500; i++ {
		p.ZeroGrad()
		p.Grad.Set(0, 0, 2*p.Value.At(0, 0)) // d/dw w²
		opt.Step([]*Param{p})
	}
	if math.Abs(p.Value.At(0, 0)) > 1e-2 {
		t.Fatalf("Adam failed to minimise w²: w=%g", p.Value.At(0, 0))
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// A tiny end-to-end sanity check: a 1-block Transformer regression.
	rng := tensor.NewRNG(11)
	b := NewBlock(4, 2, 2, rng)
	head := NewLinear(4, 2, ActNone, true, rng)
	x := tensor.RandomMatrix(8, 4, rng)
	target := tensor.RandomMatrix(8, 2, rng)
	params := append(b.Params(), head.Params()...)
	opt := NewAdam(5e-3, 0)
	var first, last float64
	for i := 0; i < 30; i++ {
		y := head.Forward(b.Forward(x))
		loss, dy := MSE(y, target)
		if i == 0 {
			first = loss
		}
		last = loss
		for _, p := range params {
			p.ZeroGrad()
		}
		b.Backward(head.Backward(dy))
		opt.Step(params)
	}
	if last >= first*0.7 {
		t.Fatalf("loss did not drop: %g -> %g", first, last)
	}
}

func TestParamZeroAndAccum(t *testing.T) {
	p := NewParam("w", tensor.New(2, 2))
	g := tensor.FromRows([][]float64{{1, 1}, {1, 1}})
	p.AccumGrad(g)
	p.AccumGrad(g)
	if p.Grad.At(0, 0) != 2 {
		t.Fatal("AccumGrad must accumulate")
	}
	p.ZeroGrad()
	if p.Grad.At(0, 0) != 0 {
		t.Fatal("ZeroGrad must clear")
	}
}
