package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MultiHeadAttention is the serial self-attention module of §2.4 / Eq. 6:
// Q, K, V projections, per-head scaled dot-product attention, concatenation,
// and an output projection. Input rows are a batch of sequences flattened to
// [b·s, h]; SeqLen tells the layer where sequence boundaries lie.
type MultiHeadAttention struct {
	H, Heads, SeqLen int

	Wq, Wk, Wv, Wo *Linear

	// stashes for backward, per (sequence, head) in row-major order.
	q, k, v *tensor.Matrix
	probs   []*tensor.Matrix
}

// NewMultiHeadAttention draws the four projection weights from rng in the
// fixed order Wq, Wk, Wv, Wo (the distributed implementations consume the
// same stream in the same order).
func NewMultiHeadAttention(h, heads, seqLen int, rng *tensor.RNG) *MultiHeadAttention {
	if h%heads != 0 {
		panic(fmt.Sprintf("nn: hidden %d not divisible by heads %d", h, heads))
	}
	return &MultiHeadAttention{
		H: h, Heads: heads, SeqLen: seqLen,
		Wq: NewLinear(h, h, ActNone, true, rng),
		Wk: NewLinear(h, h, ActNone, true, rng),
		Wv: NewLinear(h, h, ActNone, true, rng),
		Wo: NewLinear(h, h, ActNone, true, rng),
	}
}

// Params returns all trainable parameters.
func (a *MultiHeadAttention) Params() []*Param {
	var out []*Param
	for _, l := range []*Linear{a.Wq, a.Wk, a.Wv, a.Wo} {
		out = append(out, l.Params()...)
	}
	return out
}

// Forward runs self-attention over x of shape [b·s, h].
func (a *MultiHeadAttention) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Rows%a.SeqLen != 0 {
		panic(fmt.Sprintf("nn: attention rows %d not divisible by seq len %d", x.Rows, a.SeqLen))
	}
	q := a.Wq.Forward(x)
	k := a.Wk.Forward(x)
	v := a.Wv.Forward(x)
	a.q, a.k, a.v = q, k, v

	nseq := x.Rows / a.SeqLen
	dh := a.H / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	out := tensor.New(x.Rows, a.H)
	a.probs = make([]*tensor.Matrix, 0, nseq*a.Heads)
	for s := 0; s < nseq; s++ {
		for hd := 0; hd < a.Heads; hd++ {
			qs := q.SubMatrix(s*a.SeqLen, hd*dh, a.SeqLen, dh)
			ks := k.SubMatrix(s*a.SeqLen, hd*dh, a.SeqLen, dh)
			vs := v.SubMatrix(s*a.SeqLen, hd*dh, a.SeqLen, dh)
			scores := tensor.Scale(scale, tensor.MatMulNT(qs, ks))
			probs := tensor.SoftmaxRows(scores)
			a.probs = append(a.probs, probs)
			head := tensor.MatMul(probs, vs)
			out.SetSubMatrix(s*a.SeqLen, hd*dh, head)
		}
	}
	return a.Wo.Forward(out)
}

// Backward propagates gradients through the attention module.
func (a *MultiHeadAttention) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dout := a.Wo.Backward(dy)

	nseq := dout.Rows / a.SeqLen
	dh := a.H / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	dq := tensor.New(dout.Rows, a.H)
	dk := tensor.New(dout.Rows, a.H)
	dv := tensor.New(dout.Rows, a.H)
	for s := 0; s < nseq; s++ {
		for hd := 0; hd < a.Heads; hd++ {
			probs := a.probs[s*a.Heads+hd]
			dhead := dout.SubMatrix(s*a.SeqLen, hd*dh, a.SeqLen, dh)
			qs := a.q.SubMatrix(s*a.SeqLen, hd*dh, a.SeqLen, dh)
			ks := a.k.SubMatrix(s*a.SeqLen, hd*dh, a.SeqLen, dh)
			vs := a.v.SubMatrix(s*a.SeqLen, hd*dh, a.SeqLen, dh)

			dvs := tensor.MatMulTN(probs, dhead)
			dprobs := tensor.MatMulNT(dhead, vs)
			dscores := tensor.Scale(scale, tensor.SoftmaxRowsBackward(probs, dprobs))
			dqs := tensor.MatMul(dscores, ks)
			dks := tensor.MatMulTN(dscores, qs)

			dq.SetSubMatrix(s*a.SeqLen, hd*dh, dqs)
			dk.SetSubMatrix(s*a.SeqLen, hd*dh, dks)
			dv.SetSubMatrix(s*a.SeqLen, hd*dh, dvs)
		}
	}
	dx := a.Wq.Backward(dq)
	tensor.AddInPlace(dx, a.Wk.Backward(dk))
	tensor.AddInPlace(dx, a.Wv.Backward(dv))
	return dx
}
