package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Activation selects the nonlinearity fused into a Linear layer.
type Activation int

const (
	// ActNone applies no nonlinearity.
	ActNone Activation = iota
	// ActGELU applies the tanh-approximated GELU.
	ActGELU
)

// Linear is a fully connected layer y = x·W (+ bias) with an optional fused
// activation. W is initialised Xavier-uniform from the supplied RNG — the
// distributed packages consume the identical RNG stream so their sharded
// weights match this layer's exactly.
type Linear struct {
	In, Out int
	Act     Activation
	W       *Param
	B       *Param // nil when the layer has no bias

	x   *tensor.Matrix // stashed input
	pre *tensor.Matrix // stashed pre-activation
}

// NewLinear builds a Linear layer, drawing W from rng.
func NewLinear(in, out int, act Activation, bias bool, rng *tensor.RNG) *Linear {
	l := &Linear{In: in, Out: out, Act: act}
	l.W = NewParam("linear.w", tensor.XavierMatrix(in, out, rng))
	if bias {
		l.B = NewParam("linear.b", tensor.New(1, out))
	}
	return l
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param {
	if l.B == nil {
		return []*Param{l.W}
	}
	return []*Param{l.W, l.B}
}

// Forward computes the layer output for x of shape [rows, In].
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear forward %dx%d through %d->%d", x.Rows, x.Cols, l.In, l.Out))
	}
	l.x = x
	y := tensor.MatMul(x, l.W.Value)
	if l.B != nil {
		y = tensor.AddRowVector(y, l.B.Value)
	}
	l.pre = y
	if l.Act == ActGELU {
		return tensor.GELU(y)
	}
	return y
}

// Backward accumulates parameter gradients and returns the input gradient.
func (l *Linear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if l.Act == ActGELU {
		dy = tensor.Mul(dy, tensor.GELUGrad(l.pre))
	}
	l.W.AccumGrad(tensor.MatMulTN(l.x, dy))
	if l.B != nil {
		l.B.AccumGrad(tensor.ColSums(dy))
	}
	return tensor.MatMulNT(dy, l.W.Value)
}

// LayerNorm normalises each row to zero mean and unit variance (Eq. 13 of
// the paper, which uses no affine scale/shift).
type LayerNorm struct {
	H   int
	Eps float64

	xhat   *tensor.Matrix
	invstd *tensor.Matrix // per-row 1/sqrt(var+eps)
}

// NewLayerNorm builds a LayerNorm over rows of width h.
func NewLayerNorm(h int) *LayerNorm { return &LayerNorm{H: h, Eps: 1e-5} }

// Params returns nil: Eq. 13 layer normalisation has no trainable weights.
func (l *LayerNorm) Params() []*Param { return nil }

// Forward normalises each row of x.
func (l *LayerNorm) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.H {
		panic(fmt.Sprintf("nn: LayerNorm forward %dx%d with h=%d", x.Rows, x.Cols, l.H))
	}
	n := float64(l.H)
	sum := tensor.RowSums(x)
	sq := tensor.RowSums(tensor.Mul(x, x))
	mean := tensor.Scale(1/n, sum)
	variance := tensor.Sub(tensor.Scale(1/n, sq), tensor.Mul(mean, mean))
	inv := tensor.Apply(variance, func(v float64) float64 { return 1 / math.Sqrt(v+l.Eps) })
	xhat := tensor.MulColVector(tensor.SubColVector(x, mean), inv)
	l.xhat = xhat
	l.invstd = inv
	return xhat
}

// Backward implements Eq. 14:
//
//	X' = (dŶ − (Σ_j x̂_j·dŷ_j)·x̂/n − (Σ_j dŷ_j)/n) / sqrt(Var+ε)
func (l *LayerNorm) Backward(dy *tensor.Matrix) *tensor.Matrix {
	n := float64(l.H)
	dotXhat := tensor.RowSums(tensor.Mul(dy, l.xhat)) // Σ x̂·dŷ per row
	sumDy := tensor.RowSums(dy)                       // Σ dŷ per row
	term := tensor.Sub(dy, tensor.MulColVector(l.xhat, tensor.Scale(1/n, dotXhat)))
	term = tensor.SubColVector(term, tensor.Scale(1/n, sumDy))
	return tensor.MulColVector(term, l.invstd)
}
