// Package compute bridges tensor arithmetic and the simulated cluster: every
// operation both performs the computation (when operands are real) and
// charges its flop count to the calling worker's simulated clock (always,
// including in phantom mode). Distributed algorithms use these wrappers
// instead of calling the tensor package directly so that timing and
// arithmetic can never drift apart.
package compute

import (
	"repro/internal/dist"
	"repro/internal/tensor"
)

// Per-element flop estimates for non-GEMM kernels. They are small next to
// the matrix multiplies but keep the simulated clock honest.
const (
	FlopsPerAdd     = 1
	FlopsPerGELU    = 12 // tanh-approximation polynomial
	FlopsPerSoftmax = 6  // exp + max + normalise, amortised per element
	FlopsPerNorm    = 8  // layer-norm normalise step per element
)

// MatMul returns a·b and charges 2mnk flops.
func MatMul(w *dist.Worker, a, b *tensor.Matrix) *tensor.Matrix {
	w.ChargeGEMM(float64(a.Rows), float64(b.Cols), float64(a.Cols))
	return tensor.MatMul(a, b)
}

// MatMulInto computes c += a·b and charges 2mnk flops.
func MatMulInto(w *dist.Worker, c, a, b *tensor.Matrix) {
	w.ChargeGEMM(float64(a.Rows), float64(b.Cols), float64(a.Cols))
	tensor.MatMulInto(c, a, b)
}

// MatMulNT returns a·bᵀ and charges 2mnk flops.
func MatMulNT(w *dist.Worker, a, b *tensor.Matrix) *tensor.Matrix {
	w.ChargeGEMM(float64(a.Rows), float64(b.Rows), float64(a.Cols))
	return tensor.MatMulNT(a, b)
}

// MatMulTN returns aᵀ·b and charges 2mnk flops.
func MatMulTN(w *dist.Worker, a, b *tensor.Matrix) *tensor.Matrix {
	w.ChargeGEMM(float64(a.Cols), float64(b.Cols), float64(a.Rows))
	return tensor.MatMulTN(a, b)
}

// MatMulNTInto computes c = a·bᵀ (overwriting c) and charges 2mnk flops.
// Large products route through the packed NT kernel with a workspace-drawn
// transpose panel (bitwise identical to the plain kernel, roughly twice the
// throughput at SUMMA panel sizes — see BenchmarkGEMMKernels/NT256).
func MatMulNTInto(w *dist.Worker, c, a, b *tensor.Matrix) {
	w.ChargeGEMM(float64(a.Rows), float64(b.Rows), float64(a.Cols))
	if !c.Phantom() && !a.Phantom() && !b.Phantom() && tensor.NTPackProfitable(a.Rows, b.Rows, a.Cols) {
		ws := w.Workspace()
		pack := ws.GetUninit(a.Cols, b.Rows)
		tensor.MatMulNTIntoPacked(c, a, b, pack)
		ws.Put(pack)
		return
	}
	tensor.MatMulNTInto(c, a, b)
}

// MatMulTNInto computes c += aᵀ·b and charges 2mnk flops. Large products
// route through the packed TN kernel with a workspace-drawn transpose panel
// (bitwise identical; the in-place TN kernel's C traffic grows with k).
func MatMulTNInto(w *dist.Worker, c, a, b *tensor.Matrix) {
	w.ChargeGEMM(float64(a.Cols), float64(b.Cols), float64(a.Rows))
	if !c.Phantom() && !a.Phantom() && !b.Phantom() && tensor.TNPackProfitable(a.Cols, b.Cols, a.Rows) {
		ws := w.Workspace()
		pack := ws.GetUninit(a.Cols, a.Rows)
		tensor.MatMulTNIntoPacked(c, a, b, pack)
		ws.Put(pack)
		return
	}
	tensor.MatMulTNInto(c, a, b)
}

// MatMulBiasInto computes c += a·b with the bias row-add fused into the
// GEMM write-back. Charges 2mnk for the GEMM plus one flop per output
// element for the add — identical to MatMulInto + AddRowVectorInPlace, in
// clock and in bits.
func MatMulBiasInto(w *dist.Worker, c, a, b, bias *tensor.Matrix) {
	w.ChargeGEMM(float64(a.Rows), float64(b.Cols), float64(a.Cols))
	w.Compute(float64(c.Size()) * FlopsPerAdd)
	tensor.MatMulBiasInto(c, a, b, bias)
}

// MatMulBiasGELUInto computes pre += a·b with bias fused, writing GELU(pre)
// into act — the whole linear forward in one output pass. bias may be nil.
// Charges the GEMM plus the bias add (when present) plus FlopsPerGELU per
// element, exactly what the separate passes charge.
func MatMulBiasGELUInto(w *dist.Worker, act, pre, a, b, bias *tensor.Matrix) {
	w.ChargeGEMM(float64(a.Rows), float64(b.Cols), float64(a.Cols))
	if bias != nil {
		w.Compute(float64(pre.Size()) * FlopsPerAdd)
	}
	w.Compute(float64(pre.Size()) * FlopsPerGELU)
	tensor.MatMulBiasGELUInto(act, pre, a, b, bias)
}

// Add returns a+b, charging one flop per element.
func Add(w *dist.Worker, a, b *tensor.Matrix) *tensor.Matrix {
	w.Compute(float64(a.Size()) * FlopsPerAdd)
	return tensor.Add(a, b)
}

// AddInPlace computes a += b, charging one flop per element.
func AddInPlace(w *dist.Worker, a, b *tensor.Matrix) {
	w.Compute(float64(a.Size()) * FlopsPerAdd)
	tensor.AddInPlace(a, b)
}

// Sub returns a−b, charging one flop per element.
func Sub(w *dist.Worker, a, b *tensor.Matrix) *tensor.Matrix {
	w.Compute(float64(a.Size()) * FlopsPerAdd)
	return tensor.Sub(a, b)
}

// Mul returns the Hadamard product, charging one flop per element.
func Mul(w *dist.Worker, a, b *tensor.Matrix) *tensor.Matrix {
	w.Compute(float64(a.Size()) * FlopsPerAdd)
	return tensor.Mul(a, b)
}

// AddTo computes dst = a+b (dst may alias either operand), one flop per
// element.
func AddTo(w *dist.Worker, dst, a, b *tensor.Matrix) {
	w.Compute(float64(a.Size()) * FlopsPerAdd)
	tensor.AddTo(dst, a, b)
}

// MulTo computes the Hadamard product into dst (dst may alias either
// operand), one flop per element.
func MulTo(w *dist.Worker, dst, a, b *tensor.Matrix) {
	w.Compute(float64(a.Size()) * FlopsPerAdd)
	tensor.MulTo(dst, a, b)
}

// Scale returns alpha·m, charging one flop per element.
func Scale(w *dist.Worker, alpha float64, m *tensor.Matrix) *tensor.Matrix {
	w.Compute(float64(m.Size()) * FlopsPerAdd)
	return tensor.Scale(alpha, m)
}

// AddRowVector returns m + 1·vᵀ (bias add), charging one flop per element.
func AddRowVector(w *dist.Worker, m, v *tensor.Matrix) *tensor.Matrix {
	w.Compute(float64(m.Size()) * FlopsPerAdd)
	return tensor.AddRowVector(m, v)
}

// AddRowVectorInPlace computes m += 1·vᵀ (bias add) in place, one flop per
// element.
func AddRowVectorInPlace(w *dist.Worker, m, v *tensor.Matrix) {
	w.Compute(float64(m.Size()) * FlopsPerAdd)
	tensor.AddRowVectorInPlace(m, v)
}

// ColSums returns the column sums (bias gradient), one flop per element.
func ColSums(w *dist.Worker, m *tensor.Matrix) *tensor.Matrix {
	w.Compute(float64(m.Size()) * FlopsPerAdd)
	return tensor.ColSums(m)
}

// ColSumsInto computes the column sums into dst (overwriting it), one flop
// per element.
func ColSumsInto(w *dist.Worker, dst, m *tensor.Matrix) {
	w.Compute(float64(m.Size()) * FlopsPerAdd)
	tensor.ColSumsInto(dst, m)
}

// GELU applies the activation, charging FlopsPerGELU per element.
func GELU(w *dist.Worker, m *tensor.Matrix) *tensor.Matrix {
	w.Compute(float64(m.Size()) * FlopsPerGELU)
	return tensor.GELU(m)
}

// GELUGrad evaluates the activation derivative, same charge as GELU.
func GELUGrad(w *dist.Worker, m *tensor.Matrix) *tensor.Matrix {
	w.Compute(float64(m.Size()) * FlopsPerGELU)
	return tensor.GELUGrad(m)
}

// SoftmaxRows applies a row softmax, charging FlopsPerSoftmax per element.
func SoftmaxRows(w *dist.Worker, m *tensor.Matrix) *tensor.Matrix {
	w.Compute(float64(m.Size()) * FlopsPerSoftmax)
	return tensor.SoftmaxRows(m)
}

// SoftmaxRowsBackward charges FlopsPerSoftmax per element.
func SoftmaxRowsBackward(w *dist.Worker, s, ds *tensor.Matrix) *tensor.Matrix {
	w.Compute(float64(s.Size()) * FlopsPerSoftmax)
	return tensor.SoftmaxRowsBackward(s, ds)
}

// GELUTo computes dst = GELU(m), charging FlopsPerGELU per element.
func GELUTo(w *dist.Worker, dst, m *tensor.Matrix) {
	w.Compute(float64(m.Size()) * FlopsPerGELU)
	tensor.GELUTo(dst, m)
}

// GELUGradTo computes dst = GELU'(m), same charge as GELU.
func GELUGradTo(w *dist.Worker, dst, m *tensor.Matrix) {
	w.Compute(float64(m.Size()) * FlopsPerGELU)
	tensor.GELUGradTo(dst, m)
}

// GELUGradHadamardTo computes dst = dy ⊙ GELU'(pre) in one pass — the fused
// backward of a GELU linear layer. Charges FlopsPerGELU plus one multiply
// per element, exactly what GELUGradTo + MulTo charge separately.
func GELUGradHadamardTo(w *dist.Worker, dst, pre, dy *tensor.Matrix) {
	w.Compute(float64(pre.Size()) * (FlopsPerGELU + FlopsPerAdd))
	tensor.GELUGradHadamardTo(dst, pre, dy)
}

// SoftmaxRowsTo computes a row softmax into dst, FlopsPerSoftmax per
// element.
func SoftmaxRowsTo(w *dist.Worker, dst, m *tensor.Matrix) {
	w.Compute(float64(m.Size()) * FlopsPerSoftmax)
	tensor.SoftmaxRowsTo(dst, m)
}

// SoftmaxRowsBackwardTo computes the softmax input gradient into dst (which
// may alias ds), FlopsPerSoftmax per element.
func SoftmaxRowsBackwardTo(w *dist.Worker, dst, s, ds *tensor.Matrix) {
	w.Compute(float64(s.Size()) * FlopsPerSoftmax)
	tensor.SoftmaxRowsBackwardTo(dst, s, ds)
}
