package compute

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/tensor"
)

// withWorker runs fn on a single-worker cluster and returns the final clock.
func withWorker(t *testing.T, fn func(w *dist.Worker)) float64 {
	t.Helper()
	c := dist.New(dist.Config{WorldSize: 1})
	if err := c.Run(func(w *dist.Worker) error {
		fn(w)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return c.MaxClock()
}

func TestMatMulChargesAndComputes(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := tensor.RandomMatrix(3, 4, rng)
	b := tensor.RandomMatrix(4, 5, rng)
	var got *tensor.Matrix
	clock := withWorker(t, func(w *dist.Worker) {
		got = MatMul(w, a, b)
	})
	if got.MaxAbsDiff(tensor.MatMul(a, b)) != 0 {
		t.Fatal("charged MatMul must compute the same product")
	}
	want := 2.0 * 3 * 5 * 4 / dist.MeluxinaModel().FLOPS
	if math.Abs(clock-want) > 1e-25 {
		t.Fatalf("clock %g, want %g", clock, want)
	}
}

func TestTransposedVariantsChargeSameFlops(t *testing.T) {
	rng := tensor.NewRNG(2)
	a := tensor.RandomMatrix(4, 6, rng)
	bNT := tensor.RandomMatrix(5, 6, rng)
	bTN := tensor.RandomMatrix(4, 5, rng)
	cNT := withWorker(t, func(w *dist.Worker) { MatMulNT(w, a, bNT) })
	cTN := withWorker(t, func(w *dist.Worker) { MatMulTN(w, a, bTN) })
	// Both are 2·m·n·k with the same m·n·k product (4·6·5).
	if cNT != cTN {
		t.Fatalf("NT charge %g != TN charge %g", cNT, cTN)
	}
}

func TestPhantomChargesEqualReal(t *testing.T) {
	rng := tensor.NewRNG(3)
	realClock := withWorker(t, func(w *dist.Worker) {
		x := tensor.RandomMatrix(6, 6, rng)
		y := GELU(w, x)
		z := SoftmaxRows(w, y)
		Add(w, z, z)
		ColSums(w, z)
	})
	phClock := withWorker(t, func(w *dist.Worker) {
		x := tensor.NewPhantom(6, 6)
		y := GELU(w, x)
		z := SoftmaxRows(w, y)
		Add(w, z, z)
		ColSums(w, z)
	})
	if realClock != phClock {
		t.Fatalf("phantom clock %g != real clock %g", phClock, realClock)
	}
}

func TestElementwiseResults(t *testing.T) {
	rng := tensor.NewRNG(4)
	a := tensor.RandomMatrix(3, 3, rng)
	b := tensor.RandomMatrix(3, 3, rng)
	withWorker(t, func(w *dist.Worker) {
		if Sub(w, a, b).MaxAbsDiff(tensor.Sub(a, b)) != 0 {
			t.Error("Sub mismatch")
		}
		if Mul(w, a, b).MaxAbsDiff(tensor.Mul(a, b)) != 0 {
			t.Error("Mul mismatch")
		}
		if Scale(w, 2, a).MaxAbsDiff(tensor.Scale(2, a)) != 0 {
			t.Error("Scale mismatch")
		}
		v := tensor.RandomMatrix(1, 3, rng)
		if AddRowVector(w, a, v).MaxAbsDiff(tensor.AddRowVector(a, v)) != 0 {
			t.Error("AddRowVector mismatch")
		}
		g := GELUGrad(w, a)
		if g.MaxAbsDiff(tensor.GELUGrad(a)) != 0 {
			t.Error("GELUGrad mismatch")
		}
		s := SoftmaxRows(w, a)
		if SoftmaxRowsBackward(w, s, b).MaxAbsDiff(tensor.SoftmaxRowsBackward(s, b)) != 0 {
			t.Error("SoftmaxRowsBackward mismatch")
		}
		c := a.Clone()
		AddInPlace(w, c, b)
		if c.MaxAbsDiff(tensor.Add(a, b)) != 0 {
			t.Error("AddInPlace mismatch")
		}
		acc := tensor.New(3, 3)
		MatMulInto(w, acc, a, b)
		if acc.MaxAbsDiff(tensor.MatMul(a, b)) != 0 {
			t.Error("MatMulInto mismatch")
		}
	})
}
