package seqpar

import (
	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/plan"
)

// PlanAlgo describes sequence parallelism to the auto-parallelism planner:
// [p] layouts for every p dividing both the head count and the batch
// (whole sequences per rank), an analytic cost mirroring the schedule the
// layers run (an all-gather into and a reduce-scatter out of every
// parallel linear, plus the backward re-gathers that pay for discarding
// the gathered rows), and a per-rank memory holding 1/p of the activations
// Megatron replicates. The family is never the fastest — its gather/
// scatter brackets move the same bytes as Megatron's all-reduces forward
// and half again backward — so the planner picks it exactly when memory is
// the binding constraint, which is the trade the family exists for.
func PlanAlgo() plan.Algo {
	return plan.Algo{
		Family: "seqpar",
		Grids:  seqparGrids,
		Cost:   seqparCost,
		Memory: seqparMemory,
	}
}

// seqparGrids enumerates [p] for every p ≤ budget dividing the head count
// (the attention head split) and the batch (whole sequences per rank, the
// row-shard alignment vit.TrainLayout checks).
func seqparGrids(w plan.Workload, budget int) []plan.Grid {
	var out []plan.Grid
	for p := 1; p <= budget && p <= w.Heads; p++ {
		if w.Heads%p == 0 && w.Batch%p == 0 {
			out = append(out, plan.Grid{Ranks: p})
		}
	}
	return out
}

func mbytes(elems float64) int64 { return int64(plan.BytesPerElem * elems) }

// seqparCoster accumulates one rank's compute and comm seconds across a
// layer; the group spans ranks [0, p), so it pays inter-node rates as soon
// as p exceeds the node size.
type seqparCoster struct {
	m     dist.CostModel
	p     int
	inter bool
	comp  float64
	comm  float64
}

func (c *seqparCoster) flops(f float64)      { c.comp += f / c.m.FLOPS }
func (c *seqparCoster) gemm(m, n, k float64) { c.comp += c.m.GEMMSeconds(m, n, k) }

// allGather prices gathering the row shards (perRank elements contributed
// by every member) into full rows.
func (c *seqparCoster) allGather(perRank float64) {
	c.comm += c.m.AllGatherSeconds(c.p, mbytes(perRank), c.inter)
}

// reduceScatter prices summing full-row partials (full elements of
// payload) down to the local row shard.
func (c *seqparCoster) reduceScatter(full float64) {
	c.comm += c.m.ReduceScatterSeconds(c.p, mbytes(full), c.inter)
}

// forwardLayer prices one Block.Forward: each parallel linear pair gathers
// the R/p-row shard to full rows, runs the same GEMM shapes as Megatron,
// and reduce-scatters the partial back — one all-gather plus one
// reduce-scatter per module, the byte volume of one all-reduce. Layer
// norms, residuals and biases run on the local shard.
func (c *seqparCoster) forwardLayer(R, h, hp, s, dh, hl float64) {
	Rl := R / float64(c.p)
	c.allGather(Rl * h)
	c.gemm(R, 3*hp, h) // QKV
	c.flops(R * 3 * hp * compute.FlopsPerAdd)
	c.flops(R / s * hl * (4*s*s*dh + compute.FlopsPerSoftmax*s*s))
	c.gemm(R, h, hp) // projection partial
	c.reduceScatter(R * h)
	c.flops(Rl * h * compute.FlopsPerAdd) // projection bias
	c.flops(Rl * h * compute.FlopsPerAdd) // residual
	c.flops(Rl * h * (compute.FlopsPerNorm + 2))
	c.allGather(Rl * h)
	c.gemm(R, 4*hp, h) // fc1
	c.flops(R * 4 * hp * (compute.FlopsPerAdd + compute.FlopsPerGELU))
	c.gemm(R, h, 4*hp) // fc2 partial
	c.reduceScatter(R * h)
	c.flops(Rl * h * compute.FlopsPerAdd)
	c.flops(Rl * h * compute.FlopsPerAdd)
	c.flops(Rl * h * (compute.FlopsPerNorm + 2))
}

// backwardLayer prices one Block.Backward: each module gathers the sharded
// output gradient, re-gathers its discarded forward input for the weight
// gradients, and reduce-scatters the input gradient — three half-rings
// where Megatron pays two, the price of holding 1/p of the activations.
// The fc1 GELU output is recomputed from the saved pre-activation.
func (c *seqparCoster) backwardLayer(R, h, hp, s, dh, hl float64) {
	Rl := R / float64(c.p)
	c.flops(Rl * h * (compute.FlopsPerNorm + 2)) // ln2
	// MLP: dz gather, GELU recompute, shard gradients, dx reduce-scatter,
	// input re-gather for dW1.
	c.allGather(Rl * h)
	c.flops(R * h * compute.FlopsPerAdd)       // fc2 bias sums
	c.flops(R * 4 * hp * compute.FlopsPerGELU) // GELU recompute
	c.gemm(4*hp, h, R)
	c.gemm(R, 4*hp, h)
	c.flops(R * 4 * hp * (compute.FlopsPerGELU + compute.FlopsPerAdd))
	c.flops(R * 4 * hp * compute.FlopsPerAdd) // fc1 bias sums
	c.gemm(R, h, 4*hp)
	c.reduceScatter(R * h)
	c.allGather(Rl * h)
	c.gemm(h, 4*hp, R)
	c.flops(Rl * h * compute.FlopsPerAdd) // residual
	c.flops(Rl * h * (compute.FlopsPerNorm + 2))
	// Attention: dy gather, projection gradients, attention backward, dx
	// reduce-scatter, input re-gather for dQKV.
	c.allGather(Rl * h)
	c.flops(R * h * compute.FlopsPerAdd) // projection bias sums
	c.gemm(hp, h, R)
	c.gemm(R, hp, h)
	c.flops(R / s * hl * (8*s*s*dh + compute.FlopsPerSoftmax*s*s))
	c.gemm(R, h, 3*hp)
	c.reduceScatter(R * h)
	c.allGather(Rl * h)
	c.gemm(h, 3*hp, R)
	c.flops(R * 3 * hp * compute.FlopsPerAdd)
	c.flops(Rl * h * compute.FlopsPerAdd)
}

// seqparCost prices a workload on one [p] layout.
func seqparCost(w plan.Workload, g plan.Grid, t plan.Topology) plan.Breakdown {
	p := g.Ranks
	R := float64(w.Tokens())
	h := float64(w.Hidden)
	hp := h / float64(p)
	s := float64(w.SeqLen)
	dh := h / float64(w.Heads)
	hl := float64(w.Heads) / float64(p)
	inter := t.SpansNodes(0, p-1)
	L := float64(w.Layers)

	fwd := &seqparCoster{m: t.Cost, p: p, inter: inter}
	fwd.forwardLayer(R, h, hp, s, dh, hl)
	bwd := &seqparCoster{m: t.Cost, p: p, inter: inter}
	bwd.backwardLayer(R, h, hp, s, dh, hl)

	fwdPhase := L * (fwd.comp + fwd.comm)
	comp := L * (fwd.comp + bwd.comp)
	backward := L * (bwd.comp + bwd.comm)
	if !w.NoRecompute {
		backward += fwdPhase
		comp += L * fwd.comp
	}
	return plan.Breakdown{
		Forward:        fwdPhase,
		Backward:       backward,
		ComputeSeconds: comp,
		CommSeconds:    fwdPhase + backward - comp,
	}
}

// seqparMemory estimates the bytes one rank holds across a training step:
// the Megatron-shaped weight shards with gradients, and an activation set
// that is 1/p of Megatron's replicated footprint — per layer the retained
// shard-width buffers (Q/K/V, the attention output, the fc1
// pre-activation, four row-shard activations) plus one transient full-row
// gathered buffer, plus this rank's share of the softmax probabilities.
func seqparMemory(w plan.Workload, g plan.Grid) int64 {
	p := float64(g.Ranks)
	R := float64(w.Tokens())
	h := float64(w.Hidden)
	hp := h / p
	s := float64(w.SeqLen)
	hl := float64(w.Heads) / p
	L := float64(w.Layers)
	weights := 12*h*hp + 7*hp + 2*h // shards + shard biases + replicated biases
	probs := float64(w.Batch) * hl * s * s
	acts := R*(12*hp+h) + probs
	io := 2*R*h/p + 2*R*h
	return mbytes(L*(2*weights+acts) + io)
}
