package seqpar

import (
	"fmt"
	"math"

	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Attention is the sequence-parallel self-attention module. Weights shard
// exactly like Megatron-LM — a fused, head-aligned column-parallel QKV
// projection and a row-parallel output projection — but the activation
// choreography differs: the sharded input is all-gathered to full rows for
// the QKV GEMM (and immediately discarded — the backward pass re-gathers
// it), attention runs locally over this rank's heads on full rows, and the
// output projection's partial product reduce-scatters straight back to the
// local row shard. The backward pass overlaps the input-gradient
// reduce-scatter with the weight-gradient GEMMs and recycles the saved
// Q/K/V/probability buffers the moment their gradients are done.
type Attention struct {
	H, Heads, SeqLen int

	QKV   *nn.Param // [h, 3h/p], head-aligned permutation [Wq_r | Wk_r | Wv_r]
	QKVb  *nn.Param // [1, 3h/p]
	Proj  *nn.Param // [h/p, h], row shard of Wo
	Projb *nn.Param // [1, h], replicated (identical full-row gradient on all ranks)

	x       *tensor.Matrix
	q, k, v *tensor.Matrix
	out     *tensor.Matrix
	probs   []*tensor.Matrix
}

// NewAttention draws Wq, Wk, Wv, Wo from rng in the serial order and keeps
// the Megatron-shaped shards: rank r's fused QKV block is [Wq_r | Wk_r |
// Wv_r], its projection shard is Wo's row block r.
func NewAttention(p *Proc, h, heads, seqLen int, rng *tensor.RNG) *Attention {
	validate(p, h, heads)
	wq := tensor.XavierMatrix(h, h, rng)
	wk := tensor.XavierMatrix(h, h, rng)
	wv := tensor.XavierMatrix(h, h, rng)
	wo := tensor.XavierMatrix(h, h, rng)

	bc := h / p.P
	fused := tensor.HCat(
		wq.SubMatrix(0, p.Rank*bc, h, bc),
		wk.SubMatrix(0, p.Rank*bc, h, bc),
		wv.SubMatrix(0, p.Rank*bc, h, bc))

	a := &Attention{H: h, Heads: heads, SeqLen: seqLen}
	a.QKV = nn.NewParam("seqpar.attn.qkv.w", fused)
	a.QKVb = nn.NewParam("seqpar.attn.qkv.b", tensor.New(1, 3*bc))
	a.Proj = nn.NewParam("seqpar.attn.proj.w", wo.SubMatrix(p.Rank*bc, 0, bc, h))
	a.Projb = nn.NewParam("seqpar.attn.proj.b", tensor.New(1, h))
	return a
}

// NewAttentionPhantom builds the shape-only variant.
func NewAttentionPhantom(p *Proc, h, heads, seqLen int) *Attention {
	validate(p, h, heads)
	bc := h / p.P
	a := &Attention{H: h, Heads: heads, SeqLen: seqLen}
	a.QKV = nn.NewParam("seqpar.attn.qkv.w", tensor.NewPhantom(h, 3*bc))
	a.QKVb = nn.NewParam("seqpar.attn.qkv.b", tensor.NewPhantom(1, 3*bc))
	a.Proj = nn.NewParam("seqpar.attn.proj.w", tensor.NewPhantom(bc, h))
	a.Projb = nn.NewParam("seqpar.attn.proj.b", tensor.NewPhantom(1, h))
	return a
}

func validate(p *Proc, h, heads int) {
	if h%heads != 0 {
		panic(fmt.Sprintf("seqpar: hidden %d not divisible by heads %d", h, heads))
	}
	if heads%p.P != 0 {
		panic(fmt.Sprintf("seqpar: heads %d not divisible by p=%d", heads, p.P))
	}
}

// Params returns the local shards.
func (a *Attention) Params() []*nn.Param {
	return []*nn.Param{a.QKV, a.QKVb, a.Proj, a.Projb}
}

// Forward maps the local row shard x of shape [R/p, h] to the sharded
// module output: gather → fused QKV → local attention → partial projection
// → reduce-scatter → bias. The gathered rows and the fused QKV buffer are
// transient; only Q/K/V, the attention output and the probabilities ride
// to the backward pass.
func (a *Attention) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	a.x = x
	ws := p.W.Workspace()
	hp := a.H / p.P
	ph := x.Phantom() || a.QKV.Value.Phantom()

	xFull := p.gather(x)
	qkv := ws.GetUninitMatch(xFull.Rows, 3*hp, ph)
	qkv.Zero()
	compute.MatMulBiasInto(p.W, qkv, xFull, a.QKV.Value, a.QKVb.Value)
	ws.Put(xFull)

	aq := ws.GetUninitMatch(qkv.Rows, hp, ph)
	ak := ws.GetUninitMatch(qkv.Rows, hp, ph)
	av := ws.GetUninitMatch(qkv.Rows, hp, ph)
	tensor.SubMatrixInto(aq, qkv, 0, 0)
	tensor.SubMatrixInto(ak, qkv, 0, hp)
	tensor.SubMatrixInto(av, qkv, 0, 2*hp)
	ws.Put(qkv)
	a.q, a.k, a.v = aq, ak, av
	out := a.attendForward(p, aq, ak, av)
	a.out = out

	partial := ws.GetUninitMatch(out.Rows, a.H, ph)
	partial.Zero()
	compute.MatMulInto(p.W, partial, out, a.Proj.Value)
	y := ws.GetUninitMatch(x.Rows, a.H, ph)
	p.TP.ReduceScatterInto(p.W, partial, y)
	ws.Put(partial)
	compute.AddRowVectorInPlace(p.W, y, a.Projb.Value)
	return y
}

func (a *Attention) attendForward(p *Proc, q, k, v *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	headsLocal := a.Heads / p.P
	dh := a.H / a.Heads
	s := a.SeqLen
	if q.Phantom() {
		seqF := float64(q.Rows) / float64(s)
		perHead := 4*float64(s)*float64(s)*float64(dh) + compute.FlopsPerSoftmax*float64(s)*float64(s)
		p.W.Compute(seqF * float64(headsLocal) * perHead)
		return ws.GetUninitMatch(q.Rows, q.Cols, true)
	}
	if q.Rows%s != 0 {
		panic(fmt.Sprintf("seqpar: attention rows %d not divisible by seq len %d", q.Rows, s))
	}
	nseq := q.Rows / s
	scale := 1 / math.Sqrt(float64(dh))
	out := ws.GetUninit(q.Rows, q.Cols) // every head block is overwritten below
	a.probs = a.probs[:0]
	qs := ws.GetUninit(s, dh)
	ks := ws.GetUninit(s, dh)
	vs := ws.GetUninit(s, dh)
	scores := ws.GetUninit(s, s)
	head := ws.GetUninit(s, dh)
	for sq := 0; sq < nseq; sq++ {
		for hd := 0; hd < headsLocal; hd++ {
			tensor.SubMatrixInto(qs, q, sq*s, hd*dh)
			tensor.SubMatrixInto(ks, k, sq*s, hd*dh)
			tensor.SubMatrixInto(vs, v, sq*s, hd*dh)
			compute.MatMulNTInto(p.W, scores, qs, ks)
			tensor.ScaleInPlace(scores, scale)
			probs := ws.GetUninit(s, s) // retained for the backward pass
			compute.SoftmaxRowsTo(p.W, probs, scores)
			a.probs = append(a.probs, probs)
			head.Zero()
			compute.MatMulInto(p.W, head, probs, vs)
			out.SetSubMatrix(sq*s, hd*dh, head)
		}
	}
	ws.Put(qs, ks, vs, scores, head)
	return out
}

// Backward propagates through the module. The output-gradient gather feeds
// the projection gradients, the input re-gather feeds the QKV gradients,
// and the input-gradient reduce-scatter flies behind the latter; every
// saved forward activation is recycled the moment its last gradient GEMM
// has read it.
func (a *Attention) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	hp := a.H / p.P
	ph := dy.Phantom() || a.QKV.Value.Phantom()

	dyFull := p.gather(dy)
	db := ws.GetUninitMatch(1, a.H, ph)
	compute.ColSumsInto(p.W, db, dyFull) // full-row sum: identical on all ranks
	a.Projb.AccumGrad(db)
	ws.Put(db)
	dwo := ws.GetUninitMatch(hp, a.H, ph)
	dwo.Zero()
	compute.MatMulTNInto(p.W, dwo, a.out, dyFull)
	a.Proj.AccumGrad(dwo)
	ws.Put(dwo)
	dout := ws.GetUninitMatch(dyFull.Rows, hp, ph)
	compute.MatMulNTInto(p.W, dout, dyFull, a.Proj.Value)
	ws.Put(dyFull)
	ws.Put(a.out)
	a.out = nil

	dqkv := a.attendBackward(p, dout)
	ws.Put(dout)
	ws.Put(a.q, a.k, a.v)
	a.q, a.k, a.v = nil, nil, nil
	for _, probs := range a.probs {
		ws.Put(probs)
	}
	a.probs = a.probs[:0]

	dxFull := ws.GetUninitMatch(dqkv.Rows, a.H, ph)
	compute.MatMulNTInto(p.W, dxFull, dqkv, a.QKV.Value)
	dx := ws.GetUninitMatch(dqkv.Rows/p.P, a.H, ph)
	hnd := p.TP.IReduceScatterInto(p.W, dxFull, dx)

	xFull := p.gather(a.x)
	dwq := ws.GetUninitMatch(a.H, 3*hp, ph)
	dwq.Zero()
	compute.MatMulTNInto(p.W, dwq, xFull, dqkv)
	a.QKV.AccumGrad(dwq)
	ws.Put(dwq, xFull)
	dbq := ws.GetUninitMatch(1, 3*hp, ph)
	compute.ColSumsInto(p.W, dbq, dqkv)
	a.QKVb.AccumGrad(dbq)
	ws.Put(dbq)

	hnd.Wait()
	ws.Put(dqkv, dxFull)
	return dx
}

func (a *Attention) attendBackward(p *Proc, dout *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	headsLocal := a.Heads / p.P
	dh := a.H / a.Heads
	s := a.SeqLen
	hp := a.H / p.P
	if dout.Phantom() {
		seqF := float64(dout.Rows) / float64(s)
		perHead := 8*float64(s)*float64(s)*float64(dh) + compute.FlopsPerSoftmax*float64(s)*float64(s)
		p.W.Compute(seqF * float64(headsLocal) * perHead)
		return ws.GetUninitMatch(dout.Rows, 3*hp, true)
	}
	nseq := dout.Rows / s
	scale := 1 / math.Sqrt(float64(dh))
	dqkv := ws.GetUninit(dout.Rows, 3*hp) // every block is overwritten below
	dhead := ws.GetUninit(s, dh)
	qs := ws.GetUninit(s, dh)
	ks := ws.GetUninit(s, dh)
	vs := ws.GetUninit(s, dh)
	dvs := ws.GetUninit(s, dh)
	dprobs := ws.GetUninit(s, s)
	dscores := ws.GetUninit(s, s)
	dqs := ws.GetUninit(s, dh)
	dks := ws.GetUninit(s, dh)
	for sq := 0; sq < nseq; sq++ {
		for hd := 0; hd < headsLocal; hd++ {
			probs := a.probs[sq*headsLocal+hd]
			tensor.SubMatrixInto(dhead, dout, sq*s, hd*dh)
			tensor.SubMatrixInto(qs, a.q, sq*s, hd*dh)
			tensor.SubMatrixInto(ks, a.k, sq*s, hd*dh)
			tensor.SubMatrixInto(vs, a.v, sq*s, hd*dh)

			dvs.Zero()
			compute.MatMulTNInto(p.W, dvs, probs, dhead)
			compute.MatMulNTInto(p.W, dprobs, dhead, vs)
			compute.SoftmaxRowsBackwardTo(p.W, dscores, probs, dprobs)
			tensor.ScaleInPlace(dscores, scale)
			dqs.Zero()
			compute.MatMulInto(p.W, dqs, dscores, ks)
			dks.Zero()
			compute.MatMulTNInto(p.W, dks, dscores, qs)

			dqkv.SetSubMatrix(sq*s, hd*dh, dqs)
			dqkv.SetSubMatrix(sq*s, hp+hd*dh, dks)
			dqkv.SetSubMatrix(sq*s, 2*hp+hd*dh, dvs)
		}
	}
	ws.Put(dhead, qs, ks, vs, dvs, dprobs, dscores, dqs, dks)
	return dqkv
}

// MLP is the sequence-parallel feed-forward module: column-parallel fc1
// (h → 4h/p, GELU fused) on gathered full rows, row-parallel fc2 whose
// partial product reduce-scatters back to the local shard. Only the fc1
// pre-activation rides to the backward pass — the GELU output is
// recomputed there with one elementwise pass, halving the module's
// retained activations.
type MLP struct {
	H int

	W1 *nn.Param // [h, 4h/p], column shard
	B1 *nn.Param // [1, 4h/p]
	W2 *nn.Param // [4h/p, h], row shard
	B2 *nn.Param // [1, h], replicated

	x   *tensor.Matrix
	pre *tensor.Matrix
}

// NewMLP draws Fc1, Fc2 from rng in the serial order and keeps the
// Megatron-shaped shards.
func NewMLP(p *Proc, h int, rng *tensor.RNG) *MLP {
	w1 := tensor.XavierMatrix(h, 4*h, rng)
	w2 := tensor.XavierMatrix(4*h, h, rng)
	hp4 := 4 * h / p.P
	l := &MLP{H: h}
	l.W1 = nn.NewParam("seqpar.mlp.fc1.w", w1.SubMatrix(0, p.Rank*hp4, h, hp4))
	l.B1 = nn.NewParam("seqpar.mlp.fc1.b", tensor.New(1, hp4))
	l.W2 = nn.NewParam("seqpar.mlp.fc2.w", w2.SubMatrix(p.Rank*hp4, 0, hp4, h))
	l.B2 = nn.NewParam("seqpar.mlp.fc2.b", tensor.New(1, h))
	return l
}

// NewMLPPhantom builds the shape-only variant.
func NewMLPPhantom(p *Proc, h int) *MLP {
	hp4 := 4 * h / p.P
	l := &MLP{H: h}
	l.W1 = nn.NewParam("seqpar.mlp.fc1.w", tensor.NewPhantom(h, hp4))
	l.B1 = nn.NewParam("seqpar.mlp.fc1.b", tensor.NewPhantom(1, hp4))
	l.W2 = nn.NewParam("seqpar.mlp.fc2.w", tensor.NewPhantom(hp4, h))
	l.B2 = nn.NewParam("seqpar.mlp.fc2.b", tensor.NewPhantom(1, h))
	return l
}

// Params returns the local shards.
func (l *MLP) Params() []*nn.Param {
	return []*nn.Param{l.W1, l.B1, l.W2, l.B2}
}

// Forward maps the local row shard to the sharded module output: gather →
// fused fc1+GELU → partial fc2 → reduce-scatter → bias. The gathered rows
// and the GELU output are transient; only the pre-activation is retained.
func (l *MLP) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	ws := p.W.Workspace()
	ph := x.Phantom() || l.W1.Value.Phantom()

	yFull := p.gather(x)
	pre := ws.GetUninitMatch(yFull.Rows, l.W1.Value.Cols, ph)
	pre.Zero()
	l.pre = pre
	act := ws.GetUninitMatch(yFull.Rows, l.W1.Value.Cols, ph)
	compute.MatMulBiasGELUInto(p.W, act, pre, yFull, l.W1.Value, l.B1.Value)
	ws.Put(yFull)

	partial := ws.GetUninitMatch(act.Rows, l.H, ph)
	partial.Zero()
	compute.MatMulInto(p.W, partial, act, l.W2.Value)
	ws.Put(act)
	z := ws.GetUninitMatch(x.Rows, l.H, ph)
	p.TP.ReduceScatterInto(p.W, partial, z)
	ws.Put(partial)
	compute.AddRowVectorInPlace(p.W, z, l.B2.Value)
	return z
}

// Backward recomputes the GELU output from the saved pre-activation (one
// elementwise pass, bitwise identical to the fused forward epilogue),
// accumulates the shard gradients, and overlaps the input-gradient
// reduce-scatter with the fc1 weight-gradient GEMM over the re-gathered
// input.
func (l *MLP) Backward(p *Proc, dz *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	ph := dz.Phantom() || l.W1.Value.Phantom()

	dzFull := p.gather(dz)
	db2 := ws.GetUninitMatch(1, l.H, ph)
	compute.ColSumsInto(p.W, db2, dzFull) // full-row sum: identical on all ranks
	l.B2.AccumGrad(db2)
	ws.Put(db2)
	act := ws.GetUninitMatch(l.pre.Rows, l.pre.Cols, ph)
	compute.GELUTo(p.W, act, l.pre)
	dw2 := ws.GetUninitMatch(l.W2.Value.Rows, l.H, ph)
	dw2.Zero()
	compute.MatMulTNInto(p.W, dw2, act, dzFull)
	l.W2.AccumGrad(dw2)
	ws.Put(dw2, act)
	dact := ws.GetUninitMatch(dzFull.Rows, l.W2.Value.Rows, ph)
	compute.MatMulNTInto(p.W, dact, dzFull, l.W2.Value)
	ws.Put(dzFull)

	compute.GELUGradHadamardTo(p.W, dact, l.pre, dact) // dpre, in place
	ws.Put(l.pre)
	l.pre = nil
	db1 := ws.GetUninitMatch(1, l.W1.Value.Cols, ph)
	compute.ColSumsInto(p.W, db1, dact)
	l.B1.AccumGrad(db1)
	ws.Put(db1)

	dxFull := ws.GetUninitMatch(dact.Rows, l.H, ph)
	compute.MatMulNTInto(p.W, dxFull, dact, l.W1.Value)
	dx := ws.GetUninitMatch(dact.Rows/p.P, l.H, ph)
	hnd := p.TP.IReduceScatterInto(p.W, dxFull, dx)

	yFull := p.gather(l.x)
	dw1 := ws.GetUninitMatch(l.H, l.W1.Value.Cols, ph)
	dw1.Zero()
	compute.MatMulTNInto(p.W, dw1, yFull, dact)
	l.W1.AccumGrad(dw1)
	ws.Put(dw1, yFull)

	hnd.Wait()
	ws.Put(dact, dxFull)
	return dx
}
