package seqpar

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func init() {
	parallel.RegisterCheck("seqpar", func(l parallel.Layout) error {
		if l.Q != 0 {
			return fmt.Errorf("seqpar: 1-D family cannot take a mesh %s", l.Shape())
		}
		return nil
	})
	parallel.RegisterRowShards("seqpar", func(l parallel.Layout) int { return l.Ranks })
	parallel.Register("seqpar", func(w *dist.Worker, l parallel.Layout) (parallel.Family, error) {
		return &Family{p: NewProcAt(w, l.Ranks, l.Base), layout: l}, nil
	})
}

// Family is sequence parallelism's implementation of the family-agnostic
// model layer: activations sharded p ways along rows (whole sequences per
// rank), weights sharded exactly like Megatron-LM. Distribute slices the
// rank's row block, Collect all-gathers it back, and the Transformer block
// is the shared parallel.Block composition — the layer norms and residual
// adds inside it run on 1/p of the rows, which is where the family's
// activation-memory edge over Megatron comes from.
type Family struct {
	p      *Proc
	layout parallel.Layout
}

// NewFamily attaches the calling worker to the sequence-parallel group
// spanning cluster ranks [0, p) and returns the family view.
func NewFamily(w *dist.Worker, p int) *Family {
	return &Family{p: NewProcAt(w, p, 0), layout: parallel.Layout{Family: "seqpar", Ranks: p}}
}

// Name returns "seqpar".
func (f *Family) Name() string { return "seqpar" }

// Layout returns the 1-D layout.
func (f *Family) Layout() parallel.Layout { return f.layout }

// Worker returns the rank's cluster view.
func (f *Family) Worker() *dist.Worker { return f.p.W }

// Proc exposes the underlying sequence-parallel view.
func (f *Family) Proc() *Proc { return f.p }

// RowShards returns p: every rank owns 1/p of the activation rows.
func (f *Family) RowShards() int { return f.p.P }

// NewLinear builds the shard-local linear (the ViT patch embedding): the
// weight is replicated, the GEMM runs on the local rows, and the gradient
// all-reduce is deferred to DrainGradients.
func (f *Family) NewLinear(in, out int, act nn.Activation, bias bool, rng *tensor.RNG) parallel.Layer {
	return newShardLinear(f.p, in, out, act, bias, rng)
}

// NewBlock builds one sequence-parallel Transformer block via the shared
// composition, drawing parameters from rng in the serial order (attention
// Wq..Wo, then MLP Fc1, Fc2).
func (f *Family) NewBlock(h, heads, seqLen int, rng *tensor.RNG) parallel.Layer {
	attn := bound{p: f.p, m: NewAttention(f.p, h, heads, seqLen, rng)}
	mlp := bound{p: f.p, m: NewMLP(f.p, h, rng)}
	return parallel.NewBlock(f.p.W, h, attn, f.NewLayerNorm(h), mlp, f.NewLayerNorm(h))
}

// NewBlockPhantom builds the shape-only block for paper-scale timing.
func (f *Family) NewBlockPhantom(h, heads, seqLen int) parallel.Layer {
	attn := bound{p: f.p, m: NewAttentionPhantom(f.p, h, heads, seqLen)}
	mlp := bound{p: f.p, m: NewMLPPhantom(f.p, h)}
	return parallel.NewBlock(f.p.W, h, attn, f.NewLayerNorm(h), mlp, f.NewLayerNorm(h))
}

// NewLayerNorm builds the replicated layer norm — row-local arithmetic, so
// on sharded rows it simply normalises 1/p of them.
func (f *Family) NewLayerNorm(h int) parallel.Layer {
	return parallel.NewReplicatedLayerNorm(f.p.W, h)
}

// NewHead builds the replicated classifier head; it runs on replicated
// pooled features (GatherPooled's output), so the serial layer applies.
func (f *Family) NewHead(in, out int, rng *tensor.RNG) parallel.Layer {
	return parallel.NewReplicatedLinearAt(f.p.W, f.layout.Base, in, out, nn.ActNone, true, rng)
}

// Distribute slices this rank's row block out of the replicated global
// activation into a pooled buffer.
func (f *Family) Distribute(global *tensor.Matrix) *tensor.Matrix {
	if global.Rows%f.p.P != 0 {
		panic(fmt.Sprintf("seqpar: cannot distribute %d rows across p=%d", global.Rows, f.p.P))
	}
	br := global.Rows / f.p.P
	local := f.p.W.Workspace().GetUninitMatch(br, global.Cols, global.Phantom())
	tensor.SubMatrixInto(local, global, f.p.Rank*br, 0)
	return local
}

// Collect all-gathers the row shards into the full replicated activation
// on every rank. The local shard stays checked out by its owner.
func (f *Family) Collect(local *tensor.Matrix) *tensor.Matrix {
	return f.p.gather(local)
}

// Slice reports this rank's row block of a replicated [rows, cols]
// activation.
func (f *Family) Slice(rows, cols int) parallel.Slice {
	if rows%f.p.P != 0 {
		panic(fmt.Sprintf("seqpar: cannot slice %d rows across p=%d", rows, f.p.P))
	}
	br := rows / f.p.P
	return parallel.Slice{Row0: f.p.Rank * br, Rows: br, Cols: cols}
}

// GatherPooled all-gathers a row-pooled local block into the full
// replicated matrix and recycles the local buffer, whose ownership the
// contract transfers here.
func (f *Family) GatherPooled(local *tensor.Matrix) *tensor.Matrix {
	full := f.p.gather(local)
	f.p.W.Workspace().Put(local)
	return full
}

// DrainGradients completes the patch embedding's queued replicated-weight
// gradient all-reduces; afterwards gradients are final on every rank.
func (f *Family) DrainGradients() { f.p.drain() }

// EndStep recycles the rank's workspace at the step boundary.
func (f *Family) EndStep() { f.p.W.Workspace().ReleaseAll() }

// procModule is the method shape the sub-layers in this package share.
type procModule interface {
	Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix
	Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix
	Params() []*nn.Param
	State(p *Proc) []parallel.State
}

// bound binds a sub-layer to its group view, adapting it to parallel.Layer.
type bound struct {
	p *Proc
	m procModule
}

func (b bound) Forward(x *tensor.Matrix) *tensor.Matrix   { return b.m.Forward(b.p, x) }
func (b bound) Backward(dy *tensor.Matrix) *tensor.Matrix { return b.m.Backward(b.p, dy) }
func (b bound) Params() []*nn.Param                       { return b.m.Params() }
func (b bound) State() []parallel.State                   { return b.m.State(b.p) }
