package seqpar

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func runSP(t *testing.T, p int, fn func(sp *Proc) error) *dist.Cluster {
	t.Helper()
	return testutil.Run(t, p, func(w *dist.Worker) error {
		return fn(NewProcAt(w, p, 0))
	})
}

// shard returns rank's row block of a replicated matrix.
func shard(m *tensor.Matrix, rank, p int) *tensor.Matrix {
	br := m.Rows / p
	return m.SubMatrix(rank*br, 0, br, m.Cols)
}

// regather reassembles the row shards into the full matrix.
func regather(sp *Proc, local *tensor.Matrix) *tensor.Matrix {
	return tensor.VCat(sp.TP.AllGather(sp.W, local)...)
}

func TestShardLinearMatchesSerial(t *testing.T) {
	const in, out, rows = 8, 12, 8
	for _, tp := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p%d", tp), func(t *testing.T) {
			dataRng := tensor.NewRNG(1)
			x := tensor.RandomMatrix(rows, in, dataRng)
			dy := tensor.RandomMatrix(rows, out, dataRng)

			ref := nn.NewLinear(in, out, nn.ActGELU, true, tensor.NewRNG(9))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			gws := testutil.NewCollector()
			gbs := testutil.NewCollector()
			runSP(t, tp, func(sp *Proc) error {
				l := newShardLinear(sp, in, out, nn.ActGELU, true, tensor.NewRNG(9))
				y := l.Forward(shard(x, sp.Rank, tp))
				dx := l.Backward(shard(dy, sp.Rank, tp))
				sp.drain()
				ys.Put(sp.W.Rank(), regather(sp, y))
				dxs.Put(sp.W.Rank(), regather(sp, dx))
				gws.Put(sp.W.Rank(), l.W.Grad)
				gbs.Put(sp.W.Rank(), l.B.Grad)
				return nil
			})
			for r := 0; r < tp; r++ {
				testutil.CheckClose(t, "y", ys.Get(r), wantY, 1e-9)
				testutil.CheckClose(t, "dx", dxs.Get(r), wantDx, 1e-9)
				// Gradients sum over every rank's row shard, so after the
				// drain they match the serial full-batch gradients.
				testutil.CheckClose(t, "dW", gws.Get(r), ref.W.Grad, 1e-9)
				testutil.CheckClose(t, "dB", gbs.Get(r), ref.B.Grad, 1e-9)
			}
		})
	}
}

func TestMLPMatchesSerial(t *testing.T) {
	const h, rows = 8, 8
	for _, tp := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p%d", tp), func(t *testing.T) {
			dataRng := tensor.NewRNG(3)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewMLP(h, tensor.NewRNG(13))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			runSP(t, tp, func(sp *Proc) error {
				m := NewMLP(sp, h, tensor.NewRNG(13))
				y := m.Forward(sp, shard(x, sp.Rank, tp))
				dx := m.Backward(sp, shard(dy, sp.Rank, tp))
				ys.Put(sp.W.Rank(), regather(sp, y))
				dxs.Put(sp.W.Rank(), regather(sp, dx))
				return nil
			})
			for r := 0; r < tp; r++ {
				testutil.CheckClose(t, "y", ys.Get(r), wantY, 1e-9)
				testutil.CheckClose(t, "dx", dxs.Get(r), wantDx, 1e-9)
			}
		})
	}
}

func TestAttentionMatchesSerial(t *testing.T) {
	const h, heads, seqLen, rows = 8, 4, 2, 8
	for _, tp := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p%d", tp), func(t *testing.T) {
			dataRng := tensor.NewRNG(4)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewMultiHeadAttention(h, heads, seqLen, tensor.NewRNG(17))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			runSP(t, tp, func(sp *Proc) error {
				a := NewAttention(sp, h, heads, seqLen, tensor.NewRNG(17))
				y := a.Forward(sp, shard(x, sp.Rank, tp))
				dx := a.Backward(sp, shard(dy, sp.Rank, tp))
				ys.Put(sp.W.Rank(), regather(sp, y))
				dxs.Put(sp.W.Rank(), regather(sp, dx))
				return nil
			})
			for r := 0; r < tp; r++ {
				testutil.CheckClose(t, "y", ys.Get(r), wantY, 1e-9)
				testutil.CheckClose(t, "dx", dxs.Get(r), wantDx, 1e-9)
			}
		})
	}
}

func TestBlockMatchesSerial(t *testing.T) {
	const h, heads, seqLen, rows = 8, 4, 2, 8
	for _, tp := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p%d", tp), func(t *testing.T) {
			dataRng := tensor.NewRNG(5)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewBlock(h, heads, seqLen, tensor.NewRNG(19))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			testutil.Run(t, tp, func(w *dist.Worker) error {
				f := NewFamily(w, tp)
				b := f.NewBlock(h, heads, seqLen, tensor.NewRNG(19))
				y := b.Forward(f.Distribute(x))
				dx := b.Backward(f.Distribute(dy))
				ys.Put(w.Rank(), f.Collect(y))
				dxs.Put(w.Rank(), f.Collect(dx))
				return nil
			})
			for r := 0; r < tp; r++ {
				testutil.CheckClose(t, "y", ys.Get(r), wantY, 1e-8)
				testutil.CheckClose(t, "dx", dxs.Get(r), wantDx, 1e-8)
			}
		})
	}
}

func TestBlockCollectiveCount(t *testing.T) {
	// Each parallel linear pair is bracketed by one all-gather in and one
	// reduce-scatter out: 2+2 forward. The backward pass gathers the output
	// gradient, reduce-scatters the input gradient, and re-gathers the
	// discarded forward input per module: 4 gathers + 2 scatters. No
	// all-reduce of activations ever happens.
	const h, heads, seqLen, rows, tp = 8, 4, 2, 8, 4
	c := dist.New(dist.Config{WorldSize: tp})
	if err := c.Run(func(w *dist.Worker) error {
		f := NewFamily(w, tp)
		b := f.NewBlockPhantom(h, heads, seqLen)
		x := tensor.NewPhantom(rows/tp, h)
		y := b.Forward(x)
		b.Backward(y)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if got := stats.PerOp["allgather"].Calls; got != 6 {
		t.Fatalf("block fwd+bwd performed %d all-gathers, want 6", got)
	}
	if got := stats.PerOp["reducescatter"].Calls; got != 4 {
		t.Fatalf("block fwd+bwd performed %d reduce-scatters, want 4", got)
	}
	if got := stats.PerOp["allreduce"].Calls; got != 0 {
		t.Fatalf("block fwd+bwd performed %d all-reduces, want 0", got)
	}
}

func TestPhantomMatchesRealClock(t *testing.T) {
	const h, heads, seqLen, rows, tp = 8, 4, 2, 8, 4
	clock := func(phantom bool) float64 {
		c := dist.New(dist.Config{WorldSize: tp})
		if err := c.Run(func(w *dist.Worker) error {
			f := NewFamily(w, tp)
			var b parallel.Layer
			var x *tensor.Matrix
			if phantom {
				b = f.NewBlockPhantom(h, heads, seqLen)
				x = tensor.NewPhantom(rows/tp, h)
			} else {
				b = f.NewBlock(h, heads, seqLen, tensor.NewRNG(23))
				x = tensor.RandomMatrix(rows/tp, h, tensor.NewRNG(29))
			}
			y := b.Forward(x)
			b.Backward(y)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	real, ph := clock(false), clock(true)
	if real <= 0 {
		t.Fatal("expected nonzero simulated time")
	}
	if rel := (real - ph) / real; rel > 1e-12 || rel < -1e-12 {
		t.Fatalf("phantom clock %g != real clock %g", ph, real)
	}
}

func TestProcValidation(t *testing.T) {
	c := dist.New(dist.Config{WorldSize: 2})
	err := c.Run(func(w *dist.Worker) error {
		defer func() { recover() }()
		NewProcAt(w, 4, 0) // group larger than the cluster
		t.Errorf("rank %d: expected panic", w.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLayoutRowShards(t *testing.T) {
	l, err := parallel.Validate(parallel.Layout{Family: "seqpar", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.RowShards(); got != 4 {
		t.Fatalf("seqpar [4] RowShards = %d, want 4", got)
	}
}
