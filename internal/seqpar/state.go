package seqpar

import "repro/internal/parallel"

// This file maps the sequence-parallel shards onto the canonical serial
// parameters for checkpointing (parallel.Stater). The weight sharding is
// identical to Megatron-LM's, so the rectangles are too: the fused QKV
// shard maps through three rectangles onto the unpermuted [Wq | Wk | Wv]
// concatenation, column/row shards are one rectangle each, and replicated
// parameters are full slots written by group rank 0.

// State exposes the replicated patch-embedding parameters as full slots;
// the group's base rank is the checkpoint primary.
func (l *shardLinear) State() []parallel.State {
	primary := l.p.Rank == 0
	out := []parallel.State{parallel.FullState(l.W, l.In, l.Out, primary)}
	if l.B != nil {
		out = append(out, parallel.FullState(l.B, 1, l.Out, primary))
	}
	return out
}

// State maps the fused, column-permuted QKV shard through three rectangles
// onto the canonical [h, 3h] concatenation (and its bias onto [1, 3h]):
// rank r's fused sub-block t lands at serial column t·h + r·h/p. The
// projection is a row shard; its bias is replicated, written by rank 0.
func (a *Attention) State(p *Proc) []parallel.State {
	h := a.H
	bc := h / p.P
	w := parallel.State{Param: a.QKV, Rows: h, Cols: 3 * h, Primary: true}
	b := parallel.State{Param: a.QKVb, Rows: 1, Cols: 3 * h, Primary: true}
	for t := 0; t < 3; t++ {
		w.Blocks = append(w.Blocks, parallel.StateBlock{
			LocalCol:  t * bc,
			GlobalCol: t*h + p.Rank*bc,
			Rows:      h, Cols: bc,
		})
		b.Blocks = append(b.Blocks, parallel.StateBlock{
			LocalCol:  t * bc,
			GlobalCol: t*h + p.Rank*bc,
			Rows:      1, Cols: bc,
		})
	}
	return []parallel.State{
		w, b,
		parallel.BlockState(a.Proj, h, h, p.Rank*bc, 0, true),
		parallel.FullState(a.Projb, 1, h, p.Rank == 0),
	}
}

// State maps the MLP's column shard (fc1) and row shard (fc2) onto the
// canonical [h, 4h] and [4h, h] weights; fc2's replicated bias is written
// by rank 0.
func (l *MLP) State(p *Proc) []parallel.State {
	h := l.H
	hp4 := 4 * h / p.P
	return []parallel.State{
		parallel.BlockState(l.W1, h, 4*h, 0, p.Rank*hp4, true),
		parallel.BlockState(l.B1, 1, 4*h, 0, p.Rank*hp4, true),
		parallel.BlockState(l.W2, 4*h, h, p.Rank*hp4, 0, true),
		parallel.FullState(l.B2, 1, h, p.Rank == 0),
	}
}
