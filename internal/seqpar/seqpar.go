// Package seqpar implements sequence parallelism (Korthikanti et al.,
// "Reducing Activation Recomputation in Large Transformer Models"; the
// natural fourth member of the paper's family zoo): a 1-D layout [p] that
// shards *activations* along the sequence/row dimension instead of
// replicating them. Layer norms, residual adds and element-wise ops run on
// the local R/p-row shard; each parallel linear pair is bracketed by an
// all-gather (restore the full rows its GEMM needs) on the way in and a
// reduce-scatter (sum the partial products and keep only the local rows) on
// the way out. The combined volume of one all-gather plus one
// reduce-scatter equals one all-reduce, so the family moves the same bytes
// as Megatron-LM per layer while holding 1/p of its activations — the
// memory/comm trade the planner exploits under tight memory budgets.
//
// Weight sharding is identical to Megatron-LM (column-parallel QKV and fc1,
// row-parallel projection and fc2), so checkpoints re-shard freely between
// the two. The memory lever is in the activation lifetime regime: gathered
// full-row tensors are transient — discarded right after their GEMM and
// re-gathered in the backward pass — and the backward pass recycles saved
// activations eagerly the moment their last gradient GEMM has read them.
package seqpar

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Proc is one processor's view of a sequence-parallel group.
type Proc struct {
	W *dist.Worker
	// P is the sequence-parallel size.
	P int
	// Rank is the index within the group.
	Rank int
	// TP is the sequence-parallel communicator.
	TP *dist.Group

	// pending are the replicated-weight gradient all-reduces the patch
	// embedding queues per backward pass, drained by DrainGradients.
	pending []gradSync
}

// gradSync is one in-flight replicated-parameter gradient all-reduce: the
// handle, the parameter it lands on, and the pooled buffer carrying the sum.
type gradSync struct {
	h     dist.Handle
	param *nn.Param
	buf   *tensor.Matrix
}

// NewProcAt attaches the calling worker to the sequence-parallel group
// spanning cluster ranks [base, base+p).
func NewProcAt(w *dist.Worker, p, base int) *Proc {
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = base + i
	}
	g := w.Cluster().Group(ranks...)
	idx := g.Index(w.Rank())
	if idx < 0 {
		panic(fmt.Sprintf("seqpar: rank %d outside sequence-parallel group [%d,%d)", w.Rank(), base, base+p))
	}
	return &Proc{W: w, P: p, Rank: idx, TP: g}
}

// gather all-gathers a row-sharded activation into a pooled full-row
// buffer: member blocks concatenate in group order, which is exactly the
// global row order Distribute sliced by. The caller owns the result and
// Puts it as soon as its GEMM has run.
func (p *Proc) gather(x *tensor.Matrix) *tensor.Matrix {
	full := p.W.Workspace().GetUninitMatch(p.P*x.Rows, x.Cols, x.Phantom())
	return p.TP.AllGatherInto(p.W, x, full)
}

// drain completes the queued replicated-weight gradient syncs.
func (p *Proc) drain() {
	ws := p.W.Workspace()
	for i := range p.pending {
		s := &p.pending[i]
		s.h.Wait()
		s.param.AccumGrad(s.buf)
		ws.Put(s.buf)
		*s = gradSync{}
	}
	p.pending = p.pending[:0]
}

// shardLinear is the family's fully connected layer (the ViT patch
// embedding): the weight is replicated — the input rows are already
// sharded, so the GEMM is local with no communication at all — and the
// backward pass queues a nonblocking all-reduce per gradient so the
// replicated parameters see the sum over every rank's row shard, bitwise
// identical on all ranks. The handles drain in DrainGradients, hiding the
// sync behind the rest of the backward pass.
type shardLinear struct {
	In, Out int
	Act     nn.Activation
	W       *nn.Param // [In, Out], replicated
	B       *nn.Param // [1, Out], replicated

	p   *Proc
	x   *tensor.Matrix
	pre *tensor.Matrix
}

// newShardLinear draws the full Xavier weight from rng (the serial stream)
// and replicates it, like nn.NewLinear with a deferred gradient sum.
func newShardLinear(p *Proc, in, out int, act nn.Activation, bias bool, rng *tensor.RNG) *shardLinear {
	l := &shardLinear{In: in, Out: out, Act: act, p: p}
	l.W = nn.NewParam("seqpar.linear.w", tensor.XavierMatrix(in, out, rng))
	if bias {
		l.B = nn.NewParam("seqpar.linear.b", tensor.New(1, out))
	}
	return l
}

// Forward runs the local GEMM on the rank's row shard, bias and GELU fused
// into the write-back.
func (l *shardLinear) Forward(x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	w := l.p.W
	ws := w.Workspace()
	ph := x.Phantom() || l.W.Value.Phantom()
	pre := ws.GetUninitMatch(x.Rows, l.Out, ph)
	pre.Zero()
	l.pre = pre
	var bias *tensor.Matrix
	if l.B != nil {
		bias = l.B.Value
	}
	if l.Act == nn.ActGELU {
		act := ws.GetUninitMatch(x.Rows, l.Out, ph)
		compute.MatMulBiasGELUInto(w, act, pre, x, l.W.Value, bias)
		return act
	}
	if bias != nil {
		compute.MatMulBiasInto(w, pre, x, l.W.Value, bias)
	} else {
		compute.MatMulInto(w, pre, x, l.W.Value)
	}
	return pre
}

// Backward computes the shard-local gradient partials, queues their
// all-reduce for DrainGradients, and returns the sharded input gradient.
func (l *shardLinear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	w := l.p.W
	ws := w.Workspace()
	ph := dy.Phantom() || l.W.Value.Phantom()
	var dyScratch *tensor.Matrix
	if l.Act == nn.ActGELU {
		g := ws.GetUninitMatch(dy.Rows, dy.Cols, dy.Phantom() || l.pre.Phantom())
		compute.GELUGradHadamardTo(w, g, l.pre, dy)
		dy, dyScratch = g, g
	}
	dw := ws.GetUninitMatch(l.In, l.Out, ph)
	dw.Zero()
	compute.MatMulTNInto(w, dw, l.x, dy)
	l.p.pending = append(l.p.pending, gradSync{
		h: l.p.TP.IAllReduceInto(w, dw, dw), param: l.W, buf: dw,
	})
	if l.B != nil {
		db := ws.GetUninitMatch(1, l.Out, ph)
		compute.ColSumsInto(w, db, dy)
		l.p.pending = append(l.p.pending, gradSync{
			h: l.p.TP.IAllReduceInto(w, db, db), param: l.B, buf: db,
		})
	}
	dx := ws.GetUninitMatch(dy.Rows, l.In, ph)
	compute.MatMulNTInto(w, dx, dy, l.W.Value)
	if dyScratch != nil {
		ws.Put(dyScratch)
	}
	return dx
}

// Params returns the replicated parameters.
func (l *shardLinear) Params() []*nn.Param {
	if l.B == nil {
		return []*nn.Param{l.W}
	}
	return []*nn.Param{l.W, l.B}
}
