package summa

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// runMesh executes fn on a fresh cluster shaped for s.
func runMesh(t *testing.T, s mesh.Shape, fn func(p *mesh.Proc) error) *dist.Cluster {
	t.Helper()
	return testutil.Run(t, s.Size(), func(w *dist.Worker) error {
		return fn(mesh.NewProc(w, s))
	})
}

func globals(a, b, c, seed int) (*tensor.Matrix, *tensor.Matrix) {
	rng := tensor.NewRNG(uint64(seed))
	return tensor.RandomMatrix(a, b, rng), tensor.RandomMatrix(b, c, rng)
}

func TestMulABMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ q, d, a, b, c int }{
		{1, 1, 4, 4, 4},
		{2, 1, 8, 6, 10},
		{2, 2, 8, 6, 10},
		{3, 1, 9, 6, 12},
		{4, 2, 16, 8, 12},
		{4, 4, 16, 8, 12},
	} {
		t.Run(fmt.Sprintf("q%dd%d", tc.q, tc.d), func(t *testing.T) {
			s := mesh.Shape{Q: tc.q, D: tc.d}
			ga, gb := globals(tc.a, tc.b, tc.c, tc.q*10+tc.d)
			want := tensor.MatMul(ga, gb)
			results := testutil.NewCollector()
			runMesh(t, s, func(p *mesh.Proc) error {
				la := DistributeA(p, ga)
				lb := DistributeB(p, gb)
				lc := MulAB(p, la, lb)
				results.Put(p.W.Rank(), CollectA(p, lc))
				return nil
			})
			for r := 0; r < s.Size(); r++ {
				testutil.CheckClose(t, fmt.Sprintf("rank %d", r), results.Get(r), want, 1e-9)
			}
		})
	}
}

func TestMulABTMatchesSerial(t *testing.T) {
	// A' = C'·Bᵀ with C' A-distributed and B B-distributed.
	for _, tc := range []struct{ q, d, a, b, c int }{
		{2, 1, 8, 6, 10},
		{2, 2, 8, 6, 10},
		{3, 1, 9, 6, 12},
		{4, 2, 16, 8, 12},
	} {
		t.Run(fmt.Sprintf("q%dd%d", tc.q, tc.d), func(t *testing.T) {
			s := mesh.Shape{Q: tc.q, D: tc.d}
			rng := tensor.NewRNG(uint64(tc.q*100 + tc.d))
			gc := tensor.RandomMatrix(tc.a, tc.c, rng) // like dY
			gb := tensor.RandomMatrix(tc.b, tc.c, rng) // like W
			want := tensor.MatMulNT(gc, gb)
			results := testutil.NewCollector()
			runMesh(t, s, func(p *mesh.Proc) error {
				lc := DistributeA(p, gc)
				lb := DistributeB(p, gb)
				la := MulABT(p, lc, lb)
				results.Put(p.W.Rank(), CollectA(p, la))
				return nil
			})
			for r := 0; r < s.Size(); r++ {
				testutil.CheckClose(t, fmt.Sprintf("rank %d", r), results.Get(r), want, 1e-9)
			}
		})
	}
}

func TestMulATBMatchesSerialPerLayer(t *testing.T) {
	// B' = Aᵀ·C'. On a single layer (d=1) the per-layer result is already
	// the full product.
	for _, q := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("q%d", q), func(t *testing.T) {
			s := mesh.Shape{Q: q, D: 1}
			rng := tensor.NewRNG(uint64(q))
			ga := tensor.RandomMatrix(4*q, 3*q, rng)
			gc := tensor.RandomMatrix(4*q, 2*q, rng)
			want := tensor.MatMulTN(ga, gc)
			results := testutil.NewCollector()
			runMesh(t, s, func(p *mesh.Proc) error {
				la := DistributeA(p, ga)
				lc := DistributeA(p, gc)
				lb := MulATB(p, la, lc)
				results.Put(p.W.Rank(), CollectB(p, lb))
				return nil
			})
			for r := 0; r < s.Size(); r++ {
				testutil.CheckClose(t, fmt.Sprintf("rank %d", r), results.Get(r), want, 1e-9)
			}
		})
	}
}

func TestMulATBAcrossDepthSumsToSerial(t *testing.T) {
	// With d > 1 each layer holds disjoint block rows, so the depth
	// all-reduce of per-layer results equals the full Aᵀ·C'.
	s := mesh.Shape{Q: 2, D: 2}
	rng := tensor.NewRNG(99)
	ga := tensor.RandomMatrix(8, 6, rng)
	gc := tensor.RandomMatrix(8, 4, rng)
	want := tensor.MatMulTN(ga, gc)
	results := testutil.NewCollector()
	runMesh(t, s, func(p *mesh.Proc) error {
		la := DistributeA(p, ga)
		lc := DistributeA(p, gc)
		partial := MulATB(p, la, lc)
		full := p.Depth.AllReduce(p.W, partial)
		results.Put(p.W.Rank(), CollectB(p, full))
		return nil
	})
	for r := 0; r < s.Size(); r++ {
		testutil.CheckClose(t, fmt.Sprintf("rank %d", r), results.Get(r), want, 1e-9)
	}
}

func TestDistributeCollectRoundTrip(t *testing.T) {
	s := mesh.Shape{Q: 2, D: 2}
	rng := tensor.NewRNG(7)
	ga := tensor.RandomMatrix(8, 6, rng)
	gb := tensor.RandomMatrix(6, 4, rng)
	results := testutil.NewCollector()
	bResults := testutil.NewCollector()
	runMesh(t, s, func(p *mesh.Proc) error {
		results.Put(p.W.Rank(), CollectA(p, DistributeA(p, ga)))
		bResults.Put(p.W.Rank(), CollectB(p, DistributeB(p, gb)))
		return nil
	})
	for r := 0; r < s.Size(); r++ {
		testutil.CheckClose(t, "A roundtrip", results.Get(r), ga, 0)
		testutil.CheckClose(t, "B roundtrip", bResults.Get(r), gb, 0)
	}
}

func TestDistributeABlockPlacement(t *testing.T) {
	// Block row h = i + k·q must land on processor (i, j, k) — Figure 4a.
	s := mesh.Shape{Q: 2, D: 2}
	ga := tensor.New(8, 4) // block rows of 2 rows each
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			ga.Set(i, j, float64(i/2)) // value = block row index
		}
	}
	runMesh(t, s, func(p *mesh.Proc) error {
		la := DistributeA(p, ga)
		if got := la.At(0, 0); got != float64(p.BlockRow()) {
			t.Errorf("proc (%d,%d,%d) holds block row %g, want %d", p.I, p.J, p.K, got, p.BlockRow())
		}
		return nil
	})
}

func TestMulABPhantomSameClock(t *testing.T) {
	// The phantom execution must charge exactly the same simulated time as
	// the real execution.
	s := mesh.Shape{Q: 2, D: 2}
	clock := func(phantom bool) float64 {
		c := dist.New(dist.Config{WorldSize: s.Size()})
		if err := c.Run(func(w *dist.Worker) error {
			p := mesh.NewProc(w, s)
			var la, lb *tensor.Matrix
			if phantom {
				la = tensor.NewPhantom(2, 3)
				lb = tensor.NewPhantom(3, 2)
			} else {
				rng := tensor.NewRNG(uint64(w.Rank()))
				la = tensor.RandomMatrix(2, 3, rng)
				lb = tensor.RandomMatrix(3, 2, rng)
			}
			MulAB(p, la, lb)
			return nil
		}); err != nil {
			return -1
		}
		return c.MaxClock()
	}
	real, ph := clock(false), clock(true)
	if real <= 0 || real != ph {
		t.Fatalf("phantom clock %g != real clock %g", ph, real)
	}
}

func TestMulABShapePanics(t *testing.T) {
	s := mesh.Shape{Q: 2, D: 1}
	c := dist.New(dist.Config{WorldSize: s.Size()})
	err := c.Run(func(w *dist.Worker) error {
		p := mesh.NewProc(w, s)
		defer func() { recover() }()
		MulAB(p, tensor.New(2, 3), tensor.New(4, 2))
		t.Errorf("rank %d: expected shape panic", w.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
