package summa

import (
	"repro/internal/compute"
	"repro/internal/mesh"
	"repro/internal/tensor"
)

// Blocking reference schedules: the serial SUMMA loops the pipelined
// kernels replaced — one receive panel per operand, every broadcast and
// reduce fully synchronous, one collective in flight at a time. They are
// kept as the oracle for TestPipelinedMatchesBlockingBitwise: the
// double-buffered kernels must reproduce these results bit for bit on
// every rank, which pins down both the arithmetic association and the
// issue-order pairing of the nonblocking runtime.

// mulABBlocking is the serial-schedule MulAB.
func mulABBlocking(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	c := ws.GetMatch(a.Rows, b.Cols, a.Phantom() || b.Phantom())
	aPanel := ws.GetUninitMatch(a.Rows, a.Cols, a.Phantom())
	bPanel := ws.GetUninitMatch(b.Rows, b.Cols, b.Phantom())
	for t := 0; t < p.Shape.Q; t++ {
		ap := bcastRowInto(p, t, a, aPanel)
		bp := bcastColInto(p, t, b, bPanel)
		compute.MatMulInto(p.W, c, ap, bp)
	}
	ws.Put(aPanel, bPanel)
	return c
}

// mulABTBlocking is the serial-schedule MulABT.
func mulABTBlocking(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	ph := a.Phantom() || b.Phantom()
	bPanel := ws.GetUninitMatch(b.Rows, b.Cols, b.Phantom())
	partial := ws.GetUninitMatch(a.Rows, b.Rows, ph)
	var out *tensor.Matrix
	for j := 0; j < p.Shape.Q; j++ {
		var bp *tensor.Matrix
		if p.I == j {
			bp = p.Col.BroadcastInto(p.W, p.ColRank(j), b, b)
		} else {
			bp = p.Col.BroadcastInto(p.W, p.ColRank(j), nil, bPanel)
		}
		compute.MatMulNTInto(p.W, partial, a, bp)
		if p.J == j {
			out = ws.GetUninitMatch(a.Rows, b.Rows, ph)
			p.Row.ReduceInto(p.W, p.RowRank(j), partial, out)
		} else {
			p.Row.ReduceInto(p.W, p.RowRank(j), partial, nil)
		}
	}
	ws.Put(bPanel, partial)
	return out
}

// mulATBBlocking is the serial-schedule MulATB.
func mulATBBlocking(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	ph := a.Phantom() || b.Phantom()
	aPanel := ws.GetUninitMatch(a.Rows, a.Cols, a.Phantom())
	partial := ws.GetUninitMatch(a.Cols, b.Cols, ph)
	var out *tensor.Matrix
	for t := 0; t < p.Shape.Q; t++ {
		ap := bcastRowInto(p, t, a, aPanel)
		partial.Zero()
		compute.MatMulTNInto(p.W, partial, ap, b)
		if p.I == t {
			out = ws.GetUninitMatch(a.Cols, b.Cols, ph)
			p.Col.ReduceInto(p.W, p.ColRank(t), partial, out)
		} else {
			p.Col.ReduceInto(p.W, p.ColRank(t), partial, nil)
		}
	}
	ws.Put(aPanel, partial)
	return out
}

// bcastRowInto broadcasts the iteration-t A panel along the grid row: the
// owning processor shares its resident block directly (no copy), everyone
// else receives into the reusable panel.
func bcastRowInto(p *mesh.Proc, t int, a, panel *tensor.Matrix) *tensor.Matrix {
	if p.J == t {
		return p.Row.BroadcastInto(p.W, p.RowRank(t), a, a)
	}
	return p.Row.BroadcastInto(p.W, p.RowRank(t), nil, panel)
}

// bcastColInto is bcastRowInto for B panels down the grid column.
func bcastColInto(p *mesh.Proc, t int, b, panel *tensor.Matrix) *tensor.Matrix {
	if p.I == t {
		return p.Col.BroadcastInto(p.W, p.ColRank(t), b, b)
	}
	return p.Col.BroadcastInto(p.W, p.ColRank(t), nil, panel)
}
