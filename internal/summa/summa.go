// Package summa implements the Scalable Universal Matrix Multiplication
// Algorithm (van de Geijn & Watts, Algorithm 2 of the paper) on one q×q
// layer of a mesh, in the three variants tensor-parallel Transformers need:
//
//	MulAB  : C = A·B    (broadcast A panels along rows, B panels along columns)
//	MulABT : C = A·Bᵀ   (broadcast B panels along columns, reduce along rows)
//	MulATB : C = Aᵀ·B   (broadcast A panels along rows, reduce along columns)
//
// The two transposed variants implement the paper's Eq. 3 gradients
// A' = C'·Bᵀ and B' = Aᵀ·C'. All three work on a single depth layer of a
// Tesseract mesh; the tesseract package composes them across layers. With an
// A-distributed left operand (block rows h = i + k·q) each layer simply sees
// its own q×q slice, so the same kernels serve both the 2-D baseline
// (Optimus) and each Tesseract layer.
//
// # Pipelining
//
// All three kernels run double-buffered: two receive panels per operand,
// iteration t's GEMM overlapped with the nonblocking prefetch broadcast of
// panel t+1, and — in the reduce variants — with the previous iteration's
// partial reduce still in flight (two partial buffers alternate, each
// overwritten only after the reduce that read it has been waited). The
// dist runtime keeps nonblocking collectives bit-identical to their
// blocking forms and pairs them in per-worker issue order, so the
// pipelined schedules produce exactly the bits of the blocking schedules
// kept in blocking.go — TestPipelinedMatchesBlockingBitwise holds the
// kernels to that.
package summa

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/tensor"
)

// MulAB computes the SUMMA product C = A·B over the caller's layer.
// a is the caller's A block (any row count), b the caller's B block; the
// result has a.Rows × b.Cols and the same distribution as A.
//
// The returned matrix is drawn from the calling worker's workspace: the
// caller owns it and is responsible for recycling it (Put once its last
// reader is done, or the step-boundary ReleaseAll). Two receive panels per
// operand are reused across all q broadcast iterations, so a steady-state
// call allocates nothing.
func MulAB(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	return MulABEpi(p, a, b, Epilogue{})
}

// Epilogue is an optional fused write-back for MulABEpi: after the final
// SUMMA iteration has finished accumulating a C row band, Bias (a local
// [1, C.Cols] row vector) is added to it and, when Act is non-nil, GELU of
// the row is written into Act while C keeps the pre-activation. Because the
// epilogue runs only after a row's last accumulation step, the result is
// bitwise identical to running the separate bias/GELU passes after MulAB —
// the per-element operation order is unchanged (see tensor's fusion
// contract). Both fields may be nil; both must be workspace buffers or
// parameters the caller owns.
type Epilogue struct {
	Bias *tensor.Matrix
	Act  *tensor.Matrix
}

// MulABEpi is MulAB with a fused epilogue applied inside the final
// iteration's GEMM write-back, saving the extra memory passes a linear
// layer's bias add and activation would otherwise spend on C.
func MulABEpi(p *mesh.Proc, a, b *tensor.Matrix, epi Epilogue) *tensor.Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("summa: MulAB local blocks %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	ws := p.W.Workspace()
	c := ws.GetMatch(a.Rows, b.Cols, a.Phantom() || b.Phantom())
	var aPanels, bPanels [2]*tensor.Matrix
	for i := range aPanels {
		aPanels[i] = ws.GetUninitMatch(a.Rows, a.Cols, a.Phantom())
		bPanels[i] = ws.GetUninitMatch(b.Rows, b.Cols, b.Phantom())
	}
	var hA, hB [2]dist.Handle
	var aps, bps [2]*tensor.Matrix
	hA[0], aps[0] = prefetchRowPanel(p, 0, a, aPanels[0])
	hB[0], bps[0] = prefetchColPanel(p, 0, b, bPanels[0])
	for t := 0; t < p.Shape.Q; t++ {
		cur := t % 2
		if nt := t + 1; nt < p.Shape.Q {
			hA[nt%2], aps[nt%2] = prefetchRowPanel(p, nt, a, aPanels[nt%2])
			hB[nt%2], bps[nt%2] = prefetchColPanel(p, nt, b, bPanels[nt%2])
		}
		hA[cur].Wait()
		hB[cur].Wait()
		switch {
		case t < p.Shape.Q-1 || (epi.Bias == nil && epi.Act == nil):
			compute.MatMulInto(p.W, c, aps[cur], bps[cur])
		case epi.Act != nil:
			compute.MatMulBiasGELUInto(p.W, epi.Act, c, aps[cur], bps[cur], epi.Bias)
		default:
			compute.MatMulBiasInto(p.W, c, aps[cur], bps[cur], epi.Bias)
		}
	}
	ws.Put(aPanels[0], aPanels[1], bPanels[0], bPanels[1])
	return c
}

// MulABT computes C = A·Bᵀ where a is A-distributed (the caller's block of
// A, e.g. an output gradient) and b is B-distributed (the caller's parameter
// block). The result is A-distributed with b.Rows columns per block:
//
//	C[h, j] = Σ_t A[h, t]·B[j, t]ᵀ
//
// Iteration j broadcasts B[j, t] down each grid column t, multiplies against
// the resident A block, and reduces the partials across the row to processor
// (i, j) — the schedule described in §3.1 of the paper, double-buffered so
// iteration j's GEMM overlaps both the prefetch of panel j+1 and the reduce
// of partial j−1. A partial buffer is only overwritten after the reduce that
// consumed it has been waited, and the returned matrix is a workspace buffer
// owned by the caller.
func MulABT(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("summa: MulABT local blocks %dx%d by %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	ws := p.W.Workspace()
	ph := a.Phantom() || b.Phantom()
	var bPanels, partials [2]*tensor.Matrix
	for i := range bPanels {
		bPanels[i] = ws.GetUninitMatch(b.Rows, b.Cols, b.Phantom())
		partials[i] = ws.GetUninitMatch(a.Rows, b.Rows, ph)
	}
	var hB, hR [2]dist.Handle
	var bps [2]*tensor.Matrix
	var reducing [2]bool
	var out *tensor.Matrix
	hB[0], bps[0] = prefetchColOwnerRow(p, 0, b, bPanels[0])
	for j := 0; j < p.Shape.Q; j++ {
		cur := j % 2
		if nj := j + 1; nj < p.Shape.Q {
			hB[nj%2], bps[nj%2] = prefetchColOwnerRow(p, nj, b, bPanels[nj%2])
		}
		hB[cur].Wait()
		if reducing[cur] {
			hR[cur].Wait() // reduce j−2 done: its partial is ours again
			reducing[cur] = false
		}
		compute.MatMulNTInto(p.W, partials[cur], a, bps[cur])
		if p.J == j {
			out = ws.GetUninitMatch(a.Rows, b.Rows, ph)
			hR[cur] = p.Row.IReduceInto(p.W, p.RowRank(j), partials[cur], out)
		} else {
			hR[cur] = p.Row.IReduceInto(p.W, p.RowRank(j), partials[cur], nil)
		}
		reducing[cur] = true
	}
	for i := range hR {
		if reducing[i] {
			hR[i].Wait()
		}
	}
	ws.Put(bPanels[0], bPanels[1], partials[0], partials[1])
	return out
}

// MulATB computes C = Aᵀ·B where both a and b are A-distributed blocks with
// equal row counts (activations and output gradients). The result is
// B-distributed:
//
//	C[t, j] = Σ_h A[h, t]ᵀ·B[h, j]
//
// Iteration t broadcasts the A[·, t] panel along each row, multiplies
// against the resident right operand, and reduces the partials down the
// column to processor (t, j). On a Tesseract mesh the caller must still
// all-reduce the result across the depth group (the paper's §3.1 rule for
// B'); this function handles one layer. The double-buffered panels,
// partial-reuse discipline and caller-owned workspace result follow MulABT.
func MulATB(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("summa: MulATB local blocks %dx%dᵀ by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	ws := p.W.Workspace()
	ph := a.Phantom() || b.Phantom()
	var aPanels, partials [2]*tensor.Matrix
	for i := range aPanels {
		aPanels[i] = ws.GetUninitMatch(a.Rows, a.Cols, a.Phantom())
		partials[i] = ws.GetUninitMatch(a.Cols, b.Cols, ph)
	}
	var hA, hR [2]dist.Handle
	var aps [2]*tensor.Matrix
	var reducing [2]bool
	var out *tensor.Matrix
	hA[0], aps[0] = prefetchRowPanel(p, 0, a, aPanels[0])
	for t := 0; t < p.Shape.Q; t++ {
		cur := t % 2
		if nt := t + 1; nt < p.Shape.Q {
			hA[nt%2], aps[nt%2] = prefetchRowPanel(p, nt, a, aPanels[nt%2])
		}
		hA[cur].Wait()
		if reducing[cur] {
			hR[cur].Wait()
			reducing[cur] = false
		}
		partials[cur].Zero() // the TN kernel accumulates; start each partial fresh
		compute.MatMulTNInto(p.W, partials[cur], aps[cur], b)
		if p.I == t {
			out = ws.GetUninitMatch(a.Cols, b.Cols, ph)
			hR[cur] = p.Col.IReduceInto(p.W, p.ColRank(t), partials[cur], out)
		} else {
			hR[cur] = p.Col.IReduceInto(p.W, p.ColRank(t), partials[cur], nil)
		}
		reducing[cur] = true
	}
	for i := range hR {
		if reducing[i] {
			hR[i].Wait()
		}
	}
	ws.Put(aPanels[0], aPanels[1], partials[0], partials[1])
	return out
}

// prefetchRowPanel issues the iteration-t A-panel broadcast along the grid
// row without blocking: the owning processor lends its resident block
// (payload doubles as destination, no copy), everyone else receives into the
// given panel. Returns the handle and the buffer that will hold the panel
// once the handle is waited.
func prefetchRowPanel(p *mesh.Proc, t int, a, panel *tensor.Matrix) (dist.Handle, *tensor.Matrix) {
	if p.J == t {
		return p.Row.IBroadcastInto(p.W, p.RowRank(t), a, a), a
	}
	return p.Row.IBroadcastInto(p.W, p.RowRank(t), nil, panel), panel
}

// prefetchColPanel is prefetchRowPanel for B panels down the grid column
// (owner at grid row t of this column).
func prefetchColPanel(p *mesh.Proc, t int, b, panel *tensor.Matrix) (dist.Handle, *tensor.Matrix) {
	if p.I == t {
		return p.Col.IBroadcastInto(p.W, p.ColRank(t), b, b), b
	}
	return p.Col.IBroadcastInto(p.W, p.ColRank(t), nil, panel), panel
}

// prefetchColOwnerRow issues MulABT's iteration-j broadcast of B[j, J] down
// the column: the owner sits at grid row j.
func prefetchColOwnerRow(p *mesh.Proc, j int, b, panel *tensor.Matrix) (dist.Handle, *tensor.Matrix) {
	if p.I == j {
		return p.Col.IBroadcastInto(p.W, p.ColRank(j), b, b), b
	}
	return p.Col.IBroadcastInto(p.W, p.ColRank(j), nil, panel), panel
}

// DistributeB slices a global matrix into the q×q B-distribution of the
// caller's layer: processor (i, j) receives block (i, j) of a q×q grid.
// Every caller passes the same global matrix (deterministic replication, as
// used for parameter initialisation).
func DistributeB(p *mesh.Proc, global *tensor.Matrix) *tensor.Matrix {
	q := p.Shape.Q
	if global.Rows%q != 0 || global.Cols%q != 0 {
		panic(fmt.Sprintf("summa: cannot B-distribute %dx%d over q=%d", global.Rows, global.Cols, q))
	}
	br, bc := global.Rows/q, global.Cols/q
	return global.SubMatrix(p.I*br, p.J*bc, br, bc)
}

// DistributeA slices a global matrix into the Tesseract A-distribution:
// processor (i, j, k) receives block (h, j) with h = i + k·q of a (d·q)×q
// grid (Figure 4a).
func DistributeA(p *mesh.Proc, global *tensor.Matrix) *tensor.Matrix {
	q, d := p.Shape.Q, p.Shape.D
	if global.Rows%(d*q) != 0 || global.Cols%q != 0 {
		panic(fmt.Sprintf("summa: cannot A-distribute %dx%d over q=%d d=%d", global.Rows, global.Cols, q, d))
	}
	br, bc := global.Rows/(d*q), global.Cols/q
	return global.SubMatrix(p.BlockRow()*br, p.J*bc, br, bc)
}

// CollectA reassembles an A-distributed matrix on every processor via
// all-gathers along the row (columns of the matrix) and the slab (block
// rows). It is used by tests and by redundantly-computed model heads.
func CollectA(p *mesh.Proc, local *tensor.Matrix) *tensor.Matrix {
	rowParts := p.Row.AllGather(p.W, local)
	wide := hcat(rowParts)
	slabParts := p.Slab.AllGather(p.W, wide)
	// Slab order is h = i + k·q ascending, i.e. exactly block-row order.
	return vcat(slabParts)
}

// CollectB reassembles a B-distributed matrix on every processor of a layer.
func CollectB(p *mesh.Proc, local *tensor.Matrix) *tensor.Matrix {
	rowParts := p.Row.AllGather(p.W, local)
	wide := hcat(rowParts)
	colParts := p.Col.AllGather(p.W, wide)
	return vcat(colParts)
}

func hcat(parts []*tensor.Matrix) *tensor.Matrix {
	blocks := make([]*tensor.Matrix, len(parts))
	copy(blocks, parts)
	return tensor.Combine(1, len(blocks), blocks)
}

func vcat(parts []*tensor.Matrix) *tensor.Matrix {
	blocks := make([]*tensor.Matrix, len(parts))
	copy(blocks, parts)
	return tensor.Combine(len(blocks), 1, blocks)
}
