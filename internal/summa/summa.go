// Package summa implements the Scalable Universal Matrix Multiplication
// Algorithm (van de Geijn & Watts, Algorithm 2 of the paper) on one q×q
// layer of a mesh, in the three variants tensor-parallel Transformers need:
//
//	MulAB  : C = A·B    (broadcast A panels along rows, B panels along columns)
//	MulABT : C = A·Bᵀ   (broadcast B panels along columns, reduce along rows)
//	MulATB : C = Aᵀ·B   (broadcast A panels along rows, reduce along columns)
//
// The two transposed variants implement the paper's Eq. 3 gradients
// A' = C'·Bᵀ and B' = Aᵀ·C'. All three work on a single depth layer of a
// Tesseract mesh; the tesseract package composes them across layers. With an
// A-distributed left operand (block rows h = i + k·q) each layer simply sees
// its own q×q slice, so the same kernels serve both the 2-D baseline
// (Optimus) and each Tesseract layer.
package summa

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/mesh"
	"repro/internal/tensor"
)

// MulAB computes the SUMMA product C = A·B over the caller's layer.
// a is the caller's A block (any row count), b the caller's B block; the
// result has a.Rows × b.Cols and the same distribution as A.
//
// The returned matrix is drawn from the calling worker's workspace: the
// caller owns it and is responsible for recycling it (Put once its last
// reader is done, or the step-boundary ReleaseAll). One receive panel per
// operand is reused across all q broadcast iterations, so a steady-state
// call allocates nothing.
func MulAB(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("summa: MulAB local blocks %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	ws := p.W.Workspace()
	c := ws.GetMatch(a.Rows, b.Cols, a.Phantom() || b.Phantom())
	aPanel := ws.GetUninitMatch(a.Rows, a.Cols, a.Phantom())
	bPanel := ws.GetUninitMatch(b.Rows, b.Cols, b.Phantom())
	for t := 0; t < p.Shape.Q; t++ {
		ap := bcastRowInto(p, t, a, aPanel)
		bp := bcastColInto(p, t, b, bPanel)
		compute.MatMulInto(p.W, c, ap, bp)
	}
	ws.Put(aPanel, bPanel)
	return c
}

// MulABT computes C = A·Bᵀ where a is A-distributed (the caller's block of
// A, e.g. an output gradient) and b is B-distributed (the caller's parameter
// block). The result is A-distributed with b.Rows columns per block:
//
//	C[h, j] = Σ_t A[h, t]·B[j, t]ᵀ
//
// Iteration j broadcasts B[j, t] down each grid column t, multiplies against
// the resident A block, and reduces the partials across the row to processor
// (i, j) — the schedule described in §3.1 of the paper.
//
// Like MulAB it reuses one receive panel and one partial buffer across all
// q iterations — ReduceInto guarantees every member's partial is fully
// consumed before the collective returns, so overwriting it next iteration
// is safe — and the returned matrix is a workspace buffer owned by the
// caller.
func MulABT(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("summa: MulABT local blocks %dx%d by %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	ws := p.W.Workspace()
	ph := a.Phantom() || b.Phantom()
	bPanel := ws.GetUninitMatch(b.Rows, b.Cols, b.Phantom())
	partial := ws.GetUninitMatch(a.Rows, b.Rows, ph)
	var out *tensor.Matrix
	for j := 0; j < p.Shape.Q; j++ {
		// B[j, J] lives on grid row j of every column; broadcast it down
		// the column so each processor can form its partial product.
		var bp *tensor.Matrix
		if p.I == j {
			bp = p.Col.BroadcastInto(p.W, p.ColRank(j), b, b)
		} else {
			bp = p.Col.BroadcastInto(p.W, p.ColRank(j), nil, bPanel)
		}
		compute.MatMulNTInto(p.W, partial, a, bp)
		if p.J == j {
			out = ws.GetUninitMatch(a.Rows, b.Rows, ph)
			p.Row.ReduceInto(p.W, p.RowRank(j), partial, out)
		} else {
			p.Row.ReduceInto(p.W, p.RowRank(j), partial, nil)
		}
	}
	ws.Put(bPanel, partial)
	return out
}

// MulATB computes C = Aᵀ·B where both a and b are A-distributed blocks with
// equal row counts (activations and output gradients). The result is
// B-distributed:
//
//	C[t, j] = Σ_h A[h, t]ᵀ·B[h, j]
//
// Iteration t broadcasts the A[·, t] panel along each row, multiplies
// against the resident right operand, and reduces the partials down the
// column to processor (t, j). On a Tesseract mesh the caller must still
// all-reduce the result across the depth group (the paper's §3.1 rule for
// B'); this function handles one layer. The panel/partial reuse and the
// caller-owned workspace result follow MulABT.
func MulATB(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("summa: MulATB local blocks %dx%dᵀ by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	ws := p.W.Workspace()
	ph := a.Phantom() || b.Phantom()
	aPanel := ws.GetUninitMatch(a.Rows, a.Cols, a.Phantom())
	partial := ws.GetUninitMatch(a.Cols, b.Cols, ph)
	var out *tensor.Matrix
	for t := 0; t < p.Shape.Q; t++ {
		ap := bcastRowInto(p, t, a, aPanel)
		partial.Zero() // the TN kernel accumulates; start each partial fresh
		compute.MatMulTNInto(p.W, partial, ap, b)
		if p.I == t {
			out = ws.GetUninitMatch(a.Cols, b.Cols, ph)
			p.Col.ReduceInto(p.W, p.ColRank(t), partial, out)
		} else {
			p.Col.ReduceInto(p.W, p.ColRank(t), partial, nil)
		}
	}
	ws.Put(aPanel, partial)
	return out
}

// bcastRowInto broadcasts the iteration-t A panel along the grid row: the
// owning processor shares its resident block directly (no copy), everyone
// else receives into the reusable panel.
func bcastRowInto(p *mesh.Proc, t int, a, panel *tensor.Matrix) *tensor.Matrix {
	if p.J == t {
		return p.Row.BroadcastInto(p.W, p.RowRank(t), a, a)
	}
	return p.Row.BroadcastInto(p.W, p.RowRank(t), nil, panel)
}

// bcastColInto is bcastRowInto for B panels down the grid column.
func bcastColInto(p *mesh.Proc, t int, b, panel *tensor.Matrix) *tensor.Matrix {
	if p.I == t {
		return p.Col.BroadcastInto(p.W, p.ColRank(t), b, b)
	}
	return p.Col.BroadcastInto(p.W, p.ColRank(t), nil, panel)
}

// DistributeB slices a global matrix into the q×q B-distribution of the
// caller's layer: processor (i, j) receives block (i, j) of a q×q grid.
// Every caller passes the same global matrix (deterministic replication, as
// used for parameter initialisation).
func DistributeB(p *mesh.Proc, global *tensor.Matrix) *tensor.Matrix {
	q := p.Shape.Q
	if global.Rows%q != 0 || global.Cols%q != 0 {
		panic(fmt.Sprintf("summa: cannot B-distribute %dx%d over q=%d", global.Rows, global.Cols, q))
	}
	br, bc := global.Rows/q, global.Cols/q
	return global.SubMatrix(p.I*br, p.J*bc, br, bc)
}

// DistributeA slices a global matrix into the Tesseract A-distribution:
// processor (i, j, k) receives block (h, j) with h = i + k·q of a (d·q)×q
// grid (Figure 4a).
func DistributeA(p *mesh.Proc, global *tensor.Matrix) *tensor.Matrix {
	q, d := p.Shape.Q, p.Shape.D
	if global.Rows%(d*q) != 0 || global.Cols%q != 0 {
		panic(fmt.Sprintf("summa: cannot A-distribute %dx%d over q=%d d=%d", global.Rows, global.Cols, q, d))
	}
	br, bc := global.Rows/(d*q), global.Cols/q
	return global.SubMatrix(p.BlockRow()*br, p.J*bc, br, bc)
}

// CollectA reassembles an A-distributed matrix on every processor via
// all-gathers along the row (columns of the matrix) and the slab (block
// rows). It is used by tests and by redundantly-computed model heads.
func CollectA(p *mesh.Proc, local *tensor.Matrix) *tensor.Matrix {
	rowParts := p.Row.AllGather(p.W, local)
	wide := hcat(rowParts)
	slabParts := p.Slab.AllGather(p.W, wide)
	// Slab order is h = i + k·q ascending, i.e. exactly block-row order.
	return vcat(slabParts)
}

// CollectB reassembles a B-distributed matrix on every processor of a layer.
func CollectB(p *mesh.Proc, local *tensor.Matrix) *tensor.Matrix {
	rowParts := p.Row.AllGather(p.W, local)
	wide := hcat(rowParts)
	colParts := p.Col.AllGather(p.W, wide)
	return vcat(colParts)
}

func hcat(parts []*tensor.Matrix) *tensor.Matrix {
	blocks := make([]*tensor.Matrix, len(parts))
	copy(blocks, parts)
	return tensor.Combine(1, len(blocks), blocks)
}

func vcat(parts []*tensor.Matrix) *tensor.Matrix {
	blocks := make([]*tensor.Matrix, len(parts))
	copy(blocks, parts)
	return tensor.Combine(len(blocks), 1, blocks)
}
