package summa

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// The pipelined kernels' central property: on every rank, across repeated
// calls (so the double-buffered panels and partials are genuinely reused),
// the nonblocking double-buffered schedules produce bit-for-bit the results
// of the blocking reference schedules in blocking.go. [1,1,1] covers the
// degenerate self-broadcast, [2,2,1]/[2,2,2] the paper's small meshes, and
// [4,4,1] reduce groups with interior tree positions.

var pipelineShapes = []struct{ q, d int }{{1, 1}, {2, 1}, {2, 2}, {4, 1}}

func runPair(t *testing.T, sh struct{ q, d int }, steps int,
	pipelined, blocking func(p *mesh.Proc, a, b *tensor.Matrix) *tensor.Matrix,
	operands func(p *mesh.Proc, step int) (*tensor.Matrix, *tensor.Matrix)) {
	t.Helper()
	s := mesh.Shape{Q: sh.q, D: sh.d}
	world := s.Size()
	got := make([][]*tensor.Matrix, world)
	want := make([][]*tensor.Matrix, world)
	testutil.Run(t, world, func(w *dist.Worker) error {
		p := mesh.NewProc(w, s)
		ws := w.Workspace()
		for step := 0; step < steps; step++ {
			a, b := operands(p, step)
			pr := pipelined(p, a, b)
			var prc *tensor.Matrix
			if pr != nil {
				prc = pr.Clone()
				ws.Put(pr)
			}
			br := blocking(p, a, b)
			var brc *tensor.Matrix
			if br != nil {
				brc = br.Clone()
				ws.Put(br)
			}
			got[w.Rank()] = append(got[w.Rank()], prc)
			want[w.Rank()] = append(want[w.Rank()], brc)
		}
		return nil
	})
	for r := 0; r < world; r++ {
		for step := 0; step < steps; step++ {
			g, wnt := got[r][step], want[r][step]
			if (g == nil) != (wnt == nil) {
				t.Fatalf("[%d,%d,%d] rank %d step %d: nil mismatch", sh.q, sh.q, sh.d, r, step)
			}
			if g != nil && !g.Equal(wnt) {
				t.Fatalf("[%d,%d,%d] rank %d step %d: pipelined result differs bitwise from blocking (max diff %g)",
					sh.q, sh.q, sh.d, r, step, g.MaxAbsDiff(wnt))
			}
		}
	}
}

func blockFor(p *mesh.Proc, rows, cols int, seed uint64) *tensor.Matrix {
	rng := tensor.NewRNG(seed*1000003 + uint64(p.W.Rank())*97 + 1)
	return tensor.RandomMatrix(rows, cols, rng)
}

func TestPipelinedMulABMatchesBlockingBitwise(t *testing.T) {
	for _, sh := range pipelineShapes {
		t.Run(fmt.Sprintf("q%dd%d", sh.q, sh.d), func(t *testing.T) {
			runPair(t, sh, 3, MulAB, mulABBlocking,
				func(p *mesh.Proc, step int) (*tensor.Matrix, *tensor.Matrix) {
					a := blockFor(p, 3, 4, uint64(step))
					b := blockFor(p, 4, 2, uint64(step)+50)
					return a, b
				})
		})
	}
}

func TestPipelinedMulABTMatchesBlockingBitwise(t *testing.T) {
	for _, sh := range pipelineShapes {
		t.Run(fmt.Sprintf("q%dd%d", sh.q, sh.d), func(t *testing.T) {
			runPair(t, sh, 3, MulABT, mulABTBlocking,
				func(p *mesh.Proc, step int) (*tensor.Matrix, *tensor.Matrix) {
					a := blockFor(p, 3, 4, uint64(step)+100) // dY-like block
					b := blockFor(p, 5, 4, uint64(step)+150) // W-like block
					return a, b
				})
		})
	}
}

func TestPipelinedMulATBMatchesBlockingBitwise(t *testing.T) {
	for _, sh := range pipelineShapes {
		t.Run(fmt.Sprintf("q%dd%d", sh.q, sh.d), func(t *testing.T) {
			runPair(t, sh, 3, MulATB, mulATBBlocking,
				func(p *mesh.Proc, step int) (*tensor.Matrix, *tensor.Matrix) {
					a := blockFor(p, 6, 3, uint64(step)+200)
					b := blockFor(p, 6, 2, uint64(step)+250)
					return a, b
				})
		})
	}
}

// TestPipelinedPhantomSameClockAndStats pins the accounting contract: the
// pipelined kernels must charge identical simulated time and identical
// traffic in phantom and real mode (the harness guarantee every table rests
// on), and the overlap statistics must report some comm time with a
// nonnegative hidden share.
func TestPipelinedPhantomSameClockAndStats(t *testing.T) {
	run := func(phantom bool) (clock, hidden, total float64, stats dist.Stats) {
		s := mesh.Shape{Q: 2, D: 2}
		c := dist.New(dist.Config{WorldSize: s.Size()})
		if err := c.Run(func(w *dist.Worker) error {
			p := mesh.NewProc(w, s)
			var a, b *tensor.Matrix
			if phantom {
				a, b = tensor.NewPhantom(4, 6), tensor.NewPhantom(6, 2)
			} else {
				rng := tensor.NewRNG(uint64(w.Rank()) + 3)
				a, b = tensor.RandomMatrix(4, 6, rng), tensor.RandomMatrix(6, 2, rng)
			}
			ws := w.Workspace()
			ws.Put(MulAB(p, a, b))
			ws.Put(MulABT(p, blockFor(p, 4, 2, 7), blockFor(p, 3, 2, 8)))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		h, tot := c.Overlap()
		return c.MaxClock(), h, tot, c.Stats()
	}
	// MulABT uses real blocks in both runs; only MulAB flips phantomness,
	// which must not change a single clock tick or message count.
	realClock, hidden, total, realStats := run(false)
	phClock, _, _, phStats := run(true)
	if realClock <= 0 || realClock != phClock {
		t.Fatalf("phantom clock %g != real clock %g", phClock, realClock)
	}
	if realStats.Messages != phStats.Messages || realStats.Bytes != phStats.Bytes {
		t.Fatalf("phantom stats %+v != real stats %+v", phStats, realStats)
	}
	if total <= 0 {
		t.Fatal("pipelined kernels reported no comm time")
	}
	if hidden < 0 || hidden > total {
		t.Fatalf("hidden comm %g outside [0, %g]", hidden, total)
	}
}
