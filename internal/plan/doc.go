// Package plan is the auto-parallelism planner: given a Transformer
// workload, a rank budget and a per-rank memory budget, it enumerates every
// feasible processor layout — Megatron's [p], Optimus' [q, q] and
// Tesseract's [q, q, d] — scores each candidate analytically against the
// dist.CostModel (compute plus the communication a double-buffered schedule
// cannot hide, plus a per-rank memory estimate), and returns a ranked list
// of Plans. It closes the loop the paper leaves to the reader: the best
// point of the [p, q, d] space depends on model shape and cluster
// bandwidth, and the planner finds it instead of the user.
//
// The planner knows nothing about any particular scheme. Each baseline
// package describes itself with an Algo — a family name plus three
// closures: Grids (feasible layouts within a rank budget), Cost (analytic
// forward/backward seconds for a workload on a grid, mirroring the exact
// schedule the implementation executes on the simulated cluster) and Memory
// (bytes a rank must hold). megatron.PlanAlgo, optimus.PlanAlgo and
// tesseract.PlanAlgo are the built-in descriptors; internal/tables bundles
// them as tables.DefaultAlgos, and a later scheme joins the search by
// exporting one more Algo.
//
// Because every candidate can also be executed for real on the simulated
// cluster, a Plan is checkable: Plan.Validate replays it (via a Measurer
// such as tables.MeasurePlan) and reports the predicted-vs-measured step
// time error, and ValidateTop does so for the leading candidates of a
// search. cmd/tesseract-plan is the command-line front end; the
// tables.PlannerStudy regenerates the paper's best-layout rows from the
// planner instead of hard-coded grids.
package plan
