package plan_test

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/megatron"
	"repro/internal/optimus"
	"repro/internal/plan"
	"repro/internal/tables"
	"repro/internal/tesseract"
)

func algos() []plan.Algo {
	return []plan.Algo{tesseract.PlanAlgo(), optimus.PlanAlgo(), megatron.PlanAlgo()}
}

var table1 = plan.Workload{Batch: 16, Hidden: 3072, Heads: 64}

func TestSearchRanksAllFamiliesSorted(t *testing.T) {
	plans, err := plan.Search(table1, plan.Topology{RankBudget: 64}, algos())
	if err != nil {
		t.Fatal(err)
	}
	fams := map[string]int{}
	for _, p := range plans {
		fams[p.Family]++
		if p.Grid.Ranks > 64 {
			t.Fatalf("plan %s uses %d ranks, budget 64", p, p.Grid.Ranks)
		}
	}
	for _, f := range []string{"tesseract", "optimus", "megatron"} {
		if fams[f] == 0 {
			t.Fatalf("family %s missing from the ranking (got %v)", f, fams)
		}
	}
	if !sort.SliceIsSorted(plans, func(i, j int) bool {
		return plans[i].Predicted.Step() < plans[j].Predicted.Step()
	}) {
		// Stable ties are fine; strict inversions are not.
		for i := 1; i < len(plans); i++ {
			if plans[i].Predicted.Step() < plans[i-1].Predicted.Step() {
				t.Fatalf("ranking inverted at %d: %s (%g) before %s (%g)",
					i, plans[i-1], plans[i-1].Predicted.Step(), plans[i], plans[i].Predicted.Step())
			}
		}
	}
}

func TestSearchExactRanks(t *testing.T) {
	plans, err := plan.Search(table1, plan.Topology{RankBudget: 64, ExactRanks: true}, algos())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Grid.Ranks != 64 {
			t.Fatalf("ExactRanks leaked %s with %d ranks", p, p.Grid.Ranks)
		}
	}
	// The paper's Table 1 ordering at 64 GPUs: Tesseract [4,4,4] first.
	if best := plans[0]; best.Family != "tesseract" || best.Grid.Q != 4 || best.Grid.D != 4 {
		t.Fatalf("best 64-rank plan = %s, want tesseract [4,4,4] (Table 1)", best)
	}
}

// TestBestPlanRespectsMemoryBudget is the planner's core safety property:
// no returned candidate — in particular the winner — may exceed the
// per-rank memory budget, and an impossible budget must error rather than
// return an over-budget plan.
func TestBestPlanRespectsMemoryBudget(t *testing.T) {
	budget := int64(1) << 30 // 1 GiB excludes the small-rank layouts
	plans, err := plan.Search(table1, plan.Topology{RankBudget: 64, MemoryBudget: budget}, algos())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Predicted.MemoryBytes > budget {
			t.Fatalf("plan %s needs %s, budget %s", p,
				plan.FormatBytes(p.Predicted.MemoryBytes), plan.FormatBytes(budget))
		}
	}
	// An unsatisfiable budget errors with the tightest candidate named.
	_, err = plan.Search(table1, plan.Topology{RankBudget: 64, MemoryBudget: 1 << 10}, algos())
	if err == nil || !strings.Contains(err.Error(), "no feasible layout") {
		t.Fatalf("1 KiB budget must fail with a diagnostic, got %v", err)
	}
}

// TestBandwidthStarvedPrefersDeeperD checks the paper's Table 2 trend: as
// links get slower relative to compute, the planner's best Tesseract mesh
// moves to deeper d (the depth dimension shrinks the per-layer SUMMA
// panels at the cost of the rare depth all-reduce).
func TestBandwidthStarvedPrefersDeeperD(t *testing.T) {
	starved := dist.MeluxinaModel()
	starved.BetaIntra *= 100
	starved.BetaInter *= 100
	plans, err := plan.Search(table1, plan.Topology{RankBudget: 64, ExactRanks: true, Cost: starved}, algos())
	if err != nil {
		t.Fatal(err)
	}
	best := plans[0]
	if best.Family != "tesseract" || best.Grid.D < 2 {
		t.Fatalf("bandwidth-starved best plan = %s, want a deep Tesseract mesh (d ≥ 2)", best)
	}
	// And the deep mesh must strictly beat the flat [8,8,1] layout.
	var flat *plan.Plan
	for i := range plans {
		if plans[i].Family == "tesseract" && plans[i].Grid.Q == 8 && plans[i].Grid.D == 1 {
			flat = &plans[i]
			break
		}
	}
	if flat == nil {
		t.Fatal("flat [8,8,1] candidate missing")
	}
	if best.Predicted.Step() >= flat.Predicted.Step() {
		t.Fatalf("deep mesh %s (%g s) must beat flat %s (%g s) when bandwidth-starved",
			best, best.Predicted.Step(), flat, flat.Predicted.Step())
	}
}

// TestPredictionMatchesSimulatedCluster replays a spread of layouts — all
// three families, shallow and deep meshes — and holds the analytic model
// to the acceptance bound: ≤ 25% step-time error against the simulated
// cluster.
func TestPredictionMatchesSimulatedCluster(t *testing.T) {
	plans, err := plan.Search(table1, plan.Topology{RankBudget: 64}, algos())
	if err != nil {
		t.Fatal(err)
	}
	measure := tables.MeasurePlan(table1, tables.Options{})
	want := map[string]bool{
		"megatron [64]":     true,
		"megatron [4]":      true,
		"tesseract [2,2]":   true,
		"tesseract [2,2,2]": true,
		"tesseract [4,4,4]": true,
		"tesseract [8,8]":   true,
		"optimus [8,8]":     true,
	}
	checked := 0
	for _, p := range plans {
		if !want[p.String()] {
			continue
		}
		v, err := p.Validate(measure)
		if err != nil {
			t.Fatal(err)
		}
		if v.StepErr > 0.25 {
			t.Errorf("%s: step error %.1f%% exceeds 25%% (pred %g, meas %g)",
				p, 100*v.StepErr, p.Predicted.Step(), v.Measured.Step())
		}
		checked++
	}
	if checked != len(want) {
		t.Fatalf("checked %d of %d layouts — enumeration lost some", checked, len(want))
	}
}

func TestValidateTopAndMaxStepErr(t *testing.T) {
	plans := []plan.Plan{
		{Family: "a", Predicted: plan.Breakdown{Forward: 1, Backward: 1}},
		{Family: "b", Predicted: plan.Breakdown{Forward: 2, Backward: 2}},
	}
	measure := func(p plan.Plan) (plan.Measurement, error) {
		return plan.Measurement{Forward: p.Predicted.Forward, Backward: p.Predicted.Backward * 2}, nil
	}
	vs, err := plan.ValidateTop(plans, 5, measure)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("ValidateTop returned %d validations, want 2 (clamped)", len(vs))
	}
	// pred step 2 vs measured 3 → 1/3 error.
	if got := vs[0].StepErr; math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("StepErr = %g, want 1/3", got)
	}
	if got := plan.MaxStepErr(vs); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("MaxStepErr = %g, want 1/3", got)
	}
}

func TestParseAndFormatBytes(t *testing.T) {
	cases := map[string]int64{
		"4GiB":       4 << 30,
		"4gb":        4 << 30,
		"2g":         2 << 30,
		"512MiB":     512 << 20,
		"1.5MiB":     3 << 19,
		"64k":        64 << 10,
		"123":        123,
		"123B":       123,
		" 8 GiB ":    8 << 30,
		"1073741824": 1 << 30,
	}
	for s, want := range cases {
		got, err := plan.ParseBytes(s)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("ParseBytes(%q) = %d, want %d", s, got, want)
		}
	}
	for _, bad := range []string{"", "GiB", "-1MiB", "1.2.3k", "much"} {
		if _, err := plan.ParseBytes(bad); err == nil {
			t.Fatalf("ParseBytes(%q) must fail", bad)
		}
	}
	for b, want := range map[int64]string{
		4 << 30:   "4GiB",
		512 << 20: "512MiB",
		100:       "100B",
		1536:      "1.5KiB",
	} {
		if got := plan.FormatBytes(b); got != want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", b, got, want)
		}
	}
}

func TestWorkloadAndTopologyValidation(t *testing.T) {
	if _, err := (plan.Workload{Batch: 1, Hidden: 100, Heads: 3}).WithDefaults(); err == nil {
		t.Fatal("hidden not divisible by heads must fail")
	}
	if _, err := (plan.Workload{Hidden: 64, Heads: 4}).WithDefaults(); err == nil {
		t.Fatal("zero batch must fail")
	}
	if _, err := (plan.Topology{}).WithDefaults(); err == nil {
		t.Fatal("zero rank budget must fail")
	}
	topo, err := (plan.Topology{RankBudget: 8}).WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if topo.GPUsPerNode != 4 || topo.Cost.FLOPS == 0 {
		t.Fatalf("defaults not applied: %+v", topo)
	}
	if topo.SpansNodes(0, 3) || !topo.SpansNodes(0, 4) {
		t.Fatal("SpansNodes must split at the node size")
	}
}
