package plan_test

import (
	"errors"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/megatron"
	"repro/internal/optimus"
	"repro/internal/plan"
	"repro/internal/tesseract"
)

func servingAlgos() []plan.Algo {
	return []plan.Algo{tesseract.PlanAlgo(), optimus.PlanAlgo(), megatron.PlanAlgo()}
}

var servingW = plan.Workload{Batch: 16, Hidden: 3072, Heads: 64}

func TestSearchServingRanksSorted(t *testing.T) {
	plans, err := plan.SearchServing(servingW, plan.Topology{RankBudget: 64}, servingAlgos(), plan.ServingObjective{})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(plans, func(i, j int) bool { return plans[i].Score < plans[j].Score }) {
		t.Fatal("serving plans not sorted by score")
	}
	fams := map[string]bool{}
	for _, p := range plans {
		fams[p.Family] = true
		pr := p.Predicted
		if pr.MinBatch < 1 || pr.MinBatch > servingW.Batch {
			t.Fatalf("%s: MinBatch %d outside [1, %d]", p, pr.MinBatch, servingW.Batch)
		}
		if pr.MinLatency <= 0 || pr.FullLatency <= 0 || pr.Throughput <= 0 {
			t.Fatalf("%s: non-positive prediction %+v", p, pr)
		}
		if pr.MinLatency > pr.FullLatency+1e-12 {
			t.Fatalf("%s: min-batch forward %.6g slower than full-batch %.6g", p, pr.MinLatency, pr.FullLatency)
		}
		want := plan.ServingObjective{LatencyWeight: 1, ThroughputWeight: 1}
		if got := want.LatencyWeight*pr.MinLatency + want.ThroughputWeight*pr.FullLatency/float64(servingW.Batch); math.Abs(got-p.Score) > 1e-12 {
			t.Fatalf("%s: score %.9g does not match its definition %.9g", p, p.Score, got)
		}
	}
	for _, f := range []string{"tesseract", "optimus", "megatron"} {
		if !fams[f] {
			t.Fatalf("family %s missing from the serving ranking", f)
		}
	}
}

func TestSearchServingExactRanks(t *testing.T) {
	plans, err := plan.SearchServing(servingW, plan.Topology{RankBudget: 64, ExactRanks: true}, servingAlgos(), plan.ServingObjective{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Grid.Ranks != 64 {
			t.Fatalf("%s uses %d ranks under ExactRanks 64", p, p.Grid.Ranks)
		}
	}
}

// TestSearchServingSkipsOversizedGrids: a grid whose row-shard unit exceeds
// the workload batch cannot run even one padded request per forward and must
// be filtered, not priced.
func TestSearchServingSkipsOversizedGrids(t *testing.T) {
	small := servingW
	small.Batch = 4
	plans, err := plan.SearchServing(small, plan.Topology{RankBudget: 64}, servingAlgos(), plan.ServingObjective{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Predicted.MinBatch > small.Batch {
			t.Fatalf("%s: min batch %d exceeds workload batch %d", p, p.Predicted.MinBatch, small.Batch)
		}
	}
}

// TestSearchServingObjectiveWeightsChangeRanking: an all-latency objective
// must put the lowest-min-latency candidate first; an all-throughput
// objective the lowest per-request full-batch cost.
func TestSearchServingObjectiveWeights(t *testing.T) {
	topo := plan.Topology{RankBudget: 64}
	lat, err := plan.SearchServing(servingW, topo, servingAlgos(), plan.ServingObjective{LatencyWeight: 1, ThroughputWeight: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	thr, err := plan.SearchServing(servingW, topo, servingAlgos(), plan.ServingObjective{LatencyWeight: 1e-12, ThroughputWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lat {
		if p.Predicted.MinLatency < lat[0].Predicted.MinLatency {
			t.Fatalf("latency objective: %s beats winner %s on min latency", p, lat[0])
		}
	}
	for _, p := range thr {
		if p.Predicted.FullLatency < thr[0].Predicted.FullLatency {
			t.Fatalf("throughput objective: %s beats winner %s on full-batch latency", p, thr[0])
		}
	}
}

func TestSearchServingErrors(t *testing.T) {
	if _, err := plan.SearchServing(servingW, plan.Topology{RankBudget: 64}, nil, plan.ServingObjective{}); err == nil {
		t.Fatal("no algos must error")
	}
	if _, err := plan.SearchServing(servingW, plan.Topology{RankBudget: 64}, servingAlgos(), plan.ServingObjective{LatencyWeight: -1}); err == nil {
		t.Fatal("negative weight must error")
	}
	// A rank budget no grid hits exactly: ErrNoFeasible.
	_, err := plan.SearchServing(servingW, plan.Topology{RankBudget: 7, ExactRanks: true}, servingAlgos(), plan.ServingObjective{})
	if !errors.Is(err, plan.ErrNoFeasible) {
		t.Fatalf("want ErrNoFeasible, got %v", err)
	}
	// A batch of 1 excludes every grid that needs more than one sequence
	// per forward (meshes with q·d > 1).
	one := servingW
	one.Batch = 1
	plans, err := plan.SearchServing(one, plan.Topology{RankBudget: 64}, servingAlgos(), plan.ServingObjective{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Predicted.MinBatch != 1 {
			t.Fatalf("batch 1 must exclude multi-shard grids, found %s (unit %d)", p, p.Predicted.MinBatch)
		}
	}
}

func TestServingPlanLayoutRoundTrip(t *testing.T) {
	plans, err := plan.SearchServing(servingW, plan.Topology{RankBudget: 64}, servingAlgos(), plan.ServingObjective{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans[:3] {
		l, err := p.Layout().Normalize()
		if err != nil {
			t.Fatalf("%s: layout does not normalize: %v", p, err)
		}
		if l.Ranks != p.Grid.Ranks {
			t.Fatalf("%s: layout ranks %d != grid ranks %d", p, l.Ranks, p.Grid.Ranks)
		}
		if l.RowShards() != p.Predicted.MinBatch {
			t.Fatalf("%s: layout row shards %d != predicted min batch %d", p, l.RowShards(), p.Predicted.MinBatch)
		}
	}
}

// TestValidateServingTop: the validation plumbing computes relative errors
// against whatever the measurer returns, and MaxServingErr tracks the worst
// latency error.
func TestValidateServingTop(t *testing.T) {
	plans, err := plan.SearchServing(servingW, plan.Topology{RankBudget: 64}, servingAlgos(), plan.ServingObjective{})
	if err != nil {
		t.Fatal(err)
	}
	fake := func(p plan.ServingPlan) (plan.ServingMeasurement, error) {
		return plan.ServingMeasurement{
			MinLatency:  p.Predicted.MinLatency * 1.25,
			FullLatency: p.Predicted.FullLatency,
			Throughput:  p.Predicted.Throughput,
		}, nil
	}
	vs, err := plan.ValidateServingTop(plans, 2, fake)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("want 2 validations, got %d", len(vs))
	}
	for _, v := range vs {
		if math.Abs(v.MinErr-0.2) > 1e-9 { // |pred − 1.25·pred| / (1.25·pred) = 0.2
			t.Fatalf("MinErr %.6g, want 0.2", v.MinErr)
		}
		if v.FullErr != 0 || v.ThrErr != 0 {
			t.Fatalf("exact dimensions must have zero error, got %+v", v)
		}
	}
	if got := plan.MaxServingErr(vs); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("MaxServingErr %.6g, want 0.2", got)
	}
	bad := func(plan.ServingPlan) (plan.ServingMeasurement, error) {
		return plan.ServingMeasurement{}, errors.New("boom")
	}
	if _, err := plan.ValidateServingTop(plans, 1, bad); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("measurer error must propagate, got %v", err)
	}
}

func TestFormatServing(t *testing.T) {
	plans, err := plan.SearchServing(servingW, plan.Topology{RankBudget: 64}, servingAlgos(), plan.ServingObjective{})
	if err != nil {
		t.Fatal(err)
	}
	out := plan.FormatServingPlans("serving", plans, 5)
	for _, want := range []string{"serving", "min-lat(s)", "thru(r/s)", "megatron"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatServingPlans output missing %q:\n%s", want, out)
		}
	}
}
