package plan

import "fmt"

// Replan re-runs the layout search after a rank loss: the same workload and
// machine, but at most surviving ranks. It is the planner half of the
// elastic loop — dist reports which ranks died, Replan picks the best
// layout the survivors can still run, and parallel.Reshard moves the
// checkpoint onto it.
//
// ExactRanks is always relaxed (a shrunk fleet rarely matches a paper-exact
// processor count), and the optional ok filter lets the caller reject
// layouts it cannot instantiate — divisibility of the batch or model widths,
// a family it cannot build — in which case the next-best plan is tried. The
// returned plan is the best surviving candidate by predicted step time.
func Replan(w Workload, t Topology, algos []Algo, surviving int, ok func(Plan) bool) (Plan, error) {
	if surviving < 1 {
		return Plan{}, fmt.Errorf("plan: cannot replan onto %d surviving ranks", surviving)
	}
	t.RankBudget = surviving
	t.ExactRanks = false
	plans, err := Search(w, t, algos)
	if err != nil {
		return Plan{}, fmt.Errorf("plan: replan onto %d ranks: %w", surviving, err)
	}
	for _, p := range plans {
		if ok == nil || ok(p) {
			return p, nil
		}
	}
	return Plan{}, fmt.Errorf("plan: replan onto %d ranks: no candidate passed the instantiation filter", surviving)
}
