package plan

import (
	"errors"
	"fmt"
)

// NoFeasibleError is the structured outcome of a Replan that found nothing
// to run: the surviving budget cannot satisfy the memory/divisibility
// constraints, or every candidate was rejected by the caller's
// instantiation filter. It wraps ErrNoFeasible (so errors.Is works) and
// records the budget it failed under, so elastic drivers can decide to
// ride out the degradation instead of treating the miss as a crash.
type NoFeasibleError struct {
	// Surviving is the rank budget the replan searched under.
	Surviving int
	// Filtered reports whether candidates existed but the instantiation
	// filter rejected them all, as opposed to the search itself coming up
	// empty.
	Filtered bool
	// Err is the underlying cause; it wraps ErrNoFeasible.
	Err error
}

func (e *NoFeasibleError) Error() string {
	return fmt.Sprintf("plan: replan onto %d ranks: %v", e.Surviving, e.Err)
}

// Unwrap exposes the cause — and through it ErrNoFeasible — to errors.Is.
func (e *NoFeasibleError) Unwrap() error { return e.Err }

// Replan re-runs the layout search after a rank loss or demotion: the same
// workload and machine, but at most surviving ranks. It is the planner half
// of the elastic loop — dist reports which ranks died (or the monitor which
// are sick), Replan picks the best layout the survivors can still run, and
// parallel.Reshard moves the checkpoint onto it.
//
// ExactRanks is always relaxed (a shrunk fleet rarely matches a paper-exact
// processor count), and the optional ok filter lets the caller reject
// layouts it cannot instantiate — divisibility of the batch or model widths,
// a family it cannot build — in which case the next-best plan is tried. The
// returned plan is the best surviving candidate by predicted step time.
//
// When no candidate survives, the error is a *NoFeasibleError wrapping
// ErrNoFeasible; any other error (malformed workload, bad topology) is
// returned as-is, so callers can tell "nothing fits" from "you asked
// wrong".
func Replan(w Workload, t Topology, algos []Algo, surviving int, ok func(Plan) bool) (Plan, error) {
	if surviving < 1 {
		return Plan{}, fmt.Errorf("plan: cannot replan onto %d surviving ranks", surviving)
	}
	t.RankBudget = surviving
	t.ExactRanks = false
	plans, err := Search(w, t, algos)
	if err != nil {
		if errors.Is(err, ErrNoFeasible) {
			return Plan{}, &NoFeasibleError{Surviving: surviving, Err: err}
		}
		return Plan{}, fmt.Errorf("plan: replan onto %d ranks: %w", surviving, err)
	}
	for _, p := range plans {
		if ok == nil || ok(p) {
			return p, nil
		}
	}
	return Plan{}, &NoFeasibleError{
		Surviving: surviving,
		Filtered:  true,
		Err:       fmt.Errorf("%w: all %d candidates rejected by the instantiation filter", ErrNoFeasible, len(plans)),
	}
}
