package plan

import (
	"testing"
)

// FuzzParseBytes: never panic; on success the byte count is non-negative
// (an out-of-range float→int64 conversion is undefined behaviour, so the
// overflow guard must hold) and formatting it parses back.
func FuzzParseBytes(f *testing.F) {
	for _, s := range []string{
		"4GiB", "512MiB", "2g", "1073741824", "1.5k", "0", "64kb", "10B",
		"", "g", "-1g", "nan", "inf", "1e30GiB", "1e400", " 2 GiB ", "2gg",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseBytes(s)
		if err != nil {
			return
		}
		if v < 0 {
			t.Fatalf("ParseBytes(%q) accepted negative %d — overflow or sign slipped through", s, v)
		}
		round, err := ParseBytes(FormatBytes(v))
		if err != nil {
			t.Fatalf("ParseBytes(FormatBytes(%d) = %q) failed: %v", v, FormatBytes(v), err)
		}
		// Formatting rounds to one decimal, so only require the round trip
		// to stay in the same ballpark, never to go negative or error.
		if round < 0 {
			t.Fatalf("round trip of %d through %q went negative: %d", v, FormatBytes(v), round)
		}
	})
}
