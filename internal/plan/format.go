package plan

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// FormatPlans renders a ranked plan list as the table cmd/tesseract-plan
// prints: rank, family, shape, predicted forward/backward/step seconds,
// the comm share of the step, and the per-rank memory estimate. n limits
// the rows (0 = all).
func FormatPlans(title string, plans []Plan, n int) string {
	if n <= 0 || n > len(plans) {
		n = len(plans)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%4s %-12s %-9s %5s | %9s %9s %9s | %6s %10s\n",
		"#", "family", "shape", "ranks", "fwd(s)", "bwd(s)", "step(s)", "comm%", "mem/rank")
	b.WriteString(strings.Repeat("-", 96) + "\n")
	for i, p := range plans[:n] {
		pr := p.Predicted
		commPct := 0.0
		if s := pr.Step(); s > 0 {
			commPct = 100 * pr.CommSeconds / s
		}
		fmt.Fprintf(&b, "%4d %-12s %-9s %5d | %9.4f %9.4f %9.4f | %5.1f%% %10s\n",
			i+1, p.Family, p.Grid.Shape(), p.Grid.Ranks,
			pr.Forward, pr.Backward, pr.Step(), commPct, FormatBytes(pr.MemoryBytes))
	}
	return b.String()
}

// FormatValidations renders a validation list: predicted vs measured step
// time and the relative errors.
func FormatValidations(title string, vs []Validation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%4s %-12s %-9s | %9s %9s %7s | %7s %7s\n",
		"#", "family", "shape", "pred(s)", "meas(s)", "err", "fwd-err", "bwd-err")
	b.WriteString(strings.Repeat("-", 84) + "\n")
	for i, v := range vs {
		fmt.Fprintf(&b, "%4d %-12s %-9s | %9.4f %9.4f %6.1f%% | %6.1f%% %6.1f%%\n",
			i+1, v.Plan.Family, v.Plan.Grid.Shape(),
			v.Plan.Predicted.Step(), v.Measured.Step(),
			100*v.StepErr, 100*v.FwdErr, 100*v.BwdErr)
	}
	return b.String()
}

// FormatBytes renders a byte count with a binary unit (KiB/MiB/GiB),
// the inverse of ParseBytes.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return trimZero(float64(b)/(1<<30)) + "GiB"
	case b >= 1<<20:
		return trimZero(float64(b)/(1<<20)) + "MiB"
	case b >= 1<<10:
		return trimZero(float64(b)/(1<<10)) + "KiB"
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func trimZero(v float64) string {
	s := strconv.FormatFloat(v, 'f', 1, 64)
	return strings.TrimSuffix(s, ".0")
}

// ParseBytes reads a human memory size ("4GiB", "512MiB", "2g", "1073741824")
// into bytes. Units are binary; the bare suffixes k/m/g and KB/MB/GB are
// accepted as aliases for their binary forms.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"b", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSuffix(t, u.suffix)
			mult = u.mult
			break
		}
	}
	t = strings.TrimSpace(t)
	if t == "" {
		return 0, fmt.Errorf("plan: cannot parse memory size %q", s)
	}
	v, err := strconv.ParseFloat(t, 64)
	// Sizes past int64 (e.g. "1e30GiB") must error: converting an
	// out-of-range float64 to int64 is not a value, it's undefined.
	if err != nil || v < 0 || math.IsNaN(v) || v*float64(mult) >= math.MaxInt64 {
		return 0, fmt.Errorf("plan: cannot parse memory size %q", s)
	}
	return int64(v * float64(mult)), nil
}
