package plan

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dist"
)

// ErrNoFeasible is the sentinel wrapped by every "no feasible layout"
// failure: Search found no candidate inside the budgets, or Replan ran out
// of candidates its caller could instantiate. Callers branch on it with
// errors.Is (or errors.As on *NoFeasibleError for the replan details) to
// distinguish "there is nothing to run" — ride out, degrade, alert — from a
// malformed workload or topology.
var ErrNoFeasible = errors.New("no feasible layout")

// Workload describes the model a layout is being planned for: one stack of
// Transformer blocks of the kind every scheme in this repository implements
// (fused-QKV attention plus a 4h MLP, layer norms and residuals).
type Workload struct {
	// Batch is the global batch size (sequences per step).
	Batch int
	// SeqLen is the sequence length (default 512, as in internal/tables).
	SeqLen int
	// Hidden is the model width h; the MLP expands to 4h.
	Hidden int
	// Heads is the attention head count.
	Heads int
	// Layers is the number of Transformer blocks timed (default 1).
	Layers int
	// NoRecompute disables activation checkpointing. By default the
	// backward pass re-runs the forward first, matching the
	// memory-constrained execution internal/tables times.
	NoRecompute bool
}

// WithDefaults fills the zero fields with the harness defaults (SeqLen 512,
// Layers 1) and validates the rest.
func (w Workload) WithDefaults() (Workload, error) {
	if w.SeqLen == 0 {
		w.SeqLen = 512
	}
	if w.Layers == 0 {
		w.Layers = 1
	}
	if w.Batch <= 0 || w.Hidden <= 0 || w.Heads <= 0 || w.SeqLen <= 0 || w.Layers <= 0 {
		return w, fmt.Errorf("plan: workload needs positive batch/hidden/heads/seqlen/layers, got %+v", w)
	}
	if w.Hidden%w.Heads != 0 {
		return w, fmt.Errorf("plan: hidden %d not divisible by heads %d", w.Hidden, w.Heads)
	}
	return w, nil
}

// Tokens returns batch·seqLen, the global activation row count.
func (w Workload) Tokens() int { return w.Batch * w.SeqLen }

// BytesPerElem is the element size every estimate uses. The simulated
// cluster moves float64 matrices, so both sides of the
// predicted-vs-measured comparison price 8-byte elements.
const BytesPerElem = 8

// Grid is one processor layout. Ranks is the total processor count; Q and D
// describe the mesh for the 2-D/2.5-D families ([q, q] when D == 1 from an
// Optimus descriptor, [q, q, d] for Tesseract) and are zero for the 1-D
// Megatron family, whose layout is just [Ranks].
type Grid struct {
	Ranks, Q, D int
}

// Shape renders the layout the way the paper prints it: [p], [q,q] or
// [q,q,d].
func (g Grid) Shape() string {
	switch {
	case g.Q == 0:
		return fmt.Sprintf("[%d]", g.Ranks)
	case g.D <= 1:
		return fmt.Sprintf("[%d,%d]", g.Q, g.Q)
	default:
		return fmt.Sprintf("[%d,%d,%d]", g.Q, g.Q, g.D)
	}
}

// Topology is the machine the plans are priced against: the α–β cost model,
// the node size that decides which communicator groups pay inter-node
// rates, and the search budgets.
type Topology struct {
	// Cost is the α–β machine model (zero fields take the Meluxina preset,
	// exactly as in dist.Config).
	Cost dist.CostModel
	// GPUsPerNode maps ranks to nodes (default 4, as on Meluxina).
	GPUsPerNode int
	// RankBudget is the maximum processor count a grid may use.
	RankBudget int
	// ExactRanks restricts the search to grids that use exactly
	// RankBudget processors — the paper's fixed-p comparisons — instead
	// of letting a smaller layout win the ranking.
	ExactRanks bool
	// MemoryBudget is the per-rank memory limit in bytes; zero disables
	// the memory filter.
	MemoryBudget int64
}

// WithDefaults fills the zero fields (Meluxina cost model, 4 GPUs per node)
// and validates the rank budget.
func (t Topology) WithDefaults() (Topology, error) {
	t.Cost = t.Cost.WithDefaults()
	if t.GPUsPerNode == 0 {
		t.GPUsPerNode = 4
	}
	if t.GPUsPerNode < 1 {
		return t, fmt.Errorf("plan: GPUsPerNode %d must be positive", t.GPUsPerNode)
	}
	if t.RankBudget < 1 {
		return t, fmt.Errorf("plan: rank budget %d must be positive", t.RankBudget)
	}
	if t.MemoryBudget < 0 {
		return t, fmt.Errorf("plan: memory budget %d must be non-negative", t.MemoryBudget)
	}
	return t, nil
}

// SpansNodes reports whether the rank interval [lo, hi] crosses a node
// boundary — the test that decides whether a communicator group over ranks
// with ascending ids pays the inter-node β (node ids are monotone in rank,
// so only the endpoints matter).
func (t Topology) SpansNodes(lo, hi int) bool {
	return lo/t.GPUsPerNode != hi/t.GPUsPerNode
}

// Breakdown is the analytic score of one candidate: simulated seconds for
// the forward and backward phases (the backward includes the recompute
// forward unless the workload disables it), with the comm/compute split
// kept for diagnostics, plus the per-rank memory estimate.
type Breakdown struct {
	// Forward and Backward are predicted seconds per phase for the whole
	// layer stack, comparable to tables.Result.
	Forward, Backward float64
	// ComputeSeconds is the arithmetic-only part of Forward+Backward.
	ComputeSeconds float64
	// CommSeconds is the non-hidden communication part of
	// Forward+Backward — what the double-buffered schedules could not
	// overlap with compute.
	CommSeconds float64
	// MemoryBytes is the per-rank memory estimate from the family's
	// Memory closure.
	MemoryBytes int64
}

// Step returns the predicted seconds per training step (forward plus
// backward).
func (b Breakdown) Step() float64 { return b.Forward + b.Backward }

// Algo describes one algorithm family to the planner: a name plus the three
// closures the search needs. The closures must be pure — the planner calls
// them for every candidate grid.
type Algo struct {
	// Family names the scheme ("tesseract", "megatron", "optimus").
	Family string
	// Grids enumerates the family's feasible layouts for a workload
	// within a rank budget (divisibility constraints included).
	Grids func(w Workload, rankBudget int) []Grid
	// Cost prices a workload on one grid against the topology's cost
	// model, mirroring the communication schedule the implementation
	// actually executes. Cost must not fill Breakdown.MemoryBytes; the
	// search does, from Memory.
	Cost func(w Workload, g Grid, t Topology) Breakdown
	// Memory estimates the bytes one rank must hold: parameter shards
	// with gradients, retained activations, and the pipeline's working
	// buffers.
	Memory func(w Workload, g Grid) int64
}

// Plan is one ranked candidate: a family, a grid, and its analytic score.
type Plan struct {
	// Family is the Algo.Family that produced the candidate.
	Family string
	// Grid is the processor layout.
	Grid Grid
	// Predicted is the analytic score the ranking sorted by.
	Predicted Breakdown
}

// String renders "family [shape]".
func (p Plan) String() string { return fmt.Sprintf("%s %s", p.Family, p.Grid.Shape()) }

// Search enumerates every feasible (family, grid) candidate within the
// topology's budgets, scores each analytically, and returns the full list
// ranked by predicted step time (ties: fewer ranks first, then less
// memory). Candidates over the memory budget are dropped; if every
// candidate is dropped, Search returns an error naming the tightest one so
// the caller can see how far the budget misses.
func Search(w Workload, t Topology, algos []Algo) ([]Plan, error) {
	w, err := w.WithDefaults()
	if err != nil {
		return nil, err
	}
	t, err = t.WithDefaults()
	if err != nil {
		return nil, err
	}
	if len(algos) == 0 {
		return nil, fmt.Errorf("plan: no algorithm families to search")
	}
	var out []Plan
	var tightest int64 = -1
	for _, a := range algos {
		for _, g := range a.Grids(w, t.RankBudget) {
			if t.ExactRanks && g.Ranks != t.RankBudget {
				continue
			}
			mem := a.Memory(w, g)
			if t.MemoryBudget > 0 && mem > t.MemoryBudget {
				if tightest < 0 || mem < tightest {
					tightest = mem
				}
				continue
			}
			b := a.Cost(w, g, t)
			b.MemoryBytes = mem
			out = append(out, Plan{Family: a.Family, Grid: g, Predicted: b})
		}
	}
	if len(out) == 0 {
		if tightest >= 0 {
			return nil, fmt.Errorf("plan: %w within %s per rank (smallest candidate needs %s)",
				ErrNoFeasible, FormatBytes(t.MemoryBudget), FormatBytes(tightest))
		}
		constraint := "within"
		if t.ExactRanks {
			constraint = "using exactly"
		}
		return nil, fmt.Errorf("plan: %w %s %d ranks (check divisibility of batch/hidden/heads)", ErrNoFeasible, constraint, t.RankBudget)
	}
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].Predicted.Step(), out[j].Predicted.Step()
		if si != sj {
			return si < sj
		}
		if out[i].Grid.Ranks != out[j].Grid.Ranks {
			return out[i].Grid.Ranks < out[j].Grid.Ranks
		}
		return out[i].Predicted.MemoryBytes < out[j].Predicted.MemoryBytes
	})
	return out, nil
}
