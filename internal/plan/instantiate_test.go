package plan_test

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/parallel"
	"repro/internal/plan"
)

func TestPlanLayout(t *testing.T) {
	for _, tc := range []struct {
		p    plan.Plan
		want parallel.Layout
	}{
		{plan.Plan{Family: "megatron", Grid: plan.Grid{Ranks: 16}},
			parallel.Layout{Family: "megatron", Ranks: 16}},
		{plan.Plan{Family: "optimus", Grid: plan.Grid{Ranks: 16, Q: 4, D: 1}},
			parallel.Layout{Family: "optimus", Q: 4, D: 1, Ranks: 16}},
		{plan.Plan{Family: "tesseract", Grid: plan.Grid{Ranks: 32, Q: 4, D: 2}},
			parallel.Layout{Family: "tesseract", Q: 4, D: 2, Ranks: 32}},
	} {
		if got := tc.p.Layout(); got != tc.want {
			t.Errorf("%s Layout = %+v, want %+v", tc.p, got, tc.want)
		}
		if _, err := tc.p.Layout().Normalize(); err != nil {
			t.Errorf("%s layout does not normalize: %v", tc.p, err)
		}
	}
}

// TestInstantiateEveryRankedFamily searches a small workload and
// instantiates the best candidate of each family on a matching simulated
// cluster: the family must come up with the plan's name, layout, and rank
// count, on every rank.
func TestInstantiateEveryRankedFamily(t *testing.T) {
	w := plan.Workload{Batch: 8, SeqLen: 4, Hidden: 16, Heads: 4}
	plans, err := plan.Search(w, plan.Topology{RankBudget: 8}, algos())
	if err != nil {
		t.Fatal(err)
	}
	best := map[string]plan.Plan{}
	for _, p := range plans {
		if _, seen := best[p.Family]; !seen {
			best[p.Family] = p
		}
	}
	if len(best) != 3 {
		t.Fatalf("expected all three families ranked, got %v", best)
	}
	for fam, p := range best {
		c := dist.New(dist.Config{WorldSize: p.Grid.Ranks})
		if err := c.Run(func(wk *dist.Worker) error {
			f, err := p.Instantiate(wk)
			if err != nil {
				return err
			}
			if f.Name() != fam {
				t.Errorf("plan %s instantiated %q", p, f.Name())
			}
			if f.Layout().Ranks != p.Grid.Ranks {
				t.Errorf("plan %s: family spans %d ranks, plan says %d", p, f.Layout().Ranks, p.Grid.Ranks)
			}
			if f.Worker() != wk {
				t.Errorf("plan %s: family bound to the wrong worker", p)
			}
			return nil
		}); err != nil {
			t.Fatalf("plan %s: %v", p, err)
		}
	}
}

func TestInstantiateUnknownFamily(t *testing.T) {
	c := dist.New(dist.Config{WorldSize: 1})
	if err := c.Run(func(w *dist.Worker) error {
		_, err := (plan.Plan{Family: "cannon", Grid: plan.Grid{Ranks: 1}}).Instantiate(w)
		if err == nil || !strings.Contains(err.Error(), "cannon") {
			t.Errorf("unknown family error = %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
