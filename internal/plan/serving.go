package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/parallel"
)

// ServingObjective weights the two things a serving layout trades off:
// interactive latency — the forward time of the smallest batch the layout
// can run, one request padded up to its row-shard unit — against
// steady-state cost per request — the forward time of a full batch divided
// by its size. Training's step-time ranking disappears entirely: no
// backward, no recompute, no gradient traffic.
type ServingObjective struct {
	// LatencyWeight multiplies the min-batch forward seconds (default 1).
	LatencyWeight float64
	// ThroughputWeight multiplies the full-batch per-request service
	// seconds (default 1).
	ThroughputWeight float64
}

// WithDefaults fills a fully zero objective with equal weights and rejects
// negative ones.
func (o ServingObjective) WithDefaults() (ServingObjective, error) {
	if o.LatencyWeight == 0 && o.ThroughputWeight == 0 {
		o.LatencyWeight, o.ThroughputWeight = 1, 1
	}
	if o.LatencyWeight < 0 || o.ThroughputWeight < 0 {
		return o, fmt.Errorf("plan: serving objective weights must be non-negative, got %+v", o)
	}
	return o, nil
}

// ServingPredicted is the analytic serving score of one candidate. The
// workload's Batch is the batcher's full batch; MinBatch is the smallest
// batch the grid can run (its row-shard count — one request padded up).
type ServingPredicted struct {
	// MinBatch is the padded interactive batch size in sequences.
	MinBatch int
	// MinLatency is the predicted forward seconds at MinBatch — what a
	// lone request pays.
	MinLatency float64
	// FullLatency is the predicted forward seconds at the full batch.
	FullLatency float64
	// Throughput is the predicted saturated service rate, Batch /
	// FullLatency, in requests per second.
	Throughput float64
	// MemoryBytes is the family's (training-shaped, hence conservative)
	// per-rank memory estimate.
	MemoryBytes int64
}

// ServingPlan is one ranked serving candidate.
type ServingPlan struct {
	// Family is the Algo.Family that produced the candidate.
	Family string
	// Grid is the processor layout.
	Grid Grid
	// Predicted is the analytic serving score.
	Predicted ServingPredicted
	// Score is the weighted objective the ranking sorted by (lower is
	// better).
	Score float64
}

// String renders "family [shape]".
func (p ServingPlan) String() string { return fmt.Sprintf("%s %s", p.Family, p.Grid.Shape()) }

// Layout converts the candidate into the runtime layout, exactly like
// Plan.Layout.
func (p ServingPlan) Layout() parallel.Layout {
	return parallel.Layout{Family: p.Family, Q: p.Grid.Q, D: p.Grid.D, Ranks: p.Grid.Ranks}
}

// gridRowShards is the batch divisibility unit of a grid: q·d sequences for
// the meshes, 1 for the replicated-activation 1-D family — the same rule as
// parallel.Layout.RowShards, derivable here without instantiating anything.
func gridRowShards(g Grid) int {
	if g.Q == 0 {
		return 1
	}
	d := g.D
	if d < 1 {
		d = 1
	}
	return g.Q * d
}

// SearchServing enumerates every feasible (family, grid) candidate exactly
// like Search, but scores each for serving: the family's Cost closure is
// evaluated forward-only at two batch sizes — the grid's minimum and the
// workload's full batch — and the weighted objective ranks the list
// (ascending; ties prefer fewer ranks, then less memory). The workload's
// Batch is the serving batcher's MaxBatch. The memory filter reuses the
// training-shaped Memory closure, a conservative bound for an inference
// process that holds no gradients or optimiser state.
func SearchServing(w Workload, t Topology, algos []Algo, o ServingObjective) ([]ServingPlan, error) {
	w, err := w.WithDefaults()
	if err != nil {
		return nil, err
	}
	t, err = t.WithDefaults()
	if err != nil {
		return nil, err
	}
	o, err = o.WithDefaults()
	if err != nil {
		return nil, err
	}
	if len(algos) == 0 {
		return nil, fmt.Errorf("plan: no algorithm families to search")
	}
	var out []ServingPlan
	var tightest int64 = -1
	for _, a := range algos {
		for _, g := range a.Grids(w, t.RankBudget) {
			unit := gridRowShards(g)
			if unit > w.Batch {
				continue // the grid cannot even fit one padded request per forward
			}
			if t.ExactRanks && g.Ranks != t.RankBudget {
				continue
			}
			mem := a.Memory(w, g)
			if t.MemoryBudget > 0 && mem > t.MemoryBudget {
				if tightest < 0 || mem < tightest {
					tightest = mem
				}
				continue
			}
			wmin := w
			wmin.Batch = unit
			pred := ServingPredicted{
				MinBatch:    unit,
				MinLatency:  a.Cost(wmin, g, t).Forward,
				FullLatency: a.Cost(w, g, t).Forward,
				MemoryBytes: mem,
			}
			if pred.FullLatency > 0 {
				pred.Throughput = float64(w.Batch) / pred.FullLatency
			}
			out = append(out, ServingPlan{
				Family:    a.Family,
				Grid:      g,
				Predicted: pred,
				Score:     o.LatencyWeight*pred.MinLatency + o.ThroughputWeight*pred.FullLatency/float64(w.Batch),
			})
		}
	}
	if len(out) == 0 {
		if tightest >= 0 {
			return nil, fmt.Errorf("plan: %w within %s per rank (smallest candidate needs %s)",
				ErrNoFeasible, FormatBytes(t.MemoryBudget), FormatBytes(tightest))
		}
		constraint := "within"
		if t.ExactRanks {
			constraint = "using exactly"
		}
		return nil, fmt.Errorf("plan: %w %s %d ranks for serving (check divisibility of batch/hidden/heads)", ErrNoFeasible, constraint, t.RankBudget)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		if out[i].Grid.Ranks != out[j].Grid.Ranks {
			return out[i].Grid.Ranks < out[j].Grid.Ranks
		}
		return out[i].Predicted.MemoryBytes < out[j].Predicted.MemoryBytes
	})
	return out, nil
}

// ServingMeasurement is what a serving replay of one candidate observed —
// typically serve.MeasureLayout driving the real batcher over a phantom
// layer stack on the simulated cluster.
type ServingMeasurement struct {
	// MinLatency and FullLatency are measured mean service seconds of
	// min-batch and full-batch forwards.
	MinLatency, FullLatency float64
	// Throughput is the measured saturated rate in requests per second.
	Throughput float64
}

// ServingMeasurer replays one serving candidate for real.
type ServingMeasurer func(ServingPlan) (ServingMeasurement, error)

// ServingValidation pairs a candidate with its replay and the relative
// prediction errors.
type ServingValidation struct {
	// Plan is the candidate that was replayed.
	Plan ServingPlan
	// Measured is the replay's observation.
	Measured ServingMeasurement
	// MinErr, FullErr and ThrErr are |predicted − measured| / measured for
	// the min-batch latency, full-batch latency and throughput.
	MinErr, FullErr, ThrErr float64
}

// Validate replays the candidate through the measurer and reports the
// predicted-vs-measured errors.
func (p ServingPlan) Validate(measure ServingMeasurer) (ServingValidation, error) {
	m, err := measure(p)
	if err != nil {
		return ServingValidation{}, fmt.Errorf("plan: validating serving %s: %w", p, err)
	}
	return ServingValidation{
		Plan:     p,
		Measured: m,
		MinErr:   relErr(p.Predicted.MinLatency, m.MinLatency),
		FullErr:  relErr(p.Predicted.FullLatency, m.FullLatency),
		ThrErr:   relErr(p.Predicted.Throughput, m.Throughput),
	}, nil
}

// ValidateServingTop replays the first n candidates of a ranked list and
// returns their validations in rank order.
func ValidateServingTop(plans []ServingPlan, n int, measure ServingMeasurer) ([]ServingValidation, error) {
	if n > len(plans) {
		n = len(plans)
	}
	if n < 0 {
		n = 0
	}
	out := make([]ServingValidation, 0, n)
	for _, p := range plans[:n] {
		v, err := p.Validate(measure)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// MaxServingErr returns the largest latency error (min- or full-batch) in a
// validation list — the number the serving acceptance gate tracks against
// the PR 4 bound of 25%.
func MaxServingErr(vs []ServingValidation) float64 {
	var max float64
	for _, v := range vs {
		if v.MinErr > max {
			max = v.MinErr
		}
		if v.FullErr > max {
			max = v.FullErr
		}
	}
	return max
}

// FormatServingPlans renders a ranked serving-plan list. n limits the rows
// (0 = all).
func FormatServingPlans(title string, plans []ServingPlan, n int) string {
	if n <= 0 || n > len(plans) {
		n = len(plans)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%4s %-12s %-9s %5s | %5s %11s %11s %11s | %10s %10s\n",
		"#", "family", "shape", "ranks", "minB", "min-lat(s)", "full-lat(s)", "thru(r/s)", "score", "mem/rank")
	b.WriteString(strings.Repeat("-", 108) + "\n")
	for i, p := range plans[:n] {
		pr := p.Predicted
		fmt.Fprintf(&b, "%4d %-12s %-9s %5d | %5d %11.5f %11.5f %11.1f | %10.5f %10s\n",
			i+1, p.Family, p.Grid.Shape(), p.Grid.Ranks,
			pr.MinBatch, pr.MinLatency, pr.FullLatency, pr.Throughput, p.Score, FormatBytes(pr.MemoryBytes))
	}
	return b.String()
}

// FormatServingValidations renders a serving-validation list: predicted vs
// measured latencies and throughput with their relative errors.
func FormatServingValidations(title string, vs []ServingValidation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%4s %-12s %-9s | %10s %10s %7s | %10s %10s %7s | %7s\n",
		"#", "family", "shape", "pred-min", "meas-min", "err", "pred-full", "meas-full", "err", "thr-err")
	b.WriteString(strings.Repeat("-", 110) + "\n")
	for i, v := range vs {
		fmt.Fprintf(&b, "%4d %-12s %-9s | %10.5f %10.5f %6.1f%% | %10.5f %10.5f %6.1f%% | %6.1f%%\n",
			i+1, v.Plan.Family, v.Plan.Grid.Shape(),
			v.Plan.Predicted.MinLatency, v.Measured.MinLatency, 100*v.MinErr,
			v.Plan.Predicted.FullLatency, v.Measured.FullLatency, 100*v.FullErr,
			100*v.ThrErr)
	}
	return b.String()
}
