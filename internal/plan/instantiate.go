package plan

import (
	"repro/internal/dist"
	"repro/internal/parallel"
)

// Layout converts a ranked candidate into the runtime layout its family
// registers with the parallel package — the bridge that closes the
// plan→run gap: a grid the search can rank is a layout the runtime can
// build.
func (p Plan) Layout() parallel.Layout {
	return parallel.Layout{Family: p.Family, Q: p.Grid.Q, D: p.Grid.D, Ranks: p.Grid.Ranks}
}

// Instantiate binds the calling worker to the plan's processor layout and
// returns the family's model layer, ready to train: Search, Instantiate,
// build a model, step. Every rank of a cluster sized Grid.Ranks must call
// it collectively. The plan's family package must be imported so its
// constructor is registered.
func (p Plan) Instantiate(w *dist.Worker) (parallel.Family, error) {
	return parallel.New(w, p.Layout())
}
