package plan

import (
	"fmt"
	"math"
)

// Measurement is what a replay of one plan on the simulated cluster
// observed: seconds per phase, directly comparable to Breakdown.
type Measurement struct {
	// Forward and Backward are measured simulated seconds per phase.
	Forward, Backward float64
}

// Step returns the measured seconds per training step.
func (m Measurement) Step() float64 { return m.Forward + m.Backward }

// Measurer executes one plan for real — typically on the simulated
// dist.Cluster via tables.MeasurePlan, which builds a cluster of
// Grid.Ranks workers, runs the scheme's layer stack in phantom mode and
// reads the clocks back — and returns what it measured. Keeping the replay
// behind a closure lets the planner stay ignorant of the runners while
// callers choose sequence length, node size and cost model once for both
// sides of the comparison.
type Measurer func(Plan) (Measurement, error)

// Validation pairs a plan with its replayed measurement and the
// prediction errors.
type Validation struct {
	// Plan is the candidate that was replayed.
	Plan Plan
	// Measured is the replay's observation.
	Measured Measurement
	// StepErr, FwdErr and BwdErr are relative errors
	// |predicted − measured| / measured for the step, forward and
	// backward times.
	StepErr, FwdErr, BwdErr float64
}

// Validate replays the plan through the measurer and reports the
// predicted-vs-measured errors.
func (p Plan) Validate(measure Measurer) (Validation, error) {
	m, err := measure(p)
	if err != nil {
		return Validation{}, fmt.Errorf("plan: validating %s: %w", p, err)
	}
	return Validation{
		Plan:     p,
		Measured: m,
		StepErr:  relErr(p.Predicted.Step(), m.Step()),
		FwdErr:   relErr(p.Predicted.Forward, m.Forward),
		BwdErr:   relErr(p.Predicted.Backward, m.Backward),
	}, nil
}

// ValidateTop replays the first n plans of a ranked list (all of them when
// n exceeds the list, none when n is negative) and returns their
// validations in rank order.
func ValidateTop(plans []Plan, n int, measure Measurer) ([]Validation, error) {
	if n > len(plans) {
		n = len(plans)
	}
	if n < 0 {
		n = 0
	}
	out := make([]Validation, 0, n)
	for _, p := range plans[:n] {
		v, err := p.Validate(measure)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// MaxStepErr returns the largest step-time error in a validation list, the
// single number the acceptance gate and the bench metrics track.
func MaxStepErr(vs []Validation) float64 {
	var max float64
	for _, v := range vs {
		if v.StepErr > max {
			max = v.StepErr
		}
	}
	return max
}

// relErr is |predicted−measured|/measured, with the convention that a zero
// measurement matched by a zero prediction is a perfect 0 and any other
// prediction of a zero measurement is an infinite miss.
func relErr(predicted, measured float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-measured) / measured
}
