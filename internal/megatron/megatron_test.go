package megatron

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func runTP(t *testing.T, p int, fn func(mp *Proc) error) *dist.Cluster {
	t.Helper()
	return testutil.Run(t, p, func(w *dist.Worker) error {
		return fn(NewProc(w, p))
	})
}

func TestColLinearMatchesSerial(t *testing.T) {
	const in, out, rows = 8, 12, 5
	for _, tp := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p%d", tp), func(t *testing.T) {
			dataRng := tensor.NewRNG(1)
			x := tensor.RandomMatrix(rows, in, dataRng)
			dy := tensor.RandomMatrix(rows, out, dataRng)

			ref := nn.NewLinear(in, out, nn.ActGELU, true, tensor.NewRNG(9))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			gws := testutil.NewCollector()
			runTP(t, tp, func(mp *Proc) error {
				l := NewColLinear(mp, in, out, nn.ActGELU, true, tensor.NewRNG(9))
				bc := out / tp
				y := l.Forward(mp, x)
				dyLocal := dy.SubMatrix(0, mp.Rank*bc, rows, bc)
				dx := l.Backward(mp, dyLocal)
				// Reassemble the column-sharded output.
				parts := mp.TP.AllGather(mp.W, y)
				ys.Put(mp.W.Rank(), tensor.HCat(parts...))
				dxs.Put(mp.W.Rank(), dx)
				gparts := mp.TP.AllGather(mp.W, l.W.Grad)
				gws.Put(mp.W.Rank(), tensor.HCat(gparts...))
				return nil
			})
			testutil.CheckClose(t, "y", ys.Get(0), wantY, 1e-9)
			testutil.CheckClose(t, "dx", dxs.Get(0), wantDx, 1e-9)
			testutil.CheckClose(t, "dW", gws.Get(0), ref.W.Grad, 1e-9)
		})
	}
}

func TestRowLinearMatchesSerial(t *testing.T) {
	const in, out, rows = 12, 8, 5
	for _, tp := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p%d", tp), func(t *testing.T) {
			dataRng := tensor.NewRNG(2)
			x := tensor.RandomMatrix(rows, in, dataRng)
			dy := tensor.RandomMatrix(rows, out, dataRng)

			ref := nn.NewLinear(in, out, nn.ActNone, true, tensor.NewRNG(11))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			runTP(t, tp, func(mp *Proc) error {
				l := NewRowLinear(mp, in, out, true, tensor.NewRNG(11))
				br := in / tp
				xLocal := x.SubMatrix(0, mp.Rank*br, rows, br)
				y := l.Forward(mp, xLocal)
				dx := l.Backward(mp, dy)
				ys.Put(mp.W.Rank(), y)
				parts := mp.TP.AllGather(mp.W, dx)
				dxs.Put(mp.W.Rank(), tensor.HCat(parts...))
				return nil
			})
			testutil.CheckClose(t, "y", ys.Get(0), wantY, 1e-9)
			testutil.CheckClose(t, "dx", dxs.Get(0), wantDx, 1e-9)
		})
	}
}

func TestMLPMatchesSerial(t *testing.T) {
	const h, rows = 8, 6
	for _, tp := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p%d", tp), func(t *testing.T) {
			dataRng := tensor.NewRNG(3)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewMLP(h, tensor.NewRNG(13))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			runTP(t, tp, func(mp *Proc) error {
				m := newMLP(mp, h, tensor.NewRNG(13))
				y := m.Forward(x)
				dx := m.Backward(dy)
				ys.Put(mp.W.Rank(), y)
				dxs.Put(mp.W.Rank(), dx)
				return nil
			})
			for r := 0; r < tp; r++ {
				testutil.CheckClose(t, "y", ys.Get(r), wantY, 1e-9)
				testutil.CheckClose(t, "dx", dxs.Get(r), wantDx, 1e-9)
			}
		})
	}
}

func TestAttentionMatchesSerial(t *testing.T) {
	const h, heads, seqLen, rows = 8, 4, 3, 6
	for _, tp := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p%d", tp), func(t *testing.T) {
			dataRng := tensor.NewRNG(4)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewMultiHeadAttention(h, heads, seqLen, tensor.NewRNG(17))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			runTP(t, tp, func(mp *Proc) error {
				a := NewAttention(mp, h, heads, seqLen, tensor.NewRNG(17))
				y := a.Forward(mp, x)
				dx := a.Backward(mp, dy)
				ys.Put(mp.W.Rank(), y)
				dxs.Put(mp.W.Rank(), dx)
				return nil
			})
			for r := 0; r < tp; r++ {
				testutil.CheckClose(t, "y", ys.Get(r), wantY, 1e-9)
				testutil.CheckClose(t, "dx", dxs.Get(r), wantDx, 1e-9)
			}
		})
	}
}

func TestBlockMatchesSerial(t *testing.T) {
	const h, heads, seqLen, rows = 8, 4, 2, 8
	for _, tp := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p%d", tp), func(t *testing.T) {
			dataRng := tensor.NewRNG(5)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewBlock(h, heads, seqLen, tensor.NewRNG(19))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			testutil.Run(t, tp, func(w *dist.Worker) error {
				f := NewFamily(w, tp)
				b := f.NewBlock(h, heads, seqLen, tensor.NewRNG(19))
				y := b.Forward(x)
				dx := b.Backward(dy)
				ys.Put(w.Rank(), y)
				dxs.Put(w.Rank(), dx)
				return nil
			})
			for r := 0; r < tp; r++ {
				testutil.CheckClose(t, "y", ys.Get(r), wantY, 1e-8)
				testutil.CheckClose(t, "dx", dxs.Get(r), wantDx, 1e-8)
			}
		})
	}
}

func TestBlockAllReduceCount(t *testing.T) {
	// §3.1 charges Megatron-LM with all-reduces of the replicated
	// activation: exactly 2 in the forward pass and 2 in the backward pass
	// per Transformer layer.
	const h, heads, seqLen, rows, tp = 8, 4, 2, 8, 4
	c := dist.New(dist.Config{WorldSize: tp})
	if err := c.Run(func(w *dist.Worker) error {
		f := NewFamily(w, tp)
		b := f.NewBlockPhantom(h, heads, seqLen)
		x := tensor.NewPhantom(rows, h)
		y := b.Forward(x)
		b.Backward(y)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	calls := c.Stats().PerOp["allreduce"].Calls
	if calls != 4 {
		t.Fatalf("block fwd+bwd performed %d all-reduces, want 4", calls)
	}
}

func TestPhantomMatchesRealClock(t *testing.T) {
	const h, heads, seqLen, rows, tp = 8, 4, 2, 8, 4
	clock := func(phantom bool) float64 {
		c := dist.New(dist.Config{WorldSize: tp})
		if err := c.Run(func(w *dist.Worker) error {
			f := NewFamily(w, tp)
			var b parallel.Layer
			var x *tensor.Matrix
			if phantom {
				b = f.NewBlockPhantom(h, heads, seqLen)
				x = tensor.NewPhantom(rows, h)
			} else {
				b = f.NewBlock(h, heads, seqLen, tensor.NewRNG(23))
				x = tensor.RandomMatrix(rows, h, tensor.NewRNG(29))
			}
			y := b.Forward(x)
			b.Backward(y)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	real, ph := clock(false), clock(true)
	if real <= 0 {
		t.Fatal("expected nonzero simulated time")
	}
	// The phantom path charges attention flops as one lump sum, so the
	// clocks may differ in the last ulp from floating-point association.
	if rel := (real - ph) / real; rel > 1e-12 || rel < -1e-12 {
		t.Fatalf("phantom clock %g != real clock %g", ph, real)
	}
}

func TestProcValidation(t *testing.T) {
	c := dist.New(dist.Config{WorldSize: 2})
	err := c.Run(func(w *dist.Worker) error {
		defer func() { recover() }()
		NewProc(w, 4) // group larger than the cluster
		t.Errorf("rank %d: expected panic", w.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
