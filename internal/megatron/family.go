package megatron

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func init() {
	parallel.RegisterCheck("megatron", func(l parallel.Layout) error {
		if l.Q != 0 {
			return fmt.Errorf("megatron: 1-D family cannot take a mesh %s", l.Shape())
		}
		return nil
	})
	parallel.Register("megatron", func(w *dist.Worker, l parallel.Layout) (parallel.Family, error) {
		return &Family{p: NewProcAt(w, l.Ranks, l.Base), layout: l}, nil
	})
}

// Family is Megatron-LM's implementation of the family-agnostic model
// layer: activations fully replicated on every rank (the memory cost Eq. 9
// charges it with), weights split 1-D across the tensor-parallel group.
// Distribute, Collect, Slice and GatherPooled are therefore identities —
// replication is this family's distribution — and the Transformer block is
// the shared parallel.Block composition over this package's column/row
// linears and attention, with parallel.ReplicatedLayerNorm for the
// un-sharded layer norms.
type Family struct {
	p      *Proc
	layout parallel.Layout
}

// NewFamily attaches the calling worker to the tensor-parallel group
// spanning cluster ranks [0, p) and returns the family view.
func NewFamily(w *dist.Worker, p int) *Family {
	return &Family{p: NewProc(w, p), layout: parallel.Layout{Family: "megatron", Ranks: p}}
}

// Name returns "megatron".
func (f *Family) Name() string { return "megatron" }

// Layout returns the 1-D layout.
func (f *Family) Layout() parallel.Layout { return f.layout }

// Worker returns the rank's cluster view.
func (f *Family) Worker() *dist.Worker { return f.p.W }

// Proc exposes the underlying tensor-parallel view.
func (f *Family) Proc() *Proc { return f.p }

// RowShards returns 1: activations are replicated, never row-split.
func (f *Family) RowShards() int { return 1 }

// NewLinear builds the replicated serial linear: Megatron keeps
// activations replicated, so a model-level linear that must map a
// replicated input to a replicated output (the ViT patch embedding) is
// computed redundantly on every rank, exactly like the classifier head.
func (f *Family) NewLinear(in, out int, act nn.Activation, bias bool, rng *tensor.RNG) parallel.Layer {
	return parallel.NewReplicatedLinearAt(f.p.W, f.layout.Base, in, out, act, bias, rng)
}

// NewBlock builds one Megatron-parallel Transformer block via the shared
// composition, drawing parameters from rng in the serial order
// (attention Wq..Wo, then MLP Fc1, Fc2).
func (f *Family) NewBlock(h, heads, seqLen int, rng *tensor.RNG) parallel.Layer {
	attn := bound{p: f.p, m: NewAttention(f.p, h, heads, seqLen, rng)}
	mlp := newMLP(f.p, h, rng)
	return parallel.NewBlock(f.p.W, h, attn, f.NewLayerNorm(h), mlp, f.NewLayerNorm(h))
}

// NewBlockPhantom builds the shape-only block for paper-scale timing.
func (f *Family) NewBlockPhantom(h, heads, seqLen int) parallel.Layer {
	attn := bound{p: f.p, m: NewAttentionPhantom(f.p, h, heads, seqLen)}
	mlp := parallel.NewSequence(
		bound{p: f.p, m: NewColLinearPhantom(f.p, h, 4*h, nn.ActGELU, true)},
		bound{p: f.p, m: NewRowLinearPhantom(f.p, 4*h, h, true)},
	)
	return parallel.NewBlock(f.p.W, h, attn, f.NewLayerNorm(h), mlp, f.NewLayerNorm(h))
}

// NewLayerNorm builds the replicated (un-sharded) layer norm.
func (f *Family) NewLayerNorm(h int) parallel.Layer {
	return parallel.NewReplicatedLayerNorm(f.p.W, h)
}

// NewHead builds the replicated classifier head; the group base rank is its
// checkpoint primary.
func (f *Family) NewHead(in, out int, rng *tensor.RNG) parallel.Layer {
	return parallel.NewReplicatedLinearAt(f.p.W, f.layout.Base, in, out, nn.ActNone, true, rng)
}

// Distribute is the identity: every rank holds the full activation.
func (f *Family) Distribute(global *tensor.Matrix) *tensor.Matrix { return global }

// Collect is the identity: activations are already replicated.
func (f *Family) Collect(local *tensor.Matrix) *tensor.Matrix { return local }

// Slice reports the whole matrix: this rank holds all of it.
func (f *Family) Slice(rows, cols int) parallel.Slice {
	return parallel.Slice{Rows: rows, Cols: cols}
}

// GatherPooled is the identity: pooling a replicated activation yields the
// full replicated result on every rank.
func (f *Family) GatherPooled(local *tensor.Matrix) *tensor.Matrix { return local }

// DrainGradients is a no-op: the column/row-parallel linears synchronise
// activations in-line and their weight-shard gradients are rank-local.
func (f *Family) DrainGradients() {}

// EndStep recycles the rank's workspace at the step boundary.
func (f *Family) EndStep() { f.p.W.Workspace().ReleaseAll() }

// newMLP chains the column-parallel h→4h GELU linear with the row-parallel
// 4h→h linear, drawing Fc1, Fc2 from rng in the serial order.
func newMLP(p *Proc, h int, rng *tensor.RNG) parallel.Layer {
	return parallel.NewSequence(
		bound{p: p, m: NewColLinear(p, h, 4*h, nn.ActGELU, true, rng)},
		bound{p: p, m: NewRowLinear(p, 4*h, h, true, rng)},
	)
}

// procModule is the method shape every sub-layer in this package shares:
// forward/backward over the group view plus the owned parameter shards.
type procModule interface {
	Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix
	Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix
	Params() []*nn.Param
	State(p *Proc) []parallel.State
}

// bound binds a sub-layer to its group view, adapting it to parallel.Layer.
type bound struct {
	p *Proc
	m procModule
}

func (b bound) Forward(x *tensor.Matrix) *tensor.Matrix   { return b.m.Forward(b.p, x) }
func (b bound) Backward(dy *tensor.Matrix) *tensor.Matrix { return b.m.Backward(b.p, dy) }
func (b bound) Params() []*nn.Param                       { return b.m.Params() }
func (b bound) State() []parallel.State                   { return b.m.State(b.p) }
