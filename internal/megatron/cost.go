package megatron

import (
	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/plan"
)

// PlanAlgo describes Megatron-LM to the auto-parallelism planner: [p]
// layouts for every p that divides the head count, an analytic cost
// mirroring the schedule Block.Forward/Backward run (two activation
// all-reduces per layer per direction, everything else local on the fully
// replicated activation), and the Eq. 9-style per-rank memory — the
// replicated activations that make the family cheap to communicate and
// expensive to hold.
func PlanAlgo() plan.Algo {
	return plan.Algo{
		Family: "megatron",
		Grids:  megatronGrids,
		Cost:   megatronCost,
		Memory: megatronMemory,
	}
}

// megatronGrids enumerates [p] for every p ≤ budget dividing the head
// count (heads % p == 0 implies every weight split the layers perform).
func megatronGrids(w plan.Workload, budget int) []plan.Grid {
	var out []plan.Grid
	for p := 1; p <= budget && p <= w.Heads; p++ {
		if w.Heads%p == 0 {
			out = append(out, plan.Grid{Ranks: p})
		}
	}
	return out
}

func mbytes(elems float64) int64 { return int64(plan.BytesPerElem * elems) }

// megatronCoster accumulates one rank's compute and comm seconds across a
// layer; the tensor-parallel group spans ranks [0, p), so it pays
// inter-node rates as soon as p exceeds the node size.
type megatronCoster struct {
	m     dist.CostModel
	p     int
	inter bool
	comp  float64
	comm  float64
}

func (c *megatronCoster) flops(f float64)      { c.comp += f / c.m.FLOPS }
func (c *megatronCoster) gemm(m, n, k float64) { c.comp += c.m.GEMMSeconds(m, n, k) }
func (c *megatronCoster) allReduce(elems float64) {
	c.comm += c.m.AllReduceSeconds(c.p, mbytes(elems), c.inter)
}

// forwardLayer prices one Block.Forward on the replicated activation of R
// rows: QKV (column-parallel, local), local attention over heads/p heads,
// the output projection's forward all-reduce, the MLP's fc1 (local, GELU)
// and fc2 (all-reduce), with replicated layer norms and residual adds.
func (c *megatronCoster) forwardLayer(R, h, hp, s, dh, hl float64) {
	c.gemm(R, 3*hp, h) // QKV
	c.flops(R * 3 * hp * compute.FlopsPerAdd)
	c.flops(R / s * hl * (4*s*s*dh + compute.FlopsPerSoftmax*s*s))
	c.gemm(R, h, hp) // projection partial
	c.allReduce(R * h)
	c.flops(R * h * compute.FlopsPerAdd) // projection bias
	c.flops(R * h * compute.FlopsPerAdd) // residual
	c.flops(R * h * (compute.FlopsPerNorm + 2))
	c.gemm(R, 4*hp, h) // fc1
	c.flops(R * 4 * hp * (compute.FlopsPerAdd + compute.FlopsPerGELU))
	c.gemm(R, h, 4*hp) // fc2 partial
	c.allReduce(R * h)
	c.flops(R * h * compute.FlopsPerAdd)
	c.flops(R * h * compute.FlopsPerAdd)
	c.flops(R * h * (compute.FlopsPerNorm + 2))
}

// backwardLayer prices one Block.Backward: the row-parallel linears
// propagate without communication, the column-parallel linears all-reduce
// the replicated input gradient — again two all-reduces per layer.
func (c *megatronCoster) backwardLayer(R, h, hp, s, dh, hl float64) {
	c.flops(R * h * (compute.FlopsPerNorm + 2)) // ln2
	// fc2 (row-parallel): dW, bias sums, local dx.
	c.gemm(4*hp, h, R)
	c.flops(R * h * compute.FlopsPerAdd)
	c.gemm(R, 4*hp, h)
	// fc1 (column-parallel): GELU gradient, dW, bias sums, dx all-reduce.
	c.flops(R * 4 * hp * (compute.FlopsPerGELU + compute.FlopsPerAdd))
	c.gemm(h, 4*hp, R)
	c.flops(R * 4 * hp * compute.FlopsPerAdd)
	c.gemm(R, h, 4*hp)
	c.allReduce(R * h)
	c.flops(R * h * compute.FlopsPerAdd) // residual
	c.flops(R * h * (compute.FlopsPerNorm + 2))
	// Projection (row-parallel).
	c.gemm(hp, h, R)
	c.flops(R * h * compute.FlopsPerAdd)
	c.gemm(R, hp, h)
	c.flops(R / s * hl * (8*s*s*dh + compute.FlopsPerSoftmax*s*s))
	// QKV (column-parallel).
	c.gemm(h, 3*hp, R)
	c.flops(R * 3 * hp * compute.FlopsPerAdd)
	c.gemm(R, h, 3*hp)
	c.allReduce(R * h)
	c.flops(R * h * compute.FlopsPerAdd)
}

// megatronCost prices a workload on one [p] layout.
func megatronCost(w plan.Workload, g plan.Grid, t plan.Topology) plan.Breakdown {
	p := g.Ranks
	R := float64(w.Tokens())
	h := float64(w.Hidden)
	hp := h / float64(p)
	s := float64(w.SeqLen)
	dh := h / float64(w.Heads)
	hl := float64(w.Heads) / float64(p)
	inter := t.SpansNodes(0, p-1)
	L := float64(w.Layers)

	fwd := &megatronCoster{m: t.Cost, p: p, inter: inter}
	fwd.forwardLayer(R, h, hp, s, dh, hl)
	bwd := &megatronCoster{m: t.Cost, p: p, inter: inter}
	bwd.backwardLayer(R, h, hp, s, dh, hl)

	fwdPhase := L * (fwd.comp + fwd.comm)
	comp := L * (fwd.comp + bwd.comp)
	backward := L * (bwd.comp + bwd.comm)
	if !w.NoRecompute {
		backward += fwdPhase
		comp += L * fwd.comp
	}
	return plan.Breakdown{
		Forward:        fwdPhase,
		Backward:       backward,
		ComputeSeconds: comp,
		CommSeconds:    fwdPhase + backward - comp,
	}
}

// megatronMemory estimates the bytes one rank holds across a training
// step: the sharded parameters with gradients, and the activation set the
// backward pass retains — four full-width replicated copies per layer plus
// the sharded attention/MLP intermediates and softmax probabilities, which
// is what Eq. 9 charges the family for.
func megatronMemory(w plan.Workload, g plan.Grid) int64 {
	p := float64(g.Ranks)
	R := float64(w.Tokens())
	h := float64(w.Hidden)
	hp := h / p
	s := float64(w.SeqLen)
	hl := float64(w.Heads) / p
	L := float64(w.Layers)
	weights := 12*h*hp + 7*hp + 2*h // shards + column biases + replicated row biases
	probs := float64(w.Batch) * hl * s * s
	acts := R*(4*h+12*hp) + probs
	io := 2 * R * h
	return mbytes(L*(2*weights+acts) + io)
}
