// Package megatron implements the 1-D tensor parallelism of Megatron-LM
// (Shoeybi et al., §2.5 and Figure 2 of the paper), the paper's first
// baseline. Parameter matrices are split along one dimension across all p
// processors of the tensor-parallel group; activations are fully replicated
// on every processor — which is exactly the memory cost Eq. 9 charges it
// with. Each Transformer sub-module pairs a column-parallel linear with a
// row-parallel linear so that one all-reduce per module (two per layer)
// restores the replicated activation.
package megatron

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Proc is one processor's view of a Megatron tensor-parallel group.
type Proc struct {
	W *dist.Worker
	// P is the tensor-parallel size.
	P int
	// Rank is the index within the group, equal to the position of the
	// worker in the group's rank list.
	Rank int
	// TP is the tensor-parallel communicator.
	TP *dist.Group
}

// NewProc attaches the calling worker to the tensor-parallel group spanning
// cluster ranks [0, p).
func NewProc(w *dist.Worker, p int) *Proc {
	return NewProcAt(w, p, 0)
}

// NewProcAt attaches the calling worker to the tensor-parallel group
// spanning cluster ranks [base, base+p) — used when composing with data or
// pipeline parallelism, where each stage's group starts at its own base.
func NewProcAt(w *dist.Worker, p, base int) *Proc {
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = base + i
	}
	g := w.Cluster().Group(ranks...)
	idx := g.Index(w.Rank())
	if idx < 0 {
		panic(fmt.Sprintf("megatron: rank %d outside tensor-parallel group [%d,%d)", w.Rank(), base, base+p))
	}
	return &Proc{W: w, P: p, Rank: idx, TP: g}
}

// ColLinear is a column-parallel linear layer: W is split [In, Out/p], the
// replicated input multiplies the local shard with no communication, and the
// backward pass all-reduces the input gradient (Figure 2, left path).
type ColLinear struct {
	In, Out int
	Act     nn.Activation
	W       *nn.Param // [In, Out/p]
	B       *nn.Param // [1, Out/p]

	x   *tensor.Matrix
	pre *tensor.Matrix
}

// NewColLinear draws the full Xavier weight from rng (same stream as
// nn.NewLinear) and keeps the local column block.
func NewColLinear(p *Proc, in, out int, act nn.Activation, bias bool, rng *tensor.RNG) *ColLinear {
	full := tensor.XavierMatrix(in, out, rng)
	return newColFromGlobal(p, full, act, bias)
}

func newColFromGlobal(p *Proc, full *tensor.Matrix, act nn.Activation, bias bool) *ColLinear {
	in, out := full.Rows, full.Cols
	if out%p.P != 0 {
		panic(fmt.Sprintf("megatron: output %d not divisible by p=%d", out, p.P))
	}
	bc := out / p.P
	l := &ColLinear{In: in, Out: out, Act: act}
	l.W = nn.NewParam("megatron.col.w", full.SubMatrix(0, p.Rank*bc, in, bc))
	if bias {
		l.B = nn.NewParam("megatron.col.b", zerosMaybePhantom(1, bc, full.Phantom()))
	}
	return l
}

// NewColLinearPhantom builds the shape-only variant.
func NewColLinearPhantom(p *Proc, in, out int, act nn.Activation, bias bool) *ColLinear {
	return newColFromGlobal(p, tensor.NewPhantom(in, out), act, bias)
}

// Params returns the local shards.
func (l *ColLinear) Params() []*nn.Param {
	if l.B == nil {
		return []*nn.Param{l.W}
	}
	return []*nn.Param{l.W, l.B}
}

// Forward multiplies the replicated input by the local column shard.
func (l *ColLinear) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	y := compute.MatMul(p.W, x, l.W.Value)
	if l.B != nil {
		y = compute.AddRowVector(p.W, y, l.B.Value)
	}
	l.pre = y
	if l.Act == nn.ActGELU {
		return compute.GELU(p.W, y)
	}
	return y
}

// Backward accumulates shard gradients and all-reduces the input gradient so
// it is replicated again.
func (l *ColLinear) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	if l.Act == nn.ActGELU {
		dy = compute.Mul(p.W, dy, compute.GELUGrad(p.W, l.pre))
	}
	l.W.AccumGrad(compute.MatMulTN(p.W, l.x, dy))
	if l.B != nil {
		l.B.AccumGrad(compute.ColSums(p.W, dy))
	}
	partial := compute.MatMulNT(p.W, dy, l.W.Value)
	return p.TP.AllReduce(p.W, partial)
}

// RowLinear is a row-parallel linear layer: W is split [In/p, Out], the
// partial products are all-reduced in the forward pass (Figure 2, right
// path), and the backward pass needs no communication because the output
// gradient is replicated.
type RowLinear struct {
	In, Out int
	W       *nn.Param // [In/p, Out]
	B       *nn.Param // [1, Out], replicated (identical update on all ranks)

	x *tensor.Matrix
}

// NewRowLinear draws the full Xavier weight from rng and keeps the local row
// block.
func NewRowLinear(p *Proc, in, out int, bias bool, rng *tensor.RNG) *RowLinear {
	full := tensor.XavierMatrix(in, out, rng)
	return newRowFromGlobal(p, full, bias)
}

func newRowFromGlobal(p *Proc, full *tensor.Matrix, bias bool) *RowLinear {
	in, out := full.Rows, full.Cols
	if in%p.P != 0 {
		panic(fmt.Sprintf("megatron: input %d not divisible by p=%d", in, p.P))
	}
	br := in / p.P
	l := &RowLinear{In: in, Out: out}
	l.W = nn.NewParam("megatron.row.w", full.SubMatrix(p.Rank*br, 0, br, out))
	if bias {
		l.B = nn.NewParam("megatron.row.b", zerosMaybePhantom(1, out, full.Phantom()))
	}
	return l
}

// NewRowLinearPhantom builds the shape-only variant.
func NewRowLinearPhantom(p *Proc, in, out int, bias bool) *RowLinear {
	return newRowFromGlobal(p, tensor.NewPhantom(in, out), bias)
}

// Params returns the local shards.
func (l *RowLinear) Params() []*nn.Param {
	if l.B == nil {
		return []*nn.Param{l.W}
	}
	return []*nn.Param{l.W, l.B}
}

// Forward multiplies the sharded input by the local row shard and
// all-reduces the partial outputs.
func (l *RowLinear) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	partial := compute.MatMul(p.W, x, l.W.Value)
	y := p.TP.AllReduce(p.W, partial)
	if l.B != nil {
		y = compute.AddRowVector(p.W, y, l.B.Value)
	}
	return y
}

// Backward accumulates shard gradients and returns the sharded input
// gradient without communication.
func (l *RowLinear) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	l.W.AccumGrad(compute.MatMulTN(p.W, l.x, dy))
	if l.B != nil {
		l.B.AccumGrad(compute.ColSums(p.W, dy))
	}
	return compute.MatMulNT(p.W, dy, l.W.Value)
}

func zerosMaybePhantom(rows, cols int, phantom bool) *tensor.Matrix {
	if phantom {
		return tensor.NewPhantom(rows, cols)
	}
	return tensor.New(rows, cols)
}
