// Package megatron implements the 1-D tensor parallelism of Megatron-LM
// (Shoeybi et al., §2.5 and Figure 2 of the paper), the paper's first
// baseline. Parameter matrices are split along one dimension across all p
// processors of the tensor-parallel group; activations are fully replicated
// on every processor — which is exactly the memory cost Eq. 9 charges it
// with. Each Transformer sub-module pairs a column-parallel linear with a
// row-parallel linear so that one all-reduce per module (two per layer)
// restores the replicated activation.
package megatron

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Proc is one processor's view of a Megatron tensor-parallel group.
type Proc struct {
	W *dist.Worker
	// P is the tensor-parallel size.
	P int
	// Rank is the index within the group, equal to the position of the
	// worker in the group's rank list.
	Rank int
	// TP is the tensor-parallel communicator.
	TP *dist.Group
}

// NewProc attaches the calling worker to the tensor-parallel group spanning
// cluster ranks [0, p).
func NewProc(w *dist.Worker, p int) *Proc {
	return NewProcAt(w, p, 0)
}

// NewProcAt attaches the calling worker to the tensor-parallel group
// spanning cluster ranks [base, base+p) — used when composing with data or
// pipeline parallelism, where each stage's group starts at its own base.
func NewProcAt(w *dist.Worker, p, base int) *Proc {
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = base + i
	}
	g := w.Cluster().Group(ranks...)
	idx := g.Index(w.Rank())
	if idx < 0 {
		panic(fmt.Sprintf("megatron: rank %d outside tensor-parallel group [%d,%d)", w.Rank(), base, base+p))
	}
	return &Proc{W: w, P: p, Rank: idx, TP: g}
}

// ColLinear is a column-parallel linear layer: W is split [In, Out/p], the
// replicated input multiplies the local shard with no communication, and the
// backward pass all-reduces the input gradient (Figure 2, left path).
type ColLinear struct {
	In, Out int
	Act     nn.Activation
	W       *nn.Param // [In, Out/p]
	B       *nn.Param // [1, Out/p]

	x   *tensor.Matrix
	pre *tensor.Matrix
}

// NewColLinear draws the full Xavier weight from rng (same stream as
// nn.NewLinear) and keeps the local column block.
func NewColLinear(p *Proc, in, out int, act nn.Activation, bias bool, rng *tensor.RNG) *ColLinear {
	full := tensor.XavierMatrix(in, out, rng)
	return newColFromGlobal(p, full, act, bias)
}

func newColFromGlobal(p *Proc, full *tensor.Matrix, act nn.Activation, bias bool) *ColLinear {
	in, out := full.Rows, full.Cols
	if out%p.P != 0 {
		panic(fmt.Sprintf("megatron: output %d not divisible by p=%d", out, p.P))
	}
	bc := out / p.P
	l := &ColLinear{In: in, Out: out, Act: act}
	l.W = nn.NewParam("megatron.col.w", full.SubMatrix(0, p.Rank*bc, in, bc))
	if bias {
		l.B = nn.NewParam("megatron.col.b", zerosMaybePhantom(1, bc, full.Phantom()))
	}
	return l
}

// NewColLinearPhantom builds the shape-only variant.
func NewColLinearPhantom(p *Proc, in, out int, act nn.Activation, bias bool) *ColLinear {
	return newColFromGlobal(p, tensor.NewPhantom(in, out), act, bias)
}

// Params returns the local shards.
func (l *ColLinear) Params() []*nn.Param {
	if l.B == nil {
		return []*nn.Param{l.W}
	}
	return []*nn.Param{l.W, l.B}
}

// Forward multiplies the replicated input by the local column shard, with
// the bias add and optional GELU fused into the GEMM write-back. The
// pre-activation (and activation) are workspace buffers retained until the
// step-boundary ReleaseAll.
func (l *ColLinear) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	ws := p.W.Workspace()
	ph := x.Phantom() || l.W.Value.Phantom()
	pre := ws.GetUninitMatch(x.Rows, l.W.Value.Cols, ph)
	pre.Zero()
	l.pre = pre
	var bias *tensor.Matrix
	if l.B != nil {
		bias = l.B.Value
	}
	if l.Act == nn.ActGELU {
		act := ws.GetUninitMatch(x.Rows, l.W.Value.Cols, ph)
		compute.MatMulBiasGELUInto(p.W, act, pre, x, l.W.Value, bias)
		return act
	}
	if bias != nil {
		compute.MatMulBiasInto(p.W, pre, x, l.W.Value, bias)
	} else {
		compute.MatMulInto(p.W, pre, x, l.W.Value)
	}
	return pre
}

// Backward accumulates shard gradients and all-reduces the input gradient so
// it is replicated again. Gradient intermediates are pooled and recycled;
// the returned buffer is owned by the caller.
func (l *ColLinear) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	ph := dy.Phantom() || l.W.Value.Phantom()
	var dyScratch *tensor.Matrix
	if l.Act == nn.ActGELU {
		g := ws.GetUninitMatch(dy.Rows, dy.Cols, dy.Phantom() || l.pre.Phantom())
		compute.GELUGradHadamardTo(p.W, g, l.pre, dy)
		dy, dyScratch = g, g
	}
	dw := ws.GetUninitMatch(l.W.Value.Rows, l.W.Value.Cols, ph)
	dw.Zero()
	compute.MatMulTNInto(p.W, dw, l.x, dy)
	l.W.AccumGrad(dw)
	ws.Put(dw)
	if l.B != nil {
		db := ws.GetUninitMatch(1, dy.Cols, ph)
		compute.ColSumsInto(p.W, db, dy)
		l.B.AccumGrad(db)
		ws.Put(db)
	}
	dx := ws.GetUninitMatch(dy.Rows, l.In, ph)
	compute.MatMulNTInto(p.W, dx, dy, l.W.Value)
	if dyScratch != nil {
		ws.Put(dyScratch)
	}
	return p.TP.AllReduceInto(p.W, dx, dx)
}

// RowLinear is a row-parallel linear layer: W is split [In/p, Out], the
// partial products are all-reduced in the forward pass (Figure 2, right
// path), and the backward pass needs no communication because the output
// gradient is replicated.
type RowLinear struct {
	In, Out int
	W       *nn.Param // [In/p, Out]
	B       *nn.Param // [1, Out], replicated (identical update on all ranks)

	x *tensor.Matrix
}

// NewRowLinear draws the full Xavier weight from rng and keeps the local row
// block.
func NewRowLinear(p *Proc, in, out int, bias bool, rng *tensor.RNG) *RowLinear {
	full := tensor.XavierMatrix(in, out, rng)
	return newRowFromGlobal(p, full, bias)
}

func newRowFromGlobal(p *Proc, full *tensor.Matrix, bias bool) *RowLinear {
	in, out := full.Rows, full.Cols
	if in%p.P != 0 {
		panic(fmt.Sprintf("megatron: input %d not divisible by p=%d", in, p.P))
	}
	br := in / p.P
	l := &RowLinear{In: in, Out: out}
	l.W = nn.NewParam("megatron.row.w", full.SubMatrix(p.Rank*br, 0, br, out))
	if bias {
		l.B = nn.NewParam("megatron.row.b", zerosMaybePhantom(1, out, full.Phantom()))
	}
	return l
}

// NewRowLinearPhantom builds the shape-only variant.
func NewRowLinearPhantom(p *Proc, in, out int, bias bool) *RowLinear {
	return newRowFromGlobal(p, tensor.NewPhantom(in, out), bias)
}

// Params returns the local shards.
func (l *RowLinear) Params() []*nn.Param {
	if l.B == nil {
		return []*nn.Param{l.W}
	}
	return []*nn.Param{l.W, l.B}
}

// Forward multiplies the sharded input by the local row shard, all-reduces
// the partial outputs in place, and adds the bias to the reduced sum. The
// output is a workspace buffer retained until the step boundary.
func (l *RowLinear) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	ws := p.W.Workspace()
	y := ws.GetUninitMatch(x.Rows, l.Out, x.Phantom() || l.W.Value.Phantom())
	y.Zero()
	compute.MatMulInto(p.W, y, x, l.W.Value)
	p.TP.AllReduceInto(p.W, y, y)
	if l.B != nil {
		compute.AddRowVectorInPlace(p.W, y, l.B.Value)
	}
	return y
}

// Backward accumulates shard gradients and returns the sharded input
// gradient without communication, out of pooled buffers.
func (l *RowLinear) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	ph := dy.Phantom() || l.W.Value.Phantom()
	dw := ws.GetUninitMatch(l.W.Value.Rows, l.Out, ph)
	dw.Zero()
	compute.MatMulTNInto(p.W, dw, l.x, dy)
	l.W.AccumGrad(dw)
	ws.Put(dw)
	if l.B != nil {
		db := ws.GetUninitMatch(1, l.Out, ph)
		compute.ColSumsInto(p.W, db, dy)
		l.B.AccumGrad(db)
		ws.Put(db)
	}
	dx := ws.GetUninitMatch(dy.Rows, l.W.Value.Rows, ph)
	compute.MatMulNTInto(p.W, dx, dy, l.W.Value)
	return dx
}

func zerosMaybePhantom(rows, cols int, phantom bool) *tensor.Matrix {
	if phantom {
		return tensor.NewPhantom(rows, cols)
	}
	return tensor.New(rows, cols)
}
