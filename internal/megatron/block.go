package megatron

import (
	"fmt"
	"math"

	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Attention is the Megatron-parallel self-attention module: a fused,
// head-aligned column-parallel QKV projection (heads split across the p
// processors), purely local per-head attention, and a row-parallel output
// projection whose forward all-reduce restores the replicated activation.
type Attention struct {
	H, Heads, SeqLen int

	QKV  *ColLinear // h -> 3h, head-aligned permutation
	Proj *RowLinear // h -> h

	q, k, v *tensor.Matrix
	probs   []*tensor.Matrix
}

// NewAttention draws Wq, Wk, Wv, Wo from rng in the serial order and packs
// the first three into the fused column-permuted QKV weight: rank r holds
// [Wq_r | Wk_r | Wv_r].
func NewAttention(p *Proc, h, heads, seqLen int, rng *tensor.RNG) *Attention {
	validate(p, h, heads)
	wq := tensor.XavierMatrix(h, h, rng)
	wk := tensor.XavierMatrix(h, h, rng)
	wv := tensor.XavierMatrix(h, h, rng)
	wo := tensor.XavierMatrix(h, h, rng)

	bc := h / p.P
	cols := make([]*tensor.Matrix, 0, 3*p.P)
	for r := 0; r < p.P; r++ {
		cols = append(cols,
			wq.SubMatrix(0, r*bc, h, bc),
			wk.SubMatrix(0, r*bc, h, bc),
			wv.SubMatrix(0, r*bc, h, bc))
	}
	fused := tensor.HCat(cols...)

	a := &Attention{H: h, Heads: heads, SeqLen: seqLen}
	a.QKV = newColFromGlobal(p, fused, nn.ActNone, true)
	a.Proj = newRowFromGlobal(p, wo, true)
	return a
}

// NewAttentionPhantom builds the shape-only variant.
func NewAttentionPhantom(p *Proc, h, heads, seqLen int) *Attention {
	validate(p, h, heads)
	a := &Attention{H: h, Heads: heads, SeqLen: seqLen}
	a.QKV = NewColLinearPhantom(p, h, 3*h, nn.ActNone, true)
	a.Proj = NewRowLinearPhantom(p, h, h, true)
	return a
}

func validate(p *Proc, h, heads int) {
	if h%heads != 0 {
		panic(fmt.Sprintf("megatron: hidden %d not divisible by heads %d", h, heads))
	}
	if heads%p.P != 0 {
		panic(fmt.Sprintf("megatron: heads %d not divisible by p=%d", heads, p.P))
	}
}

// Params returns the local shards.
func (a *Attention) Params() []*nn.Param {
	return append(a.QKV.Params(), a.Proj.Params()...)
}

// Forward runs attention over the replicated input x of shape [b·s, h].
func (a *Attention) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	qkv := a.QKV.Forward(p, x)
	hp := a.H / p.P
	a.q = qkv.SubMatrix(0, 0, qkv.Rows, hp)
	a.k = qkv.SubMatrix(0, hp, qkv.Rows, hp)
	a.v = qkv.SubMatrix(0, 2*hp, qkv.Rows, hp)
	out := a.attendForward(p, a.q, a.k, a.v)
	return a.Proj.Forward(p, out)
}

func (a *Attention) attendForward(p *Proc, q, k, v *tensor.Matrix) *tensor.Matrix {
	headsLocal := a.Heads / p.P
	dh := a.H / a.Heads
	s := a.SeqLen
	if q.Phantom() {
		seqF := float64(q.Rows) / float64(s)
		perHead := 4*float64(s)*float64(s)*float64(dh) + compute.FlopsPerSoftmax*float64(s)*float64(s)
		p.W.Compute(seqF * float64(headsLocal) * perHead)
		return tensor.NewPhantom(q.Rows, q.Cols)
	}
	if q.Rows%s != 0 {
		panic(fmt.Sprintf("megatron: attention rows %d not divisible by seq len %d", q.Rows, s))
	}
	nseq := q.Rows / s
	scale := 1 / math.Sqrt(float64(dh))
	out := tensor.New(q.Rows, q.Cols)
	a.probs = make([]*tensor.Matrix, 0, nseq*headsLocal)
	for sq := 0; sq < nseq; sq++ {
		for hd := 0; hd < headsLocal; hd++ {
			qs := q.SubMatrix(sq*s, hd*dh, s, dh)
			ks := k.SubMatrix(sq*s, hd*dh, s, dh)
			vs := v.SubMatrix(sq*s, hd*dh, s, dh)
			scores := tensor.Scale(scale, compute.MatMulNT(p.W, qs, ks))
			probs := compute.SoftmaxRows(p.W, scores)
			a.probs = append(a.probs, probs)
			head := compute.MatMul(p.W, probs, vs)
			out.SetSubMatrix(sq*s, hd*dh, head)
		}
	}
	return out
}

// Backward propagates through the module.
func (a *Attention) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	dout := a.Proj.Backward(p, dy)
	dqkv := a.attendBackward(p, dout)
	return a.QKV.Backward(p, dqkv)
}

func (a *Attention) attendBackward(p *Proc, dout *tensor.Matrix) *tensor.Matrix {
	headsLocal := a.Heads / p.P
	dh := a.H / a.Heads
	s := a.SeqLen
	hp := a.H / p.P
	if dout.Phantom() {
		seqF := float64(dout.Rows) / float64(s)
		perHead := 8*float64(s)*float64(s)*float64(dh) + compute.FlopsPerSoftmax*float64(s)*float64(s)
		p.W.Compute(seqF * float64(headsLocal) * perHead)
		return tensor.NewPhantom(dout.Rows, 3*hp)
	}
	nseq := dout.Rows / s
	scale := 1 / math.Sqrt(float64(dh))
	dqkv := tensor.New(dout.Rows, 3*hp)
	for sq := 0; sq < nseq; sq++ {
		for hd := 0; hd < headsLocal; hd++ {
			probs := a.probs[sq*headsLocal+hd]
			dhead := dout.SubMatrix(sq*s, hd*dh, s, dh)
			qs := a.q.SubMatrix(sq*s, hd*dh, s, dh)
			ks := a.k.SubMatrix(sq*s, hd*dh, s, dh)
			vs := a.v.SubMatrix(sq*s, hd*dh, s, dh)

			dvs := compute.MatMulTN(p.W, probs, dhead)
			dprobs := compute.MatMulNT(p.W, dhead, vs)
			dscores := tensor.Scale(scale, compute.SoftmaxRowsBackward(p.W, probs, dprobs))
			dqs := compute.MatMul(p.W, dscores, ks)
			dks := compute.MatMulTN(p.W, dscores, qs)

			dqkv.SetSubMatrix(sq*s, hd*dh, dqs)
			dqkv.SetSubMatrix(sq*s, hp+hd*dh, dks)
			dqkv.SetSubMatrix(sq*s, 2*hp+hd*dh, dvs)
		}
	}
	return dqkv
}

// MLP is the Megatron feed-forward module: column-parallel h→4h with GELU,
// row-parallel 4h→h with the forward all-reduce.
type MLP struct {
	H   int
	Fc1 *ColLinear
	Fc2 *RowLinear
}

// NewMLP draws Fc1, Fc2 from rng in the serial order.
func NewMLP(p *Proc, h int, rng *tensor.RNG) *MLP {
	return &MLP{
		H:   h,
		Fc1: NewColLinear(p, h, 4*h, nn.ActGELU, true, rng),
		Fc2: NewRowLinear(p, 4*h, h, true, rng),
	}
}

// NewMLPPhantom builds the shape-only variant.
func NewMLPPhantom(p *Proc, h int) *MLP {
	return &MLP{
		H:   h,
		Fc1: NewColLinearPhantom(p, h, 4*h, nn.ActGELU, true),
		Fc2: NewRowLinearPhantom(p, 4*h, h, true),
	}
}

// Params returns the local shards.
func (m *MLP) Params() []*nn.Param {
	return append(m.Fc1.Params(), m.Fc2.Params()...)
}

// Forward applies both projections.
func (m *MLP) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	return m.Fc2.Forward(p, m.Fc1.Forward(p, x))
}

// Backward propagates through both projections.
func (m *MLP) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	return m.Fc1.Backward(p, m.Fc2.Backward(p, dy))
}

// LayerNorm is computed redundantly on the replicated activation (Megatron
// keeps layer norms un-sharded); it reuses the serial implementation and
// charges the flops to the simulated clock.
type LayerNorm struct {
	inner *nn.LayerNorm
}

// NewLayerNorm builds the replicated layer norm.
func NewLayerNorm(h int) *LayerNorm { return &LayerNorm{inner: nn.NewLayerNorm(h)} }

// Forward normalises the replicated activation.
func (l *LayerNorm) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	p.W.Compute(float64(x.Size()) * (compute.FlopsPerNorm + 2))
	return l.inner.Forward(x)
}

// Backward applies Eq. 14 on the replicated gradient.
func (l *LayerNorm) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	p.W.Compute(float64(dy.Size()) * (compute.FlopsPerNorm + 2))
	return l.inner.Backward(dy)
}

// Block is one Megatron-parallel Transformer layer with the paper's
// residual-plus-layer-norm structure. Per layer it performs exactly two
// forward all-reduces and two backward all-reduces of the [b·s, h]
// activation — the communication volume 2β(p−1)·b·s·h/p per direction that
// §3.1 attributes to Megatron-LM.
type Block struct {
	H int

	Attn *Attention
	Ln1  *LayerNorm
	Mlp  *MLP
	Ln2  *LayerNorm
}

// NewBlock draws parameters from rng in the serial order.
func NewBlock(p *Proc, h, heads, seqLen int, rng *tensor.RNG) *Block {
	return &Block{
		H:    h,
		Attn: NewAttention(p, h, heads, seqLen, rng),
		Ln1:  NewLayerNorm(h),
		Mlp:  NewMLP(p, h, rng),
		Ln2:  NewLayerNorm(h),
	}
}

// NewBlockPhantom builds the shape-only variant.
func NewBlockPhantom(p *Proc, h, heads, seqLen int) *Block {
	return &Block{
		H:    h,
		Attn: NewAttentionPhantom(p, h, heads, seqLen),
		Ln1:  NewLayerNorm(h),
		Mlp:  NewMLPPhantom(p, h),
		Ln2:  NewLayerNorm(h),
	}
}

// Params returns the local shards.
func (b *Block) Params() []*nn.Param {
	return append(b.Attn.Params(), b.Mlp.Params()...)
}

// Forward computes the replicated block output.
func (b *Block) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	y := b.Ln1.Forward(p, compute.Add(p.W, x, b.Attn.Forward(p, x)))
	return b.Ln2.Forward(p, compute.Add(p.W, y, b.Mlp.Forward(p, y)))
}

// Backward propagates through the block.
func (b *Block) Backward(p *Proc, dz *tensor.Matrix) *tensor.Matrix {
	dr2 := b.Ln2.Backward(p, dz)
	dy := compute.Add(p.W, dr2, b.Mlp.Backward(p, dr2))
	dr1 := b.Ln1.Backward(p, dy)
	return compute.Add(p.W, dr1, b.Attn.Backward(p, dr1))
}
