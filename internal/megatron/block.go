package megatron

import (
	"fmt"
	"math"

	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Attention is the Megatron-parallel self-attention module: a fused,
// head-aligned column-parallel QKV projection (heads split across the p
// processors), purely local per-head attention, and a row-parallel output
// projection whose forward all-reduce restores the replicated activation.
type Attention struct {
	H, Heads, SeqLen int

	QKV  *ColLinear // h -> 3h, head-aligned permutation
	Proj *RowLinear // h -> h

	q, k, v *tensor.Matrix
	probs   []*tensor.Matrix
}

// NewAttention draws Wq, Wk, Wv, Wo from rng in the serial order and packs
// the first three into the fused column-permuted QKV weight: rank r holds
// [Wq_r | Wk_r | Wv_r].
func NewAttention(p *Proc, h, heads, seqLen int, rng *tensor.RNG) *Attention {
	validate(p, h, heads)
	wq := tensor.XavierMatrix(h, h, rng)
	wk := tensor.XavierMatrix(h, h, rng)
	wv := tensor.XavierMatrix(h, h, rng)
	wo := tensor.XavierMatrix(h, h, rng)

	bc := h / p.P
	cols := make([]*tensor.Matrix, 0, 3*p.P)
	for r := 0; r < p.P; r++ {
		cols = append(cols,
			wq.SubMatrix(0, r*bc, h, bc),
			wk.SubMatrix(0, r*bc, h, bc),
			wv.SubMatrix(0, r*bc, h, bc))
	}
	fused := tensor.HCat(cols...)

	a := &Attention{H: h, Heads: heads, SeqLen: seqLen}
	a.QKV = newColFromGlobal(p, fused, nn.ActNone, true)
	a.Proj = newRowFromGlobal(p, wo, true)
	return a
}

// NewAttentionPhantom builds the shape-only variant.
func NewAttentionPhantom(p *Proc, h, heads, seqLen int) *Attention {
	validate(p, h, heads)
	a := &Attention{H: h, Heads: heads, SeqLen: seqLen}
	a.QKV = NewColLinearPhantom(p, h, 3*h, nn.ActNone, true)
	a.Proj = NewRowLinearPhantom(p, h, h, true)
	return a
}

func validate(p *Proc, h, heads int) {
	if h%heads != 0 {
		panic(fmt.Sprintf("megatron: hidden %d not divisible by heads %d", h, heads))
	}
	if heads%p.P != 0 {
		panic(fmt.Sprintf("megatron: heads %d not divisible by p=%d", heads, p.P))
	}
}

// Params returns the local shards.
func (a *Attention) Params() []*nn.Param {
	return append(a.QKV.Params(), a.Proj.Params()...)
}

// Forward runs attention over the replicated input x of shape [b·s, h].
// The Q/K/V slices and the per-head probabilities are retained for the
// backward pass in workspace buffers, released at the step boundary.
func (a *Attention) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	qkv := a.QKV.Forward(p, x)
	hp := a.H / p.P
	ph := qkv.Phantom()
	aq := ws.GetUninitMatch(qkv.Rows, hp, ph)
	ak := ws.GetUninitMatch(qkv.Rows, hp, ph)
	av := ws.GetUninitMatch(qkv.Rows, hp, ph)
	tensor.SubMatrixInto(aq, qkv, 0, 0)
	tensor.SubMatrixInto(ak, qkv, 0, hp)
	tensor.SubMatrixInto(av, qkv, 0, 2*hp)
	a.q, a.k, a.v = aq, ak, av
	out := a.attendForward(p, aq, ak, av)
	return a.Proj.Forward(p, out)
}

func (a *Attention) attendForward(p *Proc, q, k, v *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	headsLocal := a.Heads / p.P
	dh := a.H / a.Heads
	s := a.SeqLen
	if q.Phantom() {
		seqF := float64(q.Rows) / float64(s)
		perHead := 4*float64(s)*float64(s)*float64(dh) + compute.FlopsPerSoftmax*float64(s)*float64(s)
		p.W.Compute(seqF * float64(headsLocal) * perHead)
		return ws.GetUninitMatch(q.Rows, q.Cols, true)
	}
	if q.Rows%s != 0 {
		panic(fmt.Sprintf("megatron: attention rows %d not divisible by seq len %d", q.Rows, s))
	}
	nseq := q.Rows / s
	scale := 1 / math.Sqrt(float64(dh))
	out := ws.GetUninit(q.Rows, q.Cols) // every head block is overwritten below
	a.probs = a.probs[:0]
	qs := ws.GetUninit(s, dh)
	ks := ws.GetUninit(s, dh)
	vs := ws.GetUninit(s, dh)
	scores := ws.GetUninit(s, s)
	head := ws.GetUninit(s, dh)
	for sq := 0; sq < nseq; sq++ {
		for hd := 0; hd < headsLocal; hd++ {
			tensor.SubMatrixInto(qs, q, sq*s, hd*dh)
			tensor.SubMatrixInto(ks, k, sq*s, hd*dh)
			tensor.SubMatrixInto(vs, v, sq*s, hd*dh)
			compute.MatMulNTInto(p.W, scores, qs, ks)
			tensor.ScaleInPlace(scores, scale)
			probs := ws.GetUninit(s, s) // retained for the backward pass
			compute.SoftmaxRowsTo(p.W, probs, scores)
			a.probs = append(a.probs, probs)
			head.Zero()
			compute.MatMulInto(p.W, head, probs, vs)
			out.SetSubMatrix(sq*s, hd*dh, head)
		}
	}
	ws.Put(qs, ks, vs, scores, head)
	return out
}

// Backward propagates through the module, recycling gradient intermediates
// as soon as their last reader returns.
func (a *Attention) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	dout := a.Proj.Backward(p, dy)
	dqkv := a.attendBackward(p, dout)
	ws.Put(dout)
	dx := a.QKV.Backward(p, dqkv)
	ws.Put(dqkv)
	return dx
}

func (a *Attention) attendBackward(p *Proc, dout *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	headsLocal := a.Heads / p.P
	dh := a.H / a.Heads
	s := a.SeqLen
	hp := a.H / p.P
	if dout.Phantom() {
		seqF := float64(dout.Rows) / float64(s)
		perHead := 8*float64(s)*float64(s)*float64(dh) + compute.FlopsPerSoftmax*float64(s)*float64(s)
		p.W.Compute(seqF * float64(headsLocal) * perHead)
		return ws.GetUninitMatch(dout.Rows, 3*hp, true)
	}
	nseq := dout.Rows / s
	scale := 1 / math.Sqrt(float64(dh))
	dqkv := ws.GetUninit(dout.Rows, 3*hp) // every block is overwritten below
	dhead := ws.GetUninit(s, dh)
	qs := ws.GetUninit(s, dh)
	ks := ws.GetUninit(s, dh)
	vs := ws.GetUninit(s, dh)
	dvs := ws.GetUninit(s, dh)
	dprobs := ws.GetUninit(s, s)
	dscores := ws.GetUninit(s, s)
	dqs := ws.GetUninit(s, dh)
	dks := ws.GetUninit(s, dh)
	for sq := 0; sq < nseq; sq++ {
		for hd := 0; hd < headsLocal; hd++ {
			probs := a.probs[sq*headsLocal+hd]
			tensor.SubMatrixInto(dhead, dout, sq*s, hd*dh)
			tensor.SubMatrixInto(qs, a.q, sq*s, hd*dh)
			tensor.SubMatrixInto(ks, a.k, sq*s, hd*dh)
			tensor.SubMatrixInto(vs, a.v, sq*s, hd*dh)

			dvs.Zero()
			compute.MatMulTNInto(p.W, dvs, probs, dhead)
			compute.MatMulNTInto(p.W, dprobs, dhead, vs)
			compute.SoftmaxRowsBackwardTo(p.W, dscores, probs, dprobs)
			tensor.ScaleInPlace(dscores, scale)
			dqs.Zero()
			compute.MatMulInto(p.W, dqs, dscores, ks)
			dks.Zero()
			compute.MatMulTNInto(p.W, dks, dscores, qs)

			dqkv.SetSubMatrix(sq*s, hd*dh, dqs)
			dqkv.SetSubMatrix(sq*s, hp+hd*dh, dks)
			dqkv.SetSubMatrix(sq*s, 2*hp+hd*dh, dvs)
		}
	}
	ws.Put(dhead, qs, ks, vs, dvs, dprobs, dscores, dqs, dks)
	return dqkv
}

// The Block, MLP and LayerNorm wrappers that used to live here were
// deleted in favor of the shared generic composition: the family's
// NewBlock assembles parallel.Block from this package's Attention and
// column/row-parallel linears plus parallel.ReplicatedLayerNorm (see
// family.go). Per layer the composition still performs exactly two forward
// all-reduces and two backward all-reduces of the [b·s, h] activation —
// the communication volume 2β(p−1)·b·s·h/p per direction that §3.1
// attributes to Megatron-LM.
