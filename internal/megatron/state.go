package megatron

import "repro/internal/parallel"

// This file maps every Megatron layer's local shards onto the canonical
// serial parameters for checkpointing (parallel.Stater). Column- and
// row-parallel shards are distinct per rank (every holder is primary); the
// row-parallel bias is the one replicated parameter, written by group
// rank 0.

// State maps the local column block onto the canonical [In, Out] weight
// (and its bias slice onto [1, Out]).
func (l *ColLinear) State(p *Proc) []parallel.State {
	bc := l.Out / p.P
	out := []parallel.State{
		parallel.BlockState(l.W, l.In, l.Out, 0, p.Rank*bc, true),
	}
	if l.B != nil {
		out = append(out, parallel.BlockState(l.B, 1, l.Out, 0, p.Rank*bc, true))
	}
	return out
}

// State maps the local row block onto the canonical [In, Out] weight; the
// replicated bias is a full slot written by group rank 0.
func (l *RowLinear) State(p *Proc) []parallel.State {
	br := l.In / p.P
	out := []parallel.State{
		parallel.BlockState(l.W, l.In, l.Out, p.Rank*br, 0, true),
	}
	if l.B != nil {
		out = append(out, parallel.FullState(l.B, 1, l.Out, p.Rank == 0))
	}
	return out
}

// State maps the fused, column-permuted QKV shard through three rectangles
// onto the canonical unpermuted [h, 3h] concatenation [Wq | Wk | Wv] (and
// its bias onto [1, 3h]): rank r's fused block is [Wq_r | Wk_r | Wv_r], so
// fused sub-block t lands at serial column t·h + r·h/p. The output
// projection is a plain RowLinear.
func (a *Attention) State(p *Proc) []parallel.State {
	h := a.H
	bc := h / p.P
	w := parallel.State{Param: a.QKV.W, Rows: h, Cols: 3 * h, Primary: true}
	b := parallel.State{Param: a.QKV.B, Rows: 1, Cols: 3 * h, Primary: true}
	for t := 0; t < 3; t++ {
		w.Blocks = append(w.Blocks, parallel.StateBlock{
			LocalCol:  t * bc,
			GlobalCol: t*h + p.Rank*bc,
			Rows:      h, Cols: bc,
		})
		b.Blocks = append(b.Blocks, parallel.StateBlock{
			LocalCol:  t * bc,
			GlobalCol: t*h + p.Rank*bc,
			Rows:      1, Cols: bc,
		})
	}
	return append([]parallel.State{w, b}, a.Proj.State(p)...)
}
