package tensor

// Naive single-goroutine reference kernels: the textbook loops the seed
// shipped, kept as the correctness oracle for the property tests and the
// baseline the GEMM benchmarks compare against. The seed's `if av == 0`
// zero-skip branch is gone: on the dense inputs every layer produces it
// never fires yet costs a compare per inner element, it breaks IEEE
// semantics for NaN/Inf operands (0·NaN must be NaN), and — measured in
// gemm_bench_test.go — removing it does not slow the dense case. Sparse
// inputs that would profit deserve a sparse type, not a hidden branch.

// matMulAccumNaive computes C += A·B in plain i-k-j order.
func matMulAccumNaive(c, a, b *Matrix) {
	n, k := b.Cols, a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for l := 0; l < k; l++ {
			av := arow[l]
			brow := b.Data[l*n : (l+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// matMulNTNaive computes C = A·Bᵀ as plain row-by-row dot products.
func matMulNTNaive(c, a, b *Matrix) {
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for l, av := range arow {
				s += av * brow[l]
			}
			crow[j] = s
		}
	}
}

// matMulTNNaive computes C += Aᵀ·B in plain l-i-j order.
func matMulTNNaive(c, a, b *Matrix) {
	for l := 0; l < a.Rows; l++ {
		arow := a.Data[l*a.Cols : (l+1)*a.Cols]
		brow := b.Data[l*b.Cols : (l+1)*b.Cols]
		for i, av := range arow {
			crow := c.Data[i*b.Cols : (i+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}
