package tensor

import (
	"math"
	"testing"
)

// The elementwise contract: the bound kernels (AVX2 on qualifying amd64
// hosts) must produce bit-for-bit the portable reference loops' results,
// NaN/Inf/signed-zero lanes included, at lengths covering the 8-wide body,
// the 4-wide tail and the scalar tail.

func elemLens() []int { return []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 64, 100} }

// specialValues seeds index i of a slice with awkward IEEE values.
func specialSeed(data []float64, rng *RNG) {
	for i := range data {
		data[i] = rng.Float64()*4 - 2
	}
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, 1e-310}
	for i, v := range specials {
		if i < len(data) {
			data[i] = v
		}
	}
}

func TestElementwiseKernelsMatchGenericBitwise(t *testing.T) {
	rng := NewRNG(7)
	for _, n := range elemLens() {
		a := make([]float64, n)
		b := make([]float64, n)
		specialSeed(a, rng)
		specialSeed(b, rng)
		for i := range b {
			b[i] = rng.Float64()*4 - 2
		}
		if n > 0 {
			b[0] = math.Inf(1) // NaN + Inf, 0·Inf-style lanes
		}

		check := func(name string, got, want []float64) {
			t.Helper()
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s n=%d lane %d: %v vs %v", name, n, i, got[i], want[i])
				}
			}
		}

		gotD, wantD := make([]float64, n), make([]float64, n)
		vaddTo(gotD, a, b)
		vaddToGeneric(wantD, a, b)
		check("vaddTo", gotD, wantD)

		vmulTo(gotD, a, b)
		vmulToGeneric(wantD, a, b)
		check("vmulTo", gotD, wantD)

		copy(gotD, a)
		copy(wantD, a)
		vaddIn(gotD, b)
		vaddInGeneric(wantD, b)
		check("vaddIn", gotD, wantD)

		copy(gotD, a)
		copy(wantD, a)
		if n > 0 {
			vscale(gotD, 1.7)
			vscaleGeneric(wantD, 1.7)
		}
		check("vscale", gotD, wantD)

		copy(gotD, a)
		copy(wantD, a)
		if n > 0 {
			axpy(gotD, b, -0.3)
			axpyGeneric(wantD, b, -0.3)
		}
		check("axpy", gotD, wantD)
	}
}

// TestAdamKernelMatchesGenericBitwise pins the bound Adam kernel to the
// scalar reference: a changed rounding here would silently shift every
// training trajectory in the repo.
func TestAdamKernelMatchesGenericBitwise(t *testing.T) {
	rng := NewRNG(11)
	for _, n := range elemLens() {
		if n == 0 {
			continue
		}
		val := make([]float64, n)
		grad := make([]float64, n)
		m := make([]float64, n)
		v := make([]float64, n)
		for i := range val {
			val[i] = rng.Float64()*2 - 1
			grad[i] = rng.Float64()*2 - 1
			m[i] = rng.Float64() * 0.1
			v[i] = rng.Float64() * 0.01
		}
		if n > 2 {
			grad[1] = 0
			grad[2] = 1e160 // v overflows to +Inf; sqrt(Inf) must match
		}
		val2 := append([]float64(nil), val...)
		grad2 := append([]float64(nil), grad...)
		m2 := append([]float64(nil), m...)
		v2 := append([]float64(nil), v...)

		const lr, b1, b2, eps, wd = 1e-3, 0.9, 0.999, 1e-8, 0.01
		bc1 := 1 - math.Pow(b1, 3)
		bc2 := 1 - math.Pow(b2, 3)
		adamKernel(val, grad, m, v, lr, b1, b2, eps, wd, bc1, bc2)
		adamUpdateGeneric(val2, grad2, m2, v2, lr, b1, b2, eps, wd, bc1, bc2)

		for i := range val {
			if math.Float64bits(val[i]) != math.Float64bits(val2[i]) ||
				math.Float64bits(m[i]) != math.Float64bits(m2[i]) ||
				math.Float64bits(v[i]) != math.Float64bits(v2[i]) {
				t.Fatalf("n=%d lane %d: adam kernel diverges (val %v vs %v, m %v vs %v, v %v vs %v)",
					n, i, val[i], val2[i], m[i], m2[i], v[i], v2[i])
			}
		}
	}
}

// TestAdamUpdateMatrixWrapper checks the Matrix-level entry point, phantom
// short-circuit included.
func TestAdamUpdateMatrixWrapper(t *testing.T) {
	rng := NewRNG(13)
	p := RandomMatrix(3, 5, rng)
	g := RandomMatrix(3, 5, rng)
	m := New(3, 5)
	v := New(3, 5)
	want := p.Clone()
	wm, wv := m.Clone(), v.Clone()
	adamUpdateGeneric(want.Data, g.Data, wm.Data, wv.Data, 1e-3, 0.9, 0.999, 1e-8, 0.01, 0.1, 0.002)
	AdamUpdate(p, g, m, v, 1e-3, 0.9, 0.999, 1e-8, 0.01, 0.1, 0.002)
	if !p.Equal(want) || !m.Equal(wm) || !v.Equal(wv) {
		t.Fatal("AdamUpdate diverges from the scalar reference")
	}

	ph := NewPhantom(3, 5)
	AdamUpdate(ph, NewPhantom(3, 5), NewPhantom(3, 5), NewPhantom(3, 5), 1e-3, 0.9, 0.999, 1e-8, 0.01, 0.1, 0.002)
}
