package tensor

import (
	"fmt"
	"math"
	"runtime"
	"testing"
)

// The fusion contract: a GEMM with a fused epilogue must be bitwise
// identical to the GEMM followed by the separate bias/activation passes,
// at every shape and band split.

func TestFusedEpilogueBitwise(t *testing.T) {
	for _, s := range gemmShapes() {
		t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(t *testing.T) {
			rng := NewRNG(uint64(s.m*211 + s.k*21 + s.n))
			a := RandomMatrix(s.m, s.k, rng)
			b := RandomMatrix(s.k, s.n, rng)
			bias := RandomMatrix(1, s.n, rng)
			seed := RandomMatrix(s.m, s.n, rng) // += contract: prior contents matter

			// Separate passes: MatMulInto, then bias, then GELU.
			wantPre := seed.Clone()
			MatMulInto(wantPre, a, b)
			AddRowVectorInPlace(wantPre, bias)
			wantAct := New(s.m, s.n)
			GELUTo(wantAct, wantPre)

			// Fused bias only.
			gotBias := seed.Clone()
			MatMulBiasInto(gotBias, a, b, bias)
			if !gotBias.Equal(wantPre) {
				t.Fatalf("MatMulBiasInto diverges from separate passes (max diff %g)", gotBias.MaxAbsDiff(wantPre))
			}

			// Fused bias + GELU, pre-activation retained.
			gotPre := seed.Clone()
			gotAct := New(s.m, s.n)
			MatMulBiasGELUInto(gotAct, gotPre, a, b, bias)
			if !gotPre.Equal(wantPre) {
				t.Fatalf("fused pre-activation diverges (max diff %g)", gotPre.MaxAbsDiff(wantPre))
			}
			if !gotAct.Equal(wantAct) {
				t.Fatalf("fused activation diverges (max diff %g)", gotAct.MaxAbsDiff(wantAct))
			}

			// nil bias: activation-only fusion.
			wantPre2 := seed.Clone()
			MatMulInto(wantPre2, a, b)
			wantAct2 := New(s.m, s.n)
			GELUTo(wantAct2, wantPre2)
			gotPre2 := seed.Clone()
			gotAct2 := New(s.m, s.n)
			MatMulBiasGELUInto(gotAct2, gotPre2, a, b, nil)
			if !gotPre2.Equal(wantPre2) || !gotAct2.Equal(wantAct2) {
				t.Fatal("activation-only fusion diverges from separate passes")
			}
		})
	}
}

// TestFusedEpilogueBandedBitwise forces multi-band pool execution of an
// epilogue-carrying task: the epilogue is applied per band, and the result
// must still match the serial separate-pass reference bit for bit.
func TestFusedEpilogueBandedBitwise(t *testing.T) {
	const m, k, n = 23, 31, 12
	rng := NewRNG(97)
	a := RandomMatrix(m, k, rng)
	b := RandomMatrix(k, n, rng)
	bias := RandomMatrix(1, n, rng)

	want := New(m, n)
	MatMulInto(want, a, b)
	AddRowVectorInPlace(want, bias)
	wantAct := New(m, n)
	GELUTo(wantAct, want)

	for bands := 1; bands <= m+1; bands++ {
		pre := New(m, n)
		act := New(m, n)
		task := gemmTask{op: opNN, c: pre, a: a, b: b, epi: epilogue{bias: bias, act: act}}
		runGEMM(&task, m, bands)
		if !pre.Equal(want) || !act.Equal(wantAct) {
			t.Fatalf("fused epilogue diverges at %d bands", bands)
		}
	}
}

// TestGELUGradHadamardBitwise pins the fused backward epilogue to the
// two-pass GELUGradTo + MulTo form.
func TestGELUGradHadamardBitwise(t *testing.T) {
	rng := NewRNG(31)
	pre := RandomMatrix(9, 14, rng)
	dy := RandomMatrix(9, 14, rng)
	pre.Set(0, 0, math.Inf(1))
	dy.Set(0, 1, math.NaN())

	want := New(9, 14)
	GELUGradTo(want, pre)
	MulTo(want, dy, want)

	got := New(9, 14)
	GELUGradHadamardTo(got, pre, dy)
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("lane %d: fused %v vs two-pass %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestPoolDeterminismAcrossGOMAXPROCS runs a above-threshold GEMM serially
// (GOMAXPROCS=1, the pool's fast path) and at full parallelism, and demands
// bit-exact agreement — the determinism property CI also covers by running
// the whole tensor test suite under GOMAXPROCS=1.
func TestPoolDeterminismAcrossGOMAXPROCS(t *testing.T) {
	rng := NewRNG(55)
	a := RandomMatrix(128, 128, rng)
	b := RandomMatrix(128, 128, rng)

	old := runtime.GOMAXPROCS(1)
	serial := MatMul(a, b)
	runtime.GOMAXPROCS(old)
	parallel := MatMul(a, b)

	for i := range serial.Data {
		if math.Float64bits(serial.Data[i]) != math.Float64bits(parallel.Data[i]) {
			t.Fatalf("element %d: GOMAXPROCS=1 %v vs =%d %v", i, serial.Data[i], old, parallel.Data[i])
		}
	}
}
