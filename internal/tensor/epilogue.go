package tensor

// Epilogue fusion. A GEMM's C rows leave the microkernels cache-hot; the
// linear layers immediately stream them again for a bias add and once more
// for the activation. An epilogue folds those passes into the GEMM's own
// row write-back: after a band's rows are fully accumulated, the bias add
// and the GELU run over them while they are still resident.
//
// The fusion contract — when callers may fuse without changing rounding —
// is that the epilogue performs exactly the per-element operation sequence
// of the separate passes, in the same order: the bias add is the single
// `row[j] + bias[j]` rounding of AddRowVectorInPlace, and the activation
// reads the finished pre-activation row and writes geluScalar of it to a
// separate destination, exactly like GELUTo. Only the memory traffic
// changes, never an arithmetic order, so fused results are bitwise
// identical to the unfused ones (TestFusedEpilogueBitwise). Fusion is per
// row, so it composes with row banding: the pool applies a task's epilogue
// band by band.
type epilogue struct {
	bias *Matrix // optional [1, n] row vector added to every C row
	act  *Matrix // optional GELU destination; C keeps the pre-activation
}

// applyRows applies the epilogue to C rows [i0, i1).
func (e *epilogue) applyRows(c *Matrix, i0, i1 int) {
	if e.bias == nil && e.act == nil {
		return
	}
	n := c.Cols
	for i := i0; i < i1; i++ {
		row := c.Data[i*n : (i+1)*n]
		if e.bias != nil {
			vaddIn(row, e.bias.Data)
		}
		if e.act != nil {
			geluSlice(e.act.Data[i*n:(i+1)*n], row)
		}
	}
}

// geluSlice writes GELU(src) into dst element by element — the same
// per-element evaluation GELUTo performs.
func geluSlice(dst, src []float64) {
	_ = dst[len(src)-1]
	for j, v := range src {
		dst[j] = geluScalar(v)
	}
}
