package tensor

import "testing"

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := NewRNG(41)
	a := RandomMatrix(5, 7, rng)
	b := RandomMatrix(5, 7, rng)

	dst := New(5, 7)
	AddTo(dst, a, b)
	if !dst.Equal(Add(a, b)) {
		t.Fatal("AddTo differs from Add")
	}
	MulTo(dst, a, b)
	if !dst.Equal(Mul(a, b)) {
		t.Fatal("MulTo differs from Mul")
	}
	// Aliasing: dst == a.
	aCopy := a.Clone()
	AddTo(aCopy, aCopy, b)
	if !aCopy.Equal(Add(a, b)) {
		t.Fatal("aliased AddTo differs from Add")
	}

	x := RandomMatrix(4, 6, rng)
	y := RandomMatrix(3, 6, rng)
	nt := New(4, 3)
	MatMulNTInto(nt, x, y)
	if !nt.Equal(MatMulNT(x, y)) {
		t.Fatal("MatMulNTInto differs from MatMulNT")
	}
	// NT overwrites: a dirty destination must not leak into the result.
	nt.Fill(99)
	MatMulNTInto(nt, x, y)
	if !nt.Equal(MatMulNT(x, y)) {
		t.Fatal("MatMulNTInto must overwrite a dirty destination")
	}

	z := RandomMatrix(4, 5, rng)
	tn := New(6, 5)
	MatMulTNInto(tn, x, z)
	if !tn.Equal(MatMulTN(x, z)) {
		t.Fatal("MatMulTNInto (zeroed dst) differs from MatMulTN")
	}

	cs := New(1, 7)
	ColSumsInto(cs, a)
	if !cs.Equal(ColSums(a)) {
		t.Fatal("ColSumsInto differs from ColSums")
	}

	packed := New(5, 2)
	RowSumsIntoCol(packed, 0, a)
	RowSumsIntoCol(packed, 1, b)
	if !packed.Equal(HCat(RowSums(a), RowSums(b))) {
		t.Fatal("RowSumsIntoCol packing differs from HCat(RowSums, RowSums)")
	}

	sub := New(2, 3)
	SubMatrixInto(sub, a, 1, 2)
	if !sub.Equal(a.SubMatrix(1, 2, 2, 3)) {
		t.Fatal("SubMatrixInto differs from SubMatrix")
	}

	g := New(5, 7)
	GELUTo(g, a)
	if !g.Equal(GELU(a)) {
		t.Fatal("GELUTo differs from GELU")
	}
	GELUGradTo(g, a)
	if !g.Equal(GELUGrad(a)) {
		t.Fatal("GELUGradTo differs from GELUGrad")
	}

	sm := New(5, 7)
	SoftmaxRowsTo(sm, a)
	if !sm.Equal(SoftmaxRows(a)) {
		t.Fatal("SoftmaxRowsTo differs from SoftmaxRows")
	}
	ds := RandomMatrix(5, 7, rng)
	bk := New(5, 7)
	SoftmaxRowsBackwardTo(bk, sm, ds)
	if !bk.Equal(SoftmaxRowsBackward(sm, ds)) {
		t.Fatal("SoftmaxRowsBackwardTo differs from SoftmaxRowsBackward")
	}

	ar := New(5, 7)
	AddRowVectorInPlace(ar, FromRows([][]float64{make([]float64, 7)}))
	cp := a.Clone()
	v := RandomMatrix(1, 7, rng)
	AddRowVectorInPlace(cp, v)
	if !cp.Equal(AddRowVector(a, v)) {
		t.Fatal("AddRowVectorInPlace differs from AddRowVector")
	}
}

func TestIntoVariantsPhantomNoOps(t *testing.T) {
	ph := NewPhantom(3, 3)
	dst := NewPhantom(3, 3)
	AddTo(dst, ph, ph)
	MulTo(dst, ph, ph)
	MatMulNTInto(dst, ph, ph)
	MatMulTNInto(dst, ph, ph)
	SubMatrixInto(dst, ph, 0, 0)
	GELUTo(dst, ph)
	SoftmaxRowsTo(dst, ph)
	CopyInto(dst, ph)
	if !dst.Phantom() {
		t.Fatal("phantom destinations must stay phantom")
	}
}

func TestCopyIntoPhantomnessMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyInto real<-phantom must panic rather than silently skip")
		}
	}()
	CopyInto(New(2, 2), NewPhantom(2, 2))
}

func TestCopyIntoSelfIsNoOp(t *testing.T) {
	m := New(2, 2)
	m.Fill(5)
	CopyInto(m, m) // the dst==payload broadcast-root case
	if m.At(0, 0) != 5 {
		t.Fatal("self CopyInto corrupted data")
	}
}
