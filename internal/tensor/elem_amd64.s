//go:build amd64

#include "textflag.h"

// AVX2 elementwise kernels. Every output lane is an independent chain of
// individually rounded IEEE operations on the matching input lanes — no
// cross-lane accumulation — so vectorising changes nothing bitwise (see
// elem.go). VDIVPD and VSQRTPD are correctly rounded per lane, exactly like
// their scalar forms. Tails run scalar in the same per-element order.

// func vaddToPtr(dst, a, b *float64, n int)
// dst[i] = a[i] + b[i]
TEXT ·vaddToPtr(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ n+24(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   vat4
vatloop8:
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD 32(SI)(AX*8), Y1
	VADDPD  (R8)(AX*8), Y0, Y0
	VADDPD  32(R8)(AX*8), Y1, Y1
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y1, 32(DI)(AX*8)
	ADDQ $8, AX
	DECQ DX
	JNZ  vatloop8
vat4:
	TESTQ $4, CX
	JZ    vat1
	VMOVUPD (SI)(AX*8), Y0
	VADDPD  (R8)(AX*8), Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
vat1:
	CMPQ AX, CX
	JGE  vatdone
vatscalar:
	MOVSD (SI)(AX*8), X0
	ADDSD (R8)(AX*8), X0
	MOVSD X0, (DI)(AX*8)
	INCQ AX
	CMPQ AX, CX
	JL   vatscalar
vatdone:
	VZEROUPPER
	RET

// func vaddInPtr(dst, src *float64, n int)
// dst[i] += src[i]
TEXT ·vaddInPtr(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   vai4
vailoop8:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y1
	VADDPD  (SI)(AX*8), Y0, Y0
	VADDPD  32(SI)(AX*8), Y1, Y1
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y1, 32(DI)(AX*8)
	ADDQ $8, AX
	DECQ DX
	JNZ  vailoop8
vai4:
	TESTQ $4, CX
	JZ    vai1
	VMOVUPD (DI)(AX*8), Y0
	VADDPD  (SI)(AX*8), Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
vai1:
	CMPQ AX, CX
	JGE  vaidone
vaiscalar:
	MOVSD (DI)(AX*8), X0
	ADDSD (SI)(AX*8), X0
	MOVSD X0, (DI)(AX*8)
	INCQ AX
	CMPQ AX, CX
	JL   vaiscalar
vaidone:
	VZEROUPPER
	RET

// func vmulToPtr(dst, a, b *float64, n int)
// dst[i] = a[i] * b[i]
TEXT ·vmulToPtr(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ n+24(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   vmt4
vmtloop8:
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD 32(SI)(AX*8), Y1
	VMULPD  (R8)(AX*8), Y0, Y0
	VMULPD  32(R8)(AX*8), Y1, Y1
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y1, 32(DI)(AX*8)
	ADDQ $8, AX
	DECQ DX
	JNZ  vmtloop8
vmt4:
	TESTQ $4, CX
	JZ    vmt1
	VMOVUPD (SI)(AX*8), Y0
	VMULPD  (R8)(AX*8), Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
vmt1:
	CMPQ AX, CX
	JGE  vmtdone
vmtscalar:
	MOVSD (SI)(AX*8), X0
	MULSD (R8)(AX*8), X0
	MOVSD X0, (DI)(AX*8)
	INCQ AX
	CMPQ AX, CX
	JL   vmtscalar
vmtdone:
	VZEROUPPER
	RET

// func vscalePtr(dst *float64, n int, alpha float64)
// dst[i] *= alpha
TEXT ·vscalePtr(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ n+8(FP), CX
	VBROADCASTSD alpha+16(FP), Y7
	XORQ AX, AX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   vsc4
vscloop8:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y1
	VMULPD  Y7, Y0, Y0
	VMULPD  Y7, Y1, Y1
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y1, 32(DI)(AX*8)
	ADDQ $8, AX
	DECQ DX
	JNZ  vscloop8
vsc4:
	TESTQ $4, CX
	JZ    vsc1
	VMOVUPD (DI)(AX*8), Y0
	VMULPD  Y7, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
vsc1:
	CMPQ AX, CX
	JGE  vscdone
vscscalar:
	MOVSD (DI)(AX*8), X0
	MULSD X7, X0
	MOVSD X0, (DI)(AX*8)
	INCQ AX
	CMPQ AX, CX
	JL   vscscalar
vscdone:
	VZEROUPPER
	RET

// func adamPtr(val, grad, m, v *float64, n int,
//              lr, b1, omb1, b2, omb2, eps, wd, bc1, bc2 float64)
// Per element (four lanes at a time, each lane the exact scalar sequence):
//   m    = b1*m + omb1*g
//   v    = b2*v + (omb2*g)*g
//   val -= lr * ((m/bc1)/(sqrt(v/bc2)+eps) + wd*val)
// n must be a multiple of 4; the Go wrapper runs the remainder scalar.
TEXT ·adamPtr(SB), NOSPLIT, $0-112
	MOVQ val+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ m+16(FP), R8
	MOVQ v+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSD lr+40(FP), Y15
	VBROADCASTSD b1+48(FP), Y14
	VBROADCASTSD omb1+56(FP), Y13
	VBROADCASTSD b2+64(FP), Y12
	VBROADCASTSD omb2+72(FP), Y11
	VBROADCASTSD eps+80(FP), Y10
	VBROADCASTSD wd+88(FP), Y9
	VBROADCASTSD bc1+96(FP), Y8
	VBROADCASTSD bc2+104(FP), Y7
	XORQ AX, AX
	MOVQ CX, DX
	SUBQ $4, DX

	// Two independent four-lane chains per iteration: the divides and the
	// square root are the latency wall, and interleaving a second chain
	// keeps the divider unit fed while the first chain's results drain.
	// Each lane still sees the exact single-chain operation sequence.
adloop8:
	CMPQ AX, DX
	JGE  adloop4
	VMOVUPD (SI)(AX*8), Y0     // g_a
	VMOVUPD (R8)(AX*8), Y1     // m_a
	VMULPD  Y14, Y1, Y1        // b1*m
	VMULPD  Y13, Y0, Y3        // omb1*g
	VADDPD  Y3, Y1, Y1         // m'_a
	VMOVUPD Y1, (R8)(AX*8)
	VMOVUPD (R9)(AX*8), Y2     // v_a
	VMULPD  Y12, Y2, Y2        // b2*v
	VMULPD  Y11, Y0, Y3        // omb2*g
	VMULPD  Y0, Y3, Y3         // (omb2*g)*g
	VADDPD  Y3, Y2, Y2         // v'_a
	VMOVUPD Y2, (R9)(AX*8)
	VDIVPD  Y8, Y1, Y1         // mh_a
	VDIVPD  Y7, Y2, Y2         // vh_a
	VSQRTPD Y2, Y2             // sqrt(vh_a)
	VMOVUPD 32(SI)(AX*8), Y4   // g_b
	VMOVUPD 32(R8)(AX*8), Y5   // m_b
	VMULPD  Y14, Y5, Y5
	VMULPD  Y13, Y4, Y3
	VADDPD  Y3, Y5, Y5         // m'_b
	VMOVUPD Y5, 32(R8)(AX*8)
	VMOVUPD 32(R9)(AX*8), Y6   // v_b
	VMULPD  Y12, Y6, Y6
	VMULPD  Y11, Y4, Y3
	VMULPD  Y4, Y3, Y3
	VADDPD  Y3, Y6, Y6         // v'_b
	VMOVUPD Y6, 32(R9)(AX*8)
	VDIVPD  Y8, Y5, Y5         // mh_b
	VDIVPD  Y7, Y6, Y6         // vh_b
	VSQRTPD Y6, Y6             // sqrt(vh_b)
	VADDPD  Y10, Y2, Y2        // +eps
	VDIVPD  Y2, Y1, Y1         // mh_a/(sqrt+eps)
	VMOVUPD (DI)(AX*8), Y0     // val_a
	VMULPD  Y9, Y0, Y3         // wd*val
	VADDPD  Y3, Y1, Y1
	VMULPD  Y15, Y1, Y1        // lr*update
	VSUBPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	VADDPD  Y10, Y6, Y6        // +eps
	VDIVPD  Y6, Y5, Y5         // mh_b/(sqrt+eps)
	VMOVUPD 32(DI)(AX*8), Y4   // val_b
	VMULPD  Y9, Y4, Y3
	VADDPD  Y3, Y5, Y5
	VMULPD  Y15, Y5, Y5
	VSUBPD  Y5, Y4, Y4
	VMOVUPD Y4, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  adloop8

adloop4:
	CMPQ AX, CX
	JGE  adone2
	VMOVUPD (SI)(AX*8), Y0   // g
	VMOVUPD (R8)(AX*8), Y1   // m
	VMULPD  Y14, Y1, Y1      // b1*m
	VMULPD  Y13, Y0, Y2      // omb1*g
	VADDPD  Y2, Y1, Y1       // m'
	VMOVUPD Y1, (R8)(AX*8)
	VMOVUPD (R9)(AX*8), Y2   // v
	VMULPD  Y12, Y2, Y2      // b2*v
	VMULPD  Y11, Y0, Y3      // omb2*g
	VMULPD  Y0, Y3, Y3       // (omb2*g)*g
	VADDPD  Y3, Y2, Y2       // v'
	VMOVUPD Y2, (R9)(AX*8)
	VDIVPD  Y8, Y1, Y1       // mh = m'/bc1
	VDIVPD  Y7, Y2, Y2       // vh = v'/bc2
	VSQRTPD Y2, Y2           // sqrt(vh)
	VADDPD  Y10, Y2, Y2      // +eps
	VDIVPD  Y2, Y1, Y1       // mh/(sqrt+eps)
	VMOVUPD (DI)(AX*8), Y4   // val
	VMULPD  Y9, Y4, Y5       // wd*val
	VADDPD  Y5, Y1, Y1       // update
	VMULPD  Y15, Y1, Y1      // lr*update
	VSUBPD  Y1, Y4, Y4       // val - lr*update
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
	JMP  adloop4
adone2:
	VZEROUPPER
	RET
