package tensor

import (
	"fmt"
	"math"
)

// phantomAny reports whether any operand is phantom.
func phantomAny(ms ...*Matrix) bool {
	for _, m := range ms {
		if m.Phantom() {
			return true
		}
	}
	return false
}

// MatMul returns C = A·B via the blocked kernel in gemm.go: i-k-j order
// (the cache-friendly ordering for row-major storage) with a vectorised
// multi-row microkernel and, above a size threshold on multi-core hosts,
// goroutine row-band parallelism. Results are bitwise identical to the
// naive reference kernel in naive.go at every size and band count.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(a, b) {
		return NewPhantom(a.Rows, b.Cols)
	}
	c := New(a.Rows, b.Cols)
	matMulAccum(c, a, b, epilogue{})
	return c
}

// MatMulInto computes C += A·B into an existing matrix (must be A.Rows×B.Cols).
func MatMulInto(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto %dx%d += %dx%d * %dx%d", c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(c, a, b) {
		return
	}
	matMulAccum(c, a, b, epilogue{})
}

// MatMulBiasInto computes C += A·B and then adds the row vector bias to
// every C row inside the GEMM's write-back, while the rows are cache-hot.
// Bitwise identical to MatMulInto followed by AddRowVectorInPlace — the
// fused epilogue performs the same per-element add in the same order (see
// epilogue.go for the fusion contract).
func MatMulBiasInto(c, a, b, bias *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBiasInto %dx%d += %dx%d * %dx%d", c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if bias.Rows*bias.Cols != c.Cols {
		panic(fmt.Sprintf("tensor: MatMulBiasInto bias of %d for %d cols", bias.Rows*bias.Cols, c.Cols))
	}
	if phantomAny(c, a, b, bias) {
		return
	}
	matMulAccum(c, a, b, epilogue{bias: bias})
}

// MatMulBiasGELUInto computes pre += A·B, adds bias to every row, and writes
// GELU(pre) into act — the whole linear-layer forward in one pass over the
// output, with pre retaining the pre-activation for the backward. bias may
// be nil to fuse only the activation. Bitwise identical to MatMulInto +
// AddRowVectorInPlace + GELUTo run separately.
func MatMulBiasGELUInto(act, pre, a, b, bias *Matrix) {
	if a.Cols != b.Rows || pre.Rows != a.Rows || pre.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBiasGELUInto %dx%d += %dx%d * %dx%d", pre.Rows, pre.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if !act.SameShape(pre) {
		panic(fmt.Sprintf("tensor: MatMulBiasGELUInto act %dx%d vs pre %dx%d", act.Rows, act.Cols, pre.Rows, pre.Cols))
	}
	if bias != nil && bias.Rows*bias.Cols != pre.Cols {
		panic(fmt.Sprintf("tensor: MatMulBiasGELUInto bias of %d for %d cols", bias.Rows*bias.Cols, pre.Cols))
	}
	if phantomAny(act, pre, a, b) || (bias != nil && bias.Phantom()) {
		return
	}
	matMulAccum(pre, a, b, epilogue{bias: bias, act: act})
}

// MatMulNT returns C = A·Bᵀ. Large products take the packed path (transpose
// B once, then run the vectorised NN microkernels); the result is bitwise
// identical either way.
func MatMulNT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulNT %dx%d by %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(a, b) {
		return NewPhantom(a.Rows, b.Rows)
	}
	c := New(a.Rows, b.Rows)
	if NTPackProfitable(a.Rows, b.Rows, a.Cols) {
		matMulNTPacked(c, a, b, New(a.Cols, b.Rows), epilogue{})
	} else {
		matMulNTKernel(c, a, b)
	}
	return c
}

// MatMulTN returns C = Aᵀ·B.
func MatMulTN(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTN %dx%dᵀ by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(a, b) {
		return NewPhantom(a.Cols, b.Cols)
	}
	c := New(a.Cols, b.Cols)
	matMulTNKernel(c, a, b)
	return c
}

// MatMulNTInto computes C = A·Bᵀ into an existing matrix (A.Rows×B.Rows),
// overwriting it — the NT kernel is dot-product shaped and never reads C.
func MatMulNTInto(c, a, b *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulNTInto %dx%d += %dx%d * %dx%dᵀ", c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(c, a, b) {
		return
	}
	matMulNTKernel(c, a, b)
}

// MatMulNTIntoPacked computes C = A·Bᵀ like MatMulNTInto but through the
// packed kernel, using the caller-supplied [A.Cols, B.Rows] scratch panel —
// the allocation-free way onto the fast NT path (compute.MatMulNTInto draws
// the panel from the worker's workspace when NTPackProfitable says the
// transpose pays for itself). Bitwise identical to MatMulNTInto.
func MatMulNTIntoPacked(c, a, b, pack *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulNTIntoPacked %dx%d = %dx%d * %dx%dᵀ", c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if pack.Rows != a.Cols || pack.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulNTIntoPacked pack %dx%d, want %dx%d", pack.Rows, pack.Cols, a.Cols, b.Rows))
	}
	if phantomAny(c, a, b) {
		return
	}
	matMulNTPacked(c, a, b, pack, epilogue{})
}

// MatMulTNInto computes C += Aᵀ·B into an existing matrix (A.Cols×B.Cols).
// Zero c first when an overwrite is wanted.
func MatMulTNInto(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTNInto %dx%d += %dx%dᵀ * %dx%d", c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(c, a, b) {
		return
	}
	matMulTNKernel(c, a, b)
}

// MatMulTNIntoPacked computes C += Aᵀ·B like MatMulTNInto but through the
// packed kernel, using the caller-supplied [A.Cols, A.Rows] scratch panel:
// A is transposed once into the panel and the vectorised NN microkernels
// accumulate C += panel·B (compute.MatMulTNInto draws the panel from the
// worker's workspace when TNPackProfitable says the transpose pays for
// itself). Bitwise identical to MatMulTNInto.
func MatMulTNIntoPacked(c, a, b, pack *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTNIntoPacked %dx%d += %dx%dᵀ * %dx%d", c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if pack.Rows != a.Cols || pack.Cols != a.Rows {
		panic(fmt.Sprintf("tensor: MatMulTNIntoPacked pack %dx%d, want %dx%d", pack.Rows, pack.Cols, a.Cols, a.Rows))
	}
	if phantomAny(c, a, b) {
		return
	}
	matMulTNPacked(c, a, b, pack)
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	if m.Phantom() {
		return NewPhantom(m.Cols, m.Rows)
	}
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Add returns a + b elementwise.
func Add(a, b *Matrix) *Matrix { return zipWith(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a − b elementwise.
func Sub(a, b *Matrix) *Matrix { return zipWith(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns the elementwise (Hadamard) product a ⊙ b.
func Mul(a, b *Matrix) *Matrix { return zipWith(a, b, func(x, y float64) float64 { return x * y }) }

func zipWith(a, b *Matrix, f func(x, y float64) float64) *Matrix {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: elementwise op %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(a, b) {
		return NewPhantom(a.Rows, a.Cols)
	}
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	return out
}

// AddTo computes dst = a + b elementwise into an existing matrix. dst may
// alias either operand.
func AddTo(dst, a, b *Matrix) {
	if !a.SameShape(b) || !dst.SameShape(a) {
		panic(fmt.Sprintf("tensor: AddTo %dx%d = %dx%d + %dx%d", dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(dst, a, b) {
		return
	}
	vaddTo(dst.Data, a.Data, b.Data)
}

// MulTo computes dst = a ⊙ b elementwise into an existing matrix. dst may
// alias either operand.
func MulTo(dst, a, b *Matrix) {
	if !a.SameShape(b) || !dst.SameShape(a) {
		panic(fmt.Sprintf("tensor: MulTo %dx%d = %dx%d * %dx%d", dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(dst, a, b) {
		return
	}
	vmulTo(dst.Data, a.Data, b.Data)
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: AddInPlace %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(a, b) {
		return
	}
	vaddIn(a.Data, b.Data)
}

// AxpyInPlace computes a += alpha*b.
func AxpyInPlace(a *Matrix, alpha float64, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: AxpyInPlace %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if phantomAny(a, b) || len(a.Data) == 0 {
		return
	}
	axpy(a.Data, b.Data, alpha)
}

// Scale returns alpha*m as a new matrix.
func Scale(alpha float64, m *Matrix) *Matrix {
	if m.Phantom() {
		return NewPhantom(m.Rows, m.Cols)
	}
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = alpha * v
	}
	return out
}

// ScaleInPlace computes m *= alpha.
func ScaleInPlace(m *Matrix, alpha float64) {
	if len(m.Data) == 0 {
		return
	}
	vscale(m.Data, alpha)
}

// Apply returns f applied elementwise.
func Apply(m *Matrix, f func(float64) float64) *Matrix {
	if m.Phantom() {
		return NewPhantom(m.Rows, m.Cols)
	}
	out := New(m.Rows, m.Cols)
	ApplyTo(out, m, f)
	return out
}

// AddRowVector returns m with the row vector v (1×Cols or length-Cols matrix)
// added to every row — the bias-add used by linear layers.
func AddRowVector(m, v *Matrix) *Matrix {
	if v.Rows*v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector %dx%d with vector of %d", m.Rows, m.Cols, v.Rows*v.Cols))
	}
	if phantomAny(m, v) {
		return NewPhantom(m.Rows, m.Cols)
	}
	out := m.Clone()
	AddRowVectorInPlace(out, v)
	return out
}

// AddRowVectorInPlace adds the row vector v to every row of m.
func AddRowVectorInPlace(m, v *Matrix) {
	if v.Rows*v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVectorInPlace %dx%d with vector of %d", m.Rows, m.Cols, v.Rows*v.Cols))
	}
	if phantomAny(m, v) {
		return
	}
	if m.Cols == 0 {
		return
	}
	for i := 0; i < m.Rows; i++ {
		vaddIn(m.Data[i*m.Cols:(i+1)*m.Cols], v.Data)
	}
}

// ColSums returns the 1×Cols vector of column sums — the bias gradient.
func ColSums(m *Matrix) *Matrix {
	if m.Phantom() {
		return NewPhantom(1, m.Cols)
	}
	out := New(1, m.Cols)
	ColSumsInto(out, m)
	return out
}

// ColSumsInto writes the column sums of m into the 1×Cols vector dst,
// overwriting it.
func ColSumsInto(dst, m *Matrix) {
	if dst.Rows != 1 || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: ColSumsInto %dx%d from %dx%d", dst.Rows, dst.Cols, m.Rows, m.Cols))
	}
	if phantomAny(dst, m) {
		return
	}
	for j := range dst.Data {
		dst.Data[j] = 0
	}
	if m.Cols == 0 {
		return
	}
	for i := 0; i < m.Rows; i++ {
		vaddIn(dst.Data, m.Data[i*m.Cols:(i+1)*m.Cols])
	}
}

// RowSumsIntoCol writes the row sums of m into column col of dst (a matrix
// with m.Rows rows), overwriting that column. It is the packing primitive
// behind the fused layer-norm statistics message.
func RowSumsIntoCol(dst *Matrix, col int, m *Matrix) {
	if dst.Rows != m.Rows || col < 0 || col >= dst.Cols {
		panic(fmt.Sprintf("tensor: RowSumsIntoCol col %d of %dx%d from %dx%d", col, dst.Rows, dst.Cols, m.Rows, m.Cols))
	}
	if phantomAny(dst, m) {
		return
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for _, v := range row {
			s += v
		}
		dst.Data[i*dst.Cols+col] = s
	}
}

// RowSums returns the Rows×1 vector of row sums.
func RowSums(m *Matrix) *Matrix {
	if m.Phantom() {
		return NewPhantom(m.Rows, 1)
	}
	out := New(m.Rows, 1)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for _, v := range row {
			s += v
		}
		out.Data[i] = s
	}
	return out
}

// Sum returns the sum of all elements (0 for phantoms).
func Sum(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Frobenius returns the Frobenius norm of m (0 for phantoms).
func Frobenius(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgmaxRows returns, for each row, the column index of the maximum element.
func ArgmaxRows(m *Matrix) []int {
	if m.Phantom() {
		return make([]int, m.Rows)
	}
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		best, arg := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, arg = v, j
			}
		}
		out[i] = arg
	}
	return out
}

// GEMMFlops returns the floating-point operation count of an m×k by k×n
// multiply-accumulate (2·m·n·k). Float dimensions are accepted so that
// phantom attention can charge fractional sequences per processor.
func GEMMFlops(m, n, k float64) float64 { return 2 * m * n * k }
