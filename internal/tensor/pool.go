package tensor

import "sync/atomic"

// Persistent GEMM worker pool. The banded kernels used to spawn one
// goroutine per band per call; on the training hot path that meant a
// goroutine creation, a closure allocation and a WaitGroup hand-shake per
// large GEMM. The pool replaces all of that with a fixed set of parked
// workers woken by token channels:
//
//   - a worker is a goroutine parked on a buffered wake channel; waking it
//     is one channel send, no scheduling of a new G;
//   - work travels as a plain-old-data gemmTask value (kernel selector plus
//     operand pointers), so nothing escapes to the heap — zero allocations
//     per call, however many bands run;
//   - the submitter claims workers from a free list with a non-blocking
//     receive and runs any band it could not hand off inline (including
//     band 0, which it always keeps). Claiming never blocks, so concurrent
//     submitters — the simulated cluster runs one goroutine per rank —
//     cannot deadlock on an exhausted pool; they just degrade toward the
//     serial path.
//
// Workers are spawned lazily up to gemmPoolCap as demand appears (the
// serial fast path in runGEMM means a GOMAXPROCS=1 process never spawns
// any), and once spawned they persist for the life of the process.
const gemmPoolCap = 64

// gemmOp selects the row kernel a pooled worker runs over its band.
type gemmOp uint8

const (
	opNN gemmOp = iota // matMulAccumRows: C += A·B
	opNT               // matMulNTRows:    C = A·Bᵀ (overwrites)
	opTN               // matMulTNRows:    C += Aᵀ·B
)

// gemmTask is one banded GEMM: plain data shared read-only by every band.
// The epilogue, when set, is applied to each band's C rows right after they
// are computed, while they are still cache-hot.
type gemmTask struct {
	op      gemmOp
	c, a, b *Matrix
	epi     epilogue
}

// gemmJob is a task plus the row band a worker should run. It carries the
// task by value so handing it through a channel allocates nothing.
type gemmJob struct {
	task   gemmTask
	i0, i1 int
}

// gemmWorker is one parked pool goroutine. Both channels are buffered so
// neither the waker nor the worker ever blocks on the hand-shake.
type gemmWorker struct {
	wake chan gemmJob
	done chan struct{}
}

var (
	gemmIdle    = make(chan *gemmWorker, gemmPoolCap)
	gemmSpawned atomic.Int32
)

func (w *gemmWorker) loop() {
	for job := range w.wake {
		runTaskRows(&job.task, job.i0, job.i1)
		w.done <- struct{}{}
	}
}

// claimWorker takes an idle worker without blocking, spawning a new one if
// the free list is empty and the cap allows. Returns nil when the pool is
// exhausted — the caller runs that band inline.
func claimWorker() *gemmWorker {
	select {
	case w := <-gemmIdle:
		return w
	default:
	}
	if gemmSpawned.Add(1) > gemmPoolCap {
		gemmSpawned.Add(-1)
		return nil
	}
	w := &gemmWorker{wake: make(chan gemmJob, 1), done: make(chan struct{}, 1)}
	go w.loop()
	return w
}

// runTaskRows dispatches a task's row kernel over [i0, i1) and applies the
// fused epilogue to those rows. Band splits never change results: each C
// row's arithmetic is independent and identical in any split, so the pooled
// run is bitwise identical to the serial one at every band count.
func runTaskRows(t *gemmTask, i0, i1 int) {
	switch t.op {
	case opNN:
		matMulAccumRows(t.c, t.a, t.b, i0, i1)
	case opNT:
		matMulNTRows(t.c, t.a, t.b, i0, i1)
	case opTN:
		matMulTNRows(t.c, t.a, t.b, i0, i1)
	}
	t.epi.applyRows(t.c, i0, i1)
}

// runGEMM executes a task over rows of C split into bands. The single-band
// fast path (always taken below the flop threshold or on GOMAXPROCS=1)
// touches neither channels nor the pool.
func runGEMM(t *gemmTask, rows, bands int) {
	if bands <= 1 {
		runTaskRows(t, 0, rows)
		return
	}
	var used [gemmPoolCap]*gemmWorker
	nu := 0
	for b := 1; b < bands; b++ {
		i0, i1 := bandRange(rows, b, bands)
		w := claimWorker()
		if w == nil {
			runTaskRows(t, i0, i1)
			continue
		}
		w.wake <- gemmJob{task: *t, i0: i0, i1: i1}
		used[nu] = w
		nu++
	}
	i0, i1 := bandRange(rows, 0, bands)
	runTaskRows(t, i0, i1)
	for i := 0; i < nu; i++ {
		<-used[i].done
		gemmIdle <- used[i] // never blocks: capacity equals the spawn cap
	}
}
