package tensor

import "fmt"

// checkColVector validates v as an m.Rows-length column vector.
func checkColVector(m, v *Matrix, op string) {
	if v.Rows*v.Cols != m.Rows {
		panic(fmt.Sprintf("tensor: %s %dx%d with vector of %d", op, m.Rows, m.Cols, v.Rows*v.Cols))
	}
}

// AddColVector returns m with v_i added to every element of row i.
func AddColVector(m, v *Matrix) *Matrix {
	checkColVector(m, v, "AddColVector")
	if phantomAny(m, v) {
		return NewPhantom(m.Rows, m.Cols)
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		s := v.Data[i]
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			orow[j] = x + s
		}
	}
	return out
}

// SubColVector returns m with v_i subtracted from every element of row i.
func SubColVector(m, v *Matrix) *Matrix {
	checkColVector(m, v, "SubColVector")
	if phantomAny(m, v) {
		return NewPhantom(m.Rows, m.Cols)
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		s := v.Data[i]
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			orow[j] = x - s
		}
	}
	return out
}

// MulColVector returns m with row i scaled by v_i.
func MulColVector(m, v *Matrix) *Matrix {
	checkColVector(m, v, "MulColVector")
	if phantomAny(m, v) {
		return NewPhantom(m.Rows, m.Cols)
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		s := v.Data[i]
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			orow[j] = x * s
		}
	}
	return out
}

// HCat concatenates matrices left to right (equal row counts).
func HCat(parts ...*Matrix) *Matrix {
	if len(parts) == 0 {
		return &Matrix{}
	}
	rows := parts[0].Rows
	cols := 0
	phantom := false
	for _, p := range parts {
		if p.Rows != rows {
			panic("tensor: HCat row mismatch")
		}
		cols += p.Cols
		if p.Data == nil && p.Size() > 0 {
			phantom = true
		}
	}
	if phantom {
		return NewPhantom(rows, cols)
	}
	out := New(rows, cols)
	off := 0
	for _, p := range parts {
		out.SetSubMatrix(0, off, p)
		off += p.Cols
	}
	return out
}

// VCat concatenates matrices top to bottom (equal column counts).
func VCat(parts ...*Matrix) *Matrix {
	if len(parts) == 0 {
		return &Matrix{}
	}
	cols := parts[0].Cols
	rows := 0
	phantom := false
	for _, p := range parts {
		if p.Cols != cols {
			panic("tensor: VCat column mismatch")
		}
		rows += p.Rows
		if p.Data == nil && p.Size() > 0 {
			phantom = true
		}
	}
	if phantom {
		return NewPhantom(rows, cols)
	}
	out := New(rows, cols)
	off := 0
	for _, p := range parts {
		out.SetSubMatrix(off, 0, p)
		off += p.Rows
	}
	return out
}
