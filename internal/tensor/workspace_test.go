package tensor

import "testing"

func TestWorkspaceReusesBuffers(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(4, 3)
	a.Fill(7)
	ws.Put(a)
	b := ws.Get(4, 3)
	if b != a {
		t.Fatal("same-shape Get after Put should return the recycled buffer")
	}
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("Get must hand back a zeroed buffer")
		}
	}
	if s := ws.Stats(); s.Allocs != 1 || s.Gets != 2 {
		t.Fatalf("stats %+v: want 1 alloc over 2 gets", s)
	}
}

func TestWorkspaceGetUninitSkipsZeroing(t *testing.T) {
	ws := NewWorkspace()
	a := ws.GetUninit(2, 2)
	a.Fill(3)
	ws.Put(a)
	b := ws.GetUninit(2, 2)
	if b != a {
		t.Fatal("expected recycled buffer")
	}
	if b.Data[0] != 3 {
		t.Fatal("GetUninit must not pay for zeroing")
	}
}

func TestWorkspaceShapeAndPhantomKeying(t *testing.T) {
	ws := NewWorkspace()
	real := ws.Get(2, 3)
	ph := ws.GetMatch(2, 3, true)
	if !ph.Phantom() || real.Phantom() {
		t.Fatal("phantom request must yield a phantom, real a real")
	}
	ws.Put(real, ph)
	if got := ws.GetMatch(2, 3, true); got != ph {
		t.Fatal("phantom free list should recycle the phantom header")
	}
	if got := ws.Get(3, 2); got == real {
		t.Fatal("a 3x2 request must not be satisfied by a 2x3 buffer")
	}
}

func TestWorkspaceDoublePutPanics(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(1, 1)
	ws.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put must panic — it would alias one buffer to two holders")
		}
	}()
	ws.Put(m)
}

func TestWorkspaceForeignPutPanics(t *testing.T) {
	ws := NewWorkspace()
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a never-pooled matrix must panic")
		}
	}()
	ws.Put(New(2, 2))
}

func TestWorkspaceReleaseAll(t *testing.T) {
	ws := NewWorkspace()
	a, b := ws.Get(2, 2), ws.Get(5, 1)
	_ = a
	_ = b
	if s := ws.Stats(); s.Live != 2 || s.HighWater != 2 {
		t.Fatalf("stats %+v: want live=highwater=2", s)
	}
	ws.ReleaseAll()
	if s := ws.Stats(); s.Live != 0 {
		t.Fatalf("stats %+v: want live=0 after ReleaseAll", s)
	}
	// Everything returned to the free lists: no new allocations.
	ws.Get(2, 2)
	ws.Get(5, 1)
	if s := ws.Stats(); s.Allocs != 2 {
		t.Fatalf("stats %+v: the released buffers should satisfy the next round", s)
	}
}

func TestWorkspacePoolingDisabled(t *testing.T) {
	ws := NewWorkspace()
	ws.SetPooling(false)
	a := ws.Get(2, 2)
	ws.Put(a) // no-op, must not panic
	if b := ws.Get(2, 2); b == a {
		t.Fatal("with pooling disabled every Get must allocate fresh")
	}
	ws.ReleaseAll() // no-op
	if s := ws.Stats(); s.Live != 0 || s.Allocs != 2 {
		t.Fatalf("stats %+v: disabled pool should count allocs but track nothing", s)
	}
}

func TestWorkspaceHighWater(t *testing.T) {
	ws := NewWorkspace()
	for step := 0; step < 4; step++ {
		for i := 0; i < 3; i++ {
			ws.Get(2, 2)
		}
		ws.ReleaseAll()
	}
	if s := ws.Stats(); s.HighWater != 3 || s.Allocs != 3 {
		t.Fatalf("stats %+v: steady 3-buffer steps must hold high water and allocs at 3", s)
	}
}
