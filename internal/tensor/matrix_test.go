package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func naiveMatMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randomPair(m, k, n int, seed uint64) (*Matrix, *Matrix) {
	rng := NewRNG(seed)
	return RandomMatrix(m, k, rng), RandomMatrix(k, n, rng)
}

func TestNewZeroInitialised(t *testing.T) {
	m := New(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromSliceAliases(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, data)
	data[0] = 42
	if m.At(0, 0) != 42 {
		t.Fatal("FromSlice should wrap without copying")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer expectPanic(t, "FromSlice")
	FromSlice(2, 3, []float64{1, 2})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Fatalf("FromRows wrong values: %v", m)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {8, 8, 8}, {1, 9, 2}} {
		a, b := randomPair(dims[0], dims[1], dims[2], uint64(dims[0]*100+dims[1]*10+dims[2]))
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if got.MaxAbsDiff(want) > 1e-12 {
			t.Fatalf("MatMul %v: diff %g", dims, got.MaxAbsDiff(want))
		}
	}
}

func TestMatMulNTMatchesTranspose(t *testing.T) {
	rng := NewRNG(7)
	a := RandomMatrix(4, 6, rng)
	b := RandomMatrix(5, 6, rng)
	got := MatMulNT(a, b)
	want := MatMul(a, Transpose(b))
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("MatMulNT diff %g", got.MaxAbsDiff(want))
	}
}

func TestMatMulTNMatchesTranspose(t *testing.T) {
	rng := NewRNG(8)
	a := RandomMatrix(6, 4, rng)
	b := RandomMatrix(6, 5, rng)
	got := MatMulTN(a, b)
	want := MatMul(Transpose(a), b)
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("MatMulTN diff %g", got.MaxAbsDiff(want))
	}
}

func TestMatMulIntoAccumulates(t *testing.T) {
	a, b := randomPair(3, 4, 5, 11)
	c := New(3, 5)
	c.Fill(1)
	MatMulInto(c, a, b)
	want := Add(naiveMatMul(a, b), onesLike(3, 5))
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Fatal("MatMulInto must accumulate")
	}
}

func onesLike(r, c int) *Matrix {
	m := New(r, c)
	m.Fill(1)
	return m
}

func TestMatMulShapePanic(t *testing.T) {
	defer expectPanic(t, "MatMul")
	MatMul(New(2, 3), New(4, 5))
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		m := RandomMatrix(r, c, rng)
		return Transpose(Transpose(m)).MaxAbsDiff(m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransposeProperty(t *testing.T) {
	// (A·B)ᵀ = Bᵀ·Aᵀ
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandomMatrix(m, k, rng)
		b := RandomMatrix(k, n, rng)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return lhs.MaxAbsDiff(rhs) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributivity(t *testing.T) {
	// A·(B+C) = A·B + A·C
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandomMatrix(m, k, rng)
		b := RandomMatrix(k, n, rng)
		c := RandomMatrix(k, n, rng)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return lhs.MaxAbsDiff(rhs) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCombineRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rb := 1 + rng.Intn(3)
		cb := 1 + rng.Intn(3)
		m := RandomMatrix(rb*(1+rng.Intn(3)), cb*(1+rng.Intn(3)), rng)
		blocks := m.Partition(rb, cb)
		back := Combine(rb, cb, blocks)
		return back.MaxAbsDiff(m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubMatrixSetSubMatrixRoundTrip(t *testing.T) {
	rng := NewRNG(5)
	m := RandomMatrix(6, 8, rng)
	sub := m.SubMatrix(2, 3, 3, 4)
	n := New(6, 8)
	n.SetSubMatrix(2, 3, sub)
	if n.SubMatrix(2, 3, 3, 4).MaxAbsDiff(sub) != 0 {
		t.Fatal("SubMatrix/SetSubMatrix round trip failed")
	}
}

func TestPhantomPropagation(t *testing.T) {
	ph := NewPhantom(3, 4)
	real := New(4, 5)
	if got := MatMul(ph, real); !got.Phantom() || got.Rows != 3 || got.Cols != 5 {
		t.Fatalf("MatMul phantom: %v", got)
	}
	if got := Transpose(ph); !got.Phantom() || got.Rows != 4 {
		t.Fatal("Transpose phantom")
	}
	if got := Add(ph, NewPhantom(3, 4)); !got.Phantom() {
		t.Fatal("Add phantom")
	}
	if got := SoftmaxRows(ph); !got.Phantom() {
		t.Fatal("SoftmaxRows phantom")
	}
	if got := GELU(ph); !got.Phantom() {
		t.Fatal("GELU phantom")
	}
	if got := ph.SubMatrix(1, 1, 2, 2); !got.Phantom() {
		t.Fatal("SubMatrix phantom")
	}
	if got := ColSums(ph); !got.Phantom() || got.Cols != 4 {
		t.Fatal("ColSums phantom")
	}
	if got := HCat(ph, New(3, 2)); !got.Phantom() || got.Cols != 6 {
		t.Fatal("HCat phantom")
	}
	if got := VCat(ph, New(2, 4)); !got.Phantom() || got.Rows != 5 {
		t.Fatal("VCat phantom")
	}
}

func TestPhantomElementAccessPanics(t *testing.T) {
	defer expectPanic(t, "At on phantom")
	NewPhantom(2, 2).At(0, 0)
}

func TestAllClose(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1 + 1e-12, 2}})
	if !a.AllClose(b, 1e-9) {
		t.Fatal("AllClose should accept tiny differences")
	}
	c := FromRows([][]float64{{1.1, 2}})
	if a.AllClose(c, 1e-9) {
		t.Fatal("AllClose should reject large differences")
	}
}

func TestRowColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	rs := RowSums(m)
	if rs.At(0, 0) != 6 || rs.At(1, 0) != 15 {
		t.Fatalf("RowSums wrong: %v", rs)
	}
	cs := ColSums(m)
	if cs.At(0, 0) != 5 || cs.At(0, 1) != 7 || cs.At(0, 2) != 9 {
		t.Fatalf("ColSums wrong: %v", cs)
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	v := FromRows([][]float64{{10, 20}})
	got := AddRowVector(m, v)
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if got.MaxAbsDiff(want) != 0 {
		t.Fatalf("AddRowVector wrong: %v", got)
	}
}

func TestColVectorOps(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	v := FromRows([][]float64{{10}, {100}})
	if got := AddColVector(m, v); got.At(1, 1) != 104 {
		t.Fatalf("AddColVector wrong: %v", got)
	}
	if got := SubColVector(m, v); got.At(0, 0) != -9 {
		t.Fatalf("SubColVector wrong: %v", got)
	}
	if got := MulColVector(m, v); got.At(1, 0) != 300 {
		t.Fatalf("MulColVector wrong: %v", got)
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromRows([][]float64{{1, 5, 2}, {9, 0, 3}})
	got := ArgmaxRows(m)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows wrong: %v", got)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := RandomMatrix(1+rng.Intn(5), 1+rng.Intn(6), rng)
		ScaleInPlace(m, 10)
		s := SoftmaxRows(m)
		sums := RowSums(s)
		for i := 0; i < sums.Rows; i++ {
			if math.Abs(sums.At(i, 0)-1) > 1e-12 {
				return false
			}
			for j := 0; j < s.Cols; j++ {
				if s.At(i, j) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	m := FromRows([][]float64{{1000, 1001, 1002}})
	s := SoftmaxRows(m)
	if math.IsNaN(s.At(0, 0)) || math.IsInf(s.At(0, 2), 0) {
		t.Fatal("softmax overflowed on large inputs")
	}
}

func TestSoftmaxBackwardFiniteDifference(t *testing.T) {
	rng := NewRNG(3)
	x := RandomMatrix(2, 4, rng)
	ds := RandomMatrix(2, 4, rng)
	s := SoftmaxRows(x)
	grad := SoftmaxRowsBackward(s, ds)
	const eps = 1e-6
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			orig := x.At(i, j)
			x.Set(i, j, orig+eps)
			up := SoftmaxRows(x)
			x.Set(i, j, orig-eps)
			dn := SoftmaxRows(x)
			x.Set(i, j, orig)
			var fd float64
			for c := 0; c < x.Cols; c++ {
				fd += ds.At(i, c) * (up.At(i, c) - dn.At(i, c)) / (2 * eps)
			}
			if math.Abs(fd-grad.At(i, j)) > 1e-6 {
				t.Fatalf("softmax grad (%d,%d): fd=%g analytic=%g", i, j, fd, grad.At(i, j))
			}
		}
	}
}

func TestGELUGradFiniteDifference(t *testing.T) {
	for _, x := range []float64{-3, -1, -0.1, 0, 0.1, 1, 3} {
		const eps = 1e-6
		fd := (geluScalar(x+eps) - geluScalar(x-eps)) / (2 * eps)
		if math.Abs(fd-geluGradScalar(x)) > 1e-6 {
			t.Fatalf("gelu grad at %g: fd=%g analytic=%g", x, fd, geluGradScalar(x))
		}
	}
}

func TestFrobeniusAndSum(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if Frobenius(m) != 5 {
		t.Fatalf("Frobenius = %g", Frobenius(m))
	}
	if Sum(m) != 7 {
		t.Fatalf("Sum = %g", Sum(m))
	}
}

func expectPanic(t *testing.T, name string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s: expected panic", name)
	}
}
