//go:build amd64

package tensor

// amd64 microkernels: AVX2 vectorisation over the output columns with
// separate multiply and add instructions (never FMA), so every C element
// sees exactly the scalar kernel's sequence of individually rounded
// operations — the optimised path is bitwise identical to the naive one.
// Detection happens at init; pre-AVX2 machines keep the portable kernels.

// accum4 and axpy are the microkernels the blocked GEMM drivers call; on
// amd64 init rebinds them to the AVX2 versions when the CPU qualifies.
var (
	accum4 = accum4Generic
	axpy   = axpyGeneric
)

// cpuHasAVX2 reports AVX2 plus OS support for YMM state (CPUID + XGETBV).
func cpuHasAVX2() bool

//go:noescape
func accum4Ptr(c, b0, b1, b2, b3 *float64, n int, a0, a1, a2, a3 float64)

//go:noescape
func axpyPtr(c, b *float64, n int, a float64)

//go:noescape
func nnRow8Ptr(c, a, b *float64, k int)

//go:noescape
func nnRow4Ptr(c, a, b *float64, k int)

//go:noescape
func nnRow8x2Ptr(c0, c1, a0, a1, b *float64, k int)

//go:noescape
func nnRow4x2Ptr(c0, c1, a0, a1, b *float64, k int)

func init() {
	if cpuHasAVX2() {
		accum4 = accum4AVX2
		axpy = axpyAVX2
		nnRowNarrow = nnRowNarrowAVX2
	}
}

// nnRowNarrowAVX2 runs the NN kernel over C rows [i0, i1) when C is 4 or 8
// columns wide — the per-rank projection widths of the test models — keeping
// each C row in YMM registers across the full k loop. Rows are processed in
// pairs so the two accumulation chains hide each other's add latency; the
// per-row, per-element operation order is exactly the general kernel's.
func nnRowNarrowAVX2(c, a, b *Matrix, i0, i1 int) bool {
	n, k := b.Cols, a.Cols
	switch n {
	case 8:
		_ = b.Data[k*8-1]
		i := i0
		for ; i+2 <= i1; i += 2 {
			nnRow8x2Ptr(&c.Data[i*8], &c.Data[(i+1)*8], &a.Data[i*k], &a.Data[(i+1)*k], &b.Data[0], k)
		}
		for ; i < i1; i++ {
			nnRow8Ptr(&c.Data[i*8], &a.Data[i*k], &b.Data[0], k)
		}
	case 4:
		_ = b.Data[k*4-1]
		i := i0
		for ; i+2 <= i1; i += 2 {
			nnRow4x2Ptr(&c.Data[i*4], &c.Data[(i+1)*4], &a.Data[i*k], &a.Data[(i+1)*k], &b.Data[0], k)
		}
		for ; i < i1; i++ {
			nnRow4Ptr(&c.Data[i*4], &a.Data[i*k], &b.Data[0], k)
		}
	default:
		return false
	}
	return true
}

func accum4AVX2(c, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	if len(c) == 0 {
		return
	}
	_ = b0[len(c)-1]
	_ = b1[len(c)-1]
	_ = b2[len(c)-1]
	_ = b3[len(c)-1]
	accum4Ptr(&c[0], &b0[0], &b1[0], &b2[0], &b3[0], len(c), a0, a1, a2, a3)
}

func axpyAVX2(c, b []float64, a float64) {
	if len(c) == 0 {
		return
	}
	_ = b[len(c)-1]
	axpyPtr(&c[0], &b[0], len(c), a)
}
