//go:build amd64

package tensor

// amd64 microkernels: AVX2 vectorisation over the output columns with
// separate multiply and add instructions (never FMA), so every C element
// sees exactly the scalar kernel's sequence of individually rounded
// operations — the optimised path is bitwise identical to the naive one.
// Detection happens at init; pre-AVX2 machines keep the portable kernels.

// accum4 and axpy are the microkernels the blocked GEMM drivers call; on
// amd64 init rebinds them to the AVX2 versions when the CPU qualifies.
var (
	accum4 = accum4Generic
	axpy   = axpyGeneric
)

// cpuHasAVX2 reports AVX2 plus OS support for YMM state (CPUID + XGETBV).
func cpuHasAVX2() bool

//go:noescape
func accum4Ptr(c, b0, b1, b2, b3 *float64, n int, a0, a1, a2, a3 float64)

//go:noescape
func axpyPtr(c, b *float64, n int, a float64)

func init() {
	if cpuHasAVX2() {
		accum4 = accum4AVX2
		axpy = axpyAVX2
	}
}

func accum4AVX2(c, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	if len(c) == 0 {
		return
	}
	_ = b0[len(c)-1]
	_ = b1[len(c)-1]
	_ = b2[len(c)-1]
	_ = b3[len(c)-1]
	accum4Ptr(&c[0], &b0[0], &b1[0], &b2[0], &b3[0], len(c), a0, a1, a2, a3)
}

func axpyAVX2(c, b []float64, a float64) {
	if len(c) == 0 {
		return
	}
	_ = b[len(c)-1]
	axpyPtr(&c[0], &b[0], len(c), a)
}
