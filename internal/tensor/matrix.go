// Package tensor implements the dense linear algebra used by the Tesseract
// reproduction: a row-major float64 matrix type, GEMM variants, elementwise
// operations, reductions, and a deterministic random number generator.
//
// Matrices come in two flavours:
//
//   - real matrices carry data and support arithmetic;
//   - phantom matrices (Data == nil) carry only a shape. Every operation in
//     this package propagates phantomness: combining a phantom operand yields
//     a phantom result of the correct shape and performs no arithmetic.
//
// Phantom matrices let the distributed algorithms in this repository run at
// paper scale (hidden sizes of 8192 and beyond) purely for communication and
// flop accounting, while the identical code path runs on real data at small
// scale for correctness testing.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix. The zero value is an empty matrix.
// If Data is nil but Rows*Cols > 0 the matrix is a phantom: it has a shape
// but no storage (see the package comment).
type Matrix struct {
	Rows, Cols int
	Data       []float64

	// Workspace bookkeeping, intrusive so the pool's hot path needs no map
	// of checked-out buffers: ws is the pool this matrix is currently
	// checked out of (nil otherwise), wsIdx its slot in that pool's
	// checked-out list, bucket its home free list, and borrows the number
	// of in-flight nonblocking collectives currently reading or writing it
	// (see Workspace.Borrow).
	ws      *Workspace
	wsIdx   int32
	borrows int32
	bucket  *wsBucket
}

// New returns a zero-initialised Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	checkDims(rows, cols)
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewPhantom returns a shape-only matrix with no backing storage.
func NewPhantom(rows, cols int) *Matrix {
	checkDims(rows, cols)
	return &Matrix{Rows: rows, Cols: cols}
}

// FromSlice wraps data (length rows*cols, row-major) in a Matrix without
// copying. It panics if the length does not match.
func FromSlice(rows, cols int, data []float64) *Matrix {
	checkDims(rows, cols)
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return &Matrix{}
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: FromRows ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

func checkDims(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
}

// Phantom reports whether m is shape-only.
func (m *Matrix) Phantom() bool { return m.Data == nil && m.Rows*m.Cols > 0 }

// Size returns the number of elements.
func (m *Matrix) Size() int { return m.Rows * m.Cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.bounds(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.bounds(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) bounds(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	if m.Data == nil {
		panic("tensor: element access on phantom matrix")
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.Rows))
	}
	if m.Data == nil {
		panic("tensor: Row on phantom matrix")
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy (phantoms clone to phantoms).
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols}
	if m.Data != nil {
		out.Data = make([]float64, len(m.Data))
		copy(out.Data, m.Data)
	}
	return out
}

// CopyInto copies src's elements into dst (equal shapes required). It is a
// no-op when either side is phantom and when dst and src are the same
// matrix, so collectives can treat "destination equals payload" uniformly.
func CopyInto(dst, src *Matrix) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: CopyInto %dx%d from %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	if dst == src {
		return
	}
	if (dst.Data == nil) != (src.Data == nil) {
		panic(fmt.Sprintf("tensor: CopyInto phantomness mismatch (dst phantom=%v, src phantom=%v)", dst.Data == nil, src.Data == nil))
	}
	copy(dst.Data, src.Data)
}

// SubMatrixInto copies the dst.Rows×dst.Cols block of src starting at
// (r0, c0) into dst — the pooled counterpart of SubMatrix. No-op when either
// side is phantom.
func SubMatrixInto(dst, src *Matrix, r0, c0 int) {
	if r0 < 0 || c0 < 0 || r0+dst.Rows > src.Rows || c0+dst.Cols > src.Cols {
		panic(fmt.Sprintf("tensor: SubMatrixInto (%d,%d)+%dx%d out of %dx%d", r0, c0, dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	if dst.Data == nil || src.Data == nil {
		return
	}
	for i := 0; i < dst.Rows; i++ {
		copy(dst.Data[i*dst.Cols:(i+1)*dst.Cols], src.Data[(r0+i)*src.Cols+c0:(r0+i)*src.Cols+c0+dst.Cols])
	}
}

// SameShape reports whether m and n have identical dimensions.
func (m *Matrix) SameShape(n *Matrix) bool { return m.Rows == n.Rows && m.Cols == n.Cols }

// Zero sets every element to 0 (no-op on phantoms).
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v (no-op on phantoms).
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// String renders small matrices for debugging; large ones render as a shape.
func (m *Matrix) String() string {
	if m.Phantom() {
		return fmt.Sprintf("phantom[%dx%d]", m.Rows, m.Cols)
	}
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("matrix[%dx%d]", m.Rows, m.Cols)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "matrix[%dx%d]{", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
	}
	b.WriteByte('}')
	return b.String()
}

// ErrShape is returned (wrapped) by checked operations when shapes disagree.
var ErrShape = errors.New("tensor: shape mismatch")

// MaxAbsDiff returns the largest absolute element difference between m and n.
// It panics on shape mismatch and returns 0 when either operand is phantom.
func (m *Matrix) MaxAbsDiff(n *Matrix) float64 {
	if !m.SameShape(n) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff %dx%d vs %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	if m.Data == nil || n.Data == nil {
		return 0
	}
	var d float64
	for i := range m.Data {
		if v := math.Abs(m.Data[i] - n.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// AllClose reports whether every element of m is within tol of n, using a
// combined absolute/relative criterion |a-b| <= tol*(1+max(|a|,|b|)).
func (m *Matrix) AllClose(n *Matrix, tol float64) bool {
	if !m.SameShape(n) {
		return false
	}
	if m.Data == nil || n.Data == nil {
		return m.Data == nil && n.Data == nil
	}
	for i := range m.Data {
		a, b := m.Data[i], n.Data[i]
		scale := math.Max(math.Abs(a), math.Abs(b))
		if math.Abs(a-b) > tol*(1+scale) {
			return false
		}
	}
	return true
}

// Equal reports exact element equality (and equal shape).
func (m *Matrix) Equal(n *Matrix) bool { return m.MaxAbsDiffOK(n) }

func (m *Matrix) MaxAbsDiffOK(n *Matrix) bool {
	if !m.SameShape(n) {
		return false
	}
	if m.Data == nil || n.Data == nil {
		return m.Data == nil && n.Data == nil
	}
	for i := range m.Data {
		if m.Data[i] != n.Data[i] {
			return false
		}
	}
	return true
}

// SubMatrix copies the block [r0:r0+rows, c0:c0+cols] into a new matrix.
// Phantom input yields a phantom block.
func (m *Matrix) SubMatrix(r0, c0, rows, cols int) *Matrix {
	if r0 < 0 || c0 < 0 || r0+rows > m.Rows || c0+cols > m.Cols {
		panic(fmt.Sprintf("tensor: SubMatrix (%d,%d,%d,%d) out of %dx%d", r0, c0, rows, cols, m.Rows, m.Cols))
	}
	if m.Data == nil {
		return NewPhantom(rows, cols)
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		copy(out.Data[i*cols:(i+1)*cols], m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+cols])
	}
	return out
}

// SetSubMatrix copies src into m starting at (r0, c0). No-op when either side
// is phantom.
func (m *Matrix) SetSubMatrix(r0, c0 int, src *Matrix) {
	if r0 < 0 || c0 < 0 || r0+src.Rows > m.Rows || c0+src.Cols > m.Cols {
		panic(fmt.Sprintf("tensor: SetSubMatrix (%d,%d)+%dx%d out of %dx%d", r0, c0, src.Rows, src.Cols, m.Rows, m.Cols))
	}
	if m.Data == nil || src.Data == nil {
		return
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Data[i*src.Cols:(i+1)*src.Cols])
	}
}

// Partition splits m into an rBlocks×cBlocks grid of equal blocks and returns
// them in row-major block order. It panics unless the dimensions divide
// evenly. Phantom input yields phantom blocks.
func (m *Matrix) Partition(rBlocks, cBlocks int) []*Matrix {
	if rBlocks <= 0 || cBlocks <= 0 || m.Rows%rBlocks != 0 || m.Cols%cBlocks != 0 {
		panic(fmt.Sprintf("tensor: cannot partition %dx%d into %dx%d blocks", m.Rows, m.Cols, rBlocks, cBlocks))
	}
	br, bc := m.Rows/rBlocks, m.Cols/cBlocks
	out := make([]*Matrix, 0, rBlocks*cBlocks)
	for i := 0; i < rBlocks; i++ {
		for j := 0; j < cBlocks; j++ {
			out = append(out, m.SubMatrix(i*br, j*bc, br, bc))
		}
	}
	return out
}

// Combine reassembles an rBlocks×cBlocks grid of equal blocks (row-major
// block order, as produced by Partition) into one matrix.
func Combine(rBlocks, cBlocks int, blocks []*Matrix) *Matrix {
	if len(blocks) != rBlocks*cBlocks {
		panic(fmt.Sprintf("tensor: Combine got %d blocks for %dx%d grid", len(blocks), rBlocks, cBlocks))
	}
	br, bc := blocks[0].Rows, blocks[0].Cols
	phantom := false
	for _, b := range blocks {
		if b.Rows != br || b.Cols != bc {
			panic("tensor: Combine blocks of unequal shape")
		}
		if b.Data == nil {
			phantom = true
		}
	}
	if phantom {
		return NewPhantom(rBlocks*br, cBlocks*bc)
	}
	out := New(rBlocks*br, cBlocks*bc)
	for i := 0; i < rBlocks; i++ {
		for j := 0; j < cBlocks; j++ {
			out.SetSubMatrix(i*br, j*bc, blocks[i*cBlocks+j])
		}
	}
	return out
}
