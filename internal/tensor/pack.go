package tensor

// Panel packing. The vectorised NN microkernels (accum4/axpy and the
// narrow-row kernels) want B as a contiguous row-major [k, n] panel so every
// inner step streams whole cache lines. Each GEMM orientation reaches that
// layout differently:
//
//   - NN: B already *is* a row-major [k, n] panel — the identity packing.
//     Copying it into scratch would add traffic without changing a single
//     access pattern, so NN runs in place by construction.
//   - NT: Bᵀ is needed; transposeInto packs B into a [k, n] scratch panel
//     once, then the NN kernels run over the panel (PR 3, extended here).
//   - TN: Aᵀ is needed on the *left*. transposeInto packs A into an
//     [a.Cols, a.Rows] panel and the NN kernels accumulate C += panel·B —
//     replacing the axpy-per-l TN kernel, whose C-row load/store per l made
//     C traffic grow with k.
//
// Every packed path performs, per C element, the same ascending-k sequence
// of individually rounded multiplies and adds as the in-place kernel and
// the naive reference, because packing only relocates operands (and an IEEE
// multiply reads the same either side of a copy). The packed results are
// therefore bitwise identical — see TestMatMulNTPackedMatchesNaiveBitwise
// and TestMatMulTNPackedMatchesNaiveBitwise.
// packMinRows: the transpose touches every panel element once, the GEMM
// reads the panel once per C row — so the pack amortises once a handful of
// rows reuse it. Below the floor (single-row products, bias-shaped blocks)
// the scratch-free kernels win.
const packMinRows = 4

// NTPackProfitable reports whether C = A·Bᵀ of shape [m, n] = [m, k]·[n, k]ᵀ
// is worth the packed path's [k, n] scratch panel. Callers that can supply
// pooled scratch (compute.MatMulNTInto) consult it before drawing a buffer.
func NTPackProfitable(m, n, k int) bool {
	return m >= packMinRows
}

// TNPackProfitable reports whether C += Aᵀ·B of shape [m, n] += [k, m]ᵀ·[k, n]
// is worth the packed path's [m, k] scratch panel.
func TNPackProfitable(m, n, k int) bool {
	return m >= packMinRows
}

// matMulNTPacked computes C = A·Bᵀ by packing Bᵀ into the caller-supplied
// [k, n] panel and accumulating with the NN kernels from a zeroed C. The
// epilogue, when set, is fused into the write-back of the final C rows.
func matMulNTPacked(c, a, b, pack *Matrix, epi epilogue) {
	transposeInto(pack, b)
	c.Zero()
	matMulAccum(c, a, pack, epi)
}

// matMulTNPacked computes C += Aᵀ·B by packing Aᵀ into the caller-supplied
// [a.Cols, a.Rows] panel and running the NN kernels. C is accumulated, not
// overwritten, matching the TN kernel contract.
func matMulTNPacked(c, a, b, pack *Matrix) {
	transposeInto(pack, a)
	matMulAccum(c, pack, b, epilogue{})
}

// transposeInto writes srcᵀ into dst ([src.Cols, src.Rows]). Eight-row
// strips within 64-column tiles: each inner iteration reads one element
// from eight source rows and writes eight contiguous destination elements —
// one cache line per store. (The earlier 32×32-tile version scattered
// stores across 32 destination rows; at power-of-two dimensions those
// strides alias in L1 and the transpose cost more than 10× this one.)
func transposeInto(dst, src *Matrix) {
	const jt = 64
	rows, cols := src.Rows, src.Cols
	for j0 := 0; j0 < cols; j0 += jt {
		j1 := j0 + jt
		if j1 > cols {
			j1 = cols
		}
		i := 0
		for ; i+8 <= rows; i += 8 {
			r0 := src.Data[i*cols : (i+1)*cols]
			r1 := src.Data[(i+1)*cols : (i+2)*cols]
			r2 := src.Data[(i+2)*cols : (i+3)*cols]
			r3 := src.Data[(i+3)*cols : (i+4)*cols]
			r4 := src.Data[(i+4)*cols : (i+5)*cols]
			r5 := src.Data[(i+5)*cols : (i+6)*cols]
			r6 := src.Data[(i+6)*cols : (i+7)*cols]
			r7 := src.Data[(i+7)*cols : (i+8)*cols]
			for j := j0; j < j1; j++ {
				d := dst.Data[j*rows+i : j*rows+i+8 : j*rows+i+8]
				d[0], d[1], d[2], d[3] = r0[j], r1[j], r2[j], r3[j]
				d[4], d[5], d[6], d[7] = r4[j], r5[j], r6[j], r7[j]
			}
		}
		for ; i < rows; i++ {
			row := src.Data[i*cols : (i+1)*cols]
			for j := j0; j < j1; j++ {
				dst.Data[j*rows+i] = row[j]
			}
		}
	}
}
