package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatal("different seeds should produce different streams")
	}
}

func TestFloat64Range(t *testing.T) {
	rng := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := rng.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	rng := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := rng.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn should hit all values, got %d", len(seen))
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := rng.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %g too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(13)
	p := rng.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestXavierBounds(t *testing.T) {
	rng := NewRNG(17)
	in, out := 30, 50
	m := XavierMatrix(in, out, rng)
	limit := math.Sqrt(6 / float64(in+out))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %g outside ±%g", v, limit)
		}
	}
	// The draw must be non-degenerate.
	if Frobenius(m) == 0 {
		t.Fatal("Xavier matrix is all zeros")
	}
}

func TestSplitIndependence(t *testing.T) {
	rng := NewRNG(19)
	a := rng.Split()
	b := rng.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams should differ")
	}
}

func TestRandomMatrixRange(t *testing.T) {
	rng := NewRNG(23)
	m := RandomMatrix(10, 10, rng)
	for _, v := range m.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("RandomMatrix value %g outside [-1,1)", v)
		}
	}
}

func TestNormalMatrixStddev(t *testing.T) {
	rng := NewRNG(29)
	m := NormalMatrix(100, 100, 0.02, rng)
	var sumSq float64
	for _, v := range m.Data {
		sumSq += v * v
	}
	sd := math.Sqrt(sumSq / float64(m.Size()))
	if math.Abs(sd-0.02) > 0.002 {
		t.Fatalf("NormalMatrix stddev %g, want ~0.02", sd)
	}
}
