package tensor

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. It is used for
// every initialisation and dataset in the repository so that experiments are
// reproducible bit-for-bit from a seed, independent of the Go runtime's
// global randomness.
type RNG struct {
	state uint64
	// spare holds a cached Box-Muller normal deviate.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a standard normal deviate via Box-Muller.
func (r *RNG) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Split returns an independent generator derived from r; useful for giving
// each layer or shard its own stream while keeping global determinism.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// RandomMatrix returns a rows×cols matrix of uniform deviates in [-1, 1).
func RandomMatrix(rows, cols int, rng *RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// NormalMatrix returns a rows×cols matrix of N(0, stddev²) deviates.
func NormalMatrix(rows, cols int, stddev float64, rng *RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = stddev * rng.Normal()
	}
	return m
}

// XavierMatrix returns a rows×cols matrix with Xavier/Glorot uniform
// initialisation, the scheme the paper uses for its parameter matrices:
// U(−√(6/(fanIn+fanOut)), +√(6/(fanIn+fanOut))) with fanIn=rows, fanOut=cols.
func XavierMatrix(rows, cols int, rng *RNG) *Matrix {
	limit := math.Sqrt(6 / float64(rows+cols))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = limit * (2*rng.Float64() - 1)
	}
	return m
}
