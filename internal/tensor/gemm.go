package tensor

import (
	"runtime"
	"sync"
)

// GEMM execution strategy. The three kernels (NN accumulate, NT, TN) share
// the same structure:
//
//   - an inner microkernel that is vectorised on amd64 (see gemm_amd64.s)
//     with a pure-Go fallback, both accumulating every C element in
//     ascending-k order with separate multiply and add roundings — so the
//     optimised kernels are bitwise identical to the naive reference
//     kernels kept in naive.go;
//   - cache blocking: the NN kernel tiles k so a panel of B rows stays
//     resident while a block of C rows streams through, and the TN kernel
//     holds four C rows L1-hot while B streams once (NT is dot-product
//     shaped and needs only register blocking);
//   - row-band goroutine parallelism over the rows of C, gated behind a
//     flop threshold so tiny test matrices stay serial. Banding never
//     changes results: each C row's arithmetic is independent and
//     identical in any band split.
const (
	// gemmKC is the k-tile: gemmKC rows of B (×8 bytes×n columns) form the
	// panel reused across a block of C rows.
	gemmKC = 256
	// gemmParallelFlops gates goroutine banding: below 2·m·n·k of one
	// million flops the spawn overhead outweighs the help.
	gemmParallelFlops = 1 << 20
)

// gemmBands picks the number of row bands for a kernel of the given flop
// count and row count.
func gemmBands(flops float64, rows int) int {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 || flops < gemmParallelFlops || rows < 2 {
		return 1
	}
	if procs > rows {
		return rows
	}
	return procs
}

// bandRange splits [0, rows) into bands of near-equal size.
func bandRange(rows, band, bands int) (int, int) {
	lo := rows * band / bands
	hi := rows * (band + 1) / bands
	return lo, hi
}

// runBanded executes fn over row bands, in place for a single band and on
// one goroutine per band otherwise.
func runBanded(rows, bands int, fn func(i0, i1 int)) {
	if bands <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	for b := 0; b < bands; b++ {
		i0, i1 := bandRange(rows, b, bands)
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i0, i1)
		}()
	}
	wg.Wait()
}

// matMulAccum computes C += A·B on real matrices (the shared kernel behind
// MatMul and MatMulInto). The single-band fast path avoids constructing the
// banding closure, which would otherwise be the only allocation of a small
// GEMM — the training hot path must stay allocation-free.
func matMulAccum(c, a, b *Matrix) {
	flops := 2 * float64(a.Rows) * float64(b.Cols) * float64(a.Cols)
	bands := gemmBands(flops, a.Rows)
	if bands <= 1 {
		matMulAccumRows(c, a, b, 0, a.Rows)
		return
	}
	runBanded(a.Rows, bands, func(i0, i1 int) {
		matMulAccumRows(c, a, b, i0, i1)
	})
}

// matMulAccumRows runs the NN kernel over C rows [i0, i1): k-tiled, with a
// four-row microkernel that reuses the loaded C row across four B rows.
func matMulAccumRows(c, a, b *Matrix, i0, i1 int) {
	n, k := b.Cols, a.Cols
	if n == 0 || k == 0 {
		return
	}
	for kc := 0; kc < k; kc += gemmKC {
		kend := kc + gemmKC
		if kend > k {
			kend = k
		}
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			l := kc
			for ; l+4 <= kend; l += 4 {
				accum4(crow,
					b.Data[l*n:(l+1)*n],
					b.Data[(l+1)*n:(l+2)*n],
					b.Data[(l+2)*n:(l+3)*n],
					b.Data[(l+3)*n:(l+4)*n],
					arow[l], arow[l+1], arow[l+2], arow[l+3])
			}
			for ; l < kend; l++ {
				axpy(crow, b.Data[l*n:(l+1)*n], arow[l])
			}
		}
	}
}

// NT packing. The plain NT kernel is dot-product shaped: every C element
// walks one A row and one B row, so nothing vectorises beyond 2×2 register
// blocking and NT256 runs at roughly half the NN/TN rate. Above the
// threshold below it pays to transpose B once into a row-major [k, n]
// panel and run the NN microkernels (vectorised axpy/accum4) over the
// packed panel instead. Both paths accumulate every C element in ascending
// k order with individually rounded multiplies and adds, so they are
// bitwise identical to each other and to the naive reference — see
// TestMatMulNTPackedMatchesNaiveBitwise and the NT256 rows of
// BenchmarkGEMMKernels for the proof and the justification.
const (
	// ntPackMinRows: with fewer A rows the packed panel is read too few
	// times to amortise the transpose.
	ntPackMinRows = 16
	// ntPackMinFlops keeps tiny multiplies (attention heads, bias-sized
	// blocks) on the scratch-free kernel.
	ntPackMinFlops = 1 << 20
)

// NTPackProfitable reports whether C = A·Bᵀ of shape [m, n] = [m, k]·[n, k]ᵀ
// is worth the packed path's [k, n] scratch panel. Callers that can supply
// pooled scratch (compute.MatMulNTInto) consult it before drawing a buffer.
func NTPackProfitable(m, n, k int) bool {
	return m >= ntPackMinRows && 2*float64(m)*float64(n)*float64(k) >= ntPackMinFlops
}

// matMulNTPacked computes C = A·Bᵀ by packing Bᵀ into the caller-supplied
// [k, n] panel and accumulating with the NN kernel from a zeroed C.
func matMulNTPacked(c, a, b, pack *Matrix) {
	transposeInto(pack, b)
	c.Zero()
	matMulAccum(c, a, pack)
}

// transposeInto writes srcᵀ into dst ([src.Cols, src.Rows]) in cache-blocked
// tiles.
func transposeInto(dst, src *Matrix) {
	const tile = 32
	rows, cols := src.Rows, src.Cols
	for i0 := 0; i0 < rows; i0 += tile {
		i1 := i0 + tile
		if i1 > rows {
			i1 = rows
		}
		for j0 := 0; j0 < cols; j0 += tile {
			j1 := j0 + tile
			if j1 > cols {
				j1 = cols
			}
			for i := i0; i < i1; i++ {
				row := src.Data[i*cols : (i+1)*cols]
				for j := j0; j < j1; j++ {
					dst.Data[j*rows+i] = row[j]
				}
			}
		}
	}
}

// matMulNTKernel computes C = A·Bᵀ on real matrices (it overwrites C, never
// reading it).
func matMulNTKernel(c, a, b *Matrix) {
	flops := 2 * float64(a.Rows) * float64(b.Rows) * float64(a.Cols)
	bands := gemmBands(flops, a.Rows)
	if bands <= 1 {
		matMulNTRows(c, a, b, 0, a.Rows)
		return
	}
	runBanded(a.Rows, bands, func(i0, i1 int) {
		matMulNTRows(c, a, b, i0, i1)
	})
}

// matMulNTRows runs the NT kernel over C rows [i0, i1): 2×2 register
// blocking of independent dot products, each accumulated in plain k order.
func matMulNTRows(c, a, b *Matrix, i0, i1 int) {
	k, n := a.Cols, b.Rows
	i := i0
	for ; i+2 <= i1; i += 2 {
		a0 := a.Data[i*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		c0 := c.Data[i*n : (i+1)*n]
		c1 := c.Data[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			var s00, s01, s10, s11 float64
			for l, av0 := range a0 {
				av1 := a1[l]
				bv0, bv1 := b0[l], b1[l]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
			}
			c0[j], c0[j+1] = s00, s01
			c1[j], c1[j+1] = s10, s11
		}
		for ; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s0, s1 float64
			for l, av0 := range a0 {
				s0 += av0 * brow[l]
				s1 += a1[l] * brow[l]
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for ; i < i1; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for l, av := range arow {
				s += av * brow[l]
			}
			crow[j] = s
		}
	}
}

// matMulTNKernel computes C = Aᵀ·B on real matrices (C pre-zeroed).
func matMulTNKernel(c, a, b *Matrix) {
	flops := 2 * float64(a.Cols) * float64(b.Cols) * float64(a.Rows)
	bands := gemmBands(flops, a.Cols)
	if bands <= 1 {
		matMulTNRows(c, a, b, 0, a.Cols)
		return
	}
	runBanded(a.Cols, bands, func(i0, i1 int) {
		matMulTNRows(c, a, b, i0, i1)
	})
}

// matMulTNRows runs the TN kernel over C rows [i0, i1) (columns of A):
// blocks of four C rows stay L1-resident while B streams through once, and
// every element still accumulates in ascending-l order like the naive
// kernel — the dense-friendly replacement for the old zero-skip loop.
func matMulTNRows(c, a, b *Matrix, i0, i1 int) {
	m, ac, n := a.Rows, a.Cols, b.Cols
	if n == 0 {
		return
	}
	i := i0
	for ; i+4 <= i1; i += 4 {
		c0 := c.Data[i*n : (i+1)*n]
		c1 := c.Data[(i+1)*n : (i+2)*n]
		c2 := c.Data[(i+2)*n : (i+3)*n]
		c3 := c.Data[(i+3)*n : (i+4)*n]
		for l := 0; l < m; l++ {
			arow := a.Data[l*ac : (l+1)*ac]
			brow := b.Data[l*n : (l+1)*n]
			axpy(c0, brow, arow[i])
			axpy(c1, brow, arow[i+1])
			axpy(c2, brow, arow[i+2])
			axpy(c3, brow, arow[i+3])
		}
	}
	for ; i < i1; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for l := 0; l < m; l++ {
			axpy(crow, b.Data[l*n:(l+1)*n], a.Data[l*ac+i])
		}
	}
}

// accum4Generic is the portable microkernel: c[j] += a0·b0[j], then
// a1·b1[j], a2·b2[j], a3·b3[j] — four ascending-k accumulation steps with
// individually rounded multiplies and adds, exactly like the naive loop.
func accum4Generic(c, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	_ = b0[len(c)-1]
	_ = b1[len(c)-1]
	_ = b2[len(c)-1]
	_ = b3[len(c)-1]
	for j := range c {
		s := c[j]
		s += a0 * b0[j]
		s += a1 * b1[j]
		s += a2 * b2[j]
		s += a3 * b3[j]
		c[j] = s
	}
}

// axpyGeneric is the portable single-row microkernel: c[j] += a·b[j].
func axpyGeneric(c, b []float64, a float64) {
	_ = b[len(c)-1]
	for j := range c {
		c[j] += a * b[j]
	}
}
