package tensor

import "runtime"

// GEMM execution strategy. The three kernels (NN accumulate, NT, TN) share
// the same structure:
//
//   - an inner microkernel that is vectorised on amd64 (see gemm_amd64.s)
//     with a pure-Go fallback, both accumulating every C element in
//     ascending-k order with separate multiply and add roundings — so the
//     optimised kernels are bitwise identical to the naive reference
//     kernels kept in naive.go;
//   - cache blocking: the NN kernel tiles k so a panel of B rows stays
//     resident while a block of C rows streams through, and the NT/TN
//     kernels pack their transposed operand into a contiguous panel above a
//     size threshold (see pack.go) so the same NN microkernels serve all
//     three orientations;
//   - row-band parallelism over the rows of C through the persistent worker
//     pool (pool.go), gated behind a flop threshold so tiny test matrices
//     stay serial. Banding never changes results: each C row's arithmetic
//     is independent and identical in any band split.
const (
	// gemmKC is the k-tile: gemmKC rows of B (×8 bytes×n columns) form the
	// panel reused across a block of C rows.
	gemmKC = 256
	// gemmParallelFlops gates row banding: below 2·m·n·k of one million
	// flops the hand-off overhead outweighs the help.
	gemmParallelFlops = 1 << 20
)

// gemmBands picks the number of row bands for a kernel of the given flop
// count and row count.
func gemmBands(flops float64, rows int) int {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 || flops < gemmParallelFlops || rows < 2 {
		return 1
	}
	if procs > rows {
		return rows
	}
	return procs
}

// bandRange splits [0, rows) into bands of near-equal size.
func bandRange(rows, band, bands int) (int, int) {
	lo := rows * band / bands
	hi := rows * (band + 1) / bands
	return lo, hi
}

// matMulAccum computes C += A·B on real matrices (the shared kernel behind
// MatMul, MatMulInto and the packed NT/TN paths), applying the epilogue to
// each band of C rows as it finishes.
func matMulAccum(c, a, b *Matrix, epi epilogue) {
	flops := 2 * float64(a.Rows) * float64(b.Cols) * float64(a.Cols)
	t := gemmTask{op: opNN, c: c, a: a, b: b, epi: epi}
	runGEMM(&t, a.Rows, gemmBands(flops, a.Rows))
}

// nnRowNarrow, when non-nil (bound on amd64 with AVX2), handles NN row bands
// whose C rows fit in vector registers — n of 4 or 8, the projection widths
// of the per-rank test models. It keeps each C row resident in YMM registers
// across the whole k loop instead of storing and reloading it every four
// steps; the per-element operation sequence is unchanged, so results stay
// bitwise identical. Returns false to fall through to the general kernel.
var nnRowNarrow func(c, a, b *Matrix, i0, i1 int) bool

// matMulAccumRows runs the NN kernel over C rows [i0, i1): k-tiled, with a
// four-row microkernel that reuses the loaded C row across four B rows.
func matMulAccumRows(c, a, b *Matrix, i0, i1 int) {
	n, k := b.Cols, a.Cols
	if n == 0 || k == 0 {
		return
	}
	if nnRowNarrow != nil && nnRowNarrow(c, a, b, i0, i1) {
		return
	}
	for kc := 0; kc < k; kc += gemmKC {
		kend := kc + gemmKC
		if kend > k {
			kend = k
		}
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			l := kc
			for ; l+4 <= kend; l += 4 {
				accum4(crow,
					b.Data[l*n:(l+1)*n],
					b.Data[(l+1)*n:(l+2)*n],
					b.Data[(l+2)*n:(l+3)*n],
					b.Data[(l+3)*n:(l+4)*n],
					arow[l], arow[l+1], arow[l+2], arow[l+3])
			}
			for ; l < kend; l++ {
				axpy(crow, b.Data[l*n:(l+1)*n], arow[l])
			}
		}
	}
}

// matMulNTKernel computes C = A·Bᵀ on real matrices (it overwrites C, never
// reading it).
func matMulNTKernel(c, a, b *Matrix) {
	flops := 2 * float64(a.Rows) * float64(b.Rows) * float64(a.Cols)
	t := gemmTask{op: opNT, c: c, a: a, b: b}
	runGEMM(&t, a.Rows, gemmBands(flops, a.Rows))
}

// matMulNTRows runs the NT kernel over C rows [i0, i1): 2×2 register
// blocking of independent dot products, each accumulated in plain k order.
func matMulNTRows(c, a, b *Matrix, i0, i1 int) {
	k, n := a.Cols, b.Rows
	i := i0
	for ; i+2 <= i1; i += 2 {
		a0 := a.Data[i*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		c0 := c.Data[i*n : (i+1)*n]
		c1 := c.Data[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			var s00, s01, s10, s11 float64
			for l, av0 := range a0 {
				av1 := a1[l]
				bv0, bv1 := b0[l], b1[l]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
			}
			c0[j], c0[j+1] = s00, s01
			c1[j], c1[j+1] = s10, s11
		}
		for ; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s0, s1 float64
			for l, av0 := range a0 {
				s0 += av0 * brow[l]
				s1 += a1[l] * brow[l]
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for ; i < i1; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for l, av := range arow {
				s += av * brow[l]
			}
			crow[j] = s
		}
	}
}

// matMulTNKernel computes C += Aᵀ·B on real matrices.
func matMulTNKernel(c, a, b *Matrix) {
	flops := 2 * float64(a.Cols) * float64(b.Cols) * float64(a.Rows)
	t := gemmTask{op: opTN, c: c, a: a, b: b}
	runGEMM(&t, a.Cols, gemmBands(flops, a.Cols))
}

// matMulTNRows runs the in-place TN kernel over C rows [i0, i1) (columns of
// A): blocks of four C rows stay L1-resident while B streams through once,
// and every element still accumulates in ascending-l order like the naive
// kernel. Above the packing threshold matMulTNPacked replaces this with a
// transpose plus the NN kernels — this in-place form reloads each C row per
// l, so its C traffic grows with k.
func matMulTNRows(c, a, b *Matrix, i0, i1 int) {
	m, ac, n := a.Rows, a.Cols, b.Cols
	if n == 0 {
		return
	}
	i := i0
	for ; i+4 <= i1; i += 4 {
		c0 := c.Data[i*n : (i+1)*n]
		c1 := c.Data[(i+1)*n : (i+2)*n]
		c2 := c.Data[(i+2)*n : (i+3)*n]
		c3 := c.Data[(i+3)*n : (i+4)*n]
		for l := 0; l < m; l++ {
			arow := a.Data[l*ac : (l+1)*ac]
			brow := b.Data[l*n : (l+1)*n]
			axpy(c0, brow, arow[i])
			axpy(c1, brow, arow[i+1])
			axpy(c2, brow, arow[i+2])
			axpy(c3, brow, arow[i+3])
		}
	}
	for ; i < i1; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for l := 0; l < m; l++ {
			axpy(crow, b.Data[l*n:(l+1)*n], a.Data[l*ac+i])
		}
	}
}

// accum4Generic is the portable microkernel: c[j] += a0·b0[j], then
// a1·b1[j], a2·b2[j], a3·b3[j] — four ascending-k accumulation steps with
// individually rounded multiplies and adds, exactly like the naive loop.
func accum4Generic(c, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	_ = b0[len(c)-1]
	_ = b1[len(c)-1]
	_ = b2[len(c)-1]
	_ = b3[len(c)-1]
	for j := range c {
		s := c[j]
		s += a0 * b0[j]
		s += a1 * b1[j]
		s += a2 * b2[j]
		s += a3 * b3[j]
		c[j] = s
	}
}

// axpyGeneric is the portable single-row microkernel: c[j] += a·b[j].
func axpyGeneric(c, b []float64, a float64) {
	_ = b[len(c)-1]
	for j := range c {
		c[j] += a * b[j]
	}
}
