package tensor

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// The GEMM contract: at every shape — odd sizes, degenerate slivers, sizes
// straddling the parallelism threshold — the blocked/vectorised kernels
// and any row-band split of them produce bitwise exactly the naive
// reference results.

func gemmShapes() []struct{ m, k, n int } {
	return []struct{ m, k, n int }{
		{1, 1, 1}, {1, 7, 1}, {3, 1, 5}, {2, 3, 2},
		{5, 5, 5}, {7, 11, 13}, {8, 8, 8}, {9, 17, 33},
		{16, 64, 16}, {31, 29, 37}, {64, 64, 64},
		{65, 63, 67},  // just past the microkernel widths
		{80, 80, 80},  // straddles gemmParallelFlops (2·80³ ≈ 1.02M)
		{81, 79, 83},  // odd straddler
		{96, 128, 96}, // above the threshold
		{1, 300, 257}, // k longer than gemmKC, sliver output
		{257, 300, 1}, // single-column output
	}
}

func TestMatMulMatchesNaiveBitwise(t *testing.T) {
	for _, s := range gemmShapes() {
		t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(t *testing.T) {
			rng := NewRNG(uint64(s.m*1000000 + s.k*1000 + s.n))
			a := RandomMatrix(s.m, s.k, rng)
			b := RandomMatrix(s.k, s.n, rng)
			want := New(s.m, s.n)
			matMulAccumNaive(want, a, b)
			if got := MatMul(a, b); !got.Equal(want) {
				t.Fatalf("MatMul diverges from naive kernel (max diff %g)", got.MaxAbsDiff(want))
			}
		})
	}
}

func TestMatMulNTMatchesNaiveBitwise(t *testing.T) {
	for _, s := range gemmShapes() {
		t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(t *testing.T) {
			rng := NewRNG(uint64(s.m*999 + s.k*99 + s.n))
			a := RandomMatrix(s.m, s.k, rng)
			b := RandomMatrix(s.n, s.k, rng) // C = A·Bᵀ is m×n
			want := New(s.m, s.n)
			matMulNTNaive(want, a, b)
			if got := MatMulNT(a, b); !got.Equal(want) {
				t.Fatalf("MatMulNT diverges from naive kernel (max diff %g)", got.MaxAbsDiff(want))
			}
		})
	}
}

// TestMatMulNTPackedMatchesNaiveBitwise forces the packed NT path (transpose
// panel + NN microkernels) at EVERY shape, not just the sizes where
// NTPackProfitable would select it, and demands bitwise agreement with the
// naive dot-product reference — the property that lets MatMulNT switch
// kernels on a size threshold without perturbing a single bit.
func TestMatMulNTPackedMatchesNaiveBitwise(t *testing.T) {
	for _, s := range gemmShapes() {
		t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(t *testing.T) {
			rng := NewRNG(uint64(s.m*313 + s.k*31 + s.n))
			a := RandomMatrix(s.m, s.k, rng)
			b := RandomMatrix(s.n, s.k, rng) // C = A·Bᵀ is m×n
			want := New(s.m, s.n)
			matMulNTNaive(want, a, b)
			got := RandomMatrix(s.m, s.n, rng) // stale contents must be overwritten
			MatMulNTIntoPacked(got, a, b, New(s.k, s.n))
			if !got.Equal(want) {
				t.Fatalf("packed NT diverges from naive kernel (max diff %g)", got.MaxAbsDiff(want))
			}
		})
	}
	// Special values survive the packed path: 0·NaN must stay NaN.
	a := FromRows([][]float64{{0, 1}, {2, 0}})
	b := FromRows([][]float64{{1, 3}, {2, 4}}) // bᵀ = {{1,2},{3,4}}
	b.Set(0, 0, math.NaN())
	want := New(2, 2)
	matMulNTNaive(want, a, b)
	got := New(2, 2)
	MatMulNTIntoPacked(got, a, b, New(2, 2))
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("element %d: packed %v vs naive %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTNMatchesNaiveBitwise(t *testing.T) {
	for _, s := range gemmShapes() {
		t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(t *testing.T) {
			rng := NewRNG(uint64(s.m*77 + s.k*7 + s.n))
			a := RandomMatrix(s.k, s.m, rng) // C = Aᵀ·B is m×n
			b := RandomMatrix(s.k, s.n, rng)
			want := New(s.m, s.n)
			matMulTNNaive(want, a, b)
			if got := MatMulTN(a, b); !got.Equal(want) {
				t.Fatalf("MatMulTN diverges from naive kernel (max diff %g)", got.MaxAbsDiff(want))
			}
		})
	}
}

// TestMatMulTNPackedMatchesNaiveBitwise forces the packed TN path (transpose
// A into a panel, accumulate with the NN microkernels) at EVERY shape —
// odd, ragged, and k not divisible by any panel tile — and demands bitwise
// agreement with the naive reference. The packed TN contract is +=, so the
// test also seeds C with prior contents and checks the accumulation.
func TestMatMulTNPackedMatchesNaiveBitwise(t *testing.T) {
	for _, s := range gemmShapes() {
		t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(t *testing.T) {
			rng := NewRNG(uint64(s.m*517 + s.k*51 + s.n))
			a := RandomMatrix(s.k, s.m, rng) // C += Aᵀ·B is m×n
			b := RandomMatrix(s.k, s.n, rng)
			seed := RandomMatrix(s.m, s.n, rng)
			want := seed.Clone()
			matMulTNNaive(want, a, b)
			got := seed.Clone()
			MatMulTNIntoPacked(got, a, b, New(s.m, s.k))
			if !got.Equal(want) {
				t.Fatalf("packed TN diverges from naive kernel (max diff %g)", got.MaxAbsDiff(want))
			}
		})
	}
	// Special values survive the packed path: 0·NaN must stay NaN.
	a := FromRows([][]float64{{0, 2}, {1, 0}}) // aᵀ = {{0,1},{2,0}}
	a.Set(0, 0, math.NaN())
	b := FromRows([][]float64{{1, 2}, {3, 4}})
	want := New(2, 2)
	matMulTNNaive(want, a, b)
	got := New(2, 2)
	MatMulTNIntoPacked(got, a, b, New(2, 2))
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("element %d: packed %v vs naive %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestNarrowRowKernelsMatchNaiveBitwise pins the register-resident NN row
// kernels (n of 4 and 8, where a C row lives in YMM registers across the
// whole k loop on amd64) to the naive reference at shapes that exercise the
// paired-row path, the odd trailing row, and k values around the microkernel
// widths. On non-AVX2 hosts this degenerates to re-testing the general path.
func TestNarrowRowKernelsMatchNaiveBitwise(t *testing.T) {
	for _, s := range []struct{ m, k, n int }{
		{1, 1, 4}, {1, 1, 8}, {2, 3, 4}, {3, 5, 8}, {7, 300, 4},
		{8, 511, 8}, {33, 100, 8}, {17, 53, 4}, {16, 256, 8}, {5, 1024, 4},
	} {
		rng := NewRNG(uint64(s.m*43 + s.k*17 + s.n))
		a := RandomMatrix(s.m, s.k, rng)
		b := RandomMatrix(s.k, s.n, rng)
		want := New(s.m, s.n)
		matMulAccumNaive(want, a, b)
		got := New(s.m, s.n)
		matMulAccumRows(got, a, b, 0, s.m)
		if !got.Equal(want) {
			t.Fatalf("%dx%dx%d: narrow-row kernel diverges from naive (max diff %g)", s.m, s.k, s.n, got.MaxAbsDiff(want))
		}
	}
}

// TestBandedGEMMBitwiseAtEveryBandCount forces every band split (including
// counts this host would never pick) through the worker pool for all three
// kernels and demands bitwise agreement with the single-band run — the
// property that makes the parallelism threshold a pure performance knob.
// Multi-band runs exercise the persistent pool's claim/wake/done path even
// on hosts where gemmBands would stay serial.
func TestBandedGEMMBitwiseAtEveryBandCount(t *testing.T) {
	for _, s := range []struct{ m, k, n int }{
		{1, 5, 9}, {5, 7, 11}, {13, 17, 19}, {64, 32, 48}, {81, 80, 79},
	} {
		rng := NewRNG(uint64(s.m + s.k + s.n))
		a := RandomMatrix(s.m, s.k, rng)
		b := RandomMatrix(s.k, s.n, rng)
		aT := Transpose(a)
		bNT := RandomMatrix(s.n, s.k, rng)

		wantNN := New(s.m, s.n)
		matMulAccumRows(wantNN, a, b, 0, s.m)
		wantNT := New(s.m, s.n)
		matMulNTRows(wantNT, a, bNT, 0, s.m)
		wantTN := New(s.m, s.n)
		matMulTNRows(wantTN, aT, b, 0, s.m)

		for bands := 1; bands <= s.m+1; bands++ {
			gotNN := New(s.m, s.n)
			gotNT := New(s.m, s.n)
			gotTN := New(s.m, s.n)
			tNN := gemmTask{op: opNN, c: gotNN, a: a, b: b}
			tNT := gemmTask{op: opNT, c: gotNT, a: a, b: bNT}
			tTN := gemmTask{op: opTN, c: gotTN, a: aT, b: b}
			runGEMM(&tNN, s.m, bands)
			runGEMM(&tNT, s.m, bands)
			runGEMM(&tTN, s.m, bands)
			if !gotNN.Equal(wantNN) {
				t.Fatalf("%dx%dx%d: NN diverges at %d bands", s.m, s.k, s.n, bands)
			}
			if !gotNT.Equal(wantNT) {
				t.Fatalf("%dx%dx%d: NT diverges at %d bands", s.m, s.k, s.n, bands)
			}
			if !gotTN.Equal(wantTN) {
				t.Fatalf("%dx%dx%d: TN diverges at %d bands", s.m, s.k, s.n, bands)
			}
		}
	}
}

// TestGEMMPoolHammer launches many concurrent forced-band GEMMs so the race
// detector sweeps the pool's claim/wake/done/return protocol — the pattern
// the simulated cluster produces with one submitting goroutine per rank.
func TestGEMMPoolHammer(t *testing.T) {
	const goroutines = 8
	const iters = 30
	rng := NewRNG(99)
	a := RandomMatrix(33, 17, rng)
	b := RandomMatrix(17, 21, rng)
	want := New(33, 21)
	matMulAccumRows(want, a, b, 0, 33)

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := New(33, 21)
			for it := 0; it < iters; it++ {
				c.Zero()
				task := gemmTask{op: opNN, c: c, a: a, b: b}
				runGEMM(&task, 33, 1+(g+it)%7)
				if !c.Equal(want) {
					errs <- fmt.Sprintf("goroutine %d iter %d: pooled GEMM diverges", g, it)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestMatMulIntoAccumulatesBitwise checks the += contract survives the
// blocked kernel (two accumulations equal the naive double product).
func TestMatMulIntoAccumulatesBitwise(t *testing.T) {
	rng := NewRNG(5)
	a := RandomMatrix(9, 13, rng)
	b := RandomMatrix(13, 7, rng)
	got := New(9, 7)
	MatMulInto(got, a, b)
	MatMulInto(got, a, b)
	want := New(9, 7)
	matMulAccumNaive(want, a, b)
	matMulAccumNaive(want, a, b)
	if !got.Equal(want) {
		t.Fatalf("MatMulInto accumulation diverges from naive (max diff %g)", got.MaxAbsDiff(want))
	}
}

// TestGEMMSpecialValues pins the IEEE win of dropping the zero-skip branch:
// a zero in A against a NaN in B must poison the product (0·NaN is NaN),
// identically in the blocked and naive kernels.
func TestGEMMSpecialValues(t *testing.T) {
	a := FromRows([][]float64{{0, 1}, {2, 0}})
	nan := FromRows([][]float64{{1, 2}, {3, 4}})
	nan.Set(0, 0, math.NaN())
	got := MatMul(a, nan)
	want := New(2, 2)
	matMulAccumNaive(want, a, nan)
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("element %d: blocked %v vs naive %v", i, got.Data[i], want.Data[i])
		}
	}
	if !math.IsNaN(got.At(0, 0)) { // 0·NaN + 1·3 must be NaN
		t.Fatalf("MatMul swallowed a NaN: got %g", got.At(0, 0))
	}
}
