package tensor

import (
	"testing"
	"testing/quick"
)

func TestHCatVCatRoundTripWithSubMatrix(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows := 1 + rng.Intn(5)
		c1 := 1 + rng.Intn(4)
		c2 := 1 + rng.Intn(4)
		a := RandomMatrix(rows, c1, rng)
		b := RandomMatrix(rows, c2, rng)
		cat := HCat(a, b)
		if cat.Rows != rows || cat.Cols != c1+c2 {
			return false
		}
		return cat.SubMatrix(0, 0, rows, c1).MaxAbsDiff(a) == 0 &&
			cat.SubMatrix(0, c1, rows, c2).MaxAbsDiff(b) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(seed uint64) bool {
		rng := NewRNG(seed)
		cols := 1 + rng.Intn(5)
		r1 := 1 + rng.Intn(4)
		r2 := 1 + rng.Intn(4)
		a := RandomMatrix(r1, cols, rng)
		b := RandomMatrix(r2, cols, rng)
		cat := VCat(a, b)
		if cat.Rows != r1+r2 || cat.Cols != cols {
			return false
		}
		return cat.SubMatrix(0, 0, r1, cols).MaxAbsDiff(a) == 0 &&
			cat.SubMatrix(r1, 0, r2, cols).MaxAbsDiff(b) == 0
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHCatDistributesOverMatMul(t *testing.T) {
	// A·[B1 | B2] = [A·B1 | A·B2] — the identity behind the fused QKV
	// projection layout.
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := 1 + rng.Intn(4)
		k := 1 + rng.Intn(4)
		n1 := 1 + rng.Intn(3)
		n2 := 1 + rng.Intn(3)
		a := RandomMatrix(m, k, rng)
		b1 := RandomMatrix(k, n1, rng)
		b2 := RandomMatrix(k, n2, rng)
		lhs := MatMul(a, HCat(b1, b2))
		rhs := HCat(MatMul(a, b1), MatMul(a, b2))
		return lhs.MaxAbsDiff(rhs) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVCatStacksMatMulRows(t *testing.T) {
	// [A1; A2]·B = [A1·B; A2·B] — the identity behind Tesseract's
	// depth-wise activation split (Figure 4a).
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m1 := 1 + rng.Intn(3)
		m2 := 1 + rng.Intn(3)
		k := 1 + rng.Intn(4)
		n := 1 + rng.Intn(4)
		a1 := RandomMatrix(m1, k, rng)
		a2 := RandomMatrix(m2, k, rng)
		b := RandomMatrix(k, n, rng)
		lhs := MatMul(VCat(a1, a2), b)
		rhs := VCat(MatMul(a1, b), MatMul(a2, b))
		return lhs.MaxAbsDiff(rhs) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCatShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "HCat")
	HCat(New(2, 2), New(3, 2))
}

func TestVCatShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "VCat")
	VCat(New(2, 2), New(2, 3))
}

func TestEmptyCats(t *testing.T) {
	if m := HCat(); m.Rows != 0 || m.Cols != 0 {
		t.Fatal("empty HCat should be empty")
	}
	if m := VCat(); m.Rows != 0 || m.Cols != 0 {
		t.Fatal("empty VCat should be empty")
	}
}
