package tensor

import "fmt"

// Workspace is a shape-keyed buffer pool for matrices, built so the training
// hot path stops allocating: every panel, partial and activation a step
// needs is drawn from per-shape free lists and recycled instead of being
// handed to the garbage collector.
//
// A workspace is intentionally NOT safe for concurrent use. Each simulated
// worker owns exactly one (dist.Worker.Workspace), so the steady path takes
// no locks. Buffers never migrate between workspaces: collectives that hand
// matrices across workers either copy into the receiver's own buffers
// (the *Into variants) or pass read-only references whose last read
// completes before the collective returns.
//
// # Ownership and lifetime rules
//
// Get/GetUninit check a buffer out; it stays checked out until exactly one of
//
//   - Put(m): the holder returns it early. Only the current holder may Put,
//     and only once — a double Put would hand the same storage to two users.
//     Use Put for transient scratch whose last read is provably behind us:
//     SUMMA receive panels, reduce partials, per-head attention scratch,
//     broadcast bias buffers, and gradient intermediates (a layer's
//     Backward never retains its input, so the owner of a gradient buffer
//     may Put it once every Backward it was passed to has returned).
//   - ReleaseAll(): the step boundary. Everything still checked out returns
//     to the free lists at once. Forward-pass values ride to the step
//     boundary: a layer's Forward may retain its input and its output for
//     the backward pass (saved activations, attention probabilities,
//     layer-norm statistics), so callers must never Put a buffer that
//     crossed a Forward API — unless the callee documents that it does not
//     retain it, as the tesseract layer norms do for their inputs.
//
// ReleaseAll may only run at a step boundary — after the optimiser step, or
// after an evaluation forward whose outputs have been consumed — never
// between a forward and its backward.
//
// # Collective boundaries and borrows
//
// The blocking dist collectives complete all cross-worker reads before any
// member returns, so a buffer used as a blocking collective's source or
// destination is again exclusively owned the moment the call returns: it may
// be reused, Put, or sent again immediately. Snapshot-free *Into collectives
// rely on this.
//
// The nonblocking collectives (dist's IBroadcastInto family) borrow their
// payload and destination between issue and Wait: the runtime marks the
// buffers via Borrow at issue and releases them when Wait returns. A
// borrowed buffer must not be Put and must not reach ReleaseAll — both
// panic, because an in-flight collective may still read or write the
// storage. Drain every handle before the step boundary.
//
// # Phantoms
//
// The pool is phantom-aware: requesting a phantom shape yields a pooled
// shape-only matrix (phantom flag is part of the free-list key, so a phantom
// can never satisfy a real request or vice versa). Zeroing is skipped and
// Put/ReleaseAll recycle the headers, keeping paper-scale phantom runs
// allocation-free too.
//
// # Implementation note
//
// Checkout state lives intrusively on the Matrix itself (owning pool, slot
// in the checked-out list, home free list, borrow count), so Get, Put and
// ReleaseAll touch no hash map except the one shape lookup a Get performs —
// the checked-out set that used to be a map is a plain slice with O(1)
// swap-removal.
type Workspace struct {
	free map[wsKey]*wsBucket
	// cache is a direct-mapped front for the free map: a training step asks
	// for the same handful of shapes thousands of times, and the map lookup
	// (hash + probe) was ~7% of a step. A shape's bucket is remembered in
	// its hash slot on first lookup; collisions just fall back to the map.
	cache [wsCacheSlots]wsCacheEntry
	out   []*Matrix

	pooling  bool
	borrowed int
	stats    WorkspaceStats
}

const wsCacheSlots = 64

type wsCacheEntry struct {
	key wsKey
	b   *wsBucket
}

// cacheSlot hashes a shape key into the direct-mapped cache. The
// multipliers spread the handful of near-power-of-two shapes a training
// step cycles through across the slots, so two hot shapes rarely ping-pong
// in one slot (each eviction costs a map probe).
func cacheSlot(k wsKey) int {
	h := k.rows*0x9E3779B1 + k.cols*0x85EBCA77
	if k.phantom {
		h += 1543
	}
	return (h ^ h>>7) & (wsCacheSlots - 1)
}

type wsKey struct {
	rows, cols int
	phantom    bool
}

// wsBucket is one per-shape free list. Matrices remember their bucket, so
// Put and ReleaseAll recycle without a map lookup.
type wsBucket struct {
	items []*Matrix
}

// WorkspaceStats is a point-in-time snapshot of pool behaviour.
type WorkspaceStats struct {
	// Allocs counts pool misses: Gets that had to allocate a new matrix.
	// Flat Allocs across steps means the steady path never allocates.
	Allocs int
	// Gets counts all checkouts; Gets − Allocs hit a free list.
	Gets int
	// Live is the number of currently checked-out buffers.
	Live int
	// HighWater is the maximum Live ever observed — the arena footprint of
	// one step. Flat HighWater across steps means no leak.
	HighWater int
	// LiveBytes is the storage behind the currently checked-out buffers
	// (8 bytes per element; phantoms carry no storage and count zero).
	LiveBytes int64
	// HighWaterBytes is the maximum LiveBytes ever observed — the peak
	// activation footprint memory studies compare across families.
	HighWaterBytes int64
}

// NewWorkspace returns an empty pool with pooling enabled.
func NewWorkspace() *Workspace {
	return &Workspace{
		free:    make(map[wsKey]*wsBucket),
		pooling: true,
	}
}

// SetPooling toggles recycling. Disabled, Get/GetUninit degenerate to plain
// allocation and Put/ReleaseAll drop their buffers — the allocating
// reference path the bitwise property tests compare against.
func (ws *Workspace) SetPooling(enabled bool) { ws.pooling = enabled }

// Pooling reports whether recycling is enabled.
func (ws *Workspace) Pooling() bool { return ws.pooling }

// Stats returns a snapshot of the pool counters.
func (ws *Workspace) Stats() WorkspaceStats { return ws.stats }

// Get checks out a zeroed rows×cols matrix.
func (ws *Workspace) Get(rows, cols int) *Matrix {
	m := ws.GetUninit(rows, cols)
	m.Zero()
	return m
}

// GetUninit checks out a rows×cols matrix with unspecified contents. Use it
// only for destinations that are fully overwritten before being read.
func (ws *Workspace) GetUninit(rows, cols int) *Matrix {
	return ws.get(wsKey{rows, cols, false})
}

// GetMatch is Get with the phantomness of the computation the buffer joins:
// phantom inputs get a pooled shape-only matrix, real inputs a zeroed one.
func (ws *Workspace) GetMatch(rows, cols int, phantom bool) *Matrix {
	if phantom {
		return ws.get(wsKey{rows, cols, true})
	}
	return ws.Get(rows, cols)
}

// GetUninitMatch is GetUninit with a phantom variant.
func (ws *Workspace) GetUninitMatch(rows, cols int, phantom bool) *Matrix {
	return ws.get(wsKey{rows, cols, phantom})
}

func (ws *Workspace) get(k wsKey) *Matrix {
	checkDims(k.rows, k.cols)
	ws.stats.Gets++
	var bucket *wsBucket
	slot := cacheSlot(k)
	if e := &ws.cache[slot]; e.b != nil && e.key == k {
		bucket = e.b
	} else {
		bucket = ws.free[k]
		if bucket == nil {
			bucket = &wsBucket{}
			ws.free[k] = bucket
		}
		ws.cache[slot] = wsCacheEntry{key: k, b: bucket}
	}
	var m *Matrix
	if n := len(bucket.items); ws.pooling && n > 0 {
		m = bucket.items[n-1]
		bucket.items[n-1] = nil
		bucket.items = bucket.items[:n-1]
	} else {
		ws.stats.Allocs++
		if k.phantom {
			m = NewPhantom(k.rows, k.cols)
		} else {
			m = New(k.rows, k.cols)
		}
		m.bucket = bucket
	}
	if ws.pooling {
		m.ws = ws
		m.wsIdx = int32(len(ws.out))
		ws.out = append(ws.out, m)
		ws.stats.Live++
		if ws.stats.Live > ws.stats.HighWater {
			ws.stats.HighWater = ws.stats.Live
		}
		ws.stats.LiveBytes += storageBytes(m)
		if ws.stats.LiveBytes > ws.stats.HighWaterBytes {
			ws.stats.HighWaterBytes = ws.stats.LiveBytes
		}
	}
	return m
}

// storageBytes is the heap storage behind one pooled buffer: 8 bytes per
// element for real matrices, zero for phantoms (shape-only headers).
func storageBytes(m *Matrix) int64 {
	if m.Phantom() {
		return 0
	}
	return 8 * int64(m.Rows) * int64(m.Cols)
}

// Put returns checked-out buffers to their free lists. It panics on a matrix
// this workspace does not consider checked out (double Put, never pooled, or
// already swept by ReleaseAll) — each of those is an aliasing bug waiting to
// hand one buffer to two holders — and on a matrix still borrowed by an
// in-flight nonblocking collective (Put before Wait). No-op when pooling is
// disabled.
func (ws *Workspace) Put(ms ...*Matrix) {
	if !ws.pooling {
		return
	}
	for _, m := range ms {
		if m == nil {
			continue
		}
		if m.ws != ws {
			panic(fmt.Sprintf("tensor: workspace Put of a %dx%d matrix that is not checked out", m.Rows, m.Cols))
		}
		if m.borrows != 0 {
			panic(fmt.Sprintf("tensor: workspace Put of a %dx%d matrix still borrowed by %d in-flight collective(s) — Wait the handle first", m.Rows, m.Cols, m.borrows))
		}
		ws.remove(m)
		m.bucket.items = append(m.bucket.items, m)
	}
}

// remove unlinks m from the checked-out list in O(1) by swapping the tail
// into its slot.
func (ws *Workspace) remove(m *Matrix) {
	last := len(ws.out) - 1
	if i := int(m.wsIdx); i != last {
		moved := ws.out[last]
		ws.out[i] = moved
		moved.wsIdx = int32(i)
	}
	ws.out[last] = nil
	ws.out = ws.out[:last]
	m.ws = nil
	ws.stats.Live--
	ws.stats.LiveBytes -= storageBytes(m)
}

// ReleaseAll returns every checked-out buffer to the free lists — the step
// boundary. It panics if any buffer is still borrowed by an in-flight
// nonblocking collective: a handle crossing a step boundary is a bug. See
// the ownership rules in the type comment for when ReleaseAll is safe.
func (ws *Workspace) ReleaseAll() {
	if !ws.pooling {
		return
	}
	if ws.borrowed != 0 {
		panic(fmt.Sprintf("tensor: workspace ReleaseAll with %d buffer(s) still borrowed by in-flight collectives — Wait every handle before the step boundary", ws.borrowed))
	}
	for i, m := range ws.out {
		m.ws = nil
		m.bucket.items = append(m.bucket.items, m)
		ws.out[i] = nil
	}
	ws.out = ws.out[:0]
	ws.stats.Live = 0
	ws.stats.LiveBytes = 0
}

// Borrow marks a checked-out buffer as lent to an in-flight nonblocking
// collective: until the matching Release, Put panics on it and ReleaseAll
// refuses to run. Matrices that are not checked out of this workspace
// (parameters, plain allocations, pooling disabled) are ignored — the
// borrow discipline protects pooled storage only. Borrows nest: a buffer
// lent as both payload and destination of one collective is borrowed twice.
func (ws *Workspace) Borrow(m *Matrix) {
	if m == nil || m.ws != ws {
		return
	}
	m.borrows++
	ws.borrowed++
}

// Release undoes one Borrow.
func (ws *Workspace) Release(m *Matrix) {
	if m == nil || m.ws != ws {
		return
	}
	if m.borrows == 0 {
		panic(fmt.Sprintf("tensor: workspace Release of a %dx%d matrix that is not borrowed", m.Rows, m.Cols))
	}
	m.borrows--
	ws.borrowed--
}
