package tensor

import "fmt"

// Workspace is a shape-keyed buffer pool for matrices, built so the training
// hot path stops allocating: every panel, partial and activation a step
// needs is drawn from per-shape free lists and recycled instead of being
// handed to the garbage collector.
//
// A workspace is intentionally NOT safe for concurrent use. Each simulated
// worker owns exactly one (dist.Worker.Workspace), so the steady path takes
// no locks. Buffers never migrate between workspaces: collectives that hand
// matrices across workers either copy into the receiver's own buffers
// (the *Into variants) or pass read-only references whose last read
// completes before the collective returns.
//
// # Ownership and lifetime rules
//
// Get/GetUninit check a buffer out; it stays checked out until exactly one of
//
//   - Put(m): the holder returns it early. Only the current holder may Put,
//     and only once — a double Put would hand the same storage to two users.
//     Use Put for transient scratch whose last read is provably behind us:
//     SUMMA receive panels, reduce partials, per-head attention scratch,
//     broadcast bias buffers, and gradient intermediates (a layer's
//     Backward never retains its input, so the owner of a gradient buffer
//     may Put it once every Backward it was passed to has returned).
//   - ReleaseAll(): the step boundary. Everything still checked out returns
//     to the free lists at once. Forward-pass values ride to the step
//     boundary: a layer's Forward may retain its input and its output for
//     the backward pass (saved activations, attention probabilities,
//     layer-norm statistics), so callers must never Put a buffer that
//     crossed a Forward API — unless the callee documents that it does not
//     retain it, as the tesseract layer norms do for their inputs.
//
// ReleaseAll may only run at a step boundary — after the optimiser step, or
// after an evaluation forward whose outputs have been consumed — never
// between a forward and its backward.
//
// # Collective boundaries
//
// The dist collectives complete all cross-worker reads before any member
// returns, so a buffer used as a collective source or destination is again
// exclusively owned the moment the call returns: it may be reused, Put, or
// sent again immediately. Snapshot-free *Into collectives rely on this.
//
// # Phantoms
//
// The pool is phantom-aware: requesting a phantom shape yields a pooled
// shape-only matrix (phantom flag is part of the free-list key, so a phantom
// can never satisfy a real request or vice versa). Zeroing is skipped and
// Put/ReleaseAll recycle the headers, keeping paper-scale phantom runs
// allocation-free too.
type Workspace struct {
	free map[wsKey][]*Matrix
	out  map[*Matrix]struct{}

	pooling bool
	stats   WorkspaceStats
}

type wsKey struct {
	rows, cols int
	phantom    bool
}

// WorkspaceStats is a point-in-time snapshot of pool behaviour.
type WorkspaceStats struct {
	// Allocs counts pool misses: Gets that had to allocate a new matrix.
	// Flat Allocs across steps means the steady path never allocates.
	Allocs int
	// Gets counts all checkouts; Gets − Allocs hit a free list.
	Gets int
	// Live is the number of currently checked-out buffers.
	Live int
	// HighWater is the maximum Live ever observed — the arena footprint of
	// one step. Flat HighWater across steps means no leak.
	HighWater int
}

// NewWorkspace returns an empty pool with pooling enabled.
func NewWorkspace() *Workspace {
	return &Workspace{
		free:    make(map[wsKey][]*Matrix),
		out:     make(map[*Matrix]struct{}),
		pooling: true,
	}
}

// SetPooling toggles recycling. Disabled, Get/GetUninit degenerate to plain
// allocation and Put/ReleaseAll drop their buffers — the allocating
// reference path the bitwise property tests compare against.
func (ws *Workspace) SetPooling(enabled bool) { ws.pooling = enabled }

// Pooling reports whether recycling is enabled.
func (ws *Workspace) Pooling() bool { return ws.pooling }

// Stats returns a snapshot of the pool counters.
func (ws *Workspace) Stats() WorkspaceStats { return ws.stats }

// Get checks out a zeroed rows×cols matrix.
func (ws *Workspace) Get(rows, cols int) *Matrix {
	m := ws.GetUninit(rows, cols)
	m.Zero()
	return m
}

// GetUninit checks out a rows×cols matrix with unspecified contents. Use it
// only for destinations that are fully overwritten before being read.
func (ws *Workspace) GetUninit(rows, cols int) *Matrix {
	return ws.get(wsKey{rows, cols, false})
}

// GetMatch is Get with the phantomness of the computation the buffer joins:
// phantom inputs get a pooled shape-only matrix, real inputs a zeroed one.
func (ws *Workspace) GetMatch(rows, cols int, phantom bool) *Matrix {
	if phantom {
		return ws.get(wsKey{rows, cols, true})
	}
	return ws.Get(rows, cols)
}

// GetUninitMatch is GetUninit with a phantom variant.
func (ws *Workspace) GetUninitMatch(rows, cols int, phantom bool) *Matrix {
	return ws.get(wsKey{rows, cols, phantom})
}

func (ws *Workspace) get(k wsKey) *Matrix {
	checkDims(k.rows, k.cols)
	ws.stats.Gets++
	var m *Matrix
	if list := ws.free[k]; ws.pooling && len(list) > 0 {
		m = list[len(list)-1]
		list[len(list)-1] = nil
		ws.free[k] = list[:len(list)-1]
	} else {
		ws.stats.Allocs++
		if k.phantom {
			m = NewPhantom(k.rows, k.cols)
		} else {
			m = New(k.rows, k.cols)
		}
	}
	if ws.pooling {
		ws.out[m] = struct{}{}
		ws.stats.Live++
		if ws.stats.Live > ws.stats.HighWater {
			ws.stats.HighWater = ws.stats.Live
		}
	}
	return m
}

// Put returns checked-out buffers to their free lists. It panics on a matrix
// this workspace does not consider checked out (double Put, never pooled, or
// already swept by ReleaseAll) — each of those is an aliasing bug waiting to
// hand one buffer to two holders. No-op when pooling is disabled.
func (ws *Workspace) Put(ms ...*Matrix) {
	if !ws.pooling {
		return
	}
	for _, m := range ms {
		if m == nil {
			continue
		}
		if _, ok := ws.out[m]; !ok {
			panic(fmt.Sprintf("tensor: workspace Put of a %dx%d matrix that is not checked out", m.Rows, m.Cols))
		}
		delete(ws.out, m)
		ws.stats.Live--
		k := wsKey{m.Rows, m.Cols, m.Data == nil}
		ws.free[k] = append(ws.free[k], m)
	}
}

// ReleaseAll returns every checked-out buffer to the free lists — the step
// boundary. See the ownership rules in the type comment for when it is safe.
func (ws *Workspace) ReleaseAll() {
	if !ws.pooling {
		return
	}
	for m := range ws.out {
		delete(ws.out, m)
		k := wsKey{m.Rows, m.Cols, m.Data == nil}
		ws.free[k] = append(ws.free[k], m)
	}
	ws.stats.Live = 0
}
