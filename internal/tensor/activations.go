package tensor

import "math"

// GELU applies the Gaussian Error Linear Unit (tanh approximation, the form
// used by Transformer implementations) elementwise.
func GELU(m *Matrix) *Matrix {
	return Apply(m, geluScalar)
}

func geluScalar(x float64) float64 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}

// GELUGrad returns d GELU(x)/dx evaluated elementwise at m.
func GELUGrad(m *Matrix) *Matrix {
	return Apply(m, geluGradScalar)
}

func geluGradScalar(x float64) float64 {
	const c = 0.7978845608028654
	inner := c * (x + 0.044715*x*x*x)
	t := math.Tanh(inner)
	dinner := c * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*dinner
}

// ApplyTo computes dst = f(m) elementwise into an existing matrix. dst may
// alias m.
func ApplyTo(dst, m *Matrix, f func(float64) float64) {
	if !dst.SameShape(m) {
		panic("tensor: ApplyTo shape mismatch")
	}
	if phantomAny(dst, m) {
		return
	}
	for i, v := range m.Data {
		dst.Data[i] = f(v)
	}
}

// GELUTo computes dst = GELU(m) elementwise into an existing matrix. The
// direct loop (rather than ApplyTo) lets geluScalar inline instead of going
// through an indirect call per element — ~4% of a training step.
func GELUTo(dst, m *Matrix) {
	if !dst.SameShape(m) {
		panic("tensor: GELUTo shape mismatch")
	}
	if phantomAny(dst, m) {
		return
	}
	for i, v := range m.Data {
		dst.Data[i] = geluScalar(v)
	}
}

// GELUGradTo computes dst = GELU'(m) elementwise into an existing matrix.
func GELUGradTo(dst, m *Matrix) {
	if !dst.SameShape(m) {
		panic("tensor: GELUGradTo shape mismatch")
	}
	if phantomAny(dst, m) {
		return
	}
	for i, v := range m.Data {
		dst.Data[i] = geluGradScalar(v)
	}
}

// GELUGradHadamardTo computes dst = dy ⊙ GELU'(pre) — the fused backward
// epilogue of a GELU linear layer. Per element it performs exactly
// GELUGradTo's geluGradScalar evaluation followed by MulTo's single
// multiply, so it is bitwise identical to the two-pass form while skipping
// one full memory round trip. dst may alias dy or pre.
func GELUGradHadamardTo(dst, pre, dy *Matrix) {
	if !dst.SameShape(pre) || !pre.SameShape(dy) {
		panic("tensor: GELUGradHadamardTo shape mismatch")
	}
	if phantomAny(dst, pre, dy) {
		return
	}
	for i, v := range pre.Data {
		dst.Data[i] = dy.Data[i] * geluGradScalar(v)
	}
}

// ReLU applies max(0, x) elementwise.
func ReLU(m *Matrix) *Matrix {
	return Apply(m, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// ReLUGrad returns the elementwise derivative of ReLU at m (1 for x>0 else 0).
func ReLUGrad(m *Matrix) *Matrix {
	return Apply(m, func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	})
}

// SoftmaxRows applies a numerically stable softmax to each row of m.
func SoftmaxRows(m *Matrix) *Matrix {
	if m.Phantom() {
		return NewPhantom(m.Rows, m.Cols)
	}
	out := New(m.Rows, m.Cols)
	SoftmaxRowsTo(out, m)
	return out
}

// SoftmaxRowsTo computes a numerically stable row softmax of m into dst.
// dst may alias m.
func SoftmaxRowsTo(dst, m *Matrix) {
	if !dst.SameShape(m) {
		panic("tensor: SoftmaxRowsTo shape mismatch")
	}
	if phantomAny(dst, m) {
		return
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := dst.Data[i*m.Cols : (i+1)*m.Cols]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		if len(orow) > 0 {
			vscale(orow, inv)
		}
	}
}

// SoftmaxRowsBackwardTo computes the input gradient of a row softmax into
// dst given the softmax output s and the output gradient ds. dst may alias
// ds (but not s, whose values feed every element of its row).
func SoftmaxRowsBackwardTo(dst, s, ds *Matrix) {
	if !s.SameShape(ds) || !dst.SameShape(s) {
		panic("tensor: SoftmaxRowsBackwardTo shape mismatch")
	}
	if phantomAny(dst, s, ds) {
		return
	}
	for i := 0; i < s.Rows; i++ {
		srow := s.Data[i*s.Cols : (i+1)*s.Cols]
		drow := ds.Data[i*s.Cols : (i+1)*s.Cols]
		orow := dst.Data[i*s.Cols : (i+1)*s.Cols]
		var dot float64
		for j := range srow {
			dot += srow[j] * drow[j]
		}
		for j := range srow {
			orow[j] = srow[j] * (drow[j] - dot)
		}
	}
}

// SoftmaxRowsBackward returns the input gradient of a row softmax given the
// softmax output s and the output gradient ds:
// dx_j = s_j * (ds_j − Σ_k ds_k s_k).
func SoftmaxRowsBackward(s, ds *Matrix) *Matrix {
	if !s.SameShape(ds) {
		panic("tensor: SoftmaxRowsBackward shape mismatch")
	}
	if phantomAny(s, ds) {
		return NewPhantom(s.Rows, s.Cols)
	}
	out := New(s.Rows, s.Cols)
	SoftmaxRowsBackwardTo(out, s, ds)
	return out
}
