package tensor

import "math"

// GELU applies the Gaussian Error Linear Unit (tanh approximation, the form
// used by Transformer implementations) elementwise.
func GELU(m *Matrix) *Matrix {
	return Apply(m, geluScalar)
}

func geluScalar(x float64) float64 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}

// GELUGrad returns d GELU(x)/dx evaluated elementwise at m.
func GELUGrad(m *Matrix) *Matrix {
	return Apply(m, geluGradScalar)
}

func geluGradScalar(x float64) float64 {
	const c = 0.7978845608028654
	inner := c * (x + 0.044715*x*x*x)
	t := math.Tanh(inner)
	dinner := c * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*dinner
}

// ReLU applies max(0, x) elementwise.
func ReLU(m *Matrix) *Matrix {
	return Apply(m, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// ReLUGrad returns the elementwise derivative of ReLU at m (1 for x>0 else 0).
func ReLUGrad(m *Matrix) *Matrix {
	return Apply(m, func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	})
}

// SoftmaxRows applies a numerically stable softmax to each row of m.
func SoftmaxRows(m *Matrix) *Matrix {
	if m.Phantom() {
		return NewPhantom(m.Rows, m.Cols)
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*m.Cols : (i+1)*m.Cols]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// SoftmaxRowsBackward returns the input gradient of a row softmax given the
// softmax output s and the output gradient ds:
// dx_j = s_j * (ds_j − Σ_k ds_k s_k).
func SoftmaxRowsBackward(s, ds *Matrix) *Matrix {
	if !s.SameShape(ds) {
		panic("tensor: SoftmaxRowsBackward shape mismatch")
	}
	if phantomAny(s, ds) {
		return NewPhantom(s.Rows, s.Cols)
	}
	out := New(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		srow := s.Data[i*s.Cols : (i+1)*s.Cols]
		drow := ds.Data[i*s.Cols : (i+1)*s.Cols]
		orow := out.Data[i*s.Cols : (i+1)*s.Cols]
		var dot float64
		for j := range srow {
			dot += srow[j] * drow[j]
		}
		for j := range srow {
			orow[j] = srow[j] * (drow[j] - dot)
		}
	}
	return out
}
