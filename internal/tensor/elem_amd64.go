//go:build amd64

package tensor

import "math"

// AVX2 bindings for the elementwise kernels in elem_amd64.s. Each lane is
// an independent chain of individually rounded operations, so the vector
// forms are bitwise identical to the portable loops in elem.go (the tests
// in elem_test.go compare them lane for lane, NaN/Inf included).

//go:noescape
func vaddToPtr(dst, a, b *float64, n int)

//go:noescape
func vaddInPtr(dst, src *float64, n int)

//go:noescape
func vmulToPtr(dst, a, b *float64, n int)

//go:noescape
func vscalePtr(dst *float64, n int, alpha float64)

//go:noescape
func adamPtr(val, grad, m, v *float64, n int, lr, b1, omb1, b2, omb2, eps, wd, bc1, bc2 float64)

func init() {
	if cpuHasAVX2() {
		vaddTo = vaddToAVX2
		vaddIn = vaddInAVX2
		vmulTo = vmulToAVX2
		vscale = vscaleAVX2
		adamKernel = adamAVX2
	}
}

func vaddToAVX2(dst, a, b []float64) {
	if len(dst) == 0 {
		return
	}
	_ = a[len(dst)-1]
	_ = b[len(dst)-1]
	vaddToPtr(&dst[0], &a[0], &b[0], len(dst))
}

func vaddInAVX2(dst, src []float64) {
	if len(dst) == 0 {
		return
	}
	_ = src[len(dst)-1]
	vaddInPtr(&dst[0], &src[0], len(dst))
}

func vmulToAVX2(dst, a, b []float64) {
	if len(dst) == 0 {
		return
	}
	_ = a[len(dst)-1]
	_ = b[len(dst)-1]
	vmulToPtr(&dst[0], &a[0], &b[0], len(dst))
}

func vscaleAVX2(dst []float64, alpha float64) {
	if len(dst) == 0 {
		return
	}
	vscalePtr(&dst[0], len(dst), alpha)
}

func adamAVX2(val, grad, m, v []float64, lr, b1, b2, eps, wd, bc1, bc2 float64) {
	n := len(val)
	_ = grad[n-1]
	_ = m[n-1]
	_ = v[n-1]
	n4 := n &^ 3
	if n4 > 0 {
		// 1-b1 and 1-b2 are single subtractions, rounded here exactly as the
		// scalar loop rounds them inline.
		adamPtr(&val[0], &grad[0], &m[0], &v[0], n4, lr, b1, 1-b1, b2, 1-b2, eps, wd, bc1, bc2)
	}
	for i := n4; i < n; i++ {
		g := grad[i]
		m[i] = b1*m[i] + (1-b1)*g
		v[i] = b2*v[i] + (1-b2)*g*g
		mh := m[i] / bc1
		vh := v[i] / bc2
		val[i] -= lr * (mh/(math.Sqrt(vh)+eps) + wd*val[i])
	}
}
