package tensor

import (
	"fmt"
	"testing"
)

// Benchmarks pairing every optimised kernel with its naive single-goroutine
// reference (the seed's loops), at the sizes the acceptance gate tracks.
// BenchmarkGEMMNaive256 is the baseline BenchmarkGEMM256 (in the repo root)
// must beat by ≥ 3×.

func benchPair(b *testing.B, n int, opt, naive func(c, x, y *Matrix)) {
	rng := NewRNG(uint64(n))
	x := RandomMatrix(n, n, rng)
	y := RandomMatrix(n, n, rng)
	c := New(n, n)
	flops := 2 * float64(n) * float64(n) * float64(n)
	run := func(b *testing.B, kernel func(c, x, y *Matrix)) {
		b.ReportMetric(0, "ns/op") // replaced below; keeps metric slot stable
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Zero()
			kernel(c, x, y)
		}
		b.StopTimer()
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
	}
	b.Run("blocked", func(b *testing.B) { run(b, opt) })
	b.Run("naive", func(b *testing.B) { run(b, naive) })
}

func BenchmarkGEMMKernels(b *testing.B) {
	for _, n := range []int{64, 128, 256, 384} {
		b.Run(fmt.Sprintf("NN%d", n), func(b *testing.B) {
			benchPair(b, n, func(c, x, y *Matrix) { matMulAccum(c, x, y, epilogue{}) }, matMulAccumNaive)
		})
	}
	b.Run("NT256", func(b *testing.B) {
		benchPair(b, 256, matMulNTKernel, matMulNTNaive)
		// The packed path: transpose B once into a scratch panel, then run
		// the vectorised NN microkernels. This row is the evidence for the
		// NTPackProfitable threshold — it must beat "blocked" decisively at
		// this size (the panel is allocated once, outside the timed loop,
		// exactly as the workspace-drawn scratch behaves in training).
		pack := New(256, 256)
		b.Run("packed", func(b *testing.B) {
			rng := NewRNG(256)
			x := RandomMatrix(256, 256, rng)
			y := RandomMatrix(256, 256, rng)
			c := New(256, 256)
			flops := 2 * float64(256) * float64(256) * float64(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matMulNTPacked(c, x, y, pack, epilogue{})
			}
			b.StopTimer()
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	})
	b.Run("TN256", func(b *testing.B) {
		benchPair(b, 256, matMulTNKernel, matMulTNNaive)
		// The TN packed path: transpose A once into a scratch panel, then
		// accumulate with the NN microkernels — quarter the C traffic of the
		// in-place axpy TN kernel, whose C rows reload once per k step.
		pack := New(256, 256)
		b.Run("packed", func(b *testing.B) {
			rng := NewRNG(256)
			x := RandomMatrix(256, 256, rng)
			y := RandomMatrix(256, 256, rng)
			c := New(256, 256)
			flops := 2 * float64(256) * float64(256) * float64(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Zero()
				matMulTNPacked(c, x, y, pack)
			}
			b.StopTimer()
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	})
}

// BenchmarkGEMMNaive256 is the single-goroutine seed kernel at the
// acceptance size, directly comparable to the root BenchmarkGEMM256.
func BenchmarkGEMMNaive256(b *testing.B) {
	rng := NewRNG(1)
	x := RandomMatrix(256, 256, rng)
	y := RandomMatrix(256, 256, rng)
	c := New(256, 256)
	flops := 2 * float64(256) * float64(256) * float64(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Zero()
		matMulAccumNaive(c, x, y)
	}
	b.StopTimer()
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkZeroSkipDense measures what the seed's `if av == 0` zero-skip
// branch costs on dense inputs — the evidence for removing it.
func BenchmarkZeroSkipDense(b *testing.B) {
	rng := NewRNG(2)
	x := RandomMatrix(192, 192, rng)
	y := RandomMatrix(192, 192, rng)
	c := New(192, 192)
	zeroSkip := func(c, a, bm *Matrix) {
		n, k := bm.Cols, a.Cols
		for i := 0; i < a.Rows; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			for l := 0; l < k; l++ {
				av := arow[l]
				if av == 0 {
					continue
				}
				brow := bm.Data[l*n : (l+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	b.Run("withSkip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Zero()
			zeroSkip(c, x, y)
		}
	})
	b.Run("withoutSkip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Zero()
			matMulAccumNaive(c, x, y)
		}
	})
}
