//go:build !amd64

package tensor

// Non-amd64 builds keep the portable microkernels (which the compiler may
// still vectorise or fuse per-platform; both the naive and the blocked
// kernels share the same expression shapes, so they stay bitwise aligned).
var (
	accum4 = accum4Generic
	axpy   = axpyGeneric
)
