//go:build amd64

#include "textflag.h"

// AVX2 GEMM microkernels. Both functions accumulate with separate VMULPD /
// VADDPD (never FMA) in ascending-k order, making them bitwise identical
// to the scalar reference kernels. Tails run scalar in the same order.

// func cpuHasAVX2() bool
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JL   novx
	MOVL $1, AX
	CPUID
	TESTL $(1<<27), CX // OSXSAVE
	JZ    novx
	TESTL $(1<<28), CX // AVX
	JZ    novx
	XORL CX, CX
	XGETBV
	ANDL $6, AX        // XMM and YMM state enabled by the OS
	CMPL AX, $6
	JNE  novx
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX  // AVX2
	JZ    novx
	MOVB $1, ret+0(FP)
	RET
novx:
	MOVB $0, ret+0(FP)
	RET

// func accum4Ptr(c, b0, b1, b2, b3 *float64, n int, a0, a1, a2, a3 float64)
// c[j] += a0*b0[j]; c[j] += a1*b1[j]; c[j] += a2*b2[j]; c[j] += a3*b3[j]
TEXT ·accum4Ptr(SB), NOSPLIT, $0-80
	MOVQ c+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	VBROADCASTSD a0+48(FP), Y0
	VBROADCASTSD a1+56(FP), Y1
	VBROADCASTSD a2+64(FP), Y2
	VBROADCASTSD a3+72(FP), Y3
	XORQ AX, AX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   tail4
loop8:
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMULPD  (SI)(AX*8), Y0, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(SI)(AX*8), Y0, Y7
	VADDPD  Y7, Y5, Y5
	VMULPD  (R8)(AX*8), Y1, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(R8)(AX*8), Y1, Y7
	VADDPD  Y7, Y5, Y5
	VMULPD  (R9)(AX*8), Y2, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(R9)(AX*8), Y2, Y7
	VADDPD  Y7, Y5, Y5
	VMULPD  (R10)(AX*8), Y3, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(R10)(AX*8), Y3, Y7
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ $8, AX
	DECQ DX
	JNZ  loop8
tail4:
	TESTQ $4, CX
	JZ    tail1
	VMOVUPD (DI)(AX*8), Y4
	VMULPD  (SI)(AX*8), Y0, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  (R8)(AX*8), Y1, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  (R9)(AX*8), Y2, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  (R10)(AX*8), Y3, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
tail1:
	CMPQ AX, CX
	JGE  done
scalar:
	MOVSD (DI)(AX*8), X4
	MOVSD (SI)(AX*8), X5
	MULSD X0, X5
	ADDSD X5, X4
	MOVSD (R8)(AX*8), X5
	MULSD X1, X5
	ADDSD X5, X4
	MOVSD (R9)(AX*8), X5
	MULSD X2, X5
	ADDSD X5, X4
	MOVSD (R10)(AX*8), X5
	MULSD X3, X5
	ADDSD X5, X4
	MOVSD X4, (DI)(AX*8)
	INCQ AX
	CMPQ AX, CX
	JL   scalar
done:
	VZEROUPPER
	RET

// func axpyPtr(c, b *float64, n int, a float64)
// c[j] += a*b[j]
TEXT ·axpyPtr(SB), NOSPLIT, $0-32
	MOVQ c+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD a+24(FP), Y0
	XORQ AX, AX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   atail4
aloop8:
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMULPD  (SI)(AX*8), Y0, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(SI)(AX*8), Y0, Y7
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ $8, AX
	DECQ DX
	JNZ  aloop8
atail4:
	TESTQ $4, CX
	JZ    atail1
	VMOVUPD (DI)(AX*8), Y4
	VMULPD  (SI)(AX*8), Y0, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
atail1:
	CMPQ AX, CX
	JGE  adone
ascalar:
	MOVSD (DI)(AX*8), X4
	MOVSD (SI)(AX*8), X5
	MULSD X0, X5
	ADDSD X5, X4
	MOVSD X4, (DI)(AX*8)
	INCQ AX
	CMPQ AX, CX
	JL   ascalar
adone:
	VZEROUPPER
	RET
