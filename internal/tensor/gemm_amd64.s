//go:build amd64

#include "textflag.h"

// AVX2 GEMM microkernels. Both functions accumulate with separate VMULPD /
// VADDPD (never FMA) in ascending-k order, making them bitwise identical
// to the scalar reference kernels. Tails run scalar in the same order.

// func cpuHasAVX2() bool
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JL   novx
	MOVL $1, AX
	CPUID
	TESTL $(1<<27), CX // OSXSAVE
	JZ    novx
	TESTL $(1<<28), CX // AVX
	JZ    novx
	XORL CX, CX
	XGETBV
	ANDL $6, AX        // XMM and YMM state enabled by the OS
	CMPL AX, $6
	JNE  novx
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX  // AVX2
	JZ    novx
	MOVB $1, ret+0(FP)
	RET
novx:
	MOVB $0, ret+0(FP)
	RET

// func accum4Ptr(c, b0, b1, b2, b3 *float64, n int, a0, a1, a2, a3 float64)
// c[j] += a0*b0[j]; c[j] += a1*b1[j]; c[j] += a2*b2[j]; c[j] += a3*b3[j]
TEXT ·accum4Ptr(SB), NOSPLIT, $0-80
	MOVQ c+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	VBROADCASTSD a0+48(FP), Y0
	VBROADCASTSD a1+56(FP), Y1
	VBROADCASTSD a2+64(FP), Y2
	VBROADCASTSD a3+72(FP), Y3
	XORQ AX, AX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   tail4
loop8:
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMULPD  (SI)(AX*8), Y0, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(SI)(AX*8), Y0, Y7
	VADDPD  Y7, Y5, Y5
	VMULPD  (R8)(AX*8), Y1, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(R8)(AX*8), Y1, Y7
	VADDPD  Y7, Y5, Y5
	VMULPD  (R9)(AX*8), Y2, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(R9)(AX*8), Y2, Y7
	VADDPD  Y7, Y5, Y5
	VMULPD  (R10)(AX*8), Y3, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(R10)(AX*8), Y3, Y7
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ $8, AX
	DECQ DX
	JNZ  loop8
tail4:
	TESTQ $4, CX
	JZ    tail1
	VMOVUPD (DI)(AX*8), Y4
	VMULPD  (SI)(AX*8), Y0, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  (R8)(AX*8), Y1, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  (R9)(AX*8), Y2, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  (R10)(AX*8), Y3, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
tail1:
	CMPQ AX, CX
	JGE  done
scalar:
	MOVSD (DI)(AX*8), X4
	MOVSD (SI)(AX*8), X5
	MULSD X0, X5
	ADDSD X5, X4
	MOVSD (R8)(AX*8), X5
	MULSD X1, X5
	ADDSD X5, X4
	MOVSD (R9)(AX*8), X5
	MULSD X2, X5
	ADDSD X5, X4
	MOVSD (R10)(AX*8), X5
	MULSD X3, X5
	ADDSD X5, X4
	MOVSD X4, (DI)(AX*8)
	INCQ AX
	CMPQ AX, CX
	JL   scalar
done:
	VZEROUPPER
	RET

// func axpyPtr(c, b *float64, n int, a float64)
// c[j] += a*b[j]
TEXT ·axpyPtr(SB), NOSPLIT, $0-32
	MOVQ c+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD a+24(FP), Y0
	XORQ AX, AX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   atail4
aloop8:
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMULPD  (SI)(AX*8), Y0, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(SI)(AX*8), Y0, Y7
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ $8, AX
	DECQ DX
	JNZ  aloop8
atail4:
	TESTQ $4, CX
	JZ    atail1
	VMOVUPD (DI)(AX*8), Y4
	VMULPD  (SI)(AX*8), Y0, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
atail1:
	CMPQ AX, CX
	JGE  adone
ascalar:
	MOVSD (DI)(AX*8), X4
	MOVSD (SI)(AX*8), X5
	MULSD X0, X5
	ADDSD X5, X4
	MOVSD X4, (DI)(AX*8)
	INCQ AX
	CMPQ AX, CX
	JL   ascalar
adone:
	VZEROUPPER
	RET

// Narrow-row NN kernels: when C has 4 or 8 columns the whole C row fits in
// YMM registers, so the k loop runs entirely in-register — no C store/load
// per four k steps and no per-call overhead. Accumulation is still one
// broadcast multiply plus one add per k step in ascending order, bitwise
// identical to accum4/axpy and the naive kernel.

// func nnRow8Ptr(c, a, b *float64, k int)
// c[0:8] += a[l] * b[l*8 : l*8+8] for l in ascending order
TEXT ·nnRow8Ptr(SB), NOSPLIT, $0-32
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ k+24(FP), CX
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	XORQ AX, AX
	TESTQ CX, CX
	JZ   n8done
n8loop:
	VBROADCASTSD (SI)(AX*8), Y0
	VMULPD  (R8), Y0, Y3
	VADDPD  Y3, Y1, Y1
	VMULPD  32(R8), Y0, Y4
	VADDPD  Y4, Y2, Y2
	ADDQ $64, R8
	INCQ AX
	CMPQ AX, CX
	JL   n8loop
n8done:
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	VZEROUPPER
	RET

// func nnRow4Ptr(c, a, b *float64, k int)
// c[0:4] += a[l] * b[l*4 : l*4+4] for l in ascending order
TEXT ·nnRow4Ptr(SB), NOSPLIT, $0-32
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ k+24(FP), CX
	VMOVUPD (DI), Y1
	XORQ AX, AX
	TESTQ CX, CX
	JZ   n4done
n4loop:
	VBROADCASTSD (SI)(AX*8), Y0
	VMULPD  (R8), Y0, Y3
	VADDPD  Y3, Y1, Y1
	ADDQ $32, R8
	INCQ AX
	CMPQ AX, CX
	JL   n4loop
n4done:
	VMOVUPD Y1, (DI)
	VZEROUPPER
	RET

// func nnRow8x2Ptr(c0, c1, a0, a1, b *float64, k int)
// Two adjacent C rows at once: the two accumulation chains interleave so
// the VADDPD latency of one row hides behind the other, and each packed B
// row is loaded once and used twice. Per-row arithmetic order is exactly
// nnRow8Ptr's.
TEXT ·nnRow8x2Ptr(SB), NOSPLIT, $0-48
	MOVQ c0+0(FP), DI
	MOVQ c1+8(FP), DX
	MOVQ a0+16(FP), SI
	MOVQ a1+24(FP), R9
	MOVQ b+32(FP), R8
	MOVQ k+40(FP), CX
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	VMOVUPD (DX), Y3
	VMOVUPD 32(DX), Y4
	XORQ AX, AX
	TESTQ CX, CX
	JZ   n82done
n82loop:
	VBROADCASTSD (SI)(AX*8), Y0
	VBROADCASTSD (R9)(AX*8), Y5
	VMOVUPD (R8), Y6
	VMOVUPD 32(R8), Y7
	VMULPD  Y6, Y0, Y8
	VADDPD  Y8, Y1, Y1
	VMULPD  Y7, Y0, Y9
	VADDPD  Y9, Y2, Y2
	VMULPD  Y6, Y5, Y8
	VADDPD  Y8, Y3, Y3
	VMULPD  Y7, Y5, Y9
	VADDPD  Y9, Y4, Y4
	ADDQ $64, R8
	INCQ AX
	CMPQ AX, CX
	JL   n82loop
n82done:
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	VMOVUPD Y3, (DX)
	VMOVUPD Y4, 32(DX)
	VZEROUPPER
	RET

// func nnRow4x2Ptr(c0, c1, a0, a1, b *float64, k int)
TEXT ·nnRow4x2Ptr(SB), NOSPLIT, $0-48
	MOVQ c0+0(FP), DI
	MOVQ c1+8(FP), DX
	MOVQ a0+16(FP), SI
	MOVQ a1+24(FP), R9
	MOVQ b+32(FP), R8
	MOVQ k+40(FP), CX
	VMOVUPD (DI), Y1
	VMOVUPD (DX), Y3
	XORQ AX, AX
	TESTQ CX, CX
	JZ   n42done
n42loop:
	VBROADCASTSD (SI)(AX*8), Y0
	VBROADCASTSD (R9)(AX*8), Y5
	VMOVUPD (R8), Y6
	VMULPD  Y6, Y0, Y8
	VADDPD  Y8, Y1, Y1
	VMULPD  Y6, Y5, Y8
	VADDPD  Y8, Y3, Y3
	ADDQ $32, R8
	INCQ AX
	CMPQ AX, CX
	JL   n42loop
n42done:
	VMOVUPD Y1, (DI)
	VMOVUPD Y3, (DX)
	VZEROUPPER
	RET
