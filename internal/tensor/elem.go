package tensor

import "math"

// Vectorised elementwise kernels. Unlike the GEMM reductions, these ops
// are embarrassingly per-element: every output element is produced by its
// own short chain of individually rounded IEEE operations on the matching
// input elements, with no cross-element accumulation. Reordering lanes into
// SIMD registers therefore cannot change a single bit — VADDPD on four
// lanes performs the same four independent roundings the scalar loop does —
// so the AVX2 bindings in elem_amd64.s are bitwise identical to the
// portable loops below, which remain the reference (and the non-amd64
// implementation). Division and square root are included: VDIVPD and
// VSQRTPD are correctly rounded per lane, exactly like their scalar forms.
//
// The package-level function variables follow the accum4/axpy pattern:
// declared here with the portable implementation, rebound to the AVX2
// versions by the amd64 init when the CPU qualifies.
var (
	vaddTo = vaddToGeneric // dst[i] = a[i] + b[i]
	vaddIn = vaddInGeneric // dst[i] += src[i]
	vmulTo = vmulToGeneric // dst[i] = a[i] * b[i]
	vscale = vscaleGeneric // dst[i] *= alpha

	adamKernel = adamUpdateGeneric
)

func vaddToGeneric(dst, a, b []float64) {
	if len(dst) == 0 {
		return
	}
	_ = a[len(dst)-1]
	_ = b[len(dst)-1]
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

func vaddInGeneric(dst, src []float64) {
	if len(dst) == 0 {
		return
	}
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] += src[i]
	}
}

func vmulToGeneric(dst, a, b []float64) {
	if len(dst) == 0 {
		return
	}
	_ = a[len(dst)-1]
	_ = b[len(dst)-1]
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

func vscaleGeneric(dst []float64, alpha float64) {
	for i := range dst {
		dst[i] *= alpha
	}
}

// adamUpdateGeneric is the reference AdamW update, one parameter element at
// a time. The expression shapes (and so the rounding sequence) are pinned:
// the AVX2 kernel and nn.Adam must perform exactly these operations in
// exactly this order per element.
func adamUpdateGeneric(val, grad, m, v []float64, lr, b1, b2, eps, wd, bc1, bc2 float64) {
	_ = grad[len(val)-1]
	_ = m[len(val)-1]
	_ = v[len(val)-1]
	for i := range val {
		g := grad[i]
		m[i] = b1*m[i] + (1-b1)*g
		v[i] = b2*v[i] + (1-b2)*g*g
		mh := m[i] / bc1
		vh := v[i] / bc2
		val[i] -= lr * (mh/(math.Sqrt(vh)+eps) + wd*val[i])
	}
}

// AdamUpdate applies one AdamW step over the flat parameter data: the
// first- and second-moment updates, bias correction by the precomputed
// 1−βᵗ factors, and the decoupled weight-decay update, elementwise. It is
// the hot loop of nn.Adam, hoisted here so the amd64 build can vectorise
// it (bitwise identically — see the package comment) with the rest of the
// elementwise kernels.
func AdamUpdate(value, grad, m, v *Matrix, lr, beta1, beta2, eps, weightDecay, bc1, bc2 float64) {
	if phantomAny(value, grad, m, v) {
		return
	}
	adamKernel(value.Data, grad.Data, m.Data, v.Data, lr, beta1, beta2, eps, weightDecay, bc1, bc2)
}
