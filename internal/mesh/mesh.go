// Package mesh maps the paper's [q, q, d] Tesseract processor arrangement
// (Figure 3) onto cluster ranks and builds the communicator groups every
// algorithm needs: rows and columns inside a depth layer, depth fibres, whole
// layers, and "slabs" (all processors sharing a grid column across layers).
//
// Rank layout is layer-major: rank = base + k·q² + i·q + j. With 4 GPUs per
// node this keeps each layer's rows packed onto as few nodes as possible,
// matching the paper's observation that Tesseract communicates most inside a
// layer and rarely across depth.
package mesh

import (
	"fmt"

	"repro/internal/dist"
)

// Shape is a [q, q, d] Tesseract arrangement. D = 1 is the 2-D (SUMMA /
// Optimus) special case; D = Q is the 3-D special case.
type Shape struct {
	Q, D int
	// Base is the first cluster rank used by the mesh, allowing several
	// meshes (e.g. data-parallel replicas, Figure 6) to share a cluster.
	Base int
}

// Size returns the number of processors p = d·q².
func (s Shape) Size() int { return s.Q * s.Q * s.D }

// Validate checks the paper's constraint 1 ≤ d ≤ q.
func (s Shape) Validate() error {
	if s.Q < 1 || s.D < 1 {
		return fmt.Errorf("mesh: invalid shape [%d,%d,%d]", s.Q, s.Q, s.D)
	}
	if s.D > s.Q {
		return fmt.Errorf("mesh: depth d=%d exceeds dimension q=%d (paper requires 1 <= d <= q)", s.D, s.Q)
	}
	return nil
}

// Rank returns the cluster rank of grid position (i, j, k).
func (s Shape) Rank(i, j, k int) int { return s.Base + k*s.Q*s.Q + i*s.Q + j }

// Coords inverts Rank.
func (s Shape) Coords(rank int) (i, j, k int) {
	r := rank - s.Base
	q2 := s.Q * s.Q
	k = r / q2
	r %= q2
	return r / s.Q, r % s.Q, k
}

// Proc is one processor's view of the mesh: its coordinates plus the
// communicator groups it participates in. All groups order their members
// canonically (ascending in the varying coordinate) so every member builds
// identical groups.
type Proc struct {
	W       *dist.Worker
	Shape   Shape
	I, J, K int

	// Row spans (I, *, K): the q processors in this row of this layer,
	// ordered by j. SUMMA broadcasts A panels here.
	Row *dist.Group
	// Col spans (*, J, K): the q processors in this column of this layer,
	// ordered by i. SUMMA broadcasts B panels here.
	Col *dist.Group
	// Depth spans (I, J, *): the d processors stacked behind this grid
	// position, ordered by k. Parameter gradients are all-reduced here.
	Depth *dist.Group
	// Layer spans (*, *, K): the q² processors of this depth layer,
	// row-major.
	Layer *dist.Group
	// Slab spans (*, J, *): the d·q processors sharing grid column J,
	// ordered by block row h = i + k·q (i.e. k-major then i). Activations
	// row-split across (i, k) are gathered here.
	Slab *dist.Group
	// All spans the whole mesh, ordered layer-major like the rank layout.
	All *dist.Group
}

// NewProc builds the mesh view for the calling worker. It panics if the
// worker's rank lies outside the mesh or the shape is invalid.
func NewProc(w *dist.Worker, s Shape) *Proc {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if w.Rank() < s.Base || w.Rank() >= s.Base+s.Size() {
		panic(fmt.Sprintf("mesh: rank %d outside mesh base=%d size=%d", w.Rank(), s.Base, s.Size()))
	}
	i, j, k := s.Coords(w.Rank())
	p := &Proc{W: w, Shape: s, I: i, J: j, K: k}
	c := w.Cluster()

	row := make([]int, s.Q)
	col := make([]int, s.Q)
	for t := 0; t < s.Q; t++ {
		row[t] = s.Rank(i, t, k)
		col[t] = s.Rank(t, j, k)
	}
	p.Row = c.Group(row...)
	p.Col = c.Group(col...)

	depth := make([]int, s.D)
	for t := 0; t < s.D; t++ {
		depth[t] = s.Rank(i, j, t)
	}
	p.Depth = c.Group(depth...)

	layer := make([]int, 0, s.Q*s.Q)
	for a := 0; a < s.Q; a++ {
		for b := 0; b < s.Q; b++ {
			layer = append(layer, s.Rank(a, b, k))
		}
	}
	p.Layer = c.Group(layer...)

	slab := make([]int, 0, s.Q*s.D)
	for t := 0; t < s.D; t++ {
		for a := 0; a < s.Q; a++ {
			slab = append(slab, s.Rank(a, j, t))
		}
	}
	p.Slab = c.Group(slab...)

	all := make([]int, 0, s.Size())
	for t := 0; t < s.D; t++ {
		for a := 0; a < s.Q; a++ {
			for b := 0; b < s.Q; b++ {
				all = append(all, s.Rank(a, b, t))
			}
		}
	}
	p.All = c.Group(all...)
	return p
}

// RowRank returns the rank of (I, j, K) — used to pick SUMMA broadcast roots.
func (p *Proc) RowRank(j int) int { return p.Shape.Rank(p.I, j, p.K) }

// ColRank returns the rank of (i, J, K).
func (p *Proc) ColRank(i int) int { return p.Shape.Rank(i, p.J, p.K) }

// DepthRank returns the rank of (I, J, k).
func (p *Proc) DepthRank(k int) int { return p.Shape.Rank(p.I, p.J, k) }

// BlockRow returns the activation block-row index h = i + k·q of this
// processor (Figure 4a / Algorithm 3).
func (p *Proc) BlockRow() int { return p.I + p.K*p.Shape.Q }
