package mesh

import (
	"sync"
	"testing"

	"repro/internal/dist"
)

func TestRankCoordsRoundTrip(t *testing.T) {
	s := Shape{Q: 3, D: 2}
	seen := make(map[int]bool)
	for k := 0; k < s.D; k++ {
		for i := 0; i < s.Q; i++ {
			for j := 0; j < s.Q; j++ {
				r := s.Rank(i, j, k)
				if seen[r] {
					t.Fatalf("duplicate rank %d", r)
				}
				seen[r] = true
				gi, gj, gk := s.Coords(r)
				if gi != i || gj != j || gk != k {
					t.Fatalf("coords(%d) = (%d,%d,%d), want (%d,%d,%d)", r, gi, gj, gk, i, j, k)
				}
			}
		}
	}
	if len(seen) != s.Size() {
		t.Fatalf("covered %d ranks, want %d", len(seen), s.Size())
	}
}

func TestRankLayoutIsLayerMajor(t *testing.T) {
	s := Shape{Q: 2, D: 2}
	// Layer 0 occupies ranks 0..3, layer 1 ranks 4..7.
	if s.Rank(0, 0, 0) != 0 || s.Rank(1, 1, 0) != 3 || s.Rank(0, 0, 1) != 4 {
		t.Fatal("rank layout is not layer-major")
	}
}

func TestValidate(t *testing.T) {
	if err := (Shape{Q: 4, D: 2}).Validate(); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
	if err := (Shape{Q: 2, D: 3}).Validate(); err == nil {
		t.Fatal("d > q must be rejected (paper: 1 <= d <= q)")
	}
	if err := (Shape{Q: 0, D: 1}).Validate(); err == nil {
		t.Fatal("q = 0 must be rejected")
	}
}

func TestBaseOffset(t *testing.T) {
	s := Shape{Q: 2, D: 1, Base: 10}
	if s.Rank(0, 0, 0) != 10 || s.Rank(1, 1, 0) != 13 {
		t.Fatal("base offset not applied")
	}
	i, j, k := s.Coords(13)
	if i != 1 || j != 1 || k != 0 {
		t.Fatal("coords with base offset wrong")
	}
}

func TestProcGroups(t *testing.T) {
	s := Shape{Q: 2, D: 2}
	c := dist.New(dist.Config{WorldSize: s.Size()})
	var mu sync.Mutex
	procs := make(map[int]*Proc)
	err := c.Run(func(w *dist.Worker) error {
		p := NewProc(w, s)
		mu.Lock()
		procs[w.Rank()] = p
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Processor (1, 0, 1) has rank 4+2 = 6.
	p := procs[6]
	if p.I != 1 || p.J != 0 || p.K != 1 {
		t.Fatalf("coords wrong: (%d,%d,%d)", p.I, p.J, p.K)
	}
	wantRow := []int{6, 7} // (1,0,1), (1,1,1)
	wantCol := []int{4, 6} // (0,0,1), (1,0,1)
	wantDepth := []int{2, 6}
	wantLayer := []int{4, 5, 6, 7}
	wantSlab := []int{0, 2, 4, 6} // (0,0,0),(1,0,0),(0,0,1),(1,0,1) ordered h = i+kq
	checkRanks(t, "row", p.Row.Ranks(), wantRow)
	checkRanks(t, "col", p.Col.Ranks(), wantCol)
	checkRanks(t, "depth", p.Depth.Ranks(), wantDepth)
	checkRanks(t, "layer", p.Layer.Ranks(), wantLayer)
	checkRanks(t, "slab", p.Slab.Ranks(), wantSlab)
	if p.All.Size() != 8 {
		t.Fatalf("all group size %d", p.All.Size())
	}
	if p.BlockRow() != 1+1*2 {
		t.Fatalf("BlockRow = %d", p.BlockRow())
	}
	if p.RowRank(1) != 7 || p.ColRank(0) != 4 || p.DepthRank(0) != 2 {
		t.Fatal("rank helpers wrong")
	}
}

func TestSlabOrderMatchesBlockRows(t *testing.T) {
	s := Shape{Q: 2, D: 2}
	c := dist.New(dist.Config{WorldSize: s.Size()})
	err := c.Run(func(w *dist.Worker) error {
		p := NewProc(w, s)
		ranks := p.Slab.Ranks()
		for idx, r := range ranks {
			i, _, k := s.Coords(r)
			if h := i + k*s.Q; h != idx {
				t.Errorf("slab slot %d holds block row %d", idx, h)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func checkRanks(t *testing.T, name string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: ranks %v, want %v", name, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: ranks %v, want %v", name, got, want)
		}
	}
}

func TestProcOutsideMeshPanics(t *testing.T) {
	s := Shape{Q: 2, D: 1}
	c := dist.New(dist.Config{WorldSize: 8})
	err := c.Run(func(w *dist.Worker) error {
		if w.Rank() >= s.Size() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d: expected panic", w.Rank())
				}
			}()
			NewProc(w, s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
