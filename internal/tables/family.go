package tables

import (
	"fmt"
	"strings"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// FamilyParity is one row of the cross-family study: a scheme run through
// the shared parallel.Family interface on real data, compared element-wise
// against the serial reference layer.
type FamilyParity struct {
	// Layout is the family arrangement that was run.
	Layout parallel.Layout
	// MaxDiffY and MaxDiffDx are the largest absolute deviations of the
	// collected forward output and input gradient from the serial
	// reference.
	MaxDiffY, MaxDiffDx float64
	// SimSeconds is the simulated wall clock of the forward+backward pass.
	SimSeconds float64
	// Bytes is the simulated network traffic.
	Bytes int64
}

// FamilyParityStudy runs one real-data Transformer layer under every
// family layout through the single parallel.Family interface — the same
// generic runner path the tables use — and reports each scheme's deviation
// from the serial reference plus its simulated cost. It is the §4
// interchangeability claim as a regenerable artifact: same math, four
// layouts, one interface.
func FamilyParityStudy(layouts []parallel.Layout) ([]FamilyParity, error) {
	const (
		hidden, heads, seqLen, batch = 16, 4, 4, 8
		seed                         = 123
	)
	dataRng := tensor.NewRNG(55)
	x := tensor.RandomMatrix(batch*seqLen, hidden, dataRng)
	dy := tensor.RandomMatrix(batch*seqLen, hidden, dataRng)
	ref := nn.NewBlock(hidden, heads, seqLen, tensor.NewRNG(seed))
	wantY := ref.Forward(x)
	wantDx := ref.Backward(dy)

	var out []FamilyParity
	for _, raw := range layouts {
		l, err := raw.Normalize()
		if err != nil {
			return nil, err
		}
		c := dist.New(dist.Config{WorldSize: l.Ranks})
		var gotY, gotDx *tensor.Matrix
		err = c.Run(func(w *dist.Worker) error {
			f, err := parallel.New(w, l)
			if err != nil {
				return err
			}
			blk := f.NewBlock(hidden, heads, seqLen, tensor.NewRNG(seed))
			y := blk.Forward(f.Distribute(x))
			dx := blk.Backward(f.Distribute(dy))
			f.DrainGradients()
			fy, fdx := f.Collect(y), f.Collect(dx)
			if w.Rank() == 0 {
				gotY, gotDx = fy, fdx
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("tables: family study %s: %w", l, err)
		}
		out = append(out, FamilyParity{
			Layout:     l,
			MaxDiffY:   gotY.MaxAbsDiff(wantY),
			MaxDiffDx:  gotDx.MaxAbsDiff(wantDx),
			SimSeconds: c.MaxClock(),
			Bytes:      c.Stats().Bytes,
		})
	}
	return out, nil
}

// DefaultFamilyLayouts are the four schemes on the small comparable
// arrangements the parity study runs by default.
func DefaultFamilyLayouts() []parallel.Layout {
	return []parallel.Layout{
		{Family: "megatron", Ranks: 4},
		{Family: "optimus", Q: 2},
		{Family: "tesseract", Q: 2, D: 2},
		{Family: "seqpar", Ranks: 4},
	}
}

// FormatFamilyParity renders the cross-family study.
func FormatFamilyParity(points []FamilyParity) string {
	var b strings.Builder
	b.WriteString("Cross-family parity: one Transformer layer, one parallel.Family interface\n")
	fmt.Fprintf(&b, "%-20s %6s | %12s %12s | %12s %10s\n",
		"layout", "#GPUs", "max|Δy|", "max|Δdx|", "sim time", "traffic")
	for _, p := range points {
		fmt.Fprintf(&b, "%-20s %6d | %12.3g %12.3g | %10.3gs %8.1fKB\n",
			p.Layout, p.Layout.Ranks, p.MaxDiffY, p.MaxDiffDx, p.SimSeconds, float64(p.Bytes)/1e3)
	}
	return b.String()
}
