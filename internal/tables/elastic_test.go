package tables

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/vit"
)

// chainSegment trains `steps` fixed-batch ViT steps at layout l — seeding
// the fresh model and optimiser from ck first when ck is non-nil — and
// returns the resulting replicated checkpoint plus rank 0's last-step
// logits (nil when steps == 0).
func chainSegment(t *testing.T, l parallel.Layout, ck *parallel.Checkpoint, steps int,
	mcfg vit.ModelConfig, tc vit.TrainConfig, x *tensor.Matrix, labels []int) (*parallel.Checkpoint, *tensor.Matrix) {
	t.Helper()
	l, err := parallel.Validate(l)
	if err != nil {
		t.Fatal(err)
	}
	c := dist.New(dist.Config{WorldSize: l.Ranks})
	cks := make([]*parallel.Checkpoint, l.Ranks)
	var logits *tensor.Matrix
	err = c.Run(func(w *dist.Worker) error {
		f, err := parallel.New(w, l)
		if err != nil {
			return err
		}
		model := vit.NewDistModel(f, mcfg)
		opt := nn.NewAdam(tc.LR, tc.WeightDecay)
		if ck != nil {
			if err := parallel.Reshard(f, model, opt, ck); err != nil {
				return err
			}
		}
		params := model.Params()
		for s := 0; s < steps; s++ {
			lg := model.Forward(vit.DistributeBatch(f, x, mcfg.SeqLen))
			_, dl := nn.CrossEntropy(lg, labels)
			if w.Rank() == 0 && s == steps-1 {
				logits = lg.Clone()
			}
			for _, pa := range params {
				pa.ZeroGrad()
			}
			model.Backward(dl)
			opt.Step(params)
			f.EndStep()
		}
		out, err := parallel.Collect(f, model, opt)
		cks[w.Rank()] = out
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return cks[0], logits
}

// requireBitwise fails unless two checkpoints agree in every slot, every
// moment, and the optimiser step count — bit for bit.
func requireBitwise(t *testing.T, want, got *parallel.Checkpoint, what string) {
	t.Helper()
	if got.Step != want.Step {
		t.Errorf("%s: step count %d became %d", what, want.Step, got.Step)
	}
	if len(got.Slots) != len(want.Slots) {
		t.Fatalf("%s: slot count %d became %d", what, len(want.Slots), len(got.Slots))
	}
	for i := range want.Slots {
		a, b := want.Slots[i], got.Slots[i]
		if !a.Value.Equal(b.Value) {
			t.Errorf("%s: slot %d value drifted by %g", what, i, a.Value.MaxAbsDiff(b.Value))
		}
		if !a.M.Equal(b.M) {
			t.Errorf("%s: slot %d first moment drifted by %g", what, i, a.M.MaxAbsDiff(b.M))
		}
		if !a.V.Equal(b.V) {
			t.Errorf("%s: slot %d second moment drifted by %g", what, i, a.V.MaxAbsDiff(b.V))
		}
	}
}

// TestCheckpointRoundTripAllPairs is the cross-family re-shard property:
// for every ordered (from, to) pair of the default family layouts, a
// checkpoint collected at `from`, re-sharded onto a fresh model at `to`,
// and collected again must reproduce the original bit for bit — the
// canonical form is layout-independent, and staging plus one disjoint
// all-reduce loses nothing.
func TestCheckpointRoundTripAllPairs(t *testing.T) {
	ds, mcfg, tc := elasticFixture()
	x, labels := ds.Batch(ds.Train, []int{0, 1, 2, 3, 4, 5, 6, 7})
	layouts := DefaultFamilyLayouts()
	for _, from := range layouts {
		ck, _ := chainSegment(t, from, nil, 2, mcfg, tc, x, labels)
		for _, to := range layouts {
			t.Run(from.String()+"→"+to.String(), func(t *testing.T) {
				back, _ := chainSegment(t, to, ck, 0, mcfg, tc, x, labels)
				requireBitwise(t, ck, back, from.String()+" via "+to.String())
			})
		}
	}
}

// TestCrossLayoutReshardChain walks a checkpoint through the shrinking
// sequence the elastic path produces — tesseract [2,2,2] → tesseract
// [2,2,1] → megatron [2], two training steps at each stop — and requires
// the logits after every stop to match a serial model trained the same six
// steps within 1e-8: re-sharding does not perturb the trajectory.
func TestCrossLayoutReshardChain(t *testing.T) {
	ds, mcfg, tc := elasticFixture()
	x, labels := ds.Batch(ds.Train, []int{0, 1, 2, 3, 4, 5, 6, 7})

	// Serial reference, capturing the logits at steps 2, 4 and 6.
	model := vit.NewModel(mcfg)
	opt := nn.NewAdam(tc.LR, tc.WeightDecay)
	params := model.Params()
	var ref []*tensor.Matrix
	for s := 0; s < 6; s++ {
		lg := model.Forward(x)
		_, dl := nn.CrossEntropy(lg, labels)
		if s%2 == 1 {
			ref = append(ref, lg.Clone())
		}
		for _, pa := range params {
			pa.ZeroGrad()
		}
		model.Backward(dl)
		opt.Step(params)
	}

	chain := []parallel.Layout{
		{Family: "tesseract", Q: 2, D: 2},
		{Family: "tesseract", Q: 2, D: 1},
		{Family: "megatron", Ranks: 2},
	}
	var ck *parallel.Checkpoint
	for i, l := range chain {
		var logits *tensor.Matrix
		ck, logits = chainSegment(t, l, ck, 2, mcfg, tc, x, labels)
		if logits == nil {
			t.Fatalf("%s: no logits collected", l)
		}
		if d := logits.MaxAbsDiff(ref[i]); d > 1e-8 || math.IsNaN(d) {
			t.Errorf("%s (steps %d-%d): logits diverged from serial by %g", l, 2*i+1, 2*i+2, d)
		}
	}
}

// TestElasticStudy runs the full table and checks its correctness columns:
// every row must keep the post-reshard loss curve on the uninterrupted
// trajectory and report a positive re-shard cost.
func TestElasticStudy(t *testing.T) {
	points, err := ElasticStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(DefaultFamilyLayouts()) {
		t.Fatalf("%d rows for %d layouts", len(points), len(DefaultFamilyLayouts()))
	}
	for _, p := range points {
		if p.MaxLossDev > 1e-8 {
			t.Errorf("%s → %s: post-reshard loss deviates by %g", p.From, p.To, p.MaxLossDev)
		}
		if p.ReshardRatio <= 0 || math.IsInf(p.ReshardRatio, 0) || math.IsNaN(p.ReshardRatio) {
			t.Errorf("%s → %s: degenerate re-shard ratio %g", p.From, p.To, p.ReshardRatio)
		}
		if p.To.Ranks >= p.From.Ranks {
			t.Errorf("%s → %s: replan did not shrink the layout", p.From, p.To)
		}
	}
	t.Log("\n" + FormatElastic(points))
}
