package tables

import (
	"fmt"
	"strings"

	"repro/internal/claims"
	"repro/internal/megatron"
	"repro/internal/optimus"
	"repro/internal/plan"
	"repro/internal/seqpar"
	"repro/internal/tesseract"
)

// DefaultAlgos bundles the four built-in algorithm-family descriptors the
// planner searches over — the three schemes Tables 1 and 2 compare plus
// sequence parallelism, which wins only under tight memory budgets.
func DefaultAlgos() []plan.Algo {
	return []plan.Algo{
		tesseract.PlanAlgo(),
		optimus.PlanAlgo(),
		megatron.PlanAlgo(),
		seqpar.PlanAlgo(),
	}
}

// rowForPlan converts a planner candidate into the table row that executes
// the same configuration on the simulated cluster.
func rowForPlan(p plan.Plan, w plan.Workload) (Row, error) {
	row := Row{GPUs: p.Grid.Ranks, Batch: w.Batch, Hidden: w.Hidden, Heads: w.Heads}
	switch p.Family {
	case "megatron":
		row.Scheme = Megatron
	case "seqpar":
		row.Scheme = SeqPar
	case "optimus":
		row.Scheme = Optimus
		row.Q = p.Grid.Q
	case "tesseract":
		row.Scheme = Tesseract
		row.Q, row.D = p.Grid.Q, p.Grid.D
	default:
		return Row{}, fmt.Errorf("tables: no runner for planner family %q", p.Family)
	}
	return row, nil
}

// MeasurePlan returns the plan.Measurer that replays candidates through
// RunRow on a fresh simulated cluster. The workload's sequence length,
// layer count and recompute setting override the options so both sides of
// the predicted-vs-measured comparison describe the same execution.
func MeasurePlan(w plan.Workload, opts Options) plan.Measurer {
	w, werr := w.WithDefaults()
	opts.SeqLen = w.SeqLen
	opts.Layers = w.Layers
	opts.NoRecompute = w.NoRecompute
	return func(p plan.Plan) (plan.Measurement, error) {
		if werr != nil {
			return plan.Measurement{}, werr
		}
		row, err := rowForPlan(p, w)
		if err != nil {
			return plan.Measurement{}, err
		}
		res, err := RunRow(row, opts)
		if err != nil {
			return plan.Measurement{}, err
		}
		return plan.Measurement{Forward: res.Forward, Backward: res.Backward}, nil
	}
}

// PlannerScenario is one workload the planner study searches: a label, the
// workload itself, and the layout the paper's tables crown as best at the
// scenario's rank budget.
type PlannerScenario struct {
	// Name labels the scenario in the study output.
	Name string
	// Workload is the model being planned for.
	Workload plan.Workload
	// RankBudget is the processor budget (64 for the paper's headline
	// comparisons).
	RankBudget int
	// PaperBest is the shape of the winning row in the paper's table,
	// e.g. "[4,4,4]".
	PaperBest string
}

// PlannerScenarios returns the two headline 64-GPU problems: Table 1's
// strong-scaling model (batch 16 as in its [4,4,4] row) and Table 2's
// weak-scaling model. In both the paper's best layout is Tesseract
// [4,4,4], which is what the planner must rediscover.
func PlannerScenarios() []PlannerScenario {
	return []PlannerScenario{
		{
			Name:       "Table 1 problem (batch 16, hidden 3072, 64 heads)",
			Workload:   plan.Workload{Batch: 16, Hidden: 3072, Heads: 64},
			RankBudget: 64,
			PaperBest:  "[4,4,4]",
		},
		{
			Name:       "Table 2 problem (batch 768, hidden 4096, 64 heads)",
			Workload:   plan.Workload{Batch: 768, Hidden: 4096, Heads: 64},
			RankBudget: 64,
			PaperBest:  "[4,4,4]",
		},
	}
}

// PlannerPoint is one scenario's study result: the ranked candidates and
// the replayed validations of the leaders.
type PlannerPoint struct {
	// Scenario is the workload searched.
	Scenario PlannerScenario
	// Plans is the full ranked candidate list.
	Plans []plan.Plan
	// Validations replays the top candidates (predicted vs measured).
	Validations []plan.Validation
}

// Best returns the top-ranked plan.
func (p PlannerPoint) Best() plan.Plan { return p.Plans[0] }

// PlannerStudy searches every scenario with the default algorithm families
// and validates the top candidates against the simulated cluster —
// reproducing the paper's best-layout rows from the planner instead of
// hard-coded grids. topN bounds the replayed candidates (default 3 when
// zero).
func PlannerStudy(scenarios []PlannerScenario, topN int, opts Options) ([]PlannerPoint, error) {
	if topN <= 0 {
		topN = 3
	}
	opts = opts.withDefaults()
	var out []PlannerPoint
	for _, sc := range scenarios {
		topo := plan.Topology{Cost: opts.Cost, GPUsPerNode: opts.GPUsPerNode, RankBudget: sc.RankBudget, ExactRanks: true}
		plans, err := plan.Search(sc.Workload, topo, DefaultAlgos())
		if err != nil {
			return nil, fmt.Errorf("tables: planner study %q: %w", sc.Name, err)
		}
		vs, err := plan.ValidateTop(plans, topN, MeasurePlan(sc.Workload, opts))
		if err != nil {
			return nil, fmt.Errorf("tables: planner study %q: %w", sc.Name, err)
		}
		out = append(out, PlannerPoint{Scenario: sc, Plans: plans, Validations: vs})
	}
	return out, nil
}

// FormatPlannerStudy renders a planner study: per scenario the paper's
// best layout next to the planner's, then the validated leaders with their
// predicted-vs-measured errors and (for mesh layouts) the §3.1 per-matmul
// transfer count the ranking agrees with.
func FormatPlannerStudy(points []PlannerPoint) string {
	var b strings.Builder
	b.WriteString("Auto-parallelism planner vs the paper's best layouts\n")
	for _, pt := range points {
		best := pt.Best()
		fmt.Fprintf(&b, "\n%s (budget %d ranks)\n", pt.Scenario.Name, pt.Scenario.RankBudget)
		fmt.Fprintf(&b, "  paper best: Tesseract %s   planner best: %s\n", pt.Scenario.PaperBest, best)
		fmt.Fprintf(&b, "  %-22s | %9s %9s %7s | %14s\n", "candidate", "pred(s)", "meas(s)", "err", "§3.1 transfers")
		for _, v := range pt.Validations {
			transfers := "-"
			if g := v.Plan.Grid; g.Q > 0 {
				transfers = fmt.Sprintf("%.0f", claims.TesseractTransfersGrid(float64(g.Q), float64(max(g.D, 1))))
			}
			fmt.Fprintf(&b, "  %-22s | %9.4f %9.4f %6.1f%% | %14s\n",
				v.Plan.String(), v.Plan.Predicted.Step(), v.Measured.Step(), 100*v.StepErr, transfers)
		}
	}
	return b.String()
}
