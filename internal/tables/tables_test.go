package tables

import (
	"math"
	"strings"
	"testing"
)

// smallOpts shrinks the problem so Real mode is affordable in tests.
var smallOpts = Options{SeqLen: 4, Layers: 1}

func smallRow(s Scheme, gpus, q, d int) Row {
	return Row{Scheme: s, GPUs: gpus, Q: q, D: d, Batch: 8, Hidden: 16, Heads: 4}
}

func TestPhantomMatchesRealTiming(t *testing.T) {
	// The headline guarantee of the harness: a row timed with phantom
	// tensors reports exactly the simulated clocks of the real execution.
	for _, row := range []Row{
		smallRow(Tesseract, 8, 2, 2),
		smallRow(Tesseract, 4, 2, 1),
		smallRow(Optimus, 4, 2, 0),
		smallRow(Megatron, 4, 0, 0),
	} {
		opts := smallOpts
		opts.Real = true
		real, err := RunRow(row, opts)
		if err != nil {
			t.Fatalf("%s %s real: %v", row.Scheme, row.Shape(), err)
		}
		phantom, err := RunRow(row, smallOpts)
		if err != nil {
			t.Fatalf("%s %s phantom: %v", row.Scheme, row.Shape(), err)
		}
		if relDiff(real.Forward, phantom.Forward) > 1e-12 || relDiff(real.Backward, phantom.Backward) > 1e-12 {
			t.Fatalf("%s %s: phantom (%g, %g) != real (%g, %g)",
				row.Scheme, row.Shape(), phantom.Forward, phantom.Backward, real.Forward, real.Backward)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestRunRowDeterministic(t *testing.T) {
	row := smallRow(Tesseract, 8, 2, 2)
	a, err := RunRow(row, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRow(row, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic timing: %+v vs %+v", a, b)
	}
}

func TestTable1ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full 64-worker table in -short mode")
	}
	results, err := RunTable(Table1Rows(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	get := func(s Scheme, gpus, q, d int) Result {
		r, ok := find(results, s, gpus, q, d)
		if !ok {
			t.Fatalf("missing row %s %d [%d,%d]", s, gpus, q, d)
		}
		return r.Measured
	}
	t444 := get(Tesseract, 64, 4, 4)
	t881 := get(Tesseract, 64, 8, 1)
	m64 := get(Megatron, 64, 0, 0)
	o88 := get(Optimus, 64, 8, 0)

	// §4.1: at 64 GPUs Tesseract [4,4,4] has the lowest forward time.
	for name, r := range map[string]Result{"Megatron": m64, "Optimus": o88, "[8,8,1]": t881} {
		if t444.Forward >= r.Forward {
			t.Errorf("Tesseract [4,4,4] fwd %.4f should beat %s fwd %.4f", t444.Forward, name, r.Forward)
		}
	}
	// Backward: the SUMMA-family schemes run two extra broadcast+reduce
	// passes (Eq. 3), so the structural backward win is against the other
	// SUMMA schemes. (The paper's Megatron rows show bwd ≈ 4.4×fwd, an
	// implementation overhead our first-principles model does not copy.)
	for name, r := range map[string]Result{"Optimus": o88, "[8,8,1]": t881} {
		if t444.Backward >= r.Backward {
			t.Errorf("Tesseract [4,4,4] bwd %.4f should beat %s bwd %.4f", t444.Backward, name, r.Backward)
		}
	}
	// Depth helps at fixed q (paper: [2,2,2] vs [2,2,1], [4,4,2] vs [4,4,1]).
	if get(Tesseract, 8, 2, 2).Forward >= get(Tesseract, 4, 2, 1).Forward {
		t.Error("[2,2,2] should beat [2,2,1] forward")
	}
	if get(Tesseract, 32, 4, 2).Forward >= get(Tesseract, 16, 4, 1).Forward {
		t.Error("[4,4,2] should beat [4,4,1] forward")
	}
	// Optimus [q,q] and Tesseract [q,q,1] are the same algorithm here.
	if relDiff(get(Optimus, 16, 4, 0).Forward, get(Tesseract, 16, 4, 1).Forward) > 1e-12 {
		t.Error("Optimus [4,4] must time identically to Tesseract [4,4,1]")
	}
	// Rough factor check against the paper's 1.3751x (within a factor band).
	sp := m64.Forward / t444.Forward
	if sp < 1.05 || sp > 2.5 {
		t.Errorf("speedup vs Megatron = %.2fx, expected within [1.05, 2.5] around the paper's 1.38x", sp)
	}
}

func TestTable2ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full 64-worker table in -short mode")
	}
	results, err := RunTable(Table2Rows(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	get := func(s Scheme, gpus, q, d int) Result {
		r, ok := find(results, s, gpus, q, d)
		if !ok {
			t.Fatalf("missing row %s %d [%d,%d]", s, gpus, q, d)
		}
		return r.Measured
	}
	t444 := get(Tesseract, 64, 4, 4)
	t881 := get(Tesseract, 64, 8, 1)
	o88 := get(Optimus, 64, 8, 0)

	// §4.2: [4,4,4] beats [8,8,1] and Optimus [8,8] on both metrics.
	if t444.Throughput <= t881.Throughput || t444.Inference <= t881.Inference {
		t.Error("[4,4,4] should beat [8,8,1] in weak scaling")
	}
	if t444.Throughput <= o88.Throughput || t444.Inference <= o88.Inference {
		t.Error("[4,4,4] should beat Optimus [8,8] in weak scaling")
	}
	// Weak scaling within Tesseract: doubling depth doubles the batch at
	// (approximately) constant time — the defining property of the column.
	t221 := get(Tesseract, 4, 2, 1)
	t222 := get(Tesseract, 8, 2, 2)
	if relDiff(t221.Forward, t222.Forward) > 0.25 {
		t.Errorf("[2,2,1] and [2,2,2] forward should be close: %.4f vs %.4f", t221.Forward, t222.Forward)
	}
	t441 := get(Tesseract, 16, 4, 1)
	if relDiff(t441.Forward, t444.Forward) > 0.25 {
		t.Errorf("[4,4,1] and [4,4,4] forward should be close: %.4f vs %.4f", t441.Forward, t444.Forward)
	}
}

func TestSpeedupDerivations(t *testing.T) {
	if testing.Short() {
		t.Skip("full tables in -short mode")
	}
	res1, err := RunTable(Table1Rows(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp := StrongScalingSpeedups(res1)
	if len(sp) != 3 {
		t.Fatalf("expected 3 strong-scaling speedups, got %d", len(sp))
	}
	for _, s := range sp {
		if s.Measured <= 1 {
			t.Errorf("%s should exceed 1x, got %.3f", s.Name, s.Measured)
		}
	}
	res2, err := RunTable(Table2Rows(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wsp := WeakScalingSpeedups(res2)
	if len(wsp) == 0 {
		t.Fatal("no weak-scaling speedups derived")
	}
}

func TestBackwardIncludesRecompute(t *testing.T) {
	row := smallRow(Tesseract, 4, 2, 1)
	with, err := RunRow(row, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	optsNo := smallOpts
	optsNo.NoRecompute = true
	without, err := RunRow(row, optsNo)
	if err != nil {
		t.Fatal(err)
	}
	if with.Backward <= without.Backward {
		t.Fatal("recompute must add the forward cost to the backward phase")
	}
	if relDiff(with.Backward, without.Backward+with.Forward) > 1e-9 {
		t.Fatalf("bwd(with) = %g should equal bwd(without) %g + fwd %g",
			with.Backward, without.Backward, with.Forward)
	}
}

func TestDepthAblationMonotonic(t *testing.T) {
	points, err := DepthAblation(4, []int{1, 2, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Forward >= points[i-1].Forward {
			t.Errorf("depth %d forward %.4f should beat depth %d forward %.4f",
				points[i].D, points[i].Forward, points[i-1].D, points[i-1].Forward)
		}
	}
}

func TestMemoryStudyFormulaMatchesMeasured(t *testing.T) {
	points := MemoryStudy(4096, 4096, 4096)
	if len(points) == 0 {
		t.Fatal("empty memory study")
	}
	for _, p := range points {
		if math.Abs(p.FormulaElems-float64(p.MeasuredElems)) > 0.5 {
			t.Errorf("%s: formula %.0f vs measured %d", p.Label, p.FormulaElems, p.MeasuredElems)
		}
	}
}

func TestTransmissionStudy(t *testing.T) {
	points, err := TransmissionStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// The formula column must reproduce the paper's 31.5x / 3.75x exactly.
	if math.Abs(points[0].RatioToTesseract-31.5) > 1e-9 {
		t.Errorf("Cannon ratio %.4f, want 31.5", points[0].RatioToTesseract)
	}
	if math.Abs(points[1].RatioToTesseract-3.75) > 1e-9 {
		t.Errorf("2.5D ratio %.4f, want 3.75", points[1].RatioToTesseract)
	}
	// Cannon's measured block count equals its formula exactly (2q³−2q).
	if points[0].MeasuredBlocks != int64(math.Round(points[0].Formula)) {
		t.Errorf("Cannon measured %d, formula %.0f", points[0].MeasuredBlocks, points[0].Formula)
	}
	// The measured column uses a finer-grained convention (every pairwise
	// transfer inside a collective counts), so the broadcast-based
	// algorithms report more block messages than the paper's per-operation
	// count; Cannon, which has no collectives, must still lead by far.
	if points[0].MeasuredBlocks <= points[1].MeasuredBlocks || points[0].MeasuredBlocks <= points[2].MeasuredBlocks {
		t.Errorf("Cannon must move the most blocks: %+v", points)
	}
}

func TestFormatOutputs(t *testing.T) {
	row := smallRow(Tesseract, 4, 2, 1)
	res, err := RunRow(row, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	out := Format("test table", []TableResult{{Row: row, Measured: res}})
	for _, want := range []string{"test table", "Tesseract", "[2,2,1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	mem := FormatMemory(8, 8, 8, MemoryStudy(8, 8, 8))
	if !strings.Contains(mem, "Megatron-LM") {
		t.Error("memory table missing Megatron rows")
	}
}

func TestRowShapeStrings(t *testing.T) {
	if got := smallRow(Megatron, 4, 0, 0).Shape(); got != "[4]" {
		t.Errorf("Megatron shape %q", got)
	}
	if got := smallRow(Optimus, 4, 2, 0).Shape(); got != "[2,2]" {
		t.Errorf("Optimus shape %q", got)
	}
	if got := smallRow(Tesseract, 8, 2, 2).Shape(); got != "[2,2,2]" {
		t.Errorf("Tesseract shape %q", got)
	}
}

func TestTableRowsWellFormed(t *testing.T) {
	for _, row := range append(Table1Rows(), Table2Rows()...) {
		if row.Scheme == Tesseract && row.GPUs != row.Q*row.Q*row.D {
			t.Errorf("row %s %s: GPUs %d != q²d", row.Scheme, row.Shape(), row.GPUs)
		}
		if row.Scheme == Optimus && row.GPUs != row.Q*row.Q {
			t.Errorf("row %s %s: GPUs %d != q²", row.Scheme, row.Shape(), row.GPUs)
		}
		if row.Paper.Forward <= 0 || row.Paper.Throughput <= 0 {
			t.Errorf("row %s %s: missing paper reference values", row.Scheme, row.Shape())
		}
		// The paper's throughput/inference columns satisfy 1/(fwd+bwd)
		// and 1/fwd; verify our transcription against that identity.
		wantThru := 1 / (row.Paper.Forward + row.Paper.Backward)
		if relDiff(wantThru, row.Paper.Throughput) > 0.02 {
			t.Errorf("row %s %s: paper throughput %.4f vs 1/(fwd+bwd) %.4f",
				row.Scheme, row.Shape(), row.Paper.Throughput, wantThru)
		}
		wantInf := 1 / row.Paper.Forward
		if relDiff(wantInf, row.Paper.Inference) > 0.02 {
			t.Errorf("row %s %s: paper inference %.4f vs 1/fwd %.4f",
				row.Scheme, row.Shape(), row.Paper.Inference, wantInf)
		}
	}
}

func TestOverlapStudy(t *testing.T) {
	rows := []Row{
		smallRow(Tesseract, 4, 2, 1),
		smallRow(Tesseract, 8, 2, 2),
		smallRow(Megatron, 4, 0, 0), // skipped: no SUMMA schedule
	}
	points, err := OverlapStudy(rows, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want the 2 Tesseract rows", len(points))
	}
	for _, p := range points {
		if p.TotalCommSeconds <= 0 {
			t.Errorf("%s: no comm measured", p.Row.Shape())
		}
		if p.MeasuredFrac < 0 || p.MeasuredFrac > 1 {
			t.Errorf("%s: measured fraction %g outside [0,1]", p.Row.Shape(), p.MeasuredFrac)
		}
		if p.PredictedFrac < 0 || p.PredictedFrac > 1 {
			t.Errorf("%s: predicted fraction %g outside [0,1]", p.Row.Shape(), p.PredictedFrac)
		}
		if p.MeasuredFrac == 0 {
			t.Errorf("%s: pipelined schedule hid no comm at all", p.Row.Shape())
		}
	}
	out := FormatOverlap(points)
	for _, want := range []string{"pred frac", "[2,2,2]"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted overlap study missing %q:\n%s", want, out)
		}
	}
}

func TestFamilyParityStudy(t *testing.T) {
	points, err := FamilyParityStudy(DefaultFamilyLayouts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(points))
	}
	for _, p := range points {
		if p.MaxDiffY > 1e-9 || p.MaxDiffDx > 1e-9 {
			t.Errorf("%s diverged from serial: |Δy|=%g |Δdx|=%g", p.Layout, p.MaxDiffY, p.MaxDiffDx)
		}
		if p.SimSeconds <= 0 || p.Bytes <= 0 {
			t.Errorf("%s reported no simulated cost (%gs, %dB)", p.Layout, p.SimSeconds, p.Bytes)
		}
	}
}
