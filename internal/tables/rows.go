// Package tables is the experiment harness: it re-runs every row of the
// paper's Table 1 (strong scaling) and Table 2 (weak scaling) on the
// simulated cluster, regenerates the §1/§3.1 transmission-count and memory
// comparisons, and derives the speedup numbers quoted in §4. Timing rows run
// in phantom mode at the paper's true sizes (hidden 2048-8192): the layer
// code executes its full communication schedule while matrices stay
// shape-only, so a 64-GPU row completes in milliseconds of wall time while
// the simulated clocks report the α-β/FLOPS cost of the real schedule.
package tables

import "fmt"

// Scheme names a tensor-parallel method under test.
type Scheme string

// The three schemes of Tables 1 and 2, plus the sequence-parallel
// follow-up family the studies compare them against.
const (
	Megatron  Scheme = "Megatron-LM"
	Optimus   Scheme = "Optimus"
	Tesseract Scheme = "Tesseract"
	SeqPar    Scheme = "SeqPar"
)

// Row is one experiment configuration (one table row).
type Row struct {
	Scheme Scheme
	// GPUs is the tensor-parallel group size p.
	GPUs int
	// Q and D describe the mesh: Megatron uses neither (shape [p]),
	// Optimus uses Q ([q, q]), Tesseract uses both ([q, q, d]).
	Q, D int
	// Batch, Hidden, Heads are the model parameters of the row.
	Batch, Hidden, Heads int
	// Paper holds the published measurements printed alongside the
	// simulated columns (zero when the paper has no such row).
	Paper Result
}

// Shape renders the GPU arrangement the way the paper prints it.
func (r Row) Shape() string {
	switch r.Scheme {
	case Megatron, SeqPar:
		return fmt.Sprintf("[%d]", r.GPUs)
	case Optimus:
		return fmt.Sprintf("[%d,%d]", r.Q, r.Q)
	default:
		return fmt.Sprintf("[%d,%d,%d]", r.Q, r.Q, r.D)
	}
}

// Result holds the four measured columns of Tables 1 and 2.
type Result struct {
	// Forward and Backward are seconds per batch.
	Forward, Backward float64
	// Throughput is 1/(forward+backward) and Inference is 1/forward,
	// i.e. batches per second. The paper labels the columns "sequences
	// per second", but its printed values satisfy exactly
	// throughput = 1/(fwd+bwd) and inference = 1/fwd on every row
	// (e.g. Table 2's [4,4,4]: 1/(0.1155+0.3468) = 2.1631), so we use the
	// same definition to keep every derived speedup comparable.
	Throughput, Inference float64
}

func newResult(batch int, fwd, bwd float64) Result {
	_ = batch
	return Result{
		Forward:    fwd,
		Backward:   bwd,
		Throughput: 1 / (fwd + bwd),
		Inference:  1 / fwd,
	}
}

// DefaultSeqLen is the sequence length used by the timing experiments. The
// paper does not print its value; 512 is the usual Megatron-LM benchmark
// setting and satisfies every divisibility constraint in both tables.
const DefaultSeqLen = 512

// Table1Rows returns the twelve strong-scaling configurations of Table 1:
// fixed problem (batch 12, hidden 3072, 64 heads), with batch 16 for the
// [4,4,4] row exactly as the paper does (batch must divide d·q).
func Table1Rows() []Row {
	return []Row{
		{Scheme: Megatron, GPUs: 4, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.1225, 0.4749, 1.6739, 8.1633}},
		{Scheme: Megatron, GPUs: 16, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.1143, 0.4293, 1.8396, 8.7489}},
		{Scheme: Megatron, GPUs: 64, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.1195, 0.5306, 1.5382, 8.3682}},
		{Scheme: Optimus, GPUs: 4, Q: 2, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.1676, 0.5019, 1.4937, 5.9666}},
		{Scheme: Optimus, GPUs: 16, Q: 4, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.2099, 0.6159, 1.2109, 4.7642}},
		{Scheme: Optimus, GPUs: 64, Q: 8, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.1329, 0.3986, 1.8815, 7.5245}},
		{Scheme: Tesseract, GPUs: 4, Q: 2, D: 1, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.1666, 0.5014, 1.4970, 6.0024}},
		{Scheme: Tesseract, GPUs: 8, Q: 2, D: 2, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.0999, 0.3002, 2.4994, 10.0100}},
		{Scheme: Tesseract, GPUs: 16, Q: 4, D: 1, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.1444, 0.4343, 1.7280, 6.9252}},
		{Scheme: Tesseract, GPUs: 32, Q: 4, D: 2, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.1244, 0.3727, 2.0117, 8.0386}},
		{Scheme: Tesseract, GPUs: 64, Q: 4, D: 4, Batch: 16, Hidden: 3072, Heads: 64,
			Paper: Result{0.0869, 0.2636, 2.8531, 11.5075}},
		{Scheme: Tesseract, GPUs: 64, Q: 8, D: 1, Batch: 12, Hidden: 3072, Heads: 64,
			Paper: Result{0.1799, 0.5178, 1.4333, 5.5586}},
	}
}

// Table2Rows returns the thirteen weak-scaling configurations of Table 2:
// the per-GPU problem is pinned at [b/dq, n/q, h/n] = [24, 16, 192].
func Table2Rows() []Row {
	return []Row{
		{Scheme: Megatron, GPUs: 4, Batch: 60, Hidden: 2048, Heads: 32,
			Paper: Result{0.0793, 0.2613, 2.9360, 12.6103}},
		{Scheme: Megatron, GPUs: 16, Batch: 60, Hidden: 4096, Heads: 64,
			Paper: Result{0.2081, 0.5149, 1.3831, 4.8054}},
		{Scheme: Megatron, GPUs: 64, Batch: 30, Hidden: 8192, Heads: 128,
			Paper: Result{0.4638, 1.0963, 0.6410, 2.1561}},
		{Scheme: Optimus, GPUs: 4, Q: 2, Batch: 96, Hidden: 2048, Heads: 32,
			Paper: Result{0.0827, 0.2445, 3.0562, 12.0919}},
		{Scheme: Optimus, GPUs: 16, Q: 4, Batch: 192, Hidden: 4096, Heads: 64,
			Paper: Result{0.1829, 0.5458, 1.3723, 5.4675}},
		{Scheme: Optimus, GPUs: 64, Q: 8, Batch: 384, Hidden: 8192, Heads: 128,
			Paper: Result{0.1962, 0.5964, 1.2617, 5.0968}},
		{Scheme: Tesseract, GPUs: 1, Q: 1, D: 1, Batch: 48, Hidden: 1024, Heads: 16,
			Paper: Result{0.0603, 0.1669, 4.4014, 16.5837}},
		{Scheme: Tesseract, GPUs: 4, Q: 2, D: 1, Batch: 96, Hidden: 2048, Heads: 32,
			Paper: Result{0.0867, 0.2557, 2.9206, 11.5340}},
		{Scheme: Tesseract, GPUs: 8, Q: 2, D: 2, Batch: 192, Hidden: 2048, Heads: 32,
			Paper: Result{0.0864, 0.2552, 2.9274, 11.5741}},
		{Scheme: Tesseract, GPUs: 16, Q: 4, D: 1, Batch: 192, Hidden: 4096, Heads: 64,
			Paper: Result{0.1177, 0.3553, 2.1142, 8.4962}},
		{Scheme: Tesseract, GPUs: 32, Q: 4, D: 2, Batch: 384, Hidden: 4096, Heads: 64,
			Paper: Result{0.1173, 0.3521, 2.1304, 8.5251}},
		{Scheme: Tesseract, GPUs: 64, Q: 4, D: 4, Batch: 768, Hidden: 4096, Heads: 64,
			Paper: Result{0.1155, 0.3468, 2.1631, 8.6580}},
		{Scheme: Tesseract, GPUs: 64, Q: 8, D: 1, Batch: 384, Hidden: 8192, Heads: 128,
			Paper: Result{0.1799, 0.5178, 1.4333, 5.5586}},
	}
}
