package tables

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

// TestServingStudy: every default family layout serves the paced trace to
// completion with sane tail latencies.
func TestServingStudy(t *testing.T) {
	points, err := ServingStudy(DefaultFamilyLayouts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(DefaultFamilyLayouts()) {
		t.Fatalf("want %d rows, got %d", len(DefaultFamilyLayouts()), len(points))
	}
	for _, p := range points {
		if p.Saturated <= 0 || p.Throughput <= 0 {
			t.Fatalf("%s: non-positive throughput %+v", p.Layout, p)
		}
		if !(p.P50 > 0 && p.P50 <= p.P95 && p.P95 <= p.P99) {
			t.Fatalf("%s: percentiles not ordered: p50 %.6g p95 %.6g p99 %.6g", p.Layout, p.P50, p.P95, p.P99)
		}
		if p.Requests != 64 {
			t.Fatalf("%s: paced trace carried %d requests, want 64", p.Layout, p.Requests)
		}
	}
	out := FormatServing(points)
	for _, want := range []string{"p50(s)", "thru(r/s)", "megatron", "tesseract"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatServing missing %q:\n%s", want, out)
		}
	}
}

// TestServingPlannerStudyWithin25Percent is the acceptance gate: plan.Search
// under the serving objective ranks layouts whose serve.MeasureLayout replay
// confirms the prediction within the 25% bound, for the top 3 candidates.
func TestServingPlannerStudyWithin25Percent(t *testing.T) {
	pt, err := ServingPlannerStudy(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Validations) != 3 {
		t.Fatalf("want 3 validated leaders, got %d", len(pt.Validations))
	}
	if got := plan.MaxServingErr(pt.Validations); got > 0.25 {
		t.Fatalf("serving predicted-vs-measured error %.1f%% exceeds the 25%% bound:\n%s",
			100*got, plan.FormatServingValidations("validations", pt.Validations))
	}
	for _, v := range pt.Validations {
		if v.ThrErr > 0.25 {
			t.Fatalf("%s: throughput error %.1f%% exceeds 25%%", v.Plan, 100*v.ThrErr)
		}
	}
	if pt.Best().Grid.Ranks != 64 {
		t.Fatalf("serving best %s does not use the exact 64-rank budget", pt.Best())
	}
	out := FormatServingPlanner(pt)
	for _, want := range []string{"serving best", "training best", "meas-min"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatServingPlanner missing %q:\n%s", want, out)
		}
	}
}
