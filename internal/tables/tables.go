package tables

import (
	"fmt"
	"strings"
)

// TableResult pairs a row with its measured columns.
type TableResult struct {
	// Row is the configuration that was executed.
	Row Row
	// Measured holds the simulated timing columns.
	Measured Result
}

// RunTable executes every row with the same options.
func RunTable(rows []Row, opts Options) ([]TableResult, error) {
	out := make([]TableResult, 0, len(rows))
	for _, r := range rows {
		res, err := RunRow(r, opts)
		if err != nil {
			return nil, fmt.Errorf("row %s %s: %w", r.Scheme, r.Shape(), err)
		}
		out = append(out, TableResult{Row: r, Measured: res})
	}
	return out, nil
}

// Format renders results in the layout of the paper's tables, with the
// published numbers alongside when available.
func Format(title string, results []TableResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %5s %-9s %5s %6s %5s | %9s %9s %10s %10s | %9s %9s %10s %10s\n",
		"method", "#GPUs", "shape", "batch", "hidden", "heads",
		"fwd(s)", "bwd(s)", "thru(seq/s)", "inf(seq/s)",
		"paper-fwd", "paper-bwd", "paper-thru", "paper-inf")
	b.WriteString(strings.Repeat("-", 150) + "\n")
	for _, r := range results {
		row, m := r.Row, r.Measured
		fmt.Fprintf(&b, "%-12s %5d %-9s %5d %6d %5d | %9.4f %9.4f %10.4f %10.4f",
			row.Scheme, row.GPUs, row.Shape(), row.Batch, row.Hidden, row.Heads,
			m.Forward, m.Backward, m.Throughput, m.Inference)
		if row.Paper.Forward > 0 {
			fmt.Fprintf(&b, " | %9.4f %9.4f %10.4f %10.4f", row.Paper.Forward, row.Paper.Backward, row.Paper.Throughput, row.Paper.Inference)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Speedup is one of the §4 headline comparisons, measured and published.
type Speedup struct {
	// Name describes the comparison, e.g. "throughput vs Optimus [8,8]".
	Name string
	// Measured and Paper are the simulated and published ratios.
	Measured, Paper float64
}

// find locates the result for a (scheme, gpus, q, d) row.
func find(results []TableResult, s Scheme, gpus, q, d int) (TableResult, bool) {
	for _, r := range results {
		if r.Row.Scheme == s && r.Row.GPUs == gpus && r.Row.Q == q && r.Row.D == d {
			return r, true
		}
	}
	return TableResult{}, false
}

// StrongScalingSpeedups derives the §4.1 claims from Table 1 results:
// Tesseract [4,4,4] forward time vs Megatron [64] (paper: 1.3751×), vs
// Optimus [8,8] (1.5293×), and vs Tesseract [8,8,1] (2.0702×).
func StrongScalingSpeedups(results []TableResult) []Speedup {
	t444, ok1 := find(results, Tesseract, 64, 4, 4)
	m64, ok2 := find(results, Megatron, 64, 0, 0)
	o88, ok3 := find(results, Optimus, 64, 8, 0)
	t881, ok4 := find(results, Tesseract, 64, 8, 1)
	if !(ok1 && ok2 && ok3 && ok4) {
		return nil
	}
	return []Speedup{
		{"forward speedup vs Megatron-LM [64]", m64.Measured.Forward / t444.Measured.Forward, 1.3751},
		{"forward speedup vs Optimus [8,8]", o88.Measured.Forward / t444.Measured.Forward, 1.5293},
		{"forward speedup vs Tesseract [8,8,1]", t881.Measured.Forward / t444.Measured.Forward, 2.0702},
	}
}

// WeakScalingSpeedups derives the §4.2 claims from Table 2 results at 64
// GPUs: throughput 3.3746×/1.7144× and inference 4.0156×/1.6987× vs
// Megatron/Optimus, plus the [4,4,4]-vs-[8,8,1] ratios 1.5092×/1.5576×.
func WeakScalingSpeedups(results []TableResult) []Speedup {
	t444, ok1 := find(results, Tesseract, 64, 4, 4)
	m64, ok2 := find(results, Megatron, 64, 0, 0)
	o88, ok3 := find(results, Optimus, 64, 8, 0)
	t881, ok4 := find(results, Tesseract, 64, 8, 1)
	if !(ok1 && ok2 && ok3 && ok4) {
		return nil
	}
	perSeq := func(r TableResult) float64 {
		return (r.Measured.Forward + r.Measured.Backward) / float64(r.Row.Batch)
	}
	return []Speedup{
		{"throughput vs Megatron-LM [64]", t444.Measured.Throughput / m64.Measured.Throughput, 3.3746},
		{"throughput vs Optimus [8,8]", t444.Measured.Throughput / o88.Measured.Throughput, 1.7144},
		{"inference vs Megatron-LM [64]", t444.Measured.Inference / m64.Measured.Inference, 4.0156},
		{"inference vs Optimus [8,8]", t444.Measured.Inference / o88.Measured.Inference, 1.6987},
		{"throughput vs Tesseract [8,8,1]", t444.Measured.Throughput / t881.Measured.Throughput, 1.5092},
		{"inference vs Tesseract [8,8,1]", t444.Measured.Inference / t881.Measured.Inference, 1.5576},
		// Per-sequence normalisation (ours): Table 2 rows carry very
		// different batch sizes (768 vs 30 at 64 GPUs), so we also report
		// time-per-sequence ratios, where the partitioning advantage is
		// independent of the batch discrepancy. The paper prints no such
		// row; the reference value is the batch-ratio-adjusted throughput.
		{"per-sequence time vs Megatron-LM [64]", perSeq(m64) / perSeq(t444), 3.3746 * 768 / 30},
		{"per-sequence time vs Optimus [8,8]", perSeq(o88) / perSeq(t444), 1.7144 * 768 / 384},
	}
}

// FormatSpeedups renders a speedup list.
func FormatSpeedups(title string, sp []Speedup) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, s := range sp {
		fmt.Fprintf(&b, "  %-45s measured %6.3fx   paper %6.3fx\n", s.Name, s.Measured, s.Paper)
	}
	return b.String()
}
