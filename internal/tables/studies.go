package tables

import (
	"fmt"
	"strings"

	"repro/internal/cannon"
	"repro/internal/claims"
	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/solomonik"
	"repro/internal/summa"
	"repro/internal/tensor"
)

// AblationPoint is one depth setting in the depth-sweep ablation.
type AblationPoint struct {
	// Q and D are the mesh dimensions of the point ([q, q, d]).
	Q, D int
	// GPUs is the resulting processor count q²·d.
	GPUs int
	// Result carries the measured timing columns.
	Result
}

// DepthAblation sweeps the Tesseract depth at fixed q for the Table 1
// problem (batch 16, hidden 3072, 64 heads), isolating the paper's central
// trade: deeper meshes shrink the SUMMA panels broadcast inside each layer
// at the cost of the (rare) depth all-reduce.
func DepthAblation(q int, depths []int, opts Options) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, d := range depths {
		row := Row{Scheme: Tesseract, GPUs: q * q * d, Q: q, D: d, Batch: 16, Hidden: 3072, Heads: 64}
		res, err := RunRow(row, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Q: q, D: d, GPUs: row.GPUs, Result: res})
	}
	return out, nil
}

// FormatAblation renders a depth sweep.
func FormatAblation(points []AblationPoint) string {
	var b strings.Builder
	b.WriteString("Depth ablation (strong scaling problem, hidden 3072, batch 16)\n")
	fmt.Fprintf(&b, "%-10s %5s | %9s %9s %10s\n", "shape", "#GPUs", "fwd(s)", "bwd(s)", "thru(seq/s)")
	for _, p := range points {
		fmt.Fprintf(&b, "[%d,%d,%d]    %5d | %9.4f %9.4f %10.4f\n", p.Q, p.Q, p.D, p.GPUs, p.Forward, p.Backward, p.Throughput)
	}
	return b.String()
}

// MemoryPoint compares per-GPU memory for a single [a,b]·[b,c] multiply.
type MemoryPoint struct {
	// Label names the arrangement, e.g. "Tesseract [4,4,2]".
	Label string
	// GPUs is the processor count of the arrangement.
	GPUs int
	// FormulaElems is the Eq. 7-10 element count per processor.
	FormulaElems float64
	// MeasuredElems is what the implementation actually holds.
	MeasuredElems int
}

// MemoryStudy evaluates Eqs. 7-10 and cross-checks them against the element
// counts the implementations actually hold per processor (A block + B block
// + C block for Tesseract; replicated input + weight/output shards for
// Megatron-LM).
func MemoryStudy(a, b, c int) []MemoryPoint {
	var out []MemoryPoint
	for _, cfg := range []struct{ q, d int }{{2, 1}, {2, 2}, {4, 2}, {4, 4}} {
		p := cfg.q * cfg.q * cfg.d
		measured := a/(cfg.d*cfg.q)*(b/cfg.q) + b/cfg.q*(c/cfg.q) + a/(cfg.d*cfg.q)*(c/cfg.q)
		out = append(out, MemoryPoint{
			Label:         fmt.Sprintf("Tesseract [%d,%d,%d]", cfg.q, cfg.q, cfg.d),
			GPUs:          p,
			FormulaElems:  claims.MemoryTesseract(float64(a), float64(b), float64(c), float64(cfg.q), float64(cfg.d)),
			MeasuredElems: measured,
		})
	}
	for _, p := range []int{4, 8, 32, 64} {
		measured := a*b + b*(c/p) + a*(c/p)
		out = append(out, MemoryPoint{
			Label:         fmt.Sprintf("Megatron-LM [%d]", p),
			GPUs:          p,
			FormulaElems:  claims.MemoryMegatron(float64(a), float64(b), float64(c), float64(p)),
			MeasuredElems: measured,
		})
	}
	return out
}

// FormatMemory renders the memory study.
func FormatMemory(a, b, c int, points []MemoryPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Per-GPU memory for one [%d,%d]x[%d,%d] multiply (Eqs. 7-10), in elements\n", a, b, b, c)
	fmt.Fprintf(&sb, "%-22s %5s %14s %14s\n", "arrangement", "#GPUs", "formula", "measured")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-22s %5d %14.0f %14d\n", p.Label, p.GPUs, p.FormulaElems, p.MeasuredElems)
	}
	return sb.String()
}

// TransmissionPoint compares the paper's closed-form transfer counts with
// the block-message counts our implementations actually generate for one
// matrix multiplication at p = 64.
type TransmissionPoint struct {
	// Algorithm names the scheme and its arrangement.
	Algorithm string
	// Formula is the paper's closed-form transfer count.
	Formula float64
	// MeasuredBlocks counts the pairwise block transfers our
	// implementation generated.
	MeasuredBlocks int64
	// RatioToTesseract is Formula divided by Tesseract's formula count.
	RatioToTesseract float64
}

// TransmissionStudy reproduces the §1 claim (Cannon 31.5×, 2.5-D 3.75× the
// communication of Tesseract at 64 GPUs). The formula column uses the
// paper's expressions; the measured column counts every pairwise block
// transfer in our implementations (broadcast/reduce over n ranks = n−1
// transfers, all-reduce = 2(n−1)), which uses a finer-grained convention
// than the paper's per-operation count and is reported for transparency.
func TransmissionStudy() ([]TransmissionPoint, error) {
	const p = 64

	countMessages := func(shape mesh.Shape, run func(pr *mesh.Proc) error) (int64, error) {
		c := dist.New(dist.Config{WorldSize: shape.Size()})
		if err := c.Run(func(w *dist.Worker) error {
			return run(mesh.NewProc(w, shape))
		}); err != nil {
			return 0, err
		}
		return c.Stats().Messages, nil
	}

	cannonCount, err := countMessages(mesh.Shape{Q: 8, D: 1}, func(pr *mesh.Proc) error {
		cannon.MulAB(pr, tensor.NewPhantom(8, 8), tensor.NewPhantom(8, 8))
		return nil
	})
	if err != nil {
		return nil, err
	}
	soloCount, err := countMessages(mesh.Shape{Q: 4, D: 4}, func(pr *mesh.Proc) error {
		var la, lb *tensor.Matrix
		if pr.K == 0 {
			la, lb = tensor.NewPhantom(8, 8), tensor.NewPhantom(8, 8)
		}
		solomonik.MulAB(pr, la, lb)
		return nil
	})
	if err != nil {
		return nil, err
	}
	tessCount, err := countMessages(mesh.Shape{Q: 4, D: 4}, func(pr *mesh.Proc) error {
		summa.MulAB(pr, tensor.NewPhantom(4, 8), tensor.NewPhantom(8, 8))
		return nil
	})
	if err != nil {
		return nil, err
	}

	tess := claims.TesseractTransfers(p)
	return []TransmissionPoint{
		{"Cannon [8,8]", claims.CannonTransfers(p), cannonCount, claims.CannonTransfers(p) / tess},
		{"2.5-D [4,4,4]", claims.Solomonik25DTransfers(p), soloCount, claims.Solomonik25DTransfers(p) / tess},
		{"Tesseract [4,4,4]", tess, tessCount, 1},
	}, nil
}

// FormatTransmissions renders the transmission study.
func FormatTransmissions(points []TransmissionPoint) string {
	var b strings.Builder
	b.WriteString("Inter-GPU transfers for one matmul at p = 64 (paper §1/§3.1)\n")
	fmt.Fprintf(&b, "%-18s %14s %16s %18s\n", "algorithm", "paper formula", "measured blocks", "formula/Tesseract")
	for _, p := range points {
		fmt.Fprintf(&b, "%-18s %14.1f %16d %18.2f\n", p.Algorithm, p.Formula, p.MeasuredBlocks, p.RatioToTesseract)
	}
	return b.String()
}
