package tables

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

// TestPlannerStudyRediscoversPaperBest is the PR's acceptance gate: at a
// 64-rank budget the planner must rank candidates from all three families,
// put Tesseract [4,4,4] first on both headline problems (the layout the
// paper's Tables 1 and 2 crown), and predict the replayed step times of
// the top three candidates to within 25%.
func TestPlannerStudyRediscoversPaperBest(t *testing.T) {
	points, err := PlannerStudy(PlannerScenarios(), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("expected 2 scenarios, got %d", len(points))
	}
	for _, pt := range points {
		fams := map[string]bool{}
		for _, p := range pt.Plans {
			fams[p.Family] = true
		}
		if len(fams) < 3 {
			t.Errorf("%s: ranking covers %d families, want 3", pt.Scenario.Name, len(fams))
		}
		best := pt.Best()
		if best.Family != "tesseract" || best.Grid.Shape() != pt.Scenario.PaperBest {
			t.Errorf("%s: planner best = %s, paper best = Tesseract %s",
				pt.Scenario.Name, best, pt.Scenario.PaperBest)
		}
		if len(pt.Validations) != 3 {
			t.Errorf("%s: %d validations, want 3", pt.Scenario.Name, len(pt.Validations))
		}
		if maxErr := plan.MaxStepErr(pt.Validations); maxErr > 0.25 {
			t.Errorf("%s: top-3 step error %.1f%% exceeds the 25%% acceptance bound",
				pt.Scenario.Name, 100*maxErr)
		}
	}
}

// TestMeasurePlanMatchesRunRow pins the adapter: measuring a plan must be
// exactly RunRow on the equivalent row, with the workload's sequence
// length and recompute setting winning over the options'.
func TestMeasurePlanMatchesRunRow(t *testing.T) {
	w := plan.Workload{Batch: 8, Hidden: 16, Heads: 4, SeqLen: 4}
	p := plan.Plan{Family: "tesseract", Grid: plan.Grid{Ranks: 8, Q: 2, D: 2}}
	got, err := MeasurePlan(w, Options{SeqLen: 999})(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunRow(Row{Scheme: Tesseract, GPUs: 8, Q: 2, D: 2, Batch: 8, Hidden: 16, Heads: 4},
		Options{SeqLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Forward != want.Forward || got.Backward != want.Backward {
		t.Fatalf("MeasurePlan = %+v, RunRow = %+v", got, want)
	}

	if _, err := MeasurePlan(w, Options{})(plan.Plan{Family: "nope"}); err == nil {
		t.Fatal("unknown family must error")
	}
}

// TestFormatPlannerStudySmoke keeps the renderer wired to the data.
func TestFormatPlannerStudySmoke(t *testing.T) {
	points, err := PlannerStudy(PlannerScenarios()[:1], 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatPlannerStudy(points)
	for _, want := range []string{"paper best: Tesseract [4,4,4]", "planner best:", "§3.1 transfers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("study output missing %q:\n%s", want, out)
		}
	}
}
