package tables

import (
	"strings"
	"testing"
)

// TestStragglerStudy runs the full sweep and pins the acceptance scenario:
// every severity is detected, the 4× straggler pays for a re-layout that
// beats riding it out, and no row's loss curve drifts past 1e-8.
func TestStragglerStudy(t *testing.T) {
	points, err := StragglerStudy()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(DefaultFamilyLayouts()) * len(StragglerFactors); len(points) != want {
		t.Fatalf("got %d rows, want %d", len(points), want)
	}
	for _, p := range points {
		if p.DetectedStep < 0 {
			t.Errorf("%s ×%g: straggler never detected", p.From, p.Factor)
		}
		if p.MaxLossDev > 1e-8 {
			t.Errorf("%s ×%g: loss deviation %.3g exceeds 1e-8", p.From, p.Factor, p.MaxLossDev)
		}
		if p.RodeOut == (p.RelayoutStep >= 0) {
			t.Errorf("%s ×%g: inconsistent outcome: RodeOut=%v RelayoutStep=%d", p.From, p.Factor, p.RodeOut, p.RelayoutStep)
		}
		if p.RodeOut && p.RideOutReason == "" {
			t.Errorf("%s ×%g: ride-out without a reason", p.From, p.Factor)
		}
		if !p.RodeOut && p.Speedup <= 1 {
			t.Errorf("%s ×%g: re-layout chosen but did not beat ride-out (%.2f×)", p.From, p.Factor, p.Speedup)
		}
		if p.Factor == 4 && p.From.Family == "tesseract" && p.RodeOut {
			t.Errorf("tesseract ×4: expected a re-layout, rode out: %s", p.RideOutReason)
		}
	}
	text := FormatStraggler(points)
	if !strings.Contains(text, "Gray failures") || !strings.Contains(text, "max|Δloss|") {
		t.Errorf("FormatStraggler output missing expected headings:\n%s", text)
	}
	t.Logf("\n%s", text)
}
