package tables

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/megatron"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/vit"
)

// ElasticPoint is one row of the elastic study: a family/layout pair taken
// through the full loop — train, checkpoint, lose a rank, replan, re-shard,
// resume — with the re-shard cost put next to the step cost it competes
// with.
type ElasticPoint struct {
	// From is the layout training started on; To is the layout the replan
	// picked for the survivors.
	From, To parallel.Layout
	// FailedRank and FailClock are the structured abort cause.
	FailedRank int
	FailClock  float64
	// CollectSeconds and RestoreSeconds are the simulated costs of the
	// checkpoint snapshot and the re-shard onto To.
	CollectSeconds, RestoreSeconds float64
	// StepSeconds is the steady training-step cost at To.
	StepSeconds float64
	// ReshardRatio is (collect + restore) / step: how many training steps
	// one full re-shard costs.
	ReshardRatio float64
	// MaxLossDev is the largest deviation of the post-reshard loss curve
	// from an uninterrupted run at To — the ≤1e-8 continuity check.
	MaxLossDev float64
}

// ElasticStudy runs the elastic loop for every default family layout on the
// tiny real-data ViT: inject a rank loss mid-training, recover, and measure
// what the re-shard cost buys relative to just stepping. The loss-curve
// deviation column doubles as the correctness witness — re-sharding is a
// no-op for the training trajectory.
func ElasticStudy() ([]ElasticPoint, error) {
	ds, mcfg, tc := elasticFixture()
	const failStep, totalSteps = 2, 4
	// The per-rank memory budget sits just below the single-rank footprint —
	// the usual elastic constraint: the model no longer fits on one survivor,
	// so the replan must keep a genuinely distributed layout.
	w := plan.Workload{Batch: tc.BatchSize, SeqLen: mcfg.SeqLen, Hidden: mcfg.Hidden, Heads: mcfg.Heads, Layers: mcfg.Layers}
	topo := plan.Topology{MemoryBudget: megatron.PlanAlgo().Memory(w, plan.Grid{Ranks: 1}) - 1}
	var out []ElasticPoint
	for _, from := range DefaultFamilyLayouts() {
		run, err := vit.TrainElastic(from, vit.ElasticConfig{
			FailStep:   failStep,
			TotalSteps: totalSteps,
			FailRank:   -1,
			Algos:      DefaultAlgos(),
			Topology:   topo,
		}, ds, mcfg, tc)
		if err != nil {
			return nil, fmt.Errorf("tables: elastic study %s: %w", from, err)
		}
		ref, err := vit.TrainLayoutSteps(run.To, ds, mcfg, tc, totalSteps)
		if err != nil {
			return nil, fmt.Errorf("tables: elastic reference %s: %w", run.To, err)
		}
		var dev float64
		for s := failStep; s < totalSteps; s++ {
			dev = math.Max(dev, math.Abs(run.Losses[s]-ref[s]))
		}
		out = append(out, ElasticPoint{
			From:           run.From,
			To:             run.To,
			FailedRank:     run.Failure.Rank,
			FailClock:      run.Failure.Clock,
			CollectSeconds: run.CollectSeconds,
			RestoreSeconds: run.RestoreSeconds,
			StepSeconds:    run.StepSeconds,
			ReshardRatio:   (run.CollectSeconds + run.RestoreSeconds) / run.StepSeconds,
			MaxLossDev:     dev,
		})
	}
	return out, nil
}

// elasticFixture is the tiny real-data training setup the elastic study
// shares with the cross-family tests: small enough to run every layout in a
// test, divisible enough for every default family.
func elasticFixture() (*vit.Dataset, vit.ModelConfig, vit.TrainConfig) {
	dcfg := vit.DataConfig{
		Classes: 4, ImageSize: 8, Channels: 3, PatchSize: 4,
		Train: 8, Test: 4, Noise: 0.3, Seed: 11,
	}
	ds := vit.NewDataset(dcfg)
	mcfg := vit.ModelConfig{
		PatchDim: dcfg.PatchDim(),
		SeqLen:   dcfg.Patches(),
		Hidden:   16,
		Heads:    4,
		Layers:   2,
		Classes:  dcfg.Classes,
		Seed:     3,
	}
	tc := vit.TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 21}
	return ds, mcfg, tc
}

// FormatElastic renders the elastic study.
func FormatElastic(points []ElasticPoint) string {
	var b strings.Builder
	b.WriteString("Elastic re-layout: lose a rank mid-training, replan, re-shard, resume\n")
	fmt.Fprintf(&b, "%-18s %-18s | %5s %9s | %10s %10s %10s | %9s %10s\n",
		"from", "to (replanned)", "dead", "at", "collect", "restore", "step", "reshard/", "max|Δloss|")
	fmt.Fprintf(&b, "%-18s %-18s | %5s %9s | %10s %10s %10s | %9s %10s\n",
		"", "", "", "", "", "", "", "step", "")
	for _, p := range points {
		fmt.Fprintf(&b, "%-18s %-18s | %5d %8.3gs | %9.3gs %9.3gs %9.3gs | %9.2f %10.2g\n",
			p.From, p.To, p.FailedRank, p.FailClock,
			p.CollectSeconds, p.RestoreSeconds, p.StepSeconds, p.ReshardRatio, p.MaxLossDev)
	}
	b.WriteString("re-shard cost counts the replicated snapshot plus the broadcast re-distribution;\n")
	b.WriteString("max|Δloss| compares post-reshard steps against an uninterrupted run at the new layout.\n")
	return b.String()
}
