package tables

import (
	"fmt"
	"strings"

	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/serve"
	"repro/internal/vit"
)

// ServingPoint is one family/layout row of the serving study: tail
// latencies and admission counts from a paced Poisson trace, plus the
// saturated throughput the pacing was derived from.
type ServingPoint struct {
	// Layout is the family arrangement that served.
	Layout parallel.Layout
	// Saturated is the layout's measured saturated throughput in requests
	// per simulated second (burst probe, full batches).
	Saturated float64
	// Rate is the offered Poisson rate of the paced trace (0.7×Saturated,
	// so queues form without melting down).
	Rate float64
	// Requests, Rejected and Batches count the paced trace.
	Requests, Rejected, Batches int
	// MeanBatch is the average real batch size the forwards ran at.
	MeanBatch float64
	// P50, P95 and P99 are enqueue→reply latency percentiles in simulated
	// seconds.
	P50, P95, P99 float64
	// Throughput is the paced trace's completed requests per simulated
	// second.
	Throughput float64
}

// servingFixture is the small real-data ViT the study serves — the same
// model BenchmarkTesseractStep trains.
func servingFixture() (*vit.Dataset, vit.ModelConfig, vit.TrainConfig) {
	dcfg := vit.DataConfig{Classes: 4, ImageSize: 8, Channels: 3, PatchSize: 4, Train: 8, Test: 4, Seed: 11}
	ds := vit.NewDataset(dcfg)
	mcfg := vit.ModelConfig{
		PatchDim: dcfg.PatchDim(), SeqLen: dcfg.Patches(),
		Hidden: 16, Heads: 4, Layers: 2, Classes: dcfg.Classes, Seed: 3,
	}
	tc := vit.TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.003, WeightDecay: 0.05, Seed: 5}
	return ds, mcfg, tc
}

// ServingStudy serves the small trained ViT under every default family
// layout through the continuous batcher and reports p50/p95/p99 latency,
// throughput and admission behaviour per layout — the serving twin of the
// cross-family parity study. Each layout is probed saturated first; the
// paced trace then offers 70% of that rate, so the batcher sees both
// coalescing slack and occasional backlog.
func ServingStudy(layouts []parallel.Layout) ([]ServingPoint, error) {
	ds, mcfg, tc := servingFixture()
	cfg := serve.Config{MaxBatch: 8, LatencyBudget: 2e-3, QueueDepth: 16}
	var out []ServingPoint
	for _, raw := range layouts {
		l, err := raw.Normalize()
		if err != nil {
			return nil, err
		}
		srv, err := serve.NewServer(l, ds, mcfg, tc, cfg)
		if err != nil {
			return nil, fmt.Errorf("tables: serving study %s: %w", l, err)
		}
		if err := srv.TrainSteps(3); err != nil {
			return nil, fmt.Errorf("tables: serving study %s: %w", l, err)
		}
		probe, err := srv.Serve(serve.Saturated(cfg.QueueDepth))
		if err != nil {
			return nil, fmt.Errorf("tables: serving study %s: %w", l, err)
		}
		rate := 0.7 * probe.Throughput()
		rep, err := srv.Serve(serve.ArrivalConfig{N: 64, Rate: rate, Seed: 2022})
		if err != nil {
			return nil, fmt.Errorf("tables: serving study %s: %w", l, err)
		}
		out = append(out, ServingPoint{
			Layout:    l,
			Saturated: probe.Throughput(),
			Rate:      rate,
			Requests:  len(rep.Requests), Rejected: rep.Rejected, Batches: len(rep.Batches),
			MeanBatch: rep.MeanBatch(),
			P50:       rep.P50(), P95: rep.P95(), P99: rep.P99(),
			Throughput: rep.Throughput(),
		})
	}
	return out, nil
}

// FormatServing renders the serving study.
func FormatServing(points []ServingPoint) string {
	var b strings.Builder
	b.WriteString("Serving study: continuous batching per family/layout (paced at 0.7× saturation)\n")
	fmt.Fprintf(&b, "%-20s %6s | %10s %9s | %4s %4s %6s | %10s %10s %10s | %10s\n",
		"layout", "#GPUs", "sat(r/s)", "rate", "rej", "bat", "meanB", "p50(s)", "p95(s)", "p99(s)", "thru(r/s)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-20s %6d | %10.1f %9.1f | %4d %4d %6.2f | %10.3g %10.3g %10.3g | %10.1f\n",
			p.Layout, p.Layout.Ranks, p.Saturated, p.Rate,
			p.Rejected, p.Batches, p.MeanBatch,
			p.P50, p.P95, p.P99, p.Throughput)
	}
	return b.String()
}

// ServingPlannerPoint is the serving-planner study result: the ranked
// candidates under the serving objective and the replayed validations of
// the leaders.
type ServingPlannerPoint struct {
	// Workload is the model searched for.
	Workload plan.Workload
	// Objective is the latency/throughput weighting used.
	Objective plan.ServingObjective
	// Plans is the full ranked candidate list.
	Plans []plan.ServingPlan
	// Validations replays the top candidates through serve.MeasureLayout.
	Validations []plan.ServingValidation
	// TrainingBest names the layout plain plan.Search (the training
	// objective) ranks first on the same workload — the comparison the
	// serving objective exists to beat.
	TrainingBest string
}

// Best returns the top-ranked serving plan.
func (p ServingPlannerPoint) Best() plan.ServingPlan { return p.Plans[0] }

// ServingPlannerStudy searches the Table 1 problem under the serving
// objective at a 64-rank budget and validates the leaders through
// serve.MeasureLayout — predicted-vs-measured for the forward-only serving
// path, the same loop PlannerStudy closes for training. topN bounds the
// replayed candidates (default 3 when zero).
func ServingPlannerStudy(topN int, opts Options) (*ServingPlannerPoint, error) {
	if topN <= 0 {
		topN = 3
	}
	opts = opts.withDefaults()
	w := plan.Workload{Batch: 16, SeqLen: opts.SeqLen, Hidden: 3072, Heads: 64, Layers: opts.Layers}
	topo := plan.Topology{Cost: opts.Cost, GPUsPerNode: opts.GPUsPerNode, RankBudget: 64, ExactRanks: true}
	o := plan.ServingObjective{}
	plans, err := plan.SearchServing(w, topo, DefaultAlgos(), o)
	if err != nil {
		return nil, fmt.Errorf("tables: serving planner study: %w", err)
	}
	vs, err := plan.ValidateServingTop(plans, topN, serve.Measurer(w, topo))
	if err != nil {
		return nil, fmt.Errorf("tables: serving planner study: %w", err)
	}
	pt := &ServingPlannerPoint{Workload: w, Objective: o, Plans: plans, Validations: vs}
	if trained, err := plan.Search(w, topo, DefaultAlgos()); err == nil && len(trained) > 0 {
		pt.TrainingBest = trained[0].String()
	}
	return pt, nil
}

// FormatServingPlanner renders the serving-planner study: the serving
// ranking next to the training winner, then the validated leaders.
func FormatServingPlanner(pt *ServingPlannerPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving-objective planner (Table 1 problem, 64 ranks; forward-only)\n")
	fmt.Fprintf(&b, "  serving best: %s   training best: %s\n\n", pt.Best(), pt.TrainingBest)
	b.WriteString(plan.FormatServingPlans("  Ranked serving candidates (top 8)", pt.Plans, 8))
	b.WriteString("\n")
	b.WriteString(plan.FormatServingValidations("  Validated leaders (serve.MeasureLayout replay)", pt.Validations))
	return b.String()
}
