package tables

import (
	"fmt"
	"strings"

	"repro/internal/dist"
)

// OverlapPoint compares the cost model's predicted hidden-communication
// fraction for a double-buffered SUMMA schedule against what the simulated
// run actually measured (dist.Cluster.Overlap) over a full Transformer
// layer forward+backward.
type OverlapPoint struct {
	Row Row
	// PredictedFrac is dist.HiddenFraction evaluated on the per-iteration
	// comm and GEMM time of the layer's dominant multiply (the h → 4h MLP
	// projection): min(comm, compute)/comm.
	PredictedFrac float64
	// MeasuredFrac is hidden/total simulated comm seconds across all ranks
	// and all collectives of the phase — layer norms, biases and gradient
	// sync included, which is why it needn't match the prediction exactly.
	MeasuredFrac float64
	// HiddenSeconds and TotalCommSeconds are the measured numerator and
	// denominator.
	HiddenSeconds, TotalCommSeconds float64
}

// OverlapStudy runs Tesseract rows in phantom mode and reports predicted
// versus measured communication overlap for each. Rows from other schemes
// are skipped (they have no pipelined SUMMA schedule to predict).
func OverlapStudy(rows []Row, opts Options) ([]OverlapPoint, error) {
	opts = opts.withDefaults()
	var out []OverlapPoint
	for _, row := range rows {
		if row.Scheme != Tesseract {
			continue
		}
		pt, err := overlapRow(row, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func overlapRow(row Row, opts Options) (OverlapPoint, error) {
	c := dist.New(dist.Config{
		WorldSize:   row.GPUs,
		GPUsPerNode: opts.GPUsPerNode,
		Cost:        opts.Cost,
	})
	runners := make([]blockRunner, row.GPUs)
	if err := c.Run(func(w *dist.Worker) error {
		r, err := newRunner(row, opts, w)
		if err != nil {
			return err
		}
		runners[w.Rank()] = r
		return nil
	}); err != nil {
		return OverlapPoint{}, err
	}
	c.ResetClocks()
	if err := c.Run(func(w *dist.Worker) error {
		runners[w.Rank()].forward()
		runners[w.Rank()].backward()
		return nil
	}); err != nil {
		return OverlapPoint{}, err
	}
	hidden, total := c.Overlap()
	pt := OverlapPoint{Row: row, HiddenSeconds: hidden, TotalCommSeconds: total}
	if total > 0 {
		pt.MeasuredFrac = hidden / total
	}

	// Prediction: one iteration of the MLP's h → 4h forward SUMMA. The A
	// panel ([b·s/(dq), h/q]) dominates the broadcasts; the per-iteration
	// GEMM multiplies it against the resident [h/q, 4h/q] block.
	cost := opts.Cost
	q, d := row.Q, row.D
	rowsLocal := float64(row.Batch) * float64(opts.SeqLen) / float64(q*d)
	hq := float64(row.Hidden) / float64(q)
	panelBytes := int64(8 * rowsLocal * hq)
	interNode := q > opts.GPUsPerNode // a grid row larger than a node spans nodes
	comm := cost.BroadcastSeconds(q, panelBytes, interNode)
	compute := cost.GEMMSeconds(rowsLocal, 4*hq, hq)
	pt.PredictedFrac = dist.HiddenFraction(comm, compute)
	return pt, nil
}

// FormatOverlap renders an overlap study.
func FormatOverlap(points []OverlapPoint) string {
	var b strings.Builder
	b.WriteString("Communication overlap: double-buffered SUMMA, predicted vs measured\n")
	fmt.Fprintf(&b, "%-10s %5s | %10s %10s | %12s %12s\n",
		"shape", "#GPUs", "pred frac", "meas frac", "hidden(s)", "comm(s)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %5d | %10.3f %10.3f | %12.5f %12.5f\n",
			p.Row.Shape(), p.Row.GPUs, p.PredictedFrac, p.MeasuredFrac, p.HiddenSeconds, p.TotalCommSeconds)
	}
	return b.String()
}
