package tables

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/megatron"
	"repro/internal/mesh"
	"repro/internal/optimus"
	"repro/internal/tensor"
	"repro/internal/tesseract"
)

// Options controls how the harness executes a row.
type Options struct {
	// SeqLen is the Transformer sequence length (default DefaultSeqLen).
	SeqLen int
	// Layers is the number of Transformer layers timed (default 1; the
	// paper reports per-layer-stack times whose absolute scale we do not
	// reproduce, only the relative shape).
	Layers int
	// Cost overrides the machine model (default dist.MeluxinaModel).
	Cost dist.CostModel
	// GPUsPerNode overrides the node size (default 4, as on Meluxina).
	GPUsPerNode int
	// Real executes with real random matrices instead of phantoms. Only
	// sensible for small hidden sizes (tests use it to validate the
	// phantom path).
	Real bool
	// NoRecompute disables activation checkpointing. By default the
	// backward pass re-runs the forward first (recompute), which is how
	// memory-constrained runs at the paper's sizes execute and which
	// matches the paper's uniform backward ≈ 3× forward ratio across all
	// twelve Table 1 rows.
	NoRecompute bool
	// Seed seeds parameter/data generation in Real mode.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.SeqLen == 0 {
		o.SeqLen = DefaultSeqLen
	}
	if o.Layers == 0 {
		o.Layers = 1
	}
	if o.Cost.FLOPS == 0 {
		o.Cost = dist.MeluxinaModel()
	}
	if o.GPUsPerNode == 0 {
		o.GPUsPerNode = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// blockRunner abstracts one rank's view of a Transformer layer stack so the
// three schemes share the timing scaffold.
type blockRunner interface {
	forward()
	backward()
}

// RunRow executes one table row on a fresh simulated cluster and returns the
// measured columns. The forward pass and backward pass are timed separately
// by resetting the simulated clocks in between, exactly mirroring the
// paper's forward-time/backward-time split.
func RunRow(row Row, opts Options) (Result, error) {
	opts = opts.withDefaults()
	c := dist.New(dist.Config{
		WorldSize:   row.GPUs,
		GPUsPerNode: opts.GPUsPerNode,
		Cost:        opts.Cost,
	})
	runners := make([]blockRunner, row.GPUs)

	// Phase 0 (untimed): construct the model and inputs.
	err := c.Run(func(w *dist.Worker) error {
		r, err := newRunner(row, opts, w)
		if err != nil {
			return err
		}
		runners[w.Rank()] = r
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	// Phase 1: forward.
	c.ResetClocks()
	if err := c.Run(func(w *dist.Worker) error {
		runners[w.Rank()].forward()
		return nil
	}); err != nil {
		return Result{}, err
	}
	fwd := c.MaxClock()

	// Phase 2: backward (with activation recomputation unless disabled).
	c.ResetClocks()
	if err := c.Run(func(w *dist.Worker) error {
		if !opts.NoRecompute {
			runners[w.Rank()].forward()
		}
		runners[w.Rank()].backward()
		return nil
	}); err != nil {
		return Result{}, err
	}
	bwd := c.MaxClock()

	return newResult(row.Batch, fwd, bwd), nil
}

func newRunner(row Row, opts Options, w *dist.Worker) (blockRunner, error) {
	switch row.Scheme {
	case Megatron:
		return newMegatronRunner(row, opts, w)
	case Optimus:
		return newOptimusRunner(row, opts, w)
	case Tesseract:
		return newTesseractRunner(row, opts, w)
	default:
		return nil, fmt.Errorf("tables: unknown scheme %q", row.Scheme)
	}
}

// --- Tesseract -------------------------------------------------------------

type tesseractRunner struct {
	p      *tesseract.Proc
	blocks []*tesseract.Block
	x, dy  *tensor.Matrix
	out    []*tensor.Matrix
}

func newTesseractRunner(row Row, opts Options, w *dist.Worker) (*tesseractRunner, error) {
	s := mesh.Shape{Q: row.Q, D: row.D}
	if s.Size() != row.GPUs {
		return nil, fmt.Errorf("tables: shape %s has %d processors, row says %d", row.Shape(), s.Size(), row.GPUs)
	}
	p := tesseract.NewProcAt(w, s)
	rows := row.Batch * opts.SeqLen / (row.Q * row.D)
	cols := row.Hidden / row.Q
	r := &tesseractRunner{p: p}
	for l := 0; l < opts.Layers; l++ {
		if opts.Real {
			r.blocks = append(r.blocks, tesseract.NewBlock(p, row.Hidden, row.Heads, opts.SeqLen, tensor.NewRNG(opts.Seed+uint64(l))))
		} else {
			r.blocks = append(r.blocks, tesseract.NewBlockPhantom(p, row.Hidden, row.Heads, opts.SeqLen))
		}
	}
	if opts.Real {
		r.x = tensor.RandomMatrix(rows, cols, tensor.NewRNG(opts.Seed+100+uint64(w.Rank())))
		r.dy = tensor.RandomMatrix(rows, cols, tensor.NewRNG(opts.Seed+200+uint64(w.Rank())))
	} else {
		r.x = tensor.NewPhantom(rows, cols)
		r.dy = tensor.NewPhantom(rows, cols)
	}
	return r, nil
}

func (r *tesseractRunner) forward() {
	x := r.x
	for _, b := range r.blocks {
		x = b.Forward(r.p, x)
	}
	r.out = append(r.out[:0], x)
}

func (r *tesseractRunner) backward() {
	dy := r.dy
	for i := len(r.blocks) - 1; i >= 0; i-- {
		dy = r.blocks[i].Backward(r.p, dy)
	}
	// The depth all-reduces overlap the per-layer backward work; the row
	// reports the time with that overlap, so drain inside the timed phase.
	r.p.DrainGradients()
}

// --- Optimus ---------------------------------------------------------------

type optimusRunner struct {
	p      *optimus.Proc
	blocks []*optimus.Block
	x, dy  *tensor.Matrix
}

func newOptimusRunner(row Row, opts Options, w *dist.Worker) (*optimusRunner, error) {
	if row.Q*row.Q != row.GPUs {
		return nil, fmt.Errorf("tables: Optimus shape %s has %d processors, row says %d", row.Shape(), row.Q*row.Q, row.GPUs)
	}
	p := optimus.NewProc(w, row.Q)
	rows := row.Batch * opts.SeqLen / row.Q
	cols := row.Hidden / row.Q
	r := &optimusRunner{p: p}
	for l := 0; l < opts.Layers; l++ {
		if opts.Real {
			r.blocks = append(r.blocks, optimus.NewBlock(p, row.Hidden, row.Heads, opts.SeqLen, tensor.NewRNG(opts.Seed+uint64(l))))
		} else {
			r.blocks = append(r.blocks, optimus.NewBlockPhantom(p, row.Hidden, row.Heads, opts.SeqLen))
		}
	}
	if opts.Real {
		r.x = tensor.RandomMatrix(rows, cols, tensor.NewRNG(opts.Seed+100+uint64(w.Rank())))
		r.dy = tensor.RandomMatrix(rows, cols, tensor.NewRNG(opts.Seed+200+uint64(w.Rank())))
	} else {
		r.x = tensor.NewPhantom(rows, cols)
		r.dy = tensor.NewPhantom(rows, cols)
	}
	return r, nil
}

func (r *optimusRunner) forward() {
	x := r.x
	for _, b := range r.blocks {
		x = b.Forward(r.p, x)
	}
}

func (r *optimusRunner) backward() {
	dy := r.dy
	for i := len(r.blocks) - 1; i >= 0; i-- {
		dy = r.blocks[i].Backward(r.p, dy)
	}
}

// --- Megatron --------------------------------------------------------------

type megatronRunner struct {
	p      *megatron.Proc
	blocks []*megatron.Block
	x, dy  *tensor.Matrix
}

func newMegatronRunner(row Row, opts Options, w *dist.Worker) (*megatronRunner, error) {
	p := megatron.NewProc(w, row.GPUs)
	rows := row.Batch * opts.SeqLen // activations fully replicated
	r := &megatronRunner{p: p}
	for l := 0; l < opts.Layers; l++ {
		if opts.Real {
			r.blocks = append(r.blocks, megatron.NewBlock(p, row.Hidden, row.Heads, opts.SeqLen, tensor.NewRNG(opts.Seed+uint64(l))))
		} else {
			r.blocks = append(r.blocks, megatron.NewBlockPhantom(p, row.Hidden, row.Heads, opts.SeqLen))
		}
	}
	if opts.Real {
		r.x = tensor.RandomMatrix(rows, row.Hidden, tensor.NewRNG(opts.Seed+100))
		r.dy = tensor.RandomMatrix(rows, row.Hidden, tensor.NewRNG(opts.Seed+200))
	} else {
		r.x = tensor.NewPhantom(rows, row.Hidden)
		r.dy = tensor.NewPhantom(rows, row.Hidden)
	}
	return r, nil
}

func (r *megatronRunner) forward() {
	x := r.x
	for _, b := range r.blocks {
		x = b.Forward(r.p, x)
	}
}

func (r *megatronRunner) backward() {
	dy := r.dy
	for i := len(r.blocks) - 1; i >= 0; i-- {
		dy = r.blocks[i].Backward(r.p, dy)
	}
}
