package tables

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Options controls how the harness executes a row.
type Options struct {
	// SeqLen is the Transformer sequence length (default DefaultSeqLen).
	SeqLen int
	// Layers is the number of Transformer layers timed (default 1; the
	// paper reports per-layer-stack times whose absolute scale we do not
	// reproduce, only the relative shape).
	Layers int
	// Cost overrides the machine model (default dist.MeluxinaModel).
	Cost dist.CostModel
	// GPUsPerNode overrides the node size (default 4, as on Meluxina).
	GPUsPerNode int
	// Real executes with real random matrices instead of phantoms. Only
	// sensible for small hidden sizes (tests use it to validate the
	// phantom path).
	Real bool
	// NoRecompute disables activation checkpointing. By default the
	// backward pass re-runs the forward first (recompute), which is how
	// memory-constrained runs at the paper's sizes execute and which
	// matches the paper's uniform backward ≈ 3× forward ratio across all
	// twelve Table 1 rows.
	NoRecompute bool
	// Seed seeds parameter/data generation in Real mode.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.SeqLen == 0 {
		o.SeqLen = DefaultSeqLen
	}
	if o.Layers == 0 {
		o.Layers = 1
	}
	if o.Cost.FLOPS == 0 {
		o.Cost = dist.MeluxinaModel()
	}
	if o.GPUsPerNode == 0 {
		o.GPUsPerNode = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// blockRunner abstracts one rank's view of a Transformer layer stack so the
// three schemes share the timing scaffold.
type blockRunner interface {
	forward()
	backward()
}

// RunRow executes one table row on a fresh simulated cluster and returns the
// measured columns. The forward pass and backward pass are timed separately
// by resetting the simulated clocks in between, exactly mirroring the
// paper's forward-time/backward-time split.
func RunRow(row Row, opts Options) (Result, error) {
	opts = opts.withDefaults()
	c := dist.New(dist.Config{
		WorldSize:   row.GPUs,
		GPUsPerNode: opts.GPUsPerNode,
		Cost:        opts.Cost,
	})
	runners := make([]blockRunner, row.GPUs)

	// Phase 0 (untimed): construct the model and inputs.
	err := c.Run(func(w *dist.Worker) error {
		r, err := newRunner(row, opts, w)
		if err != nil {
			return err
		}
		runners[w.Rank()] = r
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	// Phase 1: forward.
	c.ResetClocks()
	if err := c.Run(func(w *dist.Worker) error {
		runners[w.Rank()].forward()
		return nil
	}); err != nil {
		return Result{}, err
	}
	fwd := c.MaxClock()

	// Phase 2: backward (with activation recomputation unless disabled).
	c.ResetClocks()
	if err := c.Run(func(w *dist.Worker) error {
		if !opts.NoRecompute {
			runners[w.Rank()].forward()
		}
		runners[w.Rank()].backward()
		return nil
	}); err != nil {
		return Result{}, err
	}
	bwd := c.MaxClock()

	return newResult(row.Batch, fwd, bwd), nil
}

// LayoutForRow converts a table row into the runtime layout its scheme
// registers with the parallel package, validating the processor count.
func LayoutForRow(row Row) (parallel.Layout, error) {
	var l parallel.Layout
	switch row.Scheme {
	case Megatron:
		l = parallel.Layout{Family: "megatron", Ranks: row.GPUs}
	case SeqPar:
		l = parallel.Layout{Family: "seqpar", Ranks: row.GPUs}
	case Optimus:
		l = parallel.Layout{Family: "optimus", Q: row.Q}
	case Tesseract:
		l = parallel.Layout{Family: "tesseract", Q: row.Q, D: row.D}
	default:
		return l, fmt.Errorf("tables: unknown scheme %q", row.Scheme)
	}
	l, err := l.Normalize()
	if err != nil {
		return l, err
	}
	if l.Ranks != row.GPUs {
		return l, fmt.Errorf("tables: shape %s has %d processors, row says %d", row.Shape(), l.Ranks, row.GPUs)
	}
	return l, nil
}

// familyRunner drives a layer stack of any family through the timing
// scaffold: the schemes differ only in the parallel.Family they
// instantiate, which is the whole point of the interface.
type familyRunner struct {
	f      parallel.Family
	blocks []parallel.Layer
	x, dy  *tensor.Matrix
	out    []*tensor.Matrix
}

func newRunner(row Row, opts Options, w *dist.Worker) (blockRunner, error) {
	l, err := LayoutForRow(row)
	if err != nil {
		return nil, err
	}
	f, err := parallel.New(w, l)
	if err != nil {
		return nil, err
	}
	r := &familyRunner{f: f}
	for i := 0; i < opts.Layers; i++ {
		if opts.Real {
			r.blocks = append(r.blocks, f.NewBlock(row.Hidden, row.Heads, opts.SeqLen, tensor.NewRNG(opts.Seed+uint64(i))))
		} else {
			r.blocks = append(r.blocks, f.NewBlockPhantom(row.Hidden, row.Heads, opts.SeqLen))
		}
	}
	sl := f.Slice(row.Batch*opts.SeqLen, row.Hidden)
	if opts.Real {
		// Replicated activations (Megatron) must be identical on every
		// rank; split activations get independent per-rank blocks.
		seed := opts.Seed
		if sl.Rows != row.Batch*opts.SeqLen || sl.Cols != row.Hidden {
			seed += uint64(w.Rank())
		}
		r.x = tensor.RandomMatrix(sl.Rows, sl.Cols, tensor.NewRNG(seed+100))
		r.dy = tensor.RandomMatrix(sl.Rows, sl.Cols, tensor.NewRNG(seed+200))
	} else {
		r.x = tensor.NewPhantom(sl.Rows, sl.Cols)
		r.dy = tensor.NewPhantom(sl.Rows, sl.Cols)
	}
	return r, nil
}

func (r *familyRunner) forward() {
	x := r.x
	for _, b := range r.blocks {
		x = b.Forward(x)
	}
	r.out = append(r.out[:0], x)
}

func (r *familyRunner) backward() {
	dy := r.dy
	for i := len(r.blocks) - 1; i >= 0; i-- {
		dy = r.blocks[i].Backward(dy)
	}
	// Deferred gradient synchronisations (Tesseract's §3.1 depth
	// all-reduces) overlap the per-layer backward work; the row reports
	// the time with that overlap, so drain inside the timed phase.
	r.f.DrainGradients()
}
