package tables

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dist"
	"repro/internal/megatron"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/vit"
)

// StragglerPoint is one row of the gray-failure study: a family/layout pair
// hit by a compute straggler of a given severity, priced both ways — ride
// the degradation out, or detect it, checkpoint, and re-layout onto the
// healthy ranks.
type StragglerPoint struct {
	// From is the layout training started on; To is what the watchdog moved
	// to (equal to From when it rode the fault out).
	From, To parallel.Layout
	// Factor is the compute slowdown injected on the last rank.
	Factor float64
	// DetectedStep is when the watchdog flagged the straggler (-1: never).
	DetectedStep int
	// RelayoutStep is when training moved to To (-1: rode it out).
	RelayoutStep int
	// RodeOut reports the watchdog decided to stay put; RideOutReason says
	// why (payback, no feasible layout, ...).
	RodeOut       bool
	RideOutReason string
	// HealthyStepSeconds and DegradedStepSeconds bracket the fault's cost:
	// cluster step time before the fault vs in the detection window.
	HealthyStepSeconds, DegradedStepSeconds float64
	// AdaptiveSeconds is the total simulated time of the watchdog run
	// (including checkpoint collect and re-shard restore when it moved);
	// RideOutSeconds is the same run with no watchdog, dragging the
	// straggler to the end.
	AdaptiveSeconds, RideOutSeconds float64
	// Speedup is RideOutSeconds / AdaptiveSeconds — above 1, re-laying-out
	// beat riding it out.
	Speedup float64
	// MaxLossDev is the largest deviation of the watchdog run's loss curve
	// from uninterrupted references (pre-relayout steps against From,
	// post-relayout against To) — the ≤1e-8 continuity witness.
	MaxLossDev float64
}

// stragglerCost is the machine model the study prices faults against. The
// study's fixture is the tiny real-data ViT, whose per-step arithmetic is
// far too small to register at accelerator FLOPS — at the Meluxina preset
// the run is α-dominated and a compute straggler would be invisible in the
// step clock. Scaling FLOPS down (and α with it) makes the fixture
// compute-bound the way the paper's real workloads are, so slowdown factors
// surface in step time at their nominal magnitude.
func stragglerCost() dist.CostModel {
	return dist.CostModel{FLOPS: 1e8, Alpha: 1e-7, BetaIntra: 1.0 / 250e9, BetaInter: 1.0 / 6.25e9}
}

// StragglerFactors are the slowdown severities the study sweeps, as in the
// gray-failure literature: barely-sick, clearly sick, nearly dead.
var StragglerFactors = []float64{2, 4, 8}

// StragglerStudy prices each severity on every default family layout: the
// last rank slows down after a clean probe window, and the watchdog either
// re-lays-out onto the healthy ranks or rides it out when the payback is
// not there. The loss-deviation column doubles as the correctness witness —
// gray faults and re-layouts move clocks, never arithmetic.
func StragglerStudy() ([]StragglerPoint, error) {
	ds, mcfg, tc := elasticFixture()
	const totalSteps, probe = 24, 6
	w := plan.Workload{Batch: tc.BatchSize, SeqLen: mcfg.SeqLen, Hidden: mcfg.Hidden, Heads: mcfg.Heads, Layers: mcfg.Layers}
	topo := plan.Topology{
		Cost: stragglerCost(),
		// As in the elastic study: the model must stay distributed.
		MemoryBudget: megatron.PlanAlgo().Memory(w, plan.Grid{Ranks: 1}) - 1,
	}
	var out []StragglerPoint
	for _, from := range DefaultFamilyLayouts() {
		from, err := from.Normalize()
		if err != nil {
			return nil, fmt.Errorf("tables: straggler study: %w", err)
		}
		for _, factor := range StragglerFactors {
			fp := &dist.FaultPlan{Ranks: []dist.RankFault{{
				Rank: from.Ranks - 1, From: probe, To: dist.Forever, Factor: factor,
			}}}
			run, err := vit.TrainAdaptive(from, vit.AdaptiveConfig{
				TotalSteps: totalSteps,
				Probe:      probe,
				// K 1.5 keeps the 2× straggler detectable: its busy time
				// includes sends the slowdown does not stretch, so the
				// busy ratio lands just under the nominal factor.
				Monitor:  dist.MonitorConfig{Window: probe, K: 1.5, W: 3},
				Faults:   fp,
				Algos:    DefaultAlgos(),
				Topology: topo,
			}, ds, mcfg, tc)
			if err != nil {
				return nil, fmt.Errorf("tables: straggler study %s ×%g: %w", from, factor, err)
			}
			rideOut, err := vit.TrainFaulty(from, fp, stragglerCost(), ds, mcfg, tc, totalSteps)
			if err != nil {
				return nil, fmt.Errorf("tables: straggler ride-out %s ×%g: %w", from, factor, err)
			}
			dev, err := stragglerLossDev(run, ds, mcfg, tc, totalSteps)
			if err != nil {
				return nil, err
			}
			out = append(out, StragglerPoint{
				From:                run.From,
				To:                  run.To,
				Factor:              factor,
				DetectedStep:        run.DetectedStep,
				RelayoutStep:        run.RelayoutStep,
				RodeOut:             run.RodeOut,
				RideOutReason:       run.RideOutReason,
				HealthyStepSeconds:  run.HealthyStepSeconds,
				DegradedStepSeconds: run.DegradedStepSeconds,
				AdaptiveSeconds:     run.TotalSeconds,
				RideOutSeconds:      rideOut.Seconds,
				Speedup:             rideOut.Seconds / run.TotalSeconds,
				MaxLossDev:          dev,
			})
		}
	}
	return out, nil
}

// stragglerLossDev compares a watchdog run's loss curve against
// uninterrupted references: steps before the re-layout against the original
// layout, steps after it against the new one.
func stragglerLossDev(run *vit.AdaptiveRun, ds *vit.Dataset, mcfg vit.ModelConfig, tc vit.TrainConfig, total int) (float64, error) {
	cut := run.RelayoutStep
	if cut < 0 {
		cut = total
	}
	var dev float64
	refFrom, err := vit.TrainLayoutSteps(run.From, ds, mcfg, tc, cut)
	if err != nil {
		return 0, fmt.Errorf("tables: straggler reference %s: %w", run.From, err)
	}
	for s := 0; s < cut; s++ {
		dev = math.Max(dev, math.Abs(run.Losses[s]-refFrom[s]))
	}
	if cut < total {
		refTo, err := vit.TrainLayoutSteps(run.To, ds, mcfg, tc, total)
		if err != nil {
			return 0, fmt.Errorf("tables: straggler reference %s: %w", run.To, err)
		}
		for s := cut; s < total; s++ {
			dev = math.Max(dev, math.Abs(run.Losses[s]-refTo[s]))
		}
	}
	return dev, nil
}

// FormatStraggler renders the gray-failure study.
func FormatStraggler(points []StragglerPoint) string {
	var b strings.Builder
	b.WriteString("Gray failures: compute straggler on the last rank — detect, re-layout, or ride out\n")
	fmt.Fprintf(&b, "%-18s %4s | %6s %8s | %10s %10s | %-18s %9s %9s | %7s %10s\n",
		"layout", "slow", "detect", "relayout", "healthy", "degraded", "outcome", "adaptive", "ride-out", "speedup", "max|Δloss|")
	for _, p := range points {
		outcome := p.To.String()
		if p.RodeOut {
			outcome = "rode out"
		}
		relayout := fmt.Sprintf("%8d", p.RelayoutStep)
		if p.RelayoutStep < 0 {
			relayout = fmt.Sprintf("%8s", "-")
		}
		fmt.Fprintf(&b, "%-18s %3g× | %6d %s | %9.3gs %9.3gs | %-18s %8.3gs %8.3gs | %6.2f× %10.2g\n",
			p.From, p.Factor, p.DetectedStep, relayout,
			p.HealthyStepSeconds, p.DegradedStepSeconds,
			outcome, p.AdaptiveSeconds, p.RideOutSeconds, p.Speedup, p.MaxLossDev)
	}
	b.WriteString("adaptive time counts the checkpoint collect and re-shard restore; ride-out drags the\n")
	b.WriteString("straggler to the last step; max|Δloss| compares against uninterrupted runs per layout.\n")
	return b.String()
}
