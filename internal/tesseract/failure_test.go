package tesseract

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/tensor"
)

// Failure-injection tests: when one worker of a mesh dies mid-schedule, the
// cluster must unwind cleanly — no deadlock, an error naming the failed
// worker — even while its peers are blocked inside SUMMA collectives.

func TestWorkerErrorDuringForwardUnblocksPeers(t *testing.T) {
	sentinel := errors.New("injected fault")
	c := dist.New(dist.Config{WorldSize: 8})
	err := c.Run(func(w *dist.Worker) error {
		p := NewProcAt(w, mesh.Shape{Q: 2, D: 2})
		if w.Rank() == 5 {
			return sentinel // dies before joining any collective
		}
		b := NewBlock(p, 8, 2, 2, tensor.NewRNG(1))
		x := tensor.RandomMatrix(2, 4, tensor.NewRNG(2))
		b.Forward(p, x) // peers block in row/col broadcasts until aborted
		return nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("expected injected fault to surface, got %v", err)
	}
	if !strings.Contains(err.Error(), "worker 5") {
		t.Fatalf("error should name the failing worker: %v", err)
	}
}

func TestPanicMidCollectiveUnblocksPeers(t *testing.T) {
	c := dist.New(dist.Config{WorldSize: 4})
	err := c.Run(func(w *dist.Worker) error {
		p := NewProcAt(w, mesh.Shape{Q: 2, D: 1})
		a := tensor.RandomMatrix(2, 2, tensor.NewRNG(uint64(w.Rank())))
		b := tensor.RandomMatrix(2, 2, tensor.NewRNG(uint64(w.Rank())+10))
		if w.Rank() == 3 {
			// Participate in the first broadcast round (MulAB's schedule
			// starts with a row broadcast-into; rank 3 sits at j=1, so it
			// receives), then die: peers are left waiting inside later
			// rendezvous.
			p.Row.BroadcastInto(p.W, p.RowRank(0), nil, tensor.New(a.Rows, a.Cols))
			panic("mid-schedule crash")
		}
		p.MatMulAB(a, b)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "mid-schedule crash") {
		t.Fatalf("expected mid-schedule panic to surface, got %v", err)
	}
}

func TestClusterReusableIsNotPromisedAfterAbort(t *testing.T) {
	// After an abort the cluster stays aborted: further runs fail fast
	// rather than hanging. (A fresh cluster is the documented recovery.)
	c := dist.New(dist.Config{WorldSize: 2})
	first := c.Run(func(w *dist.Worker) error {
		if w.Rank() == 0 {
			return errors.New("boom")
		}
		w.Cluster().WorldGroup().Barrier(w)
		return nil
	})
	if first == nil {
		t.Fatal("first run should fail")
	}
	second := c.Run(func(w *dist.Worker) error {
		w.Cluster().WorldGroup().Barrier(w)
		return nil
	})
	if second == nil {
		t.Fatal("aborted cluster must not silently succeed")
	}
}
