package tesseract

import (
	"fmt"
	"math"

	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// LayerNorm normalises each activation row across the full hidden dimension
// while the row is physically split across the q processors of a grid row.
// Following §3.2.2, every processor computes the local partial sums of X and
// X², an all-reduce along the grid row produces E[X] and E[X²] (Eq. 13), and
// the normalisation then proceeds locally. The backward pass is Eq. 14 with
// the two row-wide sums (Σ x̂·dŷ and Σ dŷ) obtained by the same row
// all-reduce. Depth layers hold disjoint block rows, so no depth
// communication is needed.
//
// All intermediates come from the worker's workspace: the fused [m̂, 2]
// statistics message is packed, all-reduced in place and unpacked without
// allocating, and x̂/1/σ are retained in workspace buffers until the step
// boundary.
type LayerNorm struct {
	H   int // full hidden width
	Eps float64

	xhat   *tensor.Matrix
	invstd *tensor.Matrix
}

// NewLayerNorm builds a distributed LayerNorm over hidden width h.
func NewLayerNorm(p *Proc, h int) *LayerNorm {
	if h%p.Shape.Q != 0 {
		panic(fmt.Sprintf("tesseract: LayerNorm width %d not divisible by q=%d", h, p.Shape.Q))
	}
	return &LayerNorm{H: h, Eps: 1e-5}
}

// Params returns nil: Eq. 13 normalisation is parameter-free.
func (l *LayerNorm) Params() []*nn.Param { return nil }

// Forward normalises the local block x of shape [m̂, H/q].
func (l *LayerNorm) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	ph := x.Phantom()
	sq := ws.GetUninitMatch(x.Rows, x.Cols, ph)
	tensor.MulTo(sq, x, x)
	packed := rowStats(p, x, sq)
	ws.Put(sq)

	invN := 1 / float64(l.H)
	xhat := ws.GetUninitMatch(x.Rows, x.Cols, ph)
	inv := ws.GetUninitMatch(x.Rows, 1, ph)
	p.W.Compute(float64(x.Size()) * compute.FlopsPerNorm)
	if !ph {
		for i := 0; i < x.Rows; i++ {
			mean := packed.Data[2*i] * invN
			meanSq := packed.Data[2*i+1] * invN
			variance := meanSq - mean*mean
			iv := 1 / math.Sqrt(variance+l.Eps)
			inv.Data[i] = iv
			row := x.Data[i*x.Cols : (i+1)*x.Cols]
			orow := xhat.Data[i*x.Cols : (i+1)*x.Cols]
			for j, v := range row {
				orow[j] = (v - mean) * iv
			}
		}
	}
	ws.Put(packed)
	l.xhat = xhat
	l.invstd = inv
	return xhat
}

// Backward applies Eq. 14 to the local gradient block dy.
func (l *LayerNorm) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	ph := dy.Phantom() || l.xhat.Phantom()
	prod := ws.GetUninitMatch(dy.Rows, dy.Cols, ph)
	tensor.MulTo(prod, dy, l.xhat)
	packed := rowStats(p, prod, dy)
	ws.Put(prod)

	invN := 1 / float64(l.H)
	out := ws.GetUninitMatch(dy.Rows, dy.Cols, ph)
	p.W.Compute(float64(dy.Size()) * compute.FlopsPerNorm)
	if !ph {
		for i := 0; i < dy.Rows; i++ {
			dotXhat := packed.Data[2*i] * invN
			sumDy := packed.Data[2*i+1] * invN
			iv := l.invstd.Data[i]
			drow := dy.Data[i*dy.Cols : (i+1)*dy.Cols]
			xrow := l.xhat.Data[i*dy.Cols : (i+1)*dy.Cols]
			orow := out.Data[i*dy.Cols : (i+1)*dy.Cols]
			for j, dv := range drow {
				orow[j] = (dv - xrow[j]*dotXhat - sumDy) * iv
			}
		}
	}
	ws.Put(packed)
	return out
}

// rowStats all-reduces the per-row sums of two local matrices along the grid
// row in a single fused [m̂, 2] message, as the paper suggests for the X/X²
// pair. The packed message is a workspace buffer the caller must Put; the
// all-reduce runs in place on it.
func rowStats(p *Proc, a, b *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	p.W.Compute(float64(a.Size()+b.Size()) * compute.FlopsPerAdd)
	packed := ws.GetUninitMatch(a.Rows, 2, a.Phantom() || b.Phantom())
	tensor.RowSumsIntoCol(packed, 0, a)
	tensor.RowSumsIntoCol(packed, 1, b)
	return p.Row.AllReduceInto(p.W, packed, packed)
}
