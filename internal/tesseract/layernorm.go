package tesseract

import (
	"fmt"
	"math"

	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// LayerNorm normalises each activation row across the full hidden dimension
// while the row is physically split across the q processors of a grid row.
// Following §3.2.2, every processor computes the local partial sums of X and
// X², an all-reduce along the grid row produces E[X] and E[X²] (Eq. 13), and
// the normalisation then proceeds locally. The backward pass is Eq. 14 with
// the two row-wide sums (Σ x̂·dŷ and Σ dŷ) obtained by the same row
// all-reduce. Depth layers hold disjoint block rows, so no depth
// communication is needed.
type LayerNorm struct {
	H   int // full hidden width
	Eps float64

	xhat   *tensor.Matrix
	invstd *tensor.Matrix
}

// NewLayerNorm builds a distributed LayerNorm over hidden width h.
func NewLayerNorm(p *Proc, h int) *LayerNorm {
	if h%p.Shape.Q != 0 {
		panic(fmt.Sprintf("tesseract: LayerNorm width %d not divisible by q=%d", h, p.Shape.Q))
	}
	return &LayerNorm{H: h, Eps: 1e-5}
}

// Params returns nil: Eq. 13 normalisation is parameter-free.
func (l *LayerNorm) Params() []*nn.Param { return nil }

// Forward normalises the local block x of shape [m̂, H/q].
func (l *LayerNorm) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	stats := rowStats(p, x, tensor.Mul(x, x))
	n := float64(l.H)
	mean := tensor.Scale(1/n, stats[0])
	meanSq := tensor.Scale(1/n, stats[1])
	variance := tensor.Sub(meanSq, tensor.Mul(mean, mean))
	inv := tensor.Apply(variance, func(v float64) float64 { return 1 / math.Sqrt(v+l.Eps) })
	p.W.Compute(float64(x.Size()) * compute.FlopsPerNorm)
	xhat := tensor.MulColVector(tensor.SubColVector(x, mean), inv)
	l.xhat = xhat
	l.invstd = inv
	return xhat
}

// Backward applies Eq. 14 to the local gradient block dy.
func (l *LayerNorm) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	stats := rowStats(p, tensor.Mul(dy, l.xhat), dy)
	n := float64(l.H)
	dotXhat := tensor.Scale(1/n, stats[0])
	sumDy := tensor.Scale(1/n, stats[1])
	p.W.Compute(float64(dy.Size()) * compute.FlopsPerNorm)
	term := tensor.Sub(dy, tensor.MulColVector(l.xhat, dotXhat))
	term = tensor.SubColVector(term, sumDy)
	return tensor.MulColVector(term, l.invstd)
}

// rowStats all-reduces the per-row sums of two local matrices along the grid
// row in a single fused [m̂, 2] message, as the paper suggests for the X/X²
// pair.
func rowStats(p *Proc, a, b *tensor.Matrix) [2]*tensor.Matrix {
	p.W.Compute(float64(a.Size()+b.Size()) * compute.FlopsPerAdd)
	packed := tensor.HCat(tensor.RowSums(a), tensor.RowSums(b))
	red := p.Row.AllReduce(p.W, packed)
	if red.Phantom() {
		return [2]*tensor.Matrix{tensor.NewPhantom(a.Rows, 1), tensor.NewPhantom(b.Rows, 1)}
	}
	return [2]*tensor.Matrix{red.SubMatrix(0, 0, red.Rows, 1), red.SubMatrix(0, 1, red.Rows, 1)}
}
