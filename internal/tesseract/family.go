package tesseract

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func init() {
	parallel.RegisterCheck("tesseract", func(l parallel.Layout) error {
		if l.Q < 1 {
			return fmt.Errorf("tesseract: layout %s needs a mesh dimension q", l)
		}
		return mesh.Shape{Q: l.Q, D: l.D, Base: l.Base}.Validate()
	})
	parallel.Register("tesseract", func(w *dist.Worker, l parallel.Layout) (parallel.Family, error) {
		return &Family{p: NewProcAt(w, mesh.Shape{Q: l.Q, D: l.D, Base: l.Base}), layout: l}, nil
	})
}

// Family is Tesseract's implementation of the family-agnostic model layer:
// A-distributed activations, B-distributed weights, SUMMA linears and the
// queued §3.1 depth gradient synchronisation, behind parallel.Family.
type Family struct {
	p      *Proc
	layout parallel.Layout
}

// NewFamily attaches the calling worker to a [q, q, d] mesh based at rank 0
// and returns the family view. All ranks of the mesh must call it
// collectively.
func NewFamily(w *dist.Worker, q, d int) *Family {
	return NewFamilyAt(w, mesh.Shape{Q: q, D: d})
}

// NewFamilyAt attaches the calling worker to an arbitrary mesh shape —
// used when composing with data or pipeline parallelism and by the Optimus
// depth-1 delegation.
func NewFamilyAt(w *dist.Worker, s mesh.Shape) *Family {
	return &Family{
		p:      NewProcAt(w, s),
		layout: parallel.Layout{Family: "tesseract", Q: s.Q, D: s.D, Ranks: s.Size(), Base: s.Base},
	}
}

// Name returns "tesseract".
func (f *Family) Name() string { return "tesseract" }

// Layout returns the mesh layout.
func (f *Family) Layout() parallel.Layout { return f.layout }

// Worker returns the rank's cluster view.
func (f *Family) Worker() *dist.Worker { return f.p.W }

// Proc exposes the underlying mesh view for Tesseract-specific callers
// (tests, hybrid's rank arithmetic).
func (f *Family) Proc() *Proc { return f.p }

// RowShards returns d·q: activation rows split across the depth layers and
// grid rows.
func (f *Family) RowShards() int { return f.p.Shape.Q * f.p.Shape.D }

// NewLinear builds a Tesseract-parallel linear layer.
func (f *Family) NewLinear(in, out int, act nn.Activation, bias bool, rng *tensor.RNG) parallel.Layer {
	return bound{p: f.p, m: NewLinear(f.p, in, out, act, bias, rng)}
}

// NewBlock builds one Tesseract-parallel Transformer block.
func (f *Family) NewBlock(h, heads, seqLen int, rng *tensor.RNG) parallel.Layer {
	return &BlockLayer{bound{p: f.p, m: NewBlock(f.p, h, heads, seqLen, rng)}}
}

// NewBlockPhantom builds the shape-only block for paper-scale timing.
func (f *Family) NewBlockPhantom(h, heads, seqLen int) parallel.Layer {
	return &BlockLayer{bound{p: f.p, m: NewBlockPhantom(f.p, h, heads, seqLen)}}
}

// NewLayerNorm builds the distributed layer norm of §3.2.2.
func (f *Family) NewLayerNorm(h int) parallel.Layer {
	return bound{p: f.p, m: NewLayerNorm(f.p, h)}
}

// NewHead builds the replicated classifier head; the mesh base rank is its
// checkpoint primary.
func (f *Family) NewHead(in, out int, rng *tensor.RNG) parallel.Layer {
	return parallel.NewReplicatedLinearAt(f.p.W, f.p.Shape.Base, in, out, nn.ActNone, true, rng)
}

// Distribute slices a replicated global activation into this rank's A
// block (Figure 4a).
func (f *Family) Distribute(global *tensor.Matrix) *tensor.Matrix {
	br, bc := f.p.ABlockShape(global.Rows, global.Cols)
	local := f.p.W.Workspace().GetUninitMatch(br, bc, global.Phantom())
	tensor.SubMatrixInto(local, global, f.p.BlockRow()*br, f.p.J*bc)
	return local
}

// Collect reassembles an A-distributed activation on every rank, out of
// pooled buffers: hidden columns gather along the grid row, sequence blocks
// along the slab, mirroring GatherPooled but leaving ownership of local
// with the caller (it is a saved activation, not a transient). The returned
// matrix is a workspace buffer that lives until the step boundary.
func (f *Family) Collect(local *tensor.Matrix) *tensor.Matrix {
	p, ws := f.p, f.p.W.Workspace()
	wide := ws.GetUninitMatch(local.Rows, p.Row.Size()*local.Cols, local.Phantom())
	p.Row.AllGatherInto(p.W, local, wide)
	full := ws.GetUninitMatch(p.Slab.Size()*wide.Rows, wide.Cols, wide.Phantom())
	p.Slab.AllGatherInto(p.W, wide, full)
	ws.Put(wide)
	return full
}

// Slice reports the rank's share of a replicated [rows, cols] activation:
// block row h = i + k·q of the d·q row partitions, grid column j of the q
// column partitions.
func (f *Family) Slice(rows, cols int) parallel.Slice {
	r, c := f.p.ABlockShape(rows, cols)
	return parallel.Slice{Row0: f.p.BlockRow() * r, Col0: f.p.J * c, Rows: r, Cols: c}
}

// GatherPooled all-gathers a row-pooled local block into the replicated
// full matrix: hidden columns along the grid row, sequence blocks along
// the slab. AllGatherInto reads every member's block before returning (no
// snapshots), so the intermediates recycle immediately.
func (f *Family) GatherPooled(local *tensor.Matrix) *tensor.Matrix {
	p, ws := f.p, f.p.W.Workspace()
	wide := ws.GetUninitMatch(local.Rows, p.Row.Size()*local.Cols, local.Phantom())
	p.Row.AllGatherInto(p.W, local, wide)
	ws.Put(local)
	full := ws.GetUninitMatch(p.Slab.Size()*wide.Rows, wide.Cols, wide.Phantom())
	p.Slab.AllGatherInto(p.W, wide, full)
	ws.Put(wide)
	return full
}

// DrainGradients completes the queued §3.1 depth all-reduces.
func (f *Family) DrainGradients() { f.p.DrainGradients() }

// EndStep recycles the rank's workspace at the step boundary.
func (f *Family) EndStep() { f.p.W.Workspace().ReleaseAll() }

// procModule is the method shape every layer in this package shares:
// forward/backward over the mesh view plus the owned parameter shards.
type procModule interface {
	Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix
	Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix
	Params() []*nn.Param
	State(p *Proc) []parallel.State
}

// bound binds a layer to its mesh view, adapting it to parallel.Layer.
type bound struct {
	p *Proc
	m procModule
}

func (b bound) Forward(x *tensor.Matrix) *tensor.Matrix   { return b.m.Forward(b.p, x) }
func (b bound) Backward(dy *tensor.Matrix) *tensor.Matrix { return b.m.Backward(b.p, dy) }
func (b bound) Params() []*nn.Param                       { return b.m.Params() }
func (b bound) State() []parallel.State                   { return b.m.State(b.p) }

// BlockLayer is the bound Block, kept as a named type so
// Tesseract-specific callers (tests, hybrid's gradient inspection) can
// reach the underlying struct.
type BlockLayer struct {
	bound
}

// Block returns the underlying Tesseract block.
func (a *BlockLayer) Block() *Block { return a.m.(*Block) }
