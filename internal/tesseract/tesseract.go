// Package tesseract implements the paper's contribution: 2.5-D tensor
// parallelism for matrix multiplication and Transformer layers on a
// [q, q, d] processor mesh (Algorithm 3, §3).
//
// Layout (Figure 4): an activation matrix A ∈ [a, b] is split into d·q²
// blocks of [a/(dq), b/q]; processor (i, j, k) holds block row h = i + k·q,
// block column j. A parameter matrix B ∈ [b, c] is split into q² blocks of
// [b/q, c/q], with one replica per depth layer. Each depth layer runs an
// independent SUMMA over its q×q grid; parameter gradients are all-reduced
// across the depth fibre so the replicas stay identical (§3.1).
//
// Setting d = 1 recovers the 2-D SUMMA scheme (Optimus); d = q is the 3-D
// special case. Setting q = d = 1 gives a serial execution, which the weak
// scaling experiment's single-GPU row uses.
package tesseract

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/nn"
	"repro/internal/summa"
	"repro/internal/tensor"
)

// Proc is one processor's view of a Tesseract mesh. It embeds the mesh
// bookkeeping (coordinates and communicator groups) and carries the
// processor's queue of in-flight gradient synchronisations.
type Proc struct {
	*mesh.Proc

	// pending holds the depth all-reduces launched by the layers' Backward
	// passes (DDP-style bucketing: one nonblocking all-reduce per parameter
	// shard, issued the moment the shard's gradient is ready) until
	// DrainGradients waits them and folds the results into the parameters.
	pending []pendingGrad
}

// pendingGrad is one queued gradient synchronisation: wait h, accumulate
// buf into param.Grad, recycle buf.
type pendingGrad struct {
	param *nn.Param
	buf   *tensor.Matrix
	h     dist.Handle
}

// QueueGradSync launches the §3.1 depth all-reduce for one parameter
// shard's freshly computed layer-partial gradient without blocking: the
// reduction runs while the backward pass continues into earlier layers, and
// DrainGradients later folds the finished sum into param.Grad and recycles
// buf (a workspace buffer whose ownership transfers to the queue). On a
// depth-1 mesh the sum is the partial itself, so the gradient is folded in
// immediately — callers never need to special-case d = 1, but they must
// call DrainGradients before reading gradients on deeper meshes.
func (p *Proc) QueueGradSync(param *nn.Param, buf *tensor.Matrix) {
	if p.Depth.Size() == 1 {
		param.AccumGrad(buf)
		p.W.Workspace().Put(buf)
		return
	}
	h := p.Depth.IAllReduceInto(p.W, buf, buf)
	p.pending = append(p.pending, pendingGrad{param: param, buf: buf, h: h})
}

// DrainGradients completes every queued gradient synchronisation, in issue
// order: each handle is waited, the reduced gradient accumulated into its
// parameter, and the buffer recycled. Call it after the backward pass and
// before the optimiser reads gradients (or before EndStep). It is
// idempotent and cheap when nothing is pending.
func (p *Proc) DrainGradients() {
	ws := p.W.Workspace()
	for i := range p.pending {
		pg := &p.pending[i]
		pg.h.Wait()
		pg.param.AccumGrad(pg.buf)
		ws.Put(pg.buf)
		pg.param, pg.buf = nil, nil
	}
	p.pending = p.pending[:0]
}

// NewProc attaches the calling worker to a [q, q, d] mesh based at rank 0.
func NewProc(w *dist.Worker, q, d int) *Proc {
	return NewProcAt(w, mesh.Shape{Q: q, D: d})
}

// NewProcAt attaches the calling worker to an arbitrary mesh shape (used
// when composing with data or pipeline parallelism, Figure 6).
func NewProcAt(w *dist.Worker, s mesh.Shape) *Proc {
	return &Proc{Proc: mesh.NewProc(w, s)}
}

// MatMulAB computes C = A·B (Algorithm 3). a is the caller's A-distributed
// block, b the caller's B-distributed parameter block; the result is
// A-distributed like a.
func (p *Proc) MatMulAB(a, b *tensor.Matrix) *tensor.Matrix {
	return summa.MulAB(p.Proc, a, b)
}

// MatMulABEpi is MatMulAB with a fused bias/GELU epilogue applied inside
// the final SUMMA iteration's write-back (bitwise identical to the separate
// passes — see summa.Epilogue).
func (p *Proc) MatMulABEpi(a, b *tensor.Matrix, epi summa.Epilogue) *tensor.Matrix {
	return summa.MulABEpi(p.Proc, a, b, epi)
}

// MatMulABT computes C = A·Bᵀ (the activation-gradient product A' = C'·Bᵀ of
// Eq. 3). The result is A-distributed.
func (p *Proc) MatMulABT(a, b *tensor.Matrix) *tensor.Matrix {
	return summa.MulABT(p.Proc, a, b)
}

// MatMulATB computes C = Aᵀ·B (the parameter-gradient product B' = Aᵀ·C' of
// Eq. 3) and all-reduces the result across the depth fibre, per §3.1: each
// layer contributes the partial sum over its own block rows, and the d
// replicas must agree. The depth all-reduce runs in place on the layer
// partial, so the returned matrix is the same caller-owned workspace buffer
// summa handed back.
func (p *Proc) MatMulATB(a, b *tensor.Matrix) *tensor.Matrix {
	partial := summa.MulATB(p.Proc, a, b)
	return p.Depth.AllReduceInto(p.W, partial, partial)
}

// DistributeA slices a replicated global activation matrix into this
// processor's A block (Figure 4a).
func (p *Proc) DistributeA(global *tensor.Matrix) *tensor.Matrix {
	return summa.DistributeA(p.Proc, global)
}

// DistributeB slices a replicated global parameter matrix into this
// processor's B block (Figure 4b); every depth layer receives a replica.
func (p *Proc) DistributeB(global *tensor.Matrix) *tensor.Matrix {
	return summa.DistributeB(p.Proc, global)
}

// CollectA reassembles an A-distributed matrix on every processor
// (Figure 4c). Intended for tests, model heads and example programs; the
// training loop itself never materialises global activations.
func (p *Proc) CollectA(local *tensor.Matrix) *tensor.Matrix {
	return summa.CollectA(p.Proc, local)
}

// CollectB reassembles a B-distributed matrix on every processor of the
// caller's layer.
func (p *Proc) CollectB(local *tensor.Matrix) *tensor.Matrix {
	return summa.CollectB(p.Proc, local)
}

// ABlockShape returns the local A-block shape for a global [rows, cols]
// activation matrix.
func (p *Proc) ABlockShape(rows, cols int) (int, int) {
	q, d := p.Shape.Q, p.Shape.D
	if rows%(q*d) != 0 || cols%q != 0 {
		panic(fmt.Sprintf("tesseract: global %dx%d not divisible by mesh [%d,%d,%d]", rows, cols, q, q, d))
	}
	return rows / (q * d), cols / q
}

// BBlockShape returns the local B-block shape for a global [rows, cols]
// parameter matrix.
func (p *Proc) BBlockShape(rows, cols int) (int, int) {
	q := p.Shape.Q
	if rows%q != 0 || cols%q != 0 {
		panic(fmt.Sprintf("tesseract: parameter %dx%d not divisible by q=%d", rows, cols, q))
	}
	return rows / q, cols / q
}

// Transfers returns the paper's closed-form transfer count for Tesseract in
// the d = q (3-D) configuration: 2p^{2/3} (§3.1).
func Transfers(p int) float64 {
	c := math.Cbrt(float64(p))
	return 2 * c * c
}
