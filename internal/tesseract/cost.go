package tesseract

import (
	"math"

	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/plan"
)

// PlanAlgo describes Tesseract to the auto-parallelism planner: feasible
// [q, q, d] grids within a rank budget, an analytic cost that mirrors the
// exact schedule Block.Forward/Backward run on the simulated cluster
// (double-buffered SUMMA per linear, row all-reduces for the layer norms,
// queued depth all-reduces drained behind the backward pass), and the
// per-rank memory a training step holds.
func PlanAlgo() plan.Algo {
	return plan.Algo{
		Family: "tesseract",
		Grids:  tesseractGrids,
		Cost:   tesseractCost,
		Memory: tesseractMemory,
	}
}

// tesseractGrids enumerates the [q, q, d] layouts (1 ≤ d ≤ q, q²d within
// budget) whose divisibility constraints the layer stack accepts: hidden
// and heads split over q, activation rows split over d·q.
func tesseractGrids(w plan.Workload, budget int) []plan.Grid {
	var out []plan.Grid
	for q := 1; q*q <= budget; q++ {
		if w.Hidden%q != 0 || w.Heads%q != 0 {
			continue
		}
		for d := 1; d <= q && q*q*d <= budget; d++ {
			if w.Tokens()%(d*q) != 0 {
				continue
			}
			out = append(out, plan.Grid{Ranks: q * q * d, Q: q, D: d})
		}
	}
	return out
}

// meshLinks holds the worst-case inter-node flags of the three communicator
// families a [q, q, d] mesh uses. "Worst case" is exact for the simulated
// clock: ranks move in lockstep through the collective schedule, so the
// slowest instance of a group family (a grid row straddling a node
// boundary, say) sets the phase time for everyone.
type meshLinks struct {
	row, col, depth bool
}

// links computes the flags by walking every group instance of the mesh and
// checking whether its rank interval crosses a node boundary — the same
// slowest-link-spanned rule dist.Group prices with.
func links(g plan.Grid, t plan.Topology) meshLinks {
	s := mesh.Shape{Q: g.Q, D: g.D}
	var l meshLinks
	for k := 0; k < g.D; k++ {
		for i := 0; i < g.Q; i++ {
			if t.SpansNodes(s.Rank(i, 0, k), s.Rank(i, g.Q-1, k)) {
				l.row = true
			}
			if t.SpansNodes(s.Rank(0, i, k), s.Rank(g.Q-1, i, k)) {
				l.col = true
			}
		}
	}
	for i := 0; i < g.Q; i++ {
		for j := 0; j < g.Q; j++ {
			if t.SpansNodes(s.Rank(i, j, 0), s.Rank(i, j, g.D-1)) {
				l.depth = true
			}
		}
	}
	return l
}

func bytesOf(elems float64) int64 { return int64(plan.BytesPerElem * elems) }

// layerDims are the per-rank block dimensions of one Transformer layer on a
// [q, q, d] mesh.
type layerDims struct {
	mh float64 // local activation rows b·s/(d·q)
	hq float64 // local hidden columns h/q
	s  float64 // sequence length
	dh float64 // head dimension h/heads
	hl float64 // local heads heads/q
}

func dims(w plan.Workload, g plan.Grid) layerDims {
	return layerDims{
		mh: float64(w.Tokens()) / float64(g.D*g.Q),
		hq: float64(w.Hidden) / float64(g.Q),
		s:  float64(w.SeqLen),
		dh: float64(w.Hidden) / float64(w.Heads),
		hl: float64(w.Heads) / float64(g.Q),
	}
}

// summaCoster prices the three double-buffered SUMMA kernels and the
// point collectives of one layer, splitting every charge into compute and
// non-hidden comm so the Breakdown can report the comm share.
type summaCoster struct {
	m    dist.CostModel
	q    int
	l    meshLinks
	comp float64 // accumulated compute seconds
	comm float64 // accumulated non-hidden comm seconds
}

func (c *summaCoster) flops(f float64) { c.comp += f / c.m.FLOPS }

// pipeline charges one double-buffered SUMMA pass of q iterations whose
// stages — the prefetch broadcast, the GEMM, and (in the transposed
// variants) the in-flight partial reduce — run on independent channels
// that each serialise their own work. The steady state is paced by the
// slowest stage (q·max), and each other stage appears once more at the
// pipeline boundary: the broadcast as fill before the first GEMM, the
// reduce as drain after the last, the GEMM trailing a comm-bound pipeline.
// The compute share is the q GEMMs; the rest of the wall time is comm the
// pipeline could not hide.
func (c *summaCoster) pipeline(bcast, reduce, gemm float64) {
	slowest := math.Max(bcast, math.Max(reduce, gemm))
	total := float64(c.q)*slowest + (bcast + reduce + gemm - slowest)
	compute := float64(c.q) * gemm
	c.comp += compute
	c.comm += total - compute
}

// mulAB prices C = A·B on local blocks [rows × kl]·[kl × nl]: A panels
// broadcast along rows, B panels along columns, no reduce.
func (c *summaCoster) mulAB(rows, kl, nl float64) {
	if c.q == 1 {
		c.flops(2 * rows * nl * kl)
		return
	}
	rowB := c.m.BroadcastSeconds(c.q, bytesOf(rows*kl), c.l.row)
	colB := c.m.BroadcastSeconds(c.q, bytesOf(kl*nl), c.l.col)
	c.pipeline(math.Max(rowB, colB), 0, c.m.GEMMSeconds(rows, nl, kl))
}

// mulABT prices C = A·Bᵀ for dy [rows × cl] and W [rl × cl]: W panels
// broadcast down columns, partials reduced along rows.
func (c *summaCoster) mulABT(rows, rl, cl float64) {
	if c.q == 1 {
		c.flops(2 * rows * rl * cl)
		return
	}
	colB := c.m.BroadcastSeconds(c.q, bytesOf(rl*cl), c.l.col)
	rowR := c.m.ReduceSeconds(c.q, bytesOf(rows*rl), c.l.row)
	c.pipeline(colB, rowR, c.m.GEMMSeconds(rows, rl, cl))
}

// mulATB prices C = Aᵀ·B for x [rows × kl] and dy [rows × nl]: x panels
// broadcast along rows, partials reduced down columns. The depth all-reduce
// of the result is queued, not synchronous — the caller accounts it.
func (c *summaCoster) mulATB(rows, kl, nl float64) {
	if c.q == 1 {
		c.flops(2 * kl * nl * rows)
		return
	}
	rowB := c.m.BroadcastSeconds(c.q, bytesOf(rows*kl), c.l.row)
	colR := c.m.ReduceSeconds(c.q, bytesOf(kl*nl), c.l.col)
	c.pipeline(rowB, colR, c.m.GEMMSeconds(kl, nl, rows))
}

// colBroadcast charges a blocking broadcast over the column group (the
// bias distribution path).
func (c *summaCoster) colBroadcast(elems float64) {
	c.comm += c.m.BroadcastSeconds(c.q, bytesOf(elems), c.l.col)
}

// colReduce charges a blocking reduce over the column group (the bias
// gradient path).
func (c *summaCoster) colReduce(elems float64) {
	c.comm += c.m.ReduceSeconds(c.q, bytesOf(elems), c.l.col)
}

// rowAllReduce charges the layer norms' fused statistics all-reduce over
// the row group.
func (c *summaCoster) rowAllReduce(elems float64) {
	c.comm += c.m.AllReduceSeconds(c.q, bytesOf(elems), c.l.row)
}

// linearForward prices Linear.Forward on local blocks: one SUMMA AB pass,
// the bias broadcast down the column, the bias add, and the optional GELU.
func (c *summaCoster) linearForward(d layerDims, inl, outl float64, gelu bool) {
	c.mulAB(d.mh, inl, outl)
	c.colBroadcast(outl)
	c.flops(d.mh * outl * compute.FlopsPerAdd)
	if gelu {
		c.flops(d.mh * outl * compute.FlopsPerGELU)
	}
}

// linearBackward prices Linear.Backward minus the queued depth all-reduces
// (returned separately by depthComm): the GELU gradient, the Aᵀ·B weight
// gradient, the bias column-sum and reduce, and the A·Bᵀ input gradient.
func (c *summaCoster) linearBackward(d layerDims, inl, outl float64, gelu bool) {
	if gelu {
		c.flops(d.mh * outl * (compute.FlopsPerGELU + compute.FlopsPerAdd))
	}
	c.mulATB(d.mh, inl, outl)
	c.flops(d.mh * outl * compute.FlopsPerAdd) // bias column sums
	c.colReduce(outl)
	c.mulABT(d.mh, inl, outl)
}

// layerNorm prices one LayerNorm pass (forward and backward charge alike):
// the packed row statistics, their row all-reduce, and the normalise step.
func (c *summaCoster) layerNorm(d layerDims) {
	c.flops(2 * d.mh * d.hq * compute.FlopsPerAdd)
	c.rowAllReduce(d.mh * 2)
	c.flops(d.mh * d.hq * compute.FlopsPerNorm)
}

// forwardLayer prices one Block.Forward: QKV linear, local attention,
// output projection, and the MLP, with residual adds and layer norms.
func (c *summaCoster) forwardLayer(d layerDims) {
	c.linearForward(d, d.hq, 3*d.hq, false) // fused QKV
	c.flops(d.mh / d.s * d.hl * (4*d.s*d.s*d.dh + compute.FlopsPerSoftmax*d.s*d.s))
	c.linearForward(d, d.hq, d.hq, false) // output projection
	c.flops(d.mh * d.hq * compute.FlopsPerAdd)
	c.layerNorm(d)
	c.linearForward(d, d.hq, 4*d.hq, true) // MLP fc1 + GELU
	c.linearForward(d, 4*d.hq, d.hq, false)
	c.flops(d.mh * d.hq * compute.FlopsPerAdd)
	c.layerNorm(d)
}

// backwardLayer prices one Block.Backward without the queued depth
// all-reduces.
func (c *summaCoster) backwardLayer(d layerDims) {
	c.layerNorm(d)
	c.linearBackward(d, 4*d.hq, d.hq, false) // fc2
	c.linearBackward(d, d.hq, 4*d.hq, true)  // fc1 (GELU)
	c.flops(d.mh * d.hq * compute.FlopsPerAdd)
	c.layerNorm(d)
	c.linearBackward(d, d.hq, d.hq, false) // projection
	c.flops(d.mh / d.s * d.hl * (8*d.s*d.s*d.dh + compute.FlopsPerSoftmax*d.s*d.s))
	c.linearBackward(d, d.hq, 3*d.hq, false) // QKV
	c.flops(d.mh * d.hq * compute.FlopsPerAdd)
}

// depthComm is the serial comm time of the §3.1 depth all-reduces one
// layer's backward pass queues: the four weight-gradient shards plus the
// row-0 bias gradients, all on the rank's depth fibre.
func depthComm(m dist.CostModel, g plan.Grid, l meshLinks, d layerDims) float64 {
	if g.D == 1 {
		return 0
	}
	var t float64
	for _, shard := range []float64{
		d.hq * 3 * d.hq, 3 * d.hq, // QKV weight + bias
		d.hq * d.hq, d.hq, // projection
		d.hq * 4 * d.hq, 4 * d.hq, // fc1
		4 * d.hq * d.hq, d.hq, // fc2
	} {
		t += m.AllReduceSeconds(g.D, bytesOf(shard), l.depth)
	}
	return t
}

// tesseractCost prices a workload on one [q, q, d] grid. The forward phase
// is Layers forward passes; the backward phase re-runs the forward
// (activation recompute, unless disabled) and then the backward passes,
// with the queued depth all-reduces overlapping the backward work — the
// phase ends no earlier than either finishes.
func tesseractCost(w plan.Workload, g plan.Grid, t plan.Topology) plan.Breakdown {
	d := dims(w, g)
	l := links(g, t)
	L := float64(w.Layers)

	fwd := &summaCoster{m: t.Cost, q: g.Q, l: l}
	fwd.forwardLayer(d)

	bwd := &summaCoster{m: t.Cost, q: g.Q, l: l}
	bwd.backwardLayer(d)

	fwdPhase := L * (fwd.comp + fwd.comm)
	bwdSerial := L * (bwd.comp + bwd.comm)
	depth := L * depthComm(t.Cost, g, l, d)
	bwdPhase := math.Max(bwdSerial, depth)

	comp := L * (fwd.comp + bwd.comp)
	backward := bwdPhase
	if !w.NoRecompute {
		backward += fwdPhase
		comp += L * fwd.comp
	}
	return plan.Breakdown{
		Forward:        fwdPhase,
		Backward:       backward,
		ComputeSeconds: comp,
		CommSeconds:    fwdPhase + backward - comp,
	}
}

// tesseractMemory estimates the bytes one rank holds across a training
// step: parameter shards with their gradients, the activations the
// backward pass retains (dominated by the attention probabilities and the
// MLP intermediates), the input/output gradient blocks, and the pipeline's
// double-buffered panels.
func tesseractMemory(w plan.Workload, g plan.Grid) int64 {
	d := dims(w, g)
	L := float64(w.Layers)
	weights := 12*d.hq*d.hq + 9*d.hq // four weight shards + row-0 biases
	probs := d.mh * d.s * d.hl       // retained softmax matrices
	acts := 19*d.mh*d.hq + probs + 2*d.mh
	panels := 4*d.mh*4*d.hq + 2*4*d.hq*d.hq // double-buffered panels + partials at the widest multiply
	io := 2 * d.mh * d.hq
	return bytesOf(L*(2*weights+acts) + panels + io)
}
