package tesseract

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/nn"
	"repro/internal/summa"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// TestAsyncGradSyncMatchesBlockingBitwise holds the queued gradient path to
// the old synchronous contract: for a full Linear forward+backward on
// [1,1,1], [2,2,1] and [2,2,2], the gradients left behind by
// QueueGradSync + DrainGradients must equal — bit for bit, on every rank —
// a reference that runs the layer-partial product and the §3.1 depth
// all-reduce fully blocking, exactly as Linear.Backward used to.
func TestAsyncGradSyncMatchesBlockingBitwise(t *testing.T) {
	const in, out, rows = 8, 8, 8
	for _, ms := range []struct{ q, d int }{{1, 1}, {2, 1}, {2, 2}} {
		t.Run(fmt.Sprintf("q%dd%d", ms.q, ms.d), func(t *testing.T) {
			dataRng := tensor.NewRNG(61)
			x := tensor.RandomMatrix(rows, in, dataRng)
			dy := tensor.RandomMatrix(rows, out, dataRng)
			world := ms.q * ms.q * ms.d

			gotW := make([]*tensor.Matrix, world)
			gotB := make([]*tensor.Matrix, world)
			wantW := make([]*tensor.Matrix, world)
			wantB := make([]*tensor.Matrix, world)
			testutil.Run(t, world, func(w *dist.Worker) error {
				p := NewProcAt(w, mesh.Shape{Q: ms.q, D: ms.d})

				// Live path: Backward queues, DrainGradients completes.
				l := NewLinear(p, in, out, nn.ActGELU, true, tensor.NewRNG(71))
				l.Forward(p, p.DistributeA(x))
				l.Backward(p, p.DistributeA(dy))
				p.DrainGradients()
				gotW[w.Rank()] = l.W.Grad.Clone()
				if l.B != nil {
					gotB[w.Rank()] = l.B.Grad.Clone()
				}

				// Blocking reference: same math, every collective
				// synchronous, accumulation immediate (the pre-async
				// schedule of Linear.Backward).
				ref := NewLinear(p, in, out, nn.ActGELU, true, tensor.NewRNG(71))
				ref.Forward(p, p.DistributeA(x))
				ldy := p.DistributeA(dy)
				g := tensor.GELUGrad(ref.pre)
				gdy := tensor.Mul(ldy, g)
				gw := summa.MulATB(p.Proc, ref.x, gdy)
				p.Depth.AllReduceInto(p.W, gw, gw)
				ref.W.AccumGrad(gw)
				if p.I == 0 {
					db := tensor.ColSums(gdy)
					r := tensor.New(1, gdy.Cols)
					p.Col.ReduceInto(p.W, p.ColRank(0), db, r)
					p.Depth.AllReduceInto(p.W, r, r)
					ref.B.AccumGrad(r)
				} else {
					p.Col.ReduceInto(p.W, p.ColRank(0), tensor.ColSums(gdy), nil)
				}
				wantW[w.Rank()] = ref.W.Grad.Clone()
				if ref.B != nil {
					wantB[w.Rank()] = ref.B.Grad.Clone()
				}
				return nil
			})
			for r := 0; r < world; r++ {
				if !gotW[r].Equal(wantW[r]) {
					t.Fatalf("rank %d: async dW differs bitwise from blocking sync (max diff %g)", r, gotW[r].MaxAbsDiff(wantW[r]))
				}
				if (gotB[r] == nil) != (wantB[r] == nil) {
					t.Fatalf("rank %d: bias gradient presence mismatch", r)
				}
				if gotB[r] != nil && !gotB[r].Equal(wantB[r]) {
					t.Fatalf("rank %d: async dB differs bitwise from blocking sync (max diff %g)", r, gotB[r].MaxAbsDiff(wantB[r]))
				}
			}
		})
	}
}

// TestDrainGradientsIdempotentAndRequired: draining twice is harmless, and
// on a depth-1 mesh gradients are final without any drain at all.
func TestDrainGradientsIdempotentAndRequired(t *testing.T) {
	const in, out, rows = 4, 4, 4
	rng := tensor.NewRNG(5)
	x := tensor.RandomMatrix(rows, in, rng)
	dy := tensor.RandomMatrix(rows, out, rng)
	testutil.Run(t, 4, func(w *dist.Worker) error {
		p := NewProcAt(w, mesh.Shape{Q: 2, D: 1})
		l := NewLinear(p, in, out, nn.ActNone, false, tensor.NewRNG(9))
		l.Forward(p, p.DistributeA(x))
		l.Backward(p, p.DistributeA(dy))
		// d == 1: the queue short-circuits, gradients are already final.
		before := l.W.Grad.Clone()
		p.DrainGradients()
		p.DrainGradients()
		if !l.W.Grad.Equal(before) {
			return fmt.Errorf("rank %d: redundant drains perturbed the gradient", w.Rank())
		}
		return nil
	})
}
