package tesseract

import "repro/internal/parallel"

// This file maps every Tesseract layer's local shards onto the canonical
// serial parameters for checkpointing (parallel.Stater). Weights are
// B-distributed — block (i, j) of the [In, Out] global, replicated across
// depth, so the k == 0 replica is the primary writer — and biases live only
// on grid row 0 as [1, Out/q] column slices. Ranks with i != 0 still emit
// the bias slot with a nil Param so the slot walk stays aligned across the
// mesh.

// State maps the local weight block (and bias slice) onto the canonical
// [In, Out] (and [1, Out]) tensors.
func (l *Linear) State(p *Proc) []parallel.State {
	q := p.Shape.Q
	primary := p.K == 0
	out := []parallel.State{
		parallel.BlockState(l.W, l.In, l.Out, p.I*(l.In/q), p.J*(l.Out/q), primary),
	}
	if l.hasBias {
		bias := parallel.State{Rows: 1, Cols: l.Out}
		if l.B != nil {
			bias = parallel.BlockState(l.B, 1, l.Out, 0, p.J*(l.Out/q), primary)
		}
		out = append(out, bias)
	}
	return out
}

// State maps the fused, column-permuted QKV shard through three rectangles
// onto the canonical unpermuted [h, 3h] concatenation [Wq | Wk | Wv] (and
// its bias onto [1, 3h]): grid column j's fused block is exactly
// [Wq_j | Wk_j | Wv_j], so fused sub-block t lands at serial column
// t·h + j·h/q. The output projection is a plain Linear.
func (a *Attention) State(p *Proc) []parallel.State {
	h, q := a.H, p.Shape.Q
	br, bc := h/q, h/q
	primary := p.K == 0
	w := parallel.State{Param: a.QKV.W, Rows: h, Cols: 3 * h, Primary: primary}
	for t := 0; t < 3; t++ {
		w.Blocks = append(w.Blocks, parallel.StateBlock{
			LocalCol:  t * bc,
			GlobalRow: p.I * br, GlobalCol: t*h + p.J*bc,
			Rows: br, Cols: bc,
		})
	}
	b := parallel.State{Rows: 1, Cols: 3 * h, Primary: primary}
	if a.QKV.B != nil {
		b.Param = a.QKV.B
		for t := 0; t < 3; t++ {
			b.Blocks = append(b.Blocks, parallel.StateBlock{
				LocalCol:  t * bc,
				GlobalCol: t*h + p.J*bc,
				Rows:      1, Cols: bc,
			})
		}
	}
	return append([]parallel.State{w, b}, a.Proj.State(p)...)
}

// State concatenates both projections' slots.
func (m *MLP) State(p *Proc) []parallel.State {
	return append(m.Fc1.State(p), m.Fc2.State(p)...)
}

// State returns nil: §3.2.2 layer normalisation is parameter-free.
func (l *LayerNorm) State(p *Proc) []parallel.State { return nil }

// State concatenates the sub-layers' slots in Params order.
func (b *Block) State(p *Proc) []parallel.State {
	return append(b.Attn.State(p), b.Mlp.State(p)...)
}
