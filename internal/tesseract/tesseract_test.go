package tesseract

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// shapes exercised by most equivalence tests: serial, 2-D, 2.5-D, 3-D.
var meshShapes = []struct{ q, d int }{{1, 1}, {2, 1}, {2, 2}}

func runMesh(t *testing.T, q, d int, fn func(p *Proc) error) *dist.Cluster {
	t.Helper()
	s := mesh.Shape{Q: q, D: d}
	return testutil.Run(t, s.Size(), func(w *dist.Worker) error {
		return fn(NewProcAt(w, s))
	})
}

func TestMatMulABMatchesSerial(t *testing.T) {
	for _, ms := range meshShapes {
		t.Run(fmt.Sprintf("q%dd%d", ms.q, ms.d), func(t *testing.T) {
			rng := tensor.NewRNG(1)
			ga := tensor.RandomMatrix(8, 6, rng)
			gb := tensor.RandomMatrix(6, 4, rng)
			want := tensor.MatMul(ga, gb)
			results := testutil.NewCollector()
			runMesh(t, ms.q, ms.d, func(p *Proc) error {
				lc := p.MatMulAB(p.DistributeA(ga), p.DistributeB(gb))
				results.Put(p.W.Rank(), p.CollectA(lc))
				return nil
			})
			testutil.CheckClose(t, "C", results.Get(0), want, 1e-9)
		})
	}
}

func TestMatMulATBDepthAllReduce(t *testing.T) {
	// The full Eq. 3 parameter gradient: per-layer partials summed across
	// depth must equal the serial Aᵀ·C' on every replica.
	rng := tensor.NewRNG(2)
	ga := tensor.RandomMatrix(8, 6, rng)
	gc := tensor.RandomMatrix(8, 4, rng)
	want := tensor.MatMulTN(ga, gc)
	results := testutil.NewCollector()
	runMesh(t, 2, 2, func(p *Proc) error {
		lb := p.MatMulATB(p.DistributeA(ga), p.DistributeA(gc))
		results.Put(p.W.Rank(), p.CollectB(lb))
		return nil
	})
	for r := 0; r < 8; r++ {
		testutil.CheckClose(t, fmt.Sprintf("rank %d", r), results.Get(r), want, 1e-9)
	}
}

func TestLinearForwardBackwardMatchesSerial(t *testing.T) {
	const in, out, rows = 8, 12, 8
	for _, ms := range meshShapes {
		t.Run(fmt.Sprintf("q%dd%d", ms.q, ms.d), func(t *testing.T) {
			dataRng := tensor.NewRNG(10)
			x := tensor.RandomMatrix(rows, in, dataRng)
			dy := tensor.RandomMatrix(rows, out, dataRng)

			ref := nn.NewLinear(in, out, nn.ActGELU, true, tensor.NewRNG(42))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			gws := testutil.NewCollector()
			gbs := testutil.NewCollector()
			runMesh(t, ms.q, ms.d, func(p *Proc) error {
				l := NewLinear(p, in, out, nn.ActGELU, true, tensor.NewRNG(42))
				y := l.Forward(p, p.DistributeA(x))
				dx := l.Backward(p, p.DistributeA(dy))
				p.DrainGradients() // gradients are final only after the queued depth sync completes
				ys.Put(p.W.Rank(), p.CollectA(y))
				dxs.Put(p.W.Rank(), p.CollectA(dx))
				gws.Put(p.W.Rank(), p.CollectB(l.W.Grad))
				if p.I == 0 {
					parts := p.Row.AllGather(p.W, l.B.Grad)
					gbs.Put(p.W.Rank(), tensor.HCat(parts...))
				}
				return nil
			})
			testutil.CheckClose(t, "y", ys.Get(0), wantY, 1e-9)
			testutil.CheckClose(t, "dx", dxs.Get(0), wantDx, 1e-9)
			testutil.CheckClose(t, "dW", gws.Get(0), ref.W.Grad, 1e-9)
			testutil.CheckClose(t, "dB", gbs.Get(0), ref.B.Grad, 1e-9)
			// Weight-gradient replicas must agree across depth (§3.1).
			world := ms.q * ms.q * ms.d
			for r := 1; r < world; r++ {
				testutil.CheckClose(t, fmt.Sprintf("dW replica %d", r), gws.Get(r), ref.W.Grad, 1e-9)
			}
		})
	}
}

func TestLayerNormMatchesSerial(t *testing.T) {
	const h, rows = 8, 8
	for _, ms := range meshShapes {
		t.Run(fmt.Sprintf("q%dd%d", ms.q, ms.d), func(t *testing.T) {
			dataRng := tensor.NewRNG(20)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewLayerNorm(h)
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			runMesh(t, ms.q, ms.d, func(p *Proc) error {
				l := NewLayerNorm(p, h)
				y := l.Forward(p, p.DistributeA(x))
				dx := l.Backward(p, p.DistributeA(dy))
				ys.Put(p.W.Rank(), p.CollectA(y))
				dxs.Put(p.W.Rank(), p.CollectA(dx))
				return nil
			})
			testutil.CheckClose(t, "y", ys.Get(0), wantY, 1e-9)
			testutil.CheckClose(t, "dx", dxs.Get(0), wantDx, 1e-9)
		})
	}
}

func TestLayerNormRowStatistics(t *testing.T) {
	// Forward output rows must have zero mean and unit variance across the
	// full hidden dimension even though it is split across processors.
	const h, rows = 8, 4
	rng := tensor.NewRNG(21)
	x := tensor.RandomMatrix(rows, h, rng)
	ys := testutil.NewCollector()
	runMesh(t, 2, 2, func(p *Proc) error {
		l := NewLayerNorm(p, h)
		y := l.Forward(p, p.DistributeA(x))
		ys.Put(p.W.Rank(), p.CollectA(y))
		return nil
	})
	y := ys.Get(0)
	for i := 0; i < rows; i++ {
		var sum, sq float64
		for j := 0; j < h; j++ {
			v := y.At(i, j)
			sum += v
			sq += v * v
		}
		mean := sum / float64(h)
		variance := sq/float64(h) - mean*mean
		if mean > 1e-9 || mean < -1e-9 {
			t.Fatalf("row %d mean %g", i, mean)
		}
		if variance < 0.9 || variance > 1.1 {
			t.Fatalf("row %d variance %g (eps-limited)", i, variance)
		}
	}
}

func TestAttentionMatchesSerial(t *testing.T) {
	const h, heads, seqLen = 8, 2, 2
	const rows = 8 // 4 sequences of 2 tokens
	for _, ms := range meshShapes {
		t.Run(fmt.Sprintf("q%dd%d", ms.q, ms.d), func(t *testing.T) {
			dataRng := tensor.NewRNG(30)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewMultiHeadAttention(h, heads, seqLen, tensor.NewRNG(77))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			runMesh(t, ms.q, ms.d, func(p *Proc) error {
				a := NewAttention(p, h, heads, seqLen, tensor.NewRNG(77))
				y := a.Forward(p, p.DistributeA(x))
				dx := a.Backward(p, p.DistributeA(dy))
				p.DrainGradients()
				ys.Put(p.W.Rank(), p.CollectA(y))
				dxs.Put(p.W.Rank(), p.CollectA(dx))
				return nil
			})
			testutil.CheckClose(t, "y", ys.Get(0), wantY, 1e-9)
			testutil.CheckClose(t, "dx", dxs.Get(0), wantDx, 1e-9)
		})
	}
}

func TestMLPMatchesSerial(t *testing.T) {
	const h, rows = 8, 8
	for _, ms := range meshShapes {
		t.Run(fmt.Sprintf("q%dd%d", ms.q, ms.d), func(t *testing.T) {
			dataRng := tensor.NewRNG(40)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewMLP(h, tensor.NewRNG(88))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			runMesh(t, ms.q, ms.d, func(p *Proc) error {
				m := NewMLP(p, h, tensor.NewRNG(88))
				y := m.Forward(p, p.DistributeA(x))
				dx := m.Backward(p, p.DistributeA(dy))
				p.DrainGradients()
				ys.Put(p.W.Rank(), p.CollectA(y))
				dxs.Put(p.W.Rank(), p.CollectA(dx))
				return nil
			})
			testutil.CheckClose(t, "y", ys.Get(0), wantY, 1e-9)
			testutil.CheckClose(t, "dx", dxs.Get(0), wantDx, 1e-9)
		})
	}
}

func TestBlockMatchesSerial(t *testing.T) {
	const h, heads, seqLen, rows = 8, 2, 2, 8
	for _, ms := range meshShapes {
		t.Run(fmt.Sprintf("q%dd%d", ms.q, ms.d), func(t *testing.T) {
			dataRng := tensor.NewRNG(50)
			x := tensor.RandomMatrix(rows, h, dataRng)
			dy := tensor.RandomMatrix(rows, h, dataRng)

			ref := nn.NewBlock(h, heads, seqLen, tensor.NewRNG(99))
			wantY := ref.Forward(x)
			wantDx := ref.Backward(dy)

			ys := testutil.NewCollector()
			dxs := testutil.NewCollector()
			runMesh(t, ms.q, ms.d, func(p *Proc) error {
				b := NewBlock(p, h, heads, seqLen, tensor.NewRNG(99))
				y := b.Forward(p, p.DistributeA(x))
				dx := b.Backward(p, p.DistributeA(dy))
				p.DrainGradients()
				ys.Put(p.W.Rank(), p.CollectA(y))
				dxs.Put(p.W.Rank(), p.CollectA(dx))
				return nil
			})
			testutil.CheckClose(t, "y", ys.Get(0), wantY, 1e-8)
			testutil.CheckClose(t, "dx", dxs.Get(0), wantDx, 1e-8)
		})
	}
}

func TestTrainingStepsStayInSyncWithSerial(t *testing.T) {
	// Three Adam steps on a Block: the distributed model must track the
	// serial model's outputs, and the depth replicas of every parameter
	// must remain bit-compatible with each other.
	const h, heads, seqLen, rows, steps = 8, 2, 2, 8, 3
	dataRng := tensor.NewRNG(60)
	xs := make([]*tensor.Matrix, steps)
	targets := make([]*tensor.Matrix, steps)
	for i := range xs {
		xs[i] = tensor.RandomMatrix(rows, h, dataRng)
		targets[i] = tensor.RandomMatrix(rows, h, dataRng)
	}

	// Serial run.
	ref := nn.NewBlock(h, heads, seqLen, tensor.NewRNG(7))
	refOpt := nn.NewAdam(1e-2, 0)
	wantLosses := make([]float64, steps)
	for i := 0; i < steps; i++ {
		y := ref.Forward(xs[i])
		loss, dy := nn.MSE(y, targets[i])
		wantLosses[i] = loss
		for _, p := range ref.Params() {
			p.ZeroGrad()
		}
		ref.Backward(dy)
		refOpt.Step(ref.Params())
	}

	losses := testutil.NewScalars()
	runMesh(t, 2, 2, func(p *Proc) error {
		b := NewBlock(p, h, heads, seqLen, tensor.NewRNG(7))
		opt := nn.NewAdam(1e-2, 0)
		var lastLoss float64
		for i := 0; i < steps; i++ {
			y := b.Forward(p, p.DistributeA(xs[i]))
			full := p.CollectA(y)
			loss, dyFull := nn.MSE(full, targets[i])
			lastLoss = loss
			for _, pa := range b.Params() {
				pa.ZeroGrad()
			}
			b.Backward(p, p.DistributeA(dyFull))
			p.DrainGradients()
			opt.Step(b.Params())
			if i == 0 && loss != wantLosses[0] {
				// Loss is computed from the collected output; allow fp
				// noise from the distributed reductions.
				diff := loss - wantLosses[0]
				if diff > 1e-9 || diff < -1e-9 {
					t.Errorf("step 0 loss %g vs serial %g", loss, wantLosses[0])
				}
			}
		}
		losses.Put(p.W.Rank(), lastLoss)
		return nil
	})
	final := losses.Get(0)
	diff := final - wantLosses[steps-1]
	if diff > 1e-7 || diff < -1e-7 {
		t.Fatalf("after %d steps distributed loss %g diverged from serial %g", steps, final, wantLosses[steps-1])
	}
	if wantLosses[steps-1] >= wantLosses[0] {
		t.Fatalf("training did not reduce loss: %v", wantLosses)
	}
}

func TestBlockPhantomMatchesRealClock(t *testing.T) {
	const h, heads, seqLen, rows = 8, 2, 2, 8
	clock := func(phantom bool) float64 {
		s := mesh.Shape{Q: 2, D: 2}
		c := dist.New(dist.Config{WorldSize: s.Size()})
		if err := c.Run(func(w *dist.Worker) error {
			p := NewProcAt(w, s)
			var b *Block
			var x *tensor.Matrix
			if phantom {
				b = NewBlockPhantom(p, h, heads, seqLen)
				x = tensor.NewPhantom(rows/4, h/2)
			} else {
				b = NewBlock(p, h, heads, seqLen, tensor.NewRNG(5))
				rng := tensor.NewRNG(uint64(w.Rank()) + 1)
				x = tensor.RandomMatrix(rows/4, h/2, rng)
			}
			y := b.Forward(p, x)
			b.Backward(p, y)
			p.DrainGradients()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	real, ph := clock(false), clock(true)
	if real <= 0 {
		t.Fatal("expected nonzero simulated time")
	}
	rel := (real - ph) / real
	if rel > 1e-12 || rel < -1e-12 {
		t.Fatalf("phantom clock %g != real clock %g", ph, real)
	}
}

func TestBlockShapeValidation(t *testing.T) {
	runMesh(t, 2, 1, func(p *Proc) error {
		defer func() { recover() }()
		NewAttention(p, 8, 3, 2, tensor.NewRNG(1)) // 3 heads not divisible by q=2
		t.Errorf("rank %d: expected panic for heads %% q != 0", p.W.Rank())
		return nil
	})
}

func TestTransfersFormula(t *testing.T) {
	// p = 64 -> 2·64^{2/3} = 32, the denominator of the paper's 31.5×/3.75×
	// comparisons.
	got := Transfers(64)
	if got < 31.999999 || got > 32.000001 {
		t.Fatalf("Transfers(64) = %g, want 32", got)
	}
}

func TestABBlockShapeHelpers(t *testing.T) {
	runMesh(t, 2, 2, func(p *Proc) error {
		if r, c := p.ABlockShape(16, 8); r != 4 || c != 4 {
			t.Errorf("ABlockShape = %dx%d", r, c)
		}
		if r, c := p.BBlockShape(8, 6); r != 4 || c != 3 {
			t.Errorf("BBlockShape = %dx%d", r, c)
		}
		return nil
	})
}
