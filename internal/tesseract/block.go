package tesseract

import (
	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// MLP is the Tesseract-parallel Transformer feed-forward module (§3.2.1,
// Figure 5a): parameters [h/q, 4h/q] and [4h/q, h/q] per processor, inputs
// and outputs A-distributed [b·s/(dq), h/q].
type MLP struct {
	H   int
	Fc1 *Linear
	Fc2 *Linear
}

// NewMLP draws Fc1, Fc2 from rng in the same order as nn.NewMLP.
func NewMLP(p *Proc, h int, rng *tensor.RNG) *MLP {
	return &MLP{
		H:   h,
		Fc1: NewLinear(p, h, 4*h, nn.ActGELU, true, rng),
		Fc2: NewLinear(p, 4*h, h, nn.ActNone, true, rng),
	}
}

// NewMLPPhantom builds the shape-only variant.
func NewMLPPhantom(p *Proc, h int) *MLP {
	return &MLP{
		H:   h,
		Fc1: NewLinearPhantom(p, h, 4*h, nn.ActGELU, true),
		Fc2: NewLinearPhantom(p, 4*h, h, nn.ActNone, true),
	}
}

// Params returns the shards this processor owns.
func (m *MLP) Params() []*nn.Param {
	return append(m.Fc1.Params(), m.Fc2.Params()...)
}

// Forward applies both projections to the local block.
func (m *MLP) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	return m.Fc2.Forward(p, m.Fc1.Forward(p, x))
}

// Backward propagates through both projections.
func (m *MLP) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	return m.Fc1.Backward(p, m.Fc2.Backward(p, dy))
}

// Block is one Tesseract-parallel Transformer layer: attention and MLP with
// residual connections and layer normalisation, mirroring nn.Block so the
// two produce identical numbers on identical seeds. Residual adds are local
// (§3.2.2); the layer norms all-reduce their row statistics.
type Block struct {
	H int

	Attn *Attention
	Ln1  *LayerNorm
	Mlp  *MLP
	Ln2  *LayerNorm
}

// NewBlock draws parameters from rng in the order Attn(Wq,Wk,Wv,Wo),
// MLP(Fc1,Fc2) — identical to nn.NewBlock.
func NewBlock(p *Proc, h, heads, seqLen int, rng *tensor.RNG) *Block {
	return &Block{
		H:    h,
		Attn: NewAttention(p, h, heads, seqLen, rng),
		Ln1:  NewLayerNorm(p, h),
		Mlp:  NewMLP(p, h, rng),
		Ln2:  NewLayerNorm(p, h),
	}
}

// NewBlockPhantom builds the shape-only variant for paper-scale timing.
func NewBlockPhantom(p *Proc, h, heads, seqLen int) *Block {
	return &Block{
		H:    h,
		Attn: NewAttentionPhantom(p, h, heads, seqLen),
		Ln1:  NewLayerNorm(p, h),
		Mlp:  NewMLPPhantom(p, h),
		Ln2:  NewLayerNorm(p, h),
	}
}

// Params returns the shards this processor owns.
func (b *Block) Params() []*nn.Param {
	return append(b.Attn.Params(), b.Mlp.Params()...)
}

// Forward computes z = LN₂(y + MLP(y)) with y = LN₁(x + Attn(x)) on local
// blocks.
func (b *Block) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	y := b.Ln1.Forward(p, compute.Add(p.W, x, b.Attn.Forward(p, x)))
	return b.Ln2.Forward(p, compute.Add(p.W, y, b.Mlp.Forward(p, y)))
}

// Backward propagates through the block.
func (b *Block) Backward(p *Proc, dz *tensor.Matrix) *tensor.Matrix {
	dr2 := b.Ln2.Backward(p, dz)
	dy := compute.Add(p.W, dr2, b.Mlp.Backward(p, dr2))
	dr1 := b.Ln1.Backward(p, dy)
	return compute.Add(p.W, dr1, b.Attn.Backward(p, dr1))
}
