package tesseract

import (
	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// MLP is the Tesseract-parallel Transformer feed-forward module (§3.2.1,
// Figure 5a): parameters [h/q, 4h/q] and [4h/q, h/q] per processor, inputs
// and outputs A-distributed [b·s/(dq), h/q].
type MLP struct {
	H   int
	Fc1 *Linear
	Fc2 *Linear
}

// NewMLP draws Fc1, Fc2 from rng in the same order as nn.NewMLP.
func NewMLP(p *Proc, h int, rng *tensor.RNG) *MLP {
	return &MLP{
		H:   h,
		Fc1: NewLinear(p, h, 4*h, nn.ActGELU, true, rng),
		Fc2: NewLinear(p, 4*h, h, nn.ActNone, true, rng),
	}
}

// NewMLPPhantom builds the shape-only variant.
func NewMLPPhantom(p *Proc, h int) *MLP {
	return &MLP{
		H:   h,
		Fc1: NewLinearPhantom(p, h, 4*h, nn.ActGELU, true),
		Fc2: NewLinearPhantom(p, 4*h, h, nn.ActNone, true),
	}
}

// Params returns the shards this processor owns.
func (m *MLP) Params() []*nn.Param {
	return append(m.Fc1.Params(), m.Fc2.Params()...)
}

// Forward applies both projections to the local block.
func (m *MLP) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	return m.Fc2.Forward(p, m.Fc1.Forward(p, x))
}

// Backward propagates through both projections, recycling the inner
// gradient once Fc1 has consumed it.
func (m *MLP) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	d1 := m.Fc2.Backward(p, dy)
	dx := m.Fc1.Backward(p, d1)
	p.W.Workspace().Put(d1)
	return dx
}

// Block is one Tesseract-parallel Transformer layer: attention and MLP with
// residual connections and layer normalisation, mirroring nn.Block so the
// two produce identical numbers on identical seeds. Residual adds are local
// (§3.2.2); the layer norms all-reduce their row statistics.
type Block struct {
	H int

	Attn *Attention
	Ln1  *LayerNorm
	Mlp  *MLP
	Ln2  *LayerNorm
}

// NewBlock draws parameters from rng in the order Attn(Wq,Wk,Wv,Wo),
// MLP(Fc1,Fc2) — identical to nn.NewBlock.
func NewBlock(p *Proc, h, heads, seqLen int, rng *tensor.RNG) *Block {
	return &Block{
		H:    h,
		Attn: NewAttention(p, h, heads, seqLen, rng),
		Ln1:  NewLayerNorm(p, h),
		Mlp:  NewMLP(p, h, rng),
		Ln2:  NewLayerNorm(p, h),
	}
}

// NewBlockPhantom builds the shape-only variant for paper-scale timing.
func NewBlockPhantom(p *Proc, h, heads, seqLen int) *Block {
	return &Block{
		H:    h,
		Attn: NewAttentionPhantom(p, h, heads, seqLen),
		Ln1:  NewLayerNorm(p, h),
		Mlp:  NewMLPPhantom(p, h),
		Ln2:  NewLayerNorm(p, h),
	}
}

// Params returns the shards this processor owns.
func (b *Block) Params() []*nn.Param {
	return append(b.Attn.Params(), b.Mlp.Params()...)
}

// Forward computes z = LN₂(y + MLP(y)) with y = LN₁(x + Attn(x)) on local
// blocks. The residual sums are transient workspace scratch — the layer
// norms do not retain their inputs — while the sub-layer activations ride
// to the step boundary.
func (b *Block) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	attn := b.Attn.Forward(p, x)
	r1 := ws.GetUninitMatch(x.Rows, x.Cols, x.Phantom() || attn.Phantom())
	compute.AddTo(p.W, r1, x, attn)
	y := b.Ln1.Forward(p, r1)
	ws.Put(r1)
	mlp := b.Mlp.Forward(p, y)
	r2 := ws.GetUninitMatch(y.Rows, y.Cols, y.Phantom() || mlp.Phantom())
	compute.AddTo(p.W, r2, y, mlp)
	z := b.Ln2.Forward(p, r2)
	ws.Put(r2)
	return z
}

// Backward propagates through the block, recycling every gradient
// intermediate once its last consumer returns.
func (b *Block) Backward(p *Proc, dz *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	dr2 := b.Ln2.Backward(p, dz)
	dmlp := b.Mlp.Backward(p, dr2)
	dy := ws.GetUninitMatch(dr2.Rows, dr2.Cols, dr2.Phantom() || dmlp.Phantom())
	compute.AddTo(p.W, dy, dr2, dmlp)
	ws.Put(dr2, dmlp)
	dr1 := b.Ln1.Backward(p, dy)
	ws.Put(dy)
	dattn := b.Attn.Backward(p, dr1)
	dx := ws.GetUninitMatch(dr1.Rows, dr1.Cols, dr1.Phantom() || dattn.Phantom())
	compute.AddTo(p.W, dx, dr1, dattn)
	ws.Put(dr1, dattn)
	return dx
}
