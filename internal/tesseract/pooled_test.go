package tesseract

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// errorfRank wraps a formatted error with the failing rank, surfacing it
// through the cluster's abort machinery.
func errorfRank(w *dist.Worker, format string, args ...any) error {
	return fmt.Errorf("rank %d: %s", w.Rank(), fmt.Sprintf(format, args...))
}

// blockStepSnapshot is one rank's observable state after a forward+backward:
// the local output block, the local input gradient block, and every local
// parameter gradient shard, all deep-copied so recycling cannot disturb them.
type blockStepSnapshot struct {
	out, dx *tensor.Matrix
	grads   []*tensor.Matrix
}

// runBlockSteps executes `steps` full Block forward+backward cycles on a
// [q, q, d] mesh with pooling on or off and returns per-rank, per-step
// snapshots. Inputs and output gradients vary per step so buffer reuse with
// stale contents cannot go unnoticed.
func runBlockSteps(t *testing.T, q, d, steps int, pooling bool) [][]blockStepSnapshot {
	t.Helper()
	const h, heads, seqLen, rows = 8, 4, 2, 8
	world := q * q * d
	snaps := make([][]blockStepSnapshot, world)
	rng := tensor.NewRNG(17)
	xs := make([]*tensor.Matrix, steps)
	dys := make([]*tensor.Matrix, steps)
	for i := range xs {
		xs[i] = tensor.RandomMatrix(rows, h, rng)
		dys[i] = tensor.RandomMatrix(rows, h, rng)
	}
	testutil.Run(t, world, func(w *dist.Worker) error {
		w.Workspace().SetPooling(pooling)
		p := NewProcAt(w, mesh.Shape{Q: q, D: d})
		b := NewBlock(p, h, heads, seqLen, tensor.NewRNG(23))
		params := b.Params()
		mine := make([]blockStepSnapshot, 0, steps)
		for i := 0; i < steps; i++ {
			for _, pa := range params {
				pa.ZeroGrad()
			}
			out := b.Forward(p, p.DistributeA(xs[i]))
			dx := b.Backward(p, p.DistributeA(dys[i]))
			p.DrainGradients()
			s := blockStepSnapshot{out: out.Clone(), dx: dx.Clone()}
			for _, pa := range params {
				s.grads = append(s.grads, pa.Grad.Clone())
			}
			mine = append(mine, s)
			w.Workspace().ReleaseAll()
		}
		snaps[w.Rank()] = mine
		return nil
	})
	return snaps
}

// TestPooledBlockBitwiseEqualsAllocating is the workspace subsystem's
// central property: with recycling on, a full Tesseract Transformer block
// forward+backward must produce bit-identical outputs, input gradients and
// parameter gradients to the plain allocating path, on every rank, across
// repeated steps (so reused buffers are actually exercised), for the 2-D,
// 2.5-D and serial mesh shapes.
func TestPooledBlockBitwiseEqualsAllocating(t *testing.T) {
	// [4,4,1] exercises reduce trees with interior nodes (group size 4),
	// which the [2,2,·] meshes never hit.
	for _, sh := range []struct{ q, d int }{{1, 1}, {2, 1}, {2, 2}, {4, 1}} {
		const steps = 3
		pooled := runBlockSteps(t, sh.q, sh.d, steps, true)
		plain := runBlockSteps(t, sh.q, sh.d, steps, false)
		for r := range pooled {
			for i := 0; i < steps; i++ {
				pp, pl := pooled[r][i], plain[r][i]
				if !pp.out.Equal(pl.out) {
					t.Fatalf("[%d,%d,%d] rank %d step %d: pooled forward output differs bitwise", sh.q, sh.q, sh.d, r, i)
				}
				if !pp.dx.Equal(pl.dx) {
					t.Fatalf("[%d,%d,%d] rank %d step %d: pooled input gradient differs bitwise", sh.q, sh.q, sh.d, r, i)
				}
				for gi := range pp.grads {
					if !pp.grads[gi].Equal(pl.grads[gi]) {
						t.Fatalf("[%d,%d,%d] rank %d step %d: parameter gradient %d differs bitwise", sh.q, sh.q, sh.d, r, i, gi)
					}
				}
			}
		}
	}
}

// TestPooledBlockWorkspaceIsLeakFree drives repeated steps and asserts the
// pool reaches a fixed point: after the first step has populated the free
// lists, further steps neither allocate nor raise the high-water mark.
func TestPooledBlockWorkspaceIsLeakFree(t *testing.T) {
	const q, d, steps = 2, 2, 5
	const h, heads, seqLen, rows = 8, 2, 2, 8
	world := q * q * d
	rng := tensor.NewRNG(31)
	x := tensor.RandomMatrix(rows, h, rng)
	dy := tensor.RandomMatrix(rows, h, rng)
	testutil.Run(t, world, func(w *dist.Worker) error {
		p := NewProcAt(w, mesh.Shape{Q: q, D: d})
		b := NewBlock(p, h, heads, seqLen, tensor.NewRNG(23))
		params := b.Params()
		var after1 tensor.WorkspaceStats
		for i := 0; i < steps; i++ {
			for _, pa := range params {
				pa.ZeroGrad()
			}
			b.Forward(p, p.DistributeA(x))
			b.Backward(p, p.DistributeA(dy))
			p.DrainGradients()
			w.Workspace().ReleaseAll()
			s := w.Workspace().Stats()
			if i == 0 {
				after1 = s
				continue
			}
			if s.Allocs != after1.Allocs {
				return errorfRank(w, "step %d allocated: %d pool misses vs %d after warm-up", i, s.Allocs, after1.Allocs)
			}
			if s.HighWater != after1.HighWater {
				return errorfRank(w, "step %d raised the high-water mark: %d vs %d", i, s.HighWater, after1.HighWater)
			}
			if s.Live != 0 {
				return errorfRank(w, "step %d leaked %d live buffers past ReleaseAll", i, s.Live)
			}
		}
		return nil
	})
}
