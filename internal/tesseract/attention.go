package tesseract

import (
	"fmt"
	"math"

	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Attention is the Tesseract-parallel multi-head self-attention layer of
// §3.2.1 (Figure 5b). The fused QKV projection is a Tesseract Linear with a
// [h, 3h] weight laid out so each grid column receives head-aligned Q, K and
// V slices; the per-head attention math then runs entirely locally (each
// processor owns n/q whole heads of b/(dq) whole sequences), and the output
// projection is another Tesseract Linear. The only communication is inside
// the two linears, exactly as the paper describes.
type Attention struct {
	H, Heads, SeqLen int

	QKV  *Linear // h -> 3h, head-aligned column permutation
	Proj *Linear // h -> h

	q, k, v *tensor.Matrix
	probs   []*tensor.Matrix
}

// NewAttention draws Wq, Wk, Wv, Wo (plus zero biases) from rng in the same
// order as nn.NewMultiHeadAttention, then packs Wq|Wk|Wv into the fused
// column-permuted QKV weight: grid column j holds [Wq_j | Wk_j | Wv_j], so
// the local output splits into aligned Q, K, V blocks of h/q columns each.
func NewAttention(p *Proc, h, heads, seqLen int, rng *tensor.RNG) *Attention {
	validateAttention(p, h, heads)
	wq := tensor.XavierMatrix(h, h, rng)
	wk := tensor.XavierMatrix(h, h, rng)
	wv := tensor.XavierMatrix(h, h, rng)
	wo := tensor.XavierMatrix(h, h, rng)

	q := p.Shape.Q
	bc := h / q
	cols := make([]*tensor.Matrix, 0, 3*q)
	for j := 0; j < q; j++ {
		cols = append(cols,
			wq.SubMatrix(0, j*bc, h, bc),
			wk.SubMatrix(0, j*bc, h, bc),
			wv.SubMatrix(0, j*bc, h, bc))
	}
	fused := tensor.HCat(cols...)

	a := &Attention{H: h, Heads: heads, SeqLen: seqLen}
	a.QKV = newLinearFromGlobal(p, fused, nn.ActNone, true)
	a.Proj = newLinearFromGlobal(p, wo, nn.ActNone, true)
	return a
}

// NewAttentionPhantom builds the shape-only variant for paper-scale timing.
func NewAttentionPhantom(p *Proc, h, heads, seqLen int) *Attention {
	validateAttention(p, h, heads)
	a := &Attention{H: h, Heads: heads, SeqLen: seqLen}
	a.QKV = NewLinearPhantom(p, h, 3*h, nn.ActNone, true)
	a.Proj = NewLinearPhantom(p, h, h, nn.ActNone, true)
	return a
}

func validateAttention(p *Proc, h, heads int) {
	if h%heads != 0 {
		panic(fmt.Sprintf("tesseract: hidden %d not divisible by heads %d", h, heads))
	}
	if heads%p.Shape.Q != 0 {
		panic(fmt.Sprintf("tesseract: heads %d not divisible by q=%d", heads, p.Shape.Q))
	}
}

// Params returns the shards this processor owns.
func (a *Attention) Params() []*nn.Param {
	return append(a.QKV.Params(), a.Proj.Params()...)
}

// Forward runs attention over the local block x of shape [m̂, h/q], where
// m̂ = b·s/(d·q) rows cover whole sequences. The Q/K/V slices and the
// per-head probabilities are retained for the backward pass in workspace
// buffers, released at the step boundary.
func (a *Attention) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	qkv := a.QKV.Forward(p, x)
	hq := a.H / p.Shape.Q
	ph := qkv.Phantom()
	aq := ws.GetUninitMatch(qkv.Rows, hq, ph)
	ak := ws.GetUninitMatch(qkv.Rows, hq, ph)
	av := ws.GetUninitMatch(qkv.Rows, hq, ph)
	tensor.SubMatrixInto(aq, qkv, 0, 0)
	tensor.SubMatrixInto(ak, qkv, 0, hq)
	tensor.SubMatrixInto(av, qkv, 0, 2*hq)
	a.q, a.k, a.v = aq, ak, av

	out := a.attendForward(p, aq, ak, av)
	return a.Proj.Forward(p, out)
}

// attendForward performs the local per-head attention. In phantom mode the
// arithmetic is skipped and the flop cost is charged analytically, using a
// possibly fractional sequences-per-processor count (the paper's Table 1
// includes shapes like [4,4,2] with batch 12, where b/(dq) = 1.5).
func (a *Attention) attendForward(p *Proc, q, k, v *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	headsLocal := a.Heads / p.Shape.Q
	dh := a.H / a.Heads
	s := a.SeqLen
	if q.Phantom() {
		seqF := float64(q.Rows) / float64(s)
		perHead := 4*float64(s)*float64(s)*float64(dh) + compute.FlopsPerSoftmax*float64(s)*float64(s)
		p.W.Compute(seqF * float64(headsLocal) * perHead)
		return ws.GetUninitMatch(q.Rows, q.Cols, true)
	}
	if q.Rows%s != 0 {
		panic(fmt.Sprintf("tesseract: attention rows %d not divisible by seq len %d (batch must divide d*q)", q.Rows, s))
	}
	nseq := q.Rows / s
	scale := 1 / math.Sqrt(float64(dh))
	out := ws.GetUninit(q.Rows, q.Cols) // every head block is overwritten below
	a.probs = a.probs[:0]
	qs := ws.GetUninit(s, dh)
	ks := ws.GetUninit(s, dh)
	vs := ws.GetUninit(s, dh)
	scores := ws.GetUninit(s, s)
	head := ws.GetUninit(s, dh)
	for sq := 0; sq < nseq; sq++ {
		for hd := 0; hd < headsLocal; hd++ {
			tensor.SubMatrixInto(qs, q, sq*s, hd*dh)
			tensor.SubMatrixInto(ks, k, sq*s, hd*dh)
			tensor.SubMatrixInto(vs, v, sq*s, hd*dh)
			compute.MatMulNTInto(p.W, scores, qs, ks)
			tensor.ScaleInPlace(scores, scale)
			probs := ws.GetUninit(s, s) // retained for the backward pass
			compute.SoftmaxRowsTo(p.W, probs, scores)
			a.probs = append(a.probs, probs)
			head.Zero()
			compute.MatMulInto(p.W, head, probs, vs)
			out.SetSubMatrix(sq*s, hd*dh, head)
		}
	}
	ws.Put(qs, ks, vs, scores, head)
	return out
}

// Backward propagates through the attention module and returns the local
// input gradient. Gradient intermediates are recycled as soon as their last
// reader returns (no layer retains its Backward input).
func (a *Attention) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	dout := a.Proj.Backward(p, dy)
	dqkv := a.attendBackward(p, dout)
	ws.Put(dout)
	dx := a.QKV.Backward(p, dqkv)
	ws.Put(dqkv)
	return dx
}

func (a *Attention) attendBackward(p *Proc, dout *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	headsLocal := a.Heads / p.Shape.Q
	dh := a.H / a.Heads
	s := a.SeqLen
	hq := a.H / p.Shape.Q
	if dout.Phantom() {
		seqF := float64(dout.Rows) / float64(s)
		perHead := 8*float64(s)*float64(s)*float64(dh) + compute.FlopsPerSoftmax*float64(s)*float64(s)
		p.W.Compute(seqF * float64(headsLocal) * perHead)
		return ws.GetUninitMatch(dout.Rows, 3*hq, true)
	}
	nseq := dout.Rows / s
	scale := 1 / math.Sqrt(float64(dh))
	dqkv := ws.GetUninit(dout.Rows, 3*hq) // every block is overwritten below
	dhead := ws.GetUninit(s, dh)
	qs := ws.GetUninit(s, dh)
	ks := ws.GetUninit(s, dh)
	vs := ws.GetUninit(s, dh)
	dvs := ws.GetUninit(s, dh)
	dprobs := ws.GetUninit(s, s)
	dscores := ws.GetUninit(s, s)
	dqs := ws.GetUninit(s, dh)
	dks := ws.GetUninit(s, dh)
	for sq := 0; sq < nseq; sq++ {
		for hd := 0; hd < headsLocal; hd++ {
			probs := a.probs[sq*headsLocal+hd]
			tensor.SubMatrixInto(dhead, dout, sq*s, hd*dh)
			tensor.SubMatrixInto(qs, a.q, sq*s, hd*dh)
			tensor.SubMatrixInto(ks, a.k, sq*s, hd*dh)
			tensor.SubMatrixInto(vs, a.v, sq*s, hd*dh)

			dvs.Zero()
			compute.MatMulTNInto(p.W, dvs, probs, dhead)
			compute.MatMulNTInto(p.W, dprobs, dhead, vs)
			compute.SoftmaxRowsBackwardTo(p.W, dscores, probs, dprobs)
			tensor.ScaleInPlace(dscores, scale)
			dqs.Zero()
			compute.MatMulInto(p.W, dqs, dscores, ks)
			dks.Zero()
			compute.MatMulTNInto(p.W, dks, dscores, qs)

			dqkv.SetSubMatrix(sq*s, hd*dh, dqs)
			dqkv.SetSubMatrix(sq*s, hq+hd*dh, dks)
			dqkv.SetSubMatrix(sq*s, 2*hq+hd*dh, dvs)
		}
	}
	ws.Put(dhead, qs, ks, vs, dvs, dprobs, dscores, dqs, dks)
	return dqkv
}
