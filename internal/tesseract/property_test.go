package tesseract

import (
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// TestQuickMatMulMatchesSerial is the repository's central property test:
// for randomly drawn mesh shapes and matrix dimensions, Tesseract's
// Algorithm 3 must agree with a serial multiplication.
func TestQuickMatMulMatchesSerial(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		shapes := []struct{ q, d int }{{1, 1}, {2, 1}, {2, 2}, {3, 1}, {3, 3}}
		sh := shapes[rng.Intn(len(shapes))]
		q, d := sh.q, sh.d
		a := q * d * (1 + rng.Intn(3))
		b := q * (1 + rng.Intn(3))
		c := q * (1 + rng.Intn(3))
		ga := tensor.RandomMatrix(a, b, rng)
		gb := tensor.RandomMatrix(b, c, rng)
		want := tensor.MatMul(ga, gb)

		results := testutil.NewCollector()
		cluster := dist.New(dist.Config{WorldSize: q * q * d})
		err := cluster.Run(func(w *dist.Worker) error {
			p := NewProcAt(w, mesh.Shape{Q: q, D: d})
			lc := p.MatMulAB(p.DistributeA(ga), p.DistributeB(gb))
			results.Put(w.Rank(), p.CollectA(lc))
			return nil
		})
		if err != nil {
			return false
		}
		for r := 0; r < q*q*d; r++ {
			if !results.Get(r).AllClose(want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGradientIdentity checks Eq. 3 as a property: for random shapes,
// MatMulABT(C', B) == C'·Bᵀ and MatMulATB(A, C') == Aᵀ·C' computed serially.
func TestQuickGradientIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		shapes := []struct{ q, d int }{{2, 1}, {2, 2}, {3, 1}}
		sh := shapes[rng.Intn(len(shapes))]
		q, d := sh.q, sh.d
		a := q * d * (1 + rng.Intn(2))
		b := q * (1 + rng.Intn(2))
		c := q * (1 + rng.Intn(2))
		gw := tensor.RandomMatrix(b, c, rng) // parameter
		gx := tensor.RandomMatrix(a, b, rng) // activation
		gdy := tensor.RandomMatrix(a, c, rng)
		wantDx := tensor.MatMulNT(gdy, gw)
		wantDw := tensor.MatMulTN(gx, gdy)

		dxs := testutil.NewCollector()
		dws := testutil.NewCollector()
		cluster := dist.New(dist.Config{WorldSize: q * q * d})
		err := cluster.Run(func(w *dist.Worker) error {
			p := NewProcAt(w, mesh.Shape{Q: q, D: d})
			lw := p.DistributeB(gw)
			lx := p.DistributeA(gx)
			ldy := p.DistributeA(gdy)
			dxs.Put(w.Rank(), p.CollectA(p.MatMulABT(ldy, lw)))
			dws.Put(w.Rank(), p.CollectB(p.MatMulATB(lx, ldy)))
			return nil
		})
		if err != nil {
			return false
		}
		return dxs.Get(0).AllClose(wantDx, 1e-9) && dws.Get(0).AllClose(wantDw, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDepthReplicaInvariant: after any forward+backward, the weight
// gradient shards at equal (i, j) across depth are identical — §3.1's
// all-reduce guarantee, checked as a property over random inputs.
func TestQuickDepthReplicaInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		const q, d = 2, 2
		x := tensor.RandomMatrix(8, 8, rng)
		dy := tensor.RandomMatrix(8, 8, rng)
		grads := testutil.NewCollector()
		cluster := dist.New(dist.Config{WorldSize: q * q * d})
		err := cluster.Run(func(w *dist.Worker) error {
			p := NewProcAt(w, mesh.Shape{Q: q, D: d})
			l := NewLinear(p, 8, 8, 0, true, tensor.NewRNG(seed^0xabc))
			l.Forward(p, p.DistributeA(x))
			l.Backward(p, p.DistributeA(dy))
			p.DrainGradients() // gradients are final only after the queued depth sync
			grads.Put(w.Rank(), l.W.Grad)
			return nil
		})
		if err != nil {
			return false
		}
		// Rank layout: k·q² + i·q + j; depth peers differ by q² = 4.
		for r := 0; r < q*q; r++ {
			if grads.Get(r).MaxAbsDiff(grads.Get(r+q*q)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLayerNormInvariants: distributed LayerNorm rows have ~zero mean
// and the output is invariant to adding a per-row constant to the input.
func TestQuickLayerNormInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		const q, d, h = 2, 2, 8
		x := tensor.RandomMatrix(8, h, rng)
		shift := tensor.RandomMatrix(8, 1, rng)
		xShift := tensor.AddColVector(x, shift)
		outs := testutil.NewCollector()
		outsShift := testutil.NewCollector()
		cluster := dist.New(dist.Config{WorldSize: q * q * d})
		err := cluster.Run(func(w *dist.Worker) error {
			p := NewProcAt(w, mesh.Shape{Q: q, D: d})
			l := NewLayerNorm(p, h)
			outs.Put(w.Rank(), p.CollectA(l.Forward(p, p.DistributeA(x))))
			l2 := NewLayerNorm(p, h)
			outsShift.Put(w.Rank(), p.CollectA(l2.Forward(p, p.DistributeA(xShift))))
			return nil
		})
		if err != nil {
			return false
		}
		y, ys := outs.Get(0), outsShift.Get(0)
		if !y.AllClose(ys, 1e-6) { // shift invariance
			return false
		}
		sums := tensor.RowSums(y)
		for i := 0; i < sums.Rows; i++ {
			if v := sums.At(i, 0); v > 1e-8 || v < -1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
