package tesseract

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/nn"
	"repro/internal/summa"
	"repro/internal/tensor"
)

// Linear is a Tesseract-parallel fully connected layer. The weight is
// B-distributed ([In/q, Out/q] per processor, replicated across depth); the
// bias, following §3.2.2, lives on grid row 0 and is broadcast down each
// column in the forward pass, with gradients reduced back to row 0 in the
// backward pass. An optional GELU is fused, as in the Transformer MLP.
//
// The backward pass applies Eq. 3: dX = dY·Wᵀ via MulABT and dW = Xᵀ·dY via
// MulATB followed by the depth all-reduce of §3.1, so the d weight replicas
// stay bit-identical across training steps.
type Linear struct {
	In, Out int
	Act     nn.Activation

	W *nn.Param // local [In/q, Out/q]
	B *nn.Param // [1, Out/q] on grid row 0, nil elsewhere

	hasBias bool // configuration flag, identical on every processor

	x   *tensor.Matrix
	pre *tensor.Matrix
}

// NewLinear draws the full Xavier weight from rng (consuming exactly the
// same stream as nn.NewLinear) and keeps only the local shard. All
// processors must call it collectively with identically seeded RNGs.
func NewLinear(p *Proc, in, out int, act nn.Activation, bias bool, rng *tensor.RNG) *Linear {
	full := tensor.XavierMatrix(in, out, rng)
	return newLinearFromGlobal(p, full, act, bias)
}

// newLinearFromGlobal shards a replicated global weight. The fused QKV
// projection uses it with a column-permuted weight.
func newLinearFromGlobal(p *Proc, full *tensor.Matrix, act nn.Activation, bias bool) *Linear {
	l := &Linear{In: full.Rows, Out: full.Cols, Act: act, hasBias: bias}
	l.W = nn.NewParam("tesseract.linear.w", p.DistributeB(full))
	if bias {
		l.B = biasParam(p, full.Cols, full.Phantom())
	}
	return l
}

// NewLinearPhantom builds a shape-only layer for paper-scale timing runs.
func NewLinearPhantom(p *Proc, in, out int, act nn.Activation, bias bool) *Linear {
	br, bc := p.BBlockShape(in, out)
	l := &Linear{In: in, Out: out, Act: act, hasBias: bias}
	l.W = nn.NewParam("tesseract.linear.w", tensor.NewPhantom(br, bc))
	if bias {
		l.B = biasParam(p, out, true)
	}
	return l
}

func biasParam(p *Proc, out int, phantom bool) *nn.Param {
	if p.I != 0 {
		return nil
	}
	cols := out / p.Shape.Q
	if phantom {
		return nn.NewParam("tesseract.linear.b", tensor.NewPhantom(1, cols))
	}
	return nn.NewParam("tesseract.linear.b", tensor.New(1, cols))
}

// Params returns the parameter shards this processor owns.
func (l *Linear) Params() []*nn.Param {
	if l.B == nil {
		return []*nn.Param{l.W}
	}
	return []*nn.Param{l.W, l.B}
}

// Forward computes the local output block for a local A-distributed input x.
// The bias is broadcast down the column first, then the SUMMA runs with the
// bias add and the optional GELU fused into its final iteration's
// write-back (summa.Epilogue) — one pass over the output instead of three,
// bitwise identical to the separate passes. The input, the pre-activation
// and the returned activation are retained for the backward pass, so they
// live until the step-boundary ReleaseAll; bias receive buffers are
// transient workspace scratch.
func (l *Linear) Forward(p *Proc, x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.In/p.Shape.Q {
		panic(fmt.Sprintf("tesseract: Linear forward block %dx%d through %d->%d on q=%d",
			x.Rows, x.Cols, l.In, l.Out, p.Shape.Q))
	}
	ws := p.W.Workspace()
	l.x = x
	outCols := l.Out / p.Shape.Q
	ph := x.Phantom() || l.W.Value.Phantom()
	var epi summa.Epilogue
	var biasScratch *tensor.Matrix
	if l.hasBias {
		if p.I == 0 {
			epi.Bias = p.Col.BroadcastInto(p.W, p.ColRank(0), l.B.Value, l.B.Value)
		} else {
			biasScratch = ws.GetUninitMatch(1, outCols, l.W.Value.Phantom())
			p.Col.BroadcastInto(p.W, p.ColRank(0), nil, biasScratch)
			epi.Bias = biasScratch
		}
	}
	if l.Act == nn.ActGELU {
		epi.Act = ws.GetUninitMatch(x.Rows, outCols, ph)
	}
	y := p.MatMulABEpi(x, l.W.Value, epi)
	if biasScratch != nil {
		ws.Put(biasScratch)
	}
	l.pre = y
	if epi.Act != nil {
		return epi.Act
	}
	return y
}

// Backward computes dW (and dB) and returns the local input-gradient
// block, a workspace buffer owned by the caller. The incoming dy is only
// read — gradient buffers, unlike activations, are never retained, so the
// caller may recycle dy as soon as Backward returns.
//
// Parameter-gradient synchronisation is asynchronous: the §3.1 depth
// all-reduces of dW and dB are queued on the Proc (QueueGradSync) and run
// while the backward pass continues into earlier layers. On meshes with
// d > 1 the gradients land in l.W.Grad/l.B.Grad only once
// Proc.DrainGradients has been called — trainers drain after the full
// backward pass, before the optimiser step.
func (l *Linear) Backward(p *Proc, dy *tensor.Matrix) *tensor.Matrix {
	ws := p.W.Workspace()
	var dyScratch *tensor.Matrix
	if l.Act == nn.ActGELU {
		g := ws.GetUninitMatch(dy.Rows, dy.Cols, dy.Phantom() || l.pre.Phantom())
		compute.GELUGradHadamardTo(p.W, g, l.pre, dy)
		dy, dyScratch = g, g
	}
	p.QueueGradSync(l.W, summa.MulATB(p.Proc, l.x, dy))
	if l.hasBias {
		db := ws.GetUninitMatch(1, dy.Cols, dy.Phantom())
		compute.ColSumsInto(p.W, db, dy)
		if p.I == 0 {
			r := ws.GetUninitMatch(1, dy.Cols, dy.Phantom())
			p.Col.ReduceInto(p.W, p.ColRank(0), db, r)
			p.QueueGradSync(l.B, r)
		} else {
			p.Col.ReduceInto(p.W, p.ColRank(0), db, nil)
		}
		ws.Put(db)
	}
	dx := p.MatMulABT(dy, l.W.Value)
	if dyScratch != nil {
		ws.Put(dyScratch)
	}
	return dx
}
