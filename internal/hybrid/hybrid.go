// Package hybrid implements §3.4 of the paper (Figure 6): composing tensor
// parallelism with data parallelism and pipeline parallelism. The cluster
// is carved into
//
//	dataParallel × pipelineStages × meshSize
//
// workers: each data-parallel replica owns a chain of pipeline stages, each
// stage owns one tensor-parallel family — any registered parallel.Family: a
// [q, q, d] Tesseract mesh (the default), an Optimus [q, q] mesh, or a
// Megatron [p] group — holding a contiguous slice of the Transformer
// layers. Rank layout is replica-major, then stage-major, then the family's
// own layout, matching Figure 6's colour blocks; for Tesseract:
//
//	rank = replica·(stages·d·q²) + stage·(d·q²) + k·q² + i·q + j
//
// Data parallelism all-reduces parameter gradients across the replicas'
// corresponding processors after each backward pass; pipeline parallelism
// moves activations (and gradients, in reverse) point-to-point between the
// same position of adjacent stages.
package hybrid

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"

	// Config.Family defaults to "tesseract", so this package links it;
	// other families register through the caller's imports.
	_ "repro/internal/tesseract"
)

// Config describes the composition.
type Config struct {
	// DataParallel replicas (≥1).
	DataParallel int
	// PipelineStages (≥1); Layers must divide by it.
	PipelineStages int
	// Family names the tensor-parallel family inside each stage
	// ("tesseract" when empty). Non-default families must be registered
	// by importing their package.
	Family string
	// Q, D: the mesh inside each stage for the 2-D/2.5-D families; zero
	// for 1-D families.
	Q, D int
	// Ranks is the stage size for 1-D families (derived from Q and D
	// otherwise).
	Ranks int
	// Model dimensions.
	Hidden, Heads, SeqLen, Layers int
	// Seed for parameter initialisation (identical across replicas).
	Seed uint64
}

// layout returns the per-stage family layout (base 0), validated against
// the family's registered static constraints so an impossible composition
// is rejected before any cluster is sized from it.
func (c Config) layout() (parallel.Layout, error) {
	fam := c.Family
	if fam == "" {
		fam = "tesseract"
	}
	return parallel.Validate(parallel.Layout{Family: fam, Q: c.Q, D: c.D, Ranks: c.Ranks})
}

// Validate checks the composition and returns the total worker count.
func (c Config) Validate() (int, error) {
	if c.DataParallel < 1 || c.PipelineStages < 1 {
		return 0, fmt.Errorf("hybrid: need at least one replica and one stage")
	}
	if c.Layers%c.PipelineStages != 0 {
		return 0, fmt.Errorf("hybrid: %d layers not divisible by %d stages", c.Layers, c.PipelineStages)
	}
	l, err := c.layout()
	if err != nil {
		return 0, err
	}
	return c.DataParallel * c.PipelineStages * l.Ranks, nil
}

// MeshSize returns the per-stage family size, or 0 when the configuration
// is invalid (call Validate first for the error).
func (c Config) MeshSize() int {
	l, err := c.layout()
	if err != nil {
		return 0
	}
	return l.Ranks
}

// Proc is one worker's view of the composed machine.
type Proc struct {
	Cfg     Config
	Replica int
	Stage   int
	// meshSize caches the normalized per-stage family size, so the
	// pipeline's per-handoff rank arithmetic never re-derives the layout.
	meshSize int
	// Fam is the worker's tensor-parallel family view within its stage —
	// the stage's model layer, whatever the family.
	Fam parallel.Family
	// DP spans the DataParallel workers at the same (stage, position),
	// ordered by replica — the group that keeps parameter replicas in
	// sync (the "same colour" blocks of Figure 6).
	DP *dist.Group

	blocks []parallel.Layer
	x      *tensor.Matrix

	// In-flight data-parallel gradient all-reduces (issue → wait), reused
	// across steps so the sync path stays off the allocator.
	dpParams  []*nn.Param
	dpHandles []dist.Handle
}

// NewProc attaches a worker to the composed layout and builds its stage's
// slice of the model (Layers/PipelineStages Transformer blocks). Parameters
// are drawn from a per-layer seed, so every replica initialises identically
// and stage boundaries do not perturb the streams.
func NewProc(w *dist.Worker, cfg Config) (*Proc, error) {
	world, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if w.Cluster().WorldSize() < world {
		return nil, fmt.Errorf("hybrid: cluster has %d workers, composition needs %d", w.Cluster().WorldSize(), world)
	}
	l, err := cfg.layout()
	if err != nil {
		return nil, err
	}
	meshSize := l.Ranks
	perReplica := cfg.PipelineStages * meshSize
	replica := w.Rank() / perReplica
	stage := (w.Rank() % perReplica) / meshSize
	l.Base = replica*perReplica + stage*meshSize

	p := &Proc{Cfg: cfg, Replica: replica, Stage: stage, meshSize: meshSize}
	p.Fam, err = parallel.New(w, l)
	if err != nil {
		return nil, err
	}

	// Data-parallel group: same stage and same position within the stage
	// across replicas, ordered by replica index.
	dpRanks := make([]int, cfg.DataParallel)
	offset := w.Rank() - replica*perReplica
	for r := range dpRanks {
		dpRanks[r] = r*perReplica + offset
	}
	p.DP = w.Cluster().Group(dpRanks...)

	layersPerStage := cfg.Layers / cfg.PipelineStages
	for i := 0; i < layersPerStage; i++ {
		globalLayer := stage*layersPerStage + i
		rng := tensor.NewRNG(cfg.Seed + uint64(globalLayer)*7919)
		p.blocks = append(p.blocks, p.Fam.NewBlock(cfg.Hidden, cfg.Heads, cfg.SeqLen, rng))
	}
	return p, nil
}

// Params returns the worker's parameter shards.
func (p *Proc) Params() []*nn.Param {
	var out []*nn.Param
	for _, b := range p.blocks {
		out = append(out, b.Params()...)
	}
	return out
}

// peer returns the rank at the same position in an adjacent stage.
func (p *Proc) peer(stage int) int {
	perReplica := p.Cfg.PipelineStages * p.meshSize
	local := p.Fam.Worker().Rank() - (p.Replica*perReplica + p.Stage*p.meshSize)
	return p.Replica*perReplica + stage*p.meshSize + local
}

// Forward runs this worker's stage over its replica's local input block.
// Stage 0 consumes x (the replica's family-distributed input); later stages
// receive their input from the previous stage's matching processor.
// Only the last stage returns the output block; others return nil.
func (p *Proc) Forward(x *tensor.Matrix) *tensor.Matrix {
	w := p.Fam.Worker()
	if p.Stage == 0 {
		if x == nil {
			panic("hybrid: stage 0 requires an input block")
		}
	} else {
		x = w.Recv(p.peer(p.Stage - 1))
	}
	p.x = x
	h := x
	for _, b := range p.blocks {
		h = b.Forward(h)
	}
	if p.Stage < p.Cfg.PipelineStages-1 {
		w.Send(p.peer(p.Stage+1), h)
		return nil
	}
	return h
}

// Backward runs the stage backward. The last stage consumes dy; earlier
// stages receive the gradient from the next stage. Stage 0 returns the
// input-gradient block; others return nil. Afterwards every parameter
// gradient is all-reduced across the data-parallel replicas and averaged,
// keeping the replicas synchronised.
//
// The synchronisation is overlapped: the per-layer gradient syncs the
// family deferred (Tesseract's §3.1 depth all-reduces) drain first, then
// every data-parallel all-reduce is issued nonblocking, the pipeline
// handoff to the previous stage goes out while those reductions are in
// flight, and only then does the stage wait and average — so the handoff
// never sits behind the gradient sync.
func (p *Proc) Backward(dy *tensor.Matrix) *tensor.Matrix {
	w := p.Fam.Worker()
	if p.Stage == p.Cfg.PipelineStages-1 {
		if dy == nil {
			panic("hybrid: last stage requires an output gradient")
		}
	} else {
		dy = w.Recv(p.peer(p.Stage + 1))
	}
	for i := len(p.blocks) - 1; i >= 0; i-- {
		dy = p.blocks[i].Backward(dy)
	}
	p.Fam.DrainGradients()
	p.issueGradSync()
	if p.Stage > 0 {
		w.Send(p.peer(p.Stage-1), dy)
		dy = nil
	}
	p.waitGradSync()
	return dy
}

// EndStep recycles this worker's workspace buffers at a training-step
// boundary. Unlike a standalone family — where every cross-worker read
// completes inside a collective — the pipeline hands activation and
// gradient buffers to adjacent stages by pointer, and the receiving stage
// may still be reading them when this worker's Backward returns. EndStep
// therefore runs a world barrier first: every worker must call it at the
// same point (after the optimiser update), and only once all have arrived
// is it safe for each to release.
func (p *Proc) EndStep() {
	w := p.Fam.Worker()
	w.Cluster().WorldGroup().Barrier(w)
	p.Fam.EndStep()
}

// issueGradSync launches an in-place nonblocking all-reduce of every
// parameter gradient across the data-parallel replicas (bit-identical to
// the blocking AllReduce it replaced, with no retained allocation).
func (p *Proc) issueGradSync() {
	if p.Cfg.DataParallel == 1 {
		return
	}
	p.dpParams = append(p.dpParams[:0], p.Params()...)
	p.dpHandles = p.dpHandles[:0]
	for _, pa := range p.dpParams {
		p.dpHandles = append(p.dpHandles, p.DP.IAllReduceInto(p.Fam.Worker(), pa.Grad, pa.Grad))
	}
}

// waitGradSync completes the in-flight gradient all-reduces and averages,
// in issue order.
func (p *Proc) waitGradSync() {
	inv := 1 / float64(p.Cfg.DataParallel)
	for i := range p.dpHandles {
		p.dpHandles[i].Wait()
		tensor.ScaleInPlace(p.dpParams[i].Grad, inv)
	}
	p.dpHandles = p.dpHandles[:0]
	p.dpParams = p.dpParams[:0]
}

// ShardBatch splits a replicated global batch [b·s, cols] into the
// replica's share (replica r takes the r-th sequence block), distributed
// the family's way — the data-parallel input split of Figure 6.
func (p *Proc) ShardBatch(global *tensor.Matrix, seqLen int) *tensor.Matrix {
	b := global.Rows / seqLen
	if b%p.Cfg.DataParallel != 0 {
		panic(fmt.Sprintf("hybrid: batch %d not divisible by %d replicas", b, p.Cfg.DataParallel))
	}
	per := b / p.Cfg.DataParallel
	share := global.SubMatrix(p.Replica*per*seqLen, 0, per*seqLen, global.Cols)
	return p.Fam.Distribute(share)
}
