package hybrid

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/tesseract"
	"repro/internal/testutil"

	_ "repro/internal/megatron" // register the megatron inner family under test
)

const (
	h, heads, seqLen = 8, 2, 2
)

// serialStack builds the serial reference with the same per-layer seeds as
// NewProc.
func serialStack(layers int, seed uint64) []*nn.Block {
	out := make([]*nn.Block, layers)
	for l := range out {
		rng := tensor.NewRNG(seed + uint64(l)*7919)
		out[l] = nn.NewBlock(h, heads, seqLen, rng)
	}
	return out
}

func serialForward(blocks []*nn.Block, x *tensor.Matrix) *tensor.Matrix {
	for _, b := range blocks {
		x = b.Forward(x)
	}
	return x
}

func serialBackward(blocks []*nn.Block, dy *tensor.Matrix) *tensor.Matrix {
	for i := len(blocks) - 1; i >= 0; i-- {
		dy = blocks[i].Backward(dy)
	}
	return dy
}

func TestValidate(t *testing.T) {
	if _, err := (Config{DataParallel: 2, PipelineStages: 2, Q: 2, D: 2, Layers: 4}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := (Config{DataParallel: 1, PipelineStages: 3, Q: 2, D: 1, Layers: 4}).Validate(); err == nil {
		t.Fatal("layers % stages != 0 must be rejected")
	}
	if _, err := (Config{DataParallel: 0, PipelineStages: 1, Q: 2, D: 1, Layers: 2}).Validate(); err == nil {
		t.Fatal("zero replicas must be rejected")
	}
	if n, _ := (Config{DataParallel: 2, PipelineStages: 2, Q: 2, D: 2, Layers: 4}).Validate(); n != 32 {
		t.Fatalf("world size %d, want 32 (the Figure 6 example)", n)
	}
}

func TestRankLayoutFigure6(t *testing.T) {
	// Figure 6's example: dp=2, pp=2, q=2, d=2 → 32 GPUs.
	cfg := Config{DataParallel: 2, PipelineStages: 2, Q: 2, D: 2, Hidden: h, Heads: heads, SeqLen: seqLen, Layers: 2, Seed: 1}
	world, _ := cfg.Validate()
	seen := testutil.NewScalars()
	testutil.Run(t, world, func(w *dist.Worker) error {
		p, err := NewProc(w, cfg)
		if err != nil {
			return err
		}
		// Encode (replica, stage) and verify the expected carving.
		seen.Put(w.Rank(), float64(p.Replica*10+p.Stage))
		wantReplica := w.Rank() / 16
		wantStage := (w.Rank() % 16) / 8
		if p.Replica != wantReplica || p.Stage != wantStage {
			t.Errorf("rank %d: got (r=%d,s=%d), want (r=%d,s=%d)", w.Rank(), p.Replica, p.Stage, wantReplica, wantStage)
		}
		if p.DP.Size() != 2 {
			t.Errorf("rank %d: DP group size %d", w.Rank(), p.DP.Size())
		}
		return nil
	})
}

func TestTensorPipelineMatchesSerial(t *testing.T) {
	// dp=1, pp=2, [2,1] mesh: activations flow through the pipeline and the
	// result equals the serial 4-layer stack.
	cfg := Config{DataParallel: 1, PipelineStages: 2, Q: 2, D: 1, Hidden: h, Heads: heads, SeqLen: seqLen, Layers: 4, Seed: 9}
	world, _ := cfg.Validate()
	rng := tensor.NewRNG(4)
	x := tensor.RandomMatrix(8, h, rng)
	dy := tensor.RandomMatrix(8, h, rng)

	ref := serialStack(cfg.Layers, cfg.Seed)
	wantY := serialForward(ref, x)
	wantDx := serialBackward(ref, dy)

	ys := testutil.NewCollector()
	dxs := testutil.NewCollector()
	testutil.Run(t, world, func(w *dist.Worker) error {
		p, err := NewProc(w, cfg)
		if err != nil {
			return err
		}
		var in *tensor.Matrix
		if p.Stage == 0 {
			in = p.Fam.Distribute(x)
		}
		out := p.Forward(in)
		if p.Stage == cfg.PipelineStages-1 {
			ys.Put(w.Rank(), p.Fam.Collect(out))
		}
		var dout *tensor.Matrix
		if p.Stage == cfg.PipelineStages-1 {
			dout = p.Fam.Distribute(dy)
		}
		dx := p.Backward(dout)
		if p.Stage == 0 {
			dxs.Put(w.Rank(), p.Fam.Collect(dx))
		}
		p.EndStep() // step boundary: barrier, then recycle the pipeline's buffers
		return nil
	})
	// Last-stage processors hold y; stage-0 processors hold dx.
	testutil.CheckClose(t, "pipeline y", ys.Get(4), wantY, 1e-8)
	testutil.CheckClose(t, "pipeline dx", dxs.Get(0), wantDx, 1e-8)
}

func TestDataParallelGradientAveraging(t *testing.T) {
	// dp=2, pp=1: the two replicas process different batch halves; after
	// Backward their gradients must equal the serial gradient of the FULL
	// batch (scaled by the loss-averaging convention) and match each other
	// exactly.
	cfg := Config{DataParallel: 2, PipelineStages: 1, Q: 2, D: 1, Hidden: h, Heads: heads, SeqLen: seqLen, Layers: 2, Seed: 3}
	world, _ := cfg.Validate()
	rng := tensor.NewRNG(8)
	x := tensor.RandomMatrix(16, h, rng) // 8 sequences; 4 per replica
	target := tensor.RandomMatrix(16, h, rng)

	// Serial reference over the full batch: MSE averages over elements, so
	// per-replica MSE gradients averaged across replicas equal the full
	// gradient.
	ref := serialStack(cfg.Layers, cfg.Seed)
	y := serialForward(ref, x)
	_, dy := nn.MSE(y, target)
	for _, b := range ref {
		for _, pa := range b.Params() {
			pa.ZeroGrad()
		}
	}
	serialBackward(ref, dy)
	wantGrad := ref[0].Mlp.Fc1.W.Grad

	grads := testutil.NewCollector()
	testutil.Run(t, world, func(w *dist.Worker) error {
		p, err := NewProc(w, cfg)
		if err != nil {
			return err
		}
		local := p.ShardBatch(x, seqLen)
		out := p.Forward(local)
		full := p.Fam.Collect(out)
		// Per-replica loss over the replica's half of the targets.
		per := target.Rows / cfg.DataParallel
		tgt := target.SubMatrix(p.Replica*per, 0, per, target.Cols)
		_, dloc := nn.MSE(full, tgt)
		for _, pa := range p.Params() {
			pa.ZeroGrad()
		}
		p.Backward(p.Fam.Distribute(dloc))
		tb := p.blocks[0].(*tesseract.BlockLayer).Block()
		grads.Put(w.Rank(), p.Fam.(*tesseract.Family).Proc().CollectB(tb.Mlp.Fc1.W.Grad))
		return nil
	})
	for r := 0; r < world; r++ {
		testutil.CheckClose(t, fmt.Sprintf("rank %d grad", r), grads.Get(r), wantGrad, 1e-8)
	}
}

func TestFullCompositionTrainsInSync(t *testing.T) {
	// The Figure 6 composition end to end: dp=2, pp=2, q=2, d=1 (16
	// workers), two optimiser steps; replicas must remain identical.
	cfg := Config{DataParallel: 2, PipelineStages: 2, Q: 2, D: 1, Hidden: h, Heads: heads, SeqLen: seqLen, Layers: 2, Seed: 6}
	world, _ := cfg.Validate()
	rng := tensor.NewRNG(12)
	x := tensor.RandomMatrix(16, h, rng)
	target := tensor.RandomMatrix(16, h, rng)

	weights := testutil.NewCollector()
	testutil.Run(t, world, func(w *dist.Worker) error {
		p, err := NewProc(w, cfg)
		if err != nil {
			return err
		}
		opt := nn.NewAdam(1e-2, 0)
		for step := 0; step < 2; step++ {
			var in *tensor.Matrix
			if p.Stage == 0 {
				in = p.ShardBatch(x, seqLen)
			}
			out := p.Forward(in)
			var dout *tensor.Matrix
			if p.Stage == cfg.PipelineStages-1 {
				full := p.Fam.Collect(out)
				per := target.Rows / cfg.DataParallel
				tgt := target.SubMatrix(p.Replica*per, 0, per, target.Cols)
				_, dloc := nn.MSE(full, tgt)
				dout = p.Fam.Distribute(dloc)
			}
			for _, pa := range p.Params() {
				pa.ZeroGrad()
			}
			p.Backward(dout)
			opt.Step(p.Params())
		}
		weights.Put(w.Rank(), p.blocks[0].(*tesseract.BlockLayer).Block().Mlp.Fc1.W.Value.Clone())
		return nil
	})
	// Corresponding processors of the two replicas must hold identical
	// weights after training (replica 1's ranks are offset by 8).
	for r := 0; r < 8; r++ {
		a, b := weights.Get(r), weights.Get(r+8)
		if a == nil || b == nil {
			t.Fatalf("missing weights for rank pair %d/%d", r, r+8)
		}
		if a.MaxAbsDiff(b) != 0 {
			t.Fatalf("replicas diverged at rank pair %d/%d: %g", r, r+8, a.MaxAbsDiff(b))
		}
	}
}

func TestMegatronInnerFamilyPipeline(t *testing.T) {
	// The composition is family-agnostic: dp=2, pp=2 with a Megatron [2]
	// tensor-parallel group inside each stage (8 workers). Activations are
	// replicated within a stage, so Distribute/Collect are identities and
	// the pipeline hands the full matrix between stages; two optimiser
	// steps must keep the replicas identical and match the serial stack.
	cfg := Config{DataParallel: 2, PipelineStages: 2, Family: "megatron", Ranks: 2,
		Hidden: h, Heads: heads, SeqLen: seqLen, Layers: 2, Seed: 21}
	world, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if world != 8 {
		t.Fatalf("world size %d, want 8", world)
	}
	rng := tensor.NewRNG(14)
	x := tensor.RandomMatrix(16, h, rng)
	target := tensor.RandomMatrix(16, h, rng)

	// Serial reference over the full batch (per-replica MSE gradients
	// averaged across replicas equal the full-batch gradient).
	ref := serialStack(cfg.Layers, cfg.Seed)
	wantY := serialForward(ref, x)

	ys := testutil.NewCollector()
	weights := testutil.NewCollector()
	testutil.Run(t, world, func(w *dist.Worker) error {
		p, err := NewProc(w, cfg)
		if err != nil {
			return err
		}
		opt := nn.NewAdam(1e-2, 0)
		for step := 0; step < 2; step++ {
			var in *tensor.Matrix
			if p.Stage == 0 {
				in = p.ShardBatch(x, seqLen)
			}
			out := p.Forward(in)
			var dout *tensor.Matrix
			if p.Stage == cfg.PipelineStages-1 {
				full := p.Fam.Collect(out)
				if step == 0 {
					ys.Put(w.Rank(), full.Clone())
				}
				per := target.Rows / cfg.DataParallel
				tgt := target.SubMatrix(p.Replica*per, 0, per, target.Cols)
				_, dloc := nn.MSE(full, tgt)
				dout = p.Fam.Distribute(dloc)
			}
			for _, pa := range p.Params() {
				pa.ZeroGrad()
			}
			p.Backward(dout)
			opt.Step(p.Params())
			p.EndStep()
		}
		weights.Put(w.Rank(), p.Params()[0].Value.Clone())
		return nil
	})
	// Step 0's last-stage output over replica 0's half must match the
	// serial forward of the same rows (up to all-reduce ordering).
	got := ys.Get(world/2 - 1) // replica 0, last stage, first mesh rank
	want := wantY.SubMatrix(0, 0, wantY.Rows/cfg.DataParallel, wantY.Cols)
	if got == nil {
		t.Fatal("missing last-stage output")
	}
	if d := got.MaxAbsDiff(want); d > 1e-8 || math.IsNaN(d) {
		t.Fatalf("megatron pipeline diverged from serial: max|Δ| = %g", d)
	}
	// Replicas must remain identical after training (replica 1 offset by 4).
	for r := 0; r < 4; r++ {
		a, b := weights.Get(r), weights.Get(r+4)
		if a == nil || b == nil {
			t.Fatalf("missing weights for rank pair %d/%d", r, r+4)
		}
		if a.MaxAbsDiff(b) != 0 {
			t.Fatalf("replicas diverged at rank pair %d/%d", r, r+4)
		}
	}
}

func TestValidateRejectsImpossibleFamilyLayouts(t *testing.T) {
	// A 1-D family given a mesh must fail Validate up front, not per-rank
	// inside the cluster after the world was sized from a bogus layout.
	if _, err := (Config{DataParallel: 2, PipelineStages: 2, Family: "megatron", Q: 2, Layers: 2}).Validate(); err == nil {
		t.Fatal("megatron with a mesh dimension must be rejected by Validate")
	}
	if _, err := (Config{DataParallel: 1, PipelineStages: 1, Family: "optimus", Q: 2, D: 2, Layers: 1}).Validate(); err == nil {
		t.Fatal("optimus with depth must be rejected by Validate")
	}
	if _, err := (Config{DataParallel: 1, PipelineStages: 1, Family: "no-such", Ranks: 2, Layers: 1}).Validate(); err == nil {
		t.Fatal("unregistered family must be rejected by Validate")
	}
}
