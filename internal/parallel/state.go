package parallel

import "repro/internal/nn"

// State is one canonical checkpoint slot as one rank sees it. Every rank of
// a family enumerates the identical ordered slot list (same global shapes,
// same order — the walk mirrors layer construction order, which is fixed);
// what differs per rank is which piece of the slot it holds. A rank that
// owns no shard of a slot (Tesseract biases live only on grid row 0)
// reports Param == nil but still emits the slot, so the lists stay aligned
// across ranks and across families.
//
// The canonical global tensor is the serial model's parameter — for the
// fused QKV projection that means the unpermuted [Wq | Wk | Wv]
// concatenation, NOT the shard-count-dependent column permutation the
// families store locally. Attention layers therefore map their fused shard
// through three rectangles, one per serial sub-matrix, which is what makes
// a checkpoint written at q=2 readable at p=4: both sides agree on the
// serial form.
type State struct {
	// Param is the local shard, or nil when this rank holds nothing.
	Param *nn.Param
	// Rows, Cols give the canonical global shape; identical on every rank.
	Rows, Cols int
	// Primary marks the one replica holder per global element that writes
	// during a collect: k == 0 for Tesseract's depth-replicated weights,
	// group rank 0 for Megatron's replicated row bias, the family base rank
	// for fully replicated layers, always true for unreplicated shards.
	Primary bool
	// Blocks are the rectangles mapping the local shard into the canonical
	// global tensor. Empty when Param is nil.
	Blocks []StateBlock
}

// StateBlock maps one local rectangle onto the canonical global tensor.
type StateBlock struct {
	// LocalRow, LocalCol locate the rectangle in the local shard.
	LocalRow, LocalCol int
	// GlobalRow, GlobalCol locate it in the canonical global tensor.
	GlobalRow, GlobalCol int
	// Rows, Cols are the rectangle extent.
	Rows, Cols int
}

// Stater enumerates canonical state slots — implemented by every Layer and
// by model compositions (vit.DistModel) so Collect/Restore can walk any
// model family-agnostically.
type Stater interface {
	State() []State
}

// FullState describes a shard that covers the whole canonical tensor
// (replicated layers): one rectangle at the origin.
func FullState(p *nn.Param, rows, cols int, primary bool) State {
	return State{
		Param: p, Rows: rows, Cols: cols, Primary: primary,
		Blocks: []StateBlock{{Rows: rows, Cols: cols}},
	}
}

// BlockState describes a shard that is one contiguous rectangle of the
// canonical tensor at (globalRow, globalCol).
func BlockState(p *nn.Param, globalRows, globalCols, globalRow, globalCol int, primary bool) State {
	return State{
		Param: p, Rows: globalRows, Cols: globalCols, Primary: primary,
		Blocks: []StateBlock{{
			GlobalRow: globalRow, GlobalCol: globalCol,
			Rows: p.Value.Rows, Cols: p.Value.Cols,
		}},
	}
}
