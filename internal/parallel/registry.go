package parallel

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dist"
)

// Layout names a family and the processor arrangement it runs on: the
// runtime twin of a planner candidate (plan.Plan.Layout converts one into
// the other). Q and D describe the mesh for the 2-D/2.5-D families and are
// zero for 1-D families, whose arrangement is just [Ranks].
type Layout struct {
	// Family is the registered family name.
	Family string
	// Q and D are the mesh dimensions ([q, q] when D == 1, [q, q, d]
	// otherwise); both zero for 1-D families.
	Q, D int
	// Ranks is the total processor count. Zero means "derive from the
	// mesh" (q²·d) in Normalize.
	Ranks int
	// Base is the first cluster rank the family occupies, so several
	// families can share a cluster (hybrid's pipeline stages and
	// data-parallel replicas).
	Base int
}

// Normalize fills the derivable zero fields (D defaults to 1 on meshes,
// Ranks to q²·d) and validates consistency. It does not check
// family-specific constraints (d ≤ q, divisibility); those belong to the
// family constructors.
func (l Layout) Normalize() (Layout, error) {
	if l.Family == "" {
		return l, fmt.Errorf("parallel: layout needs a family name")
	}
	if l.Q < 0 || l.D < 0 || l.Ranks < 0 || l.Base < 0 {
		return l, fmt.Errorf("parallel: negative layout field in %+v", l)
	}
	if l.Q > 0 {
		if l.D == 0 {
			l.D = 1
		}
		size := l.Q * l.Q * l.D
		if l.Ranks == 0 {
			l.Ranks = size
		}
		if l.Ranks != size {
			return l, fmt.Errorf("parallel: layout %s has %d processors, Ranks says %d", l.Shape(), size, l.Ranks)
		}
	} else {
		if l.D != 0 {
			return l, fmt.Errorf("parallel: layout with depth %d needs a mesh dimension q", l.D)
		}
		if l.Ranks == 0 {
			return l, fmt.Errorf("parallel: 1-D layout for %q needs a rank count", l.Family)
		}
	}
	return l, nil
}

// RowShards returns how many ways the layout partitions activation rows:
// d·q on a mesh, a family-registered count for 1-D families (sequence
// parallelism shards rows p ways despite its flat arrangement), 1 otherwise.
func (l Layout) RowShards() int {
	if l.Q == 0 {
		registryMu.RLock()
		fn := rowShards[l.Family]
		registryMu.RUnlock()
		if fn != nil {
			return fn(l)
		}
		return 1
	}
	d := l.D
	if d == 0 {
		d = 1
	}
	return l.Q * d
}

// Shape renders the arrangement the way the paper prints it: [p], [q,q] or
// [q,q,d].
func (l Layout) Shape() string {
	switch {
	case l.Q == 0:
		return fmt.Sprintf("[%d]", l.Ranks)
	case l.D <= 1:
		return fmt.Sprintf("[%d,%d]", l.Q, l.Q)
	default:
		return fmt.Sprintf("[%d,%d,%d]", l.Q, l.Q, l.D)
	}
}

// String renders "family [shape]".
func (l Layout) String() string { return fmt.Sprintf("%s %s", l.Family, l.Shape()) }

// Constructor builds one rank's family view for a normalized layout. Every
// rank in [l.Base, l.Base+l.Ranks) must call it collectively.
type Constructor func(w *dist.Worker, l Layout) (Family, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Constructor{}
	checks     = map[string]func(Layout) error{}
	rowShards  = map[string]func(Layout) int{}
)

// Register records a family constructor under its name. The family
// packages call it from init, so importing a family package is what makes
// its name instantiable. Registering a name twice panics: two packages
// claiming one family is a programming error.
func Register(name string, c Constructor) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || c == nil {
		panic("parallel: Register needs a name and a constructor")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("parallel: family %q registered twice", name))
	}
	registry[name] = c
}

// RegisterCheck records a cluster-free layout validator for a family:
// the static constraints its constructor would reject (1-D families
// cannot take a mesh, Tesseract requires d ≤ q), checkable before any
// cluster exists. Registered from the same init as the constructor.
func RegisterCheck(name string, chk func(Layout) error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || chk == nil {
		panic("parallel: RegisterCheck needs a name and a check")
	}
	if _, dup := checks[name]; dup {
		panic(fmt.Sprintf("parallel: check for family %q registered twice", name))
	}
	checks[name] = chk
}

// RegisterRowShards records how a 1-D family partitions activation rows,
// overriding Layout.RowShards' default of 1. Sequence parallelism registers
// l.Ranks: every rank owns Rows/p activation rows even though the
// arrangement is flat. Mesh families never consult this — their row split
// is q·d by construction.
func RegisterRowShards(name string, fn func(Layout) int) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || fn == nil {
		panic("parallel: RegisterRowShards needs a name and a function")
	}
	if _, dup := rowShards[name]; dup {
		panic(fmt.Sprintf("parallel: row shards for family %q registered twice", name))
	}
	rowShards[name] = fn
}

// Validate normalizes the layout and applies its family's registered
// static check without building anything — what compositions use to
// reject an impossible configuration before sizing a cluster from it.
func Validate(l Layout) (Layout, error) {
	l, err := l.Normalize()
	if err != nil {
		return l, err
	}
	registryMu.RLock()
	chk, ok := checks[l.Family]
	registered := ok
	if !ok {
		_, registered = registry[l.Family]
	}
	registryMu.RUnlock()
	if !registered {
		return l, fmt.Errorf("parallel: unknown family %q (registered: %v)", l.Family, Families())
	}
	if chk != nil {
		if err := chk(l); err != nil {
			return l, err
		}
	}
	return l, nil
}

// New validates the layout and builds the calling worker's view of the
// named family. The name must have been registered (import the family
// package); unknown names report the registered alternatives.
func New(w *dist.Worker, l Layout) (Family, error) {
	l, err := Validate(l)
	if err != nil {
		return nil, err
	}
	registryMu.RLock()
	c := registry[l.Family]
	registryMu.RUnlock()
	if c == nil {
		return nil, fmt.Errorf("parallel: family %q has a check but no constructor", l.Family)
	}
	return c(w, l)
}

// Families returns the registered family names, sorted.
func Families() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
