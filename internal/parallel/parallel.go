// Package parallel defines the family-agnostic model layer: one Family
// interface that every tensor-parallel scheme in this repository —
// Tesseract [q, q, d], Optimus [q, q] and Megatron-LM [p] — implements, so
// models, trainers, the experiment harness and the auto-parallelism planner
// are written once against the interface instead of once per scheme.
//
// The paper's point is that the three schemes are interchangeable layouts
// of the same Transformer math; this package is that point as an API. A
// Family knows how its activations are laid out (Distribute, Collect,
// Slice, GatherPooled), how to build the distributed layers that operate on
// that layout (NewLinear, NewBlock, NewLayerNorm, NewHead), and how a
// training step finishes (DrainGradients, EndStep). Everything above —
// vit.DistModel, the trainers, hybrid's DP×TP composition, the tables
// runners — only ever sees these contracts, which is what lets
// plan.Plan.Instantiate turn a searched layout directly into a trainable
// model.
//
// # Layer contract
//
// A Layer's Forward may retain its input and its output for the backward
// pass (saved activations); callers must not mutate or recycle a matrix
// that crossed a Forward API before the step boundary. Backward never
// retains its input: the caller may recycle dy as soon as Backward
// returns. A Layer whose Backward draws its result from the worker's
// workspace (every Block composed by this package does) hands ownership of
// that buffer to the caller.
//
// # Grad-sync ordering
//
// Backward passes may defer parameter-gradient synchronisation (Tesseract
// queues its §3.1 depth all-reduces per layer and lets them fly behind the
// remaining backward work). Gradients are only final after
// Family.DrainGradients returns; trainers must drain after the full
// backward pass and before the optimiser reads any gradient. Drain is
// idempotent and free for families that synchronise eagerly.
//
// # EndStep
//
// EndStep marks a training-step boundary: after the optimiser update (or
// after an evaluation forward whose outputs were consumed), every rank
// calls EndStep to recycle its workspace. Compositions that hand buffers
// across workers by pointer (the hybrid pipeline) insert a barrier before
// the release — see hybrid.Proc.EndStep — so a Family's EndStep must be
// safe to call collectively at the same program point on every rank.
package parallel

import (
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Layer is one distributed module bound to its processor view: the
// forward/backward contract every composition in this repository uses.
type Layer interface {
	// Forward maps the family-distributed input to the family-distributed
	// output, retaining whatever the backward pass needs.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward accumulates parameter gradients and returns the input
	// gradient. It never retains dy.
	Backward(dy *tensor.Matrix) *tensor.Matrix
	// Params returns the parameter shards this rank owns, in a
	// deterministic order identical on every rank.
	Params() []*nn.Param
	// State enumerates the layer's canonical checkpoint slots — every rank
	// returns the same ordered list of global shapes; each entry maps the
	// rank's local shard (if any) into the canonical serial tensor. See
	// Stater. Parameter-free layers return nil.
	State() []State
}

// Slice is one rank's share of a replicated [Rows·shards, Cols·shards]
// matrix: the submatrix starting at (Row0, Col0). Families that replicate
// activations return the whole matrix (Row0 = Col0 = 0).
type Slice struct {
	Row0, Col0 int
	Rows, Cols int
}

// Family is one tensor-parallel scheme's model layer: layout, layers and
// step hooks. Implementations register a constructor with Register so
// layouts (and planner candidates, via plan.Plan.Instantiate) can be
// turned into families by name.
type Family interface {
	// Name returns the registered family name ("tesseract", "optimus",
	// "megatron").
	Name() string
	// Layout returns the normalized layout the family was built from.
	Layout() Layout
	// Worker returns the calling rank's view of the simulated cluster.
	Worker() *dist.Worker
	// RowShards returns how many ways activation rows are partitioned:
	// d·q for Tesseract, q for Optimus, 1 for Megatron's replicated
	// activations. Batches must contain a multiple of RowShards sequences.
	RowShards() int

	// NewLinear builds the family's fully connected layer (the ViT patch
	// embedding); input and output are family-distributed activations.
	// The full weight is drawn from rng in the serial order, so families
	// shard the identical serial parameters.
	NewLinear(in, out int, act nn.Activation, bias bool, rng *tensor.RNG) Layer
	// NewBlock builds one Transformer block (attention, MLP, residuals,
	// layer norms), drawing parameters from rng in the serial order.
	NewBlock(h, heads, seqLen int, rng *tensor.RNG) Layer
	// NewBlockPhantom builds the shape-only block for paper-scale timing.
	NewBlockPhantom(h, heads, seqLen int) Layer
	// NewLayerNorm builds the family's layer normalisation over hidden
	// width h.
	NewLayerNorm(h int) Layer
	// NewHead builds the classifier head: a replicated serial linear
	// computed redundantly on every rank from replicated features — the
	// standard treatment for heads whose cost is negligible.
	NewHead(in, out int, rng *tensor.RNG) Layer

	// Distribute slices a replicated global activation into this rank's
	// block (the identity for families that replicate activations).
	Distribute(global *tensor.Matrix) *tensor.Matrix
	// Collect reassembles a family-distributed activation on every rank.
	Collect(local *tensor.Matrix) *tensor.Matrix
	// Slice reports which part of a replicated [rows, cols] activation
	// this rank holds, for slicing replicated per-row data (positional
	// encodings, pooled-feature gradients) down to the local block.
	Slice(rows, cols int) Slice
	// GatherPooled all-gathers a row-pooled local block into the full
	// replicated matrix on every rank. Ownership of local (a workspace
	// buffer) transfers to the family; the returned matrix is
	// caller-owned until the step boundary. Families whose activations
	// are already replicated return local unchanged.
	GatherPooled(local *tensor.Matrix) *tensor.Matrix

	// DrainGradients completes every deferred parameter-gradient
	// synchronisation; afterwards gradients are final and the optimiser
	// may step.
	DrainGradients()
	// EndStep recycles this rank's workspace at a training-step boundary.
	EndStep()
}
