package parallel

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ErrCheckpointCorrupt is wrapped by every integrity failure: a slot whose
// bytes no longer hash to the checksum CollectInto recorded. Restore and
// Reshard verify before broadcasting, so a snapshot damaged between collect
// and restore (a bad DIMM, a truncated transfer in the real-world analogue)
// fails loudly instead of silently training from garbage.
var ErrCheckpointCorrupt = errors.New("checkpoint corrupt")

// Checkpoint is a family-agnostic replicated snapshot of a model: every
// weight and both Adam moments in the canonical (serial) form, plus the
// optimiser step count. Because the slots are canonical, a checkpoint
// written under any registered family at any layout can be restored under
// any other — the elastic re-layout path (abort → replan → reshard) moves
// training state between arbitrary (family, layout) pairs through this one
// type.
//
// A Checkpoint is rank-local state: CollectInto leaves an identical replica
// on every collecting rank, and the driver keeps whichever copy it likes
// (conventionally rank 0's — the root Restore broadcasts from).
type Checkpoint struct {
	// Step is the optimiser step count (Adam's bias-correction clock).
	Step int
	// Slots hold the canonical tensors, in the model's State() order.
	Slots []CheckpointSlot

	// group and states cache the family communicator and the model's slot
	// walk between per-step collects so a steady-state checkpoint allocates
	// nothing.
	group   *dist.Group
	cluster *dist.Cluster
	stater  Stater
	states  []State
}

// CheckpointSlot is one canonical tensor with its Adam moments.
type CheckpointSlot struct {
	Value *tensor.Matrix
	M, V  *tensor.Matrix
	// Sum is the FNV-1a digest over the slot's shapes and float bits,
	// recorded by CollectInto and checked by Verify/Restore. Zero means
	// "no checksum" (a hand-built slot), which verification skips.
	Sum uint64
}

// sum hashes the slot's three tensors: shapes first, then every element's
// bit pattern, so a single flipped mantissa bit — or a silently reshaped
// buffer — changes the digest.
func (e *CheckpointSlot) sum() uint64 {
	h := uint64(14695981039346656037)
	for _, m := range []*tensor.Matrix{e.Value, e.M, e.V} {
		h = sumWord(h, uint64(m.Rows))
		h = sumWord(h, uint64(m.Cols))
		for r := 0; r < m.Rows; r++ {
			for _, x := range m.Row(r) {
				h = sumWord(h, math.Float64bits(x))
			}
		}
	}
	if h == 0 {
		h = 1 // keep 0 meaning "no checksum"
	}
	return h
}

// sumWord folds one 64-bit word into an FNV-1a state byte by byte.
func sumWord(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

// Verify recomputes every slot's checksum and reports the first mismatch,
// wrapping ErrCheckpointCorrupt. Slots without a checksum (Sum == 0) are
// skipped.
func (ck *Checkpoint) Verify() error {
	for i := range ck.Slots {
		e := &ck.Slots[i]
		if e.Sum == 0 {
			continue
		}
		if got := e.sum(); got != e.Sum {
			return fmt.Errorf("parallel: slot %d (%dx%d): %w: checksum %#x, recorded %#x",
				i, e.Value.Rows, e.Value.Cols, ErrCheckpointCorrupt, got, e.Sum)
		}
	}
	return nil
}

// familyGroup returns the communicator spanning the family's ranks in
// ascending order, cached on the checkpoint.
func (ck *Checkpoint) familyGroup(f Family) *dist.Group {
	c := f.Worker().Cluster()
	if ck.group != nil && ck.cluster == c {
		return ck.group
	}
	l := f.Layout()
	ranks := make([]int, l.Ranks)
	for i := range ranks {
		ranks[i] = l.Base + i
	}
	ck.group, ck.cluster = c.Group(ranks...), c
	return ck.group
}

// CollectInto snapshots the model (and optimiser moments, when opt is
// non-nil) into ck, reusing ck's buffers when shapes match so per-step
// checkpointing reaches an allocation fixed point. Pass ck == nil to
// allocate a fresh checkpoint. Every rank of the family must call it
// collectively; each rank ends holding an identical replica.
//
// The reassembly is bitwise exact: each rank zeroes its canonical buffer,
// the primary holders copy their rectangles in, and one all-reduce over the
// family group sums the disjoint contributions — every element is 0+x in
// some fixed tree order, and 0+x is exact in floating point. Same-layout
// Restore therefore round-trips every bit.
func CollectInto(ck *Checkpoint, f Family, m Stater, opt *nn.Adam) (*Checkpoint, error) {
	if ck == nil {
		ck = &Checkpoint{}
	}
	slots := ck.states
	if ck.stater != m {
		slots = m.State()
		for i, s := range slots {
			if err := checkState(s); err != nil {
				return nil, fmt.Errorf("parallel: slot %d: %w", i, err)
			}
		}
		ck.stater, ck.states = m, slots
	}
	if len(ck.Slots) != len(slots) {
		if len(ck.Slots) != 0 {
			return nil, fmt.Errorf("parallel: checkpoint has %d slots, model has %d", len(ck.Slots), len(slots))
		}
		ck.Slots = make([]CheckpointSlot, len(slots))
	}
	g := ck.familyGroup(f)
	w := f.Worker()
	ck.Step = 0
	if opt != nil {
		ck.Step = opt.StepCount()
	}
	for i, s := range slots {
		e := &ck.Slots[i]
		ensureSlot(e, s.Rows, s.Cols)
		var val, om, ov *tensor.Matrix
		if s.Param != nil {
			val = s.Param.Value
			if opt != nil {
				om, ov = opt.Moments(s.Param)
			}
		}
		stageCollect(e.Value, s, val)
		g.AllReduceInto(w, e.Value, e.Value)
		stageCollect(e.M, s, om)
		g.AllReduceInto(w, e.M, e.M)
		stageCollect(e.V, s, ov)
		g.AllReduceInto(w, e.V, e.V)
		e.Sum = e.sum()
	}
	return ck, nil
}

// Collect is CollectInto with a fresh checkpoint.
func Collect(f Family, m Stater, opt *nn.Adam) (*Checkpoint, error) {
	return CollectInto(nil, f, m, opt)
}

// Restore rebuilds a freshly constructed model (and optimiser) at f's
// layout from a checkpoint: rank 0 of the family owns ck and broadcasts
// each canonical tensor over the family group — charging the simulated
// clock with the real re-shard traffic — and every rank slices its own
// rectangles out of the replicated copy into its parameter shards and
// freshly shaped Adam moments. Non-root ranks only read ck for shapes; the
// data they install arrived over the wire.
//
// The model must have been built for the same architecture (same State()
// walk); mismatched slot shapes are an error. Gradients are left untouched
// (a fresh model has zero gradients, and trainers zero per step anyway).
func Restore(f Family, m Stater, opt *nn.Adam, ck *Checkpoint) error {
	slots := m.State()
	if len(ck.Slots) != len(slots) {
		return fmt.Errorf("parallel: checkpoint has %d slots, model has %d", len(ck.Slots), len(slots))
	}
	l := f.Layout()
	w := f.Worker()
	ws := w.Workspace()
	ranks := make([]int, l.Ranks)
	for i := range ranks {
		ranks[i] = l.Base + i
	}
	g := w.Cluster().Group(ranks...)
	root := l.Base
	isRoot := w.Rank() == root
	// Only the root's replica goes over the wire; verify it before a single
	// byte is broadcast. The root erroring out unwinds the other ranks the
	// same way a node loss does.
	if isRoot {
		if err := ck.Verify(); err != nil {
			return err
		}
	}
	for i, s := range slots {
		if err := checkState(s); err != nil {
			return fmt.Errorf("parallel: slot %d: %w", i, err)
		}
		e := ck.Slots[i]
		if e.Value.Rows != s.Rows || e.Value.Cols != s.Cols {
			return fmt.Errorf("parallel: slot %d is %dx%d in the checkpoint, %dx%d in the model",
				i, e.Value.Rows, e.Value.Cols, s.Rows, s.Cols)
		}
		install := func(global *tensor.Matrix, into func(*tensor.Matrix)) {
			recv := global
			if !isRoot {
				recv = ws.GetUninitMatch(global.Rows, global.Cols, global.Phantom())
				g.BroadcastInto(w, root, nil, recv)
			} else {
				g.BroadcastInto(w, root, global, global)
			}
			into(recv)
			if !isRoot {
				ws.Put(recv)
			}
		}
		install(e.Value, func(recv *tensor.Matrix) {
			if s.Param != nil {
				stageRestore(s.Param.Value, s, recv)
			}
		})
		restoreMoments := opt != nil && s.Param != nil && !s.Param.Value.Phantom()
		install(e.M, func(recv *tensor.Matrix) {
			if restoreMoments {
				mm := tensor.New(s.Param.Value.Rows, s.Param.Value.Cols)
				stageRestore(mm, s, recv)
				opt.SetMoments(s.Param, mm, nil)
			}
		})
		install(e.V, func(recv *tensor.Matrix) {
			if restoreMoments {
				vv := tensor.New(s.Param.Value.Rows, s.Param.Value.Cols)
				stageRestore(vv, s, recv)
				opt.SetMoments(s.Param, nil, vv)
			}
		})
	}
	if opt != nil {
		opt.SetStepCount(ck.Step)
	}
	return nil
}

// Reshard is Restore under its elastic name: rebuild any registered family
// at any layout — typically the surviving layout a Replan picked after a
// rank loss — from a checkpoint collected under a different one.
func Reshard(f Family, m Stater, opt *nn.Adam, ck *Checkpoint) error {
	return Restore(f, m, opt, ck)
}

// checkState validates one rank's slot view: rectangles must stay inside
// both the local shard and the canonical tensor.
func checkState(s State) error {
	if s.Rows <= 0 || s.Cols <= 0 {
		return fmt.Errorf("state has no canonical shape: %dx%d", s.Rows, s.Cols)
	}
	if s.Param == nil {
		if len(s.Blocks) != 0 {
			return fmt.Errorf("state has %d blocks but no local shard", len(s.Blocks))
		}
		return nil
	}
	v := s.Param.Value
	for _, b := range s.Blocks {
		if b.Rows <= 0 || b.Cols <= 0 ||
			b.LocalRow < 0 || b.LocalCol < 0 ||
			b.LocalRow+b.Rows > v.Rows || b.LocalCol+b.Cols > v.Cols ||
			b.GlobalRow < 0 || b.GlobalCol < 0 ||
			b.GlobalRow+b.Rows > s.Rows || b.GlobalCol+b.Cols > s.Cols {
			return fmt.Errorf("block %+v outside local %dx%d or global %dx%d", b, v.Rows, v.Cols, s.Rows, s.Cols)
		}
	}
	return nil
}

// ensureSlot sizes a slot's three buffers, reusing existing ones when the
// shape already matches. Checkpoint buffers are plain allocations, not
// workspace buffers: they outlive the cluster that wrote them.
func ensureSlot(e *CheckpointSlot, rows, cols int) {
	fit := func(m *tensor.Matrix) *tensor.Matrix {
		if m != nil && m.Rows == rows && m.Cols == cols {
			return m
		}
		return tensor.New(rows, cols)
	}
	e.Value, e.M, e.V = fit(e.Value), fit(e.M), fit(e.V)
}

// stageCollect zeroes the canonical buffer and, on a primary holder, copies
// the local rectangles in. local is the matrix to read (a value or a
// moment); nil stages plain zeros, as for a never-stepped optimiser.
func stageCollect(global *tensor.Matrix, s State, local *tensor.Matrix) {
	global.Zero()
	if !s.Primary || local == nil || local.Phantom() {
		return
	}
	for _, b := range s.Blocks {
		copyRect(global, b.GlobalRow, b.GlobalCol, local, b.LocalRow, b.LocalCol, b.Rows, b.Cols)
	}
}

// stageRestore copies this rank's rectangles of the replicated canonical
// tensor into the local shard.
func stageRestore(local *tensor.Matrix, s State, global *tensor.Matrix) {
	if local.Phantom() {
		return
	}
	for _, b := range s.Blocks {
		copyRect(local, b.LocalRow, b.LocalCol, global, b.GlobalRow, b.GlobalCol, b.Rows, b.Cols)
	}
}

// copyRect copies a rows×cols window from src at (sr, sc) to dst at (dr, dc).
func copyRect(dst *tensor.Matrix, dr, dc int, src *tensor.Matrix, sr, sc, rows, cols int) {
	for r := 0; r < rows; r++ {
		copy(dst.Row(dr + r)[dc:dc+cols], src.Row(sr + r)[sc:sc+cols])
	}
}
